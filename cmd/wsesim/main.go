// Command wsesim runs the wafer-scale stencil workloads on the
// cycle-level simulator and reports convergence plus the per-iteration
// cycle breakdown, extrapolated to wall-clock time at the CS-1 clock.
//
// -kernel selects the workload:
//
//	bicgstab   (default) the paper's 7-point-stencil BiCGStab solve
//	           (kernels.BiCGStabWSE: Listing 1 SpMV, float32 AllReduce
//	           dots); the only kernel the -wafers cluster backend runs
//	seismic25  BiCGStab on the 25-point width-4 seismic stencil, the
//	           implicit acoustic-wave step, compiled by the stencil
//	           compiler (internal/stencilc) into the multi-round
//	           halo-relay program
//	heat       3D implicit-Euler heat stepping: each step solves the
//	           7-point (I + λ·(−Δ₂)) system; -boundary periodic runs on
//	           the host only (the wafer lowering is Dirichlet)
//	heat2d     2D implicit-Euler heat stepping on the block-halo
//	           mapping: each tile owns a -block×-block mesh block and
//	           the step solves the 5-point star program
//
// Two execution backends for bicgstab:
//
//	default         one wafer whose fabric equals the mesh's X×Y extent
//	-wafers WxH     a cluster of W×H cycle-simulated wafers coupled by
//	                the edge-I/O interconnect model
//	                (internal/multiwafer: halo-resident SpMV, two-level
//	                exactly-rounded dots — residual histories are
//	                bit-identical for every grid, so `-wafers 2x1` and
//	                `-wafers 1x1` print the same convergence)
//
// The other kernels run single-wafer, or on the host float64 solver
// with -host (the reference the wafer programs are pinned against).
//
// Single-wafer simulations take -engine to pick the core-stepping
// engine (seq, sharded, batched, fastforward). Every engine produces
// bit- and cycle-identical results; batched and fastforward are the
// host-throughput modes that make paper-scale fabrics interactive. See
// docs/ARCHITECTURE.md, "Execution engines".
//
// Typical runs:
//
//	wsesim -nx 16 -ny 16 -nz 64 -problem momentum
//	wsesim -nx 64 -ny 64 -nz 64 -wafers 2x1 -iters 5
//	wsesim -kernel seismic25 -nx 4 -ny 4 -nz 8 -shift 0.08
//	wsesim -kernel heat -nx 3 -ny 3 -nz 4 -lambda 0.2 -steps 3
//	wsesim -kernel heat2d -nx 8 -ny 4 -block 2 -steps 3
//
// Single-wafer BiCGStab solves (bicgstab, seismic25) are
// crash-recoverable: -checkpoint FILE writes an encoded machine snapshot
// every -checkpoint-every iterations, and -resume FILE restarts from one
// (run with the same mesh and problem flags); the resumed solve
// reproduces the uninterrupted one bit for bit. See docs/ARCHITECTURE.md,
// "Snapshots & exact reductions".
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/multiwafer"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
)

// clock is the CS-1 fabric clock used to extrapolate wall time.
const clock = 1.1e9

// fatalUsage reports a flag-validation error with the usage text and a
// non-zero exit, so bad invocations fail loudly instead of panicking
// somewhere inside the simulator.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wsesim: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	kernel := flag.String("kernel", "bicgstab", "workload: bicgstab|seismic25|heat|heat2d")
	nx := flag.Int("nx", 8, "mesh width (fabric width; heat2d: mesh points)")
	ny := flag.Int("ny", 8, "mesh height (fabric height; heat2d: mesh points)")
	nz := flag.Int("nz", 64, "Z points per tile (even; 3D kernels only)")
	iters := flag.Int("iters", 20, "max BiCGStab iterations (per step for heat kernels)")
	tol := flag.Float64("tol", 1e-3, "relative residual tolerance")
	problem := flag.String("problem", "momentum", "bicgstab coefficients: poisson|momentum|random")
	shift := flag.Float64("shift", 0.08, "seismic25: implicit shift s = (v·Δt/h)²")
	lambda := flag.Float64("lambda", 0.2, "heat kernels: diffusion number λ = α·Δt/h²")
	steps := flag.Int("steps", 3, "heat kernels: backward-Euler time steps")
	boundary := flag.String("boundary", "dirichlet", "heat: dirichlet|periodic (periodic is host-only)")
	block := flag.Int("block", 2, "heat2d: mesh points per tile edge (even; mesh must tile)")
	host := flag.Bool("host", false, "run the host float64 reference backend instead of the simulated wafer (not bicgstab)")
	wafers := flag.String("wafers", "",
		"wafer grid WxH: run the multiwafer cluster backend instead of a single wafer (e.g. 2x1; bicgstab only)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"simulation worker goroutines (>1 shards each fabric on a persistent pool; results are bit-identical)")
	engine := flag.String("engine", "",
		"core-stepping engine: seq|sharded|batched|fastforward (empty = automatic; every engine is bit- and cycle-identical — this is a host-throughput knob, single-wafer only)")
	ckptPath := flag.String("checkpoint", "",
		"write a crash-recovery checkpoint to this file every -checkpoint-every iterations (single-wafer solves)")
	ckptEvery := flag.Int("checkpoint-every", 10, "iterations between checkpoints when -checkpoint is set")
	resumePath := flag.String("resume", "",
		"resume a single-wafer solve from this checkpoint file (same mesh/problem flags as the checkpointed run)")
	flag.Parse()

	if *nx <= 0 || *ny <= 0 {
		fatalUsage("mesh dimensions must be positive (got %dx%d)", *nx, *ny)
	}
	if *iters <= 0 {
		fatalUsage("-iters must be positive; got %d", *iters)
	}
	if *kernel != "bicgstab" && *wafers != "" {
		fatalUsage("-wafers runs only the bicgstab kernel; got -kernel %s", *kernel)
	}
	if *kernel == "bicgstab" && *host {
		fatalUsage("-host applies to the stencil-compiled kernels; bicgstab always simulates")
	}
	if *engine != "" {
		if *wafers != "" || *host {
			fatalUsage("-engine selects the single-wafer core-stepping engine; it does not apply to -wafers or -host runs")
		}
		// An explicit engine and the sharded worker pool are mutually
		// exclusive; when -workers was left at its default, defer to the
		// engine rather than rejecting the combination.
		workersSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "workers" {
				workersSet = true
			}
		})
		if !workersSet {
			*workers = 1
		}
	}

	switch *kernel {
	case "bicgstab":
		runBiCGStab(*nx, *ny, *nz, *iters, *tol, *problem, *wafers, *workers, *engine, *ckptPath, *ckptEvery, *resumePath)
	case "seismic25":
		runSeismic(*nx, *ny, *nz, *iters, *tol, *shift, *host, *workers, *engine, *ckptPath, *ckptEvery, *resumePath)
	case "heat":
		if *ckptPath != "" || *resumePath != "" {
			fatalUsage("heat stepping re-solves per step and does not checkpoint")
		}
		runHeat3D(*nx, *ny, *nz, *iters, *tol, *lambda, *steps, *boundary, *host, *workers, *engine)
	case "heat2d":
		if *ckptPath != "" || *resumePath != "" {
			fatalUsage("heat stepping re-solves per step and does not checkpoint")
		}
		runHeat2D(*nx, *ny, *iters, *tol, *lambda, *steps, *block, *host, *workers, *engine)
	default:
		fatalUsage("unknown -kernel %q (want bicgstab, seismic25, heat or heat2d)", *kernel)
	}
}

// check3D validates the shared 3D mesh flags.
func check3D(nz int) {
	if nz <= 0 {
		fatalUsage("-nz must be positive; got %d", nz)
	}
	if nz%2 != 0 {
		fatalUsage("-nz must be even (fp16 words stream in pairs); got %d", nz)
	}
}

// starOptions assembles core.Options for a stencil-compiled solve.
func starOptions(iters int, tol float64, host bool, workers int, engine string) core.Options {
	o := core.Options{Backend: core.Wafer, MaxIter: iters, Tol: tol,
		Wafer: core.WaferOptions{Workers: workers, Engine: engine}}
	if host {
		o.Backend = core.Local
		o.Wafer = core.WaferOptions{}
	}
	return o
}

// reportSolve prints the shared outcome lines of a star solve.
func reportSolve(res core.Result) {
	fmt.Printf("iterations: %d  converged: %v  true residual: %.3e\n",
		res.Iterations, res.Converged, res.TrueResidual)
	if res.Telemetry.Simulated {
		pc := res.Telemetry.PerIteration
		fmt.Printf("cycles/iteration: %d  (spmv %d, dot %d, allreduce %d, axpy %d)\n",
			pc.Total(), pc.SpMV, pc.Dot, pc.AllReduce, pc.Axpy)
		fmt.Printf("at %.1f GHz: %.2f µs/iteration\n", clock/1e9, float64(pc.Total())/clock*1e6)
	}
}

func runSeismic(nx, ny, nz, iters int, tol, shift float64, host bool, workers int, engine, ckptPath string, ckptEvery int, resumePath string) {
	check3D(nz)
	if shift <= 0 {
		fatalUsage("-shift must be positive; got %g", shift)
	}
	m := stencil.Mesh{NX: nx, NY: ny, NZ: nz}
	op := stencil.Seismic25(m, shift)
	xe := make([]float64, m.N())
	rng := rand.New(rand.NewSource(7))
	for i := range xe {
		xe[i] = rng.Float64()
	}
	p, _ := core.NewStarProblem(op, xe)
	opts := starOptions(iters, tol, host, workers, engine)
	attachCheckpoint(&opts, ckptPath, ckptEvery, resumePath)
	res, err := core.SolveStar(p, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh %v on %d×%d fabric (25-point seismic stencil, s=%g, %s backend)\n",
		m, nx, ny, shift, res.Telemetry.Backend)
	reportSolve(res)
	maxErr := 0.0
	for i := range xe {
		maxErr = math.Max(maxErr, math.Abs(res.X[i]-xe[i]))
	}
	fmt.Printf("max |x − x_exact|: %.3e\n", maxErr)
	fmt.Printf("model SpMV apply: %d cycles (exact halo-relay replay)\n",
		perfmodel.StencilApply3D{W: nx, H: ny, Z: nz, Widths: op.W}.Cycles())
}

func runHeat3D(nx, ny, nz, iters int, tol, lambda float64, steps int, boundary string, host bool, workers int, engine string) {
	check3D(nz)
	var bnd stencil.Boundary
	switch boundary {
	case "dirichlet":
		bnd = stencil.Dirichlet
	case "periodic":
		bnd = stencil.Periodic
	default:
		fatalUsage("unknown -boundary %q (want dirichlet or periodic)", boundary)
	}
	if lambda <= 0 {
		fatalUsage("-lambda must be positive; got %g", lambda)
	}
	if steps <= 0 {
		fatalUsage("-steps must be positive; got %d", steps)
	}
	m := stencil.Mesh{NX: nx, NY: ny, NZ: nz}
	u0 := randomField(m.N())
	opts := starOptions(iters, tol, host, workers, engine)
	out, err := core.RunHeat3D(nil, m, lambda, bnd, u0, steps, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh %v on %d×%d fabric (3D heat, λ=%g, %s, %s backend)\n",
		m, nx, ny, lambda, boundary, out[0].Solve.Telemetry.Backend)
	reportSteps(out, sumSq(u0))
	if !host {
		fmt.Printf("model SpMV apply: %d cycles (exact halo-relay replay)\n",
			perfmodel.StencilApply3D{W: nx, H: ny, Z: nz, Widths: [3]int{1, 1, 1}}.Cycles())
	}
}

func runHeat2D(nx, ny, iters int, tol, lambda float64, steps, block int, host bool, workers int, engine string) {
	if lambda <= 0 {
		fatalUsage("-lambda must be positive; got %g", lambda)
	}
	if steps <= 0 {
		fatalUsage("-steps must be positive; got %d", steps)
	}
	if !host {
		if block <= 0 || block%2 != 0 {
			fatalUsage("-block must be even and positive; got %d", block)
		}
		if nx%block != 0 || ny%block != 0 {
			fatalUsage("mesh %d×%d does not tile into %d×%d blocks", nx, ny, block, block)
		}
	}
	m := stencil.Mesh2D{NX: nx, NY: ny}
	u0 := randomField(m.N())
	opts := starOptions(iters, tol, host, workers, engine)
	out, err := core.RunHeat2D(nil, m, lambda, u0, steps, block, opts)
	if err != nil {
		log.Fatal(err)
	}
	if host {
		fmt.Printf("mesh %d×%d (2D heat, λ=%g, local backend)\n", nx, ny, lambda)
	} else {
		fmt.Printf("mesh %d×%d on %d×%d fabric, %d×%d blocks (2D heat, λ=%g)\n",
			nx, ny, nx/block, ny/block, block, block, lambda)
	}
	reportSteps(out, sumSq(u0))
	if !host {
		fmt.Printf("model SpMV apply: %d cycles (exact block-halo replay)\n",
			perfmodel.StencilApply2D{W: nx / block, H: ny / block, B: block, Points: 5}.Cycles())
	}
}

// reportSteps prints the per-step energy decay of a heat run.
func reportSteps(out []core.HeatStep, e0 float64) {
	prev := e0
	for i, s := range out {
		fmt.Printf("step %2d: iterations %3d  energy %.6e  (×%.4f)\n",
			i+1, s.Solve.Iterations, s.Energy, s.Energy/prev)
		prev = s.Energy
	}
	last := out[len(out)-1].Solve
	if last.Telemetry.Simulated {
		pc := last.Telemetry.PerIteration
		fmt.Printf("cycles/iteration (last step): %d  (spmv %d, dot %d, allreduce %d, axpy %d)\n",
			pc.Total(), pc.SpMV, pc.Dot, pc.AllReduce, pc.Axpy)
	}
}

func randomField(n int) []float64 {
	rng := rand.New(rand.NewSource(11))
	u := make([]float64, n)
	for i := range u {
		u[i] = rng.Float64()
	}
	return u
}

func sumSq(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return s
}

// attachCheckpoint wires the -checkpoint/-resume flags into a solve's
// wafer options (write-then-rename, so a crash mid-write leaves the
// previous checkpoint intact).
func attachCheckpoint(opts *core.Options, ckptPath string, ckptEvery int, resumePath string) {
	if ckptPath != "" {
		opts.Wafer.CheckpointEvery = ckptEvery
		opts.Wafer.Checkpoint = func(blob []byte) error {
			tmp := ckptPath + ".tmp"
			if err := os.WriteFile(tmp, blob, 0o644); err != nil {
				return err
			}
			return os.Rename(tmp, ckptPath)
		}
	}
	if resumePath != "" {
		blob, err := os.ReadFile(resumePath)
		if err != nil {
			log.Fatal(err)
		}
		opts.Wafer.Resume = blob
		fmt.Printf("resuming from %s (%d bytes)\n", resumePath, len(blob))
	}
}

func runBiCGStab(nx, ny, nz, iters int, tol float64, problem, wafersFlag string, workers int, engine, ckptPath string, ckptEvery int, resumePath string) {
	check3D(nz)
	m := stencil.Mesh{NX: nx, NY: ny, NZ: nz}
	var op *stencil.Op7
	switch problem {
	case "poisson":
		op = stencil.Poisson(m, 1)
	case "random":
		op = stencil.RandomDiagDominant(m, 1.5, rand.New(rand.NewSource(1)))
	case "momentum":
		op = stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	default:
		fatalUsage("unknown -problem %q (want poisson, momentum or random)", problem)
	}
	xe := make([]float64, m.N())
	rng := rand.New(rand.NewSource(7))
	for i := range xe {
		xe[i] = rng.Float64()
	}
	p, _ := core.NewProblem(op, xe)

	opts := core.Options{Backend: core.Wafer, MaxIter: iters, Tol: tol,
		Wafer: core.WaferOptions{Workers: workers, Engine: engine}}
	if wafersFlag != "" {
		grid, err := multiwafer.ParseTopology(wafersFlag)
		if err != nil {
			fatalUsage("bad -wafers: %v", err)
		}
		opts.Backend = core.MultiWafer
		opts.Wafer = core.WaferOptions{}
		opts.MultiWafer = core.MultiWaferOptions{Grid: grid, Workers: workers}
	}
	written := 0
	if ckptPath != "" {
		opts.Wafer.CheckpointEvery = ckptEvery
		opts.Wafer.Checkpoint = func(blob []byte) error {
			// Write-then-rename, so a crash mid-write leaves the previous
			// checkpoint intact.
			tmp := ckptPath + ".tmp"
			if err := os.WriteFile(tmp, blob, 0o644); err != nil {
				return err
			}
			if err := os.Rename(tmp, ckptPath); err != nil {
				return err
			}
			written++
			return nil
		}
	}
	if resumePath != "" {
		blob, err := os.ReadFile(resumePath)
		if err != nil {
			log.Fatal(err)
		}
		opts.Wafer.Resume = blob
		fmt.Printf("resuming from %s (%d bytes)\n", resumePath, len(blob))
	}
	// One validator for every entry point: the daemon and all the CLIs
	// route bad combinations (e.g. -checkpoint with -wafers) through
	// core.Options.Validate instead of ad-hoc flag checks.
	if err := opts.Validate(); err != nil {
		fatalUsage("%v", err)
	}
	res, err := core.Solve(p, opts)
	if err != nil {
		log.Fatal(err)
	}
	if written > 0 {
		fmt.Printf("wrote %d checkpoint(s) to %s\n", written, ckptPath)
	}

	if opts.Backend == core.MultiWafer {
		grid := opts.MultiWafer.Grid
		fmt.Printf("mesh %v on a %s wafer grid (%d wafers, ~%d×%d fabric each; %s problem)\n",
			m, grid, grid.Wafers(),
			(nx+grid.W-1)/grid.W, (ny+grid.H-1)/grid.H, problem)
	} else {
		fmt.Printf("mesh %v on %d×%d fabric (%s problem)\n", m, nx, ny, problem)
	}
	fmt.Printf("iterations: %d  converged: %v  true residual: %.3e\n",
		res.Iterations, res.Converged, res.TrueResidual)
	if opts.Backend == core.MultiWafer {
		pc := res.Telemetry.PerIteration
		fmt.Printf("cycles/iteration: %d  (spmv %d, edge-I/O %d, dot %d, allreduce %d, combine %d, axpy %d)\n",
			pc.Total(), pc.SpMV, pc.EdgeIO, pc.Dot, pc.AllReduce, pc.Combine, pc.Axpy)
		fmt.Printf("at %.1f GHz: %.2f µs/iteration (%.0f%% inter-wafer + reduction)\n",
			clock/1e9, float64(pc.Total())/clock*1e6,
			100*float64(pc.Communication())/float64(pc.Total()))
		model := perfmodel.SimModel().MultiWaferIterationCycles(
			m.NX, m.NY, m.NZ, opts.MultiWafer.Grid.W, opts.MultiWafer.Grid.H, clock, perfmodel.DefaultEdgeIO())
		fmt.Printf("model prediction: %.0f cycles/iteration\n", model.Total())
		return
	}
	pc := res.Telemetry.PerIteration
	fmt.Printf("cycles/iteration: %d  (spmv %d, dot %d, allreduce %d, axpy %d)\n",
		pc.Total(), pc.SpMV, pc.Dot, pc.AllReduce, pc.Axpy)
	fmt.Printf("at %.1f GHz: %.2f µs/iteration\n", clock/1e9, float64(pc.Total())/clock*1e6)

	model := perfmodel.SimModel()
	w := perfmodel.WSE{W: nx, H: ny, ClockHz: clock, SIMD: 4}
	fmt.Printf("model prediction: %.0f cycles/iteration\n", model.IterationCycles(w, nz).Total())
}
