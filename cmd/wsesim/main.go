// Command wsesim solves a 7-point-stencil system with BiCGStab on the
// cycle-level wafer simulator and reports convergence plus the
// per-iteration cycle breakdown, extrapolated to wall-clock time at the
// CS-1 clock.
//
// Two execution backends:
//
//	default         one wafer whose fabric equals the mesh's X×Y extent
//	                (kernels.BiCGStabWSE: Listing 1 SpMV, float32
//	                AllReduce dots)
//	-wafers WxH     a cluster of W×H cycle-simulated wafers coupled by
//	                the edge-I/O interconnect model
//	                (internal/multiwafer: halo-resident SpMV, two-level
//	                exactly-rounded dots — residual histories are
//	                bit-identical for every grid, so `-wafers 2x1` and
//	                `-wafers 1x1` print the same convergence)
//
// Typical runs:
//
//	wsesim -nx 16 -ny 16 -nz 64 -problem momentum
//	wsesim -nx 64 -ny 64 -nz 64 -wafers 2x1 -iters 5
//
// Single-wafer solves are crash-recoverable: -checkpoint FILE writes an
// encoded machine snapshot every -checkpoint-every iterations, and
// -resume FILE restarts from one (run with the same mesh and problem
// flags); the resumed solve reproduces the uninterrupted one bit for
// bit. See docs/ARCHITECTURE.md, "Snapshots & exact reductions".
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/multiwafer"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
)

// fatalUsage reports a flag-validation error with the usage text and a
// non-zero exit, so bad invocations fail loudly instead of panicking
// somewhere inside the simulator.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wsesim: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	nx := flag.Int("nx", 8, "fabric/mesh width")
	ny := flag.Int("ny", 8, "fabric/mesh height")
	nz := flag.Int("nz", 64, "Z points per tile (even)")
	iters := flag.Int("iters", 20, "max BiCGStab iterations")
	tol := flag.Float64("tol", 1e-3, "relative residual tolerance")
	problem := flag.String("problem", "momentum", "poisson|momentum|random")
	wafers := flag.String("wafers", "",
		"wafer grid WxH: run the multiwafer cluster backend instead of a single wafer (e.g. 2x1)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"simulation worker goroutines (>1 shards each fabric on a persistent pool; results are bit-identical)")
	ckptPath := flag.String("checkpoint", "",
		"write a crash-recovery checkpoint to this file every -checkpoint-every iterations (single-wafer only)")
	ckptEvery := flag.Int("checkpoint-every", 10, "iterations between checkpoints when -checkpoint is set")
	resumePath := flag.String("resume", "",
		"resume a single-wafer solve from this checkpoint file (same mesh/problem flags as the checkpointed run)")
	flag.Parse()

	if *nx <= 0 || *ny <= 0 || *nz <= 0 {
		fatalUsage("mesh dimensions must be positive (got %dx%dx%d)", *nx, *ny, *nz)
	}
	if *nz%2 != 0 {
		fatalUsage("-nz must be even (fp16 words stream in pairs); got %d", *nz)
	}
	if *iters <= 0 {
		fatalUsage("-iters must be positive; got %d", *iters)
	}

	m := stencil.Mesh{NX: *nx, NY: *ny, NZ: *nz}
	var op *stencil.Op7
	switch *problem {
	case "poisson":
		op = stencil.Poisson(m, 1)
	case "random":
		op = stencil.RandomDiagDominant(m, 1.5, rand.New(rand.NewSource(1)))
	case "momentum":
		op = stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	default:
		fatalUsage("unknown -problem %q (want poisson, momentum or random)", *problem)
	}
	xe := make([]float64, m.N())
	rng := rand.New(rand.NewSource(7))
	for i := range xe {
		xe[i] = rng.Float64()
	}
	p, _ := core.NewProblem(op, xe)

	opts := core.Options{Backend: core.Wafer, MaxIter: *iters, Tol: *tol,
		Wafer: core.WaferOptions{Workers: *workers}}
	if *wafers != "" {
		grid, err := multiwafer.ParseTopology(*wafers)
		if err != nil {
			fatalUsage("bad -wafers: %v", err)
		}
		opts.Backend = core.MultiWafer
		opts.Wafer = core.WaferOptions{}
		opts.MultiWafer = core.MultiWaferOptions{Grid: grid, Workers: *workers}
	}
	written := 0
	if *ckptPath != "" {
		opts.Wafer.CheckpointEvery = *ckptEvery
		opts.Wafer.Checkpoint = func(blob []byte) error {
			// Write-then-rename, so a crash mid-write leaves the previous
			// checkpoint intact.
			tmp := *ckptPath + ".tmp"
			if err := os.WriteFile(tmp, blob, 0o644); err != nil {
				return err
			}
			if err := os.Rename(tmp, *ckptPath); err != nil {
				return err
			}
			written++
			return nil
		}
	}
	if *resumePath != "" {
		blob, err := os.ReadFile(*resumePath)
		if err != nil {
			log.Fatal(err)
		}
		opts.Wafer.Resume = blob
		fmt.Printf("resuming from %s (%d bytes)\n", *resumePath, len(blob))
	}
	// One validator for every entry point: the daemon and all the CLIs
	// route bad combinations (e.g. -checkpoint with -wafers) through
	// core.Options.Validate instead of ad-hoc flag checks.
	if err := opts.Validate(); err != nil {
		fatalUsage("%v", err)
	}
	res, err := core.Solve(p, opts)
	if err != nil {
		log.Fatal(err)
	}
	if written > 0 {
		fmt.Printf("wrote %d checkpoint(s) to %s\n", written, *ckptPath)
	}

	const clock = 1.1e9
	if opts.Backend == core.MultiWafer {
		grid := opts.MultiWafer.Grid
		fmt.Printf("mesh %v on a %s wafer grid (%d wafers, ~%d×%d fabric each; %s problem)\n",
			m, grid, grid.Wafers(),
			(*nx+grid.W-1)/grid.W, (*ny+grid.H-1)/grid.H, *problem)
	} else {
		fmt.Printf("mesh %v on %d×%d fabric (%s problem)\n", m, *nx, *ny, *problem)
	}
	fmt.Printf("iterations: %d  converged: %v  true residual: %.3e\n",
		res.Iterations, res.Converged, res.TrueResidual)
	if opts.Backend == core.MultiWafer {
		pc := res.Telemetry.PerIteration
		fmt.Printf("cycles/iteration: %d  (spmv %d, edge-I/O %d, dot %d, allreduce %d, combine %d, axpy %d)\n",
			pc.Total(), pc.SpMV, pc.EdgeIO, pc.Dot, pc.AllReduce, pc.Combine, pc.Axpy)
		fmt.Printf("at %.1f GHz: %.2f µs/iteration (%.0f%% inter-wafer + reduction)\n",
			clock/1e9, float64(pc.Total())/clock*1e6,
			100*float64(pc.Communication())/float64(pc.Total()))
		model := perfmodel.SimModel().MultiWaferIterationCycles(
			m.NX, m.NY, m.NZ, opts.MultiWafer.Grid.W, opts.MultiWafer.Grid.H, clock, perfmodel.DefaultEdgeIO())
		fmt.Printf("model prediction: %.0f cycles/iteration\n", model.Total())
		return
	}
	pc := res.Telemetry.PerIteration
	fmt.Printf("cycles/iteration: %d  (spmv %d, dot %d, allreduce %d, axpy %d)\n",
		pc.Total(), pc.SpMV, pc.Dot, pc.AllReduce, pc.Axpy)
	fmt.Printf("at %.1f GHz: %.2f µs/iteration\n", clock/1e9, float64(pc.Total())/clock*1e6)

	model := perfmodel.SimModel()
	w := perfmodel.WSE{W: *nx, H: *ny, ClockHz: clock, SIMD: 4}
	fmt.Printf("model prediction: %.0f cycles/iteration\n", model.IterationCycles(w, *nz).Total())
}
