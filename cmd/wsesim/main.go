// Command wsesim solves a 7-point-stencil system with BiCGStab on the
// cycle-level wafer simulator and reports convergence plus the
// per-iteration cycle breakdown, extrapolated to wall-clock time at the
// CS-1 clock.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"

	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
)

func main() {
	nx := flag.Int("nx", 8, "fabric/mesh width")
	ny := flag.Int("ny", 8, "fabric/mesh height")
	nz := flag.Int("nz", 64, "Z points per tile (even)")
	iters := flag.Int("iters", 20, "max BiCGStab iterations")
	tol := flag.Float64("tol", 1e-3, "relative residual tolerance")
	problem := flag.String("problem", "momentum", "poisson|momentum|random")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"simulation worker goroutines (>1 shards the fabric on a persistent pool; results are bit-identical)")
	flag.Parse()

	m := stencil.Mesh{NX: *nx, NY: *ny, NZ: *nz}
	var op *stencil.Op7
	switch *problem {
	case "poisson":
		op = stencil.Poisson(m, 1)
	case "random":
		op = stencil.RandomDiagDominant(m, 1.5, rand.New(rand.NewSource(1)))
	default:
		op = stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	}
	xe := make([]float64, m.N())
	rng := rand.New(rand.NewSource(7))
	for i := range xe {
		xe[i] = rng.Float64()
	}
	p, _ := core.NewProblem(op, xe)

	res, err := core.Solve(p, core.Options{Backend: core.Wafer, MaxIter: *iters, Tol: *tol, Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mesh %v on %d×%d fabric (%s problem)\n", m, *nx, *ny, *problem)
	fmt.Printf("iterations: %d  converged: %v  true residual: %.3e\n",
		res.Iterations, res.Converged, res.TrueResidual)
	pc := res.Cycles
	clock := 1.1e9
	fmt.Printf("cycles/iteration: %d  (spmv %d, dot %d, allreduce %d, axpy %d)\n",
		pc.Total(), pc.SpMV, pc.Dot, pc.AllReduce, pc.Axpy)
	fmt.Printf("at %.1f GHz: %.2f µs/iteration\n", clock/1e9, float64(pc.Total())/clock*1e6)

	model := perfmodel.SimModel()
	w := perfmodel.WSE{W: *nx, H: *ny, ClockHz: clock, SIMD: 4}
	fmt.Printf("model prediction: %.0f cycles/iteration\n", model.IterationCycles(w, *nz).Total())
}
