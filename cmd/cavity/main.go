// Command cavity runs the MFIX-style SIMPLE solver on the lid-driven
// cavity and prints residual history and the vertical centreline
// u-velocity profile.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/mfix"
)

func main() {
	n := flag.Int("n", 12, "cells per side")
	re := flag.Float64("re", 100, "Reynolds number")
	iters := flag.Int("iters", 60, "SIMPLE iterations")
	flag.Parse()

	c := mfix.NewCavity(*n, *re)
	res, err := c.Run(*iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lid-driven cavity %d³, Re=%g, %d SIMPLE iterations\n", *n, *re, *iters)
	for i, r := range res {
		if i%5 == 0 || i == len(res)-1 {
			fmt.Printf("  iter %3d: mass %.3e  momentum-change %.3e\n", i+1, r.Mass, r.Momentum)
		}
	}
	fmt.Println("centreline u-velocity (bottom -> lid):")
	for j, u := range c.CenterlineU() {
		y := (float64(j) + 0.5) / float64(*n)
		fmt.Printf("  y=%.3f  u=%+.4f\n", y, u)
	}
}
