// Command cavity runs the MFIX-style SIMPLE solver on the lid-driven
// cavity and prints residual history and the vertical centreline
// u-velocity profile.
//
// The 2D cavity (default) supports two pressure-solve backends:
//
//	-backend=host   float64 BiCGStab in-process (fast reference)
//	-backend=wse    the pressure-correction BiCGStab cycle-simulated on
//	                a wafer fabric of (n/block)² tiles through the §IV-2
//	                block-halo mapping, with measured cycles reported
//
// The paper-style headline run is the Table II cavity on a sharded
// 128×128 fabric:
//
//	cavity -backend=wse -n 256 -block 2 -workers 8 -iters 5
//
// (minutes of host time: every pressure solve steps the full machine
// cycle by cycle). -dim=3 selects the original 3D cavity, which is
// host-only.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/kernels"
	"repro/internal/mfix"
	"repro/internal/wse"
)

// fatalUsage reports a flag-validation error with the usage text and a
// non-zero exit.
func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "cavity: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	dim := flag.Int("dim", 2, "cavity dimensionality: 2 (wafer-capable) or 3 (host only)")
	n := flag.Int("n", 16, "cells per side")
	re := flag.Float64("re", 100, "Reynolds number")
	iters := flag.Int("iters", 40, "SIMPLE iterations")
	backend := flag.String("backend", "host", "pressure-solve backend: host | wse (2D only)")
	block := flag.Int("block", 2, "wse backend: block edge b; the fabric is (n/b)² tiles")
	workers := flag.Int("workers", 1, "wse backend: simulation engine workers (>1 shards the fabric)")
	flag.Parse()

	if *n <= 0 || *iters <= 0 {
		fatalUsage("-n and -iters must be positive (got n=%d, iters=%d)", *n, *iters)
	}
	if *dim == 3 {
		if *backend != "host" {
			fatalUsage("the 3D cavity has no %q backend; the wafer path is the 2D block-halo mapping", *backend)
		}
		run3D(*n, *re, *iters)
		return
	}
	if *dim != 2 {
		fatalUsage("unsupported -dim=%d", *dim)
	}

	c := mfix.NewCavity2D(*n, *re)
	var wafer *kernels.Wafer2DBackend
	switch *backend {
	case "host":
	case "wse":
		if *block <= 0 {
			fatalUsage("-block must be positive; got %d", *block)
		}
		if *n%*block != 0 {
			fatalUsage("n=%d does not tile into %d×%d blocks", *n, *block, *block)
		}
		cfg := wse.CS1(*n / *block, *n / *block)
		cfg.Workers = *workers
		mach := wse.New(cfg)
		// Close releases the sharded engine's worker pool; without it a
		// long-lived host would park pool goroutines until GC.
		defer mach.Close()
		wafer = kernels.NewWafer2DBackend(mach, *block)
		c.Pressure = wafer
		fmt.Printf("pressure solve on simulated %d×%d fabric (%s engine), %d×%d blocks\n",
			cfg.FabricW, cfg.FabricH, mach.Fab.StepperName(), *block, *block)
	default:
		fatalUsage("unknown backend %q", *backend)
	}

	res, err := c.Run(*iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lid-driven cavity %d², Re=%g, %d SIMPLE iterations, pressure backend %s\n",
		*n, *re, *iters, c.Pressure.Name())
	for i, r := range res {
		if i%5 == 0 || i == len(res)-1 {
			fmt.Printf("  iter %3d: mass %.3e  momentum-change %.3e\n", i+1, r.Mass, r.Momentum)
		}
	}
	if wafer != nil {
		fmt.Printf("wafer pressure solver: %d BiCGStab iterations over %d solves\n",
			wafer.Iterations, wafer.Solves)
		fmt.Printf("  simulated cycles %d (spmv %d, dot %d, allreduce %d, axpy %d)\n",
			wafer.Cycles.Total(), wafer.Cycles.SpMV, wafer.Cycles.Dot,
			wafer.Cycles.AllReduce, wafer.Cycles.Axpy)
		if wafer.Iterations > 0 {
			perPt := float64(wafer.Cycles.Total()) / float64(wafer.Iterations) / float64(*n**n)
			fmt.Printf("  %.3f cycles/meshpoint per solver iteration\n", perPt)
		}
	}
	fmt.Println("centreline u-velocity (bottom -> lid):")
	for j, u := range c.CenterlineU() {
		y := (float64(j) + 0.5) / float64(*n)
		fmt.Printf("  y=%.3f  u=%+.4f\n", y, u)
	}
}

func run3D(n int, re float64, iters int) {
	c := mfix.NewCavity(n, re)
	res, err := c.Run(iters)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lid-driven cavity %d³, Re=%g, %d SIMPLE iterations\n", n, re, iters)
	for i, r := range res {
		if i%5 == 0 || i == len(res)-1 {
			fmt.Printf("  iter %3d: mass %.3e  momentum-change %.3e\n", i+1, r.Mass, r.Momentum)
		}
	}
	fmt.Println("centreline u-velocity (bottom -> lid):")
	for j, u := range c.CenterlineU() {
		y := (float64(j) + 0.5) / float64(n)
		fmt.Printf("  y=%.3f  u=%+.4f\n", y, u)
	}
}
