// Command repro regenerates every table and figure of the paper and
// prints paper-vs-measured comparisons. Run with no arguments for the
// full suite, or select one experiment:
//
//	-exp name    table1 | headline | allreduce | paperallreduce |
//	             multiwafer | fig7 | fig8 | fig9 | table2 | spmv2d |
//	             cavity2d | fig1 | memory | routing | all
//	-fig9n n     Figure 9 mesh scale (default 25 => 25×100×25;
//	             the paper's mesh is 100×400×100, i.e. -fig9n 100)
//
// The default "all" suite skips paperallreduce (it cycle-simulates the
// full 602×595 wafer, ~15 s). See cmd/README.md and docs/RESULTS.md
// for what each experiment measures and the paper numbers it targets.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	exp := flag.String("exp", "all",
		"experiment: table1|headline|allreduce|paperallreduce|multiwafer|fig7|fig8|fig9|table2|spmv2d|cavity2d|fig1|memory|routing|all")
	fig9N := flag.Int("fig9n", 25, "fig9 mesh scale: runs 25×100×25 by default (paper: 100×400×100)")
	flag.Parse()
	if *fig9N <= 0 {
		fmt.Fprintf(os.Stderr, "repro: -fig9n must be positive; got %d\n", *fig9N)
		flag.Usage()
		os.Exit(2)
	}

	runs := []struct {
		name string
		fn   func() string
	}{
		{"table1", core.Table1Report},
		{"headline", core.HeadlineReport},
		{"allreduce", core.AllReduceReport},
		// Cycle-simulates the full 602×595 wafer (~15 s); selectable
		// explicitly, skipped by the default "all" suite.
		{"paperallreduce", core.PaperAllReduceReport},
		// Cycle-simulates a small mesh across 1/2/4-wafer grids, then
		// projects the cluster-of-wafers backend to paper scale.
		{"multiwafer", core.MultiWaferReport},
		{"fig7", core.ScalingReport}, // figs 7+8 share the report
		{"fig8", core.ScalingReport},
		{"fig9", func() string { return core.Fig9Report(*fig9N, *fig9N*4, *fig9N, 15) }},
		{"table2", core.Table2Report},
		{"spmv2d", core.SpMV2DReport},
		// Cycle-simulates the Table II cavity's pressure solves on a
		// 8×8 wafer fabric (seconds); cmd/cavity -backend=wse scales the
		// same path to the 128×128 fabric.
		{"cavity2d", core.Cavity2DReport},
		{"fig1", core.Fig1Report},
		{"memory", core.MemoryReport},
		{"routing", core.RoutingReport},
	}
	found := false
	seen := map[string]bool{}
	for _, r := range runs {
		if *exp != "all" && r.name != *exp {
			continue
		}
		if seen[r.name] || (r.name == "fig8" && *exp == "all") {
			continue // scaling report covers both figures
		}
		if r.name == "paperallreduce" && *exp == "all" {
			continue // paper-scale run is opt-in; see flag help
		}
		seen[r.name] = true
		found = true
		fmt.Println("==============================================================")
		fmt.Println(r.fn())
	}
	if !found {
		fmt.Fprintf(os.Stderr, "repro: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
