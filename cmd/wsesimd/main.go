// Command wsesimd is the persistent solver daemon: it owns a pool of
// warm, pre-built simulated machines behind an HTTP/JSON job API
// (internal/service). Clients POST deterministic job specs, poll or
// stream residual histories, and fetch solutions; the daemon reuses
// machines across same-shape jobs through a keyed cache, spools every
// job durably, and on SIGTERM checkpoints in-flight wafer solves so a
// restart resumes them bit-identically.
//
// Typical session:
//
//	wsesimd -addr :8844 -spool /var/lib/wsesimd &
//	curl -s localhost:8844/v1/jobs -d '{"problem":"momentum","nx":8,"ny":8,"nz":16,"max_iter":20}'
//	curl -s localhost:8844/v1/jobs/j000001
//	curl -s localhost:8844/v1/jobs/j000001/solution
//	curl -s localhost:8844/metrics
//
// See docs/ARCHITECTURE.md, "Service layer".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/service"
)

func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wsesimd: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8844", "listen address")
	spool := flag.String("spool", "", "durable job spool directory (empty: in-memory only, no crash recovery)")
	workers := flag.Int("workers", 4, "solve worker pool size (concurrent jobs)")
	queueDepth := flag.Int("queue-depth", 256, "pending-job queue bound; submissions beyond it get 503")
	maxIdle := flag.Int("max-idle-machines", 8, "warm-machine cache bound across all shapes")
	suspendEvery := flag.Int("suspend-every", 4, "checkpoint cadence (iterations) for suspending wafer jobs at shutdown")
	retries := flag.Int("retries", 2, "solve retries before a job fails")
	backoff := flag.Duration("retry-backoff", 100*time.Millisecond, "delay before the first retry, doubling per attempt")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max wait for in-flight jobs to finish or suspend at shutdown")
	jobTTL := flag.Duration("job-ttl", 0, "default job lifetime from submission when the spec has no timeout_ms (0: none)")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive backend failures that trip its circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long a tripped circuit stays open before a half-open probe")
	maxBody := flag.Int64("max-body", 1<<20, "POST /v1/jobs request body cap in bytes")
	injectFaults := flag.String("inject-spool-faults", "", "TESTING ONLY: comma-separated op:substr:skip:times:mode spool fault rules (see internal/faultinject)")
	flag.Parse()

	if *workers <= 0 || *queueDepth <= 0 || *maxIdle <= 0 || *suspendEvery <= 0 {
		fatalUsage("-workers, -queue-depth, -max-idle-machines and -suspend-every must be positive")
	}
	if *retries < 0 {
		fatalUsage("-retries must be >= 0; got %d", *retries)
	}
	if *breakerThreshold <= 0 || *breakerCooldown <= 0 {
		fatalUsage("-breaker-threshold and -breaker-cooldown must be positive")
	}
	if *maxBody <= 0 {
		fatalUsage("-max-body must be positive; got %d", *maxBody)
	}
	if *jobTTL < 0 {
		fatalUsage("-job-ttl must be >= 0; got %v", *jobTTL)
	}
	var fs faultinject.FS
	if *injectFaults != "" {
		rules, err := faultinject.Parse(*injectFaults)
		if err != nil {
			fatalUsage("-inject-spool-faults: %v", err)
		}
		fs = faultinject.NewFaultFS(nil, rules...)
		log.Printf("wsesimd: FAULT INJECTION ACTIVE on the spool: %s", *injectFaults)
	}

	s, err := service.New(service.Config{
		SpoolDir:         *spool,
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		MaxIdleMachines:  *maxIdle,
		SuspendEvery:     *suspendEvery,
		MaxRetries:       *retries,
		RetryBackoff:     *backoff,
		DefaultTTL:       *jobTTL,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		MaxBody:          *maxBody,
		FS:               fs,
	})
	if err != nil {
		log.Fatalf("wsesimd: %v", err)
	}
	s.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("wsesimd: %v", err)
	}
	// Slow-client protection. No WriteTimeout: /v1/jobs/{id}/stream
	// legitimately writes for the lifetime of a solve; response writes
	// are bounded instead by the OS socket buffers plus IdleTimeout.
	httpSrv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("wsesimd: %v", err)
		}
	}()
	log.Printf("wsesimd: listening on %s (spool %q, %d workers)", ln.Addr(), *spool, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	log.Printf("wsesimd: draining (in-flight wafer solves suspend at their next checkpoint)")

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := s.Shutdown(ctx); err != nil {
		log.Printf("wsesimd: drain incomplete: %v", err)
		os.Exit(1)
	}
	log.Printf("wsesimd: stopped")
}
