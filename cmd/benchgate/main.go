// Command benchgate is the benchmark-regression gate behind the
// bench-regression CI job. It parses `go test -bench` output, reduces
// each benchmark's samples to the median ns/op (benchstat-style: the
// median is robust to scheduler noise across -count repetitions), and
// either writes a baseline JSON or compares against a committed one.
//
// Comparison rule: over every benchmark matching -gate that appears in
// both the baseline and the new run, compute the per-benchmark ratio
// new/old and fail (exit 1) when the geometric mean of the ratios
// exceeds 1 + threshold%. A geomean over the gated set keeps one noisy
// benchmark from failing the build while still catching a real
// regression spread across the suite. The default gate regexp is
// unanchored, so 'MachineStep' covers both the saturated
// BenchmarkMachineStep sweep (including the paper-scale 602x595 entry)
// and BenchmarkMachineStepIdle, the idle-tiles-are-free benchmark of
// the event-driven core scheduler.
//
// Typical use (see Makefile and .github/workflows/ci.yml):
//
//	go test -short -run '^$' -bench . -benchtime 3x -count 6 . > bench.txt
//	go run ./cmd/benchgate -input bench.txt -write BENCH_BASELINE.json   # refresh baseline
//	go run ./cmd/benchgate -input bench.txt -baseline BENCH_BASELINE.json \
//	    -gate 'Benchmark(FabricStep|MachineStep)' -threshold 15          # gate a change
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark reference.
type Baseline struct {
	Note       string                `json:"note,omitempty"`
	GoVersion  string                `json:"go,omitempty"`
	GOOS       string                `json:"goos,omitempty"`
	GOARCH     string                `json:"goarch,omitempty"`
	CPU        string                `json:"cpu,omitempty"`
	Benchmarks map[string]*BenchStat `json:"benchmarks"`
}

// BenchStat summarizes one benchmark's samples.
type BenchStat struct {
	NsPerOp float64 `json:"ns_per_op"`
	Samples int     `json:"samples"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkFabricStep/128x128/sharded-8   3   1874130 ns/op   65336 words-moved/cycle
//
// The trailing -8 is GOMAXPROCS; it is stripped so baselines transfer
// between hosts with different core counts. Single-core hosts emit no
// suffix at all, which is why gated benchmark sub-names must never end
// in "-<digits>" themselves — the strip would eat the legitimate tail
// on one side of the comparison (bench_test.go uses "sharded", not
// "sharded-8", for exactly this reason).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

func parse(path string) (map[string][]float64, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	samples := make(map[string][]float64)
	cpu := ""
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if after, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = after
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		samples[m[1]] = append(samples[m[1]], ns)
	}
	return samples, cpu, sc.Err()
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func reduce(samples map[string][]float64) map[string]*BenchStat {
	out := make(map[string]*BenchStat, len(samples))
	for name, xs := range samples {
		out[name] = &BenchStat{NsPerOp: median(xs), Samples: len(xs)}
	}
	return out
}

func writeJSON(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func main() {
	var (
		input     = flag.String("input", "", "go test -bench output to parse (required)")
		write     = flag.String("write", "", "write a fresh baseline JSON to this path and exit")
		baseline  = flag.String("baseline", "", "committed baseline JSON to gate against")
		gate      = flag.String("gate", "Benchmark(FabricStep|MachineStep|SpMV2DMachine|StencilApply|Cavity2DWSEIteration|MultiWaferIteration|Snapshot|ServiceSolve)", "regexp of benchmark names the gate applies to")
		threshold = flag.Float64("threshold", 15, "max allowed geomean slowdown, percent")
		out       = flag.String("out", "", "also write the new run's summary JSON here (artifact upload)")
	)
	flag.Parse()
	if *input == "" || (*write == "" && *baseline == "") {
		fmt.Fprintln(os.Stderr, "usage: benchgate -input bench.txt (-write baseline.json | -baseline baseline.json [-gate re] [-threshold pct] [-out new.json])")
		os.Exit(2)
	}
	if env := os.Getenv("BENCH_GATE_THRESHOLD"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: bad BENCH_GATE_THRESHOLD %q: %v\n", env, err)
			os.Exit(2)
		}
		*threshold = v
	}

	samples, cpu, err := parse(*input)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(samples) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark results in %s\n", *input)
		os.Exit(2)
	}
	cur := &Baseline{
		Note:      "Benchmark baseline for the bench-regression CI gate. Regenerate with `make bench-baseline` on the reference runner after intentional performance changes.",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS, GOARCH: runtime.GOARCH, CPU: cpu,
		Benchmarks: reduce(samples),
	}

	if *write != "" {
		if err := writeJSON(*write, cur); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", *write, len(cur.Benchmarks))
		return
	}

	if *out != "" {
		if err := writeJSON(*out, cur); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}
	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *baseline, err)
		os.Exit(2)
	}
	gateRE, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -gate: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if gateRE.MatchString(name) && base.Benchmarks[name] != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no gated benchmarks shared with the baseline (gate %q) — refusing to pass vacuously\n", *gate)
		os.Exit(1)
	}

	logSum := 0.0
	fmt.Printf("%-52s %14s %14s %9s\n", "benchmark", "baseline ns/op", "new ns/op", "delta")
	for _, name := range names {
		old, now := base.Benchmarks[name].NsPerOp, cur.Benchmarks[name].NsPerOp
		ratio := now / old
		logSum += math.Log(ratio)
		fmt.Printf("%-52s %14.0f %14.0f %+8.1f%%\n", name, old, now, (ratio-1)*100)
	}
	geomean := math.Exp(logSum / float64(len(names)))
	limit := 1 + *threshold/100
	fmt.Printf("\ngeomean ratio over %d gated benchmarks: %.3f (limit %.3f)\n", len(names), geomean, limit)
	if geomean > limit {
		fmt.Printf("FAIL: geomean slowdown %.1f%% exceeds the %.0f%% threshold\n", (geomean-1)*100, *threshold)
		os.Exit(1)
	}
	fmt.Println("PASS: no benchmark regression beyond threshold")
}
