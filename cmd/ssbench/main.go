// Command ssbench load-tests a running wsesimd daemon and reports
// throughput and latency, in the style of storage-service benchmarks:
// a full-write mix (every operation submits a solve and polls it to
// completion) or a mixed read/write mix (mostly status reads of
// finished jobs against a 20% submit stream, the cache-friendly
// profile).
//
// With -cancel-frac a share of the submissions DELETE their job right
// after posting it — the chaos mix that exercises cooperative
// cancellation under concurrent load.
//
//	wsesimd -addr :8844 &
//	ssbench -addr http://127.0.0.1:8844 -mix full-write -ops 64 -c 8
//	ssbench -addr http://127.0.0.1:8844 -mix mixed -ops 256 -c 8
//	ssbench -addr http://127.0.0.1:8844 -mix mixed -cancel-frac 0.25 -ops 64 -c 8
//
// The same engine (internal/service.RunLoad) backs the root
// BenchmarkService entries, so the QPS and latency medians land in
// BENCH_BASELINE.json under the bench-regression gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/service"
)

func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ssbench: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8844", "wsesimd base URL")
	mixFlag := flag.String("mix", "full-write", "operation mix: full-write | mixed")
	ops := flag.Int("ops", 64, "total operations across all workers")
	conc := flag.Int("c", 4, "concurrent client workers")
	writeFrac := flag.Float64("write-fraction", 0.2, "share of writes under -mix mixed")
	cancelFrac := flag.Float64("cancel-frac", 0, "share of writes that DELETE their job right after submitting (chaos mix)")
	poll := flag.Duration("poll", 2*time.Millisecond, "status poll interval while waiting for a solve")

	problem := flag.String("problem", "momentum", "submitted job: problem generator (poisson|momentum|random)")
	nx := flag.Int("nx", 4, "submitted job: mesh width")
	ny := flag.Int("ny", 4, "submitted job: mesh height")
	nz := flag.Int("nz", 8, "submitted job: Z points (even on simulated backends)")
	backend := flag.String("backend", "wafer", "submitted job: backend (local|wafer|cluster|multiwafer)")
	iters := flag.Int("iters", 4, "submitted job: max iterations")
	grid := flag.String("grid", "", "submitted job: wafer grid WxH (multiwafer backend)")
	flag.Parse()

	mix, err := service.ParseLoadMix(*mixFlag)
	if err != nil {
		fatalUsage("%v", err)
	}
	if *ops <= 0 || *conc <= 0 {
		fatalUsage("-ops and -c must be positive")
	}
	if *writeFrac <= 0 || *writeFrac > 1 {
		fatalUsage("-write-fraction must be in (0, 1]; got %v", *writeFrac)
	}
	if *cancelFrac < 0 || *cancelFrac >= 1 {
		fatalUsage("-cancel-frac must be in [0, 1); got %v", *cancelFrac)
	}
	spec := service.JobSpec{
		Problem: *problem, NX: *nx, NY: *ny, NZ: *nz,
		Backend: *backend, MaxIter: *iters, Grid: *grid,
	}
	if err := spec.Validate(); err != nil {
		fatalUsage("%v", err)
	}

	st, err := service.RunLoad(service.LoadOptions{
		BaseURL:        *addr,
		Mix:            mix,
		Concurrency:    *conc,
		Ops:            *ops,
		WriteFraction:  *writeFrac,
		CancelFraction: *cancelFrac,
		Spec:           spec,
		PollInterval:   *poll,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssbench: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("mix %s: %d writes + %d reads + %d cancels in %v  (%.1f ops/s)\n",
		mix, st.Writes.Count, st.Reads.Count, st.Cancels.Count, st.Elapsed.Round(time.Millisecond), st.QPS)
	printClass := func(name string, l service.LatencySummary) {
		if l.Count == 0 {
			return
		}
		fmt.Printf("%-18s avg %-10v p50 %-10v p95 %-10v max %v\n",
			name+" latency:", l.Avg.Round(time.Microsecond), l.P50.Round(time.Microsecond),
			l.P95.Round(time.Microsecond), l.Max.Round(time.Microsecond))
	}
	printClass("solve (write)", st.Writes)
	printClass("status (read)", st.Reads)
	printClass("cancel", st.Cancels)
}
