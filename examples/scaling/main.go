// Scaling study (Figures 7 and 8): strong scaling of the BiCGStab
// iteration on the modelled Joule cluster for the paper's two mesh
// sizes, plus a live rank-parallel run proving partition invariance, and
// a host-side study of the simulator's own sharded stepping engine
// (sequential vs worker-pool fabric stepping over growing fabrics).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/stencil"
)

func main() {
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker goroutines for the sharded simulator study")
	simCycles := flag.Int("sim-cycles", 300, "cycles per simulator measurement")
	flag.Parse()

	cfg := cluster.Joule()
	for _, tc := range []struct {
		name string
		m    stencil.Mesh
	}{{"370³ (Figure 7)", cluster.Fig7Mesh}, {"600³ (Figure 8)", cluster.Fig8Mesh}} {
		fmt.Printf("%s — modelled ms/iteration on Joule\n", tc.name)
		pts := cluster.StrongScaling(cfg, tc.m, cluster.PublishedCores)
		for _, p := range pts {
			fmt.Printf("  %6d cores  %8.2f ms   speedup %.1f×\n", p.Cores, p.Seconds*1e3, p.SpeedupVs1)
		}
	}
	fmt.Printf("CS-1 measured 28.1 µs/iteration => %.0f× the 16K-core cluster (paper: ~214×)\n\n",
		cfg.IterationTime(cluster.Fig8Mesh, 16384).Total()/28.1e-6)

	// Functional check: the goroutine-per-rank solve is partition
	// invariant.
	m := stencil.Mesh{NX: 16, NY: 16, NZ: 16}
	rng := rand.New(rand.NewSource(2))
	norm, diag := stencil.ConvectionDiffusion(m, 0.2, [3]float64{1, -0.3, 0.2}, 0.25).Normalize()
	b := make([]float64, m.N())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_ = diag
	for _, ranks := range []int{1, 8, 64} {
		x, hist, err := cluster.ParallelBiCGStab(norm, b, ranks, 30, 1e-8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ranks=%2d: %2d iterations, final residual %.2e, x[0]=%.12f\n",
			ranks, len(hist), hist[len(hist)-1], x[0])
	}

	// Host-side scaling of the cycle simulator itself: step a saturated
	// fabric with the Sequential and Sharded engines. Simulated state is
	// bit-identical (same words moved); only wall-clock changes, and only
	// on a multi-core host.
	fmt.Printf("\nsimulator engine scaling (GOMAXPROCS=%d, %d workers, %d cycles/point)\n",
		runtime.GOMAXPROCS(0), *workers, *simCycles)
	for _, size := range []int{16, 32, 64, 128} {
		seqNS, seqMoves := timeEngine(size, *simCycles, fabric.Sequential())
		shNS, shMoves := timeEngine(size, *simCycles, fabric.Sharded(*workers))
		if seqMoves != shMoves {
			log.Fatalf("engines disagree on %d×%d: %d vs %d words moved", size, size, seqMoves, shMoves)
		}
		fmt.Printf("  %3d×%-3d  seq %8.1f µs/cycle   sharded %8.1f µs/cycle   speedup %.2f×   (%d words/cycle)\n",
			size, size, float64(seqNS)/float64(*simCycles)/1e3,
			float64(shNS)/float64(*simCycles)/1e3,
			float64(seqNS)/float64(shNS), seqMoves/int64(*simCycles))
	}
}

// timeEngine steps a saturated size×size fabric (the canonical
// fabric.BuildFlows pattern: four directional flows, every router
// moving words on all mesh links) for cycles cycles and returns the
// elapsed nanoseconds and total words moved.
func timeEngine(size, cycles int, st fabric.Stepper) (int64, int64) {
	f := fabric.New(fabric.Config{W: size, H: size, Stepper: st})
	defer f.Close()
	fabric.BuildFlows(f)
	for warm := 0; warm < 2*size; warm++ {
		fabric.DriveFlows(f)
	}
	moves0 := f.Moves()
	t0 := time.Now()
	for i := 0; i < cycles; i++ {
		fabric.DriveFlows(f)
	}
	return time.Since(t0).Nanoseconds(), f.Moves() - moves0
}
