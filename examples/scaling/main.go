// Scaling study (Figures 7 and 8): strong scaling of the BiCGStab
// iteration on the modelled Joule cluster for the paper's two mesh
// sizes, plus a live rank-parallel run proving partition invariance.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/cluster"
	"repro/internal/stencil"
)

func main() {
	cfg := cluster.Joule()
	for _, tc := range []struct {
		name string
		m    stencil.Mesh
	}{{"370³ (Figure 7)", cluster.Fig7Mesh}, {"600³ (Figure 8)", cluster.Fig8Mesh}} {
		fmt.Printf("%s — modelled ms/iteration on Joule\n", tc.name)
		pts := cluster.StrongScaling(cfg, tc.m, cluster.PublishedCores)
		for _, p := range pts {
			fmt.Printf("  %6d cores  %8.2f ms   speedup %.1f×\n", p.Cores, p.Seconds*1e3, p.SpeedupVs1)
		}
	}
	fmt.Printf("CS-1 measured 28.1 µs/iteration => %.0f× the 16K-core cluster (paper: ~214×)\n\n",
		cfg.IterationTime(cluster.Fig8Mesh, 16384).Total()/28.1e-6)

	// Functional check: the goroutine-per-rank solve is partition
	// invariant.
	m := stencil.Mesh{NX: 16, NY: 16, NZ: 16}
	rng := rand.New(rand.NewSource(2))
	norm, diag := stencil.ConvectionDiffusion(m, 0.2, [3]float64{1, -0.3, 0.2}, 0.25).Normalize()
	b := make([]float64, m.N())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_ = diag
	for _, ranks := range []int{1, 8, 64} {
		x, hist, err := cluster.ParallelBiCGStab(norm, b, ranks, 30, 1e-8)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ranks=%2d: %2d iterations, final residual %.2e, x[0]=%.12f\n",
			ranks, len(hist), hist[len(hist)-1], x[0])
	}
}
