// Precision study (Figure 9): solve the same momentum-like system in
// single and mixed fp16/fp32 precision and print the residual histories,
// showing the mixed-precision plateau near fp16 machine epsilon.
package main

import (
	"fmt"

	"repro/internal/core"
)

func main() {
	// A scaled-down version of the paper's 100×400×100 momentum system;
	// pass larger dimensions through cmd/repro -exp fig9 for paper scale.
	series := core.Fig9Experiment(20, 80, 20, 15)
	fmt.Printf("%-5s  %-16s  %-16s\n", "iter", series[0].Name, series[1].Name)
	n := len(series[0].History)
	if len(series[1].History) < n {
		n = len(series[1].History)
	}
	for i := 0; i < n; i++ {
		fmt.Printf("%-5d  %-16.3e  %-16.3e\n", i+1, series[0].History[i], series[1].History[i])
	}
	fmt.Println("\nmixed precision tracks fp32 early, then plateaus near 1e-2..1e-3:")
	fmt.Println("fp16 machine precision (~1e-3) plus roundoff growth, as in the paper.")
}
