// AllReduce latency demo: cycle-simulate the Figure 6 wafer-wide scalar
// reduction across fabric sizes and compare against the diameter, then
// extrapolate to the full 602×595 wafer.
package main

import (
	"fmt"
	"log"

	"repro/internal/kernels"
	"repro/internal/perfmodel"
	"repro/internal/wse"
)

func main() {
	fmt.Println("fabric      cycles  diameter  ratio")
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {16, 16}, {32, 32}, {64, 64}, {96, 64}} {
		mach := wse.New(wse.CS1(dims[0], dims[1]))
		ar, err := kernels.NewAllReduce(mach, 0)
		if err != nil {
			log.Fatal(err)
		}
		vals := make([]float32, dims[0]*dims[1])
		for i := range vals {
			vals[i] = float32(i%7) * 0.5
		}
		res, err := ar.Run(vals, 1<<20)
		if err != nil {
			log.Fatal(err)
		}
		diam := dims[0] + dims[1] - 2
		fmt.Printf("%4d×%-4d  %6d  %8d  %.3f   sum=%g\n",
			dims[0], dims[1], res.Cycles, diam, float64(res.Cycles)/float64(diam), res.Sum)
	}
	w := perfmodel.CS1()
	fmt.Printf("\nfull wafer (602×595): %.0f cycles = %.2f µs at %.1f GHz\n",
		w.AllReduceCycles(), w.AllReduceSeconds()*1e6, w.ClockHz/1e9)
	fmt.Println("paper: under 1.5 µs for ~380,000 cores, ~10% above the fabric diameter")
}
