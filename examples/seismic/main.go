// Seismic: the 25-point width-4 acoustic-wave stencil — the high-order
// workload the wafer-scale follow-on literature runs — compiled by
// internal/stencilc into a four-round halo-relay program and driven as
// an implicit time stepper: each step solves (I + s·(−Δ₈))·u' = u with
// BiCGStab on the cycle-simulated wafer, and the measured SpMV cycles
// are checked against the exact perfmodel replay entry.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
)

func main() {
	m := stencil.Mesh{NX: 4, NY: 4, NZ: 8}
	shift := 0.08
	op := stencil.Seismic25(m, shift)

	// A smooth-ish random field as the exact solution; b = A·x.
	rng := rand.New(rand.NewSource(3))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.Float64()
	}
	p, _ := core.NewStarProblem(op, xe)

	fmt.Printf("25-point seismic stencil, s=%g, mesh %v on a %d×%d fabric\n",
		shift, m, m.NX, m.NY)
	for _, backend := range []core.Backend{core.Local, core.Wafer} {
		res, err := core.SolveStar(p, core.Options{
			Backend: backend, MaxIter: 60, Tol: 1e-3,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s: %d iterations, converged %v, true residual %.2e\n",
			backend, res.Iterations, res.Converged, res.TrueResidual)
		if res.Telemetry.Simulated {
			pc := res.Telemetry.PerIteration
			fmt.Printf("         cycles/iteration %d (spmv %d, dot %d, allreduce %d, axpy %d)\n",
				pc.Total(), pc.SpMV, pc.Dot, pc.AllReduce, pc.Axpy)
		}
	}

	// The exact cycle model for one compiled application: the same
	// word-level exchange the simulator executes, replayed shape-only.
	apply := perfmodel.StencilApply3D{W: m.NX, H: m.NY, Z: m.NZ, Widths: op.W}
	fmt.Printf("exact model: one SpMV application = %d cycles\n", apply.Cycles())
	paper := perfmodel.StencilApply3D{W: 602, H: 595, Z: 1536, Widths: op.W}
	fmt.Printf("             at paper scale (602×595 fabric, z=1536): %d cycles (%.1f µs at 1.1 GHz)\n",
		paper.Cycles(), float64(paper.Cycles())/1.1e9*1e6)
}
