// Multi-wafer scaling study: the paper closes by arguing one CS-1
// replaces a CPU cluster; this study asks what a cluster *of wafers*
// buys. It runs three legs:
//
//  1. a live cycle-simulated sweep of one mesh across wafer grids,
//     checking the backend's contract — residual histories bit-identical
//     for every decomposition — while measuring where the cycles go;
//  2. the calibrated model's strong-scaling sweep at paper scale: the 3D
//     mapping is X×Y-parallel, so cutting a one-wafer mesh finer cannot
//     go faster — the sweep prices the edge-I/O halos and the exact
//     two-level combine against the smaller on-wafer AllReduce;
//  3. the weak-scaling sweep: each wafer keeps a full 600×595 extent, so
//     a 4×4 grid solves a 2400×2380×1536 mesh (8.8 billion points,
//     ~16× anything one wafer can hold) at a modelled ~3.4× the
//     single-wafer iteration time — capacity is what scale-out buys.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"

	"repro/internal/core"
	"repro/internal/multiwafer"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
)

func main() {
	nx := flag.Int("nx", 16, "live-sweep mesh width (and fabric extent before cutting)")
	ny := flag.Int("ny", 16, "live-sweep mesh height")
	nz := flag.Int("nz", 32, "live-sweep Z points per tile (even)")
	iters := flag.Int("iters", 4, "BiCGStab iterations per live solve")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulation workers per wafer machine")
	flag.Parse()

	// ---- Leg 1: live cycle-simulated sweep.
	m := stencil.Mesh{NX: *nx, NY: *ny, NZ: *nz}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	rng := rand.New(rand.NewSource(7))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.Float64()
	}
	p, _ := core.NewProblem(op, xe)

	fmt.Printf("live cycle simulation — %v mesh, %d iterations per grid\n", m, *iters)
	fmt.Printf("  %-6s %10s %8s %10s %10s %10s %8s   %s\n",
		"grid", "cyc/iter", "spmv", "allreduce", "edge-I/O", "combine", "comm%", "history[last]")
	var ref []float64
	for _, grid := range []multiwafer.Topology{{W: 1, H: 1}, {W: 2, H: 1}, {W: 2, H: 2}, {W: 4, H: 1}} {
		if grid.W > m.NX || grid.H > m.NY {
			continue
		}
		res, err := core.Solve(p, core.Options{
			Backend: core.MultiWafer, MaxIter: *iters,
			MultiWafer: core.MultiWaferOptions{Grid: grid, Workers: *workers},
		})
		if err != nil {
			log.Fatal(err)
		}
		pi := res.Telemetry.PerIteration
		fmt.Printf("  %-6s %10d %8d %10d %10d %10d %7.0f%%   %.9e\n",
			grid, pi.Total(), pi.SpMV, pi.AllReduce, pi.EdgeIO, pi.Combine,
			100*float64(pi.Communication())/float64(pi.Total()),
			res.History[len(res.History)-1])
		if ref == nil {
			ref = res.History
		} else {
			for i := range ref {
				if res.History[i] != ref[i] {
					log.Fatalf("grid %s: residual history diverged from 1x1 at iteration %d: %g vs %g",
						grid, i+1, res.History[i], ref[i])
				}
			}
		}
	}
	fmt.Printf("  residual histories bit-identical across all grids ✓\n\n")

	// ---- Legs 2 and 3: calibrated projections at paper scale.
	model := perfmodel.PaperModel()
	io := perfmodel.DefaultEdgeIO()
	mesh, _, _ := perfmodel.Headline()
	grids := [][2]int{{1, 1}, {2, 1}, {2, 2}, {4, 2}, {4, 4}}

	fmt.Printf("strong scaling (model, η=%.3f) — fixed %d×%d×%d mesh cut across wafer grids\n",
		perfmodel.PaperEta, mesh.X, mesh.Y, mesh.Z)
	fmt.Printf("  %-6s %8s %12s %9s %11s %7s\n", "grid", "wafers", "µs/iter", "speedup", "efficiency", "comm%")
	for _, pt := range model.MultiWaferScaling(mesh.X, mesh.Y, mesh.Z, grids, 1.1e9, io) {
		fmt.Printf("  %dx%-4d %8d %12.2f %9.2f %11.2f %6.0f%%\n",
			pt.GridW, pt.GridH, pt.Wafers, pt.IterMicros, pt.Speedup, pt.Efficiency,
			100*pt.Breakdown.CommFraction())
	}
	fmt.Printf("  (X×Y is already parallel on one wafer: finer cuts only buy a smaller\n")
	fmt.Printf("   AllReduce, and pay halos + combine latency for it)\n\n")

	fmt.Printf("weak scaling (model) — %d×%d per wafer, mesh grows with the grid\n", mesh.X, mesh.Y)
	fmt.Printf("  %-6s %8s %14s %12s %12s %7s\n", "grid", "wafers", "mesh", "µs/iter", "throughput×", "comm%")
	for _, pt := range model.MultiWaferWeakScaling(mesh.X, mesh.Y, mesh.Z, grids, 1.1e9, io) {
		fmt.Printf("  %dx%-4d %8d %7dx%-6d %12.2f %12.2f %6.0f%%\n",
			pt.GridW, pt.GridH, pt.Wafers, pt.GridW*mesh.X, pt.GridH*mesh.Y,
			pt.IterMicros, pt.Speedup, 100*pt.Breakdown.CommFraction())
	}
	fmt.Printf("  (a 16-wafer cluster holds a mesh no single wafer can; iteration time grows\n")
	fmt.Printf("   only with the blocking edge-I/O and combine terms — overlap, as in\n")
	fmt.Printf("   Jacquelin et al.'s multi-device stencil, is the obvious next lever)\n")
}
