// Heat: implicit-Euler heat-equation stepping on the wafer, in both
// decompositions the stencil compiler lowers — the 3D 7-point star
// (one Z-column per tile, the paper's mapping) and the 2D 5-point star
// (one b×b block per tile, the block-halo mapping). Backward Euler is
// unconditionally dissipative, so the field energy ‖u‖₂² must decay
// monotonically; each step's linear solve runs BiCGStab on the
// cycle-simulated wafer and the host float64 reference side by side.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
)

func field(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	u := make([]float64, n)
	for i := range u {
		u[i] = rng.Float64()
	}
	return u
}

func report(label string, steps []core.HeatStep) {
	fmt.Printf("  %s:", label)
	for _, s := range steps {
		fmt.Printf("  %.4e", s.Energy)
	}
	fmt.Println()
}

func main() {
	const lambda = 0.2 // α·Δt/h²: an accuracy knob, not a stability bound

	m3 := stencil.Mesh{NX: 3, NY: 3, NZ: 4}
	u3 := field(m3.N(), 11)
	fmt.Printf("3D heat, mesh %v, λ=%g — energy per step:\n", m3, lambda)
	for _, backend := range []core.Backend{core.Local, core.Wafer} {
		steps, err := core.RunHeat3D(nil, m3, lambda, stencil.Dirichlet, u3, 4,
			core.Options{Backend: backend, MaxIter: 80, Tol: 1e-5})
		if err != nil {
			log.Fatal(err)
		}
		report(backend.String(), steps)
	}
	fmt.Printf("  exact model: one 7-point application = %d cycles\n",
		perfmodel.StencilApply3D{W: m3.NX, H: m3.NY, Z: m3.NZ, Widths: [3]int{1, 1, 1}}.Cycles())

	m2 := stencil.Mesh2D{NX: 8, NY: 4}
	const block = 2
	u2 := field(m2.N(), 13)
	fmt.Printf("2D heat, mesh %d×%d (%d×%d blocks), λ=%g — energy per step:\n",
		m2.NX, m2.NY, block, block, lambda)
	for _, backend := range []core.Backend{core.Local, core.Wafer} {
		steps, err := core.RunHeat2D(nil, m2, lambda, u2, 4, block,
			core.Options{Backend: backend, MaxIter: 80, Tol: 1e-5})
		if err != nil {
			log.Fatal(err)
		}
		report(backend.String(), steps)
	}
	fmt.Printf("  exact model: one 5-point application = %d cycles\n",
		perfmodel.StencilApply2D{W: m2.NX / block, H: m2.NY / block, B: block, Points: 5}.Cycles())
}
