// Quickstart: solve a Poisson system on the simulated wafer-scale engine
// and verify the answer against the known solution.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/stencil"
)

func main() {
	// An 8×8 fabric, each tile owning a column of 32 z-points: the paper's
	// 3D-mesh-to-2D-fabric mapping in miniature.
	mesh := stencil.Mesh{NX: 8, NY: 8, NZ: 32}
	op := stencil.Poisson(mesh, 1.0/float64(mesh.NX))

	// Manufacture a problem with a known solution.
	xexact := make([]float64, mesh.N())
	for i := range xexact {
		x, y, z := mesh.Coords(i)
		xexact[i] = math.Sin(float64(x)) * math.Cos(float64(y)) * (1 + 0.1*float64(z))
	}
	problem, _ := core.NewProblem(op, xexact)

	// Solve on the cycle-level CS-1 simulator with the paper's mixed
	// fp16/fp32 arithmetic.
	res, err := core.Solve(problem, core.Options{
		Backend: core.Wafer,
		MaxIter: 50,
		Tol:     1e-3,
	})
	if err != nil {
		log.Fatal(err)
	}

	worst := 0.0
	for i := range xexact {
		worst = math.Max(worst, math.Abs(res.X[i]-xexact[i]))
	}
	fmt.Printf("converged=%v after %d iterations\n", res.Converged, res.Iterations)
	fmt.Printf("true relative residual: %.2e (fp16 ε is ~1e-3)\n", res.TrueResidual)
	fmt.Printf("worst-case error vs exact solution: %.2e\n", worst)
	pc := res.Telemetry.PerIteration
	fmt.Printf("simulated cycles/iteration: %d (spmv %d, dot %d, allreduce %d, axpy %d)\n",
		pc.Total(), pc.SpMV, pc.Dot, pc.AllReduce, pc.Axpy)
}
