// Cavity flow: the MFIX-style SIMPLE algorithm (Algorithm 2) on the
// lid-driven cavity — the model problem behind the paper's CPU-cluster
// baseline — followed by the Table II projection of MFIX onto the CS-1.
package main

import (
	"fmt"
	"log"

	"repro/internal/mfix"
	"repro/internal/perfmodel"
)

func main() {
	c := mfix.NewCavity(10, 100)
	res, err := c.Run(50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lid-driven cavity, 10³ cells, Re=100")
	for i, r := range res {
		if i%10 == 0 || i == len(res)-1 {
			fmt.Printf("  SIMPLE iter %2d: mass imbalance %.2e, velocity change %.2e\n",
				i+1, r.Mass, r.Momentum)
		}
	}
	fmt.Println("\ncentreline u (bottom -> lid):")
	for _, u := range c.CenterlineU() {
		bar := ""
		for i := 0; i < int(40*(u+0.3)); i++ {
			bar += "#"
		}
		fmt.Printf("  %+.3f %s\n", u, bar)
	}

	pr := mfix.ProjectCS1(perfmodel.PaperModel(), 600, 600, 600, mfix.PaperSimpleParams())
	fmt.Printf("\nCS-1 projection for 600³ MFIX (Table II + calibrated solver):\n")
	fmt.Printf("  %.0f-%.0f timesteps/s (paper: 80-125) — real-time-class CFD\n",
		pr.StepsPerSecond.Min, pr.StepsPerSecond.Max)
}
