// Cavity flow: the MFIX-style SIMPLE algorithm (Algorithm 2) on the
// lid-driven cavity — the model problem behind the paper's CPU-cluster
// baseline — in three stages: the 3D host solver, the 2D cavity with
// its pressure-correction BiCGStab cycle-simulated on a wafer fabric
// (the Table II workload wafer-resident, §VI-A), and the Table II
// projection of MFIX onto the CS-1.
package main

import (
	"fmt"
	"log"

	"repro/internal/kernels"
	"repro/internal/mfix"
	"repro/internal/perfmodel"
	"repro/internal/wse"
)

func main() {
	c := mfix.NewCavity(10, 100)
	res, err := c.Run(50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("lid-driven cavity, 10³ cells, Re=100 (host, fp64)")
	for i, r := range res {
		if i%10 == 0 || i == len(res)-1 {
			fmt.Printf("  SIMPLE iter %2d: mass imbalance %.2e, velocity change %.2e\n",
				i+1, r.Mass, r.Momentum)
		}
	}
	fmt.Println("\ncentreline u (bottom -> lid):")
	for _, u := range c.CenterlineU() {
		bar := ""
		for i := 0; i < int(40*(u+0.3)); i++ {
			bar += "#"
		}
		fmt.Printf("  %+.3f %s\n", u, bar)
	}

	// The 2D cavity with the pressure solve on the simulated wafer: a
	// 16² mesh in 2×2 blocks on an 8×8 fabric, every pressure-correction
	// BiCGStab iteration cycle-stepped through the 2D block-halo SpMV.
	// cmd/cavity -backend=wse runs the same path at the 128×128 fabric.
	mach := wse.New(wse.CS1(8, 8))
	defer mach.Close() // release the engine before the projection prints
	wafer := kernels.NewWafer2DBackend(mach, 2)
	c2 := mfix.NewCavity2D(16, 100)
	c2.Pressure = wafer
	res2, err := c2.Run(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n2D cavity, 16² cells, pressure solve on a simulated 8×8 fabric:")
	for i, r := range res2 {
		if i%3 == 0 || i == len(res2)-1 {
			fmt.Printf("  SIMPLE iter %2d: mass imbalance %.2e (fp16 wafer solve)\n", i+1, r.Mass)
		}
	}
	fmt.Printf("  %d solver iterations, %d simulated cycles (allreduce %d)\n",
		wafer.Iterations, wafer.Cycles.Total(), wafer.Cycles.AllReduce)

	pr := mfix.ProjectCS1(perfmodel.PaperModel(), 600, 600, 600, mfix.PaperSimpleParams())
	fmt.Printf("\nCS-1 projection for 600³ MFIX (Table II + calibrated solver):\n")
	fmt.Printf("  %.0f-%.0f timesteps/s (paper: 80-125) — real-time-class CFD\n",
		pr.StepsPerSecond.Min, pr.StepsPerSecond.Max)
}
