package stencilc

import (
	"math/rand"
	"testing"

	"repro/internal/perfmodel"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// measure3D compiles a 3D star program on a fresh machine and returns the
// simulated cycles of one application.
func measure3D(t *testing.T, w, h, z int, widths [3]int, workers int) int64 {
	t.Helper()
	m := stencil.Mesh{NX: w, NY: h, NZ: z}
	spec := Spec{Dim: 3, Points: Star, Widths: widths}
	op := randomStarHalf(m, widths, rand.New(rand.NewSource(1)))
	cfg := wse.CS1(w, h)
	cfg.Workers = workers
	mach := wse.New(cfg)
	defer mach.Close()
	p, err := Compile3D(mach, spec, op, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	fillWafer(p, randomHalfVec(m.N(), rand.New(rand.NewSource(2))))
	cyc, err := p.Run(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	return cyc
}

// measure2D does the same for a 2D block-halo program.
func measure2D(t *testing.T, fw, fh, b int, star bool, workers int) int64 {
	t.Helper()
	m := stencil.Mesh2D{NX: fw * b, NY: fh * b}
	var op *stencil.Op9
	spec := Spec9Point()
	if star {
		spec = Spec5Point()
		op, _ = stencil.Heat2D(m, 0.15).Normalize9()
	} else {
		op, _ = stencil.Random9(m, 1.4, rand.New(rand.NewSource(3))).Normalize9()
	}
	cfg := wse.CS1(fw, fh)
	cfg.Workers = workers
	mach := wse.New(cfg)
	defer mach.Close()
	p, err := Compile2D(mach, spec, op, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.LoadVector(randomHalfVec(m.N(), rand.New(rand.NewSource(4))))
	cyc, err := p.Run(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	return cyc
}

// TestStencilApplyModelExact pins perfmodel.StencilApply3D/2D bit-exactly
// to the cycle simulator across fabric shapes, column depths and halo
// widths — the same exactness contract HaloSpMVCycles carries for the
// width-1 kernel, extended to the multi-round relay programs.
func TestStencilApplyModelExact(t *testing.T) {
	for _, c := range []struct {
		w, h, z    int
		wx, wy, wz int
	}{
		{1, 1, 4, 1, 1, 1}, {2, 1, 4, 1, 1, 1}, {1, 3, 8, 1, 1, 1},
		{2, 2, 4, 1, 1, 1}, {3, 3, 4, 1, 1, 1}, {4, 3, 6, 1, 1, 1},
		{2, 2, 8, 1, 1, 1}, {2, 2, 16, 1, 1, 1}, {2, 2, 32, 1, 1, 1},
		{3, 3, 8, 1, 1, 1}, {3, 3, 16, 1, 1, 1},
		{3, 3, 4, 2, 2, 2}, {4, 4, 8, 2, 2, 2}, {5, 5, 4, 2, 2, 2},
		{4, 4, 8, 4, 4, 4}, {6, 5, 10, 4, 4, 4}, {3, 2, 4, 4, 4, 4},
		{7, 4, 6, 3, 1, 2}, {5, 4, 6, 1, 3, 2}, {4, 4, 4, 2, 1, 8},
		{2, 2, 16, 1, 1, 8}, {2, 2, 16, 1, 1, 4},
		{9, 9, 4, 4, 4, 1}, {9, 2, 4, 4, 4, 1}, {2, 9, 6, 4, 2, 1},
		{3, 3, 8, 2, 2, 1}, {3, 3, 8, 1, 1, 2}, {3, 3, 8, 2, 1, 1},
		{3, 3, 8, 1, 2, 1},
		{5, 5, 8, 2, 2, 1}, {5, 5, 8, 3, 3, 1}, {5, 5, 8, 4, 4, 1},
		{5, 5, 16, 2, 2, 1},
		{4, 4, 8, 2, 2, 1}, {4, 4, 8, 2, 2, 4}, {4, 4, 8, 2, 2, 8},
	} {
		widths := [3]int{c.wx, c.wy, c.wz}
		got := perfmodel.StencilApply3D{W: c.w, H: c.h, Z: c.z, Widths: widths}.Cycles()
		want := measure3D(t, c.w, c.h, c.z, widths, 1)
		if got != want {
			t.Errorf("3D (%d,%d,%d) W=%v: model %d, simulator %d", c.w, c.h, c.z, widths, got, want)
		}
	}
	for _, c := range []struct {
		fw, fh, b int
		star      bool
	}{
		{1, 1, 4, false}, {2, 2, 2, false}, {2, 2, 4, false}, {3, 2, 4, false},
		{4, 4, 8, false}, {2, 1, 6, false}, {1, 3, 4, false},
		{2, 2, 4, true}, {4, 4, 2, true}, {3, 3, 6, true},
	} {
		points := 9
		if c.star {
			points = 5
		}
		got := perfmodel.StencilApply2D{W: c.fw, H: c.fh, B: c.b, Points: points}.Cycles()
		want := measure2D(t, c.fw, c.fh, c.b, c.star, 1)
		if got != want {
			t.Errorf("2D (%d,%d) b=%d star=%v: model %d, simulator %d", c.fw, c.fh, c.b, c.star, got, want)
		}
	}
}

// TestStencilApplyModelEngines pins the model against the sharded engine
// too: the worklist scheduler must not change cycle counts, and the model
// must match both.
func TestStencilApplyModelEngines(t *testing.T) {
	for _, c := range []struct {
		w, h, z    int
		wx, wy, wz int
	}{
		{5, 5, 8, 4, 4, 1}, {4, 4, 8, 2, 2, 4}, {3, 3, 8, 1, 1, 2},
	} {
		widths := [3]int{c.wx, c.wy, c.wz}
		model := perfmodel.StencilApply3D{W: c.w, H: c.h, Z: c.z, Widths: widths}.Cycles()
		if seq := measure3D(t, c.w, c.h, c.z, widths, 1); seq != model {
			t.Errorf("3D (%d,%d,%d) W=%v sequential: %d, model %d", c.w, c.h, c.z, widths, seq, model)
		}
		if par := measure3D(t, c.w, c.h, c.z, widths, 4); par != model {
			t.Errorf("3D (%d,%d,%d) W=%v sharded: %d, model %d", c.w, c.h, c.z, widths, par, model)
		}
	}
	model := perfmodel.StencilApply2D{W: 3, H: 2, B: 4, Points: 9}.Cycles()
	if seq := measure2D(t, 3, 2, 4, false, 1); seq != model {
		t.Errorf("2D sequential: %d, model %d", seq, model)
	}
	if par := measure2D(t, 3, 2, 4, false, 4); par != model {
		t.Errorf("2D sharded: %d, model %d", par, model)
	}
}

// TestStencilApplyModelClamp pins the dependency-horizon reduction: on a
// fabric wider than the clamp the reduced replay must still match the
// full simulator, tile for tile.
func TestStencilApplyModelClamp(t *testing.T) {
	// Width 1 → horizon 9 → clamp 19: 21 wide exercises the reduction.
	got := perfmodel.StencilApply3D{W: 21, H: 2, Z: 4, Widths: [3]int{1, 1, 1}}.Cycles()
	want := measure3D(t, 21, 2, 4, [3]int{1, 1, 1}, 1)
	if got != want {
		t.Errorf("3D clamped 21x2: model %d, simulator %d", got, want)
	}
	got2 := perfmodel.StencilApply2D{W: 20, H: 1, B: 2, Points: 9}.Cycles()
	want2 := measure2D(t, 20, 1, 2, false, 1)
	if got2 != want2 {
		t.Errorf("2D clamped 20x1: model %d, simulator %d", got2, want2)
	}
}
