package stencilc

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/wse"
)

func TestSpecValidate(t *testing.T) {
	good := []Spec{
		Spec9Point(), Spec5Point(), Spec7Point(), SpecSeismic25(), SpecHeat2D(), SpecHeat3D(),
		{Dim: 3, Points: Star, Widths: [3]int{2, 1, 8}},
		{Dim: 2, Points: Box, Widths: [3]int{3, 3, 0}, Precision: FP32, Boundary: stencil.Periodic},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	bad := []Spec{
		{},
		{Dim: 1, Points: Star, Widths: [3]int{1, 1, 1}},
		{Dim: 4, Points: Star, Widths: [3]int{1, 1, 1}},
		{Dim: 2, Points: Star, Widths: [3]int{0, 1, 0}},
		{Dim: 2, Points: Star, Widths: [3]int{1, MaxWidth + 1, 0}},
		{Dim: 3, Points: Star, Widths: [3]int{1, 1, 0}},
		{Dim: 3, Points: Shape(9), Widths: [3]int{1, 1, 1}},
		{Dim: 3, Points: Star, Widths: [3]int{1, 1, 1}, Precision: Precision(7)},
		{Dim: 3, Points: Star, Widths: [3]int{1, 1, 1}, Boundary: stencil.Boundary(5)},
		{Dim: 3, Points: Star, Widths: [3]int{1, 1, 1}, Reduce: Reduce(3)},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", s)
		}
	}
}

func TestNumPoints(t *testing.T) {
	cases := []struct {
		s Spec
		n int
	}{
		{Spec9Point(), 9},
		{Spec5Point(), 5},
		{Spec7Point(), 7},
		{SpecSeismic25(), 25},
		{Spec{Dim: 3, Points: Star, Widths: [3]int{2, 1, 3}}, 13},
		{Spec{Dim: 2, Points: Box, Widths: [3]int{2, 2, 0}}, 25},
	}
	for _, c := range cases {
		if got := c.s.NumPoints(); got != c.n {
			t.Errorf("NumPoints(%+v) = %d, want %d", c.s, got, c.n)
		}
	}
}

// TestUnsupportedSpecs pins the machine/host split: valid specs the
// lowering rejects must come back as *UnsupportedError (so callers can
// fall back to the host references), while structurally bad specs are
// plain errors.
func TestUnsupportedSpecs(t *testing.T) {
	mach := wse.New(wse.CS1(2, 2))
	defer mach.Close()
	m2 := stencil.Mesh2D{NX: 4, NY: 4}
	op9, _ := stencil.Random9(m2, 1.5, rand.New(rand.NewSource(1))).Normalize9()
	m3 := stencil.Mesh{NX: 2, NY: 2, NZ: 4}

	unsup2 := []Spec{
		{Dim: 2, Points: Box, Widths: [3]int{1, 1, 0}, Precision: FP32},
		{Dim: 2, Points: Box, Widths: [3]int{1, 1, 0}, Boundary: stencil.Periodic},
		{Dim: 2, Points: Star, Widths: [3]int{2, 1, 0}},
	}
	for _, s := range unsup2 {
		_, err := Compile2D(mach, s, op9, 2, 0)
		var ue *UnsupportedError
		if !errors.As(err, &ue) {
			t.Errorf("Compile2D(%+v) error = %v, want *UnsupportedError", s, err)
		}
	}

	star := stencil.NewOpStar(m3, [3]int{1, 1, 1})
	for i := range star.C {
		star.C[i] = 1
	}
	half := stencil.NewOpStarHalf(star)
	unsup3 := []Spec{
		{Dim: 3, Points: Star, Widths: [3]int{1, 1, 1}, Precision: FP32},
		{Dim: 3, Points: Star, Widths: [3]int{1, 1, 1}, Boundary: stencil.Periodic},
		{Dim: 3, Points: Box, Widths: [3]int{1, 1, 1}},
	}
	for _, s := range unsup3 {
		m := wse.New(wse.CS1(2, 2))
		_, err := Compile3D(m, s, half, 0, 0, 0)
		m.Close()
		var ue *UnsupportedError
		if !errors.As(err, &ue) {
			t.Errorf("Compile3D(%+v) error = %v, want *UnsupportedError", s, err)
		}
	}

	// Structurally invalid specs are plain errors, not UnsupportedError.
	if _, err := Compile2D(mach, Spec{}, op9, 2, 0); err == nil {
		t.Error("Compile2D(zero spec) = nil error")
	} else {
		var ue *UnsupportedError
		if errors.As(err, &ue) {
			t.Errorf("Compile2D(zero spec) = UnsupportedError %v, want plain validation error", err)
		}
	}
	// Dimension mismatches are caught.
	if _, err := Compile2D(mach, Spec7Point(), op9, 2, 0); err == nil {
		t.Error("Compile2D(3D spec) = nil error")
	}
}

func TestExchangeColorsDistinct(t *testing.T) {
	if !ExchangeColorsDistinct() {
		t.Fatal("directional exchange color invariants violated")
	}
}

// TestHaloColorTables states the property both lowerings rely on when
// they draw colors from the shared directional assignment: a halo
// direction's receive color is exactly what the facing neighbour sends
// (haloOut[opposite(d)] == haloTravel[d]), sends and receives on one
// link never share a channel, and the four receive (and four send)
// colors are pairwise distinct, so every subscription is separable.
func TestHaloColorTables(t *testing.T) {
	seenIn := map[int]bool{}
	seenOut := map[int]bool{}
	for d := HaloDir(0); d < NumHaloDirs; d++ {
		if haloOut[opposite(d)] != haloTravel[d] {
			t.Errorf("dir %d: receive color %d, but neighbour sends on %d", d, haloTravel[d], haloOut[opposite(d)])
		}
		if haloOut[d] == haloTravel[d] {
			t.Errorf("dir %d: send and receive share color %d", d, haloOut[d])
		}
		if seenIn[haloTravel[d]] {
			t.Errorf("dir %d: receive color %d reused", d, haloTravel[d])
		}
		if seenOut[haloOut[d]] {
			t.Errorf("dir %d: send color %d reused", d, haloOut[d])
		}
		seenIn[haloTravel[d]] = true
		seenOut[haloOut[d]] = true
		if a, o := axisOf(d), axisOf(opposite(d)); a != o {
			t.Errorf("dir %d: axis %d but opposite has axis %d", d, a, o)
		}
	}
	if len(seenIn) != NumExchangeColors || len(seenOut) != NumExchangeColors {
		t.Fatalf("halo tables use %d/%d colors, want %d", len(seenIn), len(seenOut), NumExchangeColors)
	}
}

// ---------------------------------------------------------------------
// Shared test helpers

func randomHalfVec(n int, rng *rand.Rand) []fp16.Float16 {
	out := make([]fp16.Float16, n)
	for i := range out {
		out[i] = fp16.FromFloat64(rng.Float64()*2 - 1)
	}
	return out
}

// randomStarHalf builds a random unit-diagonal star operator on m with
// widths w, as the fp16 image the machine stores.
func randomStarHalf(m stencil.Mesh, w [3]int, rng *rand.Rand) *stencil.OpStarHalf {
	o := stencil.NewOpStar(m, w)
	fill := func(cols [][]float64) {
		for _, c := range cols {
			for i := range c {
				c[i] = rng.Float64()*2 - 1
			}
		}
	}
	fill(o.XP)
	fill(o.XM)
	fill(o.YP)
	fill(o.YM)
	fill(o.ZP)
	fill(o.ZM)
	for i := range o.C {
		o.C[i] = 1
	}
	return stencil.NewOpStarHalf(o)
}
