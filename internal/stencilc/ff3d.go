package stencilc

import (
	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/perfmodel"
)

// This file is Program3D's fast-forward path, the exchange half of the
// hybrid fast-forward engine (wse.EngineFastForward; the compute-task
// half is wse.Machine.FastForwardTasks). One application of the
// compiled program is a closed phase: the machine starts idle, the
// relay rounds and per-tile compute run to completion, and the machine
// is idle again. Its effect therefore splits cleanly in two:
//
//   - memory: the halo columns become verbatim copies of neighbour
//     columns (relay round r copies what round r-1 copied, one hop
//     further) and the result column is the fixed instruction sequence
//     armTile emits, evaluated elementwise in the same order with the
//     same fp16 roundings — both reproducible by plain host loops with
//     no per-application instruction allocation at all;
//   - counters: cycles, word moves, router rotations, the hot set, and
//     each core's busy/lane tallies — reproduced exactly by
//     perfmodel.ExchangeReplay, the word-granular phase model
//     parameterized by the live fabric's entry layouts, rotation seeds
//     and hot set.
//
// The eligibility gate rejects any starting state the replay does not
// model (non-default hardware shape, a sub-mesh wafer, words in
// flight), falling back to cycle simulation; Program2D has no replay
// and always cycle-simulates (under EngineFastForward its cores still
// step through the batched engine). The engine-equivalence tests pin
// fingerprint, cycle count and result bits against sequential
// stepping.

// ff3d is the compiled fast-forward plan: the replay template plus the
// per-tile static compute shape armTile would emit.
type ff3d struct {
	replay *perfmodel.ExchangeReplay
	tiles  []ff3dTile
}

type ff3dTile struct {
	pcEnd  int   // compute-task instruction count
	cycles int   // compute-task datapath cycles, Σ ceil(nᵢ/SIMD)
	lanes  int64 // compute (+ fused dot) lane issues, Σ nᵢ (+2Z)
}

// ffDeliverIn maps a direction-of-travel color to the router input
// port its words arrive on: eastbound words enter on the west port.
var ffDeliverIn = [NumExchangeColors]fabric.Port{
	ColEast:  fabric.West,
	ColWest:  fabric.East,
	ColSouth: fabric.North,
	ColNorth: fabric.South,
}

// ffEligible reports whether one application from the current machine
// state is exactly the phase the replay models: fast-forward engine,
// default hardware shape (SIMD-4 datapath, depth-4 queues — the
// perfmodel constants), a single wafer holding the full mesh (so the
// lateral-term schedule is determined by fabric geometry alone), and a
// machine with nothing in flight.
func (p *Program3D) ffEligible() bool {
	m := p.M
	if !m.FastForwardEnabled() {
		return false
	}
	cfg := m.Cfg
	if cfg.SIMDWidth != 4 ||
		(cfg.QueueDepth > 0 && cfg.QueueDepth != 4) ||
		(cfg.RxDepth > 0 && cfg.RxDepth != 4) {
		return false
	}
	if p.X0 != 0 || p.Y0 != 0 || p.Mesh.NX != cfg.FabricW || p.Mesh.NY != cfg.FabricH {
		return false
	}
	if !m.AllIdle() {
		return false
	}
	for _, st := range p.tiles {
		if !st.tile.Core.RxQuiet() {
			return false
		}
		for d := HaloDir(0); d < NumHaloDirs; d++ {
			if st.from[d] != nil && st.from[d].Len() > 0 {
				return false
			}
		}
	}
	return true
}

// buildFF compiles the fast-forward plan once per program: the static
// compute shape of every tile (instruction count, datapath cycles,
// lane issues — mirroring armTile's emission) and the exchange replay
// template (stage lists in thread-slot order plus each router's live
// entry layout, with non-exchange entries kept as dead rotation
// slots).
func (p *Program3D) buildFF() *ff3d {
	w, h := p.M.Cfg.FabricW, p.M.Cfg.FabricH
	z := p.Mesh.NZ
	f := &ff3d{tiles: make([]ff3dTile, len(p.tiles))}
	for i, st := range p.tiles {
		t := &f.tiles[i]
		addOp := func(elems int) {
			t.pcEnd++
			t.cycles += (elems + 3) / 4
			t.lanes += int64(elems)
		}
		if z > 1 {
			addOp(z - 1)
			addOp(z - 1)
		}
		for k := 2; k <= p.Spec.Widths[2]; k++ {
			if z > k {
				addOp(z - k)
				addOp(z - k)
			}
		}
		for d := HaloDir(0); d < NumHaloDirs; d++ {
			for k := 1; k <= p.Spec.Widths[axisOf(d)]; k++ {
				if p.inMesh(st, d, k) {
					addOp(z)
				}
			}
		}
		addOp(z) // the unit-diagonal add
		if st.dotTask != nil {
			t.lanes += int64(2 * z)
		}
	}
	f.replay = perfmodel.NewExchangeReplay(w, h, func(ti int) perfmodel.ReplayTileSpec {
		st := p.tiles[ti]
		keys := p.M.Fab.EntryLayout(ti)
		entries := make([]perfmodel.ReplayEntry, len(keys))
		for j, k := range keys {
			col := int(k.C) - int(p.base)
			ent := perfmodel.ReplayEntry{Kind: perfmodel.ReplayDead}
			if col >= 0 && col < NumExchangeColors {
				if k.In == fabric.Ramp {
					ent = perfmodel.ReplayEntry{Kind: perfmodel.ReplayInject, Color: uint8(col)}
				} else if k.In == ffDeliverIn[col] {
					ent = perfmodel.ReplayEntry{Kind: perfmodel.ReplayDeliver, Color: uint8(col)}
				}
			}
			entries[j] = ent
		}
		var stages []perfmodel.ReplayStage
		for r := 1; r <= p.rounds; r++ {
			sg := perfmodel.ReplayStage{Task: -1}
			for d := HaloDir(0); d < NumHaloDirs; d++ {
				if p.roundActive(st, d, r) {
					sg.Tx = append(sg.Tx, perfmodel.ReplayTx{Color: haloOut[d], Words: z / 2})
					sg.Rx = append(sg.Rx, perfmodel.ReplayRx{Color: haloTravel[d], Elems: z})
				}
			}
			if len(sg.Tx) > 0 {
				stages = append(stages, sg)
			}
		}
		stages = append(stages, perfmodel.ReplayStage{Task: f.tiles[ti].cycles})
		if st.dotTask != nil {
			stages = append(stages, perfmodel.ReplayStage{Task: (z + 1) / 2})
		}
		return perfmodel.ReplayTileSpec{Entries: entries, Stages: stages}
	})
	return f
}

// tryFastForward attempts one application without cycle simulation.
// It must be called instead of Arm (not after — arming launches
// threads); on false the caller falls back to the ordinary path. The
// counter replay runs before anything is mutated, so an over-budget
// phase can still fall back cleanly.
func (p *Program3D) tryFastForward(maxCycles int64) (int64, bool) {
	if !p.ffEligible() {
		return 0, false
	}
	if p.ff == nil {
		p.ff = p.buildFF()
	}
	fab := p.M.Fab
	res := p.ff.replay.Run(fab.RR, fab.HotTiles())
	if res.Cycles > maxCycles {
		return 0, false
	}

	// Memory, exchange phase: relay round r copies the neighbour's
	// round-(r−1) column verbatim (its iterate for r = 1), exactly the
	// bit-preserving stream hop — including columns beyond the global
	// mesh, whose garbage payload the uniform schedule moves and the
	// compute phase ignores. Rounds only read the previous round's
	// halos, so a per-round tile sweep has no ordering hazard.
	z := p.Mesh.NZ
	w := p.M.Cfg.FabricW
	for r := 1; r <= p.rounds; r++ {
		for _, st := range p.tiles {
			for d := HaloDir(0); d < NumHaloDirs; d++ {
				if !p.roundActive(st, d, r) {
					continue
				}
				nb := p.tiles[(st.y+haloDelta[d][1])*w+st.x+haloDelta[d][0]]
				src := nb.offV
				if r > 1 {
					src = nb.offH[d][r-2]
				}
				copy(st.tile.Arena.Slice(st.offH[d][r-1], z), nb.tile.Arena.Slice(src, z))
			}
		}
	}

	// Memory, compute phase; then write the counters back.
	for i, st := range p.tiles {
		p.ffCompute(st, i)
		ft := &p.ff.tiles[i]
		st.compute.FastForwardComplete(ft.pcEnd)
		if st.dotTask != nil {
			st.dotTask.FastForwardComplete(1)
		}
		st.tile.Core.FastForwardAccount(res.Busy[i], res.RxLanes[i]+ft.lanes)
		st.round = p.rounds + 1
		st.exLeft = 0
		st.done = true
	}
	fab.ApplyReplay(res.Cycles, res.Moves, res.RR, res.Hot)
	p.M.FastForwardSteps(res.Cycles)
	return res.Cycles, true
}

// ffCompute evaluates tile st's compute task on the host: the same
// element loops, in armTile's instruction order and each instruction's
// ascending element order, with the same fp16 roundings — bit-identical
// to the simulated datapath by construction.
func (p *Program3D) ffCompute(st *tile3D, i int) {
	z := p.Mesh.NZ
	a := st.tile.Arena
	u := a.Slice(st.offU, z)
	v := a.Slice(st.offV, z)
	for j := range u {
		u[j] = fp16.Zero
	}
	if z > 1 {
		zm := a.Slice(st.offZ[zmIdx][0], z)
		zp := a.Slice(st.offZ[zpIdx][0], z)
		for j := 0; j < z-1; j++ { // u[z] = zm[z] * v[z-1]
			u[1+j] = fp16.Mul(zm[1+j], v[j])
		}
		for j := 0; j < z-1; j++ { // u[z] += zp[z] * v[z+1]
			u[j] = fp16.Add(u[j], fp16.Mul(zp[j], v[1+j]))
		}
	}
	for k := 2; k <= p.Spec.Widths[2]; k++ {
		if z <= k {
			continue
		}
		zmk := a.Slice(st.offZ[zmIdx][k-1], z)
		zpk := a.Slice(st.offZ[zpIdx][k-1], z)
		for j := 0; j < z-k; j++ { // u[z] += zm_k[z] * v[z-k]
			u[k+j] = fp16.Add(u[k+j], fp16.Mul(zmk[k+j], v[j]))
		}
		for j := 0; j < z-k; j++ { // u[z] += zp_k[z] * v[z+k]
			u[j] = fp16.Add(u[j], fp16.Mul(zpk[j], v[k+j]))
		}
	}
	for d := HaloDir(0); d < NumHaloDirs; d++ {
		for k := 1; k <= p.Spec.Widths[axisOf(d)]; k++ {
			if !p.inMesh(st, d, k) {
				continue
			}
			cc := a.Slice(st.offC[d][k-1], z)
			hh := a.Slice(st.offH[d][k-1], z)
			for j := 0; j < z; j++ { // u += c_{d,k} * halo_{d,k}
				u[j] = fp16.Add(u[j], fp16.Mul(cc[j], hh[j]))
			}
		}
	}
	for j := 0; j < z; j++ { // u += v (unit main diagonal)
		u[j] = fp16.Add(u[j], v[j])
	}
	if st.dotTask != nil {
		var acc float32
		for j := 0; j < z; j++ {
			acc = fp16.MixedFMAC(acc, u[j], u[j])
		}
		p.partials[i] = acc
	}
}
