// Package stencilc compiles declarative stencil specifications into
// wafer tile programs. A Spec names the point set (star or box), the
// per-axis halo widths, the coefficient precision, the boundary rule
// and an optional fused reduction; Compile2D/Compile3D lower it onto a
// wse.Machine through one shared pipeline — block decomposition,
// halo-color allocation on the four single-hop directional colors,
// fixed-rounding-order MemOp emission, and relay-scheduled stream
// exchange rounds. The emitted program replays the functional
// reference's exact rounding order, so machine results are bitwise
// equal to the host reference (Reference2D, stencil.OpStarHalf.Apply)
// under both simulation engines, and each compiled shape carries an
// exact perfmodel cycle entry (perfmodel.StencilApply2D,
// perfmodel.StencilApply3D, pinned by tests in this package).
//
// The hand-written kernels predating the compiler — the 9-point 2D
// block-halo SpMV and the 7-point 3D halo-resident SpMV — are now thin
// wrappers over Compile2D/Compile3D (internal/kernels), pinned
// bit-identical to their pre-compiler outputs by golden tests. New
// kernels (the 25-point high-order seismic stencil, the 2D/3D
// heat-equation step) are specs plus coefficient builders; no tile
// program is written by hand.
package stencilc

import (
	"fmt"

	"repro/internal/stencil"
)

// Shape selects the spec's point set.
type Shape int

// Point-set shapes.
const (
	// Star includes the centre and the axis-aligned neighbours out to
	// the per-axis width: 1+2(wx+wy) points in 2D, 1+2(wx+wy+wz) in 3D.
	Star Shape = iota
	// Box includes every point of the full halo box. Only the 2D
	// unit-width box (the 9-point stencil) lowers to the machine: wider
	// or 3D boxes would need diagonal exchange channels.
	Box
)

// String names the shape.
func (s Shape) String() string {
	switch s {
	case Star:
		return "star"
	case Box:
		return "box"
	default:
		return fmt.Sprintf("shape(%d)", int(s))
	}
}

// Precision selects the coefficient (and arithmetic) precision of the
// compiled program.
type Precision int

// Precisions.
const (
	// FP16 is the wafer's native storage: fp16 coefficients, fp16
	// multiplies and adds in the reference rounding order.
	FP16 Precision = iota
	// FP32 keeps coefficients in float32. Only the host references
	// evaluate it; tile arenas store fp16 words, so Compile2D/Compile3D
	// reject FP32 specs with an *UnsupportedError.
	FP32
)

// String names the precision.
func (p Precision) String() string {
	switch p {
	case FP16:
		return "fp16"
	case FP32:
		return "fp32"
	default:
		return fmt.Sprintf("precision(%d)", int(p))
	}
}

// Reduce selects an optional reduction fused after the stencil
// application.
type Reduce int

// Reductions.
const (
	// ReduceNone: the program computes the output field only.
	ReduceNone Reduce = iota
	// ReduceSumSq appends a per-tile mixed-precision dot of the output
	// with itself (fp32 accumulation, the CS-1 dot instruction). The
	// per-tile partials are read with Partials(); combine them with
	// cluster.ExactSum32 for a bit-stable global Σy². The heat driver
	// uses it to report field energy without a second pass.
	ReduceSumSq
)

// String names the reduction.
func (r Reduce) String() string {
	switch r {
	case ReduceNone:
		return "none"
	case ReduceSumSq:
		return "sumsq"
	default:
		return fmt.Sprintf("reduce(%d)", int(r))
	}
}

// MaxWidth bounds per-axis halo widths. The relay exchange reuses the
// four directional colors for every round, so the bound is not color
// pressure but per-tile memory (each lateral width adds four halo and
// four coefficient columns) and schedule length.
const MaxWidth = 8

// Spec declares a stencil kernel. The zero value is invalid; fill in
// Dim, Points and Widths (see the named constructors Spec9Point,
// Spec5Point, Spec7Point, SpecSeismic25, SpecHeat2D, SpecHeat3D).
type Spec struct {
	// Dim is the mesh dimensionality: 2 (block decomposition, one b×b
	// block per tile) or 3 (column decomposition, one Z-column per
	// tile).
	Dim int
	// Points is the point-set shape: Star or Box.
	Points Shape
	// Widths holds the per-axis halo widths (x, y, z); Widths[2] is
	// ignored when Dim == 2. 2D lowering supports unit widths only.
	Widths [3]int
	// Precision is the coefficient precision (FP16 lowers to the
	// machine; FP32 is host-reference only).
	Precision Precision
	// Boundary is the boundary rule. Dirichlet (zero truncation)
	// lowers to the machine; Periodic is host-reference only.
	Boundary stencil.Boundary
	// Reduce optionally fuses a reduction after the application.
	Reduce Reduce
}

// Named specs for the kernels the repository ships.

// Spec9Point is the 2D 9-point box stencil — the block-halo SpMV of the
// paper's §IV-2 sketch (kernels.SpMV2DMachine).
func Spec9Point() Spec { return Spec{Dim: 2, Points: Box, Widths: [3]int{1, 1, 0}} }

// Spec5Point is the 2D 5-point star stencil — the heat-equation step's
// point set; four fewer MemOps per application than the box.
func Spec5Point() Spec { return Spec{Dim: 2, Points: Star, Widths: [3]int{1, 1, 0}} }

// Spec7Point is the 3D 7-point star stencil — the halo-resident SpMV
// the multiwafer backend composes (kernels.SpMV3DHalo).
func Spec7Point() Spec { return Spec{Dim: 3, Points: Star, Widths: [3]int{1, 1, 1}} }

// SpecSeismic25 is the 25-point width-4 star of the high-order seismic
// stencil (Jacquelin et al.): an 8th-order Laplacian needing four relay
// exchange rounds per application.
func SpecSeismic25() Spec { return Spec{Dim: 3, Points: Star, Widths: [3]int{4, 4, 4}} }

// SpecHeat2D is the 2D heat-equation step: the 5-point star with the
// fused Σy² reduction the time-stepping driver reports as field energy.
func SpecHeat2D() Spec { s := Spec5Point(); s.Reduce = ReduceSumSq; return s }

// SpecHeat3D is the 3D heat-equation step: the 7-point star with the
// fused Σy² reduction.
func SpecHeat3D() Spec { s := Spec7Point(); s.Reduce = ReduceSumSq; return s }

// NumPoints returns the number of stencil points the spec names.
func (s Spec) NumPoints() int {
	w := s.Widths
	switch {
	case s.Dim == 2 && s.Points == Box:
		return (2*w[0] + 1) * (2*w[1] + 1)
	case s.Dim == 2:
		return 1 + 2*(w[0]+w[1])
	case s.Points == Box:
		return (2*w[0] + 1) * (2*w[1] + 1) * (2*w[2] + 1)
	default:
		return 1 + 2*(w[0]+w[1]+w[2])
	}
}

// Validate checks the spec's structural sanity: dimensionality, widths
// within [1, MaxWidth] on the used axes, and known enum values. It does
// not decide lowerability — Compile2D/Compile3D report that with
// *UnsupportedError, since a spec too general for the machine may still
// drive the host references.
func (s Spec) Validate() error {
	if s.Dim != 2 && s.Dim != 3 {
		return fmt.Errorf("stencilc: spec dimension must be 2 or 3, got %d", s.Dim)
	}
	axes := s.Dim
	for a := 0; a < axes; a++ {
		if s.Widths[a] < 1 || s.Widths[a] > MaxWidth {
			return fmt.Errorf("stencilc: axis-%c halo width %d out of range [1, %d]", "xyz"[a], s.Widths[a], MaxWidth)
		}
	}
	if s.Points != Star && s.Points != Box {
		return fmt.Errorf("stencilc: unknown point-set shape %d", int(s.Points))
	}
	if s.Precision != FP16 && s.Precision != FP32 {
		return fmt.Errorf("stencilc: unknown precision %d", int(s.Precision))
	}
	if s.Boundary != stencil.Dirichlet && s.Boundary != stencil.Periodic {
		return fmt.Errorf("stencilc: unknown boundary rule %d", int(s.Boundary))
	}
	if s.Reduce != ReduceNone && s.Reduce != ReduceSumSq {
		return fmt.Errorf("stencilc: unknown reduction %d", int(s.Reduce))
	}
	return nil
}

// UnsupportedError reports a valid spec the machine lowering cannot
// compile (the host references may still evaluate it). Callers branch
// with errors.As to distinguish "bad spec" from "spec beyond the
// wafer mapping".
type UnsupportedError struct {
	Spec   Spec
	Reason string
}

// Error implements error.
func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("stencilc: spec not lowerable to the machine: %s", e.Reason)
}

// unsupported builds an *UnsupportedError.
func unsupported(s Spec, format string, args ...any) error {
	return &UnsupportedError{Spec: s, Reason: fmt.Sprintf(format, args...)}
}

// Lowerable reports whether the machine lowering accepts the spec,
// with the same *UnsupportedError Compile2D/Compile3D would return.
// Callers that must build host-side structures before compiling (the
// wafer solver backends) use it to fail early instead of tripping the
// references' Dirichlet-only assertions.
func (s Spec) Lowerable() error { return s.checkLowerable() }

// checkLowerable holds the lowering constraints shared by both
// dimensionalities: fp16 storage and Dirichlet truncation. The
// dimension-specific compilers add their own (2D: unit widths; 3D:
// star points).
func (s Spec) checkLowerable() error {
	if err := s.Validate(); err != nil {
		return err
	}
	if s.Precision != FP16 {
		return unsupported(s, "tile arenas store fp16 words; %s coefficients are host-reference only", s.Precision)
	}
	if s.Boundary != stencil.Dirichlet {
		return unsupported(s, "the exchange schedule has no wrap channels; %s boundaries are host-reference only", s.Boundary)
	}
	return nil
}

// points2D returns the 2D point set in row-major ascending offset
// order (the canonical scatter order; for the box this is exactly
// stencil.Off9), plus the index of the centre point.
func (s Spec) points2D() (pts [][2]int, centre int) {
	for dy := -s.Widths[1]; dy <= s.Widths[1]; dy++ {
		for dx := -s.Widths[0]; dx <= s.Widths[0]; dx++ {
			if s.Points == Star && dx != 0 && dy != 0 {
				continue
			}
			if dx == 0 && dy == 0 {
				centre = len(pts)
			}
			pts = append(pts, [2]int{dx, dy})
		}
	}
	return pts, centre
}
