package stencilc

import (
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// checkProgram2D compiles spec for op on a fw×fh fabric with b×b blocks,
// applies it to a random vector, and requires bitwise equality with the
// Reference2D host replay (plus, for ReduceSumSq, partials equal to the
// per-tile reference fold).
func checkProgram2D(t *testing.T, spec Spec, op *stencil.Op9, b, fw, fh int, seed int64) {
	t.Helper()
	mach := wse.New(wse.CS1(fw, fh))
	defer mach.Close()
	p, err := Compile2D(mach, spec, op, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	src := randomHalfVec(op.M.N(), rng)
	p.LoadVector(src)
	if _, err := p.Run(int64(b*b)*1000 + 100000); err != nil {
		t.Fatal(err)
	}
	got := p.Result()
	want, err := Reference2D(spec, op, b, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d: machine %v, reference %v", i, got[i], want[i])
		}
	}
	if spec.Reduce == ReduceSumSq {
		for ti := 0; ti < p.Tiles(); ti++ {
			st := p.tiles[ti]
			blk := make([]fp16.Float16, 0, b*b)
			for j := 0; j < b; j++ {
				for i := 0; i < b; i++ {
					blk = append(blk, want[op.M.Index(st.x*b+i, st.y*b+j)])
				}
			}
			if ref := SumSqReference(blk); p.Partials()[ti] != ref {
				t.Fatalf("tile %d: partial %v, reference %v", ti, p.Partials()[ti], ref)
			}
		}
	}
}

func TestProgram2DBoxEquivalence(t *testing.T) {
	m := stencil.Mesh2D{NX: 12, NY: 8}
	op, _ := stencil.Random9(m, 1.4, rand.New(rand.NewSource(7))).Normalize9()
	checkProgram2D(t, Spec9Point(), op, 4, 3, 2, 41)
}

func TestProgram2DStarEquivalence(t *testing.T) {
	// The heat step is the star spec's coefficient source: zero corners
	// by construction.
	m := stencil.Mesh2D{NX: 8, NY: 8}
	op, _ := stencil.Heat2D(m, 0.15).Normalize9()
	checkProgram2D(t, Spec5Point(), op, 2, 4, 4, 43)
}

func TestProgram2DSumSq(t *testing.T) {
	m := stencil.Mesh2D{NX: 8, NY: 4}
	op, _ := stencil.Heat2D(m, 0.2).Normalize9()
	checkProgram2D(t, SpecHeat2D(), op, 4, 2, 1, 47)
}

// TestProgram2DStarRejectsCorners pins the star LoadCoeff guard: a
// 9-point operator with a nonzero corner diagonal cannot silently lose
// terms under the 5-point spec.
func TestProgram2DStarRejectsCorners(t *testing.T) {
	m := stencil.Mesh2D{NX: 4, NY: 4}
	op, _ := stencil.Random9(m, 1.4, rand.New(rand.NewSource(3))).Normalize9()
	mach := wse.New(wse.CS1(2, 2))
	defer mach.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Compile2D(star, full box operator) did not panic")
		}
	}()
	_, _ = Compile2D(mach, Spec5Point(), op, 2, 0)
}

// ---------------------------------------------------------------------
// 3D

// fillWafer loads the global iterate into a compiled wafer program and
// host-fills every halo column whose direction leaves the fabric —
// including the relay distances, exactly what the multiwafer host does
// at width 1 — from the global source vector.
func fillWafer(p *Program3D, src []fp16.Float16) {
	m := p.Mesh
	w, h := p.M.Cfg.FabricW, p.M.Cfg.FabricH
	for i := 0; i < p.Tiles(); i++ {
		gx, gy := p.GlobalCoord(i)
		copy(p.Iterate(i), src[m.Index(gx, gy, 0):m.Index(gx, gy, 0)+m.NZ])
		x, y := gx-p.X0, gy-p.Y0
		for d := HaloDir(0); d < NumHaloDirs; d++ {
			nx, ny := x+haloDelta[d][0], y+haloDelta[d][1]
			if nx >= 0 && nx < w && ny >= 0 && ny < h {
				continue // exchanged (or relayed) on fabric
			}
			for k := 1; k <= p.Spec.Widths[axisOf(d)]; k++ {
				hx, hy := gx+k*haloDelta[d][0], gy+k*haloDelta[d][1]
				if hx < 0 || hx >= m.NX || hy < 0 || hy >= m.NY {
					continue // beyond the global mesh: term is skipped
				}
				copy(p.Halo(i, d, k), src[m.Index(hx, hy, 0):m.Index(hx, hy, 0)+m.NZ])
			}
		}
	}
}

// checkProgram3D compiles spec for op on a fabric covering the extent
// (x0, y0, fw, fh) of the global mesh, applies it to a random vector
// with host-filled edge halos, and requires bitwise equality with
// stencil.OpStarHalf.Apply on the global mesh.
func checkProgram3D(t *testing.T, spec Spec, op *stencil.OpStarHalf, x0, y0, fw, fh int, seed int64) {
	t.Helper()
	m := op.M
	mach := wse.New(wse.CS1(fw, fh))
	defer mach.Close()
	p, err := Compile3D(mach, spec, op, x0, y0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	src := randomHalfVec(m.N(), rng)
	fillWafer(p, src)
	if _, err := p.Run(int64(m.NZ)*1000 + 1<<20); err != nil {
		t.Fatal(err)
	}
	want := make([]fp16.Float16, m.N())
	op.Apply(want, src)
	for i := 0; i < p.Tiles(); i++ {
		gx, gy := p.GlobalCoord(i)
		got := p.Result(i)
		for z := 0; z < m.NZ; z++ {
			if w := want[m.Index(gx, gy, z)]; got[z] != w {
				t.Fatalf("column (%d,%d) z=%d: machine %v, reference %v", gx, gy, z, got[z], w)
			}
		}
		if spec.Reduce == ReduceSumSq {
			if ref := SumSqReference(got); p.Partials()[i] != ref {
				t.Fatalf("tile %d: partial %v, reference %v", i, p.Partials()[i], ref)
			}
		}
	}
}

func TestProgram3DSevenPointEquivalence(t *testing.T) {
	m := stencil.Mesh{NX: 5, NY: 4, NZ: 6}
	op := randomStarHalf(m, [3]int{1, 1, 1}, rand.New(rand.NewSource(11)))
	checkProgram3D(t, Spec7Point(), op, 0, 0, 5, 4, 51)
}

func TestProgram3DSeismicEquivalence(t *testing.T) {
	m := stencil.Mesh{NX: 6, NY: 5, NZ: 10}
	norm, _ := stencil.Seismic25(m, 0.08).Normalize()
	op := stencil.NewOpStarHalf(norm)
	checkProgram3D(t, SpecSeismic25(), op, 0, 0, 6, 5, 53)
}

// TestProgram3DNarrowMesh exercises relay widths larger than the fabric
// extent: every lateral term past the mesh edge is skipped while the
// uniform exchange schedule still runs all rounds.
func TestProgram3DNarrowMesh(t *testing.T) {
	m := stencil.Mesh{NX: 3, NY: 2, NZ: 4}
	op := randomStarHalf(m, [3]int{4, 4, 4}, rand.New(rand.NewSource(13)))
	checkProgram3D(t, SpecSeismic25(), op, 0, 0, 3, 2, 55)
}

// TestProgram3DAsymmetricWidths exercises unequal per-axis widths: the
// x axis relays three rounds while y stops after one and z couples at
// distance two.
func TestProgram3DAsymmetricWidths(t *testing.T) {
	spec := Spec{Dim: 3, Points: Star, Widths: [3]int{3, 1, 2}}
	m := stencil.Mesh{NX: 7, NY: 4, NZ: 6}
	op := randomStarHalf(m, spec.Widths, rand.New(rand.NewSource(17)))
	checkProgram3D(t, spec, op, 0, 0, 7, 4, 57)
}

// TestProgram3DSplitEquivalence cuts the mesh across two fabrics with
// host-filled halos at every relay distance — the seismic stencil's
// multiwafer composition seam. Both sub-extents must reproduce the
// global reference bitwise, independent of the cut.
func TestProgram3DSplitEquivalence(t *testing.T) {
	m := stencil.Mesh{NX: 7, NY: 3, NZ: 6}
	norm, _ := stencil.Seismic25(m, 0.05).Normalize()
	op := stencil.NewOpStarHalf(norm)
	checkProgram3D(t, SpecSeismic25(), op, 0, 0, 4, 3, 59)
	checkProgram3D(t, SpecSeismic25(), op, 4, 0, 3, 3, 59)
}

func TestProgram3DSumSq(t *testing.T) {
	m := stencil.Mesh{NX: 4, NY: 3, NZ: 8}
	op := randomStarHalf(m, [3]int{1, 1, 1}, rand.New(rand.NewSource(19)))
	checkProgram3D(t, SpecHeat3D(), op, 0, 0, 4, 3, 61)
}

// TestProgram3DEngineEquivalence pins the relay exchange under the
// sharded stepping engine: same cycles, same results, same machine
// fingerprint as the sequential engine.
func TestProgram3DEngineEquivalence(t *testing.T) {
	m := stencil.Mesh{NX: 6, NY: 4, NZ: 6}
	norm, _ := stencil.Seismic25(m, 0.07).Normalize()
	op := stencil.NewOpStarHalf(norm)
	src := randomHalfVec(m.N(), rand.New(rand.NewSource(23)))

	build := func(workers int) (*wse.Machine, *Program3D) {
		cfg := wse.CS1(6, 4)
		cfg.Workers = workers
		mach := wse.New(cfg)
		p, err := Compile3D(mach, SpecSeismic25(), op, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		fillWafer(p, src)
		return mach, p
	}
	mseq, pseq := build(1)
	defer mseq.Close()
	mshd, pshd := build(4)
	defer mshd.Close()
	if mseq.Fab.StepperName() == mshd.Fab.StepperName() {
		t.Skipf("engine selection unavailable: both %q", mseq.Fab.StepperName())
	}
	c1, err := pseq.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := pshd.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("cycles diverge: seq %d, sharded %d", c1, c2)
	}
	for i := 0; i < pseq.Tiles(); i++ {
		a, b := pseq.Result(i), pshd.Result(i)
		for z := range a {
			if a[z] != b[z] {
				t.Fatalf("tile %d z=%d: %v vs %v", i, z, a[z], b[z])
			}
		}
	}
	if f1, f2 := mseq.Fingerprint(), mshd.Fingerprint(); f1 != f2 {
		t.Fatalf("fingerprints diverge: %#x vs %#x", f1, f2)
	}
}
