package stencilc

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/tensor"
	"repro/internal/wse"
)

// Program2D is a compiled 2D block-halo stencil program: each tile owns
// a b×b block of the mesh and the coefficient diagonals for it, computes
// the spec's products of one application into an output region extended
// by a one-point halo, and exchanges output halos with its four
// neighbours over fabric streams in two rounds — first the ±x columns of
// height b+2, then the ±y rows of width b, folding corner contributions
// through the x round so no diagonal communication is needed (box and
// star specs share the exchange schedule; a star simply emits four fewer
// scatter instructions).
//
// Per tile the program is: a "local" task of one block FMAC instruction
// per stencil point (scatter form), whose completion launches the
// x-round threads (two halo-column sends, two stream adds from the
// neighbour streams); their completion launches the y-round threads;
// the y round completes the application — or, for ReduceSumSq specs,
// hands off to a fused per-tile Σy² dot task. All scheduling is
// tile-local — cross-tile signalling happens only through the fabric —
// so the program is bit-identical under the sequential and sharded
// engines, and bit-identical to Reference2D (same rounding order
// everywhere; the equivalence tests assert both).
type Program2D struct {
	M    *wse.Machine
	Mesh stencil.Mesh2D
	Spec Spec
	B    int // block edge (even, ≥ 2)

	base   fabric.Color
	points [][2]int // spec point set, row-major ascending offsets
	centre int      // index of (0,0) in points
	tiles  []*tile2D

	partials []float32 // per-tile Σy² when Spec.Reduce == ReduceSumSq
}

type tile2D struct {
	tile *wse.Tile
	x, y int // tile coordinate

	offC []int // coefficient blocks, b² each, one per point, block row-major
	offV int   // iterate block, b²
	offE int   // extended output region, (b+2)², cell (i,j) at (i+1)+(j+1)(b+2)

	// Neighbour streams, indexed by the direction the words travel:
	// from[ColEast] carries the west neighbour's eastbound halo, etc.
	from [4]*wse.StreamBuf

	localTask *wse.Task
	dotTask   *wse.Task // fused Σy², nil unless ReduceSumSq

	xLeft, yLeft int // outstanding x- and y-round threads
	done         bool
}

// Compile2D lowers spec onto mach as a block-halo program for the
// normalized operator op, with b×b blocks. The mesh must tile the fabric
// exactly (NX = b·FabricW, NY = b·FabricH) and b must be even: fabric
// words carry two fp16 elements, and an even b keeps every halo transfer
// (b+2 column elements, b row elements) whole-word so no pad element is
// left behind in a stream buffer between applications. base is the first
// of the four directional exchange colors.
func Compile2D(mach *wse.Machine, spec Spec, op *stencil.Op9, b int, base fabric.Color) (*Program2D, error) {
	if err := spec.checkLowerable(); err != nil {
		return nil, err
	}
	if spec.Dim != 2 {
		return nil, fmt.Errorf("stencilc: Compile2D needs a 2D spec, got dim %d", spec.Dim)
	}
	if spec.Widths[0] != 1 || spec.Widths[1] != 1 {
		return nil, unsupported(spec, "the 2D block lowering exchanges one-point halos; widths (%d,%d) need the 3D relay schedule",
			spec.Widths[0], spec.Widths[1])
	}
	m := op.M
	if b < 2 || b%2 != 0 {
		return nil, fmt.Errorf("stencilc: 2D block edge %d must be even and >= 2", b)
	}
	if m.NX != b*mach.Cfg.FabricW || m.NY != b*mach.Cfg.FabricH {
		return nil, fmt.Errorf("stencilc: mesh %dx%d does not tile fabric %dx%d with %d×%d blocks",
			m.NX, m.NY, mach.Cfg.FabricW, mach.Cfg.FabricH, b, b)
	}
	if int(base)+NumExchangeColors > fabric.MaxColors {
		return nil, fmt.Errorf("stencilc: 2D exchange needs %d colors starting at %d", NumExchangeColors, base)
	}
	p := &Program2D{M: mach, Mesh: m, Spec: spec, B: b, base: base}
	p.points, p.centre = spec.points2D()

	// Static routing: four single-hop directional streams.
	w, h := mach.Cfg.FabricW, mach.Cfg.FabricH
	RouteExchange(mach.Fab, w, h, base)

	// Per-tile memory, stream subscriptions, tasks.
	p.tiles = make([]*tile2D, w*h)
	if spec.Reduce == ReduceSumSq {
		p.partials = make([]float32, w*h)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tl := mach.TileAt(fabric.Coord{X: x, Y: y})
			st := &tile2D{tile: tl, x: x, y: y}
			a := tl.Arena
			var err error
			alloc := func(name string, n int) int {
				if err != nil {
					return 0
				}
				var off int
				off, err = a.Alloc(name, n)
				return off
			}
			st.offC = make([]int, len(p.points))
			for k := range st.offC {
				st.offC[k] = alloc(fmt.Sprintf("c%d", k), b*b)
			}
			st.offV = alloc("v", b*b)
			st.offE = alloc("ext", (b+2)*(b+2))
			if err != nil {
				return nil, fmt.Errorf("stencilc: tile (%d,%d): %v", x, y, err)
			}

			sub := func(dir int, has bool) {
				if has {
					st.from[dir] = wse.NewStreamBuf(4)
					tl.Core.Subscribe(base+fabric.Color(dir), st.from[dir])
				}
			}
			sub(ColEast, x > 0) // west neighbour's eastbound words
			sub(ColWest, x < w-1)
			sub(ColSouth, y > 0)
			sub(ColNorth, y < h-1)

			st.localTask = tl.Core.AddTask(&wse.Task{Name: "spmv2d"})
			st.localTask.OnComplete = func(c *wse.Core) { p.launchX(st) }
			if spec.Reduce == ReduceSumSq {
				st.dotTask = tl.Core.AddTask(&wse.Task{Name: "sumsq"})
				st.dotTask.OnComplete = func(c *wse.Core) { st.done = true }
			}
			p.tiles[y*w+x] = st
		}
	}
	p.LoadCoeff(op)
	return p, nil
}

// off9Index maps a unit-width 2D point offset to its stencil.Off9 slot.
func off9Index(off [2]int) int { return (off[1]+1)*3 + (off[0] + 1) }

// LoadCoeff (re)loads the coefficient diagonals. The solver calls this
// between outer iterations when the operator changes; routing, memory
// layout and task structure are reused. The operator must have a unit
// centre coefficient, live on the same mesh, and — for star specs — have
// zero coefficients on the corner diagonals the point set omits.
func (p *Program2D) LoadCoeff(op *stencil.Op9) {
	m := p.Mesh
	if op.M != m {
		panic(fmt.Sprintf("stencilc: operator mesh %v does not match program mesh %v", op.M, m))
	}
	if len(p.points) < 9 {
		// The star program never multiplies the corner diagonals; a
		// nonzero one would silently change the operator.
		inSpec := map[int]bool{}
		for _, off := range p.points {
			inSpec[off9Index(off)] = true
		}
		for k := range op.C {
			if inSpec[k] {
				continue
			}
			for _, v := range op.C[k] {
				if v != 0 {
					panic(fmt.Sprintf("stencilc: operator has a nonzero coefficient on diagonal %v outside the %s point set",
						stencil.Off9[k], p.Spec.Points))
				}
			}
		}
	}
	b := p.B
	for _, st := range p.tiles {
		a := st.tile.Arena
		for j := 0; j < b; j++ {
			for i := 0; i < b; i++ {
				gx, gy := st.x*b+i, st.y*b+j
				for kk, off := range p.points {
					// Scatter form: source cell S contributes
					// C[k][P]·v[S] to P = S − off_k; the tile stores the
					// coefficient sampled at P, zero beyond the mesh
					// (Dirichlet truncation; a zero product is a bitwise
					// no-op on the accumulator).
					px, py := gx-off[0], gy-off[1]
					v := fp16.Zero
					if m.In(px, py) {
						k := off9Index(off)
						if kk == p.centre && op.C[k][m.Index(px, py)] != 1 {
							panic("stencilc: the 2D block program requires a unit centre coefficient")
						}
						v = fp16.FromFloat64(op.C[k][m.Index(px, py)])
					}
					a.Set(st.offC[kk]+j*b+i, v)
				}
			}
		}
	}
}

// extCol returns the descriptor of extended-output column i ∈ [-1, b]
// (b+2 elements, rows j = -1..b).
func (p *Program2D) extCol(st *tile2D, i int) tensor.Descriptor {
	return tensor.Strided(st.offE+i+1, p.B+2, p.B+2)
}

// extRow returns the descriptor of extended-output row j ∈ [-1, b]
// restricted to the block columns i = 0..b-1 (b elements) — the y-round
// halo shape; corner cells travelled with the x round.
func (p *Program2D) extRow(st *tile2D, j int) tensor.Descriptor {
	return tensor.Strided(st.offE+1+(j+1)*(p.B+2), p.B, 1)
}

// armTile prepares one application: zeroes the extended output
// (descriptor re-aliasing, free as in the 3D kernel's armTile), wires
// the scatter instructions with fresh descriptors, and activates the
// local task.
func (p *Program2D) armTile(st *tile2D) {
	b := p.B
	a := st.tile.Arena
	for i := 0; i < (b+2)*(b+2); i++ {
		a.Set(st.offE+i, fp16.Zero)
	}

	instrs := make([]wse.Instr, len(p.points))
	for kk, off := range p.points {
		dx, dy := -off[0], -off[1]
		instrs[kk] = &wse.MemOp{
			Kind:  wse.OpMulAcc,
			Arena: a,
			Dst:   tensor.Mat2D(st.offE+(1+dx)+(1+dy)*(b+2), b, b, b+2),
			A:     tensor.Vec1D(st.offV, b*b),
			B:     tensor.Vec1D(st.offC[kk], b*b),
		}
	}
	st.localTask.Instrs = instrs
	if st.dotTask != nil {
		i := st.y*p.M.Cfg.FabricW + st.x
		p.partials[i] = 0
		st.dotTask.Instrs = []wse.Instr{&wse.DotMixed{
			A:     tensor.Mat2D(st.offE+1+(b+2), b, b, b+2),
			B:     tensor.Mat2D(st.offE+1+(b+2), b, b, b+2),
			Arena: a,
			Out:   &p.partials[i],
		}}
	}
	st.done = false
	st.xLeft, st.yLeft = 0, 0
	st.tile.Core.Activate(st.localTask)
}

// finishTile ends the application after the y round: directly for plain
// specs, or through the fused reduction task.
func (p *Program2D) finishTile(st *tile2D, c *wse.Core) {
	if st.dotTask != nil {
		c.Activate(st.dotTask)
		return
	}
	st.done = true
}

// launchX starts the ±x exchange round: send the two halo columns
// (height b+2) toward the existing neighbours and accumulate the
// neighbours' incoming columns into the block's edge columns. Runs from
// the local task's OnComplete, on the owning core.
func (p *Program2D) launchX(st *tile2D) {
	core := st.tile.Core
	a := st.tile.Arena
	b := p.B
	w := p.M.Cfg.FabricW

	type tx struct {
		col fabric.Color
		src tensor.Descriptor
		has bool
	}
	sends := []tx{
		{p.base + ColWest, p.extCol(st, -1), st.x > 0},
		{p.base + ColEast, p.extCol(st, b), st.x < w-1},
	}
	type rx struct {
		buf *wse.StreamBuf
		acc tensor.Descriptor
	}
	recvs := []rx{
		{st.from[ColEast], p.extCol(st, 0)},   // west neighbour's column folds into i=0
		{st.from[ColWest], p.extCol(st, b-1)}, // east neighbour's into i=b-1
	}

	for _, s := range sends {
		if s.has {
			st.xLeft++
		}
	}
	for _, r := range recvs {
		if r.buf != nil {
			st.xLeft++
		}
	}
	if st.xLeft == 0 {
		p.launchY(st)
		return
	}
	onDone := func(c *wse.Core) {
		st.xLeft--
		if st.xLeft == 0 {
			p.launchY(st)
		}
	}
	slot := 0
	for _, s := range sends {
		if s.has {
			core.LaunchThread(slot, "xh_tx", &wse.SendMem{
				Color: s.col, Src: s.src, Arena: a, Total: b + 2,
			}, onDone)
			slot++
		}
	}
	for _, r := range recvs {
		if r.buf != nil {
			core.LaunchThread(slot, "xh_rx", &wse.StreamAdd{
				Src: wse.StreamSource{B: r.buf}, Acc: r.acc, Arena: a, Total: b + 2,
			}, onDone)
			slot++
		}
	}
}

// launchY starts the ±y round (rows of width b, corners already folded
// by the x round), whose completion finishes the application.
func (p *Program2D) launchY(st *tile2D) {
	core := st.tile.Core
	a := st.tile.Arena
	b := p.B
	h := p.M.Cfg.FabricH

	type tx struct {
		col fabric.Color
		src tensor.Descriptor
		has bool
	}
	sends := []tx{
		{p.base + ColNorth, p.extRow(st, -1), st.y > 0},
		{p.base + ColSouth, p.extRow(st, b), st.y < h-1},
	}
	type rx struct {
		buf *wse.StreamBuf
		acc tensor.Descriptor
	}
	recvs := []rx{
		{st.from[ColSouth], p.extRow(st, 0)},   // north neighbour's row folds into j=0
		{st.from[ColNorth], p.extRow(st, b-1)}, // south neighbour's into j=b-1
	}

	for _, s := range sends {
		if s.has {
			st.yLeft++
		}
	}
	for _, r := range recvs {
		if r.buf != nil {
			st.yLeft++
		}
	}
	if st.yLeft == 0 {
		p.finishTile(st, core)
		return
	}
	onDone := func(c *wse.Core) {
		st.yLeft--
		if st.yLeft == 0 {
			p.finishTile(st, c)
		}
	}
	slot := 0
	for _, s := range sends {
		if s.has {
			core.LaunchThread(slot, "yh_tx", &wse.SendMem{
				Color: s.col, Src: s.src, Arena: a, Total: b,
			}, onDone)
			slot++
		}
	}
	for _, r := range recvs {
		if r.buf != nil {
			core.LaunchThread(slot, "yh_rx", &wse.StreamAdd{
				Src: wse.StreamSource{B: r.buf}, Acc: r.acc, Arena: a, Total: b,
			}, onDone)
			slot++
		}
	}
}

// LoadVector scatters the global iterate v (mesh row-major) into the
// tiles' block-local iterate storage.
func (p *Program2D) LoadVector(v []fp16.Float16) {
	b := p.B
	for _, st := range p.tiles {
		a := st.tile.Arena
		for j := 0; j < b; j++ {
			for i := 0; i < b; i++ {
				a.Set(st.offV+j*b+i, v[p.Mesh.Index(st.x*b+i, st.y*b+j)])
			}
		}
	}
}

// Result gathers the block interiors into a global mesh-indexed vector.
func (p *Program2D) Result() []fp16.Float16 {
	b := p.B
	out := make([]fp16.Float16, p.Mesh.N())
	for _, st := range p.tiles {
		a := st.tile.Arena
		for j := 0; j < b; j++ {
			for i := 0; i < b; i++ {
				out[p.Mesh.Index(st.x*b+i, st.y*b+j)] = a.At(st.offE + (i + 1) + (j+1)*(b+2))
			}
		}
	}
	return out
}

// Tiles returns the tile count (fabric row-major indexing).
func (p *Program2D) Tiles() int { return len(p.tiles) }

// IterateOff returns the arena offset of tile i's iterate block — the
// solver engine copies its vectors in and out of the program through the
// live arena (descriptor re-aliasing, free).
func (p *Program2D) IterateOff(i int) int { return p.tiles[i].offV }

// InteriorIndex returns the arena index of interior output element e
// (block row-major) of tile i within the extended output region.
func (p *Program2D) InteriorIndex(i, e int) int {
	st := p.tiles[i]
	b := p.B
	return st.offE + (e%b + 1) + (e/b+1)*(b+2)
}

// Partials returns the per-tile Σy² partials of the last Run (fabric
// row-major), valid only for ReduceSumSq specs. Combine them with
// cluster.ExactSum32 for a bit-stable global reduction.
func (p *Program2D) Partials() []float32 { return p.partials }

// Arm prepares every tile for one application without stepping the
// machine — for lock-step engine-equivalence tests that drive Step
// themselves. Run calls it implicitly.
func (p *Program2D) Arm() {
	for _, st := range p.tiles {
		p.armTile(st)
	}
}

// Done reports whether every tile has completed its application (the
// predicate Run waits on).
func (p *Program2D) Done() bool {
	for _, st := range p.tiles {
		if !st.done {
			return false
		}
	}
	return true
}

// Run executes one application under cycle simulation and returns the
// cycles it took: every tile's local task, x round, y round — and, for
// ReduceSumSq specs, the fused dot — have completed and all halo streams
// are fully drained.
func (p *Program2D) Run(maxCycles int64) (int64, error) {
	p.Arm()
	return p.M.RunUntil(p.Done, maxCycles)
}

// TileMemoryWords returns the arena words one tile of this program uses:
// one b² coefficient block per stencil point, the b² iterate and the
// (b+2)² extended output.
func (p *Program2D) TileMemoryWords() int {
	return (len(p.points)+1)*p.B*p.B + (p.B+2)*(p.B+2)
}
