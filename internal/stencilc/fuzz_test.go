package stencilc

import (
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// FuzzStencilcEquivalence drives the whole compiler contract from random
// specs: a fuzzed (dimensionality, fabric, block/column depth, widths,
// reduction) tuple is compiled and run on both stepping engines, and the
// machine output must equal the functional reference bit for bit — plus
// the engines must agree on cycles and results, and the cycle count must
// equal the exact perfmodel replay entry. Seed corpus in
// testdata/fuzz/FuzzStencilcEquivalence; CI runs this in fuzz-smoke.
func FuzzStencilcEquivalence(f *testing.F) {
	f.Add(int64(1), uint64(0x020202), uint64(0))
	f.Add(int64(7), uint64(0x010303), uint64(1))
	f.Add(int64(-9), uint64(0x040201), uint64(6))
	f.Add(int64(55), uint64(0x030104), uint64(3))
	f.Fuzz(func(t *testing.T, seed int64, dims, sel uint64) {
		rng := rand.New(rand.NewSource(seed))
		fw := int(dims&0xff)%4 + 1
		fh := int((dims>>8)&0xff)%4 + 1
		depth := int((dims>>16)&0xff)%3 + 1 // z = 2·4·depth/2 … see below
		sumsq := sel&1 != 0
		workers := rng.Intn(6) + 2

		if sel&2 != 0 {
			fuzz2D(t, rng, fw, fh, depth, sel, sumsq, workers)
		} else {
			fuzz3D(t, rng, fw, fh, depth, sel, sumsq, workers)
		}
	})
}

// runBoth compiles and runs a program under the sequential and sharded
// engines, requiring identical cycles; it returns the sequential
// machine's program plus the cycle count.
func runBoth(t *testing.T, workers int, build func(*wse.Machine) interface {
	Run(int64) (int64, error)
}, fw, fh int) (seq, shd interface {
	Run(int64) (int64, error)
}, cycles int64) {
	t.Helper()
	mkMach := func(wk int) *wse.Machine {
		cfg := wse.CS1(fw, fh)
		cfg.Workers = wk
		return wse.New(cfg)
	}
	mseq := mkMach(1)
	t.Cleanup(mseq.Close)
	mshd := mkMach(workers)
	t.Cleanup(mshd.Close)
	pseq := build(mseq)
	pshd := build(mshd)
	c1, err := pseq.Run(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := pshd.Run(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatalf("cycles diverge: sequential %d, sharded(%d) %d", c1, workers, c2)
	}
	return pseq, pshd, c1
}

func fuzz3D(t *testing.T, rng *rand.Rand, fw, fh, depth int, sel uint64, sumsq bool, workers int) {
	z := 2 * (depth + 1) // 4, 6, 8
	widths := [3]int{int(sel>>2)%3 + 1, int(sel>>4)%3 + 1, int(sel>>6)%4 + 1}
	spec := Spec{Dim: 3, Points: Star, Widths: widths}
	if sumsq {
		spec.Reduce = ReduceSumSq
	}
	m := stencil.Mesh{NX: fw, NY: fh, NZ: z}
	op := randomStarHalf(m, widths, rng)
	src := randomHalfVec(m.N(), rng)

	var progs []*Program3D
	_, _, cycles := runBoth(t, workers, func(mach *wse.Machine) interface {
		Run(int64) (int64, error)
	} {
		p, err := Compile3D(mach, spec, op, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		fillWafer(p, src)
		progs = append(progs, p)
		return p
	}, fw, fh)

	ref := make([]fp16.Float16, m.N())
	op.Apply(ref, src)
	for _, p := range progs {
		for i := 0; i < p.Tiles(); i++ {
			gx, gy := p.GlobalCoord(i)
			got := p.Result(i)
			for zz := 0; zz < m.NZ; zz++ {
				if w := ref[m.Index(gx, gy, zz)]; got[zz] != w {
					t.Fatalf("column (%d,%d) z=%d: machine %v, reference %v", gx, gy, zz, got[zz], w)
				}
			}
			if sumsq {
				if r := SumSqReference(got); p.Partials()[i] != r {
					t.Fatalf("tile %d: partial %v, reference %v", i, p.Partials()[i], r)
				}
			}
		}
	}
	model := perfmodel.StencilApply3D{W: fw, H: fh, Z: z, Widths: widths, SumSq: sumsq}.Cycles()
	if cycles != model {
		t.Fatalf("3D (%d,%d,%d) W=%v sumsq=%v: simulator %d cycles, model %d", fw, fh, z, widths, sumsq, cycles, model)
	}
}

func fuzz2D(t *testing.T, rng *rand.Rand, fw, fh, depth int, sel uint64, sumsq bool, workers int) {
	b := 2 * depth // 2, 4, 6
	star := sel&4 != 0
	spec := Spec9Point()
	if star {
		spec = Spec5Point()
	}
	if sumsq {
		spec.Reduce = ReduceSumSq
	}
	m := stencil.Mesh2D{NX: fw * b, NY: fh * b}
	var op *stencil.Op9
	if star {
		op, _ = stencil.Heat2D(m, 0.05+rng.Float64()/3).Normalize9()
	} else {
		op, _ = stencil.Random9(m, 1.3, rng).Normalize9()
	}
	src := randomHalfVec(m.N(), rng)

	var progs []*Program2D
	_, _, cycles := runBoth(t, workers, func(mach *wse.Machine) interface {
		Run(int64) (int64, error)
	} {
		p, err := Compile2D(mach, spec, op, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		p.LoadVector(src)
		progs = append(progs, p)
		return p
	}, fw, fh)

	ref, err := Reference2D(spec, op, b, src)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range progs {
		got := p.Result()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("element %d: machine %v, reference %v", i, got[i], ref[i])
			}
		}
		if sumsq {
			for ti := 0; ti < p.Tiles(); ti++ {
				st := p.tiles[ti]
				blk := make([]fp16.Float16, 0, b*b)
				for j := 0; j < b; j++ {
					for i := 0; i < b; i++ {
						blk = append(blk, ref[m.Index(st.x*b+i, st.y*b+j)])
					}
				}
				if r := SumSqReference(blk); p.Partials()[ti] != r {
					t.Fatalf("tile %d: partial %v, reference %v", ti, p.Partials()[ti], r)
				}
			}
		}
	}
	points := 9
	if star {
		points = 5
	}
	model := perfmodel.StencilApply2D{W: fw, H: fh, B: b, Points: points, SumSq: sumsq}.Cycles()
	if cycles != model {
		t.Fatalf("2D (%d,%d) b=%d star=%v sumsq=%v: simulator %d cycles, model %d", fw, fh, b, star, sumsq, cycles, model)
	}
}
