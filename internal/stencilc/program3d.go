package stencilc

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/tensor"
	"repro/internal/wse"
)

// Program3D is a compiled 3D Z-column star-stencil program with
// memory-resident halos, built for composition across wafers
// (internal/multiwafer): the machine's fabric covers the X×Y tile extent
// [X0, X0+W)×[Y0, Y0+H) of a larger global mesh, each tile owns the
// Z-column of one (x, y) and stores — besides its coefficient and
// iterate/result columns — one halo column per lateral stencil point,
// holding the iterate of the neighbour at that offset.
//
// One application runs in two phases per tile. The exchange phase moves
// iterate columns over the four single-hop directional colors in
// max(Wx, Wy) relay rounds: round 1 streams the tile's own column to
// each on-fabric neighbour; round r forwards the distance-(r−1) halo
// received from the opposite side, so after r rounds every tile holds
// verbatim copies (wse.StreamStore — bit-exact) of all neighbours out
// to distance r without any multi-hop routing. Rounds reuse the same
// colors and thread slots; per-color FIFO ordering sequences them, and
// a uniform schedule (every on-fabric link carries the same word count
// each round, even where the payload column lies beyond the global mesh
// and its scatter term is skipped) keeps the fabric deadlock-free.
// Halo columns whose neighbour lives on another wafer are filled by the
// host before Run, modelling the CS-1's edge I/O. The compute phase
// then runs a fixed sequence of tensor instructions in exactly
// stencil.OpStarHalf.Apply's rounding order: z pairs by distance,
// lateral terms direction-major (xp, xm, yp, ym) with distance inner,
// then the unit diagonal — and, for ReduceSumSq specs, a fused per-tile
// Σy² dot.
//
// Because every arithmetic step is a per-tile instruction in a fixed
// program order and halos move bit-verbatim, the result is bitwise
// equal to OpStarHalf.Apply on the global mesh — independent of how the
// mesh is cut into wafers and of the simulation engine. At W = {1,1,1}
// the emitted program is exactly the hand-written 7-point kernel this
// compiler replaced (kernels.SpMV3DHalo wraps it; golden tests pin the
// bit-identity).
type Program3D struct {
	M      *wse.Machine
	Mesh   stencil.Mesh // the global mesh
	Spec   Spec
	X0, Y0 int // global tile coordinate of fabric (0, 0)

	base   fabric.Color
	rounds int   // lateral relay rounds per application, max(Wx, Wy)
	ff     *ff3d // fast-forward plan, built lazily on first eligible Run
	tiles  []*tile3D

	partials []float32 // per-tile Σy² when Spec.Reduce == ReduceSumSq
}

type tile3D struct {
	tile   *wse.Tile
	x, y   int // fabric-local coordinate
	gx, gy int // global mesh column

	offC [NumHaloDirs][]int // lateral coefficients [dir][dist-1], Z each
	offZ [2][]int           // z coefficients: offZ[0] = zp, offZ[1] = zm, [dist-1]
	offV int                // iterate column, Z
	offU int                // result column, Z
	offH [NumHaloDirs][]int // halo columns [dir][dist-1], Z each
	from [NumHaloDirs]*wse.StreamBuf

	compute *wse.Task
	dotTask *wse.Task // fused Σy², nil unless ReduceSumSq
	round   int       // current exchange round, 1-based
	exLeft  int       // outstanding threads of the current round
	done    bool
}

// latName maps a halo direction to its coefficient-column name stem.
var latName = [NumHaloDirs]string{HaloXP: "xp", HaloXM: "xm", HaloYP: "yp", HaloYM: "ym"}

// distName suffixes a column name with its distance; distance 1 keeps
// the bare stem (the pre-compiler kernel's names, which the goldens see
// through TileMemoryWords and arena layout).
func distName(stem string, k int) string {
	if k == 1 {
		return stem
	}
	return fmt.Sprintf("%s%d", stem, k)
}

// Compile3D lowers spec onto mach as a halo-resident program for the
// sub-extent of the global operator op starting at tile (x0, y0); the
// fabric size selects the extent. Z must be even (two fp16 elements per
// fabric word) and the fabric must fit inside the mesh. base is the
// first of the four directional exchange colors.
func Compile3D(mach *wse.Machine, spec Spec, op *stencil.OpStarHalf, x0, y0 int, base fabric.Color) (*Program3D, error) {
	if err := spec.checkLowerable(); err != nil {
		return nil, err
	}
	if spec.Dim != 3 {
		return nil, fmt.Errorf("stencilc: Compile3D needs a 3D spec, got dim %d", spec.Dim)
	}
	if spec.Points != Star {
		return nil, unsupported(spec, "the Z-column mapping exchanges axis-aligned columns only; a 3D box needs diagonal channels")
	}
	if op.W != spec.Widths {
		return nil, fmt.Errorf("stencilc: operator widths %v do not match spec widths %v", op.W, spec.Widths)
	}
	m := op.M
	w, h := mach.Cfg.FabricW, mach.Cfg.FabricH
	if m.NZ%2 != 0 {
		return nil, fmt.Errorf("stencilc: Z=%d must be even (two fp16 per fabric word)", m.NZ)
	}
	if x0 < 0 || y0 < 0 || x0+w > m.NX || y0+h > m.NY {
		return nil, fmt.Errorf("stencilc: fabric %dx%d at (%d,%d) exceeds mesh %v", w, h, x0, y0, m)
	}
	if int(base)+NumExchangeColors > fabric.MaxColors {
		return nil, fmt.Errorf("stencilc: halo exchange needs %d colors starting at %d", NumExchangeColors, base)
	}
	p := &Program3D{M: mach, Mesh: m, Spec: spec, X0: x0, Y0: y0, base: base}
	if p.rounds = spec.Widths[0]; spec.Widths[1] > p.rounds {
		p.rounds = spec.Widths[1]
	}
	z := m.NZ

	// Static routing: the same four single-hop directional streams the
	// 2D block-halo program uses; relay rounds reuse them.
	RouteExchange(mach.Fab, w, h, base)

	p.tiles = make([]*tile3D, w*h)
	if spec.Reduce == ReduceSumSq {
		p.partials = make([]float32, w*h)
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tl := mach.TileAt(fabric.Coord{X: x, Y: y})
			st := &tile3D{tile: tl, x: x, y: y, gx: x0 + x, gy: y0 + y}
			a := tl.Arena
			var err error
			alloc := func(name string, n int) int {
				if err != nil {
					return 0
				}
				var off int
				off, err = a.Alloc(name, n)
				return off
			}
			for d := HaloDir(0); d < NumHaloDirs; d++ {
				wd := spec.Widths[axisOf(d)]
				st.offC[d] = make([]int, wd)
				for k := 1; k <= wd; k++ {
					st.offC[d][k-1] = alloc(distName(latName[d], k), z)
				}
			}
			wz := spec.Widths[2]
			st.offZ[0] = make([]int, wz)
			st.offZ[1] = make([]int, wz)
			for k := 1; k <= wz; k++ {
				st.offZ[0][k-1] = alloc(distName("zp", k), z)
			}
			for k := 1; k <= wz; k++ {
				st.offZ[1][k-1] = alloc(distName("zm", k), z)
			}
			st.offV = alloc("v", z)
			st.offU = alloc("u", z)
			for d := HaloDir(0); d < NumHaloDirs; d++ {
				wd := spec.Widths[axisOf(d)]
				st.offH[d] = make([]int, wd)
				for k := 1; k <= wd; k++ {
					name := fmt.Sprintf("h%d", d)
					if k > 1 {
						name = fmt.Sprintf("h%d_%d", d, k)
					}
					st.offH[d][k-1] = alloc(name, z)
				}
			}
			if err != nil {
				return nil, fmt.Errorf("stencilc: tile (%d,%d): %v", x, y, err)
			}

			// Stream subscriptions for on-fabric neighbours; one buffer
			// per direction, shared by all relay rounds (per-color FIFO
			// order keeps rounds from interleaving).
			for d := HaloDir(0); d < NumHaloDirs; d++ {
				nx, ny := x+haloDelta[d][0], y+haloDelta[d][1]
				if nx >= 0 && nx < w && ny >= 0 && ny < h {
					st.from[d] = wse.NewStreamBuf(4)
					tl.Core.Subscribe(base+fabric.Color(haloTravel[d]), st.from[d])
				}
			}

			st.compute = tl.Core.AddTask(&wse.Task{Name: "spmv3dh"})
			if spec.Reduce == ReduceSumSq {
				st.dotTask = tl.Core.AddTask(&wse.Task{Name: "sumsq"})
				st.dotTask.OnComplete = func(c *wse.Core) { st.done = true }
				st.compute.OnComplete = func(c *wse.Core) { c.Activate(st.dotTask) }
			} else {
				st.compute.OnComplete = func(c *wse.Core) { st.done = true }
			}
			p.tiles[y*w+x] = st
		}
	}
	p.LoadCoeff(op)
	return p, nil
}

// zp/zm indices within tile3D.offZ.
const (
	zpIdx = 0
	zmIdx = 1
)

// LoadCoeff (re)loads the coefficient columns from the global operator.
// Routing, memory layout and task structure are reused; the operator
// must keep the program's mesh and widths.
func (p *Program3D) LoadCoeff(op *stencil.OpStarHalf) {
	if op.M != p.Mesh {
		panic(fmt.Sprintf("stencilc: operator mesh %v does not match program mesh %v", op.M, p.Mesh))
	}
	if op.W != p.Spec.Widths {
		panic(fmt.Sprintf("stencilc: operator widths %v do not match spec widths %v", op.W, p.Spec.Widths))
	}
	z := p.Mesh.NZ
	lat := [NumHaloDirs][][]fp16.Float16{HaloXP: op.XP, HaloXM: op.XM, HaloYP: op.YP, HaloYM: op.YM}
	for _, st := range p.tiles {
		a := st.tile.Arena
		for zz := 0; zz < z; zz++ {
			i := p.Mesh.Index(st.gx, st.gy, zz)
			for d := HaloDir(0); d < NumHaloDirs; d++ {
				for k := range st.offC[d] {
					a.Set(st.offC[d][k]+zz, lat[d][k][i])
				}
			}
			for k := range st.offZ[zpIdx] {
				a.Set(st.offZ[zpIdx][k]+zz, op.ZP[k][i])
			}
			for k := range st.offZ[zmIdx] {
				a.Set(st.offZ[zmIdx][k]+zz, op.ZM[k][i])
			}
		}
	}
}

// Tiles returns the tile count (fabric row-major indexing).
func (p *Program3D) Tiles() int { return len(p.tiles) }

// GlobalCoord returns the global mesh column of tile index i.
func (p *Program3D) GlobalCoord(i int) (gx, gy int) { return p.tiles[i].gx, p.tiles[i].gy }

// Iterate returns tile i's live iterate column (Z elements of arena
// storage). The host writes the solver's source vector here before Run
// and reads boundary columns from it when shipping inter-wafer halos;
// both are bit-verbatim copies.
func (p *Program3D) Iterate(i int) []fp16.Float16 {
	st := p.tiles[i]
	return st.tile.Arena.Slice(st.offV, p.Mesh.NZ)
}

// Result returns tile i's live result column.
func (p *Program3D) Result(i int) []fp16.Float16 {
	st := p.tiles[i]
	return st.tile.Arena.Slice(st.offU, p.Mesh.NZ)
}

// Halo returns tile i's live halo column for direction d at distance
// dist ∈ [1, width]. The host fills it for off-wafer neighbours before
// Run; on-fabric directions are overwritten by the exchange phase.
func (p *Program3D) Halo(i int, d HaloDir, dist int) []fp16.Float16 {
	st := p.tiles[i]
	return st.tile.Arena.Slice(st.offH[d][dist-1], p.Mesh.NZ)
}

// Partials returns the per-tile Σy² partials of the last Run (fabric
// row-major), valid only for ReduceSumSq specs. Combine them with
// cluster.ExactSum32 for a bit-stable global reduction.
func (p *Program3D) Partials() []float32 { return p.partials }

// onFabric reports whether tile st's neighbour in direction d lies on
// this machine's fabric.
func (p *Program3D) onFabric(st *tile3D, d HaloDir) bool {
	return st.from[d] != nil
}

// inMesh reports whether tile st has a neighbour at distance dist in
// direction d on the global mesh at all.
func (p *Program3D) inMesh(st *tile3D, d HaloDir, dist int) bool {
	gx, gy := st.gx+dist*haloDelta[d][0], st.gy+dist*haloDelta[d][1]
	return gx >= 0 && gx < p.Mesh.NX && gy >= 0 && gy < p.Mesh.NY
}

// armTile prepares one application: zeroes the result column, builds the
// fixed-order compute task, and launches the first exchange round.
func (p *Program3D) armTile(st *tile3D) {
	z := p.Mesh.NZ
	a := st.tile.Arena
	for i := 0; i < z; i++ {
		a.Set(st.offU+i, fp16.Zero)
	}
	st.done = false

	// Compute task body, in stencil.OpStarHalf.Apply's exact order. The
	// z-direction terms come from the tile's own column (shifted
	// descriptors, skipping the meshless end); lateral terms multiply a
	// halo column and are skipped entirely beyond the global mesh
	// boundary, mirroring the reference's per-point conditionals (which
	// are uniform along a Z-column).
	wz := p.Spec.Widths[2]
	instrs := make([]wse.Instr, 0, 2*wz+2*(p.Spec.Widths[0]+p.Spec.Widths[1])+1)
	if z > 1 {
		instrs = append(instrs, &wse.MemOp{ // u[z] = zm[z] * v[z-1]
			Kind: wse.OpMul, Arena: a,
			Dst: tensor.Vec1D(st.offU+1, z-1),
			A:   tensor.Vec1D(st.offZ[zmIdx][0]+1, z-1),
			B:   tensor.Vec1D(st.offV, z-1),
		})
		instrs = append(instrs, &wse.MemOp{ // u[z] += zp[z] * v[z+1]
			Kind: wse.OpMulAcc, Arena: a,
			Dst: tensor.Vec1D(st.offU, z-1),
			A:   tensor.Vec1D(st.offZ[zpIdx][0], z-1),
			B:   tensor.Vec1D(st.offV+1, z-1),
		})
	}
	for k := 2; k <= wz; k++ {
		if z <= k {
			continue
		}
		instrs = append(instrs, &wse.MemOp{ // u[z] += zm_k[z] * v[z-k]
			Kind: wse.OpMulAcc, Arena: a,
			Dst: tensor.Vec1D(st.offU+k, z-k),
			A:   tensor.Vec1D(st.offZ[zmIdx][k-1]+k, z-k),
			B:   tensor.Vec1D(st.offV, z-k),
		})
		instrs = append(instrs, &wse.MemOp{ // u[z] += zp_k[z] * v[z+k]
			Kind: wse.OpMulAcc, Arena: a,
			Dst: tensor.Vec1D(st.offU, z-k),
			A:   tensor.Vec1D(st.offZ[zpIdx][k-1], z-k),
			B:   tensor.Vec1D(st.offV+k, z-k),
		})
	}
	for d := HaloDir(0); d < NumHaloDirs; d++ {
		for k := 1; k <= p.Spec.Widths[axisOf(d)]; k++ {
			if !p.inMesh(st, d, k) {
				continue
			}
			instrs = append(instrs, &wse.MemOp{ // u += c_{d,k} * halo_{d,k}
				Kind: wse.OpMulAcc, Arena: a,
				Dst: tensor.Vec1D(st.offU, z),
				A:   tensor.Vec1D(st.offC[d][k-1], z),
				B:   tensor.Vec1D(st.offH[d][k-1], z),
			})
		}
	}
	instrs = append(instrs, &wse.MemOp{ // u += v (unit main diagonal)
		Kind: wse.OpAdd, Arena: a,
		Dst: tensor.Vec1D(st.offU, z),
		A:   tensor.Vec1D(st.offU, z),
		B:   tensor.Vec1D(st.offV, z),
	})
	st.compute.Instrs = instrs
	if st.dotTask != nil {
		i := st.y*p.M.Cfg.FabricW + st.x
		p.partials[i] = 0
		st.dotTask.Instrs = []wse.Instr{&wse.DotMixed{
			A:     tensor.Vec1D(st.offU, z),
			B:     tensor.Vec1D(st.offU, z),
			Arena: a,
			Out:   &p.partials[i],
		}}
	}

	st.round = 0
	p.launchRound(st, st.tile.Core)
}

// roundActive reports whether direction d participates in relay round r
// at tile st: the link must exist on the fabric and the direction's axis
// must still have halo columns to fill. The payload's global-mesh
// membership does not gate the transfer — both endpoints of every
// on-fabric link run the same schedule each round, which is what keeps
// the per-color FIFOs sequenced and free of deadlock.
func (p *Program3D) roundActive(st *tile3D, d HaloDir, r int) bool {
	return p.onFabric(st, d) && r <= p.Spec.Widths[axisOf(d)]
}

// launchRound advances tile st to its next non-empty exchange round and
// launches its threads, or activates the compute task once all rounds
// are done. Round r, direction d sends the column the d-neighbour needs
// for distance r — the tile's own iterate in round 1, the distance-(r−1)
// halo from the opposite side after that — and stores the incoming
// column into halo (d, r). Slots 0–3 send, 4–7 store, reused each round
// (a round only starts after the previous round's threads all
// completed, so the slots are free).
func (p *Program3D) launchRound(st *tile3D, core *wse.Core) {
	z := p.Mesh.NZ
	a := st.tile.Arena
	for {
		st.round++
		if st.round > p.rounds {
			core.Activate(st.compute)
			return
		}
		r := st.round
		st.exLeft = 0
		for d := HaloDir(0); d < NumHaloDirs; d++ {
			if p.roundActive(st, d, r) {
				st.exLeft += 2
			}
		}
		if st.exLeft == 0 {
			continue // nothing to move this round (narrow axis or edge tile)
		}
		onDone := func(c *wse.Core) {
			st.exLeft--
			if st.exLeft == 0 {
				p.launchRound(st, c)
			}
		}
		for d := HaloDir(0); d < NumHaloDirs; d++ {
			if !p.roundActive(st, d, r) {
				continue
			}
			src := st.offV
			if r > 1 {
				src = st.offH[opposite(d)][r-2]
			}
			core.LaunchThread(int(d), "halo_tx", &wse.SendMem{
				Color: p.base + fabric.Color(haloOut[d]),
				Src:   tensor.Vec1D(src, z),
				Arena: a, Total: z,
			}, onDone)
			core.LaunchThread(int(NumHaloDirs+d), "halo_rx", &wse.StreamStore{
				Src:   wse.StreamSource{B: st.from[d]},
				Dst:   tensor.Vec1D(st.offH[d][r-1], z),
				Arena: a, Total: z,
			}, onDone)
		}
		return
	}
}

// Arm prepares every tile for one application without stepping the
// machine — for lock-step engine-equivalence tests that drive Step
// themselves. Run calls it implicitly.
func (p *Program3D) Arm() {
	for _, st := range p.tiles {
		p.armTile(st)
	}
}

// Done reports whether every tile has completed its application (the
// predicate Run waits on).
func (p *Program3D) Done() bool {
	for _, st := range p.tiles {
		if !st.done {
			return false
		}
	}
	return true
}

// Run executes one application and returns the cycles it took.
// Off-wafer halo columns must already hold the current neighbouring
// iterates (the multiwafer host injects them, charging the edge-I/O
// model separately). Under wse.EngineFastForward an eligible
// application is fast-forwarded — memory advanced by host loops with
// the same roundings, counters by the exact exchange replay (see
// ff3d.go) — and anything else falls back to cycle simulation.
func (p *Program3D) Run(maxCycles int64) (int64, error) {
	if cycles, ok := p.tryFastForward(maxCycles); ok {
		return cycles, nil
	}
	p.Arm()
	return p.M.RunUntil(p.Done, maxCycles)
}

// TileMemoryWords returns the arena words one tile of this program
// uses: a coefficient column per stencil point less the centre, the
// iterate and result columns, and a halo column per lateral point —
// (4(Wx+Wy) + 2Wz + 2)·Z words; 12·Z at width 1.
func (p *Program3D) TileMemoryWords() int {
	w := p.Spec.Widths
	return (4*(w[0]+w[1]) + 2*w[2] + 2) * p.Mesh.NZ
}
