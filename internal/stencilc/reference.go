package stencilc

import (
	"fmt"

	"repro/internal/fp16"
	"repro/internal/stencil"
)

// Reference2D is the functional reference of the 2D block-halo program:
// a host replay of the compiled dataflow — per-block scatter in point
// order, then the ±x column folds, then the ±y row folds — with fp16
// arithmetic at every step. Because each fold adds each halo element
// into a distinct accumulator cell exactly once, phase order within a
// round cannot change a result bit, so this sequential replay is
// bitwise equal to the concurrent machine under either engine; the
// equivalence and fuzz tests pin that. src and the returned result are
// mesh row-major; b is the block edge of the replayed decomposition
// (the mesh must tile into b×b blocks — the fold pattern, and therefore
// the bit pattern, depends on where the block seams fall).
func Reference2D(spec Spec, op *stencil.Op9, b int, src []fp16.Float16) ([]fp16.Float16, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Dim != 2 || spec.Widths[0] != 1 || spec.Widths[1] != 1 {
		return nil, fmt.Errorf("stencilc: Reference2D replays the unit-width block program, not %v", spec.Widths)
	}
	m := op.M
	if b < 1 || m.NX%b != 0 || m.NY%b != 0 {
		return nil, fmt.Errorf("stencilc: mesh %dx%d does not tile into %d×%d blocks", m.NX, m.NY, b, b)
	}
	if len(src) != m.N() {
		return nil, fmt.Errorf("stencilc: source length %d, want %d", len(src), m.N())
	}
	points, centre := spec.points2D()
	w, h := m.NX/b, m.NY/b
	e := b + 2
	ext := make([][]fp16.Float16, w*h)
	for t := range ext {
		ext[t] = make([]fp16.Float16, e*e)
	}

	// Phase 1 — per-block scatter, one pass per stencil point, exactly
	// the tile program's OpMulAcc order: dst = Add(dst, Mul(v, c)) with
	// the coefficient sampled at the destination point, zero beyond the
	// mesh.
	for ty := 0; ty < h; ty++ {
		for tx := 0; tx < w; tx++ {
			x := ext[ty*w+tx]
			for kk, off := range points {
				k := off9Index(off)
				dx, dy := -off[0], -off[1]
				for j := 0; j < b; j++ {
					for i := 0; i < b; i++ {
						gx, gy := tx*b+i, ty*b+j
						px, py := gx-off[0], gy-off[1]
						c := fp16.Zero
						if m.In(px, py) {
							if kk == centre && op.C[k][m.Index(px, py)] != 1 {
								return nil, fmt.Errorf("stencilc: the block program requires a unit centre coefficient")
							}
							c = fp16.FromFloat64(op.C[k][m.Index(px, py)])
						}
						d := (i + dx + 1) + (j+dy+1)*e
						x[d] = fp16.Add(x[d], fp16.Mul(src[m.Index(gx, gy)], c))
					}
				}
			}
		}
	}

	// Phase 2 — ±x folds: each tile accumulates the neighbouring halo
	// columns (height b+2) into its edge columns. The folded source
	// columns (i = -1 and i = b) are never written by this phase, so an
	// in-place sequential sweep replays the concurrent exchange exactly.
	at := func(t, i, j int) int { return (i + 1) + (j+1)*e }
	for ty := 0; ty < h; ty++ {
		for tx := 0; tx < w; tx++ {
			x := ext[ty*w+tx]
			if tx > 0 {
				west := ext[ty*w+tx-1]
				for j := -1; j <= b; j++ {
					x[at(0, 0, j)] = fp16.Add(x[at(0, 0, j)], west[at(0, b, j)])
				}
			}
			if tx < w-1 {
				east := ext[ty*w+tx+1]
				for j := -1; j <= b; j++ {
					x[at(0, b-1, j)] = fp16.Add(x[at(0, b-1, j)], east[at(0, -1, j)])
				}
			}
		}
	}

	// Phase 3 — ±y folds: rows of width b (corners already travelled
	// with the x round). The folded rows (j = -1 and j = b) are written
	// only by phase 2, which has fully completed.
	for ty := 0; ty < h; ty++ {
		for tx := 0; tx < w; tx++ {
			x := ext[ty*w+tx]
			if ty > 0 {
				north := ext[(ty-1)*w+tx]
				for i := 0; i < b; i++ {
					x[at(0, i, 0)] = fp16.Add(x[at(0, i, 0)], north[at(0, i, b)])
				}
			}
			if ty < h-1 {
				south := ext[(ty+1)*w+tx]
				for i := 0; i < b; i++ {
					x[at(0, i, b-1)] = fp16.Add(x[at(0, i, b-1)], south[at(0, i, -1)])
				}
			}
		}
	}

	out := make([]fp16.Float16, m.N())
	for ty := 0; ty < h; ty++ {
		for tx := 0; tx < w; tx++ {
			x := ext[ty*w+tx]
			for j := 0; j < b; j++ {
				for i := 0; i < b; i++ {
					out[m.Index(tx*b+i, ty*b+j)] = x[at(0, i, j)]
				}
			}
		}
	}
	return out, nil
}

// SumSqReference replays the fused ReduceSumSq dot for one tile: the
// hardware inner-product instruction's mixed-precision fold (exact fp16
// products into a float32 accumulator) over the tile's output elements
// in storage order — block row-major for the 2D program, the Z column
// for the 3D one.
func SumSqReference(vals []fp16.Float16) float32 {
	var acc float32
	for _, v := range vals {
		acc = fp16.MixedFMAC(acc, v, v)
	}
	return acc
}
