package stencilc

import "repro/internal/fabric"

// NumExchangeColors is the number of virtual channels every block- or
// column-halo exchange needs: one per direction of travel. Every link
// is a single hop (relay rounds reuse the same colors), so four colors
// suffice for the whole fabric at any halo width.
const NumExchangeColors = 4

// Directional exchange colors, offsets from a program's base color.
// The name is the direction a word travels: a tile receives ColEast
// words from its west neighbour, and so on. Both the 2D block-halo and
// the 3D column-halo lowerings draw their colors from this one
// assignment (the kernels package re-exports it), so the invariants —
// a tile's outgoing color differs from all four incoming ones, and the
// four incoming colors are pairwise distinct — are checked once, by
// ExchangeColorsDistinct's property test.
const (
	ColEast = iota
	ColWest
	ColSouth
	ColNorth
)

// ExchangeColorsDistinct verifies the color invariants of the
// directional assignment at a tile: the color it sends on toward each
// neighbour differs from every color it receives on, and the four
// receive colors are pairwise distinct (so the four incoming streams
// are separable by subscription). The directional scheme makes this
// trivially true — each direction of travel owns a dedicated channel —
// but the property test states it as a contract, mirroring
// StencilColorsDistinct for the 3D tessellation.
func ExchangeColorsDistinct() bool {
	recv := []int{ColEast, ColWest, ColSouth, ColNorth}
	seen := map[int]bool{}
	for _, c := range recv {
		if seen[c] {
			return false
		}
		seen[c] = true
	}
	// A tile sends toward its east neighbour on ColEast and receives
	// from it on ColWest, and symmetrically: outgoing != incoming on
	// every link.
	pairs := [][2]int{{ColEast, ColWest}, {ColWest, ColEast}, {ColSouth, ColNorth}, {ColNorth, ColSouth}}
	for _, p := range pairs {
		if p[0] == p[1] {
			return false
		}
	}
	return true
}

// RouteExchange programs the four single-hop directional streams on a
// w×h fabric starting at base: a word a tile injects on base+ColEast
// crosses one link east and rides the neighbour's ramp, symmetrically
// for the other directions. Both lowerings and every halo kernel share
// this one routing block.
func RouteExchange(f *fabric.Fabric, w, h int, base fabric.Color) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			at := fabric.Coord{X: x, Y: y}
			if x < w-1 {
				f.SetRoute(at, fabric.Ramp, base+ColEast, fabric.Mask(fabric.East))
				f.SetRoute(fabric.Coord{X: x + 1, Y: y}, fabric.West, base+ColEast, fabric.Mask(fabric.Ramp))
			}
			if x > 0 {
				f.SetRoute(at, fabric.Ramp, base+ColWest, fabric.Mask(fabric.West))
				f.SetRoute(fabric.Coord{X: x - 1, Y: y}, fabric.East, base+ColWest, fabric.Mask(fabric.Ramp))
			}
			if y < h-1 {
				f.SetRoute(at, fabric.Ramp, base+ColSouth, fabric.Mask(fabric.South))
				f.SetRoute(fabric.Coord{X: x, Y: y + 1}, fabric.North, base+ColSouth, fabric.Mask(fabric.Ramp))
			}
			if y > 0 {
				f.SetRoute(at, fabric.Ramp, base+ColNorth, fabric.Mask(fabric.North))
				f.SetRoute(fabric.Coord{X: x, Y: y - 1}, fabric.South, base+ColNorth, fabric.Mask(fabric.Ramp))
			}
		}
	}
}

// HaloDir names the four lateral halo directions from the owning
// tile's point of view: HaloXP is the halo received from the +x
// neighbour, and so on. (The kernels package aliases this type for its
// public halo API.)
type HaloDir int

// The four halo directions.
const (
	HaloXP HaloDir = iota
	HaloXM
	HaloYP
	HaloYM
	NumHaloDirs
)

// haloTravel maps a halo direction to the directional exchange color
// the data travels on: the +x neighbour's column arrives moving west.
var haloTravel = [NumHaloDirs]int{HaloXP: ColWest, HaloXM: ColEast, HaloYP: ColNorth, HaloYM: ColSouth}

// haloOut maps a halo direction to the color this tile's own data
// leaves on toward that neighbour.
var haloOut = [NumHaloDirs]int{HaloXP: ColEast, HaloXM: ColWest, HaloYP: ColSouth, HaloYM: ColNorth}

// haloDelta is the fabric-coordinate offset of the neighbour in each
// halo direction.
var haloDelta = [NumHaloDirs][2]int{HaloXP: {1, 0}, HaloXM: {-1, 0}, HaloYP: {0, 1}, HaloYM: {0, -1}}

// opposite returns the halo direction facing d.
func opposite(d HaloDir) HaloDir {
	switch d {
	case HaloXP:
		return HaloXM
	case HaloXM:
		return HaloXP
	case HaloYP:
		return HaloYM
	default:
		return HaloYP
	}
}

// axisOf returns the axis (0 = x, 1 = y) a halo direction varies.
func axisOf(d HaloDir) int {
	if d == HaloXP || d == HaloXM {
		return 0
	}
	return 1
}
