package solver

import (
	"fmt"

	"repro/internal/stencil"
)

// Backend2D solves A·x = b for a unit-centre 9-point operator on a 2D
// mesh — the pluggable substrate behind the 2D SIMPLE solver
// (internal/mfix.Cavity2D). Implementations decide *where* the solve
// runs: HostBackend2D below runs float64 BiCGStab in-process, and
// internal/kernels.Wafer2DBackend runs the same algorithm on the
// cycle-simulated wafer through the 2D block-halo SpMV, which is how
// the pressure-correction solve of the Table II cavity executes on the
// simulated fabric.
//
// x0 is the initial guess; backends may require x0 = 0 (the wafer
// solver starts from zero, as the paper's does). The returned Stats
// carry the iterative residual history for convergence comparisons
// across backends.
type Backend2D interface {
	Name() string
	Solve2D(op *stencil.Op9, b, x0 []float64, opts Options) ([]float64, Stats, error)
}

// HostBackend2D is the in-process float64 reference backend.
type HostBackend2D struct{}

// Name implements Backend2D.
func (HostBackend2D) Name() string { return "host" }

// Solve2D implements Backend2D with the generic BiCGStab over a float64
// 9-point operator.
func (HostBackend2D) Solve2D(op *stencil.Op9, b, x0 []float64, opts Options) ([]float64, Stats, error) {
	if err := opts.RejectCheckpoint("host"); err != nil {
		return nil, Stats{}, err
	}
	ctx := NewF64()
	a := ctx.NewOperator2D(op)
	n := op.M.N()
	if len(b) != n || len(x0) != n {
		return nil, Stats{}, fmt.Errorf("solver: system size mismatch: mesh %d, b %d, x0 %d", n, len(b), len(x0))
	}
	bv := ctx.NewVector(n)
	xv := ctx.NewVector(n)
	for i := range b {
		bv.Set(i, b[i])
		xv.Set(i, x0[i])
	}
	st, err := BiCGStab(ctx, a, bv, xv, opts)
	if err != nil {
		return nil, st, err
	}
	return xv.Float64(), st, nil
}

// NewOperator2D adapts a unit-centre 9-point operator to this context.
func (f *F64) NewOperator2D(o *stencil.Op9) Operator {
	for i := 0; i < o.M.N(); i++ {
		if o.C[4][i] != 1 {
			panic("solver: 2D operator must be diagonally preconditioned (unit centre); call Normalize9 first")
		}
	}
	return &f64Op2D{op: o, ctx: f}
}

type f64Op2D struct {
	op  *stencil.Op9
	ctx *F64
}

func (o *f64Op2D) Apply(dst, src Vector) {
	o.op.Apply(dst.(*f64Vec).d, src.(*f64Vec).d)
	// Padded-kernel accounting for the 9-point matvec: eight off-centre
	// multiply-adds per meshpoint (the unit centre costs no multiply).
	c := &o.ctx.c.ByKind[KindMatvec]
	n := int64(o.op.M.N())
	c.SPMul += 8 * n
	c.SPAdd += 8 * n
}
