package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stencil"
)

func TestFusedMatchesStandardBitwise(t *testing.T) {
	// The fused variant reorders no arithmetic in a sequential context,
	// so in fp64 its history is bit-identical to standard BiCGStab.
	m := stencil.Mesh{NX: 5, NY: 5, NZ: 5}
	rng := rand.New(rand.NewSource(12))
	op := stencil.RandomDiagDominant(m, 1.5, rng)
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.NormFloat64()
	}
	run := func(f func(Context, Operator, Vector, Vector, Options) (Stats, error)) ([]float64, []float64) {
		ctx := NewF64()
		a, b, x, _, _ := setupProblem(ctx, op, xe)
		st, err := f(ctx, a, b, x, Options{MaxIter: 20, Tol: 0, RecordHistory: true})
		if err != nil {
			t.Fatal(err)
		}
		return st.History, x.Float64()
	}
	h1, x1 := run(BiCGStab)
	h2, x2 := run(BiCGStabFused)
	if len(h1) != len(h2) {
		t.Fatalf("iteration counts differ: %d vs %d", len(h1), len(h2))
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("history[%d] differs: %g vs %g", i, h1[i], h2[i])
		}
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("x[%d] differs: %g vs %g", i, x1[i], x2[i])
		}
	}
}

func TestFusedConverges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := stencil.Mesh{NX: 2 + rng.Intn(3), NY: 2 + rng.Intn(3), NZ: 2 + rng.Intn(3)}
		op := stencil.RandomDiagDominant(m, 1.5, rng)
		xe := make([]float64, m.N())
		for i := range xe {
			xe[i] = rng.NormFloat64()
		}
		ctx := NewF64()
		a, b, x, _, _ := setupProblem(ctx, op, xe)
		st, err := BiCGStabFused(ctx, a, b, x, Options{MaxIter: 400, Tol: 1e-10})
		if err != nil {
			return false
		}
		if !st.Converged && st.FinalResidual > 1e-8 {
			return false
		}
		for i := range xe {
			if math.Abs(x.At(i)-xe[i]) > 1e-5*(1+math.Abs(xe[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestFusedOperationCountsUnchanged(t *testing.T) {
	// Fusing reductions must not change Table I: still 4 dots, 6 AXPYs,
	// 2 matvecs per iteration.
	m := stencil.Mesh{NX: 4, NY: 4, NZ: 4}
	op := stencil.RandomDiagDominant(m, 1.5, rand.New(rand.NewSource(3)))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = 1
	}
	n := int64(m.N())
	ctx := NewMixed()
	runN := func(iters int) OpCounts {
		a, b, x, _, _ := setupProblem(ctx, op, xe)
		ctx.Counters().Reset()
		if _, err := BiCGStabFused(ctx, a, b, x, Options{MaxIter: iters}); err != nil {
			t.Fatal(err)
		}
		_ = a
		_ = b
		_ = x
		return ctx.Counters().Totals()
	}
	c1, c3 := runN(1), runN(3)
	hpAdd := (c3.HPAdd - c1.HPAdd) / 2
	hpMul := (c3.HPMul - c1.HPMul) / 2
	spAdd := (c3.SPAdd - c1.SPAdd) / 2
	if hpAdd != 18*n || hpMul != 22*n || spAdd != 4*n {
		t.Errorf("fused per-iteration counts %d/%d/%d per mesh, want 18/22/4 × n",
			hpAdd, hpMul, spAdd)
	}
}
