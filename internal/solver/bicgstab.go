package solver

import (
	stdctx "context"
	"errors"
	"fmt"
	"math"
)

// Options controls a Krylov solve.
type Options struct {
	// Ctx, if non-nil, is polled at iteration boundaries for cooperative
	// cancellation. A canceled solve returns an error wrapping
	// Ctx.Err(), so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) distinguish cancels from
	// deadline expiries. (The field is not named Context because that
	// name is taken by the arithmetic Context interface.)
	Ctx stdctx.Context
	// MaxIter bounds the number of iterations; 0 means 1000.
	MaxIter int
	// Tol is the convergence threshold on the iterative relative residual
	// ‖r‖/‖b‖ (diagnosed in float64). Tol <= 0 disables early exit, which
	// Figure 9 uses to run a fixed number of iterations.
	Tol float64
	// RecordHistory stores the relative residual after every iteration.
	RecordHistory bool
	// TrueResidual, if non-nil, is called after each iteration with the
	// current iterate to record an externally computed residual (for
	// example, in full float64 against the original operator).
	TrueResidual func(x Vector) float64
	// CheckpointEvery, Checkpoint and Resume thread solver-level
	// checkpoint/resume through to backends that support it — the wafer
	// backends, which snapshot the simulated machine (see
	// kernels.WSEOptions). Backends without a restorable substrate
	// (the host contexts, the multi-wafer cluster) reject a non-nil
	// Resume or Checkpoint rather than silently ignoring it.
	CheckpointEvery int
	Checkpoint      func([]byte) error
	Resume          []byte
}

func (o Options) maxIter() int {
	if o.MaxIter <= 0 {
		return 1000
	}
	return o.MaxIter
}

// CtxErr returns a wrapped context error when the solve's context is
// done, or nil. Every backend polls it at iteration boundaries — the
// only points where a simulated machine is guaranteed idle, so a
// canceled solve always leaves its substrate in a reusable state.
func (o Options) CtxErr() error {
	if o.Ctx == nil {
		return nil
	}
	if err := o.Ctx.Err(); err != nil {
		return fmt.Errorf("solver: solve canceled: %w", err)
	}
	return nil
}

// CheckpointRequested reports whether any of the checkpoint/resume
// options is set. Backends without a restorable substrate use it (via
// RejectCheckpoint) to refuse the solve instead of silently dropping
// the request.
func (o Options) CheckpointRequested() bool {
	return o.CheckpointEvery > 0 || o.Checkpoint != nil || o.Resume != nil
}

// RejectCheckpoint returns the canonical error for a backend that
// cannot checkpoint or resume, or nil when no checkpoint option is
// set. Every non-wafer backend (the host contexts, the multi-wafer
// cluster, core.Solve's routing) calls this one helper, so the error
// text and the notion of "checkpointing was requested" cannot drift
// between layers.
func (o Options) RejectCheckpoint(backend string) error {
	if !o.CheckpointRequested() {
		return nil
	}
	return fmt.Errorf("solver: %s backend does not support checkpoint/resume (wafer backends only)", backend)
}

// Stats reports the outcome of a solve.
type Stats struct {
	Iterations int
	Converged  bool
	// Breakdown is non-empty if the recurrence hit an exact zero
	// denominator (ρ or ω), after which iterates stop changing.
	Breakdown string
	// FinalResidual is the iterative relative residual at exit.
	FinalResidual float64
	// History[i] is the iterative relative residual after iteration i+1.
	History []float64
	// TrueHistory mirrors History using the Options.TrueResidual callback.
	TrueHistory []float64
}

// ErrZeroRHS is returned when b has zero norm; the solution is x = 0.
var ErrZeroRHS = errors.New("solver: right-hand side has zero norm")

// BiCGStab solves A·x = b with van der Vorst's stabilized bi-conjugate
// gradient method, Algorithm 1 of the paper. x holds the initial guess on
// entry and the solution on exit. The kernel structure per iteration is
// exactly the paper's accounting: 2 matvecs, 4 dots, 6 AXPY-class updates.
func BiCGStab(ctx Context, a Operator, b, x Vector, opts Options) (Stats, error) {
	n := b.Len()
	if x.Len() != n {
		return Stats{}, fmt.Errorf("solver: dimension mismatch: b %d, x %d", n, x.Len())
	}
	c := ctx.Counters()

	r0 := ctx.NewVector(n) // shadow residual, fixed
	r := ctx.NewVector(n)
	p := ctx.NewVector(n)
	s := ctx.NewVector(n) // s_i = A p_i
	q := ctx.NewVector(n)
	y := ctx.NewVector(n) // y_i = A q_i

	// r0 := b − A·x0. With the customary x0 = 0 this is r0 := b (line 2).
	c.SetKind(KindMatvec)
	a.Apply(s, x)
	c.SetKind(KindAxpy)
	r.SetAXPY(-1, s, b) // r = b − A x0
	r0.CopyFrom(r)
	p.CopyFrom(r)

	c.SetKind(KindDot)
	bnorm := math.Sqrt(b.Dot(b))
	if bnorm == 0 {
		return Stats{}, ErrZeroRHS
	}
	rho := r0.Dot(r) // (r0, r0)
	c.SetKind(KindOther)

	st := Stats{}
	record := func() {
		rel := Norm2(r) / bnorm
		st.FinalResidual = rel
		if opts.RecordHistory {
			st.History = append(st.History, rel)
		}
		if opts.TrueResidual != nil {
			st.TrueHistory = append(st.TrueHistory, opts.TrueResidual(x))
		}
	}

	for it := 0; it < opts.maxIter(); it++ {
		if err := opts.CtxErr(); err != nil {
			return st, err
		}
		st.Iterations = it + 1

		// s_i := A p_i  (line 4)
		c.SetKind(KindMatvec)
		a.Apply(s, p)

		// α_i := (r0, r_i) / (r0, s_i)  (line 5)
		c.SetKind(KindDot)
		r0s := r0.Dot(s)
		if r0s == 0 {
			st.Breakdown = "r0·Ap = 0"
			record()
			return st, nil
		}
		alpha := rho / r0s

		// q_i := r_i − α_i s_i  (line 6)
		c.SetKind(KindAxpy)
		q.SetAXPY(-alpha, s, r)

		// y_i := A q_i  (line 7)
		c.SetKind(KindMatvec)
		a.Apply(y, q)

		// ω_i := (q_i, y_i) / (y_i, y_i)  (line 8)
		c.SetKind(KindDot)
		qy := q.Dot(y)
		yy := y.Dot(y)
		if yy == 0 {
			// y = 0 means q = 0 up to roundoff: x + αp is the answer.
			c.SetKind(KindAxpy)
			x.AXPY(alpha, p)
			r.CopyFrom(q)
			st.Breakdown = "y·y = 0"
			record()
			return st, nil
		}
		omega := qy / yy

		// x_i := x_i + α_i p_i + ω_i q_i  (line 9) — two AXPYs
		c.SetKind(KindAxpy)
		x.AXPY(alpha, p)
		x.AXPY(omega, q)

		// r_{i+1} := q_i − ω_i y_i  (line 10)
		r.SetAXPY(-omega, y, q)

		record()
		if opts.Tol > 0 && st.FinalResidual <= opts.Tol {
			st.Converged = true
			return st, nil
		}

		// β_i := (α_i/ω_i) · (r0, r_{i+1})/(r0, r_i)  (line 11)
		c.SetKind(KindDot)
		rhoNew := r0.Dot(r)
		if rho == 0 || omega == 0 {
			st.Breakdown = "rho or omega = 0"
			return st, nil
		}
		beta := (alpha / omega) * (rhoNew / rho)
		rho = rhoNew

		// p_{i+1} := r_{i+1} + β(p_i − ω s_i)  (line 12) — two AXPYs
		c.SetKind(KindAxpy)
		p.AXPY(-omega, s)
		p.XPAY(beta, r)
		c.SetKind(KindOther)
	}
	st.Converged = opts.Tol > 0 && st.FinalResidual <= opts.Tol
	return st, nil
}

// CG solves A·x = b with the conjugate gradient method for symmetric
// positive definite A. It exists as a substrate comparison point (the
// paper presents BiCGStab as the CG extension for nonsymmetric systems).
func CG(ctx Context, a Operator, b, x Vector, opts Options) (Stats, error) {
	n := b.Len()
	c := ctx.Counters()

	r := ctx.NewVector(n)
	p := ctx.NewVector(n)
	ap := ctx.NewVector(n)

	c.SetKind(KindMatvec)
	a.Apply(ap, x)
	c.SetKind(KindAxpy)
	r.SetAXPY(-1, ap, b)
	p.CopyFrom(r)

	c.SetKind(KindDot)
	bnorm := math.Sqrt(b.Dot(b))
	if bnorm == 0 {
		return Stats{}, ErrZeroRHS
	}
	rr := r.Dot(r)
	c.SetKind(KindOther)

	st := Stats{}
	for it := 0; it < opts.maxIter(); it++ {
		if err := opts.CtxErr(); err != nil {
			return st, err
		}
		st.Iterations = it + 1
		c.SetKind(KindMatvec)
		a.Apply(ap, p)
		c.SetKind(KindDot)
		pap := p.Dot(ap)
		if pap == 0 {
			st.Breakdown = "p·Ap = 0"
			return st, nil
		}
		alpha := rr / pap
		c.SetKind(KindAxpy)
		x.AXPY(alpha, p)
		r.AXPY(-alpha, ap)

		rel := Norm2(r) / bnorm
		st.FinalResidual = rel
		if opts.RecordHistory {
			st.History = append(st.History, rel)
		}
		if opts.TrueResidual != nil {
			st.TrueHistory = append(st.TrueHistory, opts.TrueResidual(x))
		}
		if opts.Tol > 0 && rel <= opts.Tol {
			st.Converged = true
			return st, nil
		}
		c.SetKind(KindDot)
		rrNew := r.Dot(r)
		if rr == 0 {
			st.Breakdown = "r·r = 0"
			return st, nil
		}
		beta := rrNew / rr
		rr = rrNew
		c.SetKind(KindAxpy)
		p.XPAY(beta, r)
		c.SetKind(KindOther)
	}
	return st, nil
}
