package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stencil"
)

// denseSolve solves A·x = b by Gaussian elimination with partial pivoting,
// where A is materialized from the stencil operator. Ground truth for
// small systems.
func denseSolve(t *testing.T, o *stencil.Op7, b []float64) []float64 {
	t.Helper()
	n := o.M.N()
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
	}
	// Column j of A = A·e_j.
	e := make([]float64, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		o.Apply(col, e)
		e[j] = 0
		for i := 0; i < n; i++ {
			a[i][j] = col[i]
		}
	}
	for i := 0; i < n; i++ {
		a[i][n] = b[i]
	}
	for k := 0; k < n; k++ {
		piv := k
		for i := k + 1; i < n; i++ {
			if math.Abs(a[i][k]) > math.Abs(a[piv][k]) {
				piv = i
			}
		}
		a[k], a[piv] = a[piv], a[k]
		if a[k][k] == 0 {
			t.Fatal("singular dense system")
		}
		for i := k + 1; i < n; i++ {
			f := a[i][k] / a[k][k]
			for j := k; j <= n; j++ {
				a[i][j] -= f * a[k][j]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := a[i][n]
		for j := i + 1; j < n; j++ {
			s -= a[i][j] * x[j]
		}
		x[i] = s / a[i][i]
	}
	return x
}

// setupProblem normalizes op, builds b = A·xexact, and returns everything
// needed to run a solve in the given context.
func setupProblem(ctx Context, op *stencil.Op7, xexact []float64) (Operator, Vector, Vector, *stencil.Op7, []float64) {
	norm, diag := op.Normalize()
	n := op.M.N()
	b64 := make([]float64, n)
	op.Apply(b64, xexact)
	sb := stencil.ScaleRHS(b64, diag)
	a := ctx.NewOperator(norm)
	b := ctx.NewVector(n)
	for i := 0; i < n; i++ {
		b.Set(i, sb[i])
	}
	x := ctx.NewVector(n)
	return a, b, x, norm, sb
}

func TestBiCGStabF64Poisson(t *testing.T) {
	m := stencil.Mesh{NX: 5, NY: 4, NZ: 6}
	op := stencil.Poisson(m, 1)
	rng := rand.New(rand.NewSource(1))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.NormFloat64()
	}
	ctx := NewF64()
	a, b, x, norm, sb := setupProblem(ctx, op, xe)
	st, err := BiCGStab(ctx, a, b, x, Options{MaxIter: 300, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged {
		t.Fatalf("did not converge: %+v", st)
	}
	if r := norm.ResidualNorm(x.Float64(), sb); r > 1e-9*stencil.Norm2(sb) {
		t.Errorf("true residual %g too large", r)
	}
	for i := range xe {
		if math.Abs(x.At(i)-xe[i]) > 1e-7*(1+math.Abs(xe[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, x.At(i), xe[i])
		}
	}
}

func TestBiCGStabMatchesDense(t *testing.T) {
	m := stencil.Mesh{NX: 3, NY: 3, NZ: 3}
	rng := rand.New(rand.NewSource(21))
	op := stencil.ConvectionDiffusion(m, 0.3, [3]float64{1, -0.5, 0.25}, 0.5)
	b64 := make([]float64, m.N())
	for i := range b64 {
		b64[i] = rng.NormFloat64()
	}
	want := denseSolve(t, op, b64)

	norm, diag := op.Normalize()
	sb := stencil.ScaleRHS(b64, diag)
	ctx := NewF64()
	a := ctx.NewOperator(norm)
	b := ctx.NewVector(m.N())
	for i, v := range sb {
		b.Set(i, v)
	}
	x := ctx.NewVector(m.N())
	st, err := BiCGStab(ctx, a, b, x, Options{MaxIter: 200, Tol: 1e-13})
	if err != nil || !st.Converged {
		t.Fatalf("solve failed: %v %+v", err, st)
	}
	for i := range want {
		if math.Abs(x.At(i)-want[i]) > 1e-6*(1+math.Abs(want[i])) {
			t.Errorf("x[%d] = %g, dense %g", i, x.At(i), want[i])
		}
	}
}

func TestBiCGStabNonsymmetricConvergence(t *testing.T) {
	// Property: BiCGStab in f64 converges on random diagonally dominant
	// nonsymmetric stencil systems.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := stencil.Mesh{NX: 2 + rng.Intn(4), NY: 2 + rng.Intn(4), NZ: 2 + rng.Intn(4)}
		op := stencil.RandomDiagDominant(m, 1.5, rng)
		xe := make([]float64, m.N())
		for i := range xe {
			xe[i] = rng.NormFloat64()
		}
		ctx := NewF64()
		a, b, x, _, _ := setupProblem(ctx, op, xe)
		st, err := BiCGStab(ctx, a, b, x, Options{MaxIter: 500, Tol: 1e-10})
		if err != nil {
			return false
		}
		return st.Converged || st.FinalResidual < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestBiCGStabMixedPlateau(t *testing.T) {
	// The Figure 9 mechanism in miniature: in the *true* residual
	// ‖b−Ax‖/‖b‖ (recomputed in float64 from the stored iterate), mixed
	// precision tracks fp32 for the first iterations, then plateaus near
	// fp16 machine ε (~1e-3..1e-2) while fp32 continues to converge.
	m := stencil.Mesh{NX: 10, NY: 20, NZ: 10}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1.0, 0.05)
	rng := rand.New(rand.NewSource(3))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.Float64()
	}

	run := func(ctx Context) []float64 {
		a, b, x, norm, sb := setupProblem(ctx, op, xe)
		bn := stencil.Norm2(sb)
		st, err := BiCGStab(ctx, a, b, x, Options{
			MaxIter: 15, Tol: 0,
			TrueResidual: func(v Vector) float64 {
				return norm.ResidualNorm(v.Float64(), sb) / bn
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = a
		return st.TrueHistory
	}
	h32 := run(NewF32())
	hmx := run(NewMixed())

	if len(h32) == 0 || len(hmx) == 0 {
		t.Fatal("no history recorded")
	}
	final32 := h32[len(h32)-1]
	finalmx := hmx[len(hmx)-1]
	if final32 > 1e-5 {
		t.Errorf("fp32 true residual should fall below 1e-5, got %g", final32)
	}
	if finalmx < 1e-4 || finalmx > 1e-1 {
		t.Errorf("mixed precision should plateau in [1e-4, 1e-1], got %g", finalmx)
	}
	if finalmx < 10*final32 {
		t.Errorf("mixed plateau %g should sit well above fp32 floor %g", finalmx, final32)
	}
	// Early iterations track each other within an order of magnitude.
	for i := 0; i < 3 && i < len(hmx) && i < len(h32); i++ {
		if hmx[i] > 10*h32[i]+1e-3 {
			t.Errorf("iteration %d residuals diverge: mixed %g vs fp32 %g", i, hmx[i], h32[i])
		}
	}
	// The plateau is a plateau: the last few mixed iterations are flat
	// (no further order-of-magnitude progress).
	if n := len(hmx); n >= 4 && hmx[n-1] < hmx[n-4]/5 {
		t.Errorf("mixed residual still falling at the end: %g -> %g", hmx[n-4], hmx[n-1])
	}
}

func TestTable1OperationCounts(t *testing.T) {
	// One BiCGStab iteration must cost exactly Table I per meshpoint:
	//   matvec: 12 mul + 12 add;  dot: 4 mul + 4 add;  axpy: 6 mul + 6 add.
	m := stencil.Mesh{NX: 6, NY: 5, NZ: 8}
	op := stencil.RandomDiagDominant(m, 1.5, rand.New(rand.NewSource(2)))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = float64(i%3) - 1
	}
	n := int64(m.N())

	for _, tc := range []struct {
		ctx  Context
		half bool
	}{
		{NewF64(), false},
		{NewF32(), false},
		{NewMixed(), true},
	} {
		a, b, x, _, _ := setupProblem(tc.ctx, op, xe)
		c := tc.ctx.Counters()
		c.Reset()
		// Run exactly 2 iterations; subtract the setup (1 matvec for r0,
		// 1 axpy, 2 dots) measured after iteration 0 is impossible, so run
		// 1 and 3 iterations and difference them.
		runN := func(iters int) Counters {
			a2, b2, x2, _, _ := setupProblem(tc.ctx, op, xe)
			_ = a2
			c.Reset()
			if _, err := BiCGStab(tc.ctx, a2, b2, x2, Options{MaxIter: iters, Tol: 0}); err != nil {
				t.Fatal(err)
			}
			_ = b
			_ = x
			_ = a
			return *c
		}
		c1 := runN(1)
		c3 := runN(3)
		var perIter [numKinds]OpCounts
		for k := range perIter {
			perIter[k] = OpCounts{
				HPAdd: (c3.ByKind[k].HPAdd - c1.ByKind[k].HPAdd) / 2,
				HPMul: (c3.ByKind[k].HPMul - c1.ByKind[k].HPMul) / 2,
				SPAdd: (c3.ByKind[k].SPAdd - c1.ByKind[k].SPAdd) / 2,
				SPMul: (c3.ByKind[k].SPMul - c1.ByKind[k].SPMul) / 2,
			}
		}
		mv, dot, ax := perIter[KindMatvec], perIter[KindDot], perIter[KindAxpy]
		if tc.half {
			if mv.HPMul != 12*n || mv.HPAdd != 12*n || mv.SPAdd != 0 {
				t.Errorf("%s matvec counts = %+v, want 12n HP each", tc.ctx.Name(), mv)
			}
			if dot.HPMul != 4*n || dot.SPAdd != 4*n || dot.HPAdd != 0 {
				t.Errorf("%s dot counts = %+v, want 4n HP× + 4n SP+", tc.ctx.Name(), dot)
			}
			if ax.HPMul != 6*n || ax.HPAdd != 6*n {
				t.Errorf("%s axpy counts = %+v, want 6n HP each", tc.ctx.Name(), ax)
			}
			tot := perIter[KindMatvec]
			tot.Add(dot)
			tot.Add(ax)
			if got, want := tot.Total(), 44*n; got != want {
				t.Errorf("%s total ops/iter = %d, want 44n = %d", tc.ctx.Name(), got, want)
			}
		} else {
			if mv.SPMul != 12*n || mv.SPAdd != 12*n {
				t.Errorf("%s matvec counts = %+v, want 12n SP each", tc.ctx.Name(), mv)
			}
			if dot.SPMul != 4*n || dot.SPAdd != 4*n {
				t.Errorf("%s dot counts = %+v, want 4n SP each", tc.ctx.Name(), dot)
			}
			if ax.SPMul != 6*n || ax.SPAdd != 6*n {
				t.Errorf("%s axpy counts = %+v, want 6n SP each", tc.ctx.Name(), ax)
			}
		}
	}
}

func TestCGPoisson(t *testing.T) {
	m := stencil.Mesh{NX: 6, NY: 6, NZ: 6}
	op := stencil.Poisson(m, 1)
	rng := rand.New(rand.NewSource(8))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.NormFloat64()
	}
	ctx := NewF64()
	a, b, x, _, _ := setupProblem(ctx, op, xe)
	st, err := CG(ctx, a, b, x, Options{MaxIter: 400, Tol: 1e-12})
	if err != nil || !st.Converged {
		t.Fatalf("CG failed: %v %+v", err, st)
	}
	for i := range xe {
		if math.Abs(x.At(i)-xe[i]) > 1e-6*(1+math.Abs(xe[i])) {
			t.Fatalf("x[%d] = %g, want %g", i, x.At(i), xe[i])
		}
	}
}

func TestZeroRHS(t *testing.T) {
	m := stencil.Mesh{NX: 3, NY: 3, NZ: 3}
	op, _ := stencil.Poisson(m, 1).Normalize()
	ctx := NewF64()
	a := ctx.NewOperator(op)
	b := ctx.NewVector(m.N())
	x := ctx.NewVector(m.N())
	if _, err := BiCGStab(ctx, a, b, x, Options{}); err != ErrZeroRHS {
		t.Errorf("expected ErrZeroRHS, got %v", err)
	}
	if _, err := CG(ctx, a, b, x, Options{}); err != ErrZeroRHS {
		t.Errorf("CG: expected ErrZeroRHS, got %v", err)
	}
}

func TestExactInitialGuess(t *testing.T) {
	// With x0 = exact solution, BiCGStab should report breakdown or
	// converge immediately with a tiny residual.
	m := stencil.Mesh{NX: 4, NY: 4, NZ: 4}
	op := stencil.Poisson(m, 1)
	rng := rand.New(rand.NewSource(5))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.NormFloat64()
	}
	ctx := NewF64()
	a, b, x, _, _ := setupProblem(ctx, op, xe)
	for i := range xe {
		x.Set(i, xe[i])
	}
	st, err := BiCGStab(ctx, a, b, x, Options{MaxIter: 10, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Converged && st.Breakdown == "" && st.FinalResidual > 1e-10 {
		t.Errorf("exact guess not recognized: %+v", st)
	}
	for i := range xe {
		if math.Abs(x.At(i)-xe[i]) > 1e-9 {
			t.Fatalf("solution drifted at %d", i)
		}
	}
}

func TestHistoryMonotoneEarly(t *testing.T) {
	// The recorded history must have length == iterations and start at or
	// below ~1 for a zero initial guess.
	m := stencil.Mesh{NX: 8, NY: 8, NZ: 8}
	op := stencil.Poisson(m, 1)
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = 1
	}
	ctx := NewF64()
	a, b, x, _, _ := setupProblem(ctx, op, xe)
	st, err := BiCGStab(ctx, a, b, x, Options{MaxIter: 12, Tol: 0, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.History) != st.Iterations {
		t.Fatalf("history length %d != iterations %d", len(st.History), st.Iterations)
	}
	if st.History[len(st.History)-1] > st.History[0] {
		t.Errorf("residual grew over 12 iterations on Poisson: %g -> %g",
			st.History[0], st.History[len(st.History)-1])
	}
}

func TestTrueResidualCallback(t *testing.T) {
	m := stencil.Mesh{NX: 4, NY: 4, NZ: 4}
	op := stencil.Poisson(m, 1)
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = float64(i)
	}
	ctx := NewF64()
	a, b, x, norm, sb := setupProblem(ctx, op, xe)
	bn := stencil.Norm2(sb)
	calls := 0
	st, err := BiCGStab(ctx, a, b, x, Options{
		MaxIter: 5, Tol: 0, RecordHistory: true,
		TrueResidual: func(v Vector) float64 {
			calls++
			return norm.ResidualNorm(v.Float64(), sb) / bn
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != st.Iterations || len(st.TrueHistory) != st.Iterations {
		t.Errorf("callback called %d times over %d iterations", calls, st.Iterations)
	}
	// In f64 the iterative and true residuals agree closely early on.
	if math.Abs(math.Log10(st.TrueHistory[0])-math.Log10(st.History[0])) > 1 {
		t.Errorf("true %g vs iterative %g residual mismatch", st.TrueHistory[0], st.History[0])
	}
}

func TestF32MatchesF64Early(t *testing.T) {
	// For a well-conditioned system the first few fp32 iterations track
	// fp64 residuals to several digits.
	m := stencil.Mesh{NX: 6, NY: 6, NZ: 6}
	op := stencil.MomentumLike(m, 0.05, [3]float64{0.5, 0.5, 0}, 0.2, 1, 0.1)
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = math.Sin(float64(i))
	}
	run := func(ctx Context) []float64 {
		a, b, x, _, _ := setupProblem(ctx, op, xe)
		st, err := BiCGStab(ctx, a, b, x, Options{MaxIter: 4, Tol: 0, RecordHistory: true})
		if err != nil {
			t.Fatal(err)
		}
		return st.History
	}
	h64 := run(NewF64())
	h32 := run(NewF32())
	for i := range h64 {
		if h64[i] == 0 {
			continue
		}
		ratio := h32[i] / h64[i]
		if ratio > 2 || ratio < 0.5 {
			if h64[i] > 1e-6 { // only compare above fp32 noise floor
				t.Errorf("iter %d: fp32 %g vs fp64 %g", i, h32[i], h64[i])
			}
		}
	}
}

func TestVectorOps(t *testing.T) {
	for _, ctx := range []Context{NewF64(), NewF32(), NewMixed()} {
		v := ctx.NewVector(4)
		w := ctx.NewVector(4)
		z := ctx.NewVector(4)
		for i := 0; i < 4; i++ {
			v.Set(i, float64(i+1)) // 1 2 3 4
			w.Set(i, 2)
		}
		z.SetAXPY(3, w, v) // z = 3*2 + v
		for i := 0; i < 4; i++ {
			if got, want := z.At(i), float64(i+7); got != want {
				t.Errorf("%s SetAXPY[%d] = %g, want %g", ctx.Name(), i, got, want)
			}
		}
		z.AXPY(-1, v) // z -= v → 6
		for i := 0; i < 4; i++ {
			if z.At(i) != 6 {
				t.Errorf("%s AXPY[%d] = %g, want 6", ctx.Name(), i, z.At(i))
			}
		}
		z.XPAY(0.5, v) // z = v + 0.5*z = v + 3
		for i := 0; i < 4; i++ {
			if got, want := z.At(i), float64(i+4); got != want {
				t.Errorf("%s XPAY[%d] = %g, want %g", ctx.Name(), i, got, want)
			}
		}
		if got, want := v.Dot(w), 20.0; got != want {
			t.Errorf("%s Dot = %g, want %g", ctx.Name(), got, want)
		}
		if n := Norm2(w); n != 4 {
			t.Errorf("%s Norm2 = %g, want 4", ctx.Name(), n)
		}
	}
}
