// Package solver implements the Krylov subspace methods of the paper —
// BiCGStab (Algorithm 1) and, as a substrate, CG — over pluggable
// arithmetic contexts. Three contexts reproduce the precision study of
// Figure 9:
//
//   - F64: double precision (the Joule cluster baseline arithmetic);
//   - F32: IEEE single precision ("Single precision" in Figure 9);
//   - Mixed: fp16 storage and vector arithmetic with float32 dot-product
//     accumulation, the CS-1 configuration ("Mixed sp/hp").
//
// Every vector operation is attributed to a kernel kind (matvec, dot,
// axpy), which regenerates Table I's operations-per-meshpoint accounting.
package solver

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/fp16"
	"repro/internal/stencil"
)

// Kind labels which BiCGStab kernel an operation belongs to, for the
// Table I accounting.
type Kind int

// Kernel kinds.
const (
	KindOther Kind = iota
	KindMatvec
	KindDot
	KindAxpy
	numKinds
)

// String returns the Table I row name.
func (k Kind) String() string {
	switch k {
	case KindMatvec:
		return "Matvec"
	case KindDot:
		return "Dot"
	case KindAxpy:
		return "AXPY"
	default:
		return "Other"
	}
}

// OpCounts tallies floating point operations by precision class: HP is
// 16-bit, SP is the context's wide class (32- or 64-bit).
type OpCounts struct {
	HPAdd, HPMul, SPAdd, SPMul int64
}

// Add accumulates o2 into o.
func (o *OpCounts) Add(o2 OpCounts) {
	o.HPAdd += o2.HPAdd
	o.HPMul += o2.HPMul
	o.SPAdd += o2.SPAdd
	o.SPMul += o2.SPMul
}

// Total returns the total operation count.
func (o OpCounts) Total() int64 { return o.HPAdd + o.HPMul + o.SPAdd + o.SPMul }

// Counters attributes operation counts to kernel kinds.
type Counters struct {
	kind   Kind
	ByKind [numKinds]OpCounts
}

// SetKind selects the kernel kind subsequent operations are attributed to.
func (c *Counters) SetKind(k Kind) { c.kind = k }

// Totals sums counts across kinds.
func (c *Counters) Totals() OpCounts {
	var t OpCounts
	for _, o := range c.ByKind {
		t.Add(o)
	}
	return t
}

// Reset zeroes all counters.
func (c *Counters) Reset() { *c = Counters{} }

// Vector is a solution-length vector in some storage precision.
type Vector interface {
	Len() int
	// At and Set move values through float64 (rounding on Set).
	At(i int) float64
	Set(i int, v float64)
	// CopyFrom copies src (same concrete type) into the receiver.
	CopyFrom(src Vector)
	// AXPY computes y += a·x with one rounding per element.
	AXPY(a float64, x Vector)
	// SetAXPY computes y_dst = a·x + z elementwise.
	SetAXPY(a float64, x, z Vector)
	// XPAY computes y = x + a·y with one rounding per element.
	XPAY(a float64, x Vector)
	// Dot returns <y, x> with the context's accumulation semantics.
	Dot(x Vector) float64
	// Float64 materializes the vector in float64 (diagnostics only).
	Float64() []float64
}

// Operator applies a unit-diagonal stencil in context precision. The
// solvers only ever apply it — mesh geometry stays with the caller — so
// both 7-point 3D operators and 9-point 2D operators (NewOperator2D)
// fit behind it.
type Operator interface {
	Apply(dst, src Vector)
}

// Context bundles a storage precision with its operation accounting.
type Context interface {
	Name() string
	NewVector(n int) Vector
	// NewOperator converts a unit-diagonal operator into this precision.
	NewOperator(o *stencil.Op7) Operator
	Counters() *Counters
}

// ---------------------------------------------------------------- float64

// F64 is the double-precision context.
type F64 struct{ c Counters }

// NewF64 returns a double-precision context.
func NewF64() *F64 { return &F64{} }

// Name implements Context.
func (f *F64) Name() string { return "fp64" }

// Counters implements Context.
func (f *F64) Counters() *Counters { return &f.c }

// NewVector implements Context.
func (f *F64) NewVector(n int) Vector { return &f64Vec{d: make([]float64, n), ctx: f} }

// NewOperator implements Context.
func (f *F64) NewOperator(o *stencil.Op7) Operator {
	requireUnitDiagonal(o)
	return &f64Op{op: o, ctx: f}
}

type f64Vec struct {
	d   []float64
	ctx *F64
}

func (v *f64Vec) Len() int             { return len(v.d) }
func (v *f64Vec) At(i int) float64     { return v.d[i] }
func (v *f64Vec) Set(i int, x float64) { v.d[i] = x }
func (v *f64Vec) Float64() []float64 {
	out := make([]float64, len(v.d))
	copy(out, v.d)
	return out
}
func (v *f64Vec) CopyFrom(src Vector) { copy(v.d, src.(*f64Vec).d) }

func (v *f64Vec) AXPY(a float64, x Vector) {
	xd := x.(*f64Vec).d
	for i := range v.d {
		v.d[i] += a * xd[i]
	}
	v.count(len(v.d))
}

func (v *f64Vec) SetAXPY(a float64, x, z Vector) {
	xd, zd := x.(*f64Vec).d, z.(*f64Vec).d
	for i := range v.d {
		v.d[i] = a*xd[i] + zd[i]
	}
	v.count(len(v.d))
}

func (v *f64Vec) XPAY(a float64, x Vector) {
	xd := x.(*f64Vec).d
	for i := range v.d {
		v.d[i] = xd[i] + a*v.d[i]
	}
	v.count(len(v.d))
}

func (v *f64Vec) Dot(x Vector) float64 {
	xd := x.(*f64Vec).d
	var s float64
	for i := range v.d {
		s += v.d[i] * xd[i]
	}
	n := int64(len(v.d))
	c := &v.ctx.c.ByKind[v.ctx.c.kind]
	c.SPMul += n
	c.SPAdd += n
	return s
}

func (v *f64Vec) count(n int) {
	c := &v.ctx.c.ByKind[v.ctx.c.kind]
	c.SPMul += int64(n)
	c.SPAdd += int64(n)
}

type f64Op struct {
	op  *stencil.Op7
	ctx *F64
}

func (o *f64Op) Apply(dst, src Vector) {
	o.op.Apply(dst.(*f64Vec).d, src.(*f64Vec).d)
	countMatvec(&o.ctx.c, o.op.M.N(), false)
}

// countMatvec books the padded-kernel cost of one unit-diagonal 7-point
// SpMV: 6 multiplies and 6 adds per meshpoint (the wafer kernel pads with
// zeros rather than branching, so boundary points cost the same).
func countMatvec(c *Counters, n int, half bool) {
	k := &c.ByKind[KindMatvec]
	if half {
		k.HPMul += 6 * int64(n)
		k.HPAdd += 6 * int64(n)
	} else {
		k.SPMul += 6 * int64(n)
		k.SPAdd += 6 * int64(n)
	}
}

func requireUnitDiagonal(o *stencil.Op7) {
	if !o.IsUnitDiagonal() {
		panic("solver: operator must be diagonally preconditioned (unit diagonal); call Normalize first")
	}
}

// ---------------------------------------------------------------- float32

// F32 is the single-precision context ("Single precision" in Figure 9).
type F32 struct{ c Counters }

// NewF32 returns a single-precision context.
func NewF32() *F32 { return &F32{} }

// Name implements Context.
func (f *F32) Name() string { return "fp32" }

// Counters implements Context.
func (f *F32) Counters() *Counters { return &f.c }

// NewVector implements Context.
func (f *F32) NewVector(n int) Vector { return &f32Vec{d: make([]float32, n), ctx: f} }

// NewOperator implements Context.
func (f *F32) NewOperator(o *stencil.Op7) Operator {
	requireUnitDiagonal(o)
	n := o.M.N()
	p := &f32Op{m: o.M, ctx: f}
	p.xp, p.xm = f32s(o.XP, n), f32s(o.XM, n)
	p.yp, p.ym = f32s(o.YP, n), f32s(o.YM, n)
	p.zp, p.zm = f32s(o.ZP, n), f32s(o.ZM, n)
	return p
}

func f32s(src []float64, n int) []float32 {
	out := make([]float32, n)
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}

type f32Vec struct {
	d   []float32
	ctx *F32
}

func (v *f32Vec) Len() int             { return len(v.d) }
func (v *f32Vec) At(i int) float64     { return float64(v.d[i]) }
func (v *f32Vec) Set(i int, x float64) { v.d[i] = float32(x) }
func (v *f32Vec) Float64() []float64 {
	out := make([]float64, len(v.d))
	for i, x := range v.d {
		out[i] = float64(x)
	}
	return out
}
func (v *f32Vec) CopyFrom(src Vector) { copy(v.d, src.(*f32Vec).d) }

func (v *f32Vec) AXPY(a float64, x Vector) {
	xd := x.(*f32Vec).d
	af := float32(a)
	for i := range v.d {
		v.d[i] += af * xd[i]
	}
	v.count(len(v.d))
}

func (v *f32Vec) SetAXPY(a float64, x, z Vector) {
	xd, zd := x.(*f32Vec).d, z.(*f32Vec).d
	af := float32(a)
	for i := range v.d {
		v.d[i] = af*xd[i] + zd[i]
	}
	v.count(len(v.d))
}

func (v *f32Vec) XPAY(a float64, x Vector) {
	xd := x.(*f32Vec).d
	af := float32(a)
	for i := range v.d {
		v.d[i] = xd[i] + af*v.d[i]
	}
	v.count(len(v.d))
}

func (v *f32Vec) Dot(x Vector) float64 {
	xd := x.(*f32Vec).d
	var s float32
	for i := range v.d {
		s += v.d[i] * xd[i]
	}
	n := int64(len(v.d))
	c := &v.ctx.c.ByKind[v.ctx.c.kind]
	c.SPMul += n
	c.SPAdd += n
	return float64(s)
}

func (v *f32Vec) count(n int) {
	c := &v.ctx.c.ByKind[v.ctx.c.kind]
	c.SPMul += int64(n)
	c.SPAdd += int64(n)
}

type f32Op struct {
	m                      stencil.Mesh
	xp, xm, yp, ym, zp, zm []float32
	ctx                    *F32
}

func (o *f32Op) Apply(dst, src Vector) {
	d, s := dst.(*f32Vec).d, src.(*f32Vec).d
	m := o.m
	nz := m.NZ
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			base := (y*m.NX + x) * nz
			for z := 0; z < nz; z++ {
				i := base + z
				acc := s[i] // unit diagonal
				if x+1 < m.NX {
					acc += o.xp[i] * s[i+nz]
				}
				if x > 0 {
					acc += o.xm[i] * s[i-nz]
				}
				if y+1 < m.NY {
					acc += o.yp[i] * s[i+m.NX*nz]
				}
				if y > 0 {
					acc += o.ym[i] * s[i-m.NX*nz]
				}
				if z+1 < nz {
					acc += o.zp[i] * s[i+1]
				}
				if z > 0 {
					acc += o.zm[i] * s[i-1]
				}
				d[i] = acc
			}
		}
	}
	countMatvec(&o.ctx.c, m.N(), false)
}

// ------------------------------------------------------------- mixed 16/32

// Mixed is the CS-1 arithmetic: fp16 storage, fp16 vector arithmetic
// (SIMD-4 FMAC semantics for AXPY), and the hardware inner-product
// instruction's fp16-multiply/fp32-accumulate for dots. The four
// AllReduce additions per iteration run at 32 bits, as in the paper.
type Mixed struct {
	c Counters
	// chunk > 0 splits every dot into per-chunk float32 partials combined
	// by the exactly rounded sum (NewMixedChunked).
	chunk int
}

// NewMixed returns the mixed-precision context.
func NewMixed() *Mixed { return &Mixed{} }

// NewMixedChunked returns the mixed-precision context with chunked
// dots: each chunk of chunk elements accumulates in float32 with the
// mixed FMAC — exactly one wafer tile's local dot when chunk is the
// per-tile vector length — and the chunk partials are combined by
// cluster.ExactSum32. With chunk equal to the wafer mapping's per-tile
// length (NZ for the 3D mapping), this context's BiCGStab produces
// residual histories bit-identical to the single-wafer (halo),
// rank-parallel and multi-wafer backends.
func NewMixedChunked(chunk int) *Mixed {
	if chunk <= 0 {
		panic("solver: NewMixedChunked needs chunk > 0")
	}
	return &Mixed{chunk: chunk}
}

// Name implements Context.
func (f *Mixed) Name() string {
	if f.chunk > 0 {
		return fmt.Sprintf("mixed16/32/exact%d", f.chunk)
	}
	return "mixed16/32"
}

// Counters implements Context.
func (f *Mixed) Counters() *Counters { return &f.c }

// NewVector implements Context.
func (f *Mixed) NewVector(n int) Vector {
	return &mixedVec{d: make([]fp16.Float16, n), ctx: f}
}

// NewOperator implements Context.
func (f *Mixed) NewOperator(o *stencil.Op7) Operator {
	return &mixedOp{h: stencil.NewOp7Half(o), ctx: f}
}

type mixedVec struct {
	d   []fp16.Float16
	ctx *Mixed
}

func (v *mixedVec) Len() int             { return len(v.d) }
func (v *mixedVec) At(i int) float64     { return v.d[i].Float64() }
func (v *mixedVec) Set(i int, x float64) { v.d[i] = fp16.FromFloat64(x) }
func (v *mixedVec) Float64() []float64   { return fp16.ToFloat64Slice(v.d) }
func (v *mixedVec) CopyFrom(src Vector)  { copy(v.d, src.(*mixedVec).d) }

func (v *mixedVec) AXPY(a float64, x Vector) {
	xd := x.(*mixedVec).d
	ah := fp16.FromFloat64(a)
	for i := range v.d {
		v.d[i] = fp16.FMA(ah, xd[i], v.d[i])
	}
	v.count(len(v.d))
}

func (v *mixedVec) SetAXPY(a float64, x, z Vector) {
	xd, zd := x.(*mixedVec).d, z.(*mixedVec).d
	ah := fp16.FromFloat64(a)
	for i := range v.d {
		v.d[i] = fp16.FMA(ah, xd[i], zd[i])
	}
	v.count(len(v.d))
}

func (v *mixedVec) XPAY(a float64, x Vector) {
	xd := x.(*mixedVec).d
	ah := fp16.FromFloat64(a)
	for i := range v.d {
		v.d[i] = fp16.FMA(ah, v.d[i], xd[i])
	}
	v.count(len(v.d))
}

// Dot uses the mixed FMAC: exact fp16 products, float32 accumulation.
// With a chunked context (NewMixedChunked), accumulation restarts every
// chunk elements and the float32 partials are combined exactly — the
// wafer backends' per-tile-dot + exact-combine semantics.
func (v *mixedVec) Dot(x Vector) float64 {
	xd := x.(*mixedVec).d
	n := int64(len(v.d))
	c := &v.ctx.c.ByKind[v.ctx.c.kind]
	c.HPMul += n // 16-bit multiplies
	c.SPAdd += n // 32-bit accumulation
	if ch := v.ctx.chunk; ch > 0 {
		partials := make([]float32, 0, (len(v.d)+ch-1)/ch)
		for base := 0; base < len(v.d); base += ch {
			end := base + ch
			if end > len(v.d) {
				end = len(v.d)
			}
			var acc float32
			for i := base; i < end; i++ {
				acc = fp16.MixedFMAC(acc, v.d[i], xd[i])
			}
			partials = append(partials, acc)
		}
		return cluster.ExactSum32(partials)
	}
	var acc float32
	for i := range v.d {
		acc = fp16.MixedFMAC(acc, v.d[i], xd[i])
	}
	return float64(acc)
}

func (v *mixedVec) count(n int) {
	c := &v.ctx.c.ByKind[v.ctx.c.kind]
	c.HPMul += int64(n)
	c.HPAdd += int64(n)
}

type mixedOp struct {
	h   *stencil.Op7Half
	ctx *Mixed
}

func (o *mixedOp) Apply(dst, src Vector) {
	o.h.Apply(dst.(*mixedVec).d, src.(*mixedVec).d)
	countMatvec(&o.ctx.c, o.h.M.N(), true)
}

// Norm2 returns the Euclidean norm of a context vector, computed in
// float64 for diagnostics.
func Norm2(v Vector) float64 {
	var s float64
	for i := 0; i < v.Len(); i++ {
		x := v.At(i)
		s += x * x
	}
	return math.Sqrt(s)
}
