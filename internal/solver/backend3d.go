package solver

import (
	"fmt"

	"repro/internal/stencil"
)

// Backend3D solves A·x = b for a unit-diagonal 7-point operator on a 3D
// mesh — the 3D counterpart of Backend2D, and the seam the execution
// substrates plug into: HostBackend3D below runs the generic BiCGStab
// in a chosen precision context in-process, and
// internal/multiwafer.Backend runs the mixed-precision solve across a
// grid of cycle-simulated wafers. core.Solve routes its backends
// through this interface, so adding an execution substrate means
// implementing it (see docs/ARCHITECTURE.md, "adding a backend").
//
// x0 is the initial guess; backends may require x0 = 0 (the wafer
// solvers start from zero, as the paper's does). The returned Stats
// carry the iterative residual history for convergence comparisons
// across backends.
type Backend3D interface {
	Name() string
	Solve3D(op *stencil.Op7, b, x0 []float64, opts Options) ([]float64, Stats, error)
}

// HostBackend3D is the in-process reference backend over a precision
// context; the zero value solves in float64.
type HostBackend3D struct {
	// Context selects the arithmetic; nil means NewF64().
	Context Context
}

// Name implements Backend3D.
func (h HostBackend3D) Name() string {
	if h.Context == nil {
		return "host/fp64"
	}
	return "host/" + h.Context.Name()
}

// Solve3D implements Backend3D with the generic BiCGStab.
func (h HostBackend3D) Solve3D(op *stencil.Op7, b, x0 []float64, opts Options) ([]float64, Stats, error) {
	if err := opts.RejectCheckpoint(h.Name()); err != nil {
		return nil, Stats{}, err
	}
	ctx := h.Context
	if ctx == nil {
		ctx = NewF64()
	}
	n := op.M.N()
	if len(b) != n || len(x0) != n {
		return nil, Stats{}, fmt.Errorf("solver: system size mismatch: mesh %d, b %d, x0 %d", n, len(b), len(x0))
	}
	a := ctx.NewOperator(op)
	bv := ctx.NewVector(n)
	xv := ctx.NewVector(n)
	for i := range b {
		bv.Set(i, b[i])
		xv.Set(i, x0[i])
	}
	st, err := BiCGStab(ctx, a, bv, xv, opts)
	if err != nil {
		return nil, st, err
	}
	return xv.Float64(), st, nil
}
