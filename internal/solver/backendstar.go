package solver

import (
	"fmt"

	"repro/internal/stencil"
)

// BackendStar solves A·x = b for a unit-diagonal star operator of
// arbitrary per-axis widths on a 3D mesh — the seam the wide-stencil
// workloads (the 25-point seismic stencil, the implicit heat steps)
// plug into. It generalizes Backend3D, whose 7-point operator is the
// width-1 star: HostBackendStar below runs float64 BiCGStab
// in-process, and internal/kernels.WaferStarBackend runs the same
// algorithm on the cycle-simulated wafer through a stencil-compiled
// (internal/stencilc) relay-exchange SpMV.
//
// x0 is the initial guess; backends may require x0 = 0 (the wafer
// solver starts from zero, as the paper's does). The returned Stats
// carry the iterative residual history for convergence comparisons
// across backends.
type BackendStar interface {
	Name() string
	SolveStar(op *stencil.OpStar, b, x0 []float64, opts Options) ([]float64, Stats, error)
}

// HostBackendStar is the in-process float64 reference backend.
type HostBackendStar struct{}

// Name implements BackendStar.
func (HostBackendStar) Name() string { return "host" }

// SolveStar implements BackendStar with the generic BiCGStab over a
// float64 star operator.
func (HostBackendStar) SolveStar(op *stencil.OpStar, b, x0 []float64, opts Options) ([]float64, Stats, error) {
	if err := opts.RejectCheckpoint("host"); err != nil {
		return nil, Stats{}, err
	}
	ctx := NewF64()
	a := ctx.NewOperatorStar(op)
	n := op.M.N()
	if len(b) != n || len(x0) != n {
		return nil, Stats{}, fmt.Errorf("solver: system size mismatch: mesh %d, b %d, x0 %d", n, len(b), len(x0))
	}
	bv := ctx.NewVector(n)
	xv := ctx.NewVector(n)
	for i := range b {
		bv.Set(i, b[i])
		xv.Set(i, x0[i])
	}
	st, err := BiCGStab(ctx, a, bv, xv, opts)
	if err != nil {
		return nil, st, err
	}
	return xv.Float64(), st, nil
}

// NewOperatorStar adapts a unit-diagonal star operator to this context.
func (f *F64) NewOperatorStar(o *stencil.OpStar) Operator {
	if !o.IsUnitDiagonal() {
		panic("solver: star operator must be diagonally preconditioned (unit diagonal); call Normalize first")
	}
	return &f64OpStar{op: o, ctx: f}
}

type f64OpStar struct {
	op  *stencil.OpStar
	ctx *F64
}

func (o *f64OpStar) Apply(dst, src Vector) {
	o.op.Apply(dst.(*f64Vec).d, src.(*f64Vec).d)
	// Padded-kernel accounting: one multiply-add per off-diagonal point
	// — 2(Wx+Wy+Wz) per meshpoint (the unit diagonal costs no multiply).
	w := o.op.W
	pts := int64(2 * (w[0] + w[1] + w[2]))
	c := &o.ctx.c.ByKind[KindMatvec]
	n := int64(o.op.M.N())
	c.SPMul += pts * n
	c.SPAdd += pts * n
}
