package solver

import "math"

// BiCGStabFused is the communication-reducing variant the paper mentions
// but does not use (§IV-3): algebraically identical to BiCGStab, but the
// (q,y) and (y,y) inner products are computed in a single fused sweep so
// that a distributed implementation can combine their reductions into
// one AllReduce wave — three synchronization points per iteration
// instead of four. On the wafer model this saves about one fabric
// diameter per iteration (perfmodel.ReductionHidingSavings).
//
// The recurrence and rounding behaviour are unchanged, so its history
// matches BiCGStab's except for dot-product evaluation order.
func BiCGStabFused(ctx Context, a Operator, b, x Vector, opts Options) (Stats, error) {
	n := b.Len()
	c := ctx.Counters()

	r0 := ctx.NewVector(n)
	r := ctx.NewVector(n)
	p := ctx.NewVector(n)
	s := ctx.NewVector(n)
	q := ctx.NewVector(n)
	y := ctx.NewVector(n)

	c.SetKind(KindMatvec)
	a.Apply(s, x)
	c.SetKind(KindAxpy)
	r.SetAXPY(-1, s, b)
	r0.CopyFrom(r)
	p.CopyFrom(r)

	c.SetKind(KindDot)
	bnorm := math.Sqrt(b.Dot(b))
	if bnorm == 0 {
		return Stats{}, ErrZeroRHS
	}
	rho := r0.Dot(r)
	c.SetKind(KindOther)

	st := Stats{}
	for it := 0; it < opts.maxIter(); it++ {
		st.Iterations = it + 1
		c.SetKind(KindMatvec)
		a.Apply(s, p)
		c.SetKind(KindDot)
		r0s := r0.Dot(s)
		if r0s == 0 {
			st.Breakdown = "r0·Ap = 0"
			return st, nil
		}
		alpha := rho / r0s
		c.SetKind(KindAxpy)
		q.SetAXPY(-alpha, s, r)
		c.SetKind(KindMatvec)
		a.Apply(y, q)

		// Fused sweep: both reductions from one pass over q and y. The
		// per-element arithmetic is identical to two separate dots.
		c.SetKind(KindDot)
		qy := q.Dot(y)
		yy := y.Dot(y)
		if yy == 0 {
			c.SetKind(KindAxpy)
			x.AXPY(alpha, p)
			r.CopyFrom(q)
			st.Breakdown = "y·y = 0"
			return st, nil
		}
		omega := qy / yy
		c.SetKind(KindAxpy)
		x.AXPY(alpha, p)
		x.AXPY(omega, q)
		r.SetAXPY(-omega, y, q)

		rel := Norm2(r) / bnorm
		st.FinalResidual = rel
		if opts.RecordHistory {
			st.History = append(st.History, rel)
		}
		if opts.TrueResidual != nil {
			st.TrueHistory = append(st.TrueHistory, opts.TrueResidual(x))
		}
		if opts.Tol > 0 && rel <= opts.Tol {
			st.Converged = true
			return st, nil
		}
		c.SetKind(KindDot)
		rr := r0.Dot(r)
		if rho == 0 || omega == 0 {
			st.Breakdown = "rho or omega = 0"
			return st, nil
		}
		beta := (alpha / omega) * (rr / rho)
		rho = rr
		c.SetKind(KindAxpy)
		p.AXPY(-omega, s)
		p.XPAY(beta, r)
		c.SetKind(KindOther)
	}
	st.Converged = opts.Tol > 0 && st.FinalResidual <= opts.Tol
	return st, nil
}
