package mfix

import (
	"fmt"
	"math"

	"repro/internal/solver"
	"repro/internal/stencil"
)

// Cavity is a steady, incompressible, single-phase lid-driven cavity
// solved with the SIMPLE algorithm (Algorithm 2 of the paper) on a
// staggered MAC grid: u on x-faces, v on y-faces, w on z-faces, pressure
// at cell centres. Convection is first-order upwind (the scheme Table II
// budgets); the momentum systems are solved with BiCGStab limited to 5
// iterations and the pressure correction to 20, the limits the paper
// states for MFIX. The lid is the y-top wall moving with unit velocity
// in +x; all other walls are no-slip.
type Cavity struct {
	N  int     // cells per side
	Re float64 // Reynolds number (lid speed and cavity edge are 1)

	AlphaU, AlphaP float64 // under-relaxation factors
	MomentumIters  int
	PressureIters  int

	h  float64
	mu float64
	// vel[a] holds the axis-a face velocities; dims[a] are its grid
	// extents (N+1 along the axis, N across).
	vel  [3][]float64
	dims [3][3]int
	d    [3][]float64 // pressure-correction coefficients per face
	p    []float64
}

// NewCavity allocates an n³ cavity with the paper's solver limits.
func NewCavity(n int, re float64) *Cavity {
	c := &Cavity{
		N: n, Re: re,
		AlphaU: 0.7, AlphaP: 0.3,
		MomentumIters: 5, PressureIters: 20,
		h: 1 / float64(n), mu: 1 / re,
	}
	for a := 0; a < 3; a++ {
		c.dims[a] = [3]int{n, n, n}
		c.dims[a][a] = n + 1
		size := c.dims[a][0] * c.dims[a][1] * c.dims[a][2]
		c.vel[a] = make([]float64, size)
		c.d[a] = make([]float64, size)
	}
	c.p = make([]float64, n*n*n)
	return c
}

// fidx flattens a face index for axis a.
func (c *Cavity) fidx(a int, q [3]int) int {
	d := c.dims[a]
	return (q[2]*d[1]+q[1])*d[0] + q[0]
}

// V returns the axis-a face velocity at q.
func (c *Cavity) V(a int, i, j, k int) float64 { return c.vel[a][c.fidx(a, [3]int{i, j, k})] }

// cidx flattens a cell index with the same ordering stencil.Mesh uses
// ((y·NX + x)·NZ + z), so cell arrays align with the Op7 systems built
// over the cell mesh.
func (c *Cavity) cidx(i, j, k int) int { return (j*c.N+i)*c.N + k }

// P returns the cell pressure.
func (c *Cavity) P(i, j, k int) float64 { return c.p[c.cidx(i, j, k)] }

// Residuals of one SIMPLE iteration.
type Residuals struct {
	Mass     float64 // ‖mass imbalance‖∞ before the correction
	Momentum float64 // relative change of the velocity fields
}

// Step performs one SIMPLE iteration (Algorithm 2 lines 3–10).
func (c *Cavity) Step() (Residuals, error) {
	var prev [3][]float64
	for a := 0; a < 3; a++ {
		prev[a] = append([]float64(nil), c.vel[a]...)
	}
	for a := 0; a < 3; a++ {
		if err := c.solveMomentum(a); err != nil {
			return Residuals{}, fmt.Errorf("mfix: momentum axis %d: %w", a, err)
		}
	}
	mass, err := c.pressureCorrection()
	if err != nil {
		return Residuals{}, fmt.Errorf("mfix: continuity: %w", err)
	}
	var dd, nn float64
	for a := 0; a < 3; a++ {
		for i := range c.vel[a] {
			df := c.vel[a][i] - prev[a][i]
			dd += df * df
			nn += c.vel[a][i] * c.vel[a][i]
		}
	}
	return Residuals{Mass: mass, Momentum: math.Sqrt(dd / (nn + 1e-30))}, nil
}

// Run performs iters SIMPLE iterations.
func (c *Cavity) Run(iters int) ([]Residuals, error) {
	out := make([]Residuals, 0, iters)
	for i := 0; i < iters; i++ {
		r, err := c.Step()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// unit returns the axis-t unit index offset.
func unit(t int) [3]int {
	var e [3]int
	e[t] = 1
	return e
}

func addIdx(a, b [3]int, s int) [3]int {
	return [3]int{a[0] + s*b[0], a[1] + s*b[1], a[2] + s*b[2]}
}

// solveMomentum assembles and partially solves the axis-a momentum
// system over the interior axis-a faces. First-order upwind convection,
// central diffusion, half-cell wall conductance, pressure gradient
// source, and implicit under-relaxation.
func (c *Cavity) solveMomentum(a int) error {
	n := c.N
	area := c.h * c.h
	dDiff := c.mu * c.h // μ·A / h
	ea := unit(a)

	// Unknowns: axis-a index 1..n-1, transverse 0..n-1.
	mesh := stencil.Mesh{NX: n, NY: n, NZ: n}
	switch a {
	case 0:
		mesh.NX = n - 1
	case 1:
		mesh.NY = n - 1
	default:
		mesh.NZ = n - 1
	}
	op := stencil.NewOp7(mesh)
	b := make([]float64, mesh.N())
	x0 := make([]float64, mesh.N())

	coefOf := func(t, sign int) *[]float64 {
		switch {
		case t == 0 && sign > 0:
			return &op.XP
		case t == 0:
			return &op.XM
		case t == 1 && sign > 0:
			return &op.YP
		case t == 1:
			return &op.YM
		case sign > 0:
			return &op.ZP
		default:
			return &op.ZM
		}
	}

	var q [3]int
	forEachUnknown(a, n, &q, func(mi [3]int) {
		m := mesh.Index(mi[0], mi[1], mi[2])
		var sumA, netF, rhs float64
		for t := 0; t < 3; t++ {
			et := unit(t)
			var fPlus, fMinus float64
			if t == a {
				fPlus = area * 0.5 * (c.vel[a][c.fidx(a, addIdx(q, ea, 1))] + c.vel[a][c.fidx(a, q)])
				fMinus = area * 0.5 * (c.vel[a][c.fidx(a, q)] + c.vel[a][c.fidx(a, addIdx(q, ea, -1))])
			} else {
				pp := addIdx(q, et, 1)
				fPlus = area * 0.5 * (c.vel[t][c.fidx(t, pp)] + c.vel[t][c.fidx(t, addIdx(pp, ea, -1))])
				fMinus = area * 0.5 * (c.vel[t][c.fidx(t, q)] + c.vel[t][c.fidx(t, addIdx(q, ea, -1))])
			}
			netF += fPlus - fMinus
			aPlus := dDiff + math.Max(-fPlus, 0)
			aMinus := dDiff + math.Max(fMinus, 0)

			// Plus-side neighbour.
			hiBound := n - 1
			if q[t]+1 > hiBound || (t == a && q[t]+1 > n-1) {
				// Beyond the last unknown: either a fixed boundary face
				// (t == a) or a wall (t != a).
				if t == a {
					rhs += aPlus * 0 // boundary face velocity is zero
					sumA += aPlus
				} else {
					aPlus += dDiff // half-cell wall conductance: 2·μA/h total
					bval := 0.0
					if a == 0 && t == 1 {
						bval = 1.0 // the moving lid (+y wall, u component)
					}
					rhs += aPlus * bval
					sumA += aPlus
				}
			} else {
				(*coefOf(t, +1))[m] = -aPlus
				sumA += aPlus
			}
			// Minus-side neighbour.
			loBound := 0
			if t == a {
				loBound = 1
			}
			if q[t]-1 < loBound {
				if t == a {
					sumA += aMinus // boundary face, velocity zero
				} else {
					aMinus += dDiff
					sumA += aMinus // stationary wall
				}
			} else {
				(*coefOf(t, -1))[m] = -aMinus
				sumA += aMinus
			}
		}
		// Pressure gradient between the two adjacent cells.
		cm := addIdx(q, ea, -1)
		rhs += (c.p[c.cidx(cm[0], cm[1], cm[2])] - c.p[c.cidx(q[0], q[1], q[2])]) * area

		aP := (sumA + netF) / c.AlphaU
		rhs += (1 - c.AlphaU) * aP * c.vel[a][c.fidx(a, q)]
		op.D[m] = aP
		b[m] = rhs
		x0[m] = c.vel[a][c.fidx(a, q)]
		c.d[a][c.fidx(a, q)] = area / aP
	})

	sol, err := c.solveSystem(op, b, x0, c.MomentumIters)
	if err != nil {
		return err
	}
	forEachUnknown(a, n, &q, func(mi [3]int) {
		c.vel[a][c.fidx(a, q)] = sol[mesh.Index(mi[0], mi[1], mi[2])]
	})
	return nil
}

// forEachUnknown visits every interior axis-a face; q receives the face
// index and the callback gets the zero-based mesh index.
func forEachUnknown(a, n int, q *[3]int, fn func(mi [3]int)) {
	lo := [3]int{0, 0, 0}
	hi := [3]int{n, n, n} // exclusive
	lo[a] = 1
	for k := lo[2]; k < hi[2]; k++ {
		for j := lo[1]; j < hi[1]; j++ {
			for i := lo[0]; i < hi[0]; i++ {
				*q = [3]int{i, j, k}
				mi := *q
				mi[a]-- // mesh is zero-based along the unknown axis
				fn(mi)
			}
		}
	}
}

// pressureCorrection assembles the continuity (pressure-correction)
// system, solves it, and corrects velocities and pressure. It returns
// the pre-correction mass imbalance (∞-norm).
func (c *Cavity) pressureCorrection() (float64, error) {
	n := c.N
	area := c.h * c.h
	mesh := stencil.Mesh{NX: n, NY: n, NZ: n}
	op := stencil.NewOp7(mesh)
	b := make([]float64, mesh.N())
	maxImb := 0.0

	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				m := c.cidx(i, j, k)
				q := [3]int{i, j, k}
				var sumA float64
				for t := 0; t < 3; t++ {
					et := unit(t)
					plusFace := addIdx(q, et, 1)
					aPlus := area * c.d[t][c.fidx(t, plusFace)] // zero at walls (never set)
					aMinus := area * c.d[t][c.fidx(t, q)]
					switch t {
					case 0:
						op.XP[m] = -aPlus
						op.XM[m] = -aMinus
					case 1:
						op.YP[m] = -aPlus
						op.YM[m] = -aMinus
					default:
						op.ZP[m] = -aPlus
						op.ZM[m] = -aMinus
					}
					sumA += aPlus + aMinus
					// Mass imbalance: inflow − outflow.
					b[m] += area * (c.vel[t][c.fidx(t, q)] - c.vel[t][c.fidx(t, plusFace)])
				}
				op.D[m] = sumA
				maxImb = math.Max(maxImb, math.Abs(b[m]))
			}
		}
	}
	// The pure-Neumann system is singular: pin the first cell.
	op.D[0] = 1
	op.XP[0], op.XM[0], op.YP[0], op.YM[0], op.ZP[0], op.ZM[0] = 0, 0, 0, 0, 0, 0
	b[0] = 0

	pc, err := c.solveSystem(op, b, make([]float64, mesh.N()), c.PressureIters)
	if err != nil {
		return maxImb, err
	}

	// Correct faces and pressure.
	var q [3]int
	for a := 0; a < 3; a++ {
		forEachUnknown(a, n, &q, func(_ [3]int) {
			cm := addIdx(q, unit(a), -1)
			fi := c.fidx(a, q)
			c.vel[a][fi] += c.d[a][fi] * (pc[c.cidx(cm[0], cm[1], cm[2])] - pc[c.cidx(q[0], q[1], q[2])])
		})
	}
	for i := range c.p {
		c.p[i] += c.AlphaP * pc[i]
	}
	return maxImb, nil
}

// solveSystem normalizes and runs BiCGStab for a bounded iteration count,
// as the paper limits the inner solves.
func (c *Cavity) solveSystem(op *stencil.Op7, b, x0 []float64, iters int) ([]float64, error) {
	norm, diag := op.Normalize()
	sb := stencil.ScaleRHS(b, diag)
	ctx := solver.NewF64()
	a := ctx.NewOperator(norm)
	bv := ctx.NewVector(len(sb))
	xv := ctx.NewVector(len(sb))
	for i := range sb {
		bv.Set(i, sb[i])
		xv.Set(i, x0[i])
	}
	if _, err := solver.BiCGStab(ctx, a, bv, xv, solver.Options{MaxIter: iters, Tol: 1e-12}); err != nil {
		if err == solver.ErrZeroRHS {
			return x0, nil
		}
		return nil, err
	}
	return xv.Float64(), nil
}

// MassResidual recomputes the current ∞-norm mass imbalance.
func (c *Cavity) MassResidual() float64 {
	n := c.N
	area := c.h * c.h
	maxImb := 0.0
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				q := [3]int{i, j, k}
				var imb float64
				for t := 0; t < 3; t++ {
					imb += area * (c.vel[t][c.fidx(t, q)] - c.vel[t][c.fidx(t, addIdx(q, unit(t), 1))])
				}
				maxImb = math.Max(maxImb, math.Abs(imb))
			}
		}
	}
	return maxImb
}

// CenterlineU samples u along the vertical centreline (x = z = 0.5),
// returning one value per cell row from bottom to top — the standard
// cavity validation profile (Ghia et al.).
func (c *Cavity) CenterlineU() []float64 {
	n := c.N
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		out[j] = c.V(0, n/2, j, n/2)
	}
	return out
}
