package mfix

import (
	"fmt"
	"math"

	"repro/internal/solver"
	"repro/internal/stencil"
)

// Cavity2D is the planar lid-driven cavity solved with the SIMPLE
// algorithm on a staggered MAC grid: u on x-faces, v on y-faces,
// pressure at cell centres. It is the 3D Cavity's 2D counterpart, with
// one structural difference: every linear solve goes through a
// pluggable solver.Backend2D, so the pressure-correction system — the
// dominant solve, 20 BiCGStab iterations per SIMPLE sweep in the
// paper's budget — can execute on the cycle-simulated wafer through the
// §IV-2 block-halo mapping (kernels.Wafer2DBackend) while the momentum
// systems (whose (n−1)×n meshes do not tile the fabric) stay on the
// host backend. Convection is first-order upwind, the scheme Table II
// budgets; solver limits default to the paper's 5 momentum / 20
// pressure iterations.
//
// With the same backend the evolution is deterministic, and with the
// wafer backend it is bit-identical across simulation engines — the
// residual-history equivalence tests lean on this.
type Cavity2D struct {
	N  int     // cells per side
	Re float64 // Reynolds number (lid speed and cavity edge are 1)

	AlphaU, AlphaP float64 // under-relaxation factors
	MomentumIters  int
	PressureIters  int

	// Momentum and Pressure select the linear-solve backends; both
	// default to the in-process float64 host backend.
	Momentum solver.Backend2D
	Pressure solver.Backend2D

	// RecordPressureHistory appends each pressure solve's residual
	// history to PressureResiduals (cross-backend and cross-engine
	// comparisons).
	RecordPressureHistory bool
	PressureResiduals     [][]float64

	h  float64
	mu float64
	// vel[a] holds the axis-a face velocities; dims[a] are its grid
	// extents (N+1 along the axis, N across).
	vel  [2][]float64
	dims [2][2]int
	d    [2][]float64 // pressure-correction coefficients per face
	p    []float64
}

// NewCavity2D allocates an n² cavity with the paper's solver limits and
// host backends.
func NewCavity2D(n int, re float64) *Cavity2D {
	c := &Cavity2D{
		N: n, Re: re,
		AlphaU: 0.7, AlphaP: 0.3,
		MomentumIters: 5, PressureIters: 20,
		Momentum: solver.HostBackend2D{}, Pressure: solver.HostBackend2D{},
		h: 1 / float64(n), mu: 1 / re,
	}
	for a := 0; a < 2; a++ {
		c.dims[a] = [2]int{n, n}
		c.dims[a][a] = n + 1
		size := c.dims[a][0] * c.dims[a][1]
		c.vel[a] = make([]float64, size)
		c.d[a] = make([]float64, size)
	}
	c.p = make([]float64, n*n)
	return c
}

// fidx flattens a face index for axis a.
func (c *Cavity2D) fidx(a int, q [2]int) int { return q[1]*c.dims[a][0] + q[0] }

// V returns the axis-a face velocity at (i, j).
func (c *Cavity2D) V(a, i, j int) float64 { return c.vel[a][c.fidx(a, [2]int{i, j})] }

// cidx flattens a cell index, row-major like stencil.Mesh2D.
func (c *Cavity2D) cidx(i, j int) int { return j*c.N + i }

// P returns the cell pressure.
func (c *Cavity2D) P(i, j int) float64 { return c.p[c.cidx(i, j)] }

// unit2 returns the axis-t unit index offset.
func unit2(t int) [2]int {
	var e [2]int
	e[t] = 1
	return e
}

func addIdx2(a, b [2]int, s int) [2]int {
	return [2]int{a[0] + s*b[0], a[1] + s*b[1]}
}

// Step performs one SIMPLE iteration.
func (c *Cavity2D) Step() (Residuals, error) {
	var prev [2][]float64
	for a := 0; a < 2; a++ {
		prev[a] = append([]float64(nil), c.vel[a]...)
	}
	for a := 0; a < 2; a++ {
		if err := c.solveMomentum(a); err != nil {
			return Residuals{}, fmt.Errorf("mfix: 2D momentum axis %d: %w", a, err)
		}
	}
	mass, err := c.pressureCorrection()
	if err != nil {
		return Residuals{}, fmt.Errorf("mfix: 2D continuity: %w", err)
	}
	var dd, nn float64
	for a := 0; a < 2; a++ {
		for i := range c.vel[a] {
			df := c.vel[a][i] - prev[a][i]
			dd += df * df
			nn += c.vel[a][i] * c.vel[a][i]
		}
	}
	return Residuals{Mass: mass, Momentum: math.Sqrt(dd / (nn + 1e-30))}, nil
}

// Run performs iters SIMPLE iterations.
func (c *Cavity2D) Run(iters int) ([]Residuals, error) {
	out := make([]Residuals, 0, iters)
	for i := 0; i < iters; i++ {
		r, err := c.Step()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// coef9 returns the 9-point coefficient slice for the 2D axis-t
// neighbour in the given direction (corner diagonals stay zero: the
// discretization is 5-point, embedded in the Op9 the backends consume).
func coef9(op *stencil.Op9, t, sign int) []float64 {
	switch {
	case t == 0 && sign > 0:
		return op.C[5] // +x
	case t == 0:
		return op.C[3] // -x
	case sign > 0:
		return op.C[7] // +y
	default:
		return op.C[1] // -y
	}
}

// solveMomentum assembles and partially solves the axis-a momentum
// system over the interior axis-a faces: first-order upwind convection,
// central diffusion, half-cell wall conductance, pressure-gradient
// source, and implicit under-relaxation — the 2D restriction of the 3D
// assembly.
func (c *Cavity2D) solveMomentum(a int) error {
	n := c.N
	area := c.h   // face length in 2D
	dDiff := c.mu // μ·A/h with A = h
	ea := unit2(a)

	mesh := stencil.Mesh2D{NX: n, NY: n}
	if a == 0 {
		mesh.NX = n - 1
	} else {
		mesh.NY = n - 1
	}
	op := stencil.NewOp9(mesh)
	b := make([]float64, mesh.N())
	x0 := make([]float64, mesh.N())

	var q [2]int
	c.forEachUnknown(a, &q, func(mi [2]int) {
		m := mesh.Index(mi[0], mi[1])
		var sumA, netF, rhs float64
		for t := 0; t < 2; t++ {
			et := unit2(t)
			var fPlus, fMinus float64
			if t == a {
				fPlus = area * 0.5 * (c.vel[a][c.fidx(a, addIdx2(q, ea, 1))] + c.vel[a][c.fidx(a, q)])
				fMinus = area * 0.5 * (c.vel[a][c.fidx(a, q)] + c.vel[a][c.fidx(a, addIdx2(q, ea, -1))])
			} else {
				pp := addIdx2(q, et, 1)
				fPlus = area * 0.5 * (c.vel[t][c.fidx(t, pp)] + c.vel[t][c.fidx(t, addIdx2(pp, ea, -1))])
				fMinus = area * 0.5 * (c.vel[t][c.fidx(t, q)] + c.vel[t][c.fidx(t, addIdx2(q, ea, -1))])
			}
			netF += fPlus - fMinus
			aPlus := dDiff + math.Max(-fPlus, 0)
			aMinus := dDiff + math.Max(fMinus, 0)

			// Plus-side neighbour.
			if q[t]+1 > n-1 {
				if t == a {
					sumA += aPlus // fixed boundary face, velocity zero
				} else {
					aPlus += dDiff // half-cell wall conductance
					bval := 0.0
					if a == 0 && t == 1 {
						bval = 1.0 // the moving lid (+y wall, u component)
					}
					rhs += aPlus * bval
					sumA += aPlus
				}
			} else {
				coef9(op, t, +1)[m] = -aPlus
				sumA += aPlus
			}
			// Minus-side neighbour.
			loBound := 0
			if t == a {
				loBound = 1
			}
			if q[t]-1 < loBound {
				if t == a {
					sumA += aMinus // boundary face, velocity zero
				} else {
					aMinus += dDiff
					sumA += aMinus // stationary wall
				}
			} else {
				coef9(op, t, -1)[m] = -aMinus
				sumA += aMinus
			}
		}
		// Pressure gradient between the two adjacent cells.
		cm := addIdx2(q, ea, -1)
		rhs += (c.p[c.cidx(cm[0], cm[1])] - c.p[c.cidx(q[0], q[1])]) * area

		aP := (sumA + netF) / c.AlphaU
		rhs += (1 - c.AlphaU) * aP * c.vel[a][c.fidx(a, q)]
		op.C[4][m] = aP
		b[m] = rhs
		x0[m] = c.vel[a][c.fidx(a, q)]
		c.d[a][c.fidx(a, q)] = area / aP
	})

	sol, _, err := c.solve(c.Momentum, op, b, x0, c.MomentumIters)
	if err != nil {
		return err
	}
	c.forEachUnknown(a, &q, func(mi [2]int) {
		c.vel[a][c.fidx(a, q)] = sol[mesh.Index(mi[0], mi[1])]
	})
	return nil
}

// forEachUnknown visits every interior axis-a face; q receives the face
// index and the callback gets the zero-based mesh index.
func (c *Cavity2D) forEachUnknown(a int, q *[2]int, fn func(mi [2]int)) {
	n := c.N
	lo := [2]int{0, 0}
	hi := [2]int{n, n} // exclusive
	lo[a] = 1
	for j := lo[1]; j < hi[1]; j++ {
		for i := lo[0]; i < hi[0]; i++ {
			*q = [2]int{i, j}
			mi := *q
			mi[a]-- // mesh is zero-based along the unknown axis
			fn(mi)
		}
	}
}

// pressureCorrection assembles the continuity (pressure-correction)
// system on the n×n cell mesh — the system the wafer backend solves —
// corrects velocities and pressure, and returns the pre-correction mass
// imbalance (∞-norm).
func (c *Cavity2D) pressureCorrection() (float64, error) {
	n := c.N
	area := c.h
	mesh := stencil.Mesh2D{NX: n, NY: n}
	op := stencil.NewOp9(mesh)
	b := make([]float64, mesh.N())
	maxImb := 0.0

	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			m := c.cidx(i, j)
			q := [2]int{i, j}
			var sumA float64
			for t := 0; t < 2; t++ {
				et := unit2(t)
				plusFace := addIdx2(q, et, 1)
				aPlus := area * c.d[t][c.fidx(t, plusFace)] // zero at walls (never set)
				aMinus := area * c.d[t][c.fidx(t, q)]
				coef9(op, t, +1)[m] = -aPlus
				coef9(op, t, -1)[m] = -aMinus
				sumA += aPlus + aMinus
				// Mass imbalance: inflow − outflow.
				b[m] += area * (c.vel[t][c.fidx(t, q)] - c.vel[t][c.fidx(t, plusFace)])
			}
			op.C[4][m] = sumA
			maxImb = math.Max(maxImb, math.Abs(b[m]))
		}
	}
	// The pure-Neumann system is singular: pin the first cell.
	op.C[4][0] = 1
	for k := range op.C {
		if k != 4 {
			op.C[k][0] = 0
		}
	}
	b[0] = 0

	pc, stats, err := c.solve(c.Pressure, op, b, make([]float64, mesh.N()), c.PressureIters)
	if err != nil {
		return maxImb, err
	}
	if c.RecordPressureHistory {
		c.PressureResiduals = append(c.PressureResiduals, stats.History)
	}

	// Correct faces and pressure.
	var q [2]int
	for a := 0; a < 2; a++ {
		c.forEachUnknown(a, &q, func(_ [2]int) {
			cm := addIdx2(q, unit2(a), -1)
			fi := c.fidx(a, q)
			c.vel[a][fi] += c.d[a][fi] * (pc[c.cidx(cm[0], cm[1])] - pc[c.cidx(q[0], q[1])])
		})
	}
	for i := range c.p {
		c.p[i] += c.AlphaP * pc[i]
	}
	return maxImb, nil
}

// solve normalizes the system and hands it to the backend for a bounded
// iteration count, as the paper limits the inner solves.
func (c *Cavity2D) solve(be solver.Backend2D, op *stencil.Op9, b, x0 []float64, iters int) ([]float64, solver.Stats, error) {
	norm, diag := op.Normalize9()
	sb := make([]float64, len(b))
	for i := range b {
		sb[i] = b[i] / diag[i]
	}
	sol, stats, err := be.Solve2D(norm, sb, x0, solver.Options{
		MaxIter: iters, Tol: 1e-12, RecordHistory: c.RecordPressureHistory,
	})
	if err != nil {
		if err == solver.ErrZeroRHS {
			return x0, stats, nil
		}
		return nil, stats, err
	}
	return sol, stats, nil
}

// MassResidual recomputes the current ∞-norm mass imbalance.
func (c *Cavity2D) MassResidual() float64 {
	n := c.N
	area := c.h
	maxImb := 0.0
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			q := [2]int{i, j}
			var imb float64
			for t := 0; t < 2; t++ {
				imb += area * (c.vel[t][c.fidx(t, q)] - c.vel[t][c.fidx(t, addIdx2(q, unit2(t), 1))])
			}
			maxImb = math.Max(maxImb, math.Abs(imb))
		}
	}
	return maxImb
}

// CenterlineU samples u along the vertical centreline (x = 0.5),
// returning one value per cell row from bottom to lid — the standard
// cavity validation profile (Ghia et al.), directly comparable to the
// 3D Cavity's mid-plane CenterlineU at matching Re and N.
func (c *Cavity2D) CenterlineU() []float64 {
	n := c.N
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		out[j] = c.V(0, n/2, j)
	}
	return out
}
