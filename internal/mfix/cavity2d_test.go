package mfix

import (
	"math"
	"testing"

	"repro/internal/kernels"
	"repro/internal/wse"
)

func TestCavity2DMassConservation(t *testing.T) {
	c := NewCavity2D(8, 100)
	res, err := c.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res[0].Mass, res[len(res)-1].Mass
	t.Logf("mass imbalance: %.3g -> %.3g", first, last)
	if last > first/3 {
		t.Errorf("mass imbalance did not drop: %g -> %g", first, last)
	}
	if div := c.MassResidual(); div > 5e-4 {
		t.Errorf("post-correction divergence %g too large", div)
	}
}

func TestCavity2DConverges(t *testing.T) {
	c := NewCavity2D(8, 100)
	res, err := c.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	if mom := res[len(res)-1].Momentum; mom > 0.02 {
		t.Errorf("velocity field still changing by %g after 40 SIMPLE iterations", mom)
	}
}

// TestCavity2DCenterlineMatches3DMidplane validates the 2D physics
// against the existing 3D cavity: at matching Re and N the 2D
// centreline u-profile must track the 3D solver's mid-plane profile —
// the flows differ only by the 3D cavity's spanwise confinement, a
// small effect on a coarse grid — and show the standard structure
// (strong positive u under the lid, negative return flow below).
func TestCavity2DCenterlineMatches3DMidplane(t *testing.T) {
	const n, re = 12, 100.0
	c2 := NewCavity2D(n, re)
	if _, err := c2.Run(50); err != nil {
		t.Fatal(err)
	}
	c3 := NewCavity(n, re)
	if _, err := c3.Run(50); err != nil {
		t.Fatal(err)
	}
	p2, p3 := c2.CenterlineU(), c3.CenterlineU()
	if p2[n-1] < 0.5 {
		t.Errorf("2D u under the lid = %g, expected strongly positive", p2[n-1])
	}
	min2 := 0.0
	for _, u := range p2[:n/2] {
		min2 = math.Min(min2, u)
	}
	if min2 > -0.02 || min2 < -0.45 {
		t.Errorf("2D return-flow minimum %g outside the plausible band (-0.45, -0.02)", min2)
	}
	for j := range p2 {
		if d := math.Abs(p2[j] - p3[j]); d > 0.08 {
			t.Errorf("row %d: 2D centreline u %.4f vs 3D mid-plane %.4f (|Δ| = %.3f)", j, p2[j], p3[j], d)
		}
	}
}

// TestCavity2DWaferBackendTracksHost runs the same cavity with the
// pressure solve on the cycle-simulated wafer (fp16 block-halo
// BiCGStab) and on the host (float64): the SIMPLE convergence must
// track closely over the first sweeps — fp16 rounding compounds slowly
// through the outer iteration, it must not change the physics.
func TestCavity2DWaferBackendTracksHost(t *testing.T) {
	const n, b, iters = 8, 2, 6
	mach := wse.New(wse.CS1(n/b, n/b))
	defer mach.Close()
	cw := NewCavity2D(n, 100)
	cw.Pressure = kernels.NewWafer2DBackend(mach, b)
	rw, err := cw.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	ch := NewCavity2D(n, 100)
	rh, err := ch.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rw {
		ratio := rw[i].Mass / rh[i].Mass
		t.Logf("iter %d: wafer mass %.4e, host %.4e (ratio %.3f)", i, rw[i].Mass, rh[i].Mass, ratio)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("iter %d: wafer mass residual %g diverged from host %g", i, rw[i].Mass, rh[i].Mass)
		}
	}
	if rw[iters-1].Mass > rw[0].Mass/3 {
		t.Errorf("wafer-backend mass imbalance did not drop: %g -> %g", rw[0].Mass, rw[iters-1].Mass)
	}
	be := cw.Pressure.(*kernels.Wafer2DBackend)
	if be.Solves != iters || be.Iterations != iters*cw.PressureIters {
		t.Errorf("instrumentation: %d solves / %d iterations, want %d / %d",
			be.Solves, be.Iterations, iters, iters*cw.PressureIters)
	}
	if be.Cycles.Total() == 0 {
		t.Error("no cycles measured on the wafer backend")
	}
}

// TestCavity2DWaferShardedIdentical is the engine-equivalence contract
// at the application level: the full SIMPLE evolution with the wafer
// pressure backend — residuals, per-solve pressure residual histories,
// and the machine's final architectural fingerprint — must be
// bit-identical between the sequential and sharded engines.
func TestCavity2DWaferShardedIdentical(t *testing.T) {
	const n, b, iters = 8, 2, 4
	run := func(workers int) ([]Residuals, [][]float64, uint64, string) {
		cfg := wse.CS1(n/b, n/b)
		cfg.Workers = workers
		mach := wse.New(cfg)
		defer mach.Close()
		c := NewCavity2D(n, 100)
		c.Pressure = kernels.NewWafer2DBackend(mach, b)
		c.RecordPressureHistory = true
		res, err := c.Run(iters)
		if err != nil {
			t.Fatal(err)
		}
		return res, c.PressureResiduals, mach.Fingerprint(), mach.Fab.StepperName()
	}
	ra, ha, fa, ea := run(1)
	rb, hb, fb, eb := run(4)
	if ea == eb {
		t.Fatalf("engine selection broken: both %q", ea)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("SIMPLE residuals diverge at iter %d: seq %+v, %s %+v", i, ra[i], eb, rb[i])
		}
	}
	if len(ha) != len(hb) {
		t.Fatalf("pressure history counts differ: %d vs %d", len(ha), len(hb))
	}
	for s := range ha {
		for k := range ha[s] {
			if ha[s][k] != hb[s][k] {
				t.Fatalf("pressure solve %d residual %d diverges: %g vs %g", s, k, ha[s][k], hb[s][k])
			}
		}
	}
	if fa != fb {
		t.Fatalf("machine fingerprints diverge: seq %#x, %s %#x", fa, eb, fb)
	}
}
