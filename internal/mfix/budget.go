// Package mfix reproduces the paper's CFD study (§VI): the SIMPLE
// pressure-velocity coupling algorithm of the NETL MFIX code, its Table II
// per-meshpoint cycle budget for the steps outside the linear solver, and
// the projected CS-1 performance (80–125 timesteps/s on a 600³ mesh,
// >200× a 16,384-core Joule partition). A functional staggered-grid
// SIMPLE solver for the lid-driven cavity — the problem used for the
// Joule baseline — lives in simple.go.
package mfix

import (
	"repro/internal/cluster"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
)

// OpRange is a [min, max] cycle range.
type OpRange struct{ Min, Max float64 }

// StepBudget is one row of Table II: cycles per meshpoint for a SIMPLE
// step, excluding the solver, grouped into vector merges, floating point
// ops, square roots, divides, and neighbour transport (xᵀ).
type StepBudget struct {
	Step                          string
	Merge, FLOP, Sqrt, Div, Trans OpRange
	Total                         OpRange
}

// Sum returns the straight sum of the component ranges. The published
// Total column differs from the component sums by up to two cycles in the
// minimum (the paper rounds its per-operation cycle estimates); tests
// assert the published totals and the ≤2-cycle discrepancy.
func (s StepBudget) Sum() OpRange {
	return OpRange{
		Min: s.Merge.Min + s.FLOP.Min + s.Sqrt.Min + s.Div.Min + s.Trans.Min,
		Max: s.Merge.Max + s.FLOP.Max + s.Sqrt.Max + s.Div.Max + s.Trans.Max,
	}
}

// TableII returns the paper's Table II, cycles per meshpoint for SIMPLE
// excluding the solver, derived from first-order upwinding of the single
// phase compressible viscous equations.
func TableII() []StepBudget {
	return []StepBudget{
		{Step: "Initialization",
			Merge: OpRange{2, 9}, FLOP: OpRange{35, 47}, Sqrt: OpRange{0, 0},
			Div: OpRange{0, 0}, Trans: OpRange{8, 8}, Total: OpRange{45, 64}},
		{Step: "Momentum",
			Merge: OpRange{25, 153}, FLOP: OpRange{18, 25}, Sqrt: OpRange{13, 13},
			Div: OpRange{15, 16}, Trans: OpRange{6, 6}, Total: OpRange{79, 213}},
		{Step: "Continuity",
			Merge: OpRange{8, 45}, FLOP: OpRange{13, 18}, Sqrt: OpRange{0, 0},
			Div: OpRange{15, 16}, Trans: OpRange{2, 2}, Total: OpRange{37, 81}},
		{Step: "Field Update",
			Merge: OpRange{0, 0}, FLOP: OpRange{3, 5}, Sqrt: OpRange{0, 0},
			Div: OpRange{0, 0}, Trans: OpRange{1, 1}, Total: OpRange{4, 6}},
	}
}

// SimpleParams describes the outer-loop structure of Algorithm 2 as the
// paper budgets it: 5–20 SIMPLE iterations per timestep, the linear
// solver limited to 5 iterations for the three transport (momentum)
// equations and 20 for continuity.
type SimpleParams struct {
	SimpleIters     int
	MomentumSolves  int // one per velocity component
	MomentumIters   int
	ContinuityIters int
}

// PaperSimpleParams is the configuration of the §VI-A projection.
func PaperSimpleParams() SimpleParams {
	return SimpleParams{SimpleIters: 15, MomentumSolves: 3, MomentumIters: 5, ContinuityIters: 20}
}

// SolverItersPerStep returns the BiCGStab iterations one timestep costs.
func (p SimpleParams) SolverItersPerStep() int {
	return p.SimpleIters * (p.MomentumSolves*p.MomentumIters + p.ContinuityIters)
}

// Projection is the modelled CS-1 timestep rate.
type Projection struct {
	// FormationCyclesPerZPoint is the Table II (non-solver) work per
	// z-meshpoint per timestep.
	FormationCyclesPerZPoint OpRange
	// SolverCyclesPerZPoint is the BiCGStab work per z-meshpoint per
	// timestep, from the calibrated wafer model.
	SolverCyclesPerZPoint float64
	// StepSeconds and StepsPerSecond bound the timestep rate.
	StepSeconds    OpRange
	StepsPerSecond OpRange
}

// ProjectCS1 composes Table II with the calibrated BiCGStab model for an
// X×Y×Z problem on the CS-1 (§VI-A: "between 80 and 125 timesteps per
// second" for 600³ and 15 SIMPLE iterations). The solver is charged at
// the measured headline rate — cycles per meshpoint per iteration at the
// §V configuration (Z = 1536) — which is how the paper's estimate
// composes (its 80–125 band brackets exactly Table II's formation range
// plus 525 solver iterations at ~20 cycles/meshpoint).
func ProjectCS1(m perfmodel.IterModel, x, y, z int, sp SimpleParams) Projection {
	w := perfmodel.CS1()
	rows := TableII()
	var form OpRange
	// Initialization once per step; momentum ×3, continuity, field update
	// once per SIMPLE iteration.
	form.Min = rows[0].Total.Min + float64(sp.SimpleIters)*
		(3*rows[1].Total.Min+rows[2].Total.Min+rows[3].Total.Min)
	form.Max = rows[0].Total.Max + float64(sp.SimpleIters)*
		(3*rows[1].Total.Max+rows[2].Total.Max+rows[3].Total.Max)

	headline, _, _ := perfmodel.Headline()
	perPoint := m.IterationCycles(w, headline.Z).Total() / float64(headline.Z)
	solverPerZ := perPoint * float64(sp.SolverItersPerStep())

	stepMin := (form.Min*float64(z) + solverPerZ*float64(z)) / w.ClockHz
	stepMax := (form.Max*float64(z) + solverPerZ*float64(z)) / w.ClockHz
	return Projection{
		FormationCyclesPerZPoint: form,
		SolverCyclesPerZPoint:    solverPerZ,
		StepSeconds:              OpRange{stepMin, stepMax},
		StepsPerSecond:           OpRange{1 / stepMax, 1 / stepMin},
	}
}

// JouleTimestepSeconds estimates one MFIX timestep on the cluster at the
// given core count: the same solver iteration structure charged at the
// cluster's per-iteration time (formation is bandwidth-bound too and
// folded into the same sweeps; the solver dominates).
func JouleTimestepSeconds(cfg cluster.Config, mesh stencil.Mesh, cores int, sp SimpleParams) float64 {
	perIter := cfg.IterationTime(mesh, cores).Total()
	// Formation: Table II charges ~0.3–0.8 solver-iteration equivalents
	// per SIMPLE iteration; charge half an iteration per SIMPLE sweep.
	formation := float64(sp.SimpleIters) * 0.5 * perIter
	return float64(sp.SolverItersPerStep())*perIter + formation
}
