package mfix

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/perfmodel"
)

func TestTableIIPublishedTotals(t *testing.T) {
	rows := TableII()
	wantTotals := map[string]OpRange{
		"Initialization": {45, 64},
		"Momentum":       {79, 213},
		"Continuity":     {37, 81},
		"Field Update":   {4, 6},
	}
	for _, r := range rows {
		want, ok := wantTotals[r.Step]
		if !ok {
			t.Fatalf("unexpected row %q", r.Step)
		}
		if r.Total != want {
			t.Errorf("%s: total %v, published %v", r.Step, r.Total, want)
		}
		// The component sums reproduce the published totals to within the
		// paper's ±2-cycle rounding.
		s := r.Sum()
		if math.Abs(s.Min-r.Total.Min) > 2 || math.Abs(s.Max-r.Total.Max) > 2 {
			t.Errorf("%s: component sum %v vs published total %v", r.Step, s, r.Total)
		}
	}
}

func TestProjectCS1TimestepRate(t *testing.T) {
	// §VI-A: "we expect to achieve between 80 and 125 timesteps per
	// second" for 600³, 15 SIMPLE iterations.
	pr := ProjectCS1(perfmodel.PaperModel(), 600, 600, 600, PaperSimpleParams())
	t.Logf("steps/s: %.0f – %.0f (step %.1f–%.1f ms, solver %.0f cyc/z-pt, formation %.0f–%.0f)",
		pr.StepsPerSecond.Min, pr.StepsPerSecond.Max,
		pr.StepSeconds.Min*1e3, pr.StepSeconds.Max*1e3,
		pr.SolverCyclesPerZPoint, pr.FormationCyclesPerZPoint.Min, pr.FormationCyclesPerZPoint.Max)
	if pr.StepsPerSecond.Min < 70 || pr.StepsPerSecond.Min > 95 {
		t.Errorf("lower bound %.0f steps/s, paper says 80", pr.StepsPerSecond.Min)
	}
	if pr.StepsPerSecond.Max < 110 || pr.StepsPerSecond.Max > 140 {
		t.Errorf("upper bound %.0f steps/s, paper says 125", pr.StepsPerSecond.Max)
	}
}

func TestCS1Vs16KJouleMFIX(t *testing.T) {
	// §VI-A: "above 200 times faster than for MFiX runs on a 16,384-core
	// partition of the NETL Joule cluster."
	sp := PaperSimpleParams()
	joule := JouleTimestepSeconds(cluster.Joule(), cluster.Fig8Mesh, 16384, sp)
	pr := ProjectCS1(perfmodel.PaperModel(), 600, 600, 600, sp)
	mid := (pr.StepSeconds.Min + pr.StepSeconds.Max) / 2
	ratio := joule / mid
	t.Logf("Joule step %.2f s vs CS-1 %.1f ms: %.0f×", joule, mid*1e3, ratio)
	if ratio < 200 {
		t.Errorf("speedup %.0f×, paper says above 200×", ratio)
	}
}

func TestSolverItersPerStep(t *testing.T) {
	sp := PaperSimpleParams()
	// 15 × (3×5 + 20) = 525 solver iterations per timestep.
	if got := sp.SolverItersPerStep(); got != 525 {
		t.Errorf("solver iterations per step = %d, want 525", got)
	}
}

func TestCavityMassConservation(t *testing.T) {
	c := NewCavity(8, 100)
	res, err := c.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res[0].Mass, res[len(res)-1].Mass
	t.Logf("mass imbalance: %.3g -> %.3g", first, last)
	if last > first/3 {
		t.Errorf("mass imbalance did not drop: %g -> %g", first, last)
	}
	// The corrected field should be nearly divergence-free.
	if div := c.MassResidual(); div > 5e-4 {
		t.Errorf("post-correction divergence %g too large", div)
	}
}

func TestCavityConverges(t *testing.T) {
	c := NewCavity(8, 100)
	res, err := c.Run(40)
	if err != nil {
		t.Fatal(err)
	}
	mom := res[len(res)-1].Momentum
	if mom > 0.02 {
		t.Errorf("velocity field still changing by %g after 40 SIMPLE iterations", mom)
	}
}

func TestCavityFlowStructure(t *testing.T) {
	// Physics checks at Re=100 on a coarse grid: the lid drags fluid in
	// +x near the top, and the return flow makes u negative in the lower
	// half of the vertical centreline (Ghia et al. report a minimum of
	// about −0.21 at fine resolution).
	c := NewCavity(10, 100)
	if _, err := c.Run(60); err != nil {
		t.Fatal(err)
	}
	prof := c.CenterlineU()
	top := prof[len(prof)-1]
	if top < 0.1 {
		t.Errorf("u near lid = %g, expected strongly positive", top)
	}
	minU := 0.0
	for _, u := range prof[:len(prof)/2] {
		minU = math.Min(minU, u)
	}
	if minU > -0.02 || minU < -0.45 {
		t.Errorf("return-flow minimum %g outside the plausible band (-0.45, -0.02)", minU)
	}
	// Monotone drag: velocity magnitude increases toward the lid across
	// the top half.
	if prof[len(prof)-1] < prof[len(prof)-2] {
		t.Error("u should increase toward the moving lid")
	}
}

func TestCavitySymmetryInZ(t *testing.T) {
	// The problem is symmetric in z about the midplane, so u must be too.
	c := NewCavity(8, 100)
	if _, err := c.Run(25); err != nil {
		t.Fatal(err)
	}
	n := c.N
	// Finite-precision dot products are not symmetry-preserving, so the
	// mirror match is approximate and drifts slowly with iteration count.
	for j := 0; j < n; j++ {
		for k := 0; k < n/2; k++ {
			a := c.V(0, n/2, j, k)
			b := c.V(0, n/2, j, n-1-k)
			if math.Abs(a-b) > 1e-3 {
				t.Fatalf("z-symmetry broken at j=%d k=%d: %g vs %g", j, k, a, b)
			}
		}
	}
}
