// Package faultinject provides deterministic failure injection for the
// robustness layer: a filesystem seam the service spool routes every
// I/O operation through, a fault plan that makes chosen operations
// fail, tear, or hit ENOSPC, and a crash-point registry that lets chaos
// tests "kill" a worker at a named instant between two durable writes.
//
// Production code always runs with the passthrough OS implementation
// and nil crash registries — the seam costs one interface call per
// spool operation and nothing else. Tests (and the wsesimd
// -inject-spool-faults flag backing scripts/chaos_smoke.sh) install a
// FaultFS with a parsed Plan to prove that no fault sequence can lose a
// job or corrupt a result.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// FS is the filesystem seam: the exact set of operations the service
// spool performs. Implementations must be safe for concurrent use.
type FS interface {
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	ReadFile(name string) ([]byte, error)
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
}

// OS is the passthrough FS production code uses.
var OS FS = osFS{}

type osFS struct{}

func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) ReadFile(name string) ([]byte, error)       { return os.ReadFile(name) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}

// Op classifies an FS operation for rule matching.
type Op string

// Operations.
const (
	OpWrite   Op = "write"
	OpRename  Op = "rename"
	OpRead    Op = "read"
	OpRemove  Op = "remove"
	OpReadDir Op = "readdir"
	OpMkdir   Op = "mkdir"
)

// Mode is what an injected fault does to the operation.
type Mode string

// Modes. Fail rejects the operation without touching the file. Torn
// writes only the first half of the data and then reports success — the
// classic torn write a crash mid-write leaves behind, visible once a
// following rename publishes it. ENOSPC writes half and returns
// syscall.ENOSPC, a full-disk mid-write.
const (
	ModeFail   Mode = "fail"
	ModeTorn   Mode = "torn"
	ModeENOSPC Mode = "enospc"
)

// ErrInjected is the base error injected by ModeFail rules.
var ErrInjected = fmt.Errorf("faultinject: injected fault")

// Rule selects which operations fault and how. A rule matches an
// operation when Op is empty or equal and PathContains is empty or a
// substring of the path. Of the matching operations, the first Skip
// pass through untouched, then Times of them fault (Times < 0 means
// every one from there on).
type Rule struct {
	Op           Op
	PathContains string
	Skip         int
	Times        int
	Mode         Mode

	matched int // matching ops seen so far; guarded by FaultFS.mu
}

// String renders the rule in the Parse format.
func (r *Rule) String() string {
	return fmt.Sprintf("%s:%s:%d:%d:%s", r.Op, r.PathContains, r.Skip, r.Times, r.Mode)
}

// Parse builds a fault plan from a comma-separated list of
// "op:substr:skip:times:mode" rules — the wsesimd -inject-spool-faults
// wire format. Empty op or substr match everything; times -1 means
// "every matching operation after the first skip".
//
//	write::6:3:fail        after 6 spool writes, fail the next 3
//	write:.ckpt:0:1:torn   tear the first checkpoint write
//	rename::10:-1:enospc   every rename past the 10th hits ENOSPC
func Parse(spec string) ([]*Rule, error) {
	var rules []*Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f := strings.Split(part, ":")
		if len(f) != 5 {
			return nil, fmt.Errorf("faultinject: rule %q: want op:substr:skip:times:mode", part)
		}
		op := Op(f[0])
		switch op {
		case "", OpWrite, OpRename, OpRead, OpRemove, OpReadDir, OpMkdir:
		default:
			return nil, fmt.Errorf("faultinject: rule %q: unknown op %q", part, f[0])
		}
		skip, err := strconv.Atoi(f[2])
		if err != nil || skip < 0 {
			return nil, fmt.Errorf("faultinject: rule %q: bad skip %q", part, f[2])
		}
		times, err := strconv.Atoi(f[3])
		if err != nil || times == 0 || times < -1 {
			return nil, fmt.Errorf("faultinject: rule %q: bad times %q (want -1 or >= 1)", part, f[3])
		}
		mode := Mode(f[4])
		switch mode {
		case ModeFail, ModeTorn, ModeENOSPC:
		default:
			return nil, fmt.Errorf("faultinject: rule %q: unknown mode %q", part, f[4])
		}
		rules = append(rules, &Rule{Op: op, PathContains: f[1], Skip: skip, Times: times, Mode: mode})
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faultinject: empty fault spec")
	}
	return rules, nil
}

// FaultFS wraps an FS with a fault plan. Each operation is matched
// against every rule in order; the first rule due to fire decides the
// fault. Safe for concurrent use.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	rules    []*Rule
	injected int64 // total faults fired
}

// NewFaultFS wraps inner (nil means OS) with the given rules.
func NewFaultFS(inner FS, rules ...*Rule) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner, rules: rules}
}

// Injected returns how many faults have fired.
func (f *FaultFS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// decide returns the mode to inject for this operation, or "" to pass
// it through.
func (f *FaultFS) decide(op Op, path string) Mode {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		r.matched++
		n := r.matched - r.Skip // 1-based index into the faulting window
		if n <= 0 {
			continue
		}
		if r.Times >= 0 && n > r.Times {
			continue
		}
		f.injected++
		return r.Mode
	}
	return ""
}

func (f *FaultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	switch f.decide(OpWrite, name) {
	case ModeFail:
		return fmt.Errorf("%w: write %s", ErrInjected, name)
	case ModeTorn:
		return f.inner.WriteFile(name, data[:len(data)/2], perm)
	case ModeENOSPC:
		if err := f.inner.WriteFile(name, data[:len(data)/2], perm); err != nil {
			return err
		}
		return &os.PathError{Op: "write", Path: name, Err: syscall.ENOSPC}
	}
	return f.inner.WriteFile(name, data, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if mode := f.decide(OpRename, newpath); mode != "" {
		if mode == ModeENOSPC {
			return &os.PathError{Op: "rename", Path: newpath, Err: syscall.ENOSPC}
		}
		return fmt.Errorf("%w: rename %s", ErrInjected, newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	switch f.decide(OpRead, name) {
	case ModeFail, ModeENOSPC:
		return nil, fmt.Errorf("%w: read %s", ErrInjected, name)
	case ModeTorn:
		data, err := f.inner.ReadFile(name)
		if err != nil {
			return nil, err
		}
		return data[:len(data)/2], nil
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) Remove(name string) error {
	if f.decide(OpRemove, name) != "" {
		return fmt.Errorf("%w: remove %s", ErrInjected, name)
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if f.decide(OpReadDir, name) != "" {
		return nil, fmt.Errorf("%w: readdir %s", ErrInjected, name)
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if f.decide(OpMkdir, path) != "" {
		return fmt.Errorf("%w: mkdir %s", ErrInjected, path)
	}
	return f.inner.MkdirAll(path, perm)
}

// Crashes is a registry of named crash points. The code under test
// calls Hit at each point; a test arms a point with Arm and, when the
// armed occurrence is reached, Hit reports true exactly once — the
// caller then abandons its work mid-transition, exactly as if the
// process had died there, and the test restarts the system from its
// durable state. A nil *Crashes never fires, so production callers pass
// nil and pay one nil check.
type Crashes struct {
	mu     sync.Mutex
	points map[string]*crashPoint
}

type crashPoint struct {
	countdown int // occurrences to let pass before firing
	fired     chan struct{}
}

// NewCrashes returns an empty registry.
func NewCrashes() *Crashes { return &Crashes{points: make(map[string]*crashPoint)} }

// Arm schedules the point to fire on its n-th Hit (1-based). The
// returned channel closes when it fires.
func (c *Crashes) Arm(point string, n int) <-chan struct{} {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := &crashPoint{countdown: n, fired: make(chan struct{})}
	c.points[point] = p
	return p.fired
}

// Hit reports whether the named point fires now. A nil registry or an
// unarmed point never fires; an armed point fires exactly once.
func (c *Crashes) Hit(point string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.points[point]
	if p == nil || p.countdown == 0 {
		return false
	}
	p.countdown--
	if p.countdown > 0 {
		return false
	}
	close(p.fired)
	return true
}
