package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestFaultFSSkipTimesWindow(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil, &Rule{Op: OpWrite, Skip: 2, Times: 2, Mode: ModeFail})
	data := []byte("0123456789")
	var errs []bool
	for i := 0; i < 6; i++ {
		err := fs.WriteFile(filepath.Join(dir, "f"), data, 0o644)
		errs = append(errs, err != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("write %d: faulted=%v, want %v (skip 2, times 2)", i+1, errs[i], want[i])
		}
	}
	if got := fs.Injected(); got != 2 {
		t.Errorf("Injected() = %d, want 2", got)
	}
}

func TestFaultFSTornWriteTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "record.json")
	fs := NewFaultFS(nil, &Rule{Op: OpWrite, PathContains: "record", Skip: 0, Times: 1, Mode: ModeTorn})
	data := []byte(`{"id":"j000001","state":"done"}`)
	if err := fs.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("torn write must report success (the crash is noticed later): %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data)/2 {
		t.Fatalf("torn write left %d bytes, want %d", len(got), len(data)/2)
	}
	// The window is spent: the next write is whole.
	if err := fs.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); len(got) != len(data) {
		t.Fatalf("second write left %d bytes, want %d", len(got), len(data))
	}
}

func TestFaultFSENOSPC(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil, &Rule{Op: OpWrite, Times: 1, Mode: ModeENOSPC})
	err := fs.WriteFile(filepath.Join(dir, "f"), []byte("0123456789"), 0o644)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if got, _ := os.ReadFile(filepath.Join(dir, "f")); len(got) != 5 {
		t.Fatalf("ENOSPC left %d bytes, want 5 (half written)", len(got))
	}
}

func TestFaultFSPathAndOpFilters(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(nil, &Rule{Op: OpRename, PathContains: ".ckpt", Times: -1, Mode: ModeFail})
	tmp := filepath.Join(dir, "a.tmp")
	if err := fs.WriteFile(tmp, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, "a.json")); err != nil {
		t.Fatalf("non-matching rename faulted: %v", err)
	}
	if err := fs.WriteFile(tmp, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, "a.ckpt")); !errors.Is(err, ErrInjected) {
		t.Fatalf("matching rename err = %v, want ErrInjected", err)
	}
}

func TestParse(t *testing.T) {
	rules, err := Parse("write::6:3:fail, write:.ckpt:0:1:torn,rename::10:-1:enospc")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	if rules[0].Skip != 6 || rules[0].Times != 3 || rules[0].Mode != ModeFail {
		t.Errorf("rule 0 = %v", rules[0])
	}
	if rules[1].PathContains != ".ckpt" || rules[1].Mode != ModeTorn {
		t.Errorf("rule 1 = %v", rules[1])
	}
	if rules[2].Times != -1 || rules[2].Mode != ModeENOSPC {
		t.Errorf("rule 2 = %v", rules[2])
	}

	for _, bad := range []string{
		"", "write::0:fail", "frob::0:1:fail", "write::x:1:fail",
		"write::0:0:fail", "write::0:-2:fail", "write::0:1:explode",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted, want error", bad)
		}
	}
}

func TestCrashes(t *testing.T) {
	var nilC *Crashes
	if nilC.Hit("anything") {
		t.Fatal("nil registry fired")
	}
	c := NewCrashes()
	if c.Hit("unarmed") {
		t.Fatal("unarmed point fired")
	}
	fired := c.Arm("run.before-done", 2)
	if c.Hit("run.before-done") {
		t.Fatal("fired on occurrence 1 of 2")
	}
	select {
	case <-fired:
		t.Fatal("channel closed early")
	default:
	}
	if !c.Hit("run.before-done") {
		t.Fatal("did not fire on occurrence 2 of 2")
	}
	select {
	case <-fired:
	default:
		t.Fatal("channel not closed after firing")
	}
	if c.Hit("run.before-done") {
		t.Fatal("fired twice")
	}
}
