package kernels

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// These goldens pin the wafer programs' observable behaviour — results,
// residual histories, cycle counts and machine fingerprints — to the
// values the hand-written SpMV2DMachine / SpMV3DHalo generators
// produced before they became wrappers over the stencilc compiler. The
// refactor contract is bit-identity: the compiler must emit the same
// routes, memory layout, instruction sequence and thread schedule, so
// every constant below must survive it unchanged. If one of these
// fails after an intentional program change, the change is not a
// refactor — it altered the simulated machine's behaviour.

// fnv1a folds a stream of 64-bit values into a hash.
type fnv1a uint64

func newFNV() fnv1a { return 14695981039346656037 }

func (h *fnv1a) mix(v uint64) {
	const prime = 1099511628211
	x := uint64(*h)
	for i := 0; i < 8; i++ {
		x ^= v & 0xff
		x *= prime
		v >>= 8
	}
	*h = fnv1a(x)
}

func hashHalf(vs []fp16.Float16) uint64 {
	h := newFNV()
	for _, v := range vs {
		h.mix(uint64(v.Bits()))
	}
	return uint64(h)
}

func hashHistory(vs []float64) uint64 {
	h := newFNV()
	for _, v := range vs {
		h.mix(math.Float64bits(v))
	}
	return uint64(h)
}

func randomHalf(n int, rng *rand.Rand) []fp16.Float16 {
	out := make([]fp16.Float16, n)
	for i := range out {
		out[i] = fp16.FromFloat64(rng.Float64()*2 - 1)
	}
	return out
}

func TestSpMV2DMachineGolden(t *testing.T) {
	const (
		wantCycles1 = int64(19)
		wantCycles2 = int64(19)
		wantHash1   = uint64(0x2011b6dd94e3e9d8)
		wantHash2   = uint64(0xedb49be6dda9f39e)
		wantFP      = uint64(0x8b387cb3409f770f)
	)
	m := stencil.Mesh2D{NX: 8, NY: 6}
	op, _ := stencil.Random9(m, 1.5, rand.New(rand.NewSource(3))).Normalize9()
	mach := wse.New(wse.CS1(4, 3))
	defer mach.Close()
	p, err := NewSpMV2DMachine(mach, op, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))

	p.LoadVector(randomHalf(m.N(), rng))
	cycles1, err := p.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	hash1 := hashHalf(p.Result())

	p.LoadVector(randomHalf(m.N(), rng))
	cycles2, err := p.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	hash2 := hashHalf(p.Result())
	fp := mach.Fingerprint()

	t.Logf("golden 2d: cycles1=%d cycles2=%d hash1=%#x hash2=%#x fp=%#x",
		cycles1, cycles2, hash1, hash2, fp)
	if cycles1 != wantCycles1 || cycles2 != wantCycles2 {
		t.Errorf("cycles = %d, %d; want %d, %d", cycles1, cycles2, wantCycles1, wantCycles2)
	}
	if hash1 != wantHash1 || hash2 != wantHash2 {
		t.Errorf("result hashes = %#x, %#x; want %#x, %#x", hash1, hash2, wantHash1, wantHash2)
	}
	if fp != wantFP {
		t.Errorf("fingerprint = %#x, want %#x", fp, wantFP)
	}
}

func TestSpMV3DHaloGolden(t *testing.T) {
	const (
		wantCycles = int64(32)
		wantHash   = uint64(0x72968f726a2620c8)
		wantFP     = uint64(0xfd3a5e245cb3c322)
	)
	m := stencil.Mesh{NX: 6, NY: 5, NZ: 8}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	norm, _ := op.Normalize()
	half := stencil.NewOp7Half(norm)
	mach := wse.New(wse.CS1(4, 3))
	defer mach.Close()
	p, err := NewSpMV3DHalo(mach, half, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < p.Tiles(); i++ {
		copy(p.Iterate(i), randomHalf(m.NZ, rng))
		for d := HaloDir(0); d < NumHaloDirs; d++ {
			copy(p.Halo(i, d), randomHalf(m.NZ, rng))
		}
	}
	cycles, err := p.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	h := newFNV()
	for i := 0; i < p.Tiles(); i++ {
		h.mix(hashHalf(p.Result(i)))
	}
	fp := mach.Fingerprint()

	t.Logf("golden 3d: cycles=%d hash=%#x fp=%#x", cycles, uint64(h), fp)
	if cycles != wantCycles {
		t.Errorf("cycles = %d, want %d", cycles, wantCycles)
	}
	if uint64(h) != wantHash {
		t.Errorf("result hash = %#x, want %#x", uint64(h), wantHash)
	}
	if fp != wantFP {
		t.Errorf("fingerprint = %#x, want %#x", fp, wantFP)
	}
}

func TestBiCGStab2DWSEGolden(t *testing.T) {
	const (
		wantIters   = 7
		wantHistory = uint64(0xc5588119283b9b04)
		wantX       = uint64(0xe67623cf5b0e1510)
		wantCycles  = int64(520)
		wantFP      = uint64(0xe6126074a8c3865)
	)
	m := stencil.Mesh2D{NX: 6, NY: 4}
	op, _ := stencil.Random9(m, 1.6, rand.New(rand.NewSource(5))).Normalize9()
	mach := wse.New(wse.CS1(3, 2))
	defer mach.Close()
	s, err := NewBiCGStab2DWSE(mach, op, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	x16, st, err := s.Solve(randomHalf(m.N(), rng), WSEOptions{MaxIter: 8, Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	hist := hashHistory(st.History)
	xh := hashHalf(x16)
	fp := mach.Fingerprint()

	t.Logf("golden 2d solve: iters=%d hist=%#x x=%#x cycles=%d fp=%#x",
		st.Iterations, hist, xh, st.Cycles.Total(), fp)
	if st.Iterations != wantIters {
		t.Errorf("iterations = %d, want %d", st.Iterations, wantIters)
	}
	if hist != wantHistory || xh != wantX {
		t.Errorf("history/x hashes = %#x, %#x; want %#x, %#x", hist, xh, wantHistory, wantX)
	}
	if st.Cycles.Total() != wantCycles {
		t.Errorf("cycles = %d, want %d", st.Cycles.Total(), wantCycles)
	}
	if fp != wantFP {
		t.Errorf("fingerprint = %#x, want %#x", fp, wantFP)
	}
}

func TestBiCGStabWSEHaloGolden(t *testing.T) {
	const (
		wantIters   = 6
		wantHistory = uint64(0x46043cfb9e3cc090)
		wantX       = uint64(0xfd5a482ab8ef82d2)
		wantCycles  = int64(816)
		wantFP      = uint64(0x65db8a9c541f4a72)
	)
	m := stencil.Mesh{NX: 4, NY: 3, NZ: 8}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	norm, _ := op.Normalize()
	mach := wse.New(wse.CS1(4, 3))
	defer mach.Close()
	s, err := NewBiCGStabWSEHalo(mach, stencil.NewOp7Half(norm))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	x16, st, err := s.Solve(randomHalf(m.N(), rng), WSEOptions{MaxIter: 6, Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	hist := hashHistory(st.History)
	xh := hashHalf(x16)
	fp := mach.Fingerprint()

	t.Logf("golden 3d solve: iters=%d hist=%#x x=%#x cycles=%d fp=%#x",
		st.Iterations, hist, xh, st.Cycles.Total(), fp)
	if st.Iterations != wantIters {
		t.Errorf("iterations = %d, want %d", st.Iterations, wantIters)
	}
	if hist != wantHistory || xh != wantX {
		t.Errorf("history/x hashes = %#x, %#x; want %#x, %#x", hist, xh, wantHistory, wantX)
	}
	if st.Cycles.Total() != wantCycles {
		t.Errorf("cycles = %d, want %d", st.Cycles.Total(), wantCycles)
	}
	if fp != wantFP {
		t.Errorf("fingerprint = %#x, want %#x", fp, wantFP)
	}
}
