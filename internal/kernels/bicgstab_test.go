package kernels

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/solver"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// wseProblem builds a machine, solver and test system b = A·xe.
func wseProblem(t *testing.T, nx, ny, nz int, seed int64) (*BiCGStabWSE, *stencil.Op7, []float64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := stencil.Mesh{NX: nx, NY: ny, NZ: nz}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1.0, 0.05)
	norm, diag := op.Normalize()
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.Float64()
	}
	b64 := make([]float64, m.N())
	op.Apply(b64, xe)
	sb := stencil.ScaleRHS(b64, diag)

	mach := wse.New(wse.CS1(nx, ny))
	w, err := NewBiCGStabWSE(mach, stencil.NewOp7Half(norm))
	if err != nil {
		t.Fatal(err)
	}
	return w, norm, sb, xe
}

func TestBiCGStabWSESolves(t *testing.T) {
	w, norm, sb, xe := wseProblem(t, 4, 4, 8, 21)
	b16 := fp16.FromFloat64Slice(sb)
	x, st, err := w.Solve(b16, WSEOptions{MaxIter: 20, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("wafer solve: %d iterations, final residual %.3g, breakdown %q",
		st.Iterations, finalOf(st.History), st.Breakdown)
	rel := SolutionResidual(norm, x, sb)
	if rel > 2e-2 {
		t.Errorf("true residual %g too large for a converged mixed solve", rel)
	}
	// The solution should be near xe at fp16 resolution.
	worst := 0.0
	for i := range xe {
		worst = math.Max(worst, math.Abs(x[i].Float64()-xe[i]))
	}
	if worst > 0.05 {
		t.Errorf("worst-case solution error %g", worst)
	}
}

func finalOf(h []float64) float64 {
	if len(h) == 0 {
		return math.NaN()
	}
	return h[len(h)-1]
}

func TestBiCGStabWSEMatchesSequentialMixed(t *testing.T) {
	// The wafer execution differs from the sequential mixed-precision
	// solver only in accumulation order (nondeterministic SpMV sums,
	// tree-reduced dots), so residual histories must track each other.
	w, norm, sb, _ := wseProblem(t, 4, 3, 6, 5)
	b16 := fp16.FromFloat64Slice(sb)
	_, st, err := w.Solve(b16, WSEOptions{MaxIter: 6})
	if err != nil {
		t.Fatal(err)
	}

	ctx := solver.NewMixed()
	a := ctx.NewOperator(norm)
	bv := ctx.NewVector(len(sb))
	for i, v := range sb {
		bv.Set(i, v)
	}
	xv := ctx.NewVector(len(sb))
	ref, err := solver.BiCGStab(ctx, a, bv, xv, solver.Options{MaxIter: 6, Tol: 0, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	n := len(st.History)
	if len(ref.History) < n {
		n = len(ref.History)
	}
	if n == 0 {
		t.Fatal("no overlapping history")
	}
	for i := 0; i < n; i++ {
		a, b := st.History[i], ref.History[i]
		if a == 0 || b == 0 {
			continue
		}
		if r := a / b; r > 4 || r < 0.25 {
			t.Errorf("iteration %d: wafer residual %g vs sequential %g", i+1, a, b)
		}
	}
}

func TestBiCGStabWSECycleBreakdown(t *testing.T) {
	// SpMV must dominate the per-iteration budget on a fabric where the
	// diameter is small relative to Z, and every phase must be nonzero.
	w, _, sb, _ := wseProblem(t, 4, 4, 32, 9)
	b16 := fp16.FromFloat64Slice(sb)
	_, st, err := w.Solve(b16, WSEOptions{MaxIter: 3})
	if err != nil {
		t.Fatal(err)
	}
	pc := st.PerIteration
	t.Logf("per-iteration cycles: spmv=%d dot=%d allreduce=%d axpy=%d total=%d",
		pc.SpMV, pc.Dot, pc.AllReduce, pc.Axpy, pc.Total())
	if pc.SpMV == 0 || pc.Dot == 0 || pc.AllReduce == 0 || pc.Axpy == 0 {
		t.Fatalf("all phases must be nonzero: %+v", pc)
	}
	if pc.SpMV < pc.Axpy {
		t.Errorf("SpMV (%d) should outweigh AXPY (%d): two applications moving 5 streams", pc.SpMV, pc.Axpy)
	}
	// Dots: 4 dots × Z/2 cycles at 2 FMAC/cycle, plus task latency.
	z := int64(32)
	if pc.Dot < 4*z/2 || pc.Dot > 4*z*4 {
		t.Errorf("dot cycles %d far from 4·Z/2 = %d", pc.Dot, 4*z/2)
	}
}

func TestBiCGStabWSEZeroRHS(t *testing.T) {
	w, _, _, _ := wseProblem(t, 2, 2, 4, 3)
	b := make([]fp16.Float16, w.Mesh.N())
	if _, _, err := w.Solve(b, WSEOptions{MaxIter: 2}); err == nil {
		t.Error("zero rhs should be rejected")
	}
}

func TestBiCGStabWSEMemoryAtPaperScale(t *testing.T) {
	// At Z = 1536 the full solver state must fit the 48 KB tile budget —
	// the paper's memory-capacity argument. One tile suffices to check
	// the arithmetic.
	m := stencil.Mesh{NX: 1, NY: 1, NZ: 1536}
	norm, _ := stencil.Poisson(m, 1).Normalize()
	mach := wse.New(wse.CS1(1, 1))
	w, err := NewBiCGStabWSE(mach, stencil.NewOp7Half(norm))
	if err != nil {
		t.Fatalf("paper-scale Z does not fit the tile: %v", err)
	}
	used := mach.Tiles[0].Arena.Used()
	if used > 48*1024 {
		t.Errorf("arena used %d bytes > 48KB", used)
	}
	t.Logf("tile memory at Z=1536: %d bytes of %d", used, 48*1024)
	_ = w
}
