package kernels

import (
	"fmt"
	"math"

	"repro/internal/fp16"
	"repro/internal/solver"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// BiCGStab2DWSE runs BiCGStab on the simulated wafer over the 2D
// block-halo mapping: each tile owns a b×b block of the mesh, the nine
// coefficient diagonals for it, and b²-element solver vectors; the SpMV
// is the two-round halo-exchange program (SpMV2DMachine), and the
// Algorithm 1 control flow — mixed-precision dots, Figure 6 AllReduces,
// SIMD vector updates — is the shared wseBiCG engine.
type BiCGStab2DWSE struct {
	M    *wse.Machine
	Mesh stencil.Mesh2D
	B    int

	spmv *SpMV2DMachine
	eng  *wseBiCG
}

// NewBiCGStab2DWSE builds the solver for a unit-centre 9-point operator
// whose mesh tiles the machine fabric with b×b blocks. The exchange uses
// colors 0–3 and the AllReduce colors 4–9.
func NewBiCGStab2DWSE(m *wse.Machine, op *stencil.Op9, b int) (*BiCGStab2DWSE, error) {
	spmv, err := NewSpMV2DMachineColors(m, op, b, 0)
	if err != nil {
		return nil, err
	}
	s := &BiCGStab2DWSE{M: m, Mesh: op.M, B: b, spmv: spmv}
	s.eng, err = newWSEBiCG(m, b*b, NumStencil2DColors, s.runSpMV)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// LoadCoeff swaps in a new operator on the same mesh (the SIMPLE outer
// loop re-assembles the pressure system every iteration).
func (s *BiCGStab2DWSE) LoadCoeff(op *stencil.Op9) { s.spmv.LoadCoeff(op) }

// index maps (tile, element) to the mesh-global vector position: block
// row-major within the tile's b×b block.
func (s *BiCGStab2DWSE) index(tile, elem int) int {
	c := s.M.Tiles[tile].Coord
	b := s.B
	return s.Mesh.Index(c.X*b+elem%b, c.Y*b+elem/b)
}

// Solve runs BiCGStab for the right-hand side b (mesh row-major, fp16)
// with a zero initial guess.
func (s *BiCGStab2DWSE) Solve(bvec []fp16.Float16, opts WSEOptions) ([]fp16.Float16, WSEStats, error) {
	if len(bvec) != s.Mesh.N() {
		return nil, WSEStats{}, fmt.Errorf("kernels: rhs length %d, want %d", len(bvec), s.Mesh.N())
	}
	return s.eng.solve(bvec, s.index, opts)
}

// runSpMV copies src into the SpMV iterate blocks, runs the two-round
// halo-exchange application, and copies the extended-region interiors to
// dst. The copies model descriptor re-aliasing and are free; the SpMV
// cycles are measured.
func (s *BiCGStab2DWSE) runSpMV(src, dst []int, acc *int64) error {
	b := s.B
	for i, t := range s.M.Tiles {
		off := s.spmv.prog.IterateOff(i)
		for e := 0; e < b*b; e++ {
			t.Arena.Set(off+e, t.Arena.At(src[i]+e))
		}
	}
	cycles, err := s.spmv.Run(int64(b*b)*1000 + 100000)
	if err != nil {
		return err
	}
	*acc += cycles
	for i, t := range s.M.Tiles {
		for e := 0; e < b*b; e++ {
			t.Arena.Set(dst[i]+e, t.Arena.At(s.spmv.prog.InteriorIndex(i, e)))
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// solver.Backend2D adapter

// Wafer2DBackend executes 2D linear solves on a cycle-simulated wafer:
// the pressure-correction backend of the cavity-on-wafer experiment.
// The first Solve2D call fixes the mesh (which must tile the machine's
// fabric with the configured block size) and builds the wafer program;
// subsequent calls reload coefficients and reuse routing, memory layout
// and tasks. The caller owns the machine and must Close it when done.
//
// The right-hand side is pre-scaled by a power of two so its magnitude
// sits near one — exact in both float64 and fp16, so it changes no
// mantissa bits — keeping the fp16-stored iterate clear of the subnormal
// range for the small mass-imbalance values SIMPLE produces; the
// solution is unscaled on the way out.
type Wafer2DBackend struct {
	mach *wse.Machine
	b    int
	prog *BiCGStab2DWSE

	// Cumulative instrumentation across solves, for cycles/meshpoint
	// reporting.
	Solves     int
	Iterations int
	Cycles     PhaseCycles
	// LastStats is the raw wafer statistics of the most recent solve.
	LastStats WSEStats
}

// NewWafer2DBackend wraps mach as a 2D solve backend with b×b blocks.
func NewWafer2DBackend(mach *wse.Machine, b int) *Wafer2DBackend {
	return &Wafer2DBackend{mach: mach, b: b}
}

// Name implements solver.Backend2D.
func (w *Wafer2DBackend) Name() string { return "wse" }

// Machine returns the underlying simulated machine (fingerprinting in
// equivalence tests).
func (w *Wafer2DBackend) Machine() *wse.Machine { return w.mach }

// Solve2D implements solver.Backend2D.
func (w *Wafer2DBackend) Solve2D(op *stencil.Op9, b, x0 []float64, opts solver.Options) ([]float64, solver.Stats, error) {
	for i, v := range x0 {
		if v != 0 {
			return nil, solver.Stats{}, fmt.Errorf("kernels: wafer 2D solve requires a zero initial guess (x0[%d] = %g)", i, v)
		}
	}
	if w.prog == nil {
		prog, err := NewBiCGStab2DWSE(w.mach, op, w.b)
		if err != nil {
			return nil, solver.Stats{}, err
		}
		w.prog = prog
	} else {
		if op.M != w.prog.Mesh {
			return nil, solver.Stats{}, fmt.Errorf("kernels: wafer 2D backend built for mesh %v, got %v", w.prog.Mesh, op.M)
		}
		w.prog.LoadCoeff(op)
	}

	amax := 0.0
	for _, v := range b {
		amax = math.Max(amax, math.Abs(v))
	}
	if amax == 0 {
		return nil, solver.Stats{}, solver.ErrZeroRHS
	}
	_, exp := math.Frexp(amax) // amax·2^−exp ∈ [0.5, 1)
	scaled := make([]fp16.Float16, len(b))
	for i, v := range b {
		scaled[i] = fp16.FromFloat64(math.Ldexp(v, -exp))
	}

	x16, st, err := w.prog.Solve(scaled, WSEOptions{
		Ctx:     opts.Ctx,
		MaxIter: opts.MaxIter, Tol: opts.Tol,
		CheckpointEvery: opts.CheckpointEvery, Checkpoint: opts.Checkpoint, Resume: opts.Resume,
	})
	if err != nil {
		return nil, solver.Stats{}, err
	}
	w.Solves++
	w.Iterations += st.Iterations
	w.Cycles.SpMV += st.Cycles.SpMV
	w.Cycles.Dot += st.Cycles.Dot
	w.Cycles.AllReduce += st.Cycles.AllReduce
	w.Cycles.Axpy += st.Cycles.Axpy
	w.LastStats = st

	out := make([]float64, len(x16))
	for i, v := range x16 {
		out[i] = math.Ldexp(v.Float64(), exp)
	}
	stats := solver.Stats{
		Iterations: st.Iterations,
		Converged:  st.Converged,
		Breakdown:  st.Breakdown,
	}
	if n := len(st.History); n > 0 {
		stats.FinalResidual = st.History[n-1]
	}
	if opts.RecordHistory {
		stats.History = st.History
	}
	return out, stats, nil
}
