package kernels

import (
	"fmt"
	"math"

	"repro/internal/fabric"
	"repro/internal/wse"
)

// AllReduce is the wafer-wide scalar reduction of Figure 6. Every core
// contributes one float32; the sum is formed by reducing in parallel
// along fabric rows into the two central columns, then along those
// columns into the four central cores, then 4:1 into a single root, and
// broadcast back over the reverse tree. Reduction arithmetic is float32
// ("we do the AllReduce at 32-bit precision"), and a core can absorb at
// most one fabric word per cycle, which is why the paper uses a *pair*
// of central rows/columns — each center receives a single directional
// stream at full link rate.
//
// The measured latency is the paper's headline: about 10% more cycles
// than the fabric diameter.
type AllReduce struct {
	M *wse.Machine
	F *fabric.Fabric

	blue, green, c4a, c4b, c4c, red fabric.Color

	cx0, cx1, cy0, cy1 int

	tiles []*arTile

	// Event-driven actor scheduling: tiles with actionable work sit on a
	// per-engine-shard pending list and park otherwise (e.g. while
	// waiting for reduction operands or the broadcast); the fabric's
	// rx-delivery wake re-lists them when words land at their ramp. This
	// is what makes the paper-scale 602×595 reduction cheap to simulate:
	// during the long serialization phases almost every tile is parked.
	pending   [][]int32
	queued    []bool
	remaining int
	start     int64 // fabric cycle at Begin, for Result's latency
}

type arTile struct {
	x, y                 int
	val, acc             float32
	rowExpect, rowGot    int
	colExpect, colGot    int
	quadExpect, quadGot  int
	sentRow, sentCol     bool
	sentQuad, sentRed    bool
	rowDone, colDone     bool
	haveResult           bool
	result               float32
	resultCycle          int64
	isRowCtr, isColCtr   bool
	isRoot               bool
	greenTarget, quadCol fabric.Color
}

// NewAllReduce builds the reduction/broadcast routing on m's fabric using
// six colors starting at base. Call once; Run may be invoked repeatedly.
func NewAllReduce(m *wse.Machine, base fabric.Color) (*AllReduce, error) {
	f := m.Fab
	if int(base)+6 > fabric.MaxColors {
		return nil, fmt.Errorf("kernels: allreduce needs 6 colors starting at %d", base)
	}
	ar := &AllReduce{
		M: m, F: f,
		blue: base, green: base + 1, c4a: base + 2, c4b: base + 3, c4c: base + 4, red: base + 5,
	}
	w, h := f.W, f.H
	ar.cx0, ar.cx1 = (w-1)/2, w/2
	ar.cy0, ar.cy1 = (h-1)/2, h/2

	// ---- Blue: row reduction toward the two central columns.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			at := fabric.Coord{X: x, Y: y}
			switch {
			case x < ar.cx0:
				ar.routeChain(at, fabric.East, ar.blue, x > 0)
			case x > ar.cx1:
				ar.routeChain(at, fabric.West, ar.blue, x < w-1)
			case x == ar.cx0 && ar.cx0 > 0:
				f.SetRoute(at, fabric.West, ar.blue, fabric.Mask(fabric.Ramp))
			}
			if x == ar.cx1 && ar.cx1 < w-1 {
				f.SetRoute(at, fabric.East, ar.blue, fabric.Mask(fabric.Ramp))
			}
		}
	}

	// ---- Green: column reduction within the central columns.
	for _, cx := range ar.centerCols() {
		for y := 0; y < h; y++ {
			at := fabric.Coord{X: cx, Y: y}
			switch {
			case y < ar.cy0:
				ar.routeChain(at, fabric.South, ar.green, y > 0)
			case y > ar.cy1:
				ar.routeChain(at, fabric.North, ar.green, y < h-1)
			case y == ar.cy0 && ar.cy0 > 0:
				f.SetRoute(at, fabric.North, ar.green, fabric.Mask(fabric.Ramp))
			}
			if y == ar.cy1 && ar.cy1 < h-1 {
				f.SetRoute(at, fabric.South, ar.green, fabric.Mask(fabric.Ramp))
			}
		}
	}

	// ---- 4:1 reduction into the root (cx0, cy0).
	root := fabric.Coord{X: ar.cx0, Y: ar.cy0}
	if ar.cx1 != ar.cx0 {
		f.SetRoute(fabric.Coord{X: ar.cx1, Y: ar.cy0}, fabric.Ramp, ar.c4a, fabric.Mask(fabric.West))
		f.SetRoute(root, fabric.East, ar.c4a, fabric.Mask(fabric.Ramp))
	}
	if ar.cy1 != ar.cy0 {
		f.SetRoute(fabric.Coord{X: ar.cx0, Y: ar.cy1}, fabric.Ramp, ar.c4b, fabric.Mask(fabric.North))
		f.SetRoute(root, fabric.South, ar.c4b, fabric.Mask(fabric.Ramp))
	}
	if ar.cx1 != ar.cx0 && ar.cy1 != ar.cy0 {
		f.SetRoute(fabric.Coord{X: ar.cx1, Y: ar.cy1}, fabric.Ramp, ar.c4c, fabric.Mask(fabric.West))
		f.SetRoute(fabric.Coord{X: ar.cx0, Y: ar.cy1}, fabric.East, ar.c4c, fabric.Mask(fabric.North))
		f.SetRoute(root, fabric.South, ar.c4c, fabric.Mask(fabric.Ramp))
	}

	// ---- Red: broadcast, reverse of the reduction tree.
	rootOuts := fabric.Mask(fabric.Ramp)
	if ar.cy0 > 0 {
		rootOuts |= fabric.Mask(fabric.North)
	}
	if ar.cy0 < h-1 {
		rootOuts |= fabric.Mask(fabric.South)
	}
	if ar.cx0 > 0 {
		rootOuts |= fabric.Mask(fabric.West) // left half of the root row
	}
	if ar.cx1 != ar.cx0 || ar.cx1 < w-1 {
		// Even width: hand off to column cx1. Odd width: the root's own
		// row continues eastward directly.
		rootOuts |= fabric.Mask(fabric.East)
	}
	f.SetRoute(root, fabric.Ramp, ar.red, rootOuts)
	for _, cx := range ar.centerCols() {
		for y := 0; y < h; y++ {
			at := fabric.Coord{X: cx, Y: y}
			isHandOff := cx == ar.cx1 && ar.cx1 != ar.cx0 && y == ar.cy0
			if y == ar.cy0 && !isHandOff {
				continue // the root itself
			}
			var in fabric.Port
			var cont fabric.Port
			contOK := false
			if isHandOff {
				in = fabric.West
			} else if y < ar.cy0 {
				in = fabric.South // word moving north arrives on the south port
				if y > 0 {
					cont, contOK = fabric.North, true
				}
			} else {
				in = fabric.North
				if y < h-1 {
					cont, contOK = fabric.South, true
				}
			}
			outs := fabric.Mask(fabric.Ramp)
			if contOK {
				outs |= fabric.Mask(cont)
			}
			if isHandOff {
				if ar.cy0 > 0 {
					outs |= fabric.Mask(fabric.North)
				}
				if ar.cy0 < h-1 {
					outs |= fabric.Mask(fabric.South)
				}
			}
			// Row broadcast away from the central columns.
			if cx == ar.cx0 && cx > 0 {
				outs |= fabric.Mask(fabric.West)
			}
			if cx == ar.cx1 && cx < w-1 {
				outs |= fabric.Mask(fabric.East)
			}
			f.SetRoute(at, in, ar.red, outs)
		}
	}
	// Row tails beyond the central columns.
	for y := 0; y < h; y++ {
		for x := 0; x < ar.cx0; x++ {
			outs := fabric.Mask(fabric.Ramp)
			if x > 0 {
				outs |= fabric.Mask(fabric.West)
			}
			f.SetRoute(fabric.Coord{X: x, Y: y}, fabric.East, ar.red, outs)
		}
		for x := ar.cx1 + 1; x < w; x++ {
			outs := fabric.Mask(fabric.Ramp)
			if x < w-1 {
				outs |= fabric.Mask(fabric.East)
			}
			f.SetRoute(fabric.Coord{X: x, Y: y}, fabric.West, ar.red, outs)
		}
	}

	// ---- Per-tile actor state.
	ar.tiles = make([]*arTile, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			t := &arTile{x: x, y: y}
			t.isRowCtr = x == ar.cx0 || x == ar.cx1
			if t.isRowCtr {
				if x == ar.cx0 {
					t.rowExpect = ar.cx0 // tiles strictly left
				} else {
					t.rowExpect = w - 1 - ar.cx1
				}
				if ar.cx0 == ar.cx1 {
					t.rowExpect = ar.cx0 + (w - 1 - ar.cx1) // single column takes both sides
				}
				t.isColCtr = y == ar.cy0 || y == ar.cy1
				if t.isColCtr {
					if y == ar.cy0 {
						t.colExpect = ar.cy0
					} else {
						t.colExpect = h - 1 - ar.cy1
					}
					if ar.cy0 == ar.cy1 {
						t.colExpect = ar.cy0 + (h - 1 - ar.cy1)
					}
				}
			}
			t.isRoot = x == ar.cx0 && y == ar.cy0
			if t.isRoot {
				if ar.cx1 != ar.cx0 {
					t.quadExpect++
				}
				if ar.cy1 != ar.cy0 {
					t.quadExpect++
				}
				if ar.cx1 != ar.cx0 && ar.cy1 != ar.cy0 {
					t.quadExpect++
				}
			}
			// Which color this center uses toward the root.
			switch {
			case x == ar.cx1 && y == ar.cy0 && ar.cx1 != ar.cx0:
				t.quadCol = ar.c4a
			case x == ar.cx0 && y == ar.cy1 && ar.cy1 != ar.cy0:
				t.quadCol = ar.c4b
			case x == ar.cx1 && y == ar.cy1 && ar.cx1 != ar.cx0 && ar.cy1 != ar.cy0:
				t.quadCol = ar.c4c
			}
			ar.tiles[y*w+x] = t
		}
	}
	ar.pending = make([][]int32, len(f.ShardRanges()))
	ar.queued = make([]bool, w*h)
	// Any word landing at a tile's ramp on one of the six AllReduce
	// colors (reduction operand, quad word, broadcast result) re-lists
	// the tile; deliveries for other subsystems sharing the fabric are
	// ignored. The callback runs on the shard that owns the tile, so the
	// per-shard append is race-free.
	f.OnRxDelivery(func(ti int, c fabric.Color) {
		if c >= ar.blue && c <= ar.red {
			ar.wakeTile(ti)
		}
	})
	return ar, nil
}

// wakeTile puts a tile on its shard's pending list (idempotent).
func (ar *AllReduce) wakeTile(ti int) {
	if !ar.queued[ti] {
		ar.queued[ti] = true
		s := ar.F.ShardOf(ti)
		ar.pending[s] = append(ar.pending[s], int32(ti))
	}
}

func (ar *AllReduce) centerCols() []int {
	if ar.cx0 == ar.cx1 {
		return []int{ar.cx0}
	}
	return []int{ar.cx0, ar.cx1}
}

// routeChain configures a pass-through route at `at`: inject own (Ramp)
// and, when hasUpstream, forward the neighbour chain arriving from the
// opposite direction.
func (ar *AllReduce) routeChain(at fabric.Coord, out fabric.Port, c fabric.Color, hasUpstream bool) {
	ar.F.SetRoute(at, fabric.Ramp, c, fabric.Mask(out))
	if hasUpstream {
		ar.F.SetRoute(at, out.Opposite(), c, fabric.Mask(out))
	}
}

// Result carries the outcome of one AllReduce.
type AllReduceResult struct {
	Sum       float32
	Cycles    int64 // until the last core received the result
	PerTile   []float32
	RootValue float32
}

// Run performs one AllReduce over values (one float32 per tile, fabric
// row-major). It returns the broadcast sum and the cycle count from start
// to the last delivery.
//
// Each cycle only pending tiles step; a tile parks when its next move
// waits on a word that has not arrived and is re-listed by the fabric's
// rx-delivery wake. Tile state is tile-local and each tile touches only
// its own ramp, so the stepping order — and therefore the engine choice
// — does not change the simulated state.
func (ar *AllReduce) Run(values []float32, maxCycles int64) (AllReduceResult, error) {
	if err := ar.Begin(values); err != nil {
		return AllReduceResult{}, err
	}
	for cyc := int64(0); cyc < maxCycles; cyc++ {
		if ar.Tick() {
			return ar.Result(), nil
		}
		ar.F.Step()
	}
	return AllReduceResult{}, fmt.Errorf("kernels: allreduce did not finish in %d cycles", maxCycles)
}

// Begin resets the host actors for a new reduction of values, without
// stepping the fabric. Run is Begin followed by a Tick/Step loop; the
// difftest lockstep harness drives the same loop with a fingerprint
// comparison between cycles.
func (ar *AllReduce) Begin(values []float32) error {
	w, h := ar.F.W, ar.F.H
	if len(values) != w*h {
		return fmt.Errorf("kernels: allreduce needs %d values, got %d", w*h, len(values))
	}
	for i, t := range ar.tiles {
		t.val = values[i]
		t.acc = values[i]
		t.rowGot, t.colGot, t.quadGot = 0, 0, 0
		t.sentRow, t.sentCol, t.sentQuad, t.sentRed = false, false, false, false
		t.rowDone = !t.isRowCtr || t.rowExpect == 0
		t.colDone = false
		t.haveResult = false
		t.result = 0
	}
	// Every tile has an injection to attempt on the first cycle.
	for s := range ar.pending {
		ar.pending[s] = ar.pending[s][:0]
	}
	for i := range ar.queued {
		ar.queued[i] = false
	}
	for i := range ar.tiles {
		ar.wakeTile(i)
	}
	ar.remaining = len(ar.tiles)
	ar.start = ar.F.Cycle()
	return nil
}

// Tick runs every actionable host actor once for the current cycle and
// reports whether all tiles hold the broadcast result. The caller steps
// the fabric between Ticks (Run does; so does the difftest harness, via
// the owning machine so cycle counts stay aligned with core stepping).
func (ar *AllReduce) Tick() bool {
	for s := range ar.pending {
		list := ar.pending[s]
		keep := list[:0]
		for _, ti := range list {
			t := ar.tiles[ti]
			had := t.haveResult
			ar.stepTile(t)
			if t.haveResult && !had {
				ar.remaining--
			}
			if ar.tileActionable(t) {
				keep = append(keep, ti)
			} else {
				ar.queued[ti] = false
			}
		}
		ar.pending[s] = keep
	}
	return ar.remaining == 0
}

// Result assembles the finished reduction (valid once Tick returned
// true): the root sum, latency in cycles since Begin, and every tile's
// broadcast copy.
func (ar *AllReduce) Result() AllReduceResult {
	res := AllReduceResult{
		Sum:     ar.tiles[ar.cy0*ar.F.W+ar.cx0].result,
		Cycles:  ar.F.Cycle() - ar.start,
		PerTile: make([]float32, len(ar.tiles)),
	}
	for i, t := range ar.tiles {
		res.PerTile[i] = t.result
	}
	return res
}

// tileActionable reports whether the tile can make progress without a
// new word arriving: a send to attempt (or retry under backpressure),
// or words already waiting at its ramp for a phase it is in. Everything
// else parks; the rx-delivery wake covers future arrivals.
func (ar *AllReduce) tileActionable(t *arTile) bool {
	at := fabric.Coord{X: t.x, Y: t.y}
	if !t.isRowCtr {
		if !t.sentRow {
			return true
		}
	} else {
		if t.rowGot < t.rowExpect && ar.F.RxLen(at, ar.blue) > 0 {
			return true
		}
		if t.rowDone && !t.isColCtr && !t.sentCol {
			return true
		}
		if t.isColCtr {
			if t.rowDone && t.colGot < t.colExpect && ar.F.RxLen(at, ar.green) > 0 {
				return true
			}
			if t.colDone && !t.isRoot && !t.sentQuad {
				return true
			}
			if t.isRoot {
				if t.colDone && t.quadGot < t.quadExpect &&
					(ar.F.RxLen(at, ar.c4a) > 0 || ar.F.RxLen(at, ar.c4b) > 0 || ar.F.RxLen(at, ar.c4c) > 0) {
					return true
				}
				if t.colDone && t.quadGot == t.quadExpect && !t.sentRed {
					return true
				}
			}
		}
	}
	if !t.haveResult && ar.F.RxLen(at, ar.red) > 0 {
		return true
	}
	return false
}

// stepTile runs one cycle of a tile's reduction state machine. A tile
// absorbs at most two words per cycle (the core "can add two 32-bit
// quantities per cycle but can receive only one from the fabric" — the
// fabric ramp already limits delivery to one word per cycle, so allowing
// two pops per cycle only drains backlog).
func (ar *AllReduce) stepTile(t *arTile) {
	at := fabric.Coord{X: t.x, Y: t.y}
	pops := 0

	// Row phase: non-center tiles send once; centers accumulate.
	if !t.isRowCtr {
		if !t.sentRow {
			if ar.F.Send(at, fabric.WordF32(ar.blue, t.val)) {
				t.sentRow = true
			}
		}
	} else {
		for pops < 2 && t.rowGot < t.rowExpect {
			w, ok := ar.F.Recv(at, ar.blue)
			if !ok {
				break
			}
			t.acc += w.F32()
			t.rowGot++
			pops++
		}
		if t.rowGot == t.rowExpect {
			t.rowDone = true
		}
		// Column phase.
		if t.rowDone && !t.isColCtr && !t.sentCol {
			if ar.F.Send(at, fabric.WordF32(ar.green, t.acc)) {
				t.sentCol = true
			}
		}
		if t.isColCtr {
			for pops < 2 && t.colGot < t.colExpect && t.rowDone {
				w, ok := ar.F.Recv(at, ar.green)
				if !ok {
					break
				}
				t.acc += w.F32()
				t.colGot++
				pops++
			}
			if t.rowDone && t.colGot == t.colExpect {
				t.colDone = true
			}
			_ = pops
			// Quad phase: the three non-root centers forward to the root.
			if t.colDone && !t.isRoot && !t.sentQuad {
				if ar.F.Send(at, fabric.WordF32(t.quadCol, t.acc)) {
					t.sentQuad = true
				}
			}
			if t.isRoot && t.colDone {
				for pops < 2 && t.quadGot < t.quadExpect {
					var w fabric.Word
					var ok bool
					for _, c := range []fabric.Color{ar.c4a, ar.c4b, ar.c4c} {
						if w, ok = ar.F.Recv(at, c); ok {
							break
						}
					}
					if !ok {
						break
					}
					t.acc += w.F32()
					t.quadGot++
					pops++
				}
				if t.quadGot == t.quadExpect && !t.sentRed {
					if ar.F.Send(at, fabric.WordF32(ar.red, t.acc)) {
						t.sentRed = true
					}
				}
			}
		}
	}

	// Everyone: wait for the broadcast result.
	if !t.haveResult {
		if w, ok := ar.F.Recv(at, ar.red); ok {
			t.result = w.F32()
			t.haveResult = true
			t.resultCycle = ar.F.Cycle()
		}
	}
}

// ReferenceSum computes the float64 sum, for accuracy checks.
func ReferenceSum(values []float32) float64 {
	var s float64
	for _, v := range values {
		s += float64(v)
	}
	return s
}

// MaxAbs returns max |v| over values; used for error bounds.
func MaxAbs(values []float32) float64 {
	m := 0.0
	for _, v := range values {
		m = math.Max(m, math.Abs(float64(v)))
	}
	return m
}
