package kernels

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// TestBiCGStabWSECancelMachineReusable: a mid-solve cancellation must
// leave the machine in a state the warm cache can reuse — after a
// pristine reset, the next solve on the canceled machine is
// bit-identical to a solve on a fresh one. This is the property that
// lets the service return a canceled job's wafer to the cache instead
// of discarding it.
func TestBiCGStabWSECancelMachineReusable(t *testing.T) {
	const iters = 6
	w, norm, sb, _ := wseProblem(t, 4, 3, 6, 5)
	b16 := fp16.FromFloat64Slice(sb)

	// Reference: uninterrupted solve on a fresh machine.
	refMach := wse.New(wse.CS1(4, 3))
	defer refMach.Close()
	refW, err := NewBiCGStabWSE(refMach, stencil.NewOp7Half(norm))
	if err != nil {
		t.Fatal(err)
	}
	refX, refSt, err := refW.Solve(b16, WSEOptions{MaxIter: iters})
	if err != nil {
		t.Fatal(err)
	}

	pristine, err := w.Pristine()
	if err != nil {
		t.Fatal(err)
	}

	// Cancel from the Progress hook after iteration 2: the next
	// iteration-boundary poll observes it and unwinds.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, st, err := w.Solve(b16, WSEOptions{
		Ctx: ctx, MaxIter: iters,
		Progress: func(iter int, rel float64) {
			if iter == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(context.Canceled)", err)
	}
	if st.Iterations != 2 {
		t.Fatalf("canceled after %d iterations, want 2", st.Iterations)
	}

	// Reset to pristine and re-solve: bit-identical to the fresh machine.
	if err := w.Reset(pristine); err != nil {
		t.Fatal(err)
	}
	gotX, gotSt, err := w.Solve(b16, WSEOptions{MaxIter: iters})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSt.History) != len(refSt.History) {
		t.Fatalf("post-cancel solve: %d history entries, reference %d", len(gotSt.History), len(refSt.History))
	}
	for i := range gotSt.History {
		if gotSt.History[i] != refSt.History[i] {
			t.Fatalf("history[%d] = %v, reference %v: canceled machine not reusable", i, gotSt.History[i], refSt.History[i])
		}
	}
	for i := range gotX {
		if gotX[i] != refX[i] {
			t.Fatalf("x[%d] = %v, reference %v: canceled machine not reusable", i, gotX[i], refX[i])
		}
	}
}
