package kernels

import (
	"fmt"
	"math"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/tensor"
	"repro/internal/wse"
)

// PhaseCycles breaks one BiCGStab iteration's cycle count into the
// paper's kernel classes.
type PhaseCycles struct {
	SpMV      int64 // two applications
	Dot       int64 // four local mixed-precision dots
	AllReduce int64 // four blocking scalar reductions
	Axpy      int64 // six AXPY-class vector updates
}

// Total returns the iteration's cycles.
func (p PhaseCycles) Total() int64 { return p.SpMV + p.Dot + p.AllReduce + p.Axpy }

// BiCGStabWSE runs the paper's solver on the simulated wafer: the mesh's
// X×Y extent is mapped across the fabric, each tile holds the Z-columns
// of the six matrix diagonals and the solver vectors in fp16, dots use
// the mixed-precision inner-product instruction with partials combined by
// the Figure 6 AllReduce at 32 bits, and every vector update runs as a
// SIMD tensor instruction.
//
// The driver sequences phases globally (the real machine chains them with
// local task triggers; the difference is a few cycles of task-start
// latency per phase, absorbed into the performance model's overhead
// calibration). Host-side copies between the solver vectors and the SpMV
// program's iterate/result buffers model descriptor re-aliasing and cost
// no cycles.
type BiCGStabWSE struct {
	M    *wse.Machine
	Mesh stencil.Mesh

	spmv *SpMV3D
	ar   *AllReduce

	// per-tile solver vector offsets (each Z elements)
	offX, offR0, offR, offP, offS, offQ, offY []int

	partial   []float32 // per-tile dot partials
	phaseTask []*wse.Task
	phaseDone []bool
}

// NewBiCGStabWSE builds the solver for a unit-diagonal operator whose
// X×Y extent matches the machine fabric.
func NewBiCGStabWSE(m *wse.Machine, op *stencil.Op7Half) (*BiCGStabWSE, error) {
	spmv, err := NewSpMV3D(m, op)
	if err != nil {
		return nil, err
	}
	ar, err := NewAllReduce(m, NumStencilColors)
	if err != nil {
		return nil, err
	}
	b := &BiCGStabWSE{M: m, Mesh: op.M, spmv: spmv, ar: ar}
	n := m.Cfg.Cores()
	z := op.M.NZ
	b.offX = make([]int, n)
	b.offR0 = make([]int, n)
	b.offR = make([]int, n)
	b.offP = make([]int, n)
	b.offS = make([]int, n)
	b.offQ = make([]int, n)
	b.offY = make([]int, n)
	b.partial = make([]float32, n)
	for i, t := range m.Tiles {
		var err error
		alloc := func(name string, off *[]int) {
			if err != nil {
				return
			}
			(*off)[i], err = t.Arena.Alloc(name, z)
		}
		alloc("x", &b.offX)
		alloc("r0", &b.offR0)
		alloc("r", &b.offR)
		alloc("p", &b.offP)
		alloc("s", &b.offS)
		alloc("q", &b.offQ)
		alloc("y", &b.offY)
		if err != nil {
			return nil, fmt.Errorf("kernels: tile %v: %v", t.Coord, err)
		}
	}
	// One reusable phase task per tile: the driver swaps in each phase's
	// instruction and re-activates it.
	b.phaseTask = make([]*wse.Task, n)
	b.phaseDone = make([]bool, n)
	for i, t := range m.Tiles {
		i := i
		task := &wse.Task{Name: "phase"}
		task.OnComplete = func(c *wse.Core) { b.phaseDone[i] = true }
		t.Core.AddTask(task)
		b.phaseTask[i] = task
	}
	return b, nil
}

// WSEStats reports a wafer solve.
type WSEStats struct {
	Iterations int
	Converged  bool
	Breakdown  string
	// History is the per-iteration relative residual ‖r‖₂/‖b‖₂, diagnosed
	// in float64 from the fp16 recurrence residual.
	History []float64
	// Cycles accumulates per-phase cycle counts across all iterations.
	Cycles PhaseCycles
	// PerIteration is the mean cycle breakdown per iteration.
	PerIteration PhaseCycles
}

// WSEOptions controls the wafer solve.
type WSEOptions struct {
	MaxIter int
	// Tol stops when ‖r‖/‖b‖ falls below it; 0 runs MaxIter iterations.
	Tol float64
}

// Solve runs BiCGStab for the right-hand side b (mesh-indexed, fp16) with
// a zero initial guess and returns the solution with solve statistics.
func (w *BiCGStabWSE) Solve(bvec []fp16.Float16, opts WSEOptions) ([]fp16.Float16, WSEStats, error) {
	m := w.Mesh
	if len(bvec) != m.N() {
		return nil, WSEStats{}, fmt.Errorf("kernels: rhs length %d, want %d", len(bvec), m.N())
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100
	}
	z := m.NZ

	// Initialize: x = 0, r = r0 = p = b (zero initial guess).
	for i, t := range w.M.Tiles {
		a := t.Arena
		for zz := 0; zz < z; zz++ {
			v := bvec[m.Index(t.Coord.X, t.Coord.Y, zz)]
			a.Set(w.offX[i]+zz, fp16.Zero)
			a.Set(w.offR0[i]+zz, v)
			a.Set(w.offR[i]+zz, v)
			a.Set(w.offP[i]+zz, v)
		}
	}
	st := WSEStats{}

	bb, _, err := w.dotAllReduce(w.offR0, w.offR0) // ‖b‖² (setup, not counted)
	if err != nil {
		return nil, st, err
	}
	bnorm := math.Sqrt(float64(bb))
	if bnorm == 0 {
		return nil, st, fmt.Errorf("kernels: zero right-hand side")
	}
	rho := float64(bb) // (r0, r0)

	finish := func() ([]fp16.Float16, WSEStats, error) {
		if st.Iterations > 0 {
			it := int64(st.Iterations)
			st.PerIteration = PhaseCycles{
				SpMV:      st.Cycles.SpMV / it,
				Dot:       st.Cycles.Dot / it,
				AllReduce: st.Cycles.AllReduce / it,
				Axpy:      st.Cycles.Axpy / it,
			}
		}
		out := make([]fp16.Float16, m.N())
		for i, t := range w.M.Tiles {
			for zz := 0; zz < z; zz++ {
				out[m.Index(t.Coord.X, t.Coord.Y, zz)] = t.Arena.At(w.offX[i] + zz)
			}
		}
		return out, st, nil
	}

	for it := 0; it < opts.MaxIter; it++ {
		st.Iterations = it + 1

		// s := A p
		if err := w.runSpMV(w.offP, w.offS, &st.Cycles.SpMV); err != nil {
			return nil, st, err
		}
		// α := (r0, r) / (r0, s)
		r0s, cyc, err := w.dotAllReduce(w.offR0, w.offS)
		if err != nil {
			return nil, st, err
		}
		w.accountDot(&st.Cycles, cyc)
		if r0s == 0 {
			st.Breakdown = "r0·Ap = 0"
			return finish()
		}
		alpha := rho / float64(r0s)

		// q := r − α s
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
			return &wse.MemOp{Kind: wse.OpFMA, Arena: t.Arena, S: fp16.FromFloat64(-alpha),
				Dst: tensor.Vec1D(w.offQ[i], z), A: tensor.Vec1D(w.offS[i], z), B: tensor.Vec1D(w.offR[i], z)}
		})

		// y := A q
		if err := w.runSpMV(w.offQ, w.offY, &st.Cycles.SpMV); err != nil {
			return nil, st, err
		}
		// ω := (q, y) / (y, y)
		qy, cyc1, err := w.dotAllReduce(w.offQ, w.offY)
		if err != nil {
			return nil, st, err
		}
		w.accountDot(&st.Cycles, cyc1)
		yy, cyc2, err := w.dotAllReduce(w.offY, w.offY)
		if err != nil {
			return nil, st, err
		}
		w.accountDot(&st.Cycles, cyc2)
		if yy == 0 {
			w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
				return &wse.MemOp{Kind: wse.OpAxpy, Arena: t.Arena, S: fp16.FromFloat64(alpha),
					Dst: tensor.Vec1D(w.offX[i], z), A: tensor.Vec1D(w.offP[i], z)}
			})
			st.Breakdown = "y·y = 0"
			return finish()
		}
		omega := float64(qy) / float64(yy)

		// x := x + α p + ω q  (two AXPYs)
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
			return &wse.MemOp{Kind: wse.OpAxpy, Arena: t.Arena, S: fp16.FromFloat64(alpha),
				Dst: tensor.Vec1D(w.offX[i], z), A: tensor.Vec1D(w.offP[i], z)}
		})
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
			return &wse.MemOp{Kind: wse.OpAxpy, Arena: t.Arena, S: fp16.FromFloat64(omega),
				Dst: tensor.Vec1D(w.offX[i], z), A: tensor.Vec1D(w.offQ[i], z)}
		})
		// r := q − ω y
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
			return &wse.MemOp{Kind: wse.OpFMA, Arena: t.Arena, S: fp16.FromFloat64(-omega),
				Dst: tensor.Vec1D(w.offR[i], z), A: tensor.Vec1D(w.offY[i], z), B: tensor.Vec1D(w.offQ[i], z)}
		})

		rel := w.residualNorm(w.offR) / bnorm
		st.History = append(st.History, rel)
		if opts.Tol > 0 && rel <= opts.Tol {
			st.Converged = true
			return finish()
		}

		// β := (α/ω) (r0, r_new)/(r0, r_old)
		rr, cyc3, err := w.dotAllReduce(w.offR0, w.offR)
		if err != nil {
			return nil, st, err
		}
		w.accountDot(&st.Cycles, cyc3)
		if rho == 0 || omega == 0 {
			st.Breakdown = "rho or omega = 0"
			return finish()
		}
		beta := (alpha / omega) * (float64(rr) / rho)
		rho = float64(rr)

		// p := r + β (p − ω s)  (two AXPYs)
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
			return &wse.MemOp{Kind: wse.OpAxpy, Arena: t.Arena, S: fp16.FromFloat64(-omega),
				Dst: tensor.Vec1D(w.offP[i], z), A: tensor.Vec1D(w.offS[i], z)}
		})
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
			return &wse.MemOp{Kind: wse.OpXPAY, Arena: t.Arena, S: fp16.FromFloat64(beta),
				Dst: tensor.Vec1D(w.offP[i], z), A: tensor.Vec1D(w.offR[i], z)}
		})
	}
	st.Converged = opts.Tol > 0 && len(st.History) > 0 && st.History[len(st.History)-1] <= opts.Tol
	return finish()
}

// runSpMV copies src into the SpMV iterate, applies the operator on the
// wafer, and copies the result to dst. The copies model descriptor
// re-aliasing and are free; the SpMV cycles are measured.
func (w *BiCGStabWSE) runSpMV(src, dst []int, acc *int64) error {
	z := w.Mesh.NZ
	for i, t := range w.M.Tiles {
		st := w.spmv.tiles[i]
		for zz := 0; zz < z; zz++ {
			t.Arena.Set(st.offV+zz, t.Arena.At(src[i]+zz))
		}
	}
	cycles, err := w.spmv.Run(int64(z)*1000 + 100000)
	if err != nil {
		return err
	}
	*acc += cycles
	for i, t := range w.M.Tiles {
		st := w.spmv.tiles[i]
		for zz := 0; zz < z; zz++ {
			t.Arena.Set(dst[i]+zz, t.Arena.At(st.offU+1+zz))
		}
	}
	return nil
}

// dotAllReduce runs the local mixed-precision dot on every tile, then the
// wafer AllReduce over the float32 partials. It returns the reduced value
// and the combined cycles (local dot phase + allreduce).
func (w *BiCGStabWSE) dotAllReduce(a, b []int) (float32, [2]int64, error) {
	z := w.Mesh.NZ
	instrs := make([]wse.Instr, len(w.M.Tiles))
	for i, t := range w.M.Tiles {
		w.partial[i] = 0
		instrs[i] = &wse.DotMixed{
			A: tensor.Vec1D(a[i], z), B: tensor.Vec1D(b[i], z),
			Arena: t.Arena, Out: &w.partial[i],
		}
	}
	dotCycles := w.runPhase(instrs)
	res, err := w.ar.Run(w.partial, 1<<20)
	if err != nil {
		return 0, [2]int64{}, err
	}
	return res.Sum, [2]int64{dotCycles, res.Cycles}, nil
}

func (w *BiCGStabWSE) accountDot(c *PhaseCycles, cyc [2]int64) {
	c.Dot += cyc[0]
	c.AllReduce += cyc[1]
}

// runAxpyPhase runs one AXPY-class instruction on every tile.
func (w *BiCGStabWSE) runAxpyPhase(acc *int64, build func(i int, t *wse.Tile) wse.Instr) {
	instrs := make([]wse.Instr, len(w.M.Tiles))
	for i, t := range w.M.Tiles {
		instrs[i] = build(i, t)
	}
	*acc += w.runPhase(instrs)
}

// runPhase executes one instruction per tile as a task and steps the
// machine until all complete.
func (w *BiCGStabWSE) runPhase(instrs []wse.Instr) int64 {
	for i, t := range w.M.Tiles {
		w.phaseDone[i] = false
		w.phaseTask[i].Instrs = []wse.Instr{instrs[i]}
		t.Core.Activate(w.phaseTask[i])
	}
	cycles, err := w.M.RunUntil(func() bool {
		for _, d := range w.phaseDone {
			if !d {
				return false
			}
		}
		return true
	}, 1<<24)
	if err != nil {
		panic(err) // local instructions cannot wedge; a failure is a simulator bug
	}
	return cycles
}

// residualNorm computes ‖r‖₂ in float64 (diagnostic only).
func (w *BiCGStabWSE) residualNorm(off []int) float64 {
	var s float64
	z := w.Mesh.NZ
	for i, t := range w.M.Tiles {
		for zz := 0; zz < z; zz++ {
			v := t.Arena.At(off[i] + zz).Float64()
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// SolutionResidual recomputes ‖b − A x‖/‖b‖ in float64 against the
// original operator, for accuracy verification.
func SolutionResidual(op *stencil.Op7, x []fp16.Float16, b []float64) float64 {
	xf := fp16.ToFloat64Slice(x)
	return op.ResidualNorm(xf, b) / stencil.Norm2(b)
}
