package kernels

import (
	"context"
	"fmt"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// PhaseCycles breaks one BiCGStab iteration's cycle count into the
// paper's kernel classes.
type PhaseCycles struct {
	SpMV      int64 // two applications
	Dot       int64 // four local mixed-precision dots
	AllReduce int64 // four blocking scalar reductions
	Axpy      int64 // six AXPY-class vector updates
}

// Total returns the iteration's cycles.
func (p PhaseCycles) Total() int64 { return p.SpMV + p.Dot + p.AllReduce + p.Axpy }

// BiCGStabWSE runs the paper's solver on the simulated wafer: the mesh's
// X×Y extent is mapped across the fabric, each tile holds the Z-columns
// of the six matrix diagonals and the solver vectors in fp16, dots use
// the mixed-precision inner-product instruction with partials combined by
// the Figure 6 AllReduce at 32 bits, and every vector update runs as a
// SIMD tensor instruction. The Algorithm 1 control flow lives in the
// shared wseBiCG engine (wsebicg.go), which the 2D block-halo solver
// (BiCGStab2DWSE) reuses with a different SpMV and tile layout.
type BiCGStabWSE struct {
	M    *wse.Machine
	Mesh stencil.Mesh

	spmv *SpMV3D     // Listing 1 FIFO pipeline (default)
	halo *SpMV3DHalo // deterministic halo-exchange SpMV (NewBiCGStabWSEHalo)
	eng  *wseBiCG
}

// NewBiCGStabWSE builds the solver for a unit-diagonal operator whose
// X×Y extent matches the machine fabric.
func NewBiCGStabWSE(m *wse.Machine, op *stencil.Op7Half) (*BiCGStabWSE, error) {
	spmv, err := NewSpMV3D(m, op)
	if err != nil {
		return nil, err
	}
	b := &BiCGStabWSE{M: m, Mesh: op.M, spmv: spmv}
	b.eng, err = newWSEBiCG(m, op.M.NZ, NumStencilColors, b.runSpMV)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// NewBiCGStabWSEHalo builds the solver with the halo-exchange SpMV
// (SpMV3DHalo) instead of the Listing 1 FIFO pipeline. The halo SpMV
// applies the stencil in stencil.Op7Half.Apply's exact rounding order,
// so — combined with the exactly rounded dots — this variant's residual
// history is bit-identical to the host mixed-precision solver, the
// rank-parallel cluster solver and the multi-wafer backend on the same
// problem. On a full-mesh single wafer every in-mesh neighbour is
// on-fabric and off-mesh halos stay zero, so no host-side halo exchange
// is needed. The Listing 1 pipeline remains the paper's default
// (core.BackendWafer); this variant exists for cross-backend
// bit-comparison and byte-stable checkpoints.
func NewBiCGStabWSEHalo(m *wse.Machine, op *stencil.Op7Half) (*BiCGStabWSE, error) {
	halo, err := NewSpMV3DHalo(m, op, 0, 0, 0)
	if err != nil {
		return nil, err
	}
	b := &BiCGStabWSE{M: m, Mesh: op.M, halo: halo}
	b.eng, err = newWSEBiCG(m, op.M.NZ, NumStencil2DColors, b.runSpMVHalo)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// LoadCoeff swaps the stencil operator of a built solver without
// rebuilding the machine program: routing, task structure, memory
// layout and the solver engine all stay, only the coefficient columns
// are rewritten. Solve re-initializes the solver vectors on every call,
// so a warm solver serves an arbitrary sequence of solves — build once,
// LoadCoeff per job, the service layer's machine-cache contract. The
// new operator's mesh must match the one the solver was built for.
func (b *BiCGStabWSE) LoadCoeff(op *stencil.Op7Half) error {
	if op.M != b.Mesh {
		return fmt.Errorf("kernels: operator mesh %v does not match solver mesh %v", op.M, b.Mesh)
	}
	if b.halo != nil {
		b.halo.LoadCoeff(op)
		return nil
	}
	return b.spmv.LoadCoeff(op)
}

// Pristine drains the machine to idle (program construction leaves a
// few cores spuriously queued) and captures its just-built
// architectural state. Rewinding to that capture with Reset before each
// solve makes every solve start from the cold-machine state, so even
// the Listing 1 FIFO pipeline — whose accumulation order is
// timing-dependent and therefore sensitive to leftover counters from a
// previous solve — reproduces a fresh machine's bits exactly. The halo
// variant's fixed program order does not need this, but the capture is
// valid for both.
func (b *BiCGStabWSE) Pristine() (*wse.Snapshot, error) {
	if _, err := b.M.RunUntil(b.M.AllIdle, 1<<20); err != nil {
		return nil, fmt.Errorf("kernels: draining machine for pristine capture: %w", err)
	}
	return b.M.Snapshot()
}

// Reset rewinds the machine to a Pristine capture (see Pristine).
func (b *BiCGStabWSE) Reset(s *wse.Snapshot) error { return b.M.Restore(s) }

// WSEStats reports a wafer solve.
type WSEStats struct {
	Iterations int
	Converged  bool
	Breakdown  string
	// History is the per-iteration relative residual ‖r‖₂/‖b‖₂, diagnosed
	// in float64 from the fp16 recurrence residual.
	History []float64
	// Cycles accumulates per-phase cycle counts across all iterations.
	// The setup ‖b‖² dot is excluded (see SetupCycles), matching the
	// multi-wafer backend's accounting.
	Cycles PhaseCycles
	// PerIteration is the mean cycle breakdown per iteration.
	PerIteration PhaseCycles
	// SetupCycles is the one-time ‖b‖² dot + AllReduce before the first
	// iteration, kept out of Cycles/PerIteration so per-iteration numbers
	// match the paper's steady-state model.
	SetupCycles int64
	// MaxARDrift is the largest observed |fabric AllReduce − exact sum|
	// across all dots, as a fraction of the paper's AllReduce error-model
	// bound (≤ 1 means every fabric reduction stayed within model). The
	// solver consumes the exact sum; this measures what tree-order
	// summation would have perturbed.
	MaxARDrift float64
}

// WSEOptions controls the wafer solve.
type WSEOptions struct {
	// Ctx, if non-nil, is polled at the top of every iteration for
	// cooperative cancellation. Cancellation unwinds between iterations,
	// when the fabric is idle, so the machine stays in a consistent
	// (resettable, snapshottable) state. The returned error wraps
	// Ctx.Err().
	Ctx context.Context

	MaxIter int
	// Tol stops when ‖r‖/‖b‖ falls below it; 0 runs MaxIter iterations.
	Tol float64
	// CheckpointEvery > 0 with a non-nil Checkpoint cuts an encoded
	// WSECheckpoint at the top of every CheckpointEvery-th iteration and
	// passes it to the callback; a callback error aborts the solve.
	CheckpointEvery int
	Checkpoint      func([]byte) error
	// Resume, if non-nil, is an encoded WSECheckpoint: the solve restores
	// the machine snapshot and continues from the captured iteration,
	// bit-identically to the uninterrupted solve. The right-hand side
	// must be the one the checkpointed solve was started with.
	Resume []byte
	// Progress, if non-nil, is called after every iteration with the
	// 1-based iteration number and the relative residual just appended
	// to History. It is purely observational (the service layer streams
	// it to clients) and must not mutate solver state.
	Progress func(iter int, rel float64)
}

// Solve runs BiCGStab for the right-hand side b (mesh-indexed, fp16) with
// a zero initial guess and returns the solution with solve statistics.
func (w *BiCGStabWSE) Solve(bvec []fp16.Float16, opts WSEOptions) ([]fp16.Float16, WSEStats, error) {
	m := w.Mesh
	if len(bvec) != m.N() {
		return nil, WSEStats{}, fmt.Errorf("kernels: rhs length %d, want %d", len(bvec), m.N())
	}
	return w.eng.solve(bvec, func(tile, elem int) int {
		c := w.M.Tiles[tile].Coord
		return m.Index(c.X, c.Y, elem)
	}, opts)
}

// runSpMV copies src into the SpMV iterate, applies the operator on the
// wafer, and copies the result to dst. The copies model descriptor
// re-aliasing and are free; the SpMV cycles are measured.
func (w *BiCGStabWSE) runSpMV(src, dst []int, acc *int64) error {
	z := w.Mesh.NZ
	for i, t := range w.M.Tiles {
		st := w.spmv.tiles[i]
		for zz := 0; zz < z; zz++ {
			t.Arena.Set(st.offV+zz, t.Arena.At(src[i]+zz))
		}
	}
	cycles, err := w.spmv.Run(int64(z)*1000 + 100000)
	if err != nil {
		return err
	}
	*acc += cycles
	for i, t := range w.M.Tiles {
		st := w.spmv.tiles[i]
		for zz := 0; zz < z; zz++ {
			t.Arena.Set(dst[i]+zz, t.Arena.At(st.offU+1+zz))
		}
	}
	return nil
}

// runSpMVHalo is runSpMV for the halo-exchange pipeline. Mesh-boundary
// halos are never written and stay zero, which is exactly the stencil's
// boundary condition on a full-mesh wafer.
func (w *BiCGStabWSE) runSpMVHalo(src, dst []int, acc *int64) error {
	z := w.Mesh.NZ
	for i, t := range w.M.Tiles {
		copy(w.halo.Iterate(i), t.Arena.Slice(src[i], z))
	}
	cycles, err := w.halo.Run(int64(z)*1000 + 1<<20)
	if err != nil {
		return err
	}
	*acc += cycles
	for i, t := range w.M.Tiles {
		copy(t.Arena.Slice(dst[i], z), w.halo.Result(i))
	}
	return nil
}

// SolutionResidual recomputes ‖b − A x‖/‖b‖ in float64 against the
// original operator, for accuracy verification.
func SolutionResidual(op *stencil.Op7, x []fp16.Float16, b []float64) float64 {
	xf := fp16.ToFloat64Slice(x)
	return op.ResidualNorm(xf, b) / stencil.Norm2(b)
}
