//go:build race

package kernels

// raceEnabled reports whether this test binary was built with the race
// detector; the paper-scale BiCGStab solve skips itself there (the full
// 602×595 wafer is an order of magnitude slower under race, and the
// engine-equivalence contract the test pins is already race-exercised
// at small scale by the wse difftest and fuzz suites).
const raceEnabled = true
