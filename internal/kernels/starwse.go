package kernels

import (
	"fmt"
	"math"

	"repro/internal/fp16"
	"repro/internal/solver"
	"repro/internal/stencil"
	"repro/internal/stencilc"
	"repro/internal/wse"
)

// BiCGStabStarWSE runs BiCGStab on the simulated wafer for an arbitrary
// star stencil: the SpMV is a stencil-compiled relay-exchange program
// (stencilc.Program3D) applying a unit-diagonal star operator of
// per-axis widths up to stencilc.MaxWidth — the 25-point seismic
// stencil, the 7-point heat step, and everything between — and the
// Algorithm 1 control flow (mixed-precision dots, Figure 6 AllReduces,
// SIMD vector updates) is the shared wseBiCG engine. At widths {1,1,1}
// the compiled program is instruction-identical to the halo-exchange
// SpMV, so this solver reproduces BiCGStabWSE's halo pipeline bit for
// bit (pinned by TestStarSolverMatchesHalo).
type BiCGStabStarWSE struct {
	M    *wse.Machine
	Mesh stencil.Mesh
	Spec stencilc.Spec

	prog *stencilc.Program3D
	eng  *wseBiCG
}

// NewBiCGStabStarWSE builds the solver for a unit-diagonal star
// operator whose X×Y extent equals the machine fabric (one Z column per
// tile; the solve's boundary handling relies on never-written halos
// staying zero, which is the Dirichlet condition only on a full-mesh
// wafer). The exchange uses the stencil compiler's four directional
// colors and the AllReduce the six after them.
func NewBiCGStabStarWSE(m *wse.Machine, spec stencilc.Spec, op *stencil.OpStarHalf) (*BiCGStabStarWSE, error) {
	if op.M.NX != m.Cfg.FabricW || op.M.NY != m.Cfg.FabricH {
		return nil, fmt.Errorf("kernels: star solve requires the mesh extent %d×%d to equal the fabric %d×%d",
			op.M.NX, op.M.NY, m.Cfg.FabricW, m.Cfg.FabricH)
	}
	prog, err := stencilc.Compile3D(m, spec, op, 0, 0, 0)
	if err != nil {
		return nil, err
	}
	s := &BiCGStabStarWSE{M: m, Mesh: op.M, Spec: spec, prog: prog}
	s.eng, err = newWSEBiCG(m, op.M.NZ, NumStencil2DColors, s.runSpMV)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// LoadCoeff swaps in a new operator on the same mesh and widths;
// routing, memory layout and task structure are reused.
func (s *BiCGStabStarWSE) LoadCoeff(op *stencil.OpStarHalf) { s.prog.LoadCoeff(op) }

// Solve runs BiCGStab for the right-hand side b (mesh-indexed, fp16)
// with a zero initial guess.
func (s *BiCGStabStarWSE) Solve(bvec []fp16.Float16, opts WSEOptions) ([]fp16.Float16, WSEStats, error) {
	m := s.Mesh
	if len(bvec) != m.N() {
		return nil, WSEStats{}, fmt.Errorf("kernels: rhs length %d, want %d", len(bvec), m.N())
	}
	return s.eng.solve(bvec, func(tile, elem int) int {
		c := s.M.Tiles[tile].Coord
		return m.Index(c.X, c.Y, elem)
	}, opts)
}

// runSpMV copies src into the program's iterate columns, runs the
// relay-exchange application, and copies the result columns to dst. The
// copies model descriptor re-aliasing and are free; the SpMV cycles are
// measured.
func (s *BiCGStabStarWSE) runSpMV(src, dst []int, acc *int64) error {
	z := s.Mesh.NZ
	for i, t := range s.M.Tiles {
		copy(s.prog.Iterate(i), t.Arena.Slice(src[i], z))
	}
	cycles, err := s.prog.Run(int64(z)*1000 + 1<<20)
	if err != nil {
		return err
	}
	*acc += cycles
	for i, t := range s.M.Tiles {
		copy(t.Arena.Slice(dst[i], z), s.prog.Result(i))
	}
	return nil
}

// ---------------------------------------------------------------------
// solver.BackendStar adapter

// WaferStarBackend executes star-stencil linear solves on a
// cycle-simulated wafer through the stencil compiler. The first
// SolveStar call fixes the mesh (whose X×Y extent must equal the
// machine's fabric) and builds the wafer program; subsequent calls on
// the same mesh and widths reload coefficients and reuse routing,
// memory layout and tasks — the implicit heat stepper solves every
// time step on one warm machine. The caller owns the machine and must
// Close it when done.
//
// The right-hand side is pre-scaled by a power of two so its magnitude
// sits near one — exact in both float64 and fp16 — and the solution is
// unscaled on the way out, exactly as the 2D wafer backend does.
type WaferStarBackend struct {
	mach *wse.Machine
	spec stencilc.Spec
	prog *BiCGStabStarWSE

	// Cumulative instrumentation across solves, for cycles/meshpoint
	// reporting.
	Solves     int
	Iterations int
	Cycles     PhaseCycles
	// LastStats is the raw wafer statistics of the most recent solve.
	LastStats WSEStats
}

// NewWaferStarBackend wraps mach as a star solve backend for spec.
func NewWaferStarBackend(mach *wse.Machine, spec stencilc.Spec) *WaferStarBackend {
	return &WaferStarBackend{mach: mach, spec: spec}
}

// Name implements solver.BackendStar.
func (w *WaferStarBackend) Name() string { return "wse" }

// Machine returns the underlying simulated machine (fingerprinting in
// equivalence tests).
func (w *WaferStarBackend) Machine() *wse.Machine { return w.mach }

// SolveStar implements solver.BackendStar.
func (w *WaferStarBackend) SolveStar(op *stencil.OpStar, b, x0 []float64, opts solver.Options) ([]float64, solver.Stats, error) {
	for i, v := range x0 {
		if v != 0 {
			return nil, solver.Stats{}, fmt.Errorf("kernels: wafer star solve requires a zero initial guess (x0[%d] = %g)", i, v)
		}
	}
	// Reject non-lowerable specs before building the fp16 half operator:
	// the host references assert Dirichlet, and the caller deserves the
	// compiler's *UnsupportedError rather than that panic.
	if err := w.spec.Lowerable(); err != nil {
		return nil, solver.Stats{}, err
	}
	if w.prog == nil {
		prog, err := NewBiCGStabStarWSE(w.mach, w.spec, stencil.NewOpStarHalf(op))
		if err != nil {
			return nil, solver.Stats{}, err
		}
		w.prog = prog
	} else {
		if op.M != w.prog.Mesh {
			return nil, solver.Stats{}, fmt.Errorf("kernels: wafer star backend built for mesh %v, got %v", w.prog.Mesh, op.M)
		}
		w.prog.LoadCoeff(stencil.NewOpStarHalf(op))
	}

	amax := 0.0
	for _, v := range b {
		amax = math.Max(amax, math.Abs(v))
	}
	if amax == 0 {
		return nil, solver.Stats{}, solver.ErrZeroRHS
	}
	_, exp := math.Frexp(amax) // amax·2^−exp ∈ [0.5, 1)
	scaled := make([]fp16.Float16, len(b))
	for i, v := range b {
		scaled[i] = fp16.FromFloat64(math.Ldexp(v, -exp))
	}

	x16, st, err := w.prog.Solve(scaled, WSEOptions{
		Ctx:     opts.Ctx,
		MaxIter: opts.MaxIter, Tol: opts.Tol,
		CheckpointEvery: opts.CheckpointEvery, Checkpoint: opts.Checkpoint, Resume: opts.Resume,
	})
	if err != nil {
		return nil, solver.Stats{}, err
	}
	w.Solves++
	w.Iterations += st.Iterations
	w.Cycles.SpMV += st.Cycles.SpMV
	w.Cycles.Dot += st.Cycles.Dot
	w.Cycles.AllReduce += st.Cycles.AllReduce
	w.Cycles.Axpy += st.Cycles.Axpy
	w.LastStats = st

	out := make([]float64, len(x16))
	for i, v := range x16 {
		out[i] = math.Ldexp(v.Float64(), exp)
	}
	stats := solver.Stats{
		Iterations: st.Iterations,
		Converged:  st.Converged,
		Breakdown:  st.Breakdown,
	}
	if n := len(st.History); n > 0 {
		stats.FinalResidual = st.History[n-1]
	}
	if opts.RecordHistory {
		stats.History = st.History
	}
	return out, stats, nil
}
