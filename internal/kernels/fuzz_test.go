package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// FuzzSpMV2DEquivalence fuzzes the 2D block-halo wafer program's
// determinism contract: a random normalized 9-point operator and
// iterate on a random tile grid and block size are built identically on
// a sequential and a sharded machine, armed, and stepped in lockstep —
// the complete per-cycle Machine.Fingerprint must match every cycle,
// the results must be bitwise equal, and both machines must agree the
// program drained. It also cross-checks the machine result against the
// functional SpMV2D.Apply, whose rounding order the wafer program
// reproduces exactly. Seed corpus in testdata/fuzz/FuzzSpMV2DEquivalence;
// CI runs this in fuzz-smoke.
func FuzzSpMV2DEquivalence(f *testing.F) {
	f.Add(int64(1), uint64(0x0202), uint64(0))
	f.Add(int64(7), uint64(0x0103), uint64(1))
	f.Add(int64(-5), uint64(0x0401), uint64(2))
	f.Add(int64(99), uint64(0x0303), uint64(4))
	f.Fuzz(func(t *testing.T, seed int64, dims, bsel uint64) {
		tx := int(dims&0xff)%4 + 1
		ty := int((dims>>8)&0xff)%4 + 1
		b := 2 * (int(bsel%3) + 1) // 2, 4, 6
		rng := rand.New(rand.NewSource(seed))
		workers := rng.Intn(6) + 2

		m := stencil.Mesh2D{NX: tx * b, NY: ty * b}
		norm, _ := stencil.Random9(m, 1.3, rng).Normalize9()
		src := randomHalfVector(m.N(), rng)

		build := func(wk int) (*wse.Machine, *SpMV2DMachine) {
			cfg := wse.CS1(tx, ty)
			cfg.Workers = wk
			mach := wse.New(cfg)
			prog, err := NewSpMV2DMachine(mach, norm, b)
			if err != nil {
				t.Fatal(err)
			}
			prog.LoadVector(src)
			prog.Arm()
			return mach, prog
		}
		mseq, pseq := build(1)
		defer mseq.Close()
		mshd, pshd := build(workers)
		defer mshd.Close()
		if mseq.Fab.StepperName() == mshd.Fab.StepperName() {
			t.Fatalf("engine selection broken: both %q", mseq.Fab.StepperName())
		}

		maxCycles := 64*b*(tx+ty) + 512
		for cyc := 0; cyc < maxCycles; cyc++ {
			mseq.Step()
			mshd.Step()
			if fa, fb := mseq.Fingerprint(), mshd.Fingerprint(); fa != fb {
				t.Fatalf("cycle %d: machine fingerprints diverge: seq %#x %s %#x",
					cyc, fa, mshd.Fab.StepperName(), fb)
			}
			if mseq.AllIdle() {
				break
			}
		}
		if a, b2 := mseq.AllIdle(), mshd.AllIdle(); !a || !b2 {
			t.Fatalf("program did not drain in %d cycles: seq %v sharded %v", maxCycles, a, b2)
		}

		ra, rb := pseq.Result(), pshd.Result()
		fn, err := NewSpMV2D(norm, b)
		if err != nil {
			t.Fatal(err)
		}
		refDst := make([]fp16.Float16, m.N())
		fn.Apply(refDst, src)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("result element %d differs across engines: %v vs %v", i, ra[i], rb[i])
			}
			if ra[i] != refDst[i] {
				t.Fatalf("result element %d differs from functional reference: %v vs %v", i, ra[i], refDst[i])
			}
		}
	})
}
