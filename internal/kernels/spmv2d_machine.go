package kernels

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/tensor"
	"repro/internal/wse"
)

// NumStencil2DColors is the number of virtual channels the 2D block-halo
// exchange needs: one per direction of travel. Every link is a single
// hop, so — unlike the 3D tessellation — four colors suffice for the
// whole fabric.
const NumStencil2DColors = 4

// Directional exchange colors, offsets from the program's base color.
// The name is the direction a word travels: a tile receives colEast
// words from its west neighbour, and so on.
const (
	colEast = iota
	colWest
	colSouth
	colNorth
)

// SpMV2DMachine is the wafer-resident rendering of the paper's §IV-2 2D
// block-halo mapping (the dataflow SpMV2D renders functionally): each
// tile owns a b×b block of the mesh and all nine coefficient diagonals
// for it, computes the nine products of one application into an output
// region extended by a one-point halo, and exchanges output halos with
// its four neighbours over fabric streams in two rounds — first the ±x
// columns of height b+2, then the ±y rows of width b, folding corner
// contributions through the x round so no diagonal communication is
// needed.
//
// Per tile the program is: a "local" task of nine block FMAC
// instructions (scatter form, one per diagonal), whose completion
// launches the x-round threads (two halo-column sends, two stream adds
// from the neighbour streams); their completion launches the y-round
// threads (two halo-row sends, two stream adds); the y round completes
// the application. All scheduling is tile-local — cross-tile signalling
// happens only through the fabric — so the program is bit-identical
// under the sequential and sharded engines, and bit-identical to the
// functional SpMV2D.Apply (same rounding order everywhere; the
// equivalence tests assert both).
type SpMV2DMachine struct {
	M    *wse.Machine
	Mesh stencil.Mesh2D
	B    int // block edge (even, ≥ 2)

	base  fabric.Color
	tiles []*spmv2dTile
}

type spmv2dTile struct {
	tile *wse.Tile
	x, y int // tile coordinate

	offC [9]int // coefficient blocks, b² each, block row-major
	offV int    // iterate block, b²
	offE int    // extended output region, (b+2)², cell (i,j) at (i+1)+(j+1)(b+2)

	// Neighbour streams, indexed by the direction the words travel:
	// from[colEast] carries the west neighbour's eastbound halo, etc.
	from [4]*wse.StreamBuf

	localTask *wse.Task

	xLeft, yLeft int // outstanding x- and y-round threads
	done         bool
}

// NewSpMV2DMachine builds the program for the normalized 9-point
// operator op on machine mach, with b×b blocks. The mesh must tile the
// fabric exactly (NX = b·FabricW, NY = b·FabricH) and b must be even:
// fabric words carry two fp16 elements, and an even b keeps every halo
// transfer (b+2 column elements, b row elements) whole-word so no pad
// element is left behind in a stream buffer between applications.
func NewSpMV2DMachine(mach *wse.Machine, op *stencil.Op9, b int) (*SpMV2DMachine, error) {
	return NewSpMV2DMachineColors(mach, op, b, 0)
}

// NewSpMV2DMachineColors is NewSpMV2DMachine with an explicit base
// color, for composition with other kernels (the 2D BiCGStab driver
// places its AllReduce colors after these four).
func NewSpMV2DMachineColors(mach *wse.Machine, op *stencil.Op9, b int, base fabric.Color) (*SpMV2DMachine, error) {
	m := op.M
	if b < 2 || b%2 != 0 {
		return nil, fmt.Errorf("kernels: 2D block edge %d must be even and >= 2", b)
	}
	if m.NX != b*mach.Cfg.FabricW || m.NY != b*mach.Cfg.FabricH {
		return nil, fmt.Errorf("kernels: mesh %dx%d does not tile fabric %dx%d with %d×%d blocks",
			m.NX, m.NY, mach.Cfg.FabricW, mach.Cfg.FabricH, b, b)
	}
	if int(base)+NumStencil2DColors > fabric.MaxColors {
		return nil, fmt.Errorf("kernels: 2D exchange needs %d colors starting at %d", NumStencil2DColors, base)
	}
	p := &SpMV2DMachine{M: mach, Mesh: m, B: b, base: base}

	// Static routing: four single-hop directional streams. A word a tile
	// injects on colEast crosses one link east and rides the neighbour's
	// ramp; symmetrically for the other directions.
	w, h := mach.Cfg.FabricW, mach.Cfg.FabricH
	f := mach.Fab
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			at := fabric.Coord{X: x, Y: y}
			if x < w-1 {
				f.SetRoute(at, fabric.Ramp, base+colEast, fabric.Mask(fabric.East))
				f.SetRoute(fabric.Coord{X: x + 1, Y: y}, fabric.West, base+colEast, fabric.Mask(fabric.Ramp))
			}
			if x > 0 {
				f.SetRoute(at, fabric.Ramp, base+colWest, fabric.Mask(fabric.West))
				f.SetRoute(fabric.Coord{X: x - 1, Y: y}, fabric.East, base+colWest, fabric.Mask(fabric.Ramp))
			}
			if y < h-1 {
				f.SetRoute(at, fabric.Ramp, base+colSouth, fabric.Mask(fabric.South))
				f.SetRoute(fabric.Coord{X: x, Y: y + 1}, fabric.North, base+colSouth, fabric.Mask(fabric.Ramp))
			}
			if y > 0 {
				f.SetRoute(at, fabric.Ramp, base+colNorth, fabric.Mask(fabric.North))
				f.SetRoute(fabric.Coord{X: x, Y: y - 1}, fabric.South, base+colNorth, fabric.Mask(fabric.Ramp))
			}
		}
	}

	// Per-tile memory, stream subscriptions, tasks.
	p.tiles = make([]*spmv2dTile, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tl := mach.TileAt(fabric.Coord{X: x, Y: y})
			st := &spmv2dTile{tile: tl, x: x, y: y}
			a := tl.Arena
			var err error
			alloc := func(name string, n int) int {
				if err != nil {
					return 0
				}
				var off int
				off, err = a.Alloc(name, n)
				return off
			}
			for k := range st.offC {
				st.offC[k] = alloc(fmt.Sprintf("c%d", k), b*b)
			}
			st.offV = alloc("v", b*b)
			st.offE = alloc("ext", (b+2)*(b+2))
			if err != nil {
				return nil, fmt.Errorf("kernels: tile (%d,%d): %v", x, y, err)
			}

			sub := func(dir int, has bool) {
				if has {
					st.from[dir] = wse.NewStreamBuf(4)
					tl.Core.Subscribe(base+fabric.Color(dir), st.from[dir])
				}
			}
			sub(colEast, x > 0) // west neighbour's eastbound words
			sub(colWest, x < w-1)
			sub(colSouth, y > 0)
			sub(colNorth, y < h-1)

			st.localTask = tl.Core.AddTask(&wse.Task{Name: "spmv2d"})
			st.localTask.OnComplete = func(c *wse.Core) { p.launchX(st) }
			p.tiles[y*w+x] = st
		}
	}
	p.LoadCoeff(op)
	return p, nil
}

// LoadCoeff (re)loads the nine coefficient diagonals. The solver calls
// this between SIMPLE iterations when the operator changes; routing,
// memory layout and task structure are reused. The operator must have a
// unit centre coefficient and live on the same mesh.
func (p *SpMV2DMachine) LoadCoeff(op *stencil.Op9) {
	m := p.Mesh
	if op.M != m {
		panic(fmt.Sprintf("kernels: operator mesh %v does not match program mesh %v", op.M, m))
	}
	b := p.B
	for _, st := range p.tiles {
		a := st.tile.Arena
		for j := 0; j < b; j++ {
			for i := 0; i < b; i++ {
				gx, gy := st.x*b+i, st.y*b+j
				for k, off := range stencil.Off9 {
					// Scatter form: source cell S contributes
					// C[k][P]·v[S] to P = S − off_k; the tile stores the
					// coefficient sampled at P, zero beyond the mesh
					// (Dirichlet truncation; a zero product is a bitwise
					// no-op on the accumulator).
					px, py := gx-off[0], gy-off[1]
					v := fp16.Zero
					if m.In(px, py) {
						if k == 4 && op.C[4][m.Index(px, py)] != 1 {
							panic("kernels: 2D SpMV requires a unit centre coefficient")
						}
						v = fp16.FromFloat64(op.C[k][m.Index(px, py)])
					}
					a.Set(st.offC[k]+j*b+i, v)
				}
			}
		}
	}
}

// extCol returns the descriptor of extended-output column i ∈ [-1, b]
// (b+2 elements, rows j = -1..b).
func (p *SpMV2DMachine) extCol(st *spmv2dTile, i int) tensor.Descriptor {
	return tensor.Strided(st.offE+i+1, p.B+2, p.B+2)
}

// extRow returns the descriptor of extended-output row j ∈ [-1, b]
// restricted to the block columns i = 0..b-1 (b elements) — the y-round
// halo shape; corner cells travelled with the x round.
func (p *SpMV2DMachine) extRow(st *spmv2dTile, j int) tensor.Descriptor {
	return tensor.Strided(st.offE+1+(j+1)*(p.B+2), p.B, 1)
}

// armTile prepares one application: zeroes the extended output
// (descriptor re-aliasing, free as in the 3D kernel's armTile), wires
// the nine scatter instructions with fresh descriptors, and activates
// the local task.
func (p *SpMV2DMachine) armTile(st *spmv2dTile) {
	b := p.B
	a := st.tile.Arena
	for i := 0; i < (b+2)*(b+2); i++ {
		a.Set(st.offE+i, fp16.Zero)
	}

	instrs := make([]wse.Instr, 9)
	for k, off := range stencil.Off9 {
		dx, dy := -off[0], -off[1]
		instrs[k] = &wse.MemOp{
			Kind:  wse.OpMulAcc,
			Arena: a,
			Dst:   tensor.Mat2D(st.offE+(1+dx)+(1+dy)*(b+2), b, b, b+2),
			A:     tensor.Vec1D(st.offV, b*b),
			B:     tensor.Vec1D(st.offC[k], b*b),
		}
	}
	st.localTask.Instrs = instrs
	st.done = false
	st.xLeft, st.yLeft = 0, 0
	st.tile.Core.Activate(st.localTask)
}

// launchX starts the ±x exchange round: send the two halo columns
// (height b+2) toward the existing neighbours and accumulate the
// neighbours' incoming columns into the block's edge columns. Runs from
// the local task's OnComplete, on the owning core.
func (p *SpMV2DMachine) launchX(st *spmv2dTile) {
	core := st.tile.Core
	a := st.tile.Arena
	b := p.B
	w := p.M.Cfg.FabricW

	type tx struct {
		col fabric.Color
		src tensor.Descriptor
		has bool
	}
	sends := []tx{
		{p.base + colWest, p.extCol(st, -1), st.x > 0},
		{p.base + colEast, p.extCol(st, b), st.x < w-1},
	}
	type rx struct {
		buf *wse.StreamBuf
		acc tensor.Descriptor
	}
	recvs := []rx{
		{st.from[colEast], p.extCol(st, 0)},   // west neighbour's column folds into i=0
		{st.from[colWest], p.extCol(st, b-1)}, // east neighbour's into i=b-1
	}

	for _, s := range sends {
		if s.has {
			st.xLeft++
		}
	}
	for _, r := range recvs {
		if r.buf != nil {
			st.xLeft++
		}
	}
	if st.xLeft == 0 {
		p.launchY(st)
		return
	}
	onDone := func(c *wse.Core) {
		st.xLeft--
		if st.xLeft == 0 {
			p.launchY(st)
		}
	}
	slot := 0
	for _, s := range sends {
		if s.has {
			core.LaunchThread(slot, "xh_tx", &wse.SendMem{
				Color: s.col, Src: s.src, Arena: a, Total: b + 2,
			}, onDone)
			slot++
		}
	}
	for _, r := range recvs {
		if r.buf != nil {
			core.LaunchThread(slot, "xh_rx", &wse.StreamAdd{
				Src: wse.StreamSource{B: r.buf}, Acc: r.acc, Arena: a, Total: b + 2,
			}, onDone)
			slot++
		}
	}
}

// launchY starts the ±y round (rows of width b, corners already folded
// by the x round), whose completion finishes the application.
func (p *SpMV2DMachine) launchY(st *spmv2dTile) {
	core := st.tile.Core
	a := st.tile.Arena
	b := p.B
	h := p.M.Cfg.FabricH

	type tx struct {
		col fabric.Color
		src tensor.Descriptor
		has bool
	}
	sends := []tx{
		{p.base + colNorth, p.extRow(st, -1), st.y > 0},
		{p.base + colSouth, p.extRow(st, b), st.y < h-1},
	}
	type rx struct {
		buf *wse.StreamBuf
		acc tensor.Descriptor
	}
	recvs := []rx{
		{st.from[colSouth], p.extRow(st, 0)},   // north neighbour's row folds into j=0
		{st.from[colNorth], p.extRow(st, b-1)}, // south neighbour's into j=b-1
	}

	for _, s := range sends {
		if s.has {
			st.yLeft++
		}
	}
	for _, r := range recvs {
		if r.buf != nil {
			st.yLeft++
		}
	}
	if st.yLeft == 0 {
		st.done = true
		return
	}
	onDone := func(c *wse.Core) {
		st.yLeft--
		if st.yLeft == 0 {
			st.done = true
		}
	}
	slot := 0
	for _, s := range sends {
		if s.has {
			core.LaunchThread(slot, "yh_tx", &wse.SendMem{
				Color: s.col, Src: s.src, Arena: a, Total: b,
			}, onDone)
			slot++
		}
	}
	for _, r := range recvs {
		if r.buf != nil {
			core.LaunchThread(slot, "yh_rx", &wse.StreamAdd{
				Src: wse.StreamSource{B: r.buf}, Acc: r.acc, Arena: a, Total: b,
			}, onDone)
			slot++
		}
	}
}

// LoadVector scatters the global iterate v (mesh row-major) into the
// tiles' block-local iterate storage.
func (p *SpMV2DMachine) LoadVector(v []fp16.Float16) {
	b := p.B
	for _, st := range p.tiles {
		a := st.tile.Arena
		for j := 0; j < b; j++ {
			for i := 0; i < b; i++ {
				a.Set(st.offV+j*b+i, v[p.Mesh.Index(st.x*b+i, st.y*b+j)])
			}
		}
	}
}

// Result gathers the block interiors into a global mesh-indexed vector.
func (p *SpMV2DMachine) Result() []fp16.Float16 {
	b := p.B
	out := make([]fp16.Float16, p.Mesh.N())
	for _, st := range p.tiles {
		a := st.tile.Arena
		for j := 0; j < b; j++ {
			for i := 0; i < b; i++ {
				out[p.Mesh.Index(st.x*b+i, st.y*b+j)] = a.At(st.offE + (i + 1) + (j+1)*(b+2))
			}
		}
	}
	return out
}

// Run executes one SpMV application under cycle simulation and returns
// the cycles it took: every tile's local task, x round and y round have
// completed and all halo streams are fully drained.
func (p *SpMV2DMachine) Run(maxCycles int64) (int64, error) {
	for _, st := range p.tiles {
		p.armTile(st)
	}
	return p.M.RunUntil(func() bool {
		for _, st := range p.tiles {
			if !st.done {
				return false
			}
		}
		return true
	}, maxCycles)
}

// TileMemoryWords returns the arena words one tile of this program
// uses: nine b² coefficient blocks, the b² iterate and the (b+2)²
// extended output.
func (p *SpMV2DMachine) TileMemoryWords() int {
	return 10*p.B*p.B + (p.B+2)*(p.B+2)
}
