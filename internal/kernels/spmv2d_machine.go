package kernels

import (
	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/stencilc"
	"repro/internal/wse"
)

// NumStencil2DColors is the number of virtual channels the 2D block-halo
// exchange needs: one per direction of travel. Every link is a single
// hop, so — unlike the 3D tessellation — four colors suffice for the
// whole fabric. It is the stencil compiler's directional color count;
// the invariants live there (stencilc.ExchangeColorsDistinct).
const NumStencil2DColors = stencilc.NumExchangeColors

// SpMV2DMachine is the wafer-resident rendering of the paper's §IV-2 2D
// block-halo mapping (the dataflow SpMV2D renders functionally): the
// 9-point box spec compiled by the stencil compiler. Each tile owns a
// b×b block of the mesh and all nine coefficient diagonals for it,
// computes the nine products of one application into an output region
// extended by a one-point halo, and exchanges output halos with its four
// neighbours over fabric streams in two rounds — see stencilc.Program2D
// for the schedule. The golden tests pin this wrapper bit-identical —
// results, cycles, machine fingerprint — to the hand-written generator
// it replaced.
type SpMV2DMachine struct {
	M    *wse.Machine
	Mesh stencil.Mesh2D
	B    int // block edge (even, ≥ 2)

	prog *stencilc.Program2D
}

// NewSpMV2DMachine builds the program for the normalized 9-point
// operator op on machine mach, with b×b blocks. The mesh must tile the
// fabric exactly (NX = b·FabricW, NY = b·FabricH) and b must be even:
// fabric words carry two fp16 elements, and an even b keeps every halo
// transfer (b+2 column elements, b row elements) whole-word so no pad
// element is left behind in a stream buffer between applications.
func NewSpMV2DMachine(mach *wse.Machine, op *stencil.Op9, b int) (*SpMV2DMachine, error) {
	return NewSpMV2DMachineColors(mach, op, b, 0)
}

// NewSpMV2DMachineColors is NewSpMV2DMachine with an explicit base
// color, for composition with other kernels (the 2D BiCGStab driver
// places its AllReduce colors after these four).
func NewSpMV2DMachineColors(mach *wse.Machine, op *stencil.Op9, b int, base fabric.Color) (*SpMV2DMachine, error) {
	prog, err := stencilc.Compile2D(mach, stencilc.Spec9Point(), op, b, base)
	if err != nil {
		return nil, err
	}
	return &SpMV2DMachine{M: mach, Mesh: op.M, B: b, prog: prog}, nil
}

// LoadCoeff (re)loads the nine coefficient diagonals. The solver calls
// this between SIMPLE iterations when the operator changes; routing,
// memory layout and task structure are reused. The operator must have a
// unit centre coefficient and live on the same mesh.
func (p *SpMV2DMachine) LoadCoeff(op *stencil.Op9) { p.prog.LoadCoeff(op) }

// LoadVector scatters the global iterate v (mesh row-major) into the
// tiles' block-local iterate storage.
func (p *SpMV2DMachine) LoadVector(v []fp16.Float16) { p.prog.LoadVector(v) }

// Result gathers the block interiors into a global mesh-indexed vector.
func (p *SpMV2DMachine) Result() []fp16.Float16 { return p.prog.Result() }

// Arm prepares every tile for one application without stepping the
// machine — for lock-step engine-equivalence tests that drive Step
// themselves. Run calls it implicitly.
func (p *SpMV2DMachine) Arm() { p.prog.Arm() }

// Run executes one SpMV application under cycle simulation and returns
// the cycles it took: every tile's local task, x round and y round have
// completed and all halo streams are fully drained.
func (p *SpMV2DMachine) Run(maxCycles int64) (int64, error) { return p.prog.Run(maxCycles) }

// TileMemoryWords returns the arena words one tile of this program
// uses: nine b² coefficient blocks, the b² iterate and the (b+2)²
// extended output.
func (p *SpMV2DMachine) TileMemoryWords() int { return p.prog.TileMemoryWords() }
