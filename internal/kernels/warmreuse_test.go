package kernels

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// TestWarmSolverReuseBitIdentical pins the contract the service layer's
// machine cache rests on: a solver that already ran one solve, handed a
// new operator via LoadCoeff, produces exactly the bits a freshly built
// machine produces — for both the Listing 1 FIFO pipeline and the
// halo-exchange variant.
func TestWarmSolverReuseBitIdentical(t *testing.T) {
	m := stencil.Mesh{NX: 4, NY: 4, NZ: 8}
	opA := stencil.NewOp7Half(normalized(t, stencil.Poisson(m, 1)))
	opB := stencil.NewOp7Half(normalized(t, stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)))
	bvec := testRHS(m, 11)
	const iters = 4

	type build func(*wse.Machine, *stencil.Op7Half) (*BiCGStabWSE, error)
	for _, tc := range []struct {
		name  string
		build build
		// The Listing 1 pipeline's FIFO accumulation order is
		// timing-dependent, so warm reuse must rewind the machine to its
		// pristine capture between solves; the halo variant's fixed
		// program order is reuse-stable without it.
		reset bool
	}{
		{"listing1", NewBiCGStabWSE, true},
		{"halo", NewBiCGStabWSEHalo, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Reference: a cold machine built directly for opB.
			cold := wse.New(wse.CS1(m.NX, m.NY))
			defer cold.Close()
			ws, err := tc.build(cold, opB)
			if err != nil {
				t.Fatal(err)
			}
			refX, refSt, err := ws.Solve(bvec, WSEOptions{MaxIter: iters})
			if err != nil {
				t.Fatal(err)
			}

			// Warm path: build for opA, run a solve, swap to opB, run again.
			warm := wse.New(wse.CS1(m.NX, m.NY))
			defer warm.Close()
			wsWarm, err := tc.build(warm, opA)
			if err != nil {
				t.Fatal(err)
			}
			pristine, err := wsWarm.Pristine()
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := wsWarm.Solve(bvec, WSEOptions{MaxIter: 2}); err != nil {
				t.Fatal(err)
			}
			if tc.reset {
				if err := wsWarm.Reset(pristine); err != nil {
					t.Fatal(err)
				}
			}
			if err := wsWarm.LoadCoeff(opB); err != nil {
				t.Fatal(err)
			}
			gotX, gotSt, err := wsWarm.Solve(bvec, WSEOptions{MaxIter: iters})
			if err != nil {
				t.Fatal(err)
			}

			if len(gotSt.History) != len(refSt.History) {
				t.Fatalf("warm solve: %d history entries, cold has %d", len(gotSt.History), len(refSt.History))
			}
			for i := range refSt.History {
				if math.Float64bits(gotSt.History[i]) != math.Float64bits(refSt.History[i]) {
					t.Fatalf("history[%d] = %.17g after reuse, cold machine has %.17g",
						i, gotSt.History[i], refSt.History[i])
				}
			}
			for i := range refX {
				if gotX[i] != refX[i] {
					t.Fatalf("x[%d] = %v after reuse, cold machine has %v", i, gotX[i], refX[i])
				}
			}

			// A mesh mismatch must be refused, not corrupt the program.
			wrong := stencil.NewOp7Half(normalized(t, stencil.Poisson(stencil.Mesh{NX: 4, NY: 4, NZ: 10}, 1)))
			if err := wsWarm.LoadCoeff(wrong); err == nil {
				t.Fatal("LoadCoeff accepted an operator for a different mesh")
			}
		})
	}
}

func normalized(t *testing.T, op *stencil.Op7) *stencil.Op7 {
	t.Helper()
	norm, _ := op.Normalize()
	return norm
}

func testRHS(m stencil.Mesh, seed int64) []fp16.Float16 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]fp16.Float16, m.N())
	for i := range b {
		b[i] = fp16.FromFloat64(rng.Float64())
	}
	return b
}
