package kernels

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// TestCheckpointResume is the crash-recovery golden: a solve that is
// checkpointed, "crashed" (machine discarded), and resumed on a freshly
// constructed machine — same or different stepping engine — must
// reproduce the uninterrupted solve's residual history, solution,
// cycle account and final machine Fingerprint bit for bit. Both wafer
// SpMV engines (Listing 1 and the block-halo variant) are covered.
func TestCheckpointResume(t *testing.T) {
	const iters = 9 // both engines run this many iterations breakdown-free
	const every = 4
	m := stencil.Mesh{NX: 4, NY: 4, NZ: 8}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1.0, 0.1)
	norm, diag := op.Normalize()
	rng := rand.New(rand.NewSource(11))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.Float64()
	}
	b64 := make([]float64, m.N())
	op.Apply(b64, xe)
	b16 := fp16.FromFloat64Slice(stencil.ScaleRHS(b64, diag))
	h := stencil.NewOp7Half(norm)

	engines := []struct {
		name string
		mk   func(mach *wse.Machine) (*BiCGStabWSE, error)
	}{
		{"listing1", func(mach *wse.Machine) (*BiCGStabWSE, error) { return NewBiCGStabWSE(mach, h) }},
		{"halo", func(mach *wse.Machine) (*BiCGStabWSE, error) { return NewBiCGStabWSEHalo(mach, h) }},
	}
	newMach := func(e wse.Engine) *wse.Machine {
		cfg := wse.CS1(m.NX, m.NY)
		cfg.Engine = e
		if e == wse.EngineSharded {
			cfg.Workers = 4
		}
		return wse.New(cfg)
	}

	// The snapshot cross-engine matrix: checkpoints cut mid-solve under
	// one stepping engine are restored and finished under others, and
	// every combination must land on the uninterrupted reference solve
	// bit for bit — residual history, solution, cycle account, final
	// machine fingerprint. The batched capture gets the full resume
	// matrix; the sequential capture pins the reverse direction
	// (snapshot under sequential, restore under batched).
	captures := []struct {
		eng    wse.Engine
		resume []wse.Engine
	}{
		{wse.EngineSequential, []wse.Engine{wse.EngineSharded, wse.EngineBatched}},
		{wse.EngineBatched, []wse.Engine{wse.EngineSequential, wse.EngineSharded,
			wse.EngineBatched, wse.EngineFastForward}},
	}

	for _, eng := range engines {
		t.Run(eng.name, func(t *testing.T) {
			// Uninterrupted reference solve.
			mach0 := newMach(wse.EngineSequential)
			defer mach0.Close()
			w0, err := eng.mk(mach0)
			if err != nil {
				t.Fatal(err)
			}
			x0, st0, err := w0.Solve(b16, WSEOptions{MaxIter: iters})
			if err != nil {
				t.Fatal(err)
			}
			if st0.Breakdown != "" {
				t.Fatalf("reference solve broke down (%q); pick a problem that runs all %d iterations", st0.Breakdown, iters)
			}
			if len(st0.History) != iters {
				t.Fatalf("reference history has %d entries, want %d", len(st0.History), iters)
			}

			for _, cap := range captures {
				t.Run("cap_"+cap.eng.String(), func(t *testing.T) {
					// Checkpointing must be an observation, not a perturbation:
					// the same solve with checkpoints enabled matches the
					// reference — which, for a batched-engine capture, also
					// makes the whole solve an engine-equivalence check.
					mach1 := newMach(cap.eng)
					defer mach1.Close()
					w1, err := eng.mk(mach1)
					if err != nil {
						t.Fatal(err)
					}
					var blobs [][]byte
					x1, st1, err := w1.Solve(b16, WSEOptions{MaxIter: iters, CheckpointEvery: every,
						Checkpoint: func(b []byte) error {
							blobs = append(blobs, append([]byte{}, b...))
							return nil
						}})
					if err != nil {
						t.Fatal(err)
					}
					if want := (iters - 1) / every; len(blobs) != want {
						t.Fatalf("captured %d checkpoints, want %d", len(blobs), want)
					}
					compareRuns(t, "checkpointed", x1, st1, x0, st0)
					if f0, f1 := mach0.Fingerprint(), mach1.Fingerprint(); f0 != f1 {
						t.Errorf("checkpointing perturbed the machine: fingerprint %#x vs %#x", f1, f0)
					}

					// Crash and resume: every captured checkpoint, restored
					// onto a fresh machine under every resume engine, must
					// finish the solve bit-identically.
					for bi, blob := range blobs {
						for _, re := range cap.resume {
							t.Run(fmt.Sprintf("blob%d_%s", bi, re), func(t *testing.T) {
								mach2 := newMach(re)
								defer mach2.Close()
								w2, err := eng.mk(mach2)
								if err != nil {
									t.Fatal(err)
								}
								x2, st2, err := w2.Solve(b16, WSEOptions{MaxIter: iters, Resume: blob})
								if err != nil {
									t.Fatal(err)
								}
								compareRuns(t, "resumed", x2, st2, x0, st0)
								if f0, f2 := mach0.Fingerprint(), mach2.Fingerprint(); f0 != f2 {
									t.Errorf("resumed machine fingerprint %#x, uninterrupted solve has %#x", f2, f0)
								}
							})
						}
					}
				})
			}
		})
	}
}

// compareRuns requires two solves to agree bit for bit: residual
// history, solution, and the deterministic cycle account.
func compareRuns(t *testing.T, name string, x []fp16.Float16, st WSEStats, xRef []fp16.Float16, stRef WSEStats) {
	t.Helper()
	if st.Breakdown != stRef.Breakdown || st.Iterations != stRef.Iterations || st.Converged != stRef.Converged {
		t.Errorf("%s: status (%d, %v, %q), reference (%d, %v, %q)", name,
			st.Iterations, st.Converged, st.Breakdown, stRef.Iterations, stRef.Converged, stRef.Breakdown)
	}
	if len(st.History) != len(stRef.History) {
		t.Fatalf("%s: %d history entries, reference has %d", name, len(st.History), len(stRef.History))
	}
	for i := range stRef.History {
		if math.Float64bits(st.History[i]) != math.Float64bits(stRef.History[i]) {
			t.Errorf("%s: history[%d] = %.17g, reference has %.17g", name, i, st.History[i], stRef.History[i])
		}
	}
	for i := range xRef {
		if x[i].Bits() != xRef[i].Bits() {
			t.Fatalf("%s: x[%d] = %#x, reference has %#x", name, i, x[i].Bits(), xRef[i].Bits())
		}
	}
	if st.Cycles != stRef.Cycles {
		t.Errorf("%s: cycle account %+v, reference %+v", name, st.Cycles, stRef.Cycles)
	}
	if st.SetupCycles != stRef.SetupCycles {
		t.Errorf("%s: setup cycles %d, reference %d", name, st.SetupCycles, stRef.SetupCycles)
	}
	if math.Float64bits(st.MaxARDrift) != math.Float64bits(stRef.MaxARDrift) {
		t.Errorf("%s: max AllReduce drift %g, reference %g", name, st.MaxARDrift, stRef.MaxARDrift)
	}
}

// TestCheckpointErrors pins the checkpoint/resume refusal paths.
func TestCheckpointErrors(t *testing.T) {
	m := stencil.Mesh{NX: 2, NY: 2, NZ: 4}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1.0, 0.05)
	norm, diag := op.Normalize()
	b64 := make([]float64, m.N())
	for i := range b64 {
		b64[i] = 1
	}
	b16 := fp16.FromFloat64Slice(stencil.ScaleRHS(b64, diag))
	h := stencil.NewOp7Half(norm)

	// A checkpoint callback error aborts the solve, wrapped.
	mach := wse.New(wse.CS1(m.NX, m.NY))
	defer mach.Close()
	w, err := NewBiCGStabWSE(mach, h)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("disk full")
	var blob []byte
	_, _, err = w.Solve(b16, WSEOptions{MaxIter: 6, CheckpointEvery: 2,
		Checkpoint: func(b []byte) error {
			blob = append([]byte{}, b...)
			return sentinel
		}})
	if !errors.Is(err, sentinel) {
		t.Errorf("checkpoint callback error not propagated: %v", err)
	}
	if blob == nil {
		t.Fatal("no checkpoint captured")
	}

	// Corrupt blobs are rejected. (A nil Resume means "no resume", so
	// the shortest corrupt input is the empty non-nil slice.)
	for _, bad := range [][]byte{{}, blob[:8], flipCkpt(blob)} {
		mach2 := wse.New(wse.CS1(m.NX, m.NY))
		w2, err := NewBiCGStabWSE(mach2, h)
		if err != nil {
			mach2.Close()
			t.Fatal(err)
		}
		if _, _, err := w2.Solve(b16, WSEOptions{MaxIter: 6, Resume: bad}); err == nil {
			t.Errorf("resume from corrupt checkpoint (%d bytes) succeeded", len(bad))
		}
		mach2.Close()
	}

	// A checkpoint from one program cannot restore into another: the
	// machine shape differs and Restore rejects it.
	other := wse.New(wse.CS1(4, 4))
	defer other.Close()
	m2 := stencil.Mesh{NX: 4, NY: 4, NZ: 4}
	op2 := stencil.MomentumLike(m2, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1.0, 0.05)
	norm2, _ := op2.Normalize()
	w3, err := NewBiCGStabWSE(other, stencil.NewOp7Half(norm2))
	if err != nil {
		t.Fatal(err)
	}
	b2 := make([]fp16.Float16, m2.N())
	for i := range b2 {
		b2[i] = fp16.FromFloat64(1)
	}
	if _, _, err := w3.Solve(b2, WSEOptions{MaxIter: 6, Resume: blob}); err == nil {
		t.Error("resume with a mismatched program succeeded")
	}
}

func flipCkpt(b []byte) []byte {
	c := append([]byte{}, b...)
	c[len(c)/2] ^= 0xff
	return c
}
