//go:build !race

package kernels

// raceEnabled is false in ordinary builds; see race_on_test.go.
const raceEnabled = false
