package kernels

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/tensor"
	"repro/internal/wse"
)

// FIFODepth is the capacity, in elements, of each of the five product
// FIFOs ("float16 term[5][20]; We used a FIFO depth of 20").
const FIFODepth = 20

// SpMV3D is the wafer program of Listing 1: u = A·v for a unit-diagonal
// 7-point stencil, with the X×Y mesh mapped across the fabric and the Z
// dimension local to each tile. Each application exchanges iterate
// vectors with the four neighbours over the Figure 5 tessellation
// routing, multiplies the six stored diagonals in background threads,
// forwards products through hardware FIFOs to a summation task, and
// signals completion through the two-way-barrier task tree.
type SpMV3D struct {
	M    *wse.Machine
	Mesh stencil.Mesh
	Op   *stencil.Op7Half

	tiles []*spmvTile
}

// direction indexes the four neighbour streams.
type direction int

const (
	dirXP direction = iota // stream from the +x neighbour
	dirXM
	dirYP
	dirYM
)

var dirPort = [4]fabric.Port{dirXP: fabric.East, dirXM: fabric.West, dirYP: fabric.South, dirYM: fabric.North}
var dirDelta = [4][2]int{dirXP: {1, 0}, dirXM: {-1, 0}, dirYP: {0, 1}, dirYM: {0, -1}}

type spmvTile struct {
	tile *wse.Tile
	x, y int

	// Arena offsets (the listing's memory objects).
	offXP, offXM, offYP, offYM int // coefficient vectors, length Z
	offZP                      int // length Z   (shift-aligned ZM diagonal)
	offZM                      int // length Z+1 (shift-aligned ZP diagonal)
	offV                       int // iterate, length Z+1 (v[Z] = 0 pad)
	offU                       int // result, length Z+2 (u[0], u[Z+1] scratch)
	offZero                    int // one zero word for boundary streams

	fifos [5]*tensor.FIFO // xp, xm, yp, ym, zp

	bufs [4]*wse.StreamBuf // neighbour streams
	zpBf *wse.StreamBuf    // looped-back local stream, zp consumer
	cBf  *wse.StreamBuf    // looped-back local stream, diagonal consumer

	spmvTask *wse.Task
	sumTask  *wse.Task
	// Completion tree (Listing 1): xdone, ydone, cdone, xydone, xycdone.
	xdone, ydone, cdone, xydone, xycdone *wse.Task

	sumAdds [5]*wse.FIFOAdd

	done bool
}

// NewSpMV3D builds the program for mesh m on machine mach. The mesh's
// X×Y extent must equal the fabric, and Z must be even (two fp16
// elements travel per 32-bit fabric word).
func NewSpMV3D(mach *wse.Machine, op *stencil.Op7Half) (*SpMV3D, error) {
	m := op.M
	if m.NX != mach.Cfg.FabricW || m.NY != mach.Cfg.FabricH {
		return nil, fmt.Errorf("kernels: mesh %v does not match fabric %dx%d",
			m, mach.Cfg.FabricW, mach.Cfg.FabricH)
	}
	if m.NZ%2 != 0 {
		return nil, fmt.Errorf("kernels: Z=%d must be even (two fp16 per fabric word)", m.NZ)
	}
	p := &SpMV3D{M: mach, Mesh: m, Op: op}
	z := m.NZ

	// Static routing: every tile broadcasts its iterate on its own color
	// to all existing neighbours and loops it back to itself; neighbour
	// broadcasts arrive on four distinct colors and route to the core.
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			at := fabric.Coord{X: x, Y: y}
			own := BroadcastColor(x, y)
			// Broadcast fans out to every existing neighbour and loops
			// back through the ramp for the z and diagonal streams.
			outs := fabric.Mask(fabric.Ramp)
			for d := 0; d < 4; d++ {
				nx, ny := x+dirDelta[d][0], y+dirDelta[d][1]
				if nx >= 0 && nx < m.NX && ny >= 0 && ny < m.NY {
					outs |= fabric.Mask(portToward(dirDelta[d][0], dirDelta[d][1]))
				}
			}
			p.M.Fab.SetRoute(at, fabric.Ramp, own, outs)
			for d := 0; d < 4; d++ {
				nx, ny := x+dirDelta[d][0], y+dirDelta[d][1]
				if nx >= 0 && nx < m.NX && ny >= 0 && ny < m.NY {
					p.M.Fab.SetRoute(at, dirPort[d], BroadcastColor(nx, ny), fabric.Mask(fabric.Ramp))
				}
			}
		}
	}

	// Per-tile memory, FIFOs, stream buffers, tasks.
	p.tiles = make([]*spmvTile, m.NX*m.NY)
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			tl := mach.TileAt(fabric.Coord{X: x, Y: y})
			st := &spmvTile{tile: tl, x: x, y: y}
			a := tl.Arena
			var err error
			alloc := func(name string, n int) int {
				if err != nil {
					return 0
				}
				var base int
				base, err = a.Alloc(name, n)
				return base
			}
			st.offXP = alloc("xp", z)
			st.offXM = alloc("xm", z)
			st.offYP = alloc("yp", z)
			st.offYM = alloc("ym", z)
			st.offZP = alloc("zp", z)
			st.offZM = alloc("zm", z+1)
			st.offV = alloc("v", z+1)
			st.offU = alloc("u", z+2)
			st.offZero = alloc("zero", 1)
			fifoBase := alloc("term", 5*FIFODepth)
			if err != nil {
				return nil, fmt.Errorf("kernels: tile (%d,%d): %v", x, y, err)
			}
			for k := 0; k < 5; k++ {
				st.fifos[k] = tensor.NewFIFO(fifoBase+k*FIFODepth, FIFODepth)
			}

			// Stream buffers and color subscriptions.
			own := BroadcastColor(x, y)
			st.zpBf = wse.NewStreamBuf(4)
			st.cBf = wse.NewStreamBuf(4)
			tl.Core.Subscribe(own, st.zpBf)
			tl.Core.Subscribe(own, st.cBf)
			for d := 0; d < 4; d++ {
				nx, ny := x+dirDelta[d][0], y+dirDelta[d][1]
				if nx >= 0 && nx < m.NX && ny >= 0 && ny < m.NY {
					st.bufs[d] = wse.NewStreamBuf(4)
					tl.Core.Subscribe(BroadcastColor(nx, ny), st.bufs[d])
				}
			}

			p.buildTasks(st)
			p.tiles[y*m.NX+x] = st
		}
	}
	if err := p.LoadCoeff(op); err != nil {
		return nil, err
	}
	return p, nil
}

// LoadCoeff rewrites the stored stencil coefficients in place, leaving
// the routing, task structure and memory layout untouched — so a built
// program (and the machine under it) can be reused for a new operator
// on the same mesh, which is what the service layer's warm-machine
// cache does between jobs. The x/y diagonals align directly with the
// meshpoint; the z diagonals are shift-aligned (see the zp_acc/zm_acc
// bases in the listing): the product of v[j] with zm[j] lands at u[j]
// (meshpoint j−1, so zm[j] holds the row-(j−1) ZP coefficient), and the
// product with zp[j] lands at u[j+2] (meshpoint j+1, so zp[j] holds the
// row-(j+1) ZM coefficient).
func (p *SpMV3D) LoadCoeff(op *stencil.Op7Half) error {
	m := p.Mesh
	if op.M != m {
		return fmt.Errorf("kernels: operator mesh %v does not match program mesh %v", op.M, m)
	}
	z := m.NZ
	for _, st := range p.tiles {
		a := st.tile.Arena
		for zz := 0; zz < z; zz++ {
			i := m.Index(st.x, st.y, zz)
			a.Set(st.offXP+zz, op.XP[i])
			a.Set(st.offXM+zz, op.XM[i])
			a.Set(st.offYP+zz, op.YP[i])
			a.Set(st.offYM+zz, op.YM[i])
			if zz+1 < z {
				a.Set(st.offZP+zz, op.ZM[m.Index(st.x, st.y, zz+1)])
			} else {
				a.Set(st.offZP+zz, fp16.Zero) // product targets scratch u[Z+1]
			}
		}
		a.Set(st.offZM+0, fp16.Zero) // product targets scratch u[0]
		for j := 1; j <= z; j++ {
			a.Set(st.offZM+j, op.ZP[m.Index(st.x, st.y, j-1)])
		}
	}
	p.Op = op
	return nil
}

// portToward returns the output port facing the neighbour at offset
// (dx, dy).
func portToward(dx, dy int) fabric.Port {
	switch {
	case dx == 1:
		return fabric.East
	case dx == -1:
		return fabric.West
	case dy == 1:
		return fabric.South
	default:
		return fabric.North
	}
}

// buildTasks registers the task structure of Listing 1 on the tile's core.
func (p *SpMV3D) buildTasks(st *spmvTile) {
	core := st.tile.Core

	// Summation task: five FIFO-draining adds, higher priority "to avoid
	// a race condition with the synchronization task tree".
	st.sumTask = core.AddTask(&wse.Task{Name: "sumtask", Priority: true})

	// Completion tree. All tree tasks start blocked (sched_block in the
	// listing); each re-blocks itself when it fires.
	st.xdone = core.AddTask(&wse.Task{Name: "xdone"})
	st.ydone = core.AddTask(&wse.Task{Name: "ydone"})
	st.cdone = core.AddTask(&wse.Task{Name: "cdone"})
	st.xydone = core.AddTask(&wse.Task{Name: "xydone"})
	st.xycdone = core.AddTask(&wse.Task{Name: "xycdone"})
	for _, t := range []*wse.Task{st.xdone, st.ydone, st.cdone, st.xydone, st.xycdone} {
		core.Block(t)
	}
	st.xdone.OnComplete = func(c *wse.Core) { c.Block(st.xdone); c.Unblock(st.xydone) }
	st.ydone.OnComplete = func(c *wse.Core) { c.Block(st.ydone); c.Activate(st.xydone) }
	st.xydone.OnComplete = func(c *wse.Core) { c.Block(st.xydone); c.Unblock(st.xycdone) }
	st.cdone.OnComplete = func(c *wse.Core) { c.Block(st.cdone); c.Activate(st.xycdone) }
	st.xycdone.OnComplete = func(c *wse.Core) { c.Block(st.xycdone); st.done = true } // activate(bicg)

	// The spmv task body: the zm initialization runs synchronously in the
	// main thread ("completes before any subsequent lines are executed"),
	// then the six consumer threads launch.
	st.spmvTask = core.AddTask(&wse.Task{Name: "spmv"})
}

// armTile prepares one application: zeroes u, wires fresh instruction
// state, and activates the spmv task.
func (p *SpMV3D) armTile(st *spmvTile) {
	z := p.Mesh.NZ
	a := st.tile.Arena
	core := st.tile.Core
	for i := 0; i < z+2; i++ {
		a.Set(st.offU+i, fp16.Zero)
	}
	a.Set(st.offV+z, fp16.Zero)  // iterate pad
	a.Set(st.offZero, fp16.Zero) // boundary stream source

	// Launch the broadcast thread (thread slot 5: c_tx[] = v1[]).
	core.LaunchThread(5, "c_tx", &wse.SendMem{
		Color: BroadcastColor(st.x, st.y),
		Src:   tensor.Vec1D(st.offV, z),
		Arena: a,
		Total: z,
	}, nil)

	// sumtask: five FIFO adds aliasing u. Accumulator bases follow the
	// listing: xp/xm/yp/ym at u+1, zp at u+2.
	accBase := [5]int{st.offU + 1, st.offU + 1, st.offU + 1, st.offU + 1, st.offU + 2}
	instrs := make([]wse.Instr, 5)
	for k := 0; k < 5; k++ {
		h := &wse.FIFOAdd{FIFO: st.fifos[k], Acc: tensor.Vec1D(accBase[k], z), Arena: a, Total: z}
		st.sumAdds[k] = h
		instrs[k] = h
		st.fifos[k].OnPush = func() { core.Activate(st.sumTask) }
	}
	st.sumTask.Instrs = instrs

	// spmv task: zm initialization, then thread launches.
	zmOp := &wse.MemOp{
		Kind:  wse.OpMul,
		Arena: a,
		Dst:   tensor.Vec1D(st.offU, z+1),
		A:     tensor.Vec1D(st.offV, z+1),
		B:     tensor.Vec1D(st.offZM, z+1),
	}
	st.spmvTask.Instrs = []wse.Instr{zmOp}
	st.spmvTask.OnComplete = func(c *wse.Core) { p.launchConsumers(st) }
	st.done = false
	core.Activate(st.spmvTask)
}

// launchConsumers starts the five multiplier threads and the diagonal add
// thread (threads 0–4 and 6 of the listing). Boundary tiles without a
// neighbour in some direction multiply a zero stream from memory instead,
// the zero-padding idiom of the listing.
func (p *SpMV3D) launchConsumers(st *spmvTile) {
	z := p.Mesh.NZ
	a := st.tile.Arena
	core := st.tile.Core

	coeff := [4]int{dirXP: st.offXP, dirXM: st.offXM, dirYP: st.offYP, dirYM: st.offYM}
	trig := [4]func(c *wse.Core){
		dirXP: func(c *wse.Core) { c.Activate(st.xdone) },
		dirXM: func(c *wse.Core) { c.Unblock(st.xdone) },
		dirYP: func(c *wse.Core) { c.Activate(st.ydone) },
		dirYM: func(c *wse.Core) { c.Unblock(st.ydone) },
	}
	names := [4]string{"xp_rx", "xm_rx", "yp_rx", "ym_rx"}
	for d := 0; d < 4; d++ {
		var src wse.ElemSource
		if st.bufs[d] != nil {
			src = wse.StreamSource{B: st.bufs[d]}
		} else {
			// Zero-stride descriptor over one zero word: the padded
			// boundary stream.
			zd := tensor.Strided(st.offZero, z, 0)
			src = wse.MemSource{A: a, D: &zd}
		}
		core.LaunchThread(d, names[d], &wse.MulToFIFO{
			Src:   src,
			Coeff: tensor.Vec1D(coeff[d], z),
			FIFO:  st.fifos[d],
			Arena: a,
			Total: z,
		}, trig[d])
	}
	// Thread 4: zp from the looped-back local stream.
	core.LaunchThread(4, "zp_rx", &wse.MulToFIFO{
		Src:   wse.StreamSource{B: st.zpBf},
		Coeff: tensor.Vec1D(st.offZP, z),
		FIFO:  st.fifos[4],
		Arena: a,
		Total: z,
	}, func(c *wse.Core) { c.Activate(st.cdone) })
	// Thread 6: main diagonal, no multiply (c_acc[] = c_acc[] + c_rx[]).
	core.LaunchThread(6, "c_rx", &wse.StreamAdd{
		Src:   wse.StreamSource{B: st.cBf},
		Acc:   tensor.Vec1D(st.offU+1, z),
		Arena: a,
		Total: z,
	}, func(c *wse.Core) { c.Unblock(st.cdone) })
}

// LoadVector scatters the global iterate v (mesh-indexed) into the tiles.
func (p *SpMV3D) LoadVector(v []fp16.Float16) {
	m := p.Mesh
	for _, st := range p.tiles {
		for z := 0; z < m.NZ; z++ {
			st.tile.Arena.Set(st.offV+z, v[m.Index(st.x, st.y, z)])
		}
	}
}

// Result gathers the global result u.
func (p *SpMV3D) Result() []fp16.Float16 {
	m := p.Mesh
	out := make([]fp16.Float16, m.N())
	for _, st := range p.tiles {
		for z := 0; z < m.NZ; z++ {
			out[m.Index(st.x, st.y, z)] = st.tile.Arena.At(st.offU + 1 + z)
		}
	}
	return out
}

// Run executes one SpMV application and returns the cycles it took.
// Completion means every tile's barrier tree fired and every FIFO add
// accumulated all Z elements (the priority summation task drains before
// control returns to the solver, as in the paper).
func (p *SpMV3D) Run(maxCycles int64) (int64, error) {
	for _, st := range p.tiles {
		p.armTile(st)
	}
	return p.M.RunUntil(func() bool {
		for _, st := range p.tiles {
			if !st.done {
				return false
			}
			for _, h := range st.sumAdds {
				if !h.Complete() {
					return false
				}
			}
		}
		return true
	}, maxCycles)
}

// TileMemoryWords returns the arena words one tile of this program uses,
// for the memory-capacity experiment.
func (p *SpMV3D) TileMemoryWords() int {
	z := p.Mesh.NZ
	return 4*z + z + (z + 1) + (z + 1) + (z + 2) + 1 + 5*FIFODepth
}
