package kernels

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/tensor"
	"repro/internal/wse"
)

// wseBiCG is the wafer BiCGStab engine shared by the 3D (Listing 1) and
// 2D (block-halo) solvers: the Algorithm 1 control flow over per-tile
// solver vectors of length n, with a pluggable wafer SpMV. Dots run as
// the mixed-precision inner-product instruction on every tile; the
// Figure 6 AllReduce still combines the partials on the fabric and is
// cycle-accounted, but the scalar the solver consumes is the exactly
// rounded combine (cluster.ExactSum32 over the per-tile partials in
// canonical tile order), so the wafer backend is bit-comparable to the
// host, rank-parallel and multi-wafer backends. The fabric tree-order
// value is cross-checked against the exact one within the paper's
// AllReduce error model on every dot; every vector update runs as a
// SIMD tensor instruction.
//
// The driver sequences phases globally (the real machine chains them
// with local task triggers; the difference is a few cycles of
// task-start latency per phase, absorbed into the performance model's
// overhead calibration). Host-side copies between the solver vectors
// and the SpMV program's iterate/result buffers model descriptor
// re-aliasing and cost no cycles.
type wseBiCG struct {
	m *wse.Machine
	n int // per-tile vector length (Z for the 3D mapping, b² for 2D)

	// spmv applies the operator: src and dst are per-tile arena offsets
	// of n-element vectors; the implementation accumulates its simulated
	// cycles into acc.
	spmv func(src, dst []int, acc *int64) error

	ar *AllReduce

	// per-tile solver vector offsets (each n elements)
	offX, offR0, offR, offP, offS, offQ, offY []int

	partial   []float32 // per-tile dot partials
	phaseTask []*wse.Task
	phaseDone []bool

	// Reusable per-tile phase instructions: a paper-scale solve runs
	// hundreds of thousands of tiles through a dozen-plus phases per
	// iteration, so allocating fresh instruction objects per phase
	// (hundreds of MB per solve) would dominate wall time with GC work.
	// Each phase instead rewrites these in place; phaseTask[i].Instrs
	// permanently aliases phaseSlot[i].
	dotIn     []wse.DotMixed
	axpyIn    []wse.MemOp
	phaseSlot [][]wse.Instr

	// maxDrift tracks the largest observed |fabric AllReduce − exact|
	// across all dots of the current solve, as a fraction of the paper
	// error-model bound (so ≤ 1 means within model).
	maxDrift float64
}

// newWSEBiCG allocates the seven solver vectors on every tile, the
// AllReduce routing (six colors starting at arBase) and the reusable
// per-tile phase task.
func newWSEBiCG(m *wse.Machine, perTile int, arBase fabric.Color, spmv func(src, dst []int, acc *int64) error) (*wseBiCG, error) {
	ar, err := NewAllReduce(m, arBase)
	if err != nil {
		return nil, err
	}
	b := &wseBiCG{m: m, n: perTile, ar: ar, spmv: spmv}
	n := m.Cfg.Cores()
	b.offX = make([]int, n)
	b.offR0 = make([]int, n)
	b.offR = make([]int, n)
	b.offP = make([]int, n)
	b.offS = make([]int, n)
	b.offQ = make([]int, n)
	b.offY = make([]int, n)
	b.partial = make([]float32, n)
	for i, t := range m.Tiles {
		var err error
		alloc := func(name string, off *[]int) {
			if err != nil {
				return
			}
			(*off)[i], err = t.Arena.Alloc(name, perTile)
		}
		alloc("x", &b.offX)
		alloc("r0", &b.offR0)
		alloc("r", &b.offR)
		alloc("p", &b.offP)
		alloc("s", &b.offS)
		alloc("q", &b.offQ)
		alloc("y", &b.offY)
		if err != nil {
			return nil, fmt.Errorf("kernels: tile %v: %v", t.Coord, err)
		}
	}
	// One reusable phase task per tile: the driver rewrites each phase's
	// instruction in place and re-activates it.
	b.phaseTask = make([]*wse.Task, n)
	b.phaseDone = make([]bool, n)
	b.dotIn = make([]wse.DotMixed, n)
	b.axpyIn = make([]wse.MemOp, n)
	b.phaseSlot = make([][]wse.Instr, n)
	for i, t := range m.Tiles {
		i := i
		task := &wse.Task{Name: "phase"}
		task.OnComplete = func(c *wse.Core) { b.phaseDone[i] = true }
		t.Core.AddTask(task)
		b.phaseTask[i] = task
		b.dotIn[i] = wse.DotMixed{Arena: t.Arena, Out: &b.partial[i]}
		b.axpyIn[i] = wse.MemOp{Arena: t.Arena}
		b.phaseSlot[i] = make([]wse.Instr, 1)
	}
	return b, nil
}

// solve runs BiCGStab for the right-hand side bvec with a zero initial
// guess. index maps (tile, element) to the global vector position — the
// Z-column layout for the 3D mapping, the b×b block layout for 2D.
func (w *wseBiCG) solve(bvec []fp16.Float16, index func(tile, elem int) int, opts WSEOptions) ([]fp16.Float16, WSEStats, error) {
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100
	}
	n := w.n

	var (
		st      WSEStats
		bnorm   float64
		rho     float64
		startIt int
	)
	w.maxDrift = 0

	if opts.Resume != nil {
		// Resume a checkpointed solve: the machine snapshot restores
		// every solver vector (they live in the tile arenas), the
		// checkpoint header restores the scalar recurrence state, and the
		// loop continues at the captured iteration — bit-identically to
		// the uninterrupted solve.
		cp, err := DecodeWSECheckpoint(opts.Resume)
		if err != nil {
			return nil, st, err
		}
		snap, err := wse.UnmarshalSnapshot(cp.Machine)
		if err != nil {
			return nil, st, err
		}
		if err := w.m.Restore(snap); err != nil {
			return nil, st, err
		}
		st = cp.Stats
		st.PerIteration = PhaseCycles{}
		bnorm, rho, startIt = cp.BNorm, cp.Rho, cp.Iter
		w.maxDrift = cp.Stats.MaxARDrift
	} else {
		// Initialize: x = 0, r = r0 = p = b (zero initial guess).
		for i, t := range w.m.Tiles {
			a := t.Arena
			for e := 0; e < n; e++ {
				v := bvec[index(i, e)]
				a.Set(w.offX[i]+e, fp16.Zero)
				a.Set(w.offR0[i]+e, v)
				a.Set(w.offR[i]+e, v)
				a.Set(w.offP[i]+e, v)
			}
		}

		// ‖b‖²: a real dot + AllReduce on the machine, accounted as setup
		// (outside the per-iteration cycle model, like the other backends).
		bb, scyc, err := w.dotAllReduce(w.offR0, w.offR0)
		if err != nil {
			return nil, st, err
		}
		st.SetupCycles = scyc[0] + scyc[1]
		bnorm = math.Sqrt(bb)
		if bnorm == 0 {
			return nil, st, fmt.Errorf("kernels: zero right-hand side")
		}
		rho = bb // (r0, r0)
	}

	finish := func() ([]fp16.Float16, WSEStats, error) {
		st.MaxARDrift = w.maxDrift
		if st.Iterations > 0 {
			it := int64(st.Iterations)
			st.PerIteration = PhaseCycles{
				SpMV:      st.Cycles.SpMV / it,
				Dot:       st.Cycles.Dot / it,
				AllReduce: st.Cycles.AllReduce / it,
				Axpy:      st.Cycles.Axpy / it,
			}
		}
		out := make([]fp16.Float16, len(bvec))
		for i, t := range w.m.Tiles {
			for e := 0; e < n; e++ {
				out[index(i, e)] = t.Arena.At(w.offX[i] + e)
			}
		}
		return out, st, nil
	}

	for it := startIt; it < opts.MaxIter; it++ {
		// Cancellation unwinds here, between iterations: the fabric is
		// idle and every solver vector is consistent, so the caller may
		// reset, snapshot, or reuse the machine.
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, st, fmt.Errorf("kernels: solve canceled: %w", err)
			}
		}
		if opts.Checkpoint != nil && opts.CheckpointEvery > 0 &&
			it > startIt && it%opts.CheckpointEvery == 0 {
			st.MaxARDrift = w.maxDrift
			blob, err := w.checkpoint(it, bnorm, rho, st)
			if err != nil {
				return nil, st, err
			}
			if err := opts.Checkpoint(blob); err != nil {
				return nil, st, fmt.Errorf("kernels: checkpoint callback: %w", err)
			}
		}
		st.Iterations = it + 1

		// s := A p
		if err := w.spmv(w.offP, w.offS, &st.Cycles.SpMV); err != nil {
			return nil, st, err
		}
		// α := (r0, r) / (r0, s)
		r0s, cyc, err := w.dotAllReduce(w.offR0, w.offS)
		if err != nil {
			return nil, st, err
		}
		w.accountDot(&st.Cycles, cyc)
		if r0s == 0 {
			st.Breakdown = "r0·Ap = 0"
			return finish()
		}
		alpha := rho / r0s

		// q := r − α s
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile, op *wse.MemOp) {
			*op = wse.MemOp{Kind: wse.OpFMA, Arena: t.Arena, S: fp16.FromFloat64(-alpha),
				Dst: tensor.Vec1D(w.offQ[i], n), A: tensor.Vec1D(w.offS[i], n), B: tensor.Vec1D(w.offR[i], n)}
		})

		// y := A q
		if err := w.spmv(w.offQ, w.offY, &st.Cycles.SpMV); err != nil {
			return nil, st, err
		}
		// ω := (q, y) / (y, y)
		qy, cyc1, err := w.dotAllReduce(w.offQ, w.offY)
		if err != nil {
			return nil, st, err
		}
		w.accountDot(&st.Cycles, cyc1)
		yy, cyc2, err := w.dotAllReduce(w.offY, w.offY)
		if err != nil {
			return nil, st, err
		}
		w.accountDot(&st.Cycles, cyc2)
		if yy == 0 {
			w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile, op *wse.MemOp) {
				*op = wse.MemOp{Kind: wse.OpAxpy, Arena: t.Arena, S: fp16.FromFloat64(alpha),
					Dst: tensor.Vec1D(w.offX[i], n), A: tensor.Vec1D(w.offP[i], n)}
			})
			st.Breakdown = "y·y = 0"
			return finish()
		}
		omega := qy / yy

		// x := x + α p + ω q  (two AXPYs)
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile, op *wse.MemOp) {
			*op = wse.MemOp{Kind: wse.OpAxpy, Arena: t.Arena, S: fp16.FromFloat64(alpha),
				Dst: tensor.Vec1D(w.offX[i], n), A: tensor.Vec1D(w.offP[i], n)}
		})
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile, op *wse.MemOp) {
			*op = wse.MemOp{Kind: wse.OpAxpy, Arena: t.Arena, S: fp16.FromFloat64(omega),
				Dst: tensor.Vec1D(w.offX[i], n), A: tensor.Vec1D(w.offQ[i], n)}
		})
		// r := q − ω y
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile, op *wse.MemOp) {
			*op = wse.MemOp{Kind: wse.OpFMA, Arena: t.Arena, S: fp16.FromFloat64(-omega),
				Dst: tensor.Vec1D(w.offR[i], n), A: tensor.Vec1D(w.offY[i], n), B: tensor.Vec1D(w.offQ[i], n)}
		})

		rel := w.residualNorm(w.offR) / bnorm
		st.History = append(st.History, rel)
		if opts.Progress != nil {
			opts.Progress(it+1, rel)
		}
		if opts.Tol > 0 && rel <= opts.Tol {
			st.Converged = true
			return finish()
		}

		// β := (α/ω) (r0, r_new)/(r0, r_old)
		rr, cyc3, err := w.dotAllReduce(w.offR0, w.offR)
		if err != nil {
			return nil, st, err
		}
		w.accountDot(&st.Cycles, cyc3)
		if rho == 0 || omega == 0 {
			st.Breakdown = "rho or omega = 0"
			return finish()
		}
		beta := (alpha / omega) * (rr / rho)
		rho = rr

		// p := r + β (p − ω s)  (two AXPYs)
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile, op *wse.MemOp) {
			*op = wse.MemOp{Kind: wse.OpAxpy, Arena: t.Arena, S: fp16.FromFloat64(-omega),
				Dst: tensor.Vec1D(w.offP[i], n), A: tensor.Vec1D(w.offS[i], n)}
		})
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile, op *wse.MemOp) {
			*op = wse.MemOp{Kind: wse.OpXPAY, Arena: t.Arena, S: fp16.FromFloat64(beta),
				Dst: tensor.Vec1D(w.offP[i], n), A: tensor.Vec1D(w.offR[i], n)}
		})
	}
	st.Converged = opts.Tol > 0 && len(st.History) > 0 && st.History[len(st.History)-1] <= opts.Tol
	return finish()
}

// dotAllReduce runs the local mixed-precision dot on every tile, then
// the wafer AllReduce over the float32 partials. The on-fabric
// tree-order sum is cycle-accounted and cross-checked, but the value
// returned to the solver is the exactly rounded combine over the
// partials: w.partial is in fabric row-major tile order, which is
// exactly the canonical global order of the per-tile subvectors, so
// every backend that sums the same partials exactly gets the same bits.
// It returns the exact sum and the combined cycles (local dot phase +
// allreduce).
func (w *wseBiCG) dotAllReduce(a, b []int) (float64, [2]int64, error) {
	for i, t := range w.m.Tiles {
		w.partial[i] = 0
		w.dotIn[i] = wse.DotMixed{
			A: tensor.Vec1D(a[i], w.n), B: tensor.Vec1D(b[i], w.n),
			Arena: t.Arena, Out: &w.partial[i],
		}
		w.phaseSlot[i][0] = &w.dotIn[i]
	}
	dotCycles := w.runPhase()
	res, err := w.ar.Run(w.partial, 1<<20)
	if err != nil {
		return 0, [2]int64{}, err
	}
	exact := cluster.ExactSum32(w.partial)

	// Cross-check the fabric value against the exact one within the
	// paper's AllReduce error model (allreduce_test.go): a violation
	// means the simulated reduction tree is broken, not mere rounding.
	drift := math.Abs(float64(res.Sum) - exact)
	if drift > 0 {
		nt := float64(len(w.partial))
		tol := nt * MaxAbs(w.partial) * 1.2e-7 * (1 + math.Log2(nt+1))
		switch {
		case math.IsNaN(drift) || math.IsInf(drift, 0) || tol == 0:
			// Non-finite data (overflowed partials): the error model does
			// not apply; the solver will surface the non-finite residual.
		case drift > tol:
			return 0, [2]int64{}, fmt.Errorf(
				"kernels: fabric AllReduce %v drifted %.3g from exact sum %v (error-model bound %.3g)",
				res.Sum, drift, exact, tol)
		default:
			if rel := drift / tol; rel > w.maxDrift {
				w.maxDrift = rel
			}
		}
	}
	return exact, [2]int64{dotCycles, res.Cycles}, nil
}

// checkpoint snapshots the (idle, between-iterations) machine and
// packages it with the scalar recurrence state into an encoded
// WSECheckpoint.
func (w *wseBiCG) checkpoint(it int, bnorm, rho float64, st WSEStats) ([]byte, error) {
	snap, err := w.m.Snapshot()
	if err != nil {
		return nil, err
	}
	blob, err := snap.MarshalBinary()
	if err != nil {
		return nil, err
	}
	cp := &WSECheckpoint{Iter: it, BNorm: bnorm, Rho: rho, Stats: st, Machine: blob}
	return cp.Encode()
}

func (w *wseBiCG) accountDot(c *PhaseCycles, cyc [2]int64) {
	c.Dot += cyc[0]
	c.AllReduce += cyc[1]
}

// runAxpyPhase runs one AXPY-class instruction on every tile; set
// rewrites tile i's reusable MemOp in place (whole-value assignment,
// which also rewinds it).
func (w *wseBiCG) runAxpyPhase(acc *int64, set func(i int, t *wse.Tile, op *wse.MemOp)) {
	for i, t := range w.m.Tiles {
		set(i, t, &w.axpyIn[i])
		w.phaseSlot[i][0] = &w.axpyIn[i]
	}
	*acc += w.runPhase()
}

// runPhase executes each tile's phaseSlot instruction as a task and
// steps the machine until all complete.
func (w *wseBiCG) runPhase() int64 {
	for i, t := range w.m.Tiles {
		w.phaseDone[i] = false
		w.phaseTask[i].Instrs = w.phaseSlot[i]
		t.Core.Activate(w.phaseTask[i])
	}
	// Dot and AXPY phases are pure per-tile compute with statically
	// predictable duration; under EngineFastForward the machine skips
	// straight to the phase-end state (bit- and cycle-identically —
	// see wse.FastForwardTasks). Any ineligibility falls through to
	// cycle stepping.
	if w.m.FastForwardEnabled() {
		if cycles, ok := w.m.FastForwardTasks(w.phaseTask); ok {
			return cycles
		}
	}
	cycles, err := w.m.RunUntil(func() bool {
		for _, d := range w.phaseDone {
			if !d {
				return false
			}
		}
		return true
	}, 1<<24)
	if err != nil {
		panic(err) // local instructions cannot wedge; a failure is a simulator bug
	}
	return cycles
}

// residualNorm computes ‖r‖₂ in float64 (diagnostic only).
func (w *wseBiCG) residualNorm(off []int) float64 {
	var s float64
	for i, t := range w.m.Tiles {
		for e := 0; e < w.n; e++ {
			v := t.Arena.At(off[i] + e).Float64()
			s += v * v
		}
	}
	return math.Sqrt(s)
}
