package kernels

import (
	"fmt"
	"math"

	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/tensor"
	"repro/internal/wse"
)

// wseBiCG is the wafer BiCGStab engine shared by the 3D (Listing 1) and
// 2D (block-halo) solvers: the Algorithm 1 control flow over per-tile
// solver vectors of length n, with a pluggable wafer SpMV. Dots run as
// the mixed-precision inner-product instruction on every tile with
// partials combined by the Figure 6 AllReduce at 32 bits; every vector
// update runs as a SIMD tensor instruction.
//
// The driver sequences phases globally (the real machine chains them
// with local task triggers; the difference is a few cycles of
// task-start latency per phase, absorbed into the performance model's
// overhead calibration). Host-side copies between the solver vectors
// and the SpMV program's iterate/result buffers model descriptor
// re-aliasing and cost no cycles.
type wseBiCG struct {
	m *wse.Machine
	n int // per-tile vector length (Z for the 3D mapping, b² for 2D)

	// spmv applies the operator: src and dst are per-tile arena offsets
	// of n-element vectors; the implementation accumulates its simulated
	// cycles into acc.
	spmv func(src, dst []int, acc *int64) error

	ar *AllReduce

	// per-tile solver vector offsets (each n elements)
	offX, offR0, offR, offP, offS, offQ, offY []int

	partial   []float32 // per-tile dot partials
	phaseTask []*wse.Task
	phaseDone []bool
}

// newWSEBiCG allocates the seven solver vectors on every tile, the
// AllReduce routing (six colors starting at arBase) and the reusable
// per-tile phase task.
func newWSEBiCG(m *wse.Machine, perTile int, arBase fabric.Color, spmv func(src, dst []int, acc *int64) error) (*wseBiCG, error) {
	ar, err := NewAllReduce(m, arBase)
	if err != nil {
		return nil, err
	}
	b := &wseBiCG{m: m, n: perTile, ar: ar, spmv: spmv}
	n := m.Cfg.Cores()
	b.offX = make([]int, n)
	b.offR0 = make([]int, n)
	b.offR = make([]int, n)
	b.offP = make([]int, n)
	b.offS = make([]int, n)
	b.offQ = make([]int, n)
	b.offY = make([]int, n)
	b.partial = make([]float32, n)
	for i, t := range m.Tiles {
		var err error
		alloc := func(name string, off *[]int) {
			if err != nil {
				return
			}
			(*off)[i], err = t.Arena.Alloc(name, perTile)
		}
		alloc("x", &b.offX)
		alloc("r0", &b.offR0)
		alloc("r", &b.offR)
		alloc("p", &b.offP)
		alloc("s", &b.offS)
		alloc("q", &b.offQ)
		alloc("y", &b.offY)
		if err != nil {
			return nil, fmt.Errorf("kernels: tile %v: %v", t.Coord, err)
		}
	}
	// One reusable phase task per tile: the driver swaps in each phase's
	// instruction and re-activates it.
	b.phaseTask = make([]*wse.Task, n)
	b.phaseDone = make([]bool, n)
	for i, t := range m.Tiles {
		i := i
		task := &wse.Task{Name: "phase"}
		task.OnComplete = func(c *wse.Core) { b.phaseDone[i] = true }
		t.Core.AddTask(task)
		b.phaseTask[i] = task
	}
	return b, nil
}

// solve runs BiCGStab for the right-hand side bvec with a zero initial
// guess. index maps (tile, element) to the global vector position — the
// Z-column layout for the 3D mapping, the b×b block layout for 2D.
func (w *wseBiCG) solve(bvec []fp16.Float16, index func(tile, elem int) int, opts WSEOptions) ([]fp16.Float16, WSEStats, error) {
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100
	}
	n := w.n

	// Initialize: x = 0, r = r0 = p = b (zero initial guess).
	for i, t := range w.m.Tiles {
		a := t.Arena
		for e := 0; e < n; e++ {
			v := bvec[index(i, e)]
			a.Set(w.offX[i]+e, fp16.Zero)
			a.Set(w.offR0[i]+e, v)
			a.Set(w.offR[i]+e, v)
			a.Set(w.offP[i]+e, v)
		}
	}
	st := WSEStats{}

	bb, _, err := w.dotAllReduce(w.offR0, w.offR0) // ‖b‖² (setup, not counted)
	if err != nil {
		return nil, st, err
	}
	bnorm := math.Sqrt(float64(bb))
	if bnorm == 0 {
		return nil, st, fmt.Errorf("kernels: zero right-hand side")
	}
	rho := float64(bb) // (r0, r0)

	finish := func() ([]fp16.Float16, WSEStats, error) {
		if st.Iterations > 0 {
			it := int64(st.Iterations)
			st.PerIteration = PhaseCycles{
				SpMV:      st.Cycles.SpMV / it,
				Dot:       st.Cycles.Dot / it,
				AllReduce: st.Cycles.AllReduce / it,
				Axpy:      st.Cycles.Axpy / it,
			}
		}
		out := make([]fp16.Float16, len(bvec))
		for i, t := range w.m.Tiles {
			for e := 0; e < n; e++ {
				out[index(i, e)] = t.Arena.At(w.offX[i] + e)
			}
		}
		return out, st, nil
	}

	for it := 0; it < opts.MaxIter; it++ {
		st.Iterations = it + 1

		// s := A p
		if err := w.spmv(w.offP, w.offS, &st.Cycles.SpMV); err != nil {
			return nil, st, err
		}
		// α := (r0, r) / (r0, s)
		r0s, cyc, err := w.dotAllReduce(w.offR0, w.offS)
		if err != nil {
			return nil, st, err
		}
		w.accountDot(&st.Cycles, cyc)
		if r0s == 0 {
			st.Breakdown = "r0·Ap = 0"
			return finish()
		}
		alpha := rho / float64(r0s)

		// q := r − α s
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
			return &wse.MemOp{Kind: wse.OpFMA, Arena: t.Arena, S: fp16.FromFloat64(-alpha),
				Dst: tensor.Vec1D(w.offQ[i], n), A: tensor.Vec1D(w.offS[i], n), B: tensor.Vec1D(w.offR[i], n)}
		})

		// y := A q
		if err := w.spmv(w.offQ, w.offY, &st.Cycles.SpMV); err != nil {
			return nil, st, err
		}
		// ω := (q, y) / (y, y)
		qy, cyc1, err := w.dotAllReduce(w.offQ, w.offY)
		if err != nil {
			return nil, st, err
		}
		w.accountDot(&st.Cycles, cyc1)
		yy, cyc2, err := w.dotAllReduce(w.offY, w.offY)
		if err != nil {
			return nil, st, err
		}
		w.accountDot(&st.Cycles, cyc2)
		if yy == 0 {
			w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
				return &wse.MemOp{Kind: wse.OpAxpy, Arena: t.Arena, S: fp16.FromFloat64(alpha),
					Dst: tensor.Vec1D(w.offX[i], n), A: tensor.Vec1D(w.offP[i], n)}
			})
			st.Breakdown = "y·y = 0"
			return finish()
		}
		omega := float64(qy) / float64(yy)

		// x := x + α p + ω q  (two AXPYs)
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
			return &wse.MemOp{Kind: wse.OpAxpy, Arena: t.Arena, S: fp16.FromFloat64(alpha),
				Dst: tensor.Vec1D(w.offX[i], n), A: tensor.Vec1D(w.offP[i], n)}
		})
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
			return &wse.MemOp{Kind: wse.OpAxpy, Arena: t.Arena, S: fp16.FromFloat64(omega),
				Dst: tensor.Vec1D(w.offX[i], n), A: tensor.Vec1D(w.offQ[i], n)}
		})
		// r := q − ω y
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
			return &wse.MemOp{Kind: wse.OpFMA, Arena: t.Arena, S: fp16.FromFloat64(-omega),
				Dst: tensor.Vec1D(w.offR[i], n), A: tensor.Vec1D(w.offY[i], n), B: tensor.Vec1D(w.offQ[i], n)}
		})

		rel := w.residualNorm(w.offR) / bnorm
		st.History = append(st.History, rel)
		if opts.Tol > 0 && rel <= opts.Tol {
			st.Converged = true
			return finish()
		}

		// β := (α/ω) (r0, r_new)/(r0, r_old)
		rr, cyc3, err := w.dotAllReduce(w.offR0, w.offR)
		if err != nil {
			return nil, st, err
		}
		w.accountDot(&st.Cycles, cyc3)
		if rho == 0 || omega == 0 {
			st.Breakdown = "rho or omega = 0"
			return finish()
		}
		beta := (alpha / omega) * (float64(rr) / rho)
		rho = float64(rr)

		// p := r + β (p − ω s)  (two AXPYs)
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
			return &wse.MemOp{Kind: wse.OpAxpy, Arena: t.Arena, S: fp16.FromFloat64(-omega),
				Dst: tensor.Vec1D(w.offP[i], n), A: tensor.Vec1D(w.offS[i], n)}
		})
		w.runAxpyPhase(&st.Cycles.Axpy, func(i int, t *wse.Tile) wse.Instr {
			return &wse.MemOp{Kind: wse.OpXPAY, Arena: t.Arena, S: fp16.FromFloat64(beta),
				Dst: tensor.Vec1D(w.offP[i], n), A: tensor.Vec1D(w.offR[i], n)}
		})
	}
	st.Converged = opts.Tol > 0 && len(st.History) > 0 && st.History[len(st.History)-1] <= opts.Tol
	return finish()
}

// dotAllReduce runs the local mixed-precision dot on every tile, then
// the wafer AllReduce over the float32 partials. It returns the reduced
// value and the combined cycles (local dot phase + allreduce).
func (w *wseBiCG) dotAllReduce(a, b []int) (float32, [2]int64, error) {
	instrs := make([]wse.Instr, len(w.m.Tiles))
	for i, t := range w.m.Tiles {
		w.partial[i] = 0
		instrs[i] = &wse.DotMixed{
			A: tensor.Vec1D(a[i], w.n), B: tensor.Vec1D(b[i], w.n),
			Arena: t.Arena, Out: &w.partial[i],
		}
	}
	dotCycles := w.runPhase(instrs)
	res, err := w.ar.Run(w.partial, 1<<20)
	if err != nil {
		return 0, [2]int64{}, err
	}
	return res.Sum, [2]int64{dotCycles, res.Cycles}, nil
}

func (w *wseBiCG) accountDot(c *PhaseCycles, cyc [2]int64) {
	c.Dot += cyc[0]
	c.AllReduce += cyc[1]
}

// runAxpyPhase runs one AXPY-class instruction on every tile.
func (w *wseBiCG) runAxpyPhase(acc *int64, build func(i int, t *wse.Tile) wse.Instr) {
	instrs := make([]wse.Instr, len(w.m.Tiles))
	for i, t := range w.m.Tiles {
		instrs[i] = build(i, t)
	}
	*acc += w.runPhase(instrs)
}

// runPhase executes one instruction per tile as a task and steps the
// machine until all complete.
func (w *wseBiCG) runPhase(instrs []wse.Instr) int64 {
	for i, t := range w.m.Tiles {
		w.phaseDone[i] = false
		w.phaseTask[i].Instrs = []wse.Instr{instrs[i]}
		t.Core.Activate(w.phaseTask[i])
	}
	cycles, err := w.m.RunUntil(func() bool {
		for _, d := range w.phaseDone {
			if !d {
				return false
			}
		}
		return true
	}, 1<<24)
	if err != nil {
		panic(err) // local instructions cannot wedge; a failure is a simulator bug
	}
	return cycles
}

// residualNorm computes ‖r‖₂ in float64 (diagnostic only).
func (w *wseBiCG) residualNorm(off []int) float64 {
	var s float64
	for i, t := range w.m.Tiles {
		for e := 0; e < w.n; e++ {
			v := t.Arena.At(off[i] + e).Float64()
			s += v * v
		}
	}
	return math.Sqrt(s)
}
