package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// TestSpMV2DMachineMatchesFunctional pins the bit-identity contract
// between the wafer-resident block-halo program and its functional
// rendering: same scatter order (diagonal-major), same Mul-then-Add
// rounding, same two-round halo fold — so the cycle-simulated result
// must equal SpMV2D.Apply exactly, element for element.
func TestSpMV2DMachineMatchesFunctional(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, tc := range []struct{ tx, ty, b int }{
		{2, 2, 2}, {3, 2, 4}, {1, 4, 2}, {4, 1, 2}, {2, 3, 6}, {1, 1, 4},
	} {
		m := stencil.Mesh2D{NX: tc.tx * tc.b, NY: tc.ty * tc.b}
		norm, _ := stencil.Random9(m, 1.3, rng).Normalize9()
		fn, err := NewSpMV2D(norm, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		mach := wse.New(wse.CS1(tc.tx, tc.ty))
		prog, err := NewSpMV2DMachine(mach, norm, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		src := randomHalfVector(m.N(), rng)
		want := make([]fp16.Float16, m.N())
		fn.Apply(want, src)

		prog.LoadVector(src)
		cycles, err := prog.Run(1 << 22)
		if err != nil {
			t.Fatalf("%d×%d b=%d: %v", tc.tx, tc.ty, tc.b, err)
		}
		got := prog.Result()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%d×%d b=%d: element %d: machine %v, functional %v",
					tc.tx, tc.ty, tc.b, i, got[i], want[i])
			}
		}
		t.Logf("%d×%d tiles, b=%d: %d cycles/application", tc.tx, tc.ty, tc.b, cycles)
		if !mach.AllIdle() {
			t.Errorf("%d×%d b=%d: machine not idle after the application", tc.tx, tc.ty, tc.b)
		}
		mach.Close()
	}
}

// TestSpMV2DMachineRepeatedApplications checks the arm/re-run path the
// solver leans on: consecutive applications (including a coefficient
// reload) produce exactly the functional results with no residue from
// earlier rounds in any stream.
func TestSpMV2DMachineRepeatedApplications(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := stencil.Mesh2D{NX: 8, NY: 8}
	normA, _ := stencil.Random9(m, 1.4, rng).Normalize9()
	normB, _ := stencil.Random9(m, 1.6, rng).Normalize9()
	mach := wse.New(wse.CS1(4, 4))
	defer mach.Close()
	prog, err := NewSpMV2DMachine(mach, normA, 2)
	if err != nil {
		t.Fatal(err)
	}
	fnA, _ := NewSpMV2D(normA, 2)
	fnB, _ := NewSpMV2D(normB, 2)
	for round := 0; round < 3; round++ {
		fn, norm := fnA, normA
		if round == 2 {
			fn, norm = fnB, normB
			prog.LoadCoeff(norm)
		}
		src := randomHalfVector(m.N(), rng)
		want := make([]fp16.Float16, m.N())
		fn.Apply(want, src)
		prog.LoadVector(src)
		if _, err := prog.Run(1 << 22); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got := prog.Result()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: element %d: machine %v, functional %v", round, i, got[i], want[i])
			}
		}
	}
}

// TestSpMV2DMachineShardedIdentical steps a sequential and a sharded
// machine running the same block-halo program in lockstep and requires
// the per-cycle Machine.Fingerprint (full core + fabric architectural
// state) to match every cycle — the engine-equivalence contract for the
// new 2D program.
func TestSpMV2DMachineShardedIdentical(t *testing.T) {
	withProcs(t, 4)
	rng := rand.New(rand.NewSource(29))
	m := stencil.Mesh2D{NX: 12, NY: 8}
	norm, _ := stencil.Random9(m, 1.5, rng).Normalize9()
	mseq, msh := shardedMachines(3, 2, 4)
	defer mseq.Close()
	defer msh.Close()
	pa, err := NewSpMV2DMachine(mseq, norm, 4)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewSpMV2DMachine(msh, norm, 4)
	if err != nil {
		t.Fatal(err)
	}
	src := randomHalfVector(m.N(), rng)
	pa.LoadVector(src)
	pb.LoadVector(src)
	pa.Arm()
	pb.Arm()
	for cyc := 0; cyc < 400; cyc++ {
		mseq.Step()
		msh.Step()
		if fa, fb := mseq.Fingerprint(), msh.Fingerprint(); fa != fb {
			t.Fatalf("cycle %d: machine fingerprints diverge: seq %#x, %s %#x",
				cyc, fa, msh.Fab.StepperName(), fb)
		}
	}
	ra, rb := pa.Result(), pb.Result()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("result element %d differs: %v vs %v", i, ra[i], rb[i])
		}
	}
	if a, b := mseq.AllIdle(), msh.AllIdle(); !a || !b {
		t.Fatalf("machines not idle after 400 cycles: seq %v sharded %v", a, b)
	}
}

// TestBiCGStab2DWSESolves checks the full 2D wafer solver: the residual
// history decreases and the solution approximately solves the system.
func TestBiCGStab2DWSESolves(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m := stencil.Mesh2D{NX: 8, NY: 8}
	norm, _ := stencil.Poisson9(m, 1).Normalize9()
	mach := wse.New(wse.CS1(4, 4))
	defer mach.Close()
	s, err := NewBiCGStab2DWSE(mach, norm, 2)
	if err != nil {
		t.Fatal(err)
	}
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.Float64() - 0.5
	}
	b64 := make([]float64, m.N())
	norm.Apply(b64, xe)
	x, st, err := s.Solve(fp16.FromFloat64Slice(b64), WSEOptions{MaxIter: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.History) == 0 {
		t.Fatal("no residual history")
	}
	first, last := st.History[0], st.History[len(st.History)-1]
	t.Logf("relative residual %g -> %g over %d iterations (%d cycles/iter)",
		first, last, st.Iterations, st.PerIteration.Total())
	if last > 0.05 {
		t.Errorf("relative residual %g after %d iterations; want < 0.05 (fp16 plateau ~1e-2)", last, st.Iterations)
	}
	// The solution must reproduce the right-hand side to fp16 accuracy.
	ax := make([]float64, m.N())
	norm.Apply(ax, fp16.ToFloat64Slice(x))
	var num, den float64
	for i := range ax {
		d := ax[i] - b64[i]
		num += d * d
		den += b64[i] * b64[i]
	}
	if rel := num / den; rel > 0.01 {
		t.Errorf("true residual² %g too large", rel)
	}
}
