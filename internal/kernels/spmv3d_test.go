package kernels

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/wse"
)

func TestBroadcastColorTessellation(t *testing.T) {
	// Figure 5's property must hold at every tile of any fabric.
	for y := 0; y < 30; y++ {
		for x := 0; x < 30; x++ {
			if !StencilColorsDistinct(x, y) {
				t.Fatalf("color clash at (%d,%d)", x, y)
			}
		}
	}
}

// randomHalfVector returns n fp16 values uniform in (-1, 1).
func randomHalfVector(n int, rng *rand.Rand) []fp16.Float16 {
	v := make([]fp16.Float16, n)
	for i := range v {
		v[i] = fp16.FromFloat64(rng.Float64()*2 - 1)
	}
	return v
}

// newSpMVProgram builds a machine + program for a random diagonally
// dominant normalized operator.
func newSpMVProgram(t *testing.T, nx, ny, nz int, seed int64) (*SpMV3D, *stencil.Op7Half, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := stencil.Mesh{NX: nx, NY: ny, NZ: nz}
	op := stencil.RandomDiagDominant(m, 1.5, rng)
	norm, _ := op.Normalize()
	h := stencil.NewOp7Half(norm)
	mach := wse.New(wse.CS1(nx, ny))
	p, err := NewSpMV3D(mach, h)
	if err != nil {
		t.Fatal(err)
	}
	return p, h, rng
}

// spmvErrorBound is the elementwise tolerance between the wafer result
// (nondeterministic fp16 accumulation order) and the sequential fp16
// reference: ~7 roundings of magnitude ≤ sum of |terms|.
func spmvErrorBound(h *stencil.Op7Half, v []fp16.Float16, i int) float64 {
	m := h.M
	x, y, z := m.Coords(i)
	sum := math.Abs(v[i].Float64())
	add := func(c fp16.Float16, nx, ny, nz int) {
		if m.In(nx, ny, nz) {
			sum += math.Abs(c.Float64() * v[m.Index(nx, ny, nz)].Float64())
		}
	}
	add(h.XP[i], x+1, y, z)
	add(h.XM[i], x-1, y, z)
	add(h.YP[i], x, y+1, z)
	add(h.YM[i], x, y-1, z)
	add(h.ZP[i], x, y, z+1)
	add(h.ZM[i], x, y, z-1)
	return 8 * fp16.Epsilon * sum
}

func checkSpMVResult(t *testing.T, p *SpMV3D, h *stencil.Op7Half, v []fp16.Float16) {
	t.Helper()
	want := make([]fp16.Float16, len(v))
	h.Apply(want, v)
	got := p.Result()
	bad := 0
	for i := range want {
		tol := spmvErrorBound(h, v, i)
		if d := math.Abs(got[i].Float64() - want[i].Float64()); d > tol {
			bad++
			if bad < 5 {
				x, y, z := h.M.Coords(i)
				t.Errorf("u[%d] (tile %d,%d z=%d) = %v, want %v (±%g)",
					i, x, y, z, got[i], want[i], tol)
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d/%d elements out of tolerance", bad, len(want))
	}
}

func TestSpMV3DMatchesReference(t *testing.T) {
	p, h, rng := newSpMVProgram(t, 4, 3, 8, 11)
	v := make([]fp16.Float16, h.M.N())
	for i := range v {
		v[i] = fp16.FromFloat64(rng.Float64()*2 - 1)
	}
	p.LoadVector(v)
	cycles, err := p.Run(100000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("SpMV on %v: %d cycles (%.1f cycles per z-element)", h.M, cycles, float64(cycles)/float64(h.M.NZ))
	checkSpMVResult(t, p, h, v)
}

func TestSpMV3DRepeatedApplications(t *testing.T) {
	// The program must be reusable: BiCGStab applies it twice per
	// iteration with different vectors.
	p, h, rng := newSpMVProgram(t, 3, 3, 6, 5)
	for rep := 0; rep < 3; rep++ {
		v := make([]fp16.Float16, h.M.N())
		for i := range v {
			v[i] = fp16.FromFloat64(rng.NormFloat64())
		}
		p.LoadVector(v)
		if _, err := p.Run(100000); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		checkSpMVResult(t, p, h, v)
	}
}

func TestSpMV3DSingleTile(t *testing.T) {
	// A 1×1 fabric exercises only the z-direction and loopback paths.
	p, h, rng := newSpMVProgram(t, 1, 1, 16, 7)
	v := make([]fp16.Float16, h.M.N())
	for i := range v {
		v[i] = fp16.FromFloat64(rng.Float64())
	}
	p.LoadVector(v)
	if _, err := p.Run(100000); err != nil {
		t.Fatal(err)
	}
	checkSpMVResult(t, p, h, v)
}

func TestSpMV3DPoisson(t *testing.T) {
	// The paper's actual operator class: diagonally preconditioned
	// Poisson, uniform coefficients −1/6.
	rng := rand.New(rand.NewSource(13))
	m := stencil.Mesh{NX: 5, NY: 4, NZ: 10}
	norm, _ := stencil.Poisson(m, 1).Normalize()
	h := stencil.NewOp7Half(norm)
	mach := wse.New(wse.CS1(m.NX, m.NY))
	p, err := NewSpMV3D(mach, h)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]fp16.Float16, m.N())
	for i := range v {
		v[i] = fp16.FromFloat64(rng.Float64())
	}
	p.LoadVector(v)
	if _, err := p.Run(100000); err != nil {
		t.Fatal(err)
	}
	checkSpMVResult(t, p, h, v)
}

func TestSpMV3DZMustBeEven(t *testing.T) {
	m := stencil.Mesh{NX: 2, NY: 2, NZ: 5}
	norm, _ := stencil.Poisson(m, 1).Normalize()
	mach := wse.New(wse.CS1(2, 2))
	if _, err := NewSpMV3D(mach, stencil.NewOp7Half(norm)); err == nil {
		t.Error("odd Z should be rejected")
	}
}

func TestSpMV3DMeshFabricMismatch(t *testing.T) {
	m := stencil.Mesh{NX: 3, NY: 2, NZ: 4}
	norm, _ := stencil.Poisson(m, 1).Normalize()
	mach := wse.New(wse.CS1(2, 2))
	if _, err := NewSpMV3D(mach, stencil.NewOp7Half(norm)); err == nil {
		t.Error("mesh/fabric mismatch should be rejected")
	}
}

func TestSpMV3DCycleScaling(t *testing.T) {
	// Cycles per application should scale ~linearly in Z (stream-bound),
	// the relation the performance model extrapolates with.
	if testing.Short() {
		t.Skip("scaling sweep in short mode")
	}
	cyclesAt := func(z int) float64 {
		p, h, rng := newSpMVProgram(t, 4, 4, z, 3)
		v := make([]fp16.Float16, h.M.N())
		for i := range v {
			v[i] = fp16.FromFloat64(rng.Float64())
		}
		p.LoadVector(v)
		c, err := p.Run(1000000)
		if err != nil {
			t.Fatal(err)
		}
		return float64(c)
	}
	c32 := cyclesAt(32)
	c128 := cyclesAt(128)
	ratio := c128 / c32
	if ratio < 2.5 || ratio > 6 {
		t.Errorf("cycles(Z=128)/cycles(Z=32) = %.2f, want ~4 (linear in Z)", ratio)
	}
}
