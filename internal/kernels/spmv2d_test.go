package kernels

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/stencil"
)

func ref9(op *stencil.Op9, src []fp16.Float16, coeff *[9][]fp16.Float16) []float64 {
	// Reference: float64 apply of the fp16-rounded operator on the
	// fp16-rounded input.
	m := op.M
	out := make([]float64, m.N())
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			i := m.Index(x, y)
			var s float64
			for k, off := range stencil.Off9 {
				nx, ny := x+off[0], y+off[1]
				if m.In(nx, ny) {
					s += coeff[k][i].Float64() * src[m.Index(nx, ny)].Float64()
				}
			}
			out[i] = s
		}
	}
	return out
}

func TestSpMV2DMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, tc := range []struct{ nx, ny, b int }{
		{8, 8, 4}, {16, 8, 4}, {12, 12, 3}, {8, 8, 8}, {6, 4, 2},
	} {
		m := stencil.Mesh2D{NX: tc.nx, NY: tc.ny}
		op := stencil.Random9(m, 1.3, rng)
		norm, _ := op.Normalize9()
		p, err := NewSpMV2D(norm, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		src := randomHalfVector(m.N(), rng)
		dst := make([]fp16.Float16, m.N())
		p.Apply(dst, src)
		want := ref9(norm, src, &p.coeff)
		for i := range want {
			// 9 terms, each |coeff| <= ~1, |src| <= 1: bound ~ 10ε·Σ|terms|.
			tol := 10 * fp16.Epsilon * 10
			if d := math.Abs(dst[i].Float64() - want[i]); d > tol {
				t.Fatalf("%dx%d b=%d: dst[%d] = %g, want %g (±%g)",
					tc.nx, tc.ny, tc.b, i, dst[i].Float64(), want[i], tol)
			}
		}
	}
}

func TestSpMV2DPoisson9(t *testing.T) {
	m := stencil.Mesh2D{NX: 16, NY: 16}
	norm, _ := stencil.Poisson9(m, 1).Normalize9()
	p, err := NewSpMV2D(norm, 4)
	if err != nil {
		t.Fatal(err)
	}
	// A constant vector: interior rows of the normalized 9-point Laplacian
	// sum to zero, so interior results vanish to fp16 accuracy.
	src := make([]fp16.Float16, m.N())
	for i := range src {
		src[i] = fp16.One
	}
	dst := make([]fp16.Float16, m.N())
	p.Apply(dst, src)
	i := m.Index(8, 8)
	if v := math.Abs(dst[i].Float64()); v > 0.01 {
		t.Errorf("interior Laplacian of constant = %g, want ~0", v)
	}
	// Boundary cells see the truncated stencil: nonzero.
	if dst[m.Index(0, 0)].IsZero() {
		t.Error("corner result should be nonzero under truncation")
	}
}

func TestSpMV2DHaloAddCount(t *testing.T) {
	// The redundant-work accounting that drives the overhead model:
	// (b+2) adds per interior x-interface side, b per y-interface side.
	m := stencil.Mesh2D{NX: 12, NY: 8}
	norm, _ := stencil.Poisson9(m, 1).Normalize9()
	b := 4
	p, err := NewSpMV2D(norm, b)
	if err != nil {
		t.Fatal(err)
	}
	src := randomHalfVector(m.N(), rand.New(rand.NewSource(2)))
	dst := make([]fp16.Float16, m.N())
	p.Apply(dst, src)
	tx, ty := 3, 2
	want := int64(2*(tx-1)*ty*(b+2) + 2*tx*(ty-1)*b)
	if p.HaloAdds != want {
		t.Errorf("HaloAdds = %d, want %d", p.HaloAdds, want)
	}
}

func TestSpMV2DRejectsBadBlocking(t *testing.T) {
	m := stencil.Mesh2D{NX: 10, NY: 10}
	norm, _ := stencil.Poisson9(m, 1).Normalize9()
	if _, err := NewSpMV2D(norm, 3); err == nil {
		t.Error("non-dividing block size should be rejected")
	}
	if _, err := NewSpMV2D(stencil.Poisson9(m, 1), 5); err == nil {
		t.Error("non-normalized operator should be rejected")
	}
}

func TestSpMV2DLinearity(t *testing.T) {
	// Halos must not double-count: A(u+v) ≈ Au + Av within fp16 error.
	m := stencil.Mesh2D{NX: 8, NY: 8}
	rng := rand.New(rand.NewSource(7))
	norm, _ := stencil.Random9(m, 1.5, rng).Normalize9()
	p, err := NewSpMV2D(norm, 4)
	if err != nil {
		t.Fatal(err)
	}
	u := randomHalfVector(m.N(), rng)
	v := randomHalfVector(m.N(), rng)
	sum := make([]fp16.Float16, m.N())
	for i := range sum {
		sum[i] = fp16.Add(u[i], v[i])
	}
	au := make([]fp16.Float16, m.N())
	av := make([]fp16.Float16, m.N())
	asum := make([]fp16.Float16, m.N())
	p.Apply(au, u)
	p.Apply(av, v)
	p.Apply(asum, sum)
	for i := range sum {
		want := au[i].Float64() + av[i].Float64()
		if d := math.Abs(asum[i].Float64() - want); d > 0.05 {
			t.Fatalf("linearity violated at %d: %g vs %g", i, asum[i].Float64(), want)
		}
	}
}
