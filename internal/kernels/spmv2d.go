package kernels

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/fp16"
	"repro/internal/stencil"
)

// SpMV2D is the paper's sketched 2D mapping (§IV-2): each tile owns a
// b×b block of a 2D mesh and all nine coefficient diagonals for it. One
// application computes all nine products per local point with fused
// multiply-accumulate into an output region extended by a one-point halo,
// then exchanges output halos with the four neighbours in two rounds —
// first ±x columns (height b+2), then ±y rows (width b) — "and in this
// way avoid communication along diagonals of the tile grid".
//
// Tiles execute as goroutines with barrier-synchronized exchange rounds,
// a faithful functional rendering of the dataflow; the cycle/overhead
// accounting lives in perfmodel (Overhead2D, MaxBlock2D).
type SpMV2D struct {
	Mesh   stencil.Mesh2D
	B      int // block edge
	TX, TY int

	coeff [9][]fp16.Float16

	// HaloAdds counts the redundant halo-sum additions of the last Apply,
	// to cross-check the analytic overhead model.
	HaloAdds int64
}

// NewSpMV2D builds the program. The mesh must tile exactly into b×b
// blocks, and the operator must have a unit centre coefficient (diagonal
// preconditioning, as the efficiency analysis assumes).
func NewSpMV2D(op *stencil.Op9, b int) (*SpMV2D, error) {
	m := op.M
	if b <= 0 || m.NX%b != 0 || m.NY%b != 0 {
		return nil, fmt.Errorf("kernels: mesh %dx%d does not tile into %d×%d blocks", m.NX, m.NY, b, b)
	}
	for i := 0; i < m.N(); i++ {
		if op.C[4][i] != 1 {
			return nil, fmt.Errorf("kernels: 2D SpMV requires a unit centre coefficient (got %g at %d)", op.C[4][i], i)
		}
	}
	p := &SpMV2D{Mesh: m, B: b, TX: m.NX / b, TY: m.NY / b}
	for k := range p.coeff {
		p.coeff[k] = fp16.FromFloat64Slice(op.C[k])
	}
	return p, nil
}

// tileExt is a tile's extended output region, (b+2)², with cell (i,j) at
// index (i+1) + (j+1)*(b+2) for i,j in [-1, b].
type tileExt struct {
	b   int
	ext []fp16.Float16
}

func (t *tileExt) at(i, j int) fp16.Float16 { return t.ext[(i+1)+(j+1)*(t.b+2)] }
func (t *tileExt) add(i, j int, v fp16.Float16) {
	idx := (i + 1) + (j+1)*(t.b+2)
	t.ext[idx] = fp16.Add(t.ext[idx], v)
}

// Apply computes dst = A·src in fp16 with the block-halo dataflow.
func (p *SpMV2D) Apply(dst, src []fp16.Float16) {
	b := p.B
	nt := p.TX * p.TY
	exts := make([]*tileExt, nt)
	var haloAdds atomic.Int64

	// Phase 1: local products, scattered into the extended output region.
	// Scatter form of u[P] = Σ_k C[k][P]·v[P+off_k]: source cell S
	// contributes C[k][P]·v[S] to P = S − off_k.
	parallelTiles(nt, func(ti int) {
		tx, ty := ti%p.TX, ti/p.TX
		e := &tileExt{b: b, ext: make([]fp16.Float16, (b+2)*(b+2))}
		for j := 0; j < b; j++ {
			for i := 0; i < b; i++ {
				gx, gy := tx*b+i, ty*b+j
				v := src[p.Mesh.Index(gx, gy)]
				for k, off := range stencil.Off9 {
					dx, dy := -off[0], -off[1]
					px, py := gx+dx, gy+dy
					if !p.Mesh.In(px, py) {
						continue // zero Dirichlet truncation
					}
					c := p.coeff[k][p.Mesh.Index(px, py)]
					e.add(i+dx, j+dy, fp16.Mul(c, v))
				}
			}
		}
		exts[ti] = e
	})

	// Phase 2: ±x output-halo columns (height b+2). Within each
	// sub-round every write targets a distinct element, so tiles can run
	// concurrently without locks.
	parallelTiles(nt, func(ti int) {
		if tx := ti % p.TX; tx > 0 {
			e, left := exts[ti], exts[ti-1]
			for j := -1; j <= b; j++ {
				left.add(b-1, j, e.at(-1, j))
			}
			haloAdds.Add(int64(b + 2))
		}
	})
	parallelTiles(nt, func(ti int) {
		if tx := ti % p.TX; tx < p.TX-1 {
			e, right := exts[ti], exts[ti+1]
			for j := -1; j <= b; j++ {
				right.add(0, j, e.at(b, j))
			}
			haloAdds.Add(int64(b + 2))
		}
	})

	// Phase 3: ±y output-halo rows (width b; corner contributions were
	// folded into the x-halos by phase 2).
	parallelTiles(nt, func(ti int) {
		if ty := ti / p.TX; ty > 0 {
			e, up := exts[ti], exts[ti-p.TX]
			for i := 0; i < b; i++ {
				up.add(i, b-1, e.at(i, -1))
			}
			haloAdds.Add(int64(b))
		}
	})
	parallelTiles(nt, func(ti int) {
		if ty := ti / p.TX; ty < p.TY-1 {
			e, down := exts[ti], exts[ti+p.TX]
			for i := 0; i < b; i++ {
				down.add(i, 0, e.at(i, b))
			}
			haloAdds.Add(int64(b))
		}
	})

	// Gather interiors.
	parallelTiles(nt, func(ti int) {
		tx, ty := ti%p.TX, ti/p.TX
		e := exts[ti]
		for j := 0; j < b; j++ {
			for i := 0; i < b; i++ {
				dst[p.Mesh.Index(tx*b+i, ty*b+j)] = e.at(i, j)
			}
		}
	})
	p.HaloAdds = haloAdds.Load()
}

// parallelTiles runs fn for every tile index concurrently and waits.
func parallelTiles(n int, fn func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}
