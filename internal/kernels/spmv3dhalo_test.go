package kernels

import (
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// newHaloProgram builds a machine covering the whole mesh plus the
// reference operator.
func newHaloProgram(t *testing.T, nx, ny, nz int, seed int64) (*SpMV3DHalo, *stencil.Op7Half, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := stencil.Mesh{NX: nx, NY: ny, NZ: nz}
	op := stencil.RandomDiagDominant(m, 1.5, rng)
	norm, _ := op.Normalize()
	h := stencil.NewOp7Half(norm)
	mach := wse.New(wse.CS1(nx, ny))
	t.Cleanup(mach.Close)
	p, err := NewSpMV3DHalo(mach, h, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return p, h, rng
}

func loadHaloIterate(p *SpMV3DHalo, v []fp16.Float16) {
	m := p.Mesh
	for i := 0; i < p.Tiles(); i++ {
		gx, gy := p.GlobalCoord(i)
		col := p.Iterate(i)
		for z := 0; z < m.NZ; z++ {
			col[z] = v[m.Index(gx, gy, z)]
		}
	}
}

func gatherHaloResult(p *SpMV3DHalo, out []fp16.Float16) {
	m := p.Mesh
	for i := 0; i < p.Tiles(); i++ {
		gx, gy := p.GlobalCoord(i)
		col := p.Result(i)
		for z := 0; z < m.NZ; z++ {
			out[m.Index(gx, gy, z)] = col[z]
		}
	}
}

// TestSpMV3DHaloBitwiseReference is the kernel's headline contract: the
// cycle-simulated result equals stencil.Op7Half.Apply bit for bit —
// not within an error bound, as the Listing 1 kernel's
// timing-dependent FIFO accumulation forces, but exactly, because the
// compute phase replays the reference's rounding order as a fixed
// instruction sequence. This is what makes multiwafer decompositions
// bit-invariant.
func TestSpMV3DHaloBitwiseReference(t *testing.T) {
	p, h, rng := newHaloProgram(t, 5, 4, 8, 21)
	v := randomHalfVector(h.M.N(), rng)
	loadHaloIterate(p, v)
	cycles, err := p.Run(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("halo SpMV on %v: %d cycles", h.M, cycles)

	want := make([]fp16.Float16, h.M.N())
	h.Apply(want, v)
	got := make([]fp16.Float16, h.M.N())
	gatherHaloResult(p, got)
	for i := range want {
		if got[i] != want[i] {
			x, y, z := h.M.Coords(i)
			t.Fatalf("u[%d] (tile %d,%d z=%d) = %v (bits %04x), want %v (bits %04x)",
				i, x, y, z, got[i], got[i].Bits(), want[i], want[i].Bits())
		}
	}
}

// TestSpMV3DHaloSplitBitwise runs the same mesh as two half-fabrics
// with host-injected inter-wafer halos and requires the combined result
// to stay bitwise equal to the reference — the decomposition-invariance
// half of the contract, without the solver on top.
func TestSpMV3DHaloSplitBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	m := stencil.Mesh{NX: 6, NY: 4, NZ: 10}
	op := stencil.RandomDiagDominant(m, 1.5, rng)
	norm, _ := op.Normalize()
	h := stencil.NewOp7Half(norm)

	left := wse.New(wse.CS1(3, 4))
	right := wse.New(wse.CS1(3, 4))
	defer left.Close()
	defer right.Close()
	pl, err := NewSpMV3DHalo(left, h, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewSpMV3DHalo(right, h, 3, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	v := randomHalfVector(m.N(), rng)
	loadHaloIterate(pl, v)
	loadHaloIterate(pr, v)

	// Host edge I/O: ship the boundary columns across the cut at x=3.
	for y := 0; y < 4; y++ {
		li := y*3 + 2 // left tile (2, y) needs the +x halo from right tile (0, y)
		ri := y * 3
		copy(pl.Halo(li, HaloXP), pr.Iterate(ri))
		copy(pr.Halo(ri, HaloXM), pl.Iterate(li))
	}
	if _, err := pl.Run(1 << 20); err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Run(1 << 20); err != nil {
		t.Fatal(err)
	}

	want := make([]fp16.Float16, m.N())
	h.Apply(want, v)
	got := make([]fp16.Float16, m.N())
	gatherHaloResult(pl, got)
	gatherHaloResult(pr, got)
	for i := range want {
		if got[i] != want[i] {
			x, y, z := m.Coords(i)
			t.Fatalf("split u[%d] (%d,%d,%d) = %04x, want %04x", i, x, y, z, got[i].Bits(), want[i].Bits())
		}
	}
}

// TestSpMV3DHaloRepeatedApplications pins reuse: the solver applies the
// program twice per iteration with different vectors.
func TestSpMV3DHaloRepeatedApplications(t *testing.T) {
	p, h, rng := newHaloProgram(t, 3, 3, 6, 5)
	for rep := 0; rep < 3; rep++ {
		v := randomHalfVector(h.M.N(), rng)
		loadHaloIterate(p, v)
		if _, err := p.Run(1 << 20); err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		want := make([]fp16.Float16, h.M.N())
		h.Apply(want, v)
		got := make([]fp16.Float16, h.M.N())
		gatherHaloResult(p, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rep %d: u[%d] = %04x, want %04x", rep, i, got[i].Bits(), want[i].Bits())
			}
		}
	}
}

// TestSpMV3DHaloEngineEquivalence pins the sequential and sharded
// engines to bitwise-equal results and equal cycle counts.
func TestSpMV3DHaloEngineEquivalence(t *testing.T) {
	run := func(workers int) ([]fp16.Float16, int64) {
		rng := rand.New(rand.NewSource(9))
		m := stencil.Mesh{NX: 6, NY: 6, NZ: 8}
		op := stencil.RandomDiagDominant(m, 1.5, rng)
		norm, _ := op.Normalize()
		h := stencil.NewOp7Half(norm)
		cfg := wse.CS1(6, 6)
		cfg.Workers = workers
		mach := wse.New(cfg)
		defer mach.Close()
		p, err := NewSpMV3DHalo(mach, h, 0, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		v := randomHalfVector(m.N(), rng)
		loadHaloIterate(p, v)
		cyc, err := p.Run(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]fp16.Float16, m.N())
		gatherHaloResult(p, out)
		return out, cyc
	}
	seq, cseq := run(1)
	shr, cshr := run(4)
	if cseq != cshr {
		t.Fatalf("cycle counts differ: seq %d, sharded %d", cseq, cshr)
	}
	for i := range seq {
		if seq[i] != shr[i] {
			t.Fatalf("engines differ at %d: %04x vs %04x", i, seq[i].Bits(), shr[i].Bits())
		}
	}
}

func TestSpMV3DHaloRejects(t *testing.T) {
	m := stencil.Mesh{NX: 4, NY: 4, NZ: 5}
	norm, _ := stencil.Poisson(m, 1).Normalize()
	mach := wse.New(wse.CS1(4, 4))
	defer mach.Close()
	if _, err := NewSpMV3DHalo(mach, stencil.NewOp7Half(norm), 0, 0, 0); err == nil {
		t.Error("odd Z should be rejected")
	}
	m2 := stencil.Mesh{NX: 4, NY: 4, NZ: 6}
	norm2, _ := stencil.Poisson(m2, 1).Normalize()
	mach2 := wse.New(wse.CS1(4, 4))
	defer mach2.Close()
	if _, err := NewSpMV3DHalo(mach2, stencil.NewOp7Half(norm2), 1, 0, 0); err == nil {
		t.Error("fabric exceeding the mesh should be rejected")
	}
}
