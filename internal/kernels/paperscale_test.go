package kernels

import (
	"testing"
	"time"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/stencilc"
	"repro/internal/wse"
)

// paperScaleSolve builds the 3-D heat operator on an nx×ny×nz mesh,
// runs a two-iteration BiCGStab solve on a wafer of the matching fabric
// extent under the given engine, and returns everything the
// paper-scale test pins: the solution bits, the solver stats, and the
// machine's final architectural fingerprint.
func paperScaleSolve(t testing.TB, nx, ny, nz int, eng wse.Engine) ([]fp16.Float16, WSEStats, uint64) {
	t.Helper()
	m := wse.New(wse.Config{FabricW: nx, FabricH: ny, Engine: eng})
	defer m.Close()

	mesh := stencil.Mesh{NX: nx, NY: ny, NZ: nz}
	norm, _ := stencil.Heat3D(mesh, 0.1, stencil.Dirichlet).Normalize()
	s, err := NewBiCGStabStarWSE(m, stencilc.Spec7Point(), stencil.NewOpStarHalf(norm))
	if err != nil {
		t.Fatal(err)
	}
	bh := make([]fp16.Float16, mesh.N())
	for i := range bh {
		bh[i] = fp16.FromFloat64(float64((i%23)-11) / 28)
	}
	x, st, err := s.Solve(bh, WSEOptions{MaxIter: 2, Tol: 0})
	if err != nil {
		t.Fatal(err)
	}
	return x, st, m.Fingerprint()
}

// TestPaperScaleBiCGStab runs the paper's headline configuration — a
// full BiCGStab solve of the 3-D heat operator mapped one mesh column
// per PE across the complete 602×595 wafer — inside the ordinary test
// suite, under the hybrid fast-forward engine (wse.EngineFastForward:
// statically-timed compute phases replayed by the perfmodel, memory
// advanced bit-exactly on the host, dots and AllReduces cycle-
// simulated). The wall-time bound is the point: the same solve under
// pure cycle simulation takes tens of minutes, which is why paper-scale
// runs used to live only in perfmodel extrapolations.
//
// The fast-forward engine's contract is bit- and cycle-identity with
// sequential stepping. That is pinned here on a smaller wafer where the
// sequential run is affordable — same solver, same operator family,
// every observable compared: residual history (float64, exact), the
// solution's fp16 bits, the per-phase cycle counters, and the machine
// fingerprint. The wse difftest and stencilc equivalence suites pin the
// same contract per-cycle at instruction granularity.
//
// Skipped in -short mode and under the race detector (see raceEnabled);
// CI executes it in the dedicated non-race paper-scale step.
func TestPaperScaleBiCGStab(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale solve: skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("paper-scale solve: skipped under the race detector")
	}

	// Equivalence leg: fast-forward vs sequential on a 60×50 wafer.
	xSeq, stSeq, fpSeq := paperScaleSolve(t, 60, 50, 4, wse.EngineSequential)
	xFF, stFF, fpFF := paperScaleSolve(t, 60, 50, 4, wse.EngineFastForward)
	if len(xSeq) != len(xFF) {
		t.Fatalf("solution lengths differ: seq %d, ff %d", len(xSeq), len(xFF))
	}
	for i := range xSeq {
		if xSeq[i] != xFF[i] {
			t.Fatalf("x[%d] bits diverge: seq %#04x, ff %#04x", i, uint16(xSeq[i]), uint16(xFF[i]))
		}
	}
	if len(stSeq.History) != len(stFF.History) {
		t.Fatalf("history lengths differ: seq %v, ff %v", stSeq.History, stFF.History)
	}
	for i := range stSeq.History {
		if stSeq.History[i] != stFF.History[i] {
			t.Errorf("residual history[%d] diverges: seq %v, ff %v", i, stSeq.History[i], stFF.History[i])
		}
	}
	if stSeq.Cycles != stFF.Cycles || stSeq.SetupCycles != stFF.SetupCycles {
		t.Errorf("cycle counters diverge:\nseq %+v setup %d\nff  %+v setup %d",
			stSeq.Cycles, stSeq.SetupCycles, stFF.Cycles, stFF.SetupCycles)
	}
	if stSeq.Iterations != stFF.Iterations || stSeq.Converged != stFF.Converged {
		t.Errorf("iteration outcomes diverge: seq %d/%v, ff %d/%v",
			stSeq.Iterations, stSeq.Converged, stFF.Iterations, stFF.Converged)
	}
	if fpSeq != fpFF {
		t.Errorf("machine fingerprints diverge: seq %#x, ff %#x", fpSeq, fpFF)
	}
	t.Logf("60×50 equivalence: hist=%v cycles=%+v fp=%#x", stFF.History, stFF.Cycles, fpFF)

	// Paper-scale leg: the full wafer, fast-forward engine, with the
	// wall-time budget that makes it a CI test rather than an overnight
	// job. The bound is ~25%% above the measured single-core time; a
	// trip here is a performance regression in the fast-forward path or
	// the AllReduce fabric simulation, not noise.
	start := time.Now()
	x, st, fp := paperScaleSolve(t, 602, 595, 4, wse.EngineFastForward)
	elapsed := time.Since(start)
	t.Logf("602×595 solve: %v  iters=%d cycles=%+v setup=%d hist=%v x0=%#04x fp=%#x",
		elapsed, st.Iterations, st.Cycles, st.SetupCycles, st.History, uint16(x[0]), fp)

	if st.Iterations != 2 || len(st.History) != 2 {
		t.Errorf("expected 2 full iterations with residual history, got %d (%v)", st.Iterations, st.History)
	}
	for i, h := range st.History {
		if !(h > 0) { // catches NaN and a degenerate zero residual alike
			t.Errorf("residual history[%d] = %v, want a positive finite value", i, h)
		}
	}
	if st.Cycles.SpMV <= 0 || st.Cycles.Dot <= 0 || st.Cycles.AllReduce <= 0 || st.Cycles.Axpy <= 0 {
		t.Errorf("every phase must accumulate cycles: %+v", st.Cycles)
	}
	if elapsed >= 60*time.Second {
		t.Errorf("paper-scale solve took %v, budget is <60s", elapsed)
	}
}
