package kernels

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/solver"
	"repro/internal/stencil"
	"repro/internal/stencilc"
	"repro/internal/wse"
)

// TestStarSolverMatchesHalo pins the star solver as a strict
// generalization: at widths {1,1,1} the stencil-compiled relay program
// is the halo-exchange SpMV, so the whole solve — solution bits,
// residual history, per-phase cycles, machine fingerprint — must match
// BiCGStabWSEHalo exactly.
func TestStarSolverMatchesHalo(t *testing.T) {
	m := stencil.Mesh{NX: 6, NY: 5, NZ: 8}
	op := stencil.RandomDiagDominant(m, 1.6, rand.New(rand.NewSource(3)))
	norm, _ := op.Normalize()
	rng := rand.New(rand.NewSource(9))
	bvec := make([]fp16.Float16, m.N())
	for i := range bvec {
		bvec[i] = fp16.FromFloat64(rng.Float64()*2 - 1)
	}
	opts := WSEOptions{MaxIter: 8, Tol: 1e-4}

	mh := wse.New(wse.CS1(m.NX, m.NY))
	defer mh.Close()
	halo, err := NewBiCGStabWSEHalo(mh, stencil.NewOp7Half(norm))
	if err != nil {
		t.Fatal(err)
	}
	xh, sth, err := halo.Solve(bvec, opts)
	if err != nil {
		t.Fatal(err)
	}

	ms := wse.New(wse.CS1(m.NX, m.NY))
	defer ms.Close()
	star, err := NewBiCGStabStarWSE(ms, stencilc.Spec7Point(), stencil.NewOpStarHalf(stencil.FromOp7(norm)))
	if err != nil {
		t.Fatal(err)
	}
	xs, sts, err := star.Solve(bvec, opts)
	if err != nil {
		t.Fatal(err)
	}

	if sth.Iterations != sts.Iterations {
		t.Fatalf("iterations: halo %d, star %d", sth.Iterations, sts.Iterations)
	}
	for i := range xh {
		if xh[i] != xs[i] {
			t.Fatalf("solution bit %d: halo %v, star %v", i, xh[i], xs[i])
		}
	}
	for i := range sth.History {
		if sth.History[i] != sts.History[i] {
			t.Fatalf("history %d: halo %v, star %v", i, sth.History[i], sts.History[i])
		}
	}
	if sth.Cycles != sts.Cycles {
		t.Fatalf("cycles: halo %+v, star %+v", sth.Cycles, sts.Cycles)
	}
	if fh, fs := mh.Fingerprint(), ms.Fingerprint(); fh != fs {
		t.Fatalf("fingerprints diverge: halo %#x, star %#x", fh, fs)
	}
}

// TestWaferStarBackendSeismic solves the 25-point seismic system on the
// wafer and on the float64 host through the BackendStar seam: both must
// converge and agree to mixed-precision accuracy, and the warm second
// solve on the same backend must reproduce the first bit for bit.
func TestWaferStarBackendSeismic(t *testing.T) {
	m := stencil.Mesh{NX: 5, NY: 4, NZ: 6}
	norm, diag := stencil.Seismic25(m, 0.08).Normalize()
	rng := rand.New(rand.NewSource(17))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.Float64()
	}
	b := make([]float64, m.N())
	stencil.Seismic25(m, 0.08).Apply(b, xe)
	sb := stencil.ScaleRHS(b, diag)
	zero := make([]float64, m.N())
	opts := solver.Options{MaxIter: 40, Tol: 1e-3, RecordHistory: true}

	xhost, sthost, err := solver.HostBackendStar{}.SolveStar(norm, sb, zero, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sthost.Converged {
		t.Fatalf("host star solve did not converge: %+v", sthost)
	}

	mach := wse.New(wse.CS1(m.NX, m.NY))
	defer mach.Close()
	be := NewWaferStarBackend(mach, stencilc.SpecSeismic25())
	xw, stw, err := be.SolveStar(norm, sb, zero, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !stw.Converged {
		t.Fatalf("wafer star solve did not converge: %+v", stw)
	}
	for i := range xhost {
		if math.Abs(xw[i]-xhost[i]) > 2e-2 {
			t.Fatalf("solution %d: wafer %g, host %g", i, xw[i], xhost[i])
		}
	}
	if rel := norm.ResidualNorm(xw, sb) / stencil.Norm2(sb); rel > 5e-3 {
		t.Fatalf("wafer true residual %g too large", rel)
	}

	// Warm reuse: identical problem, identical bits.
	xw2, stw2, err := be.SolveStar(norm, sb, zero, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stw2.Iterations != stw.Iterations {
		t.Fatalf("warm solve iterations %d, cold %d", stw2.Iterations, stw.Iterations)
	}
	for i := range xw {
		if xw2[i] != xw[i] {
			t.Fatalf("warm solve diverges at %d: %g vs %g", i, xw2[i], xw[i])
		}
	}
	if be.Solves != 2 {
		t.Fatalf("Solves = %d, want 2", be.Solves)
	}
}

// TestStarSolverRejectsPartialFabric pins the full-mesh requirement:
// the solve's Dirichlet handling relies on never-written halos, which
// only holds when the mesh extent equals the fabric.
func TestStarSolverRejectsPartialFabric(t *testing.T) {
	m := stencil.Mesh{NX: 2, NY: 2, NZ: 4}
	st := stencil.NewOpStar(m, [3]int{1, 1, 1})
	for i := range st.C {
		st.C[i] = 1
	}
	mach := wse.New(wse.CS1(4, 4))
	defer mach.Close()
	if _, err := NewBiCGStabStarWSE(mach, stencilc.Spec7Point(), stencil.NewOpStarHalf(st)); err == nil {
		t.Fatal("NewBiCGStabStarWSE accepted a mesh smaller than the fabric")
	}
}
