package kernels

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// withProcs raises GOMAXPROCS so the sharded engines actually run their
// worker pools (machines cache the value at construction), restoring it
// when the test ends.
func withProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// shardedMachines builds a sequential and a sharded machine of the same
// shape for lockstep comparison.
func shardedMachines(w, h, workers int) (*wse.Machine, *wse.Machine) {
	seqCfg := wse.CS1(w, h)
	shCfg := wse.CS1(w, h)
	shCfg.Workers = workers
	return wse.New(seqCfg), wse.New(shCfg)
}

// TestAllReduceShardedIdentical runs the Figure 6 AllReduce on a
// sequential and a sharded fabric and requires bit-identical sums,
// per-tile results and cycle counts — the kernels-level face of the
// stepper determinism contract.
func TestAllReduceShardedIdentical(t *testing.T) {
	withProcs(t, 4)
	mseq, msh := shardedMachines(12, 10, 4)
	arA, err := NewAllReduce(mseq, 0)
	if err != nil {
		t.Fatal(err)
	}
	arB, err := NewAllReduce(msh, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	vals := make([]float32, 12*10)
	for round := 0; round < 3; round++ {
		for i := range vals {
			vals[i] = float32(rng.NormFloat64())
		}
		ra, err := arA.Run(vals, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := arB.Run(vals, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Sum != rb.Sum || ra.Cycles != rb.Cycles {
			t.Fatalf("round %d: seq (sum %g, %d cycles) != sharded (sum %g, %d cycles)",
				round, ra.Sum, ra.Cycles, rb.Sum, rb.Cycles)
		}
		for i := range ra.PerTile {
			if ra.PerTile[i] != rb.PerTile[i] {
				t.Fatalf("round %d: per-tile result %d differs: %g vs %g", round, i, ra.PerTile[i], rb.PerTile[i])
			}
		}
	}
}

// TestSpMV3DShardedIdentical runs the Listing 1 SpMV on both engines and
// requires the identical result vector, cycle count and fabric state
// fingerprint.
func TestSpMV3DShardedIdentical(t *testing.T) {
	withProcs(t, 4)
	rng := rand.New(rand.NewSource(5))
	m := stencil.Mesh{NX: 6, NY: 6, NZ: 32}
	norm, _ := stencil.RandomDiagDominant(m, 1.5, rng).Normalize()
	h := stencil.NewOp7Half(norm)
	mseq, msh := shardedMachines(m.NX, m.NY, 3)
	pa, err := NewSpMV3D(mseq, h)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := NewSpMV3D(msh, h)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]fp16.Float16, m.N())
	for i := range v {
		v[i] = fp16.FromFloat64(rng.NormFloat64())
	}
	pa.LoadVector(v)
	pb.LoadVector(v)
	ca, err := pa.Run(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := pb.Run(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Fatalf("cycle counts differ: seq %d sharded %d", ca, cb)
	}
	ra, rb := pa.Result(), pb.Result()
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("result element %d differs: %v vs %v", i, ra[i], rb[i])
		}
	}
	if fa, fb := mseq.Fab.Fingerprint(), msh.Fab.Fingerprint(); fa != fb {
		t.Fatalf("fabric fingerprints differ after SpMV: %#x vs %#x", fa, fb)
	}
}

// TestBiCGStabWSEShardedIdentical runs full wafer BiCGStab solves on
// both engines: identical iterate bits, residual histories and cycle
// breakdowns.
func TestBiCGStabWSEShardedIdentical(t *testing.T) {
	withProcs(t, 4)
	rng := rand.New(rand.NewSource(11))
	m := stencil.Mesh{NX: 8, NY: 8, NZ: 16}
	op := stencil.RandomDiagDominant(m, 1.5, rng)
	norm, diag := op.Normalize()
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = 0.25 + float64(i%7)*0.1
	}
	b64 := make([]float64, m.N())
	op.Apply(b64, xe)
	b16 := fp16.FromFloat64Slice(stencil.ScaleRHS(b64, diag))

	run := func(workers int) ([]fp16.Float16, WSEStats) {
		cfg := wse.CS1(m.NX, m.NY)
		cfg.Workers = workers
		mach := wse.New(cfg)
		w, err := NewBiCGStabWSE(mach, stencil.NewOp7Half(norm))
		if err != nil {
			t.Fatal(err)
		}
		x, st, err := w.Solve(b16, WSEOptions{MaxIter: 4})
		if err != nil {
			t.Fatal(err)
		}
		return x, st
	}
	xa, sta := run(0)
	xb, stb := run(4)
	for i := range xa {
		if xa[i] != xb[i] {
			t.Fatalf("solution element %d differs: %v vs %v", i, xa[i], xb[i])
		}
	}
	if sta.Iterations != stb.Iterations || sta.Cycles != stb.Cycles {
		t.Fatalf("stats differ: seq %+v sharded %+v", sta, stb)
	}
	for i := range sta.History {
		if sta.History[i] != stb.History[i] {
			t.Fatalf("residual history %d differs: %g vs %g", i, sta.History[i], stb.History[i])
		}
	}
}
