package kernels

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/wse"
)

func runAllReduce(t *testing.T, w, h int, seed int64) (AllReduceResult, []float32) {
	t.Helper()
	mach := wse.New(wse.CS1(w, h))
	ar, err := NewAllReduce(mach, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float32, w*h)
	for i := range vals {
		vals[i] = float32(rng.NormFloat64())
	}
	res, err := ar.Run(vals, 100000)
	if err != nil {
		t.Fatal(err)
	}
	return res, vals
}

func TestAllReduceCorrectness(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {2, 2}, {1, 8}, {8, 1}, {4, 4}, {8, 6}, {7, 7}, {16, 12}, {9, 16}} {
		res, vals := runAllReduce(t, dims[0], dims[1], int64(dims[0]*100+dims[1]))
		want := ReferenceSum(vals)
		n := float64(len(vals))
		tol := n * MaxAbs(vals) * 1.2e-7 * (1 + math.Log2(n+1))
		if math.Abs(float64(res.Sum)-want) > tol+1e-12 {
			t.Errorf("%dx%d: sum = %g, want %g (tol %g)", dims[0], dims[1], res.Sum, want, tol)
		}
		// Broadcast: every tile holds the same result.
		for i, v := range res.PerTile {
			if v != res.Sum {
				t.Fatalf("%dx%d: tile %d got %g, root %g", dims[0], dims[1], i, v, res.Sum)
			}
		}
	}
}

func TestAllReduceLatencyNearDiameter(t *testing.T) {
	// The paper: "the single cycle-per-hop latency of the interconnect
	// allows us to implement the AllReduce operation in a cycle count only
	// about 10% greater than the diameter of the system."
	for _, dims := range [][2]int{{8, 8}, {16, 16}, {32, 24}, {48, 48}} {
		res, _ := runAllReduce(t, dims[0], dims[1], 42)
		diameter := float64(dims[0] + dims[1] - 2)
		ratio := float64(res.Cycles) / diameter
		t.Logf("%dx%d: %d cycles, diameter %g, ratio %.3f", dims[0], dims[1], res.Cycles, diameter, ratio)
		if ratio < 1.0 {
			t.Errorf("%dx%d: latency %d below diameter %g — impossible", dims[0], dims[1], res.Cycles, diameter)
		}
		if ratio > 1.6 {
			t.Errorf("%dx%d: latency ratio %.2f too far above the paper's ~1.1", dims[0], dims[1], ratio)
		}
	}
}

func TestAllReduceRepeated(t *testing.T) {
	// BiCGStab does four AllReduces per iteration on the same routing.
	mach := wse.New(wse.CS1(6, 6))
	ar, err := NewAllReduce(mach, 0)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 4; rep++ {
		vals := make([]float32, 36)
		for i := range vals {
			vals[i] = float32(i%5) + float32(rep)
		}
		res, err := ar.Run(vals, 10000)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if math.Abs(float64(res.Sum)-ReferenceSum(vals)) > 1e-3 {
			t.Fatalf("rep %d: sum %g, want %g", rep, res.Sum, ReferenceSum(vals))
		}
	}
}

func TestAllReduceDeterministic(t *testing.T) {
	// Fixed routing implies a fixed arrival order, so the float32 sum is
	// bit-reproducible across runs.
	a, _ := runAllReduce(t, 10, 6, 77)
	b, _ := runAllReduce(t, 10, 6, 77)
	if a.Sum != b.Sum {
		t.Errorf("allreduce not deterministic: %g vs %g", a.Sum, b.Sum)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("allreduce cycle count not deterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}

func TestAllReduceSharesFabricWithSpMV(t *testing.T) {
	// The BiCGStab driver uses stencil colors 0-4 and allreduce colors
	// 5-10 on the same fabric; both must work after joint configuration.
	p, h, rng := newSpMVProgram(t, 4, 4, 8, 9)
	ar, err := NewAllReduce(p.M, NumStencilColors)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, 16)
	for i := range vals {
		vals[i] = float32(rng.Intn(10))
	}
	res, err := ar.Run(vals, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.Sum)-ReferenceSum(vals)) > 1e-3 {
		t.Fatalf("sum %g, want %g", res.Sum, ReferenceSum(vals))
	}
	// And the SpMV still runs afterwards.
	vv := randomHalfVector(h.M.N(), rng)
	p.LoadVector(vv)
	if _, err := p.Run(100000); err != nil {
		t.Fatal(err)
	}
	checkSpMVResult(t, p, h, vv)
}

// TestAllReduceLeavesMachineIdle pins a worklist-engine regression: the
// AllReduce drives the fabric directly, and its ramp deliveries land at
// cores with no stream subscriptions. Those rx wakes must not enqueue
// cores on the machine's runnable worklists — the machine is never
// core-stepped here, so stale entries would make AllIdle report a busy
// machine forever (the polling engine correctly reported idle).
func TestAllReduceLeavesMachineIdle(t *testing.T) {
	for _, workers := range []int{1, 4} {
		m := wse.New(func() wse.Config { c := wse.CS1(8, 8); c.Workers = workers; return c }())
		defer m.Close()
		ar, err := NewAllReduce(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float32, 64)
		for i := range vals {
			vals[i] = float32(i)
		}
		if _, err := ar.Run(vals, 1<<20); err != nil {
			t.Fatal(err)
		}
		if !m.AllIdle() {
			t.Errorf("workers=%d: machine not AllIdle after a fabric-level AllReduce", workers)
		}
	}
}
