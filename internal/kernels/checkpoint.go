package kernels

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
)

// Solver checkpoints: a WSECheckpoint packages a machine snapshot
// (wse.Snapshot, which holds every solver vector in the tile arenas)
// with the BiCGStab scalar recurrence state, so a solve can be
// interrupted, the process restarted, and the solve resumed
// bit-identically — same residual history, same final machine
// Fingerprint — on either stepping engine and any worker count.
// Checkpoints are cut at iteration boundaries, where the machine is
// architecturally idle.

// CheckpointVersion is the current checkpoint format version.
const CheckpointVersion = 1

// checkpointMagic leads every encoded checkpoint ("WSECKPT" + version).
var checkpointMagic = [8]byte{'W', 'S', 'E', 'C', 'K', 'P', 'T', CheckpointVersion}

// WSECheckpoint is the state needed to resume a wafer BiCGStab solve at
// the top of iteration Iter. Stats carries the accumulated cycle counts
// and residual history so the resumed solve's final statistics match
// the uninterrupted solve's (PerIteration is recomputed at finish and
// not serialized).
type WSECheckpoint struct {
	Iter    int
	BNorm   float64
	Rho     float64
	Stats   WSEStats
	Machine []byte // encoded wse.Snapshot
}

// Encode serializes the checkpoint in the versioned little-endian
// format with a trailing FNV-1a checksum.
func (cp *WSECheckpoint) Encode() ([]byte, error) {
	var b []byte
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	i64 := func(v int64) { u64(uint64(v)) }
	f64 := func(v float64) { u64(math.Float64bits(v)) }

	b = append(b, checkpointMagic[:]...)
	u32(uint32(cp.Iter))
	f64(cp.BNorm)
	f64(cp.Rho)

	st := &cp.Stats
	u32(uint32(st.Iterations))
	if st.Converged {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	u32(uint32(len(st.Breakdown)))
	b = append(b, st.Breakdown...)
	u32(uint32(len(st.History)))
	for _, h := range st.History {
		f64(h)
	}
	i64(st.Cycles.SpMV)
	i64(st.Cycles.Dot)
	i64(st.Cycles.AllReduce)
	i64(st.Cycles.Axpy)
	i64(st.SetupCycles)
	f64(st.MaxARDrift)

	u32(uint32(len(cp.Machine)))
	b = append(b, cp.Machine...)

	h := fnv.New64a()
	h.Write(b)
	return binary.LittleEndian.AppendUint64(b, h.Sum64()), nil
}

// DecodeWSECheckpoint parses data produced by Encode, verifying magic,
// version and checksum. It never panics on corrupt input.
func DecodeWSECheckpoint(data []byte) (*WSECheckpoint, error) {
	if len(data) < len(checkpointMagic)+8 {
		return nil, fmt.Errorf("kernels: checkpoint truncated (%d bytes)", len(data))
	}
	for i := 0; i < 7; i++ {
		if data[i] != checkpointMagic[i] {
			return nil, fmt.Errorf("kernels: not a solver checkpoint (bad magic)")
		}
	}
	if v := data[7]; v != CheckpointVersion {
		return nil, fmt.Errorf("kernels: unsupported checkpoint version %d (have %d)", v, CheckpointVersion)
	}
	body, sum := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != binary.LittleEndian.Uint64(sum) {
		return nil, fmt.Errorf("kernels: checkpoint checksum mismatch")
	}

	p := body[len(checkpointMagic):]
	var derr error
	take := func(n int) []byte {
		if derr != nil || n < 0 || n > len(p) {
			if derr == nil {
				derr = fmt.Errorf("kernels: checkpoint truncated mid-field")
			}
			return nil
		}
		v := p[:n]
		p = p[n:]
		return v
	}
	u32 := func() uint32 {
		if v := take(4); v != nil {
			return binary.LittleEndian.Uint32(v)
		}
		return 0
	}
	u64 := func() uint64 {
		if v := take(8); v != nil {
			return binary.LittleEndian.Uint64(v)
		}
		return 0
	}
	i64 := func() int64 { return int64(u64()) }
	f64 := func() float64 { return math.Float64frombits(u64()) }
	count := func(minBytes int) int {
		n := int(u32())
		if derr == nil && (n < 0 || n*minBytes > len(p)) {
			derr = fmt.Errorf("kernels: checkpoint count %d exceeds remaining input", n)
			return 0
		}
		return n
	}

	cp := &WSECheckpoint{}
	cp.Iter = int(u32())
	cp.BNorm = f64()
	cp.Rho = f64()
	st := &cp.Stats
	st.Iterations = int(u32())
	if v := take(1); v != nil {
		st.Converged = v[0] != 0
	}
	st.Breakdown = string(take(count(1)))
	st.History = make([]float64, count(8))
	for i := range st.History {
		st.History[i] = f64()
	}
	st.Cycles.SpMV = i64()
	st.Cycles.Dot = i64()
	st.Cycles.AllReduce = i64()
	st.Cycles.Axpy = i64()
	st.SetupCycles = i64()
	st.MaxARDrift = f64()
	cp.Machine = append([]byte(nil), take(count(1))...)
	if derr != nil {
		return nil, derr
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("kernels: checkpoint has %d trailing bytes", len(p))
	}
	return cp, nil
}
