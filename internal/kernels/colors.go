// Package kernels implements the paper's wafer programs on the simulated
// CS-1: the 3D 7-point SpMV of Listing 1/Figure 4 with the tessellation
// routing of Figure 5, the halo-resident 3D SpMV variant the multiwafer
// backend composes across wafers (SpMV3DHalo, bitwise equal to the
// functional reference), the scalar AllReduce of Figure 6, the AXPY and
// mixed-precision dot kernels, the 2D 9-point block-halo SpMV mapping
// (functional and cycle-simulated forms), and the shared BiCGStab driver
// that composes them. See docs/ARCHITECTURE.md for each kernel's
// determinism class and the color-assignment map.
package kernels

import "repro/internal/fabric"

// NumStencilColors is the number of virtual channels the tessellation
// pattern needs: each tile broadcasts on one color and receives its four
// neighbours' broadcasts on four distinct other colors.
const NumStencilColors = 5

// BroadcastColor returns the color tile (x, y) uses to broadcast its local
// iterate vector to its four neighbours (and loop back to itself), the
// tessellation of Figure 5. The assignment c = (x + 2y) mod 5 guarantees
// that at every tile the outgoing color differs from each of the four
// incoming colors: the ±x neighbours differ by ±1 and the ±y neighbours
// by ±2 (mod 5), none of which is 0.
func BroadcastColor(x, y int) fabric.Color {
	return fabric.Color((x + 2*y) % NumStencilColors)
}

// StencilColorsDistinct verifies the Figure 5 property at (x, y): the
// tile's own color differs from the colors of all four neighbours, and
// the four neighbour colors are pairwise distinct (so the four receive
// streams are separable). Exported for tests and the routing experiment.
func StencilColorsDistinct(x, y int) bool {
	own := BroadcastColor(x, y)
	nbr := []fabric.Color{
		BroadcastColor(x+1, y),
		BroadcastColor(x-1+NumStencilColors, y), // keep arguments non-negative
		BroadcastColor(x, y+1),
		BroadcastColor(x, y-1+NumStencilColors*2),
	}
	seen := map[fabric.Color]bool{own: true}
	for _, c := range nbr {
		if seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}
