package kernels

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/tensor"
	"repro/internal/wse"
)

// HaloDir names the four lateral halo directions of the 3D Z-column
// mapping, from the owning tile's point of view: HaloXP is the halo
// received from the +x neighbour, and so on.
type HaloDir int

// The four halo directions.
const (
	HaloXP HaloDir = iota
	HaloXM
	HaloYP
	HaloYM
	NumHaloDirs
)

// haloTravel maps a halo direction to the directional exchange color the
// data travels on: the +x neighbour's column arrives moving west.
var haloTravel = [NumHaloDirs]int{HaloXP: colWest, HaloXM: colEast, HaloYP: colNorth, HaloYM: colSouth}

// haloOut maps a halo direction to the color this tile's own column
// leaves on toward that neighbour.
var haloOut = [NumHaloDirs]int{HaloXP: colEast, HaloXM: colWest, HaloYP: colSouth, HaloYM: colNorth}

// haloDelta is the fabric-coordinate offset of the neighbour in each
// halo direction.
var haloDelta = [NumHaloDirs][2]int{HaloXP: {1, 0}, HaloXM: {-1, 0}, HaloYP: {0, 1}, HaloYM: {0, -1}}

// SpMV3DHalo is the memory-resident-halo rendering of the 3D 7-point
// SpMV, built for composition across wafers (internal/multiwafer): the
// machine's fabric covers the X×Y tile extent [X0, X0+W)×[Y0, Y0+H) of
// a larger global mesh, each tile owns the Z-column of one (x, y) and
// stores — besides its six coefficient and iterate/result columns —
// four halo columns holding the neighbouring iterates.
//
// One application runs in two phases per tile. The exchange phase
// streams the tile's iterate column to each on-fabric neighbour over
// four single-hop directional colors and stores the neighbours' columns
// into the halo buffers verbatim (wse.StreamStore — a bit-exact copy).
// Halo columns whose neighbour lives on another wafer are filled by the
// host before Run, modelling the CS-1's edge I/O; columns beyond the
// global mesh stay zero and their scatter term is skipped, like the
// functional reference. The compute phase then runs a fixed sequence of
// tensor instructions in exactly stencil.Op7Half.Apply's rounding
// order: zm, zp, xp, xm, yp, ym, then the unit diagonal.
//
// Because every arithmetic step is a per-tile instruction in a fixed
// program order and halos move bit-verbatim, the result is bitwise
// equal to Op7Half.Apply on the global mesh — independent of how the
// mesh is cut into wafers and of the simulation engine. This is the
// contract the multiwafer solver's decomposition-invariant residual
// histories rest on, and it is what the Listing 1 kernel (SpMV3D)
// cannot offer: its FIFO accumulation order is timing-dependent, so its
// results are only close to, not equal to, the reference. The price is
// memory for four halo columns and serialized (rather than overlapped)
// exchange and compute.
type SpMV3DHalo struct {
	M      *wse.Machine
	Mesh   stencil.Mesh // the global mesh
	X0, Y0 int          // global tile coordinate of fabric (0, 0)

	base  fabric.Color
	tiles []*haloTile
}

type haloTile struct {
	tile   *wse.Tile
	x, y   int // fabric-local coordinate
	gx, gy int // global mesh column

	offC [6]int           // xp, xm, yp, ym, zp, zm coefficients, Z each
	offV int              // iterate column, Z
	offU int              // result column, Z
	offH [NumHaloDirs]int // halo columns, Z each
	from [NumHaloDirs]*wse.StreamBuf

	compute *wse.Task
	exLeft  int
	done    bool
}

// coefficient vector indices within offC.
const (
	cXP = iota
	cXM
	cYP
	cYM
	cZP
	cZM
)

// NewSpMV3DHalo builds the program on mach for the sub-extent of the
// global operator op starting at tile (x0, y0); the fabric size selects
// the extent. Z must be even (two fp16 elements per fabric word) and
// the fabric must fit inside the mesh. base is the first of the four
// directional exchange colors.
func NewSpMV3DHalo(mach *wse.Machine, op *stencil.Op7Half, x0, y0 int, base fabric.Color) (*SpMV3DHalo, error) {
	m := op.M
	w, h := mach.Cfg.FabricW, mach.Cfg.FabricH
	if m.NZ%2 != 0 {
		return nil, fmt.Errorf("kernels: Z=%d must be even (two fp16 per fabric word)", m.NZ)
	}
	if x0 < 0 || y0 < 0 || x0+w > m.NX || y0+h > m.NY {
		return nil, fmt.Errorf("kernels: fabric %dx%d at (%d,%d) exceeds mesh %v", w, h, x0, y0, m)
	}
	if int(base)+NumStencil2DColors > fabric.MaxColors {
		return nil, fmt.Errorf("kernels: halo exchange needs %d colors starting at %d", NumStencil2DColors, base)
	}
	p := &SpMV3DHalo{M: mach, Mesh: m, X0: x0, Y0: y0, base: base}
	z := m.NZ

	// Static routing: the same four single-hop directional streams the 2D
	// block-halo kernel uses.
	f := mach.Fab
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			at := fabric.Coord{X: x, Y: y}
			if x < w-1 {
				f.SetRoute(at, fabric.Ramp, base+colEast, fabric.Mask(fabric.East))
				f.SetRoute(fabric.Coord{X: x + 1, Y: y}, fabric.West, base+colEast, fabric.Mask(fabric.Ramp))
			}
			if x > 0 {
				f.SetRoute(at, fabric.Ramp, base+colWest, fabric.Mask(fabric.West))
				f.SetRoute(fabric.Coord{X: x - 1, Y: y}, fabric.East, base+colWest, fabric.Mask(fabric.Ramp))
			}
			if y < h-1 {
				f.SetRoute(at, fabric.Ramp, base+colSouth, fabric.Mask(fabric.South))
				f.SetRoute(fabric.Coord{X: x, Y: y + 1}, fabric.North, base+colSouth, fabric.Mask(fabric.Ramp))
			}
			if y > 0 {
				f.SetRoute(at, fabric.Ramp, base+colNorth, fabric.Mask(fabric.North))
				f.SetRoute(fabric.Coord{X: x, Y: y - 1}, fabric.South, base+colNorth, fabric.Mask(fabric.Ramp))
			}
		}
	}

	p.tiles = make([]*haloTile, w*h)
	names := [6]string{"xp", "xm", "yp", "ym", "zp", "zm"}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			tl := mach.TileAt(fabric.Coord{X: x, Y: y})
			st := &haloTile{tile: tl, x: x, y: y, gx: x0 + x, gy: y0 + y}
			a := tl.Arena
			var err error
			alloc := func(name string, n int) int {
				if err != nil {
					return 0
				}
				var off int
				off, err = a.Alloc(name, n)
				return off
			}
			for k := range st.offC {
				st.offC[k] = alloc(names[k], z)
			}
			st.offV = alloc("v", z)
			st.offU = alloc("u", z)
			for d := range st.offH {
				st.offH[d] = alloc(fmt.Sprintf("h%d", d), z)
			}
			if err != nil {
				return nil, fmt.Errorf("kernels: tile (%d,%d): %v", x, y, err)
			}

			// Stream subscriptions for on-fabric neighbours.
			for d := HaloDir(0); d < NumHaloDirs; d++ {
				nx, ny := x+haloDelta[d][0], y+haloDelta[d][1]
				if nx >= 0 && nx < w && ny >= 0 && ny < h {
					st.from[d] = wse.NewStreamBuf(4)
					tl.Core.Subscribe(base+fabric.Color(haloTravel[d]), st.from[d])
				}
			}

			st.compute = tl.Core.AddTask(&wse.Task{Name: "spmv3dh"})
			st.compute.OnComplete = func(c *wse.Core) { st.done = true }
			p.tiles[y*w+x] = st
		}
	}
	p.LoadCoeff(op)
	return p, nil
}

// LoadCoeff (re)loads the six coefficient columns from the global
// operator. Routing, memory layout and task structure are reused.
func (p *SpMV3DHalo) LoadCoeff(op *stencil.Op7Half) {
	if op.M != p.Mesh {
		panic(fmt.Sprintf("kernels: operator mesh %v does not match program mesh %v", op.M, p.Mesh))
	}
	z := p.Mesh.NZ
	src := [6][]fp16.Float16{cXP: op.XP, cXM: op.XM, cYP: op.YP, cYM: op.YM, cZP: op.ZP, cZM: op.ZM}
	for _, st := range p.tiles {
		a := st.tile.Arena
		for zz := 0; zz < z; zz++ {
			i := p.Mesh.Index(st.gx, st.gy, zz)
			for k := range src {
				a.Set(st.offC[k]+zz, src[k][i])
			}
		}
	}
}

// Tiles returns the tile count (fabric row-major indexing).
func (p *SpMV3DHalo) Tiles() int { return len(p.tiles) }

// GlobalCoord returns the global mesh column of tile index i.
func (p *SpMV3DHalo) GlobalCoord(i int) (gx, gy int) { return p.tiles[i].gx, p.tiles[i].gy }

// Iterate returns tile i's live iterate column (Z elements of arena
// storage). The host writes the solver's source vector here before Run
// and reads boundary columns from it when shipping inter-wafer halos;
// both are bit-verbatim copies.
func (p *SpMV3DHalo) Iterate(i int) []fp16.Float16 {
	st := p.tiles[i]
	return st.tile.Arena.Slice(st.offV, p.Mesh.NZ)
}

// Result returns tile i's live result column.
func (p *SpMV3DHalo) Result(i int) []fp16.Float16 {
	st := p.tiles[i]
	return st.tile.Arena.Slice(st.offU, p.Mesh.NZ)
}

// Halo returns tile i's live halo column for direction d. The host
// fills it for off-wafer neighbours before Run; on-fabric directions
// are overwritten by the exchange phase.
func (p *SpMV3DHalo) Halo(i int, d HaloDir) []fp16.Float16 {
	st := p.tiles[i]
	return st.tile.Arena.Slice(st.offH[d], p.Mesh.NZ)
}

// onFabric reports whether tile st's neighbour in direction d lies on
// this machine's fabric.
func (p *SpMV3DHalo) onFabric(st *haloTile, d HaloDir) bool {
	return st.from[d] != nil
}

// inMesh reports whether tile st has a neighbour in direction d on the
// global mesh at all.
func (p *SpMV3DHalo) inMesh(st *haloTile, d HaloDir) bool {
	gx, gy := st.gx+haloDelta[d][0], st.gy+haloDelta[d][1]
	return gx >= 0 && gx < p.Mesh.NX && gy >= 0 && gy < p.Mesh.NY
}

// armTile prepares one application: zeroes the result column, launches
// the exchange threads, and chains the fixed-order compute task behind
// their completion.
func (p *SpMV3DHalo) armTile(st *haloTile) {
	z := p.Mesh.NZ
	a := st.tile.Arena
	core := st.tile.Core
	for i := 0; i < z; i++ {
		a.Set(st.offU+i, fp16.Zero)
	}
	st.done = false

	// Compute task body, in stencil.Op7Half.Apply's exact order. The
	// z-direction terms come from the tile's own column (shifted
	// descriptors, skipping the meshless end); lateral terms multiply a
	// halo column and are skipped entirely at the global mesh boundary,
	// mirroring the reference's per-point conditionals (which are
	// uniform along a Z-column).
	instrs := make([]wse.Instr, 0, 7)
	if z > 1 {
		instrs = append(instrs, &wse.MemOp{ // u[z] = zm[z] * v[z-1]
			Kind: wse.OpMul, Arena: a,
			Dst: tensor.Vec1D(st.offU+1, z-1),
			A:   tensor.Vec1D(st.offC[cZM]+1, z-1),
			B:   tensor.Vec1D(st.offV, z-1),
		})
		instrs = append(instrs, &wse.MemOp{ // u[z] += zp[z] * v[z+1]
			Kind: wse.OpMulAcc, Arena: a,
			Dst: tensor.Vec1D(st.offU, z-1),
			A:   tensor.Vec1D(st.offC[cZP], z-1),
			B:   tensor.Vec1D(st.offV+1, z-1),
		})
	}
	lat := [NumHaloDirs]int{HaloXP: cXP, HaloXM: cXM, HaloYP: cYP, HaloYM: cYM}
	for d := HaloDir(0); d < NumHaloDirs; d++ {
		if !p.inMesh(st, d) {
			continue
		}
		instrs = append(instrs, &wse.MemOp{ // u += c_d * halo_d
			Kind: wse.OpMulAcc, Arena: a,
			Dst: tensor.Vec1D(st.offU, z),
			A:   tensor.Vec1D(st.offC[lat[d]], z),
			B:   tensor.Vec1D(st.offH[d], z),
		})
	}
	instrs = append(instrs, &wse.MemOp{ // u += v (unit main diagonal)
		Kind: wse.OpAdd, Arena: a,
		Dst: tensor.Vec1D(st.offU, z),
		A:   tensor.Vec1D(st.offU, z),
		B:   tensor.Vec1D(st.offV, z),
	})
	st.compute.Instrs = instrs

	// Exchange phase: one send and one store thread per on-fabric
	// neighbour (slots 0–3 send, 4–7 store). Compute starts when all
	// complete; a tile with no on-fabric neighbour computes immediately.
	st.exLeft = 0
	for d := HaloDir(0); d < NumHaloDirs; d++ {
		if p.onFabric(st, d) {
			st.exLeft += 2
		}
	}
	if st.exLeft == 0 {
		core.Activate(st.compute)
		return
	}
	onDone := func(c *wse.Core) {
		st.exLeft--
		if st.exLeft == 0 {
			c.Activate(st.compute)
		}
	}
	for d := HaloDir(0); d < NumHaloDirs; d++ {
		if !p.onFabric(st, d) {
			continue
		}
		core.LaunchThread(int(d), "halo_tx", &wse.SendMem{
			Color: p.base + fabric.Color(haloOut[d]),
			Src:   tensor.Vec1D(st.offV, z),
			Arena: a, Total: z,
		}, onDone)
		core.LaunchThread(int(NumHaloDirs+d), "halo_rx", &wse.StreamStore{
			Src:   wse.StreamSource{B: st.from[d]},
			Dst:   tensor.Vec1D(st.offH[d], z),
			Arena: a, Total: z,
		}, onDone)
	}
}

// Run executes one application under cycle simulation and returns the
// cycles it took. Off-wafer halo columns must already hold the current
// neighbouring iterates (the multiwafer host injects them, charging the
// edge-I/O model separately).
func (p *SpMV3DHalo) Run(maxCycles int64) (int64, error) {
	for _, st := range p.tiles {
		p.armTile(st)
	}
	return p.M.RunUntil(func() bool {
		for _, st := range p.tiles {
			if !st.done {
				return false
			}
		}
		return true
	}, maxCycles)
}

// TileMemoryWords returns the arena words one tile of this program
// uses: six coefficient columns, iterate, result, and four halo
// columns — 12·Z words.
func (p *SpMV3DHalo) TileMemoryWords() int { return 12 * p.Mesh.NZ }
