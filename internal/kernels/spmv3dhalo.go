package kernels

import (
	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/stencil"
	"repro/internal/stencilc"
	"repro/internal/wse"
)

// HaloDir names the four lateral halo directions of the 3D Z-column
// mapping, from the owning tile's point of view: HaloXP is the halo
// received from the +x neighbour, and so on. It is the stencil
// compiler's direction type, re-exported for the multiwafer host.
type HaloDir = stencilc.HaloDir

// The four halo directions.
const (
	HaloXP      = stencilc.HaloXP
	HaloXM      = stencilc.HaloXM
	HaloYP      = stencilc.HaloYP
	HaloYM      = stencilc.HaloYM
	NumHaloDirs = stencilc.NumHaloDirs
)

// SpMV3DHalo is the memory-resident-halo rendering of the 3D 7-point
// SpMV, built for composition across wafers (internal/multiwafer): the
// 7-point star spec compiled by the stencil compiler. The machine's
// fabric covers the X×Y tile extent [X0, X0+W)×[Y0, Y0+H) of a larger
// global mesh, each tile owns the Z-column of one (x, y), exchanges
// iterate columns with its four neighbours over single-hop directional
// streams, and computes a fixed sequence of tensor instructions in
// exactly stencil.Op7Half.Apply's rounding order — see
// stencilc.Program3D for the schedule and the bit-identity contract the
// multiwafer solver's decomposition-invariant residual histories rest
// on. The golden tests pin this wrapper bit-identical — results,
// cycles, machine fingerprint — to the hand-written generator it
// replaced.
type SpMV3DHalo struct {
	M      *wse.Machine
	Mesh   stencil.Mesh // the global mesh
	X0, Y0 int          // global tile coordinate of fabric (0, 0)

	prog *stencilc.Program3D
}

// NewSpMV3DHalo builds the program on mach for the sub-extent of the
// global operator op starting at tile (x0, y0); the fabric size selects
// the extent. Z must be even (two fp16 elements per fabric word) and
// the fabric must fit inside the mesh. base is the first of the four
// directional exchange colors.
func NewSpMV3DHalo(mach *wse.Machine, op *stencil.Op7Half, x0, y0 int, base fabric.Color) (*SpMV3DHalo, error) {
	prog, err := stencilc.Compile3D(mach, stencilc.Spec7Point(), stencil.HalfFromOp7(op), x0, y0, base)
	if err != nil {
		return nil, err
	}
	return &SpMV3DHalo{M: mach, Mesh: op.M, X0: x0, Y0: y0, prog: prog}, nil
}

// LoadCoeff (re)loads the six coefficient columns from the global
// operator. Routing, memory layout and task structure are reused.
func (p *SpMV3DHalo) LoadCoeff(op *stencil.Op7Half) { p.prog.LoadCoeff(stencil.HalfFromOp7(op)) }

// Tiles returns the tile count (fabric row-major indexing).
func (p *SpMV3DHalo) Tiles() int { return p.prog.Tiles() }

// GlobalCoord returns the global mesh column of tile index i.
func (p *SpMV3DHalo) GlobalCoord(i int) (gx, gy int) { return p.prog.GlobalCoord(i) }

// Iterate returns tile i's live iterate column (Z elements of arena
// storage). The host writes the solver's source vector here before Run
// and reads boundary columns from it when shipping inter-wafer halos;
// both are bit-verbatim copies.
func (p *SpMV3DHalo) Iterate(i int) []fp16.Float16 { return p.prog.Iterate(i) }

// Result returns tile i's live result column.
func (p *SpMV3DHalo) Result(i int) []fp16.Float16 { return p.prog.Result(i) }

// Halo returns tile i's live halo column for direction d. The host
// fills it for off-wafer neighbours before Run; on-fabric directions
// are overwritten by the exchange phase.
func (p *SpMV3DHalo) Halo(i int, d HaloDir) []fp16.Float16 { return p.prog.Halo(i, d, 1) }

// Run executes one application under cycle simulation and returns the
// cycles it took. Off-wafer halo columns must already hold the current
// neighbouring iterates (the multiwafer host injects them, charging the
// edge-I/O model separately).
func (p *SpMV3DHalo) Run(maxCycles int64) (int64, error) { return p.prog.Run(maxCycles) }

// TileMemoryWords returns the arena words one tile of this program
// uses: six coefficient columns, iterate, result, and four halo
// columns — 12·Z words.
func (p *SpMV3DHalo) TileMemoryWords() int { return p.prog.TileMemoryWords() }
