package stencil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fp16"
)

func TestMeshIndexRoundTrip(t *testing.T) {
	m := Mesh{NX: 5, NY: 4, NZ: 7}
	seen := make(map[int]bool)
	for x := 0; x < m.NX; x++ {
		for y := 0; y < m.NY; y++ {
			for z := 0; z < m.NZ; z++ {
				i := m.Index(x, y, z)
				if i < 0 || i >= m.N() || seen[i] {
					t.Fatalf("index (%d,%d,%d) -> %d invalid or duplicate", x, y, z, i)
				}
				seen[i] = true
				gx, gy, gz := m.Coords(i)
				if gx != x || gy != y || gz != z {
					t.Fatalf("Coords(%d) = (%d,%d,%d), want (%d,%d,%d)", i, gx, gy, gz, x, y, z)
				}
			}
		}
	}
}

func TestZColumnContiguity(t *testing.T) {
	// The wafer mapping requires each (x,y) column to be contiguous in z.
	m := Mesh{NX: 3, NY: 3, NZ: 8}
	for z := 1; z < m.NZ; z++ {
		if m.Index(1, 2, z) != m.Index(1, 2, z-1)+1 {
			t.Fatal("z-column is not contiguous")
		}
	}
}

// denseApply is an independent O(N·N) reference built from the stencil
// structure, used to validate the optimized Apply.
func denseApply(o *Op7, src []float64) []float64 {
	m := o.M
	dst := make([]float64, m.N())
	type nb struct {
		c          []float64
		dx, dy, dz int
	}
	nbs := []nb{
		{o.D, 0, 0, 0}, {o.XP, 1, 0, 0}, {o.XM, -1, 0, 0},
		{o.YP, 0, 1, 0}, {o.YM, 0, -1, 0}, {o.ZP, 0, 0, 1}, {o.ZM, 0, 0, -1},
	}
	for x := 0; x < m.NX; x++ {
		for y := 0; y < m.NY; y++ {
			for z := 0; z < m.NZ; z++ {
				i := m.Index(x, y, z)
				for _, n := range nbs {
					if m.In(x+n.dx, y+n.dy, z+n.dz) {
						dst[i] += n.c[i] * src[m.Index(x+n.dx, y+n.dy, z+n.dz)]
					}
				}
			}
		}
	}
	return dst
}

func TestApplyAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range []Mesh{{2, 2, 2}, {4, 3, 5}, {1, 6, 2}, {7, 1, 1}} {
		o := RandomDiagDominant(m, 1.5, rng)
		src := make([]float64, m.N())
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		got := make([]float64, m.N())
		o.Apply(got, src)
		want := denseApply(o, src)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("mesh %v: Apply[%d] = %g, want %g", m, i, got[i], want[i])
			}
		}
	}
}

func TestPoissonSymmetry(t *testing.T) {
	// <Au, v> == <u, Av> for the Poisson operator.
	m := Mesh{4, 4, 4}
	o := Poisson(m, 0.25)
	rng := rand.New(rand.NewSource(3))
	u := make([]float64, m.N())
	v := make([]float64, m.N())
	for i := range u {
		u[i], v[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	au := make([]float64, m.N())
	av := make([]float64, m.N())
	o.Apply(au, u)
	o.Apply(av, v)
	var a, b float64
	for i := range u {
		a += au[i] * v[i]
		b += u[i] * av[i]
	}
	if math.Abs(a-b) > 1e-9*math.Abs(a) {
		t.Errorf("Poisson not symmetric: <Au,v>=%g <u,Av>=%g", a, b)
	}
}

func TestPoissonPositiveDefinite(t *testing.T) {
	m := Mesh{5, 5, 5}
	o := Poisson(m, 1)
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := make([]float64, m.N())
		nonzero := false
		for i := range u {
			u[i] = r.NormFloat64()
			nonzero = nonzero || u[i] != 0
		}
		if !nonzero {
			return true
		}
		au := make([]float64, m.N())
		o.Apply(au, u)
		var q float64
		for i := range u {
			q += u[i] * au[i]
		}
		return q > 0
	}
	for i := 0; i < 50; i++ {
		if !f(rng.Int63()) {
			t.Fatal("Poisson operator not positive definite")
		}
	}
}

func TestConvectionDiffusionNonsymmetric(t *testing.T) {
	m := Mesh{4, 4, 4}
	o := ConvectionDiffusion(m, 0.1, [3]float64{1, 0.5, -0.25}, 0.25)
	u := make([]float64, m.N())
	v := make([]float64, m.N())
	rng := rand.New(rand.NewSource(5))
	for i := range u {
		u[i], v[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	au := make([]float64, m.N())
	av := make([]float64, m.N())
	o.Apply(au, u)
	o.Apply(av, v)
	var a, b float64
	for i := range u {
		a += au[i] * v[i]
		b += u[i] * av[i]
	}
	if math.Abs(a-b) < 1e-9 {
		t.Error("convection-diffusion operator should be nonsymmetric")
	}
}

func TestUpwindRowSums(t *testing.T) {
	// With upwinding, every interior row of the convection part sums to
	// zero and the operator remains an M-matrix-like row-dominant system.
	m := Mesh{5, 5, 5}
	o := ConvectionDiffusion(m, 0.2, [3]float64{0.7, -0.3, 0.1}, 0.2)
	i := m.Index(2, 2, 2) // interior point
	row := o.D[i] + o.XP[i] + o.XM[i] + o.YP[i] + o.YM[i] + o.ZP[i] + o.ZM[i]
	if math.Abs(row) > 1e-12 {
		t.Errorf("interior row sum = %g, want 0 (conservation)", row)
	}
	offsum := math.Abs(o.XP[i]) + math.Abs(o.XM[i]) + math.Abs(o.YP[i]) +
		math.Abs(o.YM[i]) + math.Abs(o.ZP[i]) + math.Abs(o.ZM[i])
	if o.D[i] < offsum-1e-12 {
		t.Errorf("diagonal %g weaker than off-diagonals %g", o.D[i], offsum)
	}
}

func TestNormalize(t *testing.T) {
	m := Mesh{3, 3, 3}
	rng := rand.New(rand.NewSource(9))
	o := RandomDiagDominant(m, 2, rng)
	norm, diag := o.Normalize()
	if !norm.IsUnitDiagonal() {
		t.Fatal("normalized operator does not have a unit diagonal")
	}
	// (D^-1 A) x must equal D^-1 (A x).
	x := make([]float64, m.N())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	ax := make([]float64, m.N())
	o.Apply(ax, x)
	nx := make([]float64, m.N())
	norm.Apply(nx, x)
	for i := range x {
		if math.Abs(nx[i]-ax[i]/diag[i]) > 1e-12*(1+math.Abs(nx[i])) {
			t.Fatalf("normalize mismatch at %d: %g vs %g", i, nx[i], ax[i]/diag[i])
		}
	}
	// Scaled RHS preserves the solution set: residual of (norm, scaled b).
	b := make([]float64, m.N())
	o.Apply(b, x) // b = A x, so x solves both systems
	sb := ScaleRHS(b, diag)
	if r := norm.ResidualNorm(x, sb); r > 1e-10 {
		t.Errorf("solution does not satisfy normalized system: residual %g", r)
	}
}

func TestOp7HalfApplyErrorBound(t *testing.T) {
	// fp16 apply must match the float64 apply of the fp16-rounded operator
	// within the standard summation error bound γ₇·Σ|terms|.
	m := Mesh{4, 4, 8}
	rng := rand.New(rand.NewSource(2))
	o := RandomDiagDominant(m, 2, rng)
	norm, _ := o.Normalize()
	h := NewOp7Half(norm)

	src64 := make([]float64, m.N())
	for i := range src64 {
		src64[i] = rng.Float64()*2 - 1
	}
	src := fp16.FromFloat64Slice(src64)
	// Reference uses the fp16-rounded inputs exactly.
	refOp := NewOp7(m)
	for i := range refOp.D {
		refOp.D[i] = 1
		refOp.XP[i] = h.XP[i].Float64()
		refOp.XM[i] = h.XM[i].Float64()
		refOp.YP[i] = h.YP[i].Float64()
		refOp.YM[i] = h.YM[i].Float64()
		refOp.ZP[i] = h.ZP[i].Float64()
		refOp.ZM[i] = h.ZM[i].Float64()
	}
	srcBack := fp16.ToFloat64Slice(src)
	want := make([]float64, m.N())
	refOp.Apply(want, srcBack)

	dst := make([]fp16.Float16, m.N())
	h.Apply(dst, src)
	gamma := 8 * fp16.Epsilon // 7 terms + final rounding, slack for subnormals
	for i := range want {
		// Σ|terms| ≤ 6·max|coeff|·max|src| + |src| ≤ 7 here.
		if math.Abs(dst[i].Float64()-want[i]) > gamma*8 {
			t.Fatalf("fp16 apply[%d] = %g, want %g ± %g", i, dst[i].Float64(), want[i], gamma*8)
		}
	}
}

func TestOp7HalfRequiresUnitDiagonal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewOp7Half should panic on a non-normalized operator")
		}
	}()
	NewOp7Half(Poisson(Mesh{2, 2, 2}, 1))
}

func TestOp9AgainstDense(t *testing.T) {
	m := Mesh2D{6, 5}
	rng := rand.New(rand.NewSource(4))
	o := Random9(m, 1.2, rng)
	src := make([]float64, m.N())
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	got := make([]float64, m.N())
	o.Apply(got, src)
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			i := m.Index(x, y)
			var want float64
			for k, off := range Off9 {
				nx, ny := x+off[0], y+off[1]
				if m.In(nx, ny) {
					want += o.C[k][i] * src[m.Index(nx, ny)]
				}
			}
			if math.Abs(got[i]-want) > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("Op9.Apply(%d,%d) = %g, want %g", x, y, got[i], want)
			}
		}
	}
}

func TestPoisson9Normalize(t *testing.T) {
	m := Mesh2D{8, 8}
	o := Poisson9(m, 0.125)
	n, scale := o.Normalize9()
	for i := 0; i < m.N(); i++ {
		if n.C[4][i] != 1 {
			t.Fatal("centre coefficient not normalized to 1")
		}
		if scale[i] <= 0 {
			t.Fatal("Poisson9 centre coefficient should be positive")
		}
	}
}

func TestApplyLinearity(t *testing.T) {
	// A(αu + v) = αAu + Av — catches index aliasing bugs.
	m := Mesh{3, 4, 5}
	rng := rand.New(rand.NewSource(13))
	o := RandomDiagDominant(m, 1.1, rng)
	f := func(alpha float64, seed int64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			return true
		}
		r := rand.New(rand.NewSource(seed))
		n := m.N()
		u := make([]float64, n)
		v := make([]float64, n)
		for i := range u {
			u[i], v[i] = r.NormFloat64(), r.NormFloat64()
		}
		w := make([]float64, n)
		for i := range w {
			w[i] = alpha*u[i] + v[i]
		}
		au := make([]float64, n)
		av := make([]float64, n)
		aw := make([]float64, n)
		o.Apply(au, u)
		o.Apply(av, v)
		o.Apply(aw, w)
		for i := range w {
			want := alpha*au[i] + av[i]
			if math.Abs(aw[i]-want) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
