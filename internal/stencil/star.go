package stencil

import (
	"math"

	"repro/internal/fp16"
)

// OpStar is a general 3D star-stencil operator: the centre plus
// axis-aligned neighbours out to per-axis widths W. It generalizes Op7
// (the W = {1,1,1} case) to the high-order stencils the stencil
// compiler opens up — the 25-point seismic Laplacian stores four
// coefficient diagonals per direction. Coefficients are indexed
// [dist-1][meshpoint]: XP[2][i] multiplies the neighbour at x+3 of
// point i.
type OpStar struct {
	M Mesh
	W [3]int // per-axis halo widths (x, y, z), each >= 1
	// Boundary selects Dirichlet truncation (wafer-lowerable) or
	// periodic wrap (host reference only).
	Boundary Boundary

	C                      []float64   // centre coefficient
	XP, XM, YP, YM, ZP, ZM [][]float64 // [dist-1], each of length M.N()
}

// NewOpStar allocates a zero operator on m with widths w.
func NewOpStar(m Mesh, w [3]int) *OpStar {
	o := &OpStar{M: m, W: w, C: make([]float64, m.N())}
	alloc := func(width int) [][]float64 {
		cols := make([][]float64, width)
		for i := range cols {
			cols[i] = make([]float64, m.N())
		}
		return cols
	}
	o.XP, o.XM = alloc(w[0]), alloc(w[0])
	o.YP, o.YM = alloc(w[1]), alloc(w[1])
	o.ZP, o.ZM = alloc(w[2]), alloc(w[2])
	return o
}

// neighbour returns the linear index of (x,y,z) offset by dist along
// axis, or -1 under Dirichlet truncation when it leaves the mesh.
func (o *OpStar) neighbour(x, y, z, axis, dist int) int {
	m := o.M
	switch axis {
	case 0:
		x += dist
	case 1:
		y += dist
	default:
		z += dist
	}
	if o.Boundary == Periodic {
		x, y, z = wrap(x, m.NX), wrap(y, m.NY), wrap(z, m.NZ)
	} else if x < 0 || x >= m.NX || y < 0 || y >= m.NY || z < 0 || z >= m.NZ {
		return -1
	}
	return m.Index(x, y, z)
}

func wrap(i, n int) int { return ((i % n) + n) % n }

// Apply computes dst = A·src in float64, accumulating terms in the
// compiler's canonical order (z pairs by distance, then lateral
// direction-major, then the centre) so host diagnostics are
// deterministic across runs.
func (o *OpStar) Apply(dst, src []float64) {
	m := o.M
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			for z := 0; z < m.NZ; z++ {
				i := m.Index(x, y, z)
				var s float64
				for k := 1; k <= o.W[2]; k++ {
					if j := o.neighbour(x, y, z, 2, -k); j >= 0 {
						s += o.ZM[k-1][i] * src[j]
					}
					if j := o.neighbour(x, y, z, 2, k); j >= 0 {
						s += o.ZP[k-1][i] * src[j]
					}
				}
				for k := 1; k <= o.W[0]; k++ {
					if j := o.neighbour(x, y, z, 0, k); j >= 0 {
						s += o.XP[k-1][i] * src[j]
					}
				}
				for k := 1; k <= o.W[0]; k++ {
					if j := o.neighbour(x, y, z, 0, -k); j >= 0 {
						s += o.XM[k-1][i] * src[j]
					}
				}
				for k := 1; k <= o.W[1]; k++ {
					if j := o.neighbour(x, y, z, 1, k); j >= 0 {
						s += o.YP[k-1][i] * src[j]
					}
				}
				for k := 1; k <= o.W[1]; k++ {
					if j := o.neighbour(x, y, z, 1, -k); j >= 0 {
						s += o.YM[k-1][i] * src[j]
					}
				}
				dst[i] = s + o.C[i]*src[i]
			}
		}
	}
}

// Normalize divides every row by its centre coefficient, returning the
// unit-diagonal operator and the scale vector (apply to the RHS with
// ScaleRHS). It panics on a zero centre.
func (o *OpStar) Normalize() (*OpStar, []float64) {
	out := NewOpStar(o.M, o.W)
	out.Boundary = o.Boundary
	scale := make([]float64, o.M.N())
	groups := [][2][][]float64{
		{o.XP, out.XP}, {o.XM, out.XM},
		{o.YP, out.YP}, {o.YM, out.YM},
		{o.ZP, out.ZP}, {o.ZM, out.ZM},
	}
	for i := 0; i < o.M.N(); i++ {
		d := o.C[i]
		if d == 0 {
			panic("stencil: zero centre coefficient")
		}
		scale[i] = d
		out.C[i] = 1
		for _, g := range groups {
			for k := range g[0] {
				g[1][k][i] = g[0][k][i] / d
			}
		}
	}
	return out, scale
}

// IsUnitDiagonal reports whether every centre coefficient is exactly 1.
func (o *OpStar) IsUnitDiagonal() bool {
	for _, v := range o.C {
		if v != 1 {
			return false
		}
	}
	return true
}

// ResidualNorm returns ‖b − A·x‖₂.
func (o *OpStar) ResidualNorm(x, b []float64) float64 {
	ax := make([]float64, len(x))
	o.Apply(ax, x)
	var s float64
	for i := range ax {
		d := b[i] - ax[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// OpStarHalf is the fp16 image of a unit-diagonal star operator —
// what a wafer tile stores. Its Apply is the functional reference the
// compiled Program3D must match bitwise.
type OpStarHalf struct {
	M                      Mesh
	W                      [3]int
	XP, XM, YP, YM, ZP, ZM [][]fp16.Float16
}

// NewOpStarHalf rounds a unit-diagonal star operator to fp16 storage.
// It panics if the operator has not been normalized or is periodic
// (the fp16 reference replays the wafer's Dirichlet program order).
func NewOpStarHalf(o *OpStar) *OpStarHalf {
	if !o.IsUnitDiagonal() {
		panic("stencil: OpStarHalf requires a diagonally preconditioned (unit-diagonal) operator")
	}
	if o.Boundary != Dirichlet {
		panic("stencil: OpStarHalf is the wafer reference; only Dirichlet truncation lowers")
	}
	h := &OpStarHalf{M: o.M, W: o.W}
	round := func(cols [][]float64) [][]fp16.Float16 {
		out := make([][]fp16.Float16, len(cols))
		for i, c := range cols {
			out[i] = fp16.FromFloat64Slice(c)
		}
		return out
	}
	h.XP, h.XM = round(o.XP), round(o.XM)
	h.YP, h.YM = round(o.YP), round(o.YM)
	h.ZP, h.ZM = round(o.ZP), round(o.ZM)
	return h
}

// Apply computes dst = A·src with fp16 arithmetic in the compiler's
// canonical rounding order: the distance-1 zm term is a bare multiply
// (the compiled program's first MemOp overwrites the zeroed result
// column, preserving a negative-zero product where add-to-zero would
// not), every later term is a multiply then an accumulate add — z pairs
// by distance, lateral terms direction-major (xp, xm, yp, ym) with
// distance inner, then the unmultiplied unit diagonal. At W = {1,1,1}
// this is exactly Op7Half.Apply, which the 7-point equivalence test
// pins bitwise.
func (o *OpStarHalf) Apply(dst, src []fp16.Float16) {
	m := o.M
	nz := m.NZ
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			base := (y*m.NX + x) * nz
			for z := 0; z < nz; z++ {
				i := base + z
				s := fp16.Zero
				if z > 0 {
					s = fp16.Mul(o.ZM[0][i], src[i-1])
				}
				if z+1 < nz {
					s = fp16.Add(s, fp16.Mul(o.ZP[0][i], src[i+1]))
				}
				for k := 2; k <= o.W[2]; k++ {
					if z-k >= 0 {
						s = fp16.Add(s, fp16.Mul(o.ZM[k-1][i], src[i-k]))
					}
					if z+k < nz {
						s = fp16.Add(s, fp16.Mul(o.ZP[k-1][i], src[i+k]))
					}
				}
				for k := 1; k <= o.W[0]; k++ {
					if x+k < m.NX {
						s = fp16.Add(s, fp16.Mul(o.XP[k-1][i], src[i+k*nz]))
					}
				}
				for k := 1; k <= o.W[0]; k++ {
					if x-k >= 0 {
						s = fp16.Add(s, fp16.Mul(o.XM[k-1][i], src[i-k*nz]))
					}
				}
				for k := 1; k <= o.W[1]; k++ {
					if y+k < m.NY {
						s = fp16.Add(s, fp16.Mul(o.YP[k-1][i], src[i+k*m.NX*nz]))
					}
				}
				for k := 1; k <= o.W[1]; k++ {
					if y-k >= 0 {
						s = fp16.Add(s, fp16.Mul(o.YM[k-1][i], src[i-k*m.NX*nz]))
					}
				}
				dst[i] = fp16.Add(s, src[i]) // unit main diagonal
			}
		}
	}
}

// laplace8 holds the 8th-order central finite-difference weights of the
// second derivative: d²u/dx² ≈ (Σ_k w[k](u₊ₖ + u₋ₖ) − a0·u)/h².
var laplace8 = [4]float64{8.0 / 5, -1.0 / 5, 8.0 / 315, -1.0 / 560}

const laplace8Centre = 205.0 / 72

// Seismic25 builds the 25-point high-order seismic operator
// A = I + s·(−Δ₈), the implicit step of an acoustic wave propagation
// with s = (v·dt/h)²: an 8th-order Laplacian star of width 4 on every
// axis (Jacquelin et al.'s wafer workload). The discrete −Δ₈ symbol is
// nonnegative, so A's spectrum sits in [1, 1 + s·λmax] and BiCGStab
// converges fast for moderate s.
func Seismic25(m Mesh, s float64) *OpStar {
	o := NewOpStar(m, [3]int{4, 4, 4})
	centre := 1 + 3*s*laplace8Centre
	for i := 0; i < m.N(); i++ {
		o.C[i] = centre
		for k := 0; k < 4; k++ {
			w := -s * laplace8[k]
			o.XP[k][i], o.XM[k][i] = w, w
			o.YP[k][i], o.YM[k][i] = w, w
			o.ZP[k][i], o.ZM[k][i] = w, w
		}
	}
	return o
}

// Heat3D builds the implicit-Euler heat step (I + λ·(−Δ₂)) with
// λ = α·dt/h²: the 7-point width-1 star. Each time step solves
// A·u⁽ⁿ⁺¹⁾ = u⁽ⁿ⁾; the implicit form is unconditionally stable, so λ
// is a accuracy knob, not a stability bound.
func Heat3D(m Mesh, lambda float64, boundary Boundary) *OpStar {
	o := NewOpStar(m, [3]int{1, 1, 1})
	o.Boundary = boundary
	for i := 0; i < m.N(); i++ {
		o.C[i] = 1 + 6*lambda
		o.XP[0][i], o.XM[0][i] = -lambda, -lambda
		o.YP[0][i], o.YM[0][i] = -lambda, -lambda
		o.ZP[0][i], o.ZM[0][i] = -lambda, -lambda
	}
	return o
}

// Heat2D builds the 2D implicit-Euler heat step (I + λ·(−Δ₂)) as a
// 9-point operator with zero corners — the coefficient source for the
// compiled 5-point star program, which checks the corners are zero and
// emits four fewer MemOps than the box.
func Heat2D(m Mesh2D, lambda float64) *Op9 {
	o := NewOp9(m)
	for i := 0; i < m.N(); i++ {
		o.C[4][i] = 1 + 4*lambda
		o.C[1][i], o.C[3][i], o.C[5][i], o.C[7][i] = -lambda, -lambda, -lambda, -lambda
	}
	return o
}

// FromOp7 views a unit-diagonal 7-point operator as the width-1 star
// (shared backing arrays, no copy).
func FromOp7(o *Op7) *OpStar {
	return &OpStar{
		M: o.M, W: [3]int{1, 1, 1}, C: o.D,
		XP: [][]float64{o.XP}, XM: [][]float64{o.XM},
		YP: [][]float64{o.YP}, YM: [][]float64{o.YM},
		ZP: [][]float64{o.ZP}, ZM: [][]float64{o.ZM},
	}
}

// HalfFromOp7 views a 7-point fp16 operator as the width-1 star half
// image (shared backing arrays, no copy).
func HalfFromOp7(o *Op7Half) *OpStarHalf {
	return &OpStarHalf{
		M: o.M, W: [3]int{1, 1, 1},
		XP: [][]fp16.Float16{o.XP}, XM: [][]fp16.Float16{o.XM},
		YP: [][]fp16.Float16{o.YP}, YM: [][]fp16.Float16{o.YM},
		ZP: [][]fp16.Float16{o.ZP}, ZM: [][]fp16.Float16{o.ZM},
	}
}
