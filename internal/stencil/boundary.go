package stencil

import "fmt"

// Boundary selects how an operator treats neighbours beyond the mesh.
type Boundary int

// Boundary rules.
const (
	// Dirichlet truncates: off-mesh neighbours contribute zero (the
	// rule every wafer kernel implements — a missing term is a skipped
	// instruction, bit-identical to adding nothing).
	Dirichlet Boundary = iota
	// Periodic wraps indices around the mesh. Host references only;
	// the wafer exchange schedules have no wrap channels.
	Periodic
)

// String names the boundary rule.
func (b Boundary) String() string {
	switch b {
	case Dirichlet:
		return "dirichlet"
	case Periodic:
		return "periodic"
	default:
		return fmt.Sprintf("boundary(%d)", int(b))
	}
}

// ParseBoundary maps flag/wire names to a boundary rule.
func ParseBoundary(s string) (Boundary, error) {
	switch s {
	case "dirichlet":
		return Dirichlet, nil
	case "periodic":
		return Periodic, nil
	}
	return 0, fmt.Errorf("stencil: unknown boundary %q (want dirichlet or periodic)", s)
}
