package stencil

import "math/rand"

// Mesh2D describes an X × Y planar mesh for the paper's sketched 2D
// mapping, where each tile owns a b×b block of meshpoints rather than a
// Z-column.
type Mesh2D struct {
	NX, NY int
}

// N returns the number of meshpoints.
func (m Mesh2D) N() int { return m.NX * m.NY }

// Index returns the linear index of (x, y), row-major.
func (m Mesh2D) Index(x, y int) int { return y*m.NX + x }

// In reports whether (x, y) lies inside the mesh.
func (m Mesh2D) In(x, y int) bool {
	return x >= 0 && x < m.NX && y >= 0 && y < m.NY
}

// Off9 lists the nine stencil offsets of the 2D 9-point stencil in a fixed
// order: index 4 is the centre.
var Off9 = [9][2]int{
	{-1, -1}, {0, -1}, {1, -1},
	{-1, 0}, {0, 0}, {1, 0},
	{-1, 1}, {0, 1}, {1, 1},
}

// Op9 is a 9-point stencil operator on a 2D mesh with zero-Dirichlet
// truncation. C[k][i] multiplies the neighbour at offset Off9[k] of point i.
type Op9 struct {
	M Mesh2D
	C [9][]float64
}

// NewOp9 allocates a zero operator on m.
func NewOp9(m Mesh2D) *Op9 {
	o := &Op9{M: m}
	for k := range o.C {
		o.C[k] = make([]float64, m.N())
	}
	return o
}

// Apply computes dst = A·src in float64.
func (o *Op9) Apply(dst, src []float64) {
	m := o.M
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			i := m.Index(x, y)
			var s float64
			for k, off := range Off9 {
				nx, ny := x+off[0], y+off[1]
				if m.In(nx, ny) {
					s += o.C[k][i] * src[m.Index(nx, ny)]
				}
			}
			dst[i] = s
		}
	}
}

// Poisson9 builds the 9-point ("Mehrstellen") discrete Laplacian with
// spacing h: centre 20/(6h²), edge neighbours −4/(6h²), corners −1/(6h²).
func Poisson9(m Mesh2D, h float64) *Op9 {
	o := NewOp9(m)
	f := 1 / (6 * h * h)
	w := [9]float64{-1, -4, -1, -4, 20, -4, -1, -4, -1}
	for k := range o.C {
		for i := range o.C[k] {
			o.C[k][i] = w[k] * f
		}
	}
	return o
}

// Normalize9 row-scales the operator so the centre coefficient is one,
// matching the "most problems will precondition the main diagonal to
// unity" assumption of the 2D mapping analysis.
func (o *Op9) Normalize9() (*Op9, []float64) {
	out := NewOp9(o.M)
	scale := make([]float64, o.M.N())
	for i := 0; i < o.M.N(); i++ {
		d := o.C[4][i]
		if d == 0 {
			panic("stencil: zero centre coefficient")
		}
		scale[i] = d
		for k := range o.C {
			out.C[k][i] = o.C[k][i] / d
		}
	}
	return out, scale
}

// Random9 builds a random diagonally dominant 9-point operator.
func Random9(m Mesh2D, dom float64, rng *rand.Rand) *Op9 {
	o := NewOp9(m)
	for i := 0; i < m.N(); i++ {
		sum := 0.0
		for k := range o.C {
			if k == 4 {
				continue
			}
			v := rng.Float64()*2 - 1
			o.C[k][i] = v
			if v < 0 {
				sum -= v
			} else {
				sum += v
			}
		}
		o.C[4][i] = dom*sum + 0.1
	}
	return o
}
