package stencil

import "repro/internal/fp16"

// Op7Half is the fp16 image of a unit-diagonal 7-point operator: the six
// off-diagonal coefficient vectors rounded to fp16, exactly what a wafer
// tile stores ("we only store six other diagonals"). Its Apply is the
// sequential reference for the wafer SpMV kernel: fp16 multiplies and fp16
// adds in a fixed order.
type Op7Half struct {
	M                      Mesh
	XP, XM, YP, YM, ZP, ZM []fp16.Float16
}

// NewOp7Half rounds a unit-diagonal operator to fp16 storage. It panics if
// the operator has not been normalized: the wafer kernels assume the main
// diagonal is all ones and perform no multiply for it.
func NewOp7Half(o *Op7) *Op7Half {
	if !o.IsUnitDiagonal() {
		panic("stencil: Op7Half requires a diagonally preconditioned (unit-diagonal) operator")
	}
	return &Op7Half{
		M:  o.M,
		XP: fp16.FromFloat64Slice(o.XP), XM: fp16.FromFloat64Slice(o.XM),
		YP: fp16.FromFloat64Slice(o.YP), YM: fp16.FromFloat64Slice(o.YM),
		ZP: fp16.FromFloat64Slice(o.ZP), ZM: fp16.FromFloat64Slice(o.ZM),
	}
}

// Apply computes dst = A·src with fp16 arithmetic: each of the six
// neighbour terms is an fp16 product accumulated with fp16 adds, then the
// unit-diagonal contribution is added — seven terms per point, matching
// Table I's 12 HP ops per meshpoint per matvec plus the unmultiplied
// diagonal. The accumulation order is fixed (zm, zp, xp, xm, yp, ym, c);
// the wafer's order is nondeterministic, so cross-checks use error bounds,
// not bit equality.
func (o *Op7Half) Apply(dst, src []fp16.Float16) {
	m := o.M
	nz := m.NZ
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			base := (y*m.NX + x) * nz
			for z := 0; z < nz; z++ {
				i := base + z
				s := fp16.Zero
				if z > 0 {
					s = fp16.Mul(o.ZM[i], src[i-1])
				}
				if z+1 < nz {
					s = fp16.Add(s, fp16.Mul(o.ZP[i], src[i+1]))
				}
				if x+1 < m.NX {
					s = fp16.Add(s, fp16.Mul(o.XP[i], src[i+nz]))
				}
				if x > 0 {
					s = fp16.Add(s, fp16.Mul(o.XM[i], src[i-nz]))
				}
				if y+1 < m.NY {
					s = fp16.Add(s, fp16.Mul(o.YP[i], src[i+m.NX*nz]))
				}
				if y > 0 {
					s = fp16.Add(s, fp16.Mul(o.YM[i], src[i-m.NX*nz]))
				}
				dst[i] = fp16.Add(s, src[i]) // unit main diagonal
			}
		}
	}
}
