// Package stencil defines the regular-mesh finite-difference operators the
// paper solves: the 7-point stencil on a 3D mesh (the CS-1 BiCGStab
// experiment) and the 9-point stencil on a 2D mesh (the sketched 2D SpMV
// mapping). Operators are stored as one coefficient array per nonzero
// diagonal, exactly the layout each wafer tile holds ("we map the needed
// portion of its nonzero diagonals to each core").
//
// Index ordering is column-major over the fabric mapping: meshpoint
// (x, y, z) lives at (y·NX + x)·NZ + z, so that the Z-column owned by one
// tile is contiguous.
package stencil

import (
	"fmt"
	"math"
	"math/rand"
)

// Mesh describes an X × Y × Z box mesh.
type Mesh struct {
	NX, NY, NZ int
}

// N returns the number of meshpoints.
func (m Mesh) N() int { return m.NX * m.NY * m.NZ }

// Index returns the linear index of (x, y, z).
func (m Mesh) Index(x, y, z int) int { return (y*m.NX+x)*m.NZ + z }

// Coords inverts Index.
func (m Mesh) Coords(i int) (x, y, z int) {
	z = i % m.NZ
	c := i / m.NZ
	x = c % m.NX
	y = c / m.NX
	return
}

// In reports whether (x, y, z) lies inside the mesh.
func (m Mesh) In(x, y, z int) bool {
	return x >= 0 && x < m.NX && y >= 0 && y < m.NY && z >= 0 && z < m.NZ
}

func (m Mesh) String() string { return fmt.Sprintf("%d×%d×%d", m.NX, m.NY, m.NZ) }

// Op7 is a 7-point stencil operator on a 3D mesh with zero-Dirichlet
// truncation at the boundary. D is the main diagonal; XP is the coefficient
// multiplying the +x neighbour, and so on. All arrays have length M.N().
type Op7 struct {
	M                         Mesh
	D, XP, XM, YP, YM, ZP, ZM []float64
}

// NewOp7 allocates a zero operator on m.
func NewOp7(m Mesh) *Op7 {
	n := m.N()
	return &Op7{
		M: m,
		D: make([]float64, n), XP: make([]float64, n), XM: make([]float64, n),
		YP: make([]float64, n), YM: make([]float64, n),
		ZP: make([]float64, n), ZM: make([]float64, n),
	}
}

// Apply computes dst = A·src in float64, the reference arithmetic for all
// correctness tests. Out-of-mesh neighbours contribute zero.
func (o *Op7) Apply(dst, src []float64) {
	m := o.M
	nz := m.NZ
	for y := 0; y < m.NY; y++ {
		for x := 0; x < m.NX; x++ {
			base := (y*m.NX + x) * nz
			for z := 0; z < nz; z++ {
				i := base + z
				s := o.D[i] * src[i]
				if x+1 < m.NX {
					s += o.XP[i] * src[i+nz]
				}
				if x > 0 {
					s += o.XM[i] * src[i-nz]
				}
				if y+1 < m.NY {
					s += o.YP[i] * src[i+m.NX*nz]
				}
				if y > 0 {
					s += o.YM[i] * src[i-m.NX*nz]
				}
				if z+1 < nz {
					s += o.ZP[i] * src[i+1]
				}
				if z > 0 {
					s += o.ZM[i] * src[i-1]
				}
				dst[i] = s
			}
		}
	}
}

// IsUnitDiagonal reports whether every main-diagonal entry is exactly 1,
// the postcondition of Normalize and the precondition of the wafer kernels
// (which do not store or multiply the main diagonal).
func (o *Op7) IsUnitDiagonal() bool {
	for _, d := range o.D {
		if d != 1 {
			return false
		}
	}
	return true
}

// Normalize returns the row-scaled (Jacobi / diagonally preconditioned)
// operator D⁻¹A, whose main diagonal is all ones, together with the
// original diagonal. Solving (D⁻¹A)x = D⁻¹b yields the same x; callers
// scale the right-hand side with ScaleRHS.
func (o *Op7) Normalize() (*Op7, []float64) {
	n := o.M.N()
	scale := make([]float64, n)
	out := NewOp7(o.M)
	for i := 0; i < n; i++ {
		d := o.D[i]
		if d == 0 {
			panic("stencil: zero diagonal; operator cannot be diagonally preconditioned")
		}
		scale[i] = d
		out.D[i] = 1
		out.XP[i] = o.XP[i] / d
		out.XM[i] = o.XM[i] / d
		out.YP[i] = o.YP[i] / d
		out.YM[i] = o.YM[i] / d
		out.ZP[i] = o.ZP[i] / d
		out.ZM[i] = o.ZM[i] / d
	}
	return out, scale
}

// ScaleRHS returns b scaled by the diagonal returned from Normalize.
func ScaleRHS(b, diag []float64) []float64 {
	out := make([]float64, len(b))
	for i := range b {
		out[i] = b[i] / diag[i]
	}
	return out
}

// Poisson builds the standard 7-point discrete Laplacian −Δ on m with grid
// spacing h and zero Dirichlet boundaries: diagonal 6/h², neighbours −1/h².
// It is symmetric positive definite.
func Poisson(m Mesh, h float64) *Op7 {
	o := NewOp7(m)
	ih2 := 1 / (h * h)
	for i := range o.D {
		o.D[i] = 6 * ih2
		o.XP[i], o.XM[i] = -ih2, -ih2
		o.YP[i], o.YM[i] = -ih2, -ih2
		o.ZP[i], o.ZM[i] = -ih2, -ih2
	}
	return o
}

// ConvectionDiffusion builds a nonsymmetric 7-point operator for
// −ν∆u + w·∇u with first-order upwinding of the convective term, the class
// of system BiCGStab exists for. w is the (constant) convection velocity.
func ConvectionDiffusion(m Mesh, nu float64, w [3]float64, h float64) *Op7 {
	o := NewOp7(m)
	ih2 := nu / (h * h)
	ih := 1 / h
	up := func(wc float64) (plus, minus, diag float64) {
		// Donor-cell upwinding: flow in +direction takes from the −side.
		if wc >= 0 {
			return 0, -wc * ih, wc * ih
		}
		return wc * ih, 0, -wc * ih
	}
	xp, xm, xd := up(w[0])
	yp, ym, yd := up(w[1])
	zp, zm, zd := up(w[2])
	for i := range o.D {
		o.D[i] = 6*ih2 + xd + yd + zd
		o.XP[i] = -ih2 + xp
		o.XM[i] = -ih2 + xm
		o.YP[i] = -ih2 + yp
		o.YM[i] = -ih2 + ym
		o.ZP[i] = -ih2 + zp
		o.ZM[i] = -ih2 + zm
	}
	return o
}

// MomentumLike builds the kind of system Figure 9 solves: the implicit
// timestep discretization of a momentum equation — convection–diffusion
// plus a ρ/Δt mass term on the diagonal, making it nonsymmetric and
// strongly diagonally dominant.
func MomentumLike(m Mesh, nu float64, w [3]float64, h, rho, dt float64) *Op7 {
	o := ConvectionDiffusion(m, nu, w, h)
	mass := rho / dt
	for i := range o.D {
		o.D[i] += mass
	}
	return o
}

// RandomDiagDominant builds a random nonsymmetric operator with row
// diagonal dominance factor >= dom (> 1 guarantees convergence of the
// iteration and is used by property tests).
func RandomDiagDominant(m Mesh, dom float64, rng *rand.Rand) *Op7 {
	o := NewOp7(m)
	for i := range o.D {
		sum := 0.0
		for _, c := range []*[]float64{&o.XP, &o.XM, &o.YP, &o.YM, &o.ZP, &o.ZM} {
			v := rng.Float64()*2 - 1
			(*c)[i] = v
			sum += math.Abs(v)
		}
		o.D[i] = dom*sum + 0.1
	}
	return o
}

// ResidualNorm returns ‖b − A·x‖₂ computed in float64.
func (o *Op7) ResidualNorm(x, b []float64) float64 {
	ax := make([]float64, len(x))
	o.Apply(ax, x)
	var s float64
	for i := range b {
		d := b[i] - ax[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Norm2 is the Euclidean norm in float64.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}
