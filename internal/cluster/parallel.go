package cluster

import (
	stdctx "context"
	"fmt"
	"math"
	"math/big"
	"sync"

	"repro/internal/stencil"
)

// ParallelBiCGStab runs the float64 BiCGStab solve SPMD-style over ranks
// goroutine-ranks with 3D block decomposition, channel-based halo
// exchange and an exactly rounded allreduce — the communication
// structure the Joule timing model charges for. It returns the solution
// and the per-iteration relative residual history.
//
// Determinism contract: results are bit-identical across runs AND across
// rank counts. Every inner product is computed as the exactly rounded
// sum of its (correctly rounded) elementwise products — each rank
// accumulates into a fixed-point-exact wide accumulator, the root
// combines rank contributions exactly and rounds once to float64 — so
// the value cannot depend on how the mesh was decomposed or how the
// goroutines were scheduled. All remaining arithmetic is elementwise
// with identical association at every decomposition. The rank-sweep
// tests in parallel_test.go enforce the contract. One caveat: if a dot
// encounters a non-finite product (an already-diverged solve), the
// reduction degrades to the rank-ordered float64 sum of naive partials
// — still deterministic for a fixed rank count, but the across-rank-
// counts guarantee applies only while all products are finite.
//
// The operator must be unit-diagonal (call Normalize first), matching
// the other backends.
func ParallelBiCGStab(op *stencil.Op7, b []float64, ranks, maxIter int, tol float64) ([]float64, []float64, error) {
	return ParallelBiCGStabContext(nil, op, b, ranks, maxIter, tol)
}

// ParallelBiCGStabContext is ParallelBiCGStab with cooperative
// cancellation (ctx may be nil). SPMD ranks must never diverge on
// whether a collective happens — a rank that observed cancellation
// while a peer did not would deadlock the blocking allreduce — so
// cancellation is itself a collective: at the top of every iteration
// rank 0 polls ctx and contributes the verdict through the reducer,
// and every rank sees the identical value and unwinds (or continues)
// together. The poll runs only when ctx is non-nil, so context-free
// solves pay nothing.
func ParallelBiCGStabContext(ctx stdctx.Context, op *stencil.Op7, b []float64, ranks, maxIter int, tol float64) ([]float64, []float64, error) {
	if !op.IsUnitDiagonal() {
		return nil, nil, fmt.Errorf("cluster: operator must be unit-diagonal")
	}
	m := op.M
	px, py, pz := Decompose3D(m, ranks)
	if px*py*pz != ranks {
		return nil, nil, fmt.Errorf("cluster: cannot decompose %d ranks", ranks)
	}
	if m.NX%px != 0 || m.NY%py != 0 || m.NZ%pz != 0 {
		return nil, nil, fmt.Errorf("cluster: mesh %v does not divide into %d×%d×%d blocks", m, px, py, pz)
	}

	g := &grid{op: op, m: m, ctx: ctx, px: px, py: py, pz: pz,
		bx: m.NX / px, by: m.NY / py, bz: m.NZ / pz}
	g.reducer = newReducer(ranks)
	// Halo mailboxes: one buffered channel per (rank, face).
	g.mail = make([][6]chan []float64, ranks)
	for r := range g.mail {
		for f := 0; f < 6; f++ {
			g.mail[r][f] = make(chan []float64, 1)
		}
	}

	x := make([]float64, m.N())
	history := make([]float64, 0, maxIter)
	var histMu sync.Mutex

	var wg sync.WaitGroup
	wg.Add(ranks)
	errs := make([]error, ranks)
	for r := 0; r < ranks; r++ {
		go func(r int) {
			defer wg.Done()
			h, err := g.runRank(r, b, x, maxIter, tol)
			if err != nil {
				errs[r] = err
				return
			}
			if r == 0 {
				histMu.Lock()
				history = append(history, h...)
				histMu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return x, history, nil
}

// grid is the shared immutable decomposition plus communication plumbing.
type grid struct {
	op         *stencil.Op7
	m          stencil.Mesh
	ctx        stdctx.Context // nil = never canceled
	px, py, pz int
	bx, by, bz int
	mail       [][6]chan []float64
	reducer    *reducer
}

// Faces: 0 +x, 1 −x, 2 +y, 3 −y, 4 +z, 5 −z.
var faceOpp = [6]int{1, 0, 3, 2, 5, 4}

func (g *grid) rankOf(ix, iy, iz int) int { return (iz*g.py+iy)*g.px + ix }

// runRank executes one SPMD rank.
func (g *grid) runRank(r int, bGlobal, xGlobal []float64, maxIter int, tol float64) ([]float64, error) {
	ix := r % g.px
	iy := (r / g.px) % g.py
	iz := r / (g.px * g.py)
	x0, y0, z0 := ix*g.bx, iy*g.by, iz*g.bz
	n := g.bx * g.by * g.bz
	li := func(x, y, z int) int { return (y*g.bx+x)*g.bz + z } // local index
	gi := func(x, y, z int) int { return g.m.Index(x0+x, y0+y, z0+z) }

	load := func(src []float64) []float64 {
		out := make([]float64, n)
		for y := 0; y < g.by; y++ {
			for x := 0; x < g.bx; x++ {
				for z := 0; z < g.bz; z++ {
					out[li(x, y, z)] = src[gi(x, y, z)]
				}
			}
		}
		return out
	}

	b := load(bGlobal)
	xv := make([]float64, n)
	r0 := make([]float64, n)
	rv := make([]float64, n)
	p := make([]float64, n)
	s := make([]float64, n)
	q := make([]float64, n)
	y := make([]float64, n)

	// Halo working buffers for the source vector of each SpMV.
	halos := newHaloBufs(g)

	// spmv computes dst = A·src with halo exchange.
	spmv := func(dst, src []float64) {
		g.exchange(r, ix, iy, iz, src, halos, li)
		for yy := 0; yy < g.by; yy++ {
			for xx := 0; xx < g.bx; xx++ {
				for zz := 0; zz < g.bz; zz++ {
					i := gi(xx, yy, zz)
					l := li(xx, yy, zz)
					acc := src[l] // unit diagonal
					acc += g.op.XP[i] * g.neighbor(src, halos, li, xx+1, yy, zz, 0)
					acc += g.op.XM[i] * g.neighbor(src, halos, li, xx-1, yy, zz, 1)
					acc += g.op.YP[i] * g.neighbor(src, halos, li, xx, yy+1, zz, 2)
					acc += g.op.YM[i] * g.neighbor(src, halos, li, xx, yy-1, zz, 3)
					acc += g.op.ZP[i] * g.neighbor(src, halos, li, xx, yy, zz+1, 4)
					acc += g.op.ZM[i] * g.neighbor(src, halos, li, xx, yy, zz-1, 5)
					dst[l] = acc
				}
			}
		}
	}
	// Per-rank reusable exact accumulator and term scratch for dots.
	acc := new(big.Float).SetPrec(exactPrec)
	term := new(big.Float).SetPrec(53)
	dot := func(a, bb []float64) float64 {
		acc.SetInt64(0)
		var naive float64
		finite := true
		for i := range a {
			p := a[i] * bb[i]
			naive += p
			if finite && isFinite(p) {
				term.SetFloat64(p)
				acc.Add(acc, term)
			} else {
				finite = false
			}
		}
		return g.reducer.allreduce(r, acc, naive, finite)
	}

	// canceled is the collective cancellation poll: rank 0 reads ctx and
	// its verdict reaches every rank through the same exact allreduce the
	// dots use, so all ranks agree on whether this iteration runs.
	canceled := func() bool {
		if g.ctx == nil {
			return false
		}
		var flag float64
		if r == 0 && g.ctx.Err() != nil {
			flag = 1
		}
		acc.SetInt64(0)
		term.SetFloat64(flag)
		acc.Add(acc, term)
		return g.reducer.allreduce(r, acc, flag, true) != 0
	}

	// r0 = r = p = b (zero initial guess).
	copy(r0, b)
	copy(rv, b)
	copy(p, b)
	bnorm := math.Sqrt(dot(b, b))
	if bnorm == 0 {
		return nil, fmt.Errorf("cluster: zero right-hand side")
	}
	rho := dot(r0, rv)

	var history []float64
	store := func() {
		for yy := 0; yy < g.by; yy++ {
			for xx := 0; xx < g.bx; xx++ {
				for zz := 0; zz < g.bz; zz++ {
					xGlobal[gi(xx, yy, zz)] = xv[li(xx, yy, zz)]
				}
			}
		}
	}

	for it := 0; it < maxIter; it++ {
		if canceled() {
			// Rank 0 observed ctx done before the poll, and the reducer's
			// release happens-after that observation, so ctx.Err() is
			// non-nil on every rank here.
			return nil, fmt.Errorf("cluster: solve canceled: %w", g.ctx.Err())
		}
		spmv(s, p)
		r0s := dot(r0, s)
		if r0s == 0 {
			break
		}
		alpha := rho / r0s
		for i := range q {
			q[i] = rv[i] - alpha*s[i]
		}
		spmv(y, q)
		qy := dot(q, y)
		yy := dot(y, y)
		if yy == 0 {
			for i := range xv {
				xv[i] += alpha * p[i]
			}
			break
		}
		omega := qy / yy
		for i := range xv {
			xv[i] += alpha*p[i] + omega*q[i]
		}
		for i := range rv {
			rv[i] = q[i] - omega*y[i]
		}
		rel := math.Sqrt(dot(rv, rv)) / bnorm
		if r == 0 {
			history = append(history, rel)
		}
		if tol > 0 && rel <= tol {
			break
		}
		rr := dot(r0, rv)
		if rho == 0 || omega == 0 {
			break
		}
		beta := (alpha / omega) * (rr / rho)
		rho = rr
		for i := range p {
			p[i] = rv[i] + beta*(p[i]-omega*s[i])
		}
	}
	store()
	return history, nil
}

// haloBufs holds one receive buffer per face.
type haloBufs struct{ face [6][]float64 }

func newHaloBufs(g *grid) *haloBufs {
	h := &haloBufs{}
	sizes := [6]int{g.by * g.bz, g.by * g.bz, g.bx * g.bz, g.bx * g.bz, g.bx * g.by, g.bx * g.by}
	for f := 0; f < 6; f++ {
		h.face[f] = make([]float64, sizes[f])
	}
	return h
}

// exchange swaps face slabs of src with all existing neighbours.
// Protocol: post all sends (buffered channels), then receive.
func (g *grid) exchange(r, ix, iy, iz int, src []float64, h *haloBufs, li func(x, y, z int) int) {
	type nb struct {
		face int // my face index
		rank int
	}
	var nbs []nb
	if ix+1 < g.px {
		nbs = append(nbs, nb{0, g.rankOf(ix+1, iy, iz)})
	}
	if ix > 0 {
		nbs = append(nbs, nb{1, g.rankOf(ix-1, iy, iz)})
	}
	if iy+1 < g.py {
		nbs = append(nbs, nb{2, g.rankOf(ix, iy+1, iz)})
	}
	if iy > 0 {
		nbs = append(nbs, nb{3, g.rankOf(ix, iy-1, iz)})
	}
	if iz+1 < g.pz {
		nbs = append(nbs, nb{4, g.rankOf(ix, iy, iz+1)})
	}
	if iz > 0 {
		nbs = append(nbs, nb{5, g.rankOf(ix, iy, iz-1)})
	}
	for _, o := range nbs {
		g.mail[o.rank][faceOpp[o.face]] <- g.packFace(src, li, o.face)
	}
	for _, o := range nbs {
		copy(h.face[o.face], <-g.mail[r][o.face])
	}
}

// packFace extracts the boundary slab adjacent to the given face.
func (g *grid) packFace(src []float64, li func(x, y, z int) int, face int) []float64 {
	switch face {
	case 0, 1: // ±x: slab of (by × bz)
		x := 0
		if face == 0 {
			x = g.bx - 1
		}
		out := make([]float64, g.by*g.bz)
		for y := 0; y < g.by; y++ {
			for z := 0; z < g.bz; z++ {
				out[y*g.bz+z] = src[li(x, y, z)]
			}
		}
		return out
	case 2, 3: // ±y
		y := 0
		if face == 2 {
			y = g.by - 1
		}
		out := make([]float64, g.bx*g.bz)
		for x := 0; x < g.bx; x++ {
			for z := 0; z < g.bz; z++ {
				out[x*g.bz+z] = src[li(x, y, z)]
			}
		}
		return out
	default: // ±z
		z := 0
		if face == 4 {
			z = g.bz - 1
		}
		out := make([]float64, g.bx*g.by)
		for x := 0; x < g.bx; x++ {
			for y := 0; y < g.by; y++ {
				out[x*g.by+y] = src[li(x, y, z)]
			}
		}
		return out
	}
}

// neighbor reads the stencil neighbour at local offset (x, y, z), falling
// back to the received halo (or zero at the global boundary).
func (g *grid) neighbor(src []float64, h *haloBufs, li func(x, y, z int) int, x, y, z int, face int) float64 {
	if x >= 0 && x < g.bx && y >= 0 && y < g.by && z >= 0 && z < g.bz {
		return src[li(x, y, z)]
	}
	switch face {
	case 0, 1:
		if len(h.face[face]) == 0 {
			return 0
		}
		return h.face[face][y*g.bz+z]
	case 2, 3:
		return h.face[face][x*g.bz+z]
	default:
		return h.face[face][x*g.by+y]
	}
}

// exactPrec sizes the wide accumulators of the exact allreduce: the
// full fixed-point span of float64 (2^-1074 through 2^1023) is about
// 2098 bits, plus headroom for the carry growth of up to 2^20 summands.
// With this precision, adding any finite float64 into the accumulator
// is exact — no rounding ever occurs until the final conversion back to
// float64, so the sum is independent of summation order and therefore
// of the mesh decomposition.
const exactPrec = 2304

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// reducer implements a deterministic allreduce. Each rank contributes
// the exact wide-precision sum of its local products; the root adds the
// rank contributions (again exactly) and rounds once to float64. If any
// rank saw a non-finite product, the reduction degrades to the
// rank-ordered float64 sum of the naive partials, which still
// propagates Inf/NaN deterministically.
type reducer struct {
	ranks  int
	mu     sync.Mutex
	vals   []*big.Float
	naive  []float64
	finite bool
	got    int
	sum    *big.Float // root scratch
	out    []chan float64
}

func newReducer(ranks int) *reducer {
	r := &reducer{
		ranks:  ranks,
		vals:   make([]*big.Float, ranks),
		naive:  make([]float64, ranks),
		finite: true,
		sum:    new(big.Float).SetPrec(exactPrec),
		out:    make([]chan float64, ranks),
	}
	for i := range r.out {
		r.out[i] = make(chan float64, 1)
	}
	return r
}

// allreduce contributes rank r's partial and returns the exactly
// rounded global sum; all ranks block until every contribution arrived.
// The caller's accumulator is read only before the caller unblocks, so
// reusing it for the next dot is safe.
func (r *reducer) allreduce(rank int, v *big.Float, naive float64, finite bool) float64 {
	r.mu.Lock()
	r.vals[rank] = v
	r.naive[rank] = naive
	r.finite = r.finite && finite
	r.got++
	if r.got == r.ranks {
		var out float64
		if r.finite {
			r.sum.SetInt64(0)
			for _, x := range r.vals {
				r.sum.Add(r.sum, x)
			}
			out, _ = r.sum.Float64()
		} else {
			for _, x := range r.naive {
				out += x
			}
		}
		r.got = 0
		r.finite = true
		for _, ch := range r.out {
			ch <- out
		}
	}
	r.mu.Unlock()
	return <-r.out[rank]
}
