// Package cluster models the paper's CPU baseline: the NETL Joule 2.0
// supercomputer (HPE ProLiant nodes, dual Intel Xeon Gold 6148, Intel
// Omni-Path) running the BiCGStab solve inside MFIX in 64-bit arithmetic.
// It provides two things:
//
//   - a *functional* distributed-memory execution: the mesh is block
//     decomposed over P ranks, each rank a goroutine, with halo exchange
//     and ordered allreduce over channels standing in for MPI. It proves
//     the solver is partition-invariant and exercises the communication
//     structure whose costs the timing model charges for.
//
//   - a *timing model* for strong scaling (Figures 7 and 8): per-rank
//     memory-bandwidth-bound SpMV sweeps, per-message halo latency, and a
//     collective/jitter term that grows with rank count. The constants
//     are calibrated to the two published anchors — 75 ms/iteration at
//     1,024 cores and ~6 ms at 16,384 cores on the 600³ mesh — and then
//     reproduce the published *shape*: the 370³ mesh stops strong-scaling
//     beyond 8K cores, and the CS-1 outruns the 16K-core cluster by ~214×.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/stencil"
)

// Config holds the cluster timing parameters. Defaults (Joule) are
// calibrated; see the package comment and EXPERIMENTS.md.
type Config struct {
	CoresPerNode int
	// MemBWPerNode is the effective per-node memory bandwidth sustained
	// by the solver sweeps (bytes/s).
	MemBWPerNode float64
	// FlopsPerCore is the effective double-precision rate per core; the
	// paper's intro notes HPCG-class codes sustain 0.5–3.1% of peak.
	FlopsPerCore float64
	// BytesPerPoint is the memory traffic one BiCGStab iteration moves
	// per meshpoint (matrix diagonals, vector reads/writes, in float64).
	BytesPerPoint float64
	// HaloLatency is the per-message cost of a neighbour exchange.
	HaloLatency float64
	// HaloBandwidth is the per-node network bandwidth (bytes/s).
	HaloBandwidth float64
	// CollFixed + CollPerRank model the four blocking allreduces plus
	// synchronization jitter per iteration.
	CollFixed   float64
	CollPerRank float64
}

// Joule returns the calibrated Joule 2.0 model.
func Joule() Config {
	return Config{
		CoresPerNode:  40,      // dual 20-core Xeon 6148
		MemBWPerNode:  28.4e9,  // effective; calibrated to 75 ms @ 1024 cores, 600³
		FlopsPerCore:  1.0e9,   // ~1.3% of 76.8 Gflop/s peak, HPCG-class
		BytesPerPoint: 250,     // 6 diagonals + ~5 vector sweeps per iteration, fp64 with partial reuse
		HaloLatency:   5e-6,    // MPI pt2pt over Omni-Path
		HaloBandwidth: 12.5e9,  // 100 Gb/s
		CollFixed:     480e-6,  // blocking allreduces + barrier floor
		CollPerRank:   58.6e-9, // jitter growth per rank
	}
}

// Decompose3D factors p ranks into a px×py×pz grid that balances the
// block aspect ratio for the given mesh.
func Decompose3D(m stencil.Mesh, p int) (px, py, pz int) {
	best := math.MaxFloat64
	px, py, pz = p, 1, 1
	for i := 1; i <= p; i++ {
		if p%i != 0 {
			continue
		}
		for j := 1; j <= p/i; j++ {
			if (p/i)%j != 0 {
				continue
			}
			k := p / i / j
			// Surface-to-volume of the resulting block.
			bx, by, bz := float64(m.NX)/float64(i), float64(m.NY)/float64(j), float64(m.NZ)/float64(k)
			if bx < 1 || by < 1 || bz < 1 {
				continue
			}
			s := bx*by + by*bz + bx*bz
			if s < best {
				best = s
				px, py, pz = i, j, k
			}
		}
	}
	return
}

// IterBreakdown reports where one modelled iteration's time goes.
type IterBreakdown struct {
	Mem, Flop, Halo, Coll float64
}

// Total returns the iteration time: local work is the max of the memory
// and flop streams; communication adds on top (the implementation is not
// communication-hiding, like the paper's).
func (b IterBreakdown) Total() float64 {
	local := math.Max(b.Mem, b.Flop)
	return local + b.Halo + b.Coll
}

// IterationTime models one 64-bit BiCGStab iteration of an X×Y×Z mesh on
// the given core count.
func (c Config) IterationTime(m stencil.Mesh, cores int) IterBreakdown {
	n := float64(m.N())
	nodes := float64(cores) / float64(c.CoresPerNode)
	px, py, pz := Decompose3D(m, cores)
	bx := float64(m.NX) / float64(px)
	by := float64(m.NY) / float64(py)
	bz := float64(m.NZ) / float64(pz)
	surface := 2 * (bx*by + by*bz + bx*bz) // points per rank boundary

	var b IterBreakdown
	b.Mem = c.BytesPerPoint * n / (nodes * c.MemBWPerNode)
	b.Flop = 44 * n / float64(cores) / c.FlopsPerCore
	// Two SpMVs per iteration, six neighbour messages each; bandwidth
	// term charged at the node level (CoresPerNode ranks share the NIC).
	haloBytesPerNode := surface * 8 * float64(c.CoresPerNode)
	b.Halo = 2 * (6*c.HaloLatency + haloBytesPerNode/c.HaloBandwidth)
	b.Coll = c.CollFixed + c.CollPerRank*float64(cores)
	return b
}

// ScalingPoint is one row of Figure 7/8.
type ScalingPoint struct {
	Cores      int
	Seconds    float64
	Breakdown  IterBreakdown
	SpeedupVs1 float64 // relative to the smallest core count in the sweep
}

// StrongScaling sweeps core counts for a mesh, reproducing the published
// figures' series.
func StrongScaling(c Config, m stencil.Mesh, coreCounts []int) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(coreCounts))
	var base float64
	for i, p := range coreCounts {
		b := c.IterationTime(m, p)
		sp := ScalingPoint{Cores: p, Seconds: b.Total(), Breakdown: b}
		if i == 0 {
			base = sp.Seconds
		}
		sp.SpeedupVs1 = base / sp.Seconds
		out = append(out, sp)
	}
	return out
}

// Fig7Mesh and Fig8Mesh are the two published problem sizes.
var (
	Fig7Mesh = stencil.Mesh{NX: 370, NY: 370, NZ: 370}
	Fig8Mesh = stencil.Mesh{NX: 600, NY: 600, NZ: 600}
)

// PublishedCores is the core-count sweep of Figures 7 and 8.
var PublishedCores = []int{1024, 2048, 4096, 8192, 16384}

// Validate checks a config reproduces the two published anchors within
// tol (fractional); used by tests and cmd/repro.
func (c Config) Validate(tol float64) error {
	t1024 := c.IterationTime(Fig8Mesh, 1024).Total()
	t16k := c.IterationTime(Fig8Mesh, 16384).Total()
	if math.Abs(t1024-75e-3)/75e-3 > tol {
		return fmt.Errorf("cluster: 600³ @1024 = %.1f ms, published 75 ms", t1024*1e3)
	}
	if math.Abs(t16k-6e-3)/6e-3 > tol {
		return fmt.Errorf("cluster: 600³ @16K = %.2f ms, published ~6 ms", t16k*1e3)
	}
	return nil
}
