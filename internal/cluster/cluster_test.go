package cluster_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/solver"
	"repro/internal/stencil"
)

func TestDecompose3D(t *testing.T) {
	m := stencil.Mesh{NX: 64, NY: 64, NZ: 64}
	for _, p := range []int{1, 2, 4, 8, 16, 64, 512} {
		px, py, pz := cluster.Decompose3D(m, p)
		if px*py*pz != p {
			t.Errorf("p=%d: %d×%d×%d does not multiply out", p, px, py, pz)
		}
	}
	// A flat mesh should not be cut along its thin axis.
	flat := stencil.Mesh{NX: 128, NY: 128, NZ: 2}
	px, py, pz := cluster.Decompose3D(flat, 16)
	if pz > 2 {
		t.Errorf("thin axis over-decomposed: %d×%d×%d", px, py, pz)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	m := stencil.Mesh{NX: 12, NY: 12, NZ: 12}
	rng := rand.New(rand.NewSource(17))
	op := stencil.ConvectionDiffusion(m, 0.2, [3]float64{1, -0.4, 0.3}, 0.25)
	norm, diag := op.Normalize()
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.NormFloat64()
	}
	b64 := make([]float64, m.N())
	op.Apply(b64, xe)
	sb := stencil.ScaleRHS(b64, diag)

	// Sequential reference via the solver package.
	ctx := solver.NewF64()
	a := ctx.NewOperator(norm)
	bv := ctx.NewVector(m.N())
	for i, v := range sb {
		bv.Set(i, v)
	}
	xv := ctx.NewVector(m.N())
	ref, err := solver.BiCGStab(ctx, a, bv, xv, solver.Options{MaxIter: 40, Tol: 1e-10, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}

	for _, ranks := range []int{1, 2, 4, 8} {
		x, hist, err := cluster.ParallelBiCGStab(norm, sb, ranks, 40, 1e-10)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if res := norm.ResidualNorm(x, sb); res > 1e-8*stencil.Norm2(sb) {
			t.Errorf("ranks=%d: residual %g", ranks, res)
		}
		for i := range xe {
			if math.Abs(x[i]-xe[i]) > 1e-6*(1+math.Abs(xe[i])) {
				t.Fatalf("ranks=%d: x[%d] = %g, want %g", ranks, i, x[i], xe[i])
			}
		}
		// Residual histories track the sequential solve (different dot
		// summation orders allow tiny drift, amplified late in the solve).
		nCmp := min(len(hist), len(ref.History), 10)
		for i := 0; i < nCmp; i++ {
			if hist[i] == 0 && ref.History[i] == 0 {
				continue
			}
			if r := hist[i] / ref.History[i]; r > 1.5 || r < 0.67 {
				t.Errorf("ranks=%d iter %d: residual %g vs sequential %g", ranks, i, hist[i], ref.History[i])
			}
		}
	}
}

func TestParallelDeterministic(t *testing.T) {
	// The ordered allreduce makes runs bit-reproducible regardless of
	// goroutine scheduling.
	m := stencil.Mesh{NX: 8, NY: 8, NZ: 8}
	rng := rand.New(rand.NewSource(3))
	norm, _ := stencil.RandomDiagDominant(m, 1.5, rng).Normalize()
	b := make([]float64, m.N())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x1, h1, err := cluster.ParallelBiCGStab(norm, b, 8, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	x2, h2, err := cluster.ParallelBiCGStab(norm, b, 8, 15, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("x[%d] differs across runs: %g vs %g", i, x1[i], x2[i])
		}
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatalf("history[%d] differs: %g vs %g", i, h1[i], h2[i])
		}
	}
}

func TestJouleCalibration(t *testing.T) {
	// The timing model must hit the two published anchors.
	if err := cluster.Joule().Validate(0.1); err != nil {
		t.Error(err)
	}
}

func TestFig8Scaling600(t *testing.T) {
	pts := cluster.StrongScaling(cluster.Joule(), cluster.Fig8Mesh, cluster.PublishedCores)
	t0 := pts[0].Seconds
	tEnd := pts[len(pts)-1].Seconds
	t.Logf("600³: 1024 cores %.1f ms ... 16384 cores %.2f ms", t0*1e3, tEnd*1e3)
	if math.Abs(t0-75e-3)/75e-3 > 0.1 {
		t.Errorf("@1024 = %.1f ms, published 75 ms", t0*1e3)
	}
	if tEnd < 4e-3 || tEnd > 8e-3 {
		t.Errorf("@16384 = %.2f ms, published ~6 ms", tEnd*1e3)
	}
	// Monotone improvement but sub-linear: 16× cores buys < 16×.
	for i := 1; i < len(pts); i++ {
		if pts[i].Seconds >= pts[i-1].Seconds {
			t.Errorf("600³ should still scale at %d cores", pts[i].Cores)
		}
	}
	if sp := t0 / tEnd; sp >= 16 {
		t.Errorf("speedup %.1f should be sub-linear", sp)
	}
}

func TestFig7ScalingStalls370(t *testing.T) {
	// "The failure to scale beyond 8K cores on the smaller mesh."
	pts := cluster.StrongScaling(cluster.Joule(), cluster.Fig7Mesh, cluster.PublishedCores)
	var t8k, t16k float64
	for _, p := range pts {
		t.Logf("370³: %5d cores %.2f ms (mem %.2f, coll %.2f)",
			p.Cores, p.Seconds*1e3, p.Breakdown.Mem*1e3, p.Breakdown.Coll*1e3)
		switch p.Cores {
		case 8192:
			t8k = p.Seconds
		case 16384:
			t16k = p.Seconds
		}
	}
	if gain := t8k / t16k; gain > 1.3 {
		t.Errorf("370³ gains %.2f× from 8K→16K; paper says scaling fails beyond 8K", gain)
	}
	// The larger mesh must still be scaling over the same step.
	p6 := cluster.StrongScaling(cluster.Joule(), cluster.Fig8Mesh, []int{8192, 16384})
	if gain := p6[0].Seconds / p6[1].Seconds; gain < 1.3 {
		t.Errorf("600³ should still gain meaningfully 8K→16K, got %.2f×", gain)
	}
}

func TestCS1SpeedupVsCluster(t *testing.T) {
	// §V-A: the 16K-core Joule iteration is ~214× slower than the CS-1's
	// 28.1 µs (on a mesh with more than twice as many meshpoints).
	tJoule := cluster.Joule().IterationTime(cluster.Fig8Mesh, 16384).Total()
	ratio := tJoule / 28.1e-6
	t.Logf("Joule 600³ @16K: %.2f ms = %.0f× CS-1", tJoule*1e3, ratio)
	if ratio < 150 || ratio > 280 {
		t.Errorf("speedup ratio %.0f, published ~214", ratio)
	}
}

func TestBreakdownComposition(t *testing.T) {
	b := cluster.Joule().IterationTime(cluster.Fig8Mesh, 4096)
	if b.Mem <= 0 || b.Flop <= 0 || b.Halo <= 0 || b.Coll <= 0 {
		t.Fatalf("all components must be positive: %+v", b)
	}
	if b.Total() < math.Max(b.Mem, b.Flop) {
		t.Error("total below local work")
	}
	if b.Mem < b.Flop {
		t.Error("the solve should be memory-bound on Xeons (the paper's premise)")
	}
}

func min(xs ...int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
