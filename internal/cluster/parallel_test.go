package cluster

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/stencil"
)

// TestParallelBiCGStabRankSweep is the determinism contract of the
// ordered reducer: the rank-parallel solve must produce bit-identical
// residual histories and solutions at every rank count, because partial
// dot products are summed in rank order regardless of goroutine
// scheduling. Run under -race this also exercises the halo-exchange and
// reduction plumbing at each decomposition.
func TestParallelBiCGStabRankSweep(t *testing.T) {
	m := stencil.Mesh{NX: 8, NY: 8, NZ: 8}
	norm, _ := stencil.ConvectionDiffusion(m, 0.2, [3]float64{1, -0.3, 0.2}, 0.25).Normalize()
	rng := rand.New(rand.NewSource(17))
	b := make([]float64, m.N())
	for i := range b {
		b[i] = rng.NormFloat64()
	}

	type result struct {
		x    []float64
		hist []float64
	}
	results := map[int]result{}
	for _, ranks := range []int{1, 2, 4, 8} {
		x, hist, err := ParallelBiCGStab(norm, b, ranks, 25, 0)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if len(hist) == 0 {
			t.Fatalf("ranks=%d: empty residual history", ranks)
		}
		results[ranks] = result{x, hist}
	}

	ref := results[1]
	for _, ranks := range []int{2, 4, 8} {
		got := results[ranks]
		if len(got.hist) != len(ref.hist) {
			t.Fatalf("ranks=%d: %d residuals, ranks=1 has %d", ranks, len(got.hist), len(ref.hist))
		}
		for i := range ref.hist {
			if got.hist[i] != ref.hist[i] {
				t.Errorf("ranks=%d: residual %d = %.17g, ranks=1 has %.17g", ranks, i, got.hist[i], ref.hist[i])
			}
		}
		for i := range ref.x {
			if got.x[i] != ref.x[i] {
				t.Fatalf("ranks=%d: x[%d] = %.17g, ranks=1 has %.17g", ranks, i, got.x[i], ref.x[i])
			}
		}
	}
}

// TestParallelBiCGStabRepeatDeterministic re-runs the same decomposition
// several times: goroutine scheduling varies, results must not.
func TestParallelBiCGStabRepeatDeterministic(t *testing.T) {
	m := stencil.Mesh{NX: 8, NY: 8, NZ: 8}
	norm, _ := stencil.ConvectionDiffusion(m, 0.15, [3]float64{0.7, 0.1, -0.4}, 0.3).Normalize()
	rng := rand.New(rand.NewSource(23))
	b := make([]float64, m.N())
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for _, ranks := range []int{4, 8} {
		t.Run(fmt.Sprintf("ranks=%d", ranks), func(t *testing.T) {
			_, ref, err := ParallelBiCGStab(norm, b, ranks, 15, 0)
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 3; rep++ {
				_, hist, err := ParallelBiCGStab(norm, b, ranks, 15, 0)
				if err != nil {
					t.Fatal(err)
				}
				for i := range ref {
					if hist[i] != ref[i] {
						t.Fatalf("rep %d: residual %d = %.17g, first run had %.17g", rep, i, hist[i], ref[i])
					}
				}
			}
		})
	}
}
