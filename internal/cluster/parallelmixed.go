package cluster

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/fp16"
	"repro/internal/stencil"
)

// ParallelBiCGStabMixed runs the mixed-precision BiCGStab solve
// SPMD-style over goroutine-ranks: fp16 storage and vector arithmetic,
// per-column float32 dot partials (the wafer's per-tile mixed FMAC
// accumulation), and an exactly rounded combine of the partials — the
// rank-parallel image of the single-wafer solver.
//
// Determinism contract: the residual history and solution are
// bit-identical across runs, across rank counts, AND across backends —
// the ranks partition the mesh's NX·NY tile-columns, every fp16
// operation replicates the wafer instruction semantics element-for-
// element (stencil.Op7Half.Apply's rounding order for the SpMV, the
// FMA forms of the AXPY-class updates), and every dot is the exactly
// rounded sum of the same per-column float32 partials the wafer's tiles
// produce. The cross-backend golden in internal/core enforces this
// against the host chunked-mixed context, the single-wafer halo solver
// and the multi-wafer backend.
//
// It returns the solution and the per-iteration relative residual
// history. maxIter <= 0 defaults to 100, matching the wafer solver.
func ParallelBiCGStabMixed(op *stencil.Op7Half, b []fp16.Float16, ranks, maxIter int, tol float64) ([]fp16.Float16, []float64, error) {
	m := op.M
	n := m.N()
	if len(b) != n {
		return nil, nil, fmt.Errorf("cluster: rhs length %d, want %d", len(b), n)
	}
	cols := m.NX * m.NY
	if ranks < 1 || ranks > cols {
		return nil, nil, fmt.Errorf("cluster: %d ranks for %d tile-columns", ranks, cols)
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	nz := m.NZ

	// Shared solver state. Each rank writes only its own columns of the
	// vectors and its own entries of partials; cross-rank reads are
	// separated from those writes by the phase barriers below.
	x := make([]fp16.Float16, n)
	r0 := make([]fp16.Float16, n)
	r := make([]fp16.Float16, n)
	p := make([]fp16.Float16, n)
	s := make([]fp16.Float16, n)
	q := make([]fp16.Float16, n)
	y := make([]fp16.Float16, n)
	partials := make([]float32, cols) // canonical column order
	bar := newPhaseBarrier(ranks)
	// Column-range boundaries: bounds[rk]..bounds[rk+1] for rank rk.
	bounds := make([]int, ranks+1)
	for i, sz := range SplitExtent(cols, ranks) {
		bounds[i+1] = bounds[i] + sz
	}

	var history []float64 // written by rank 0 only
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	wg.Add(ranks)
	for rk := 0; rk < ranks; rk++ {
		go func(rk int) {
			defer wg.Done()
			colLo, colHi := bounds[rk], bounds[rk+1]
			lo, hi := colLo*nz, colHi*nz

			// dot computes the per-column float32 partials for this
			// rank's columns, then every rank reads the exactly rounded
			// combine of all of them. The partials are in canonical
			// column order — identical to the wafer's fabric row-major
			// per-tile partials — so the combined value matches the
			// wafer's bit-for-bit. Barriers: one so all partials are
			// written before any rank combines, one so no rank starts the
			// next dot while another still reads.
			dot := func(a, bb []fp16.Float16) float64 {
				for c := colLo; c < colHi; c++ {
					var acc float32
					base := c * nz
					for k := 0; k < nz; k++ {
						acc = fp16.MixedFMAC(acc, a[base+k], bb[base+k])
					}
					partials[c] = acc
				}
				bar.wait()
				v := ExactSum32(partials)
				bar.wait()
				return v
			}

			// spmv replicates stencil.Op7Half.Apply exactly for this
			// rank's columns (reads of src cross rank boundaries; the
			// loop-top barrier orders them after the owners' writes).
			spmv := func(dst, src []fp16.Float16) {
				for c := colLo; c < colHi; c++ {
					cx, cy := c%m.NX, c/m.NX
					base := c * nz
					for z := 0; z < nz; z++ {
						i := base + z
						acc := fp16.Zero
						if z > 0 {
							acc = fp16.Mul(op.ZM[i], src[i-1])
						}
						if z+1 < nz {
							acc = fp16.Add(acc, fp16.Mul(op.ZP[i], src[i+1]))
						}
						if cx+1 < m.NX {
							acc = fp16.Add(acc, fp16.Mul(op.XP[i], src[i+nz]))
						}
						if cx > 0 {
							acc = fp16.Add(acc, fp16.Mul(op.XM[i], src[i-nz]))
						}
						if cy+1 < m.NY {
							acc = fp16.Add(acc, fp16.Mul(op.YP[i], src[i+m.NX*nz]))
						}
						if cy > 0 {
							acc = fp16.Add(acc, fp16.Mul(op.YM[i], src[i-m.NX*nz]))
						}
						dst[i] = fp16.Add(acc, src[i]) // unit main diagonal
					}
				}
			}

			// resNorm is the float64 diagnostic ‖r‖₂ every rank computes
			// over the whole vector in canonical order (the wafer's
			// residualNorm), so the tol branch is uniform across ranks.
			resNorm := func() float64 {
				var sum float64
				for i := range r {
					v := r[i].Float64()
					sum += v * v
				}
				return math.Sqrt(sum)
			}

			// Initialize own columns: x = 0, r = r0 = p = b.
			for i := lo; i < hi; i++ {
				x[i] = fp16.Zero
				r0[i] = b[i]
				r[i] = b[i]
				p[i] = b[i]
			}

			bb := dot(b, b)
			bnorm := math.Sqrt(bb)
			if bnorm == 0 {
				errs[rk] = fmt.Errorf("cluster: zero right-hand side")
				return
			}
			rho := bb

			for it := 0; it < maxIter; it++ {
				bar.wait() // own p/q writes visible before cross-rank spmv reads

				// s := A p;  α := ρ / (r0, s)
				spmv(s, p)
				r0s := dot(r0, s)
				if r0s == 0 {
					return // breakdown, uniform across ranks
				}
				alpha := rho / r0s

				// q := r − α s
				ah := fp16.FromFloat64(-alpha)
				for i := lo; i < hi; i++ {
					q[i] = fp16.FMA(ah, s[i], r[i])
				}
				bar.wait() // q read cross-rank by the next spmv

				// y := A q;  ω := (q, y) / (y, y)
				spmv(y, q)
				qy := dot(q, y)
				yy := dot(y, y)
				if yy == 0 {
					ah := fp16.FromFloat64(alpha)
					for i := lo; i < hi; i++ {
						x[i] = fp16.FMA(ah, p[i], x[i])
					}
					return
				}
				omega := qy / yy

				// x := x + α p + ω q  (two FMAs, as on the wafer)
				ah = fp16.FromFloat64(alpha)
				oh := fp16.FromFloat64(omega)
				for i := lo; i < hi; i++ {
					x[i] = fp16.FMA(ah, p[i], x[i])
				}
				for i := lo; i < hi; i++ {
					x[i] = fp16.FMA(oh, q[i], x[i])
				}
				// r := q − ω y
				noh := fp16.FromFloat64(-omega)
				for i := lo; i < hi; i++ {
					r[i] = fp16.FMA(noh, y[i], q[i])
				}
				bar.wait() // all r writes visible before every rank's resNorm

				rel := resNorm() / bnorm
				if rk == 0 {
					history = append(history, rel)
				}
				if tol > 0 && rel <= tol {
					return
				}

				// β := (α/ω) (r0, r_new)/(r0, r_old)
				rr := dot(r0, r)
				if rho == 0 || omega == 0 {
					return
				}
				beta := (alpha / omega) * (rr / rho)
				rho = rr

				// p := r + β (p − ω s)
				for i := lo; i < hi; i++ {
					p[i] = fp16.FMA(noh, s[i], p[i])
				}
				bh := fp16.FromFloat64(beta)
				for i := lo; i < hi; i++ {
					p[i] = fp16.FMA(bh, p[i], r[i])
				}
			}
		}(rk)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return x, history, nil
}

// phaseBarrier is a reusable (cyclic) barrier for the SPMD phases.
type phaseBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ranks int
	count int
	gen   int
}

func newPhaseBarrier(ranks int) *phaseBarrier {
	b := &phaseBarrier{ranks: ranks}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *phaseBarrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.ranks {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
