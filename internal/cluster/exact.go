package cluster

import "math/big"

// This file exports the exactly-rounded reduction machinery that
// ParallelBiCGStab's allreduce is built on, so other backends can make
// the same determinism promise. internal/multiwafer uses ExactSum32 as
// the top level of its two-level dot reduction: each wafer's per-tile
// float32 dot partials are combined on the host with one rounding in
// total, which makes the reduced value — and therefore the residual
// history — independent of how the mesh was cut into wafers.

// ExactSum32 returns the correctly rounded float64 sum of values: the
// summands are accumulated into a fixed-point-exact wide accumulator
// (every float32 is exactly representable there) and rounded to float64
// once at the end, so the result is independent of summation order.
//
// If any summand is non-finite the exact accumulator cannot represent
// the sum; the function degrades to the float64 sum in slice order,
// which still propagates Inf/NaN deterministically for a fixed order.
// Callers that need order-invariance during divergence should pass the
// values in a canonical order (multiwafer uses global mesh order).
func ExactSum32(values []float32) float64 {
	acc := new(big.Float).SetPrec(exactPrec)
	term := new(big.Float).SetPrec(53)
	for _, v := range values {
		f := float64(v)
		if !isFinite(f) {
			var s float64
			for _, x := range values {
				s += float64(x)
			}
			return s
		}
		term.SetFloat64(f)
		acc.Add(acc, term)
	}
	out, _ := acc.Float64()
	return out
}

// SplitExtent cuts an extent of n points into p contiguous blocks as
// evenly as possible (the first n mod p blocks get one extra point) and
// returns the block sizes. This is the 1D piece of the block
// decomposition Decompose3D assumes; the multiwafer backend reuses it
// to cut a mesh's X and Y extents across a wafer grid, where — unlike
// the goroutine-rank decomposition, which requires dividing meshes —
// uneven blocks are fine because each wafer's fabric is sized to its
// block. SplitExtent panics if p < 1 or n < p (an empty wafer has no
// fabric).
func SplitExtent(n, p int) []int {
	if p < 1 {
		panic("cluster: SplitExtent needs at least one block")
	}
	if n < p {
		panic("cluster: SplitExtent cannot give every block at least one point")
	}
	sizes := make([]int, p)
	base, extra := n/p, n%p
	for i := range sizes {
		sizes[i] = base
		if i < extra {
			sizes[i]++
		}
	}
	return sizes
}
