package cluster

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stencil"
)

// TestExactSum32OrderInvariant is the property the multiwafer combine
// leans on: the exactly rounded sum is independent of summation order,
// including orders that make a naive float sum drift (large
// cancellations, tiny stragglers).
func TestExactSum32OrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float32, 4096)
	for i := range vals {
		// Wide dynamic range plus exact cancellation pairs.
		vals[i] = float32(rng.NormFloat64() * math.Pow(2, float64(rng.Intn(40)-20)))
		if i%7 == 0 && i > 0 {
			vals[i] = -vals[i-1]
		}
	}
	want := ExactSum32(vals)
	for trial := 0; trial < 10; trial++ {
		rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		if got := ExactSum32(vals); got != want {
			t.Fatalf("trial %d: %.17g != %.17g", trial, got, want)
		}
	}
	// Against a widened reference on a case small enough to trust.
	small := []float32{1e20, 1, -1e20, 1, 0.5, -2.5}
	if got := ExactSum32(small); got != 0 {
		t.Errorf("ExactSum32(%v) = %g, want 0", small, got)
	}
}

// TestExactSum32NonFinite covers the degraded path: Inf/NaN propagate
// deterministically in slice order.
func TestExactSum32NonFinite(t *testing.T) {
	inf := float32(math.Inf(1))
	if got := ExactSum32([]float32{1, inf, 2}); !math.IsInf(got, 1) {
		t.Errorf("Inf sum = %g", got)
	}
	if got := ExactSum32([]float32{1, inf, -inf}); !math.IsNaN(got) {
		t.Errorf("Inf + -Inf = %g, want NaN", got)
	}
	nan := float32(math.NaN())
	if got := ExactSum32([]float32{nan, 1}); !math.IsNaN(got) {
		t.Errorf("NaN sum = %g", got)
	}
	if got := ExactSum32(nil); got != 0 {
		t.Errorf("empty sum = %g", got)
	}
}

// TestSplitExtent covers the 1D partition the wafer mapping reuses:
// even splits, remainder placement, single block, and the panics.
func TestSplitExtent(t *testing.T) {
	for _, tc := range []struct {
		n, p int
		want []int
	}{
		{8, 2, []int{4, 4}},
		{7, 2, []int{4, 3}},
		{10, 3, []int{4, 3, 3}},
		{6, 6, []int{1, 1, 1, 1, 1, 1}},
		{5, 1, []int{5}},
	} {
		got := SplitExtent(tc.n, tc.p)
		if len(got) != len(tc.want) {
			t.Fatalf("SplitExtent(%d,%d) = %v", tc.n, tc.p, got)
		}
		sum := 0
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("SplitExtent(%d,%d) = %v, want %v", tc.n, tc.p, got, tc.want)
			}
			sum += got[i]
		}
		if sum != tc.n {
			t.Errorf("SplitExtent(%d,%d) sums to %d", tc.n, tc.p, sum)
		}
	}
	for _, bad := range [][2]int{{5, 0}, {5, -1}, {2, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitExtent(%d,%d) did not panic", bad[0], bad[1])
				}
			}()
			SplitExtent(bad[0], bad[1])
		}()
	}
}

// TestValidateErrorBranches exercises both published-anchor checks of
// Config.Validate: a config that misses the 1,024-core anchor, one
// that hits it but misses the 16K-core anchor, and the calibrated
// config passing both.
func TestValidateErrorBranches(t *testing.T) {
	good := Joule()
	if err := good.Validate(0.15); err != nil {
		t.Fatalf("calibrated config rejected: %v", err)
	}

	// Halving memory bandwidth blows the 1,024-core anchor (memory
	// bound there).
	slowMem := Joule()
	slowMem.MemBWPerNode /= 2
	if err := slowMem.Validate(0.15); err == nil {
		t.Error("halved memory bandwidth passed validation")
	}

	// Inflating only the per-rank collective cost leaves 1,024 cores
	// within tolerance but wrecks 16K cores, hitting the second branch.
	slowColl := Joule()
	slowColl.CollPerRank *= 10
	t1024 := slowColl.IterationTime(Fig8Mesh, 1024).Total()
	if math.Abs(t1024-75e-3)/75e-3 > 0.15 {
		t.Fatalf("test premise broken: 1024-core time %v drifted out of tolerance", t1024)
	}
	if err := slowColl.Validate(0.15); err == nil {
		t.Error("10× collective jitter passed validation")
	}
}

// TestDecompose3DEdgeCases covers the degenerate decompositions the
// multiwafer mapping meets: one rank, prime rank counts on non-dividing
// meshes, and ranks exceeding a mesh dimension.
func TestDecompose3DEdgeCases(t *testing.T) {
	m := stencil.Mesh{NX: 8, NY: 8, NZ: 8}
	if px, py, pz := Decompose3D(m, 1); px != 1 || py != 1 || pz != 1 {
		t.Errorf("1 rank: %d×%d×%d", px, py, pz)
	}
	// A prime count on a non-dividing mesh still factors (7 = 7×1×1)
	// even though no axis divides evenly; ParallelBiCGStab separately
	// rejects the non-dividing split.
	px, py, pz := Decompose3D(stencil.Mesh{NX: 10, NY: 10, NZ: 10}, 7)
	if px*py*pz != 7 {
		t.Errorf("7 ranks: %d×%d×%d does not multiply to 7", px, py, pz)
	}
	// More ranks than any single axis: must spread across axes.
	px, py, pz = Decompose3D(m, 64)
	if px*py*pz != 64 || px > 8 || py > 8 || pz > 8 {
		t.Errorf("64 ranks on 8³: %d×%d×%d", px, py, pz)
	}
	// Non-dividing meshes are rejected by the rank-parallel solver...
	norm, _ := stencil.Poisson(stencil.Mesh{NX: 5, NY: 5, NZ: 5}, 1).Normalize()
	b := make([]float64, 125)
	for i := range b {
		b[i] = 1
	}
	if _, _, err := ParallelBiCGStab(norm, b, 2, 3, 0); err == nil {
		t.Error("non-dividing 5³/2-rank decomposition accepted")
	}
	// ...and a 1-rank run works on any mesh (the degenerate partition).
	if _, hist, err := ParallelBiCGStab(norm, b, 1, 3, 0); err != nil || len(hist) == 0 {
		t.Errorf("1-rank solve: hist=%d err=%v", len(hist), err)
	}
}
