package core

import (
	"runtime"
	"testing"
	"time"
)

// TestCavity2DWSESmall runs the cavity-on-wafer experiment end to end
// at a small fabric under both engines and requires the full outcome —
// SIMPLE residuals, per-solve pressure residual histories, and the
// machine's architectural fingerprint — to be bit-identical.
func TestCavity2DWSESmall(t *testing.T) {
	seq, err := Cavity2DWSE(16, 2, 1, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	shd, err := Cavity2DWSE(16, 2, 4, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Engine != "seq" || shd.Engine == "seq" {
		t.Fatalf("engine selection wrong: %q vs %q", seq.Engine, shd.Engine)
	}
	compareCavityRuns(t, seq, shd)
	if seq.Residuals[len(seq.Residuals)-1].Mass >= seq.Residuals[0].Mass {
		t.Errorf("mass imbalance did not drop: %+v", seq.Residuals)
	}
	if seq.Cycles.Total() == 0 || seq.SolverIters == 0 {
		t.Errorf("no simulated solver work recorded: %+v", seq)
	}
}

// compareCavityRuns asserts bit-identity of two runs' observables.
func compareCavityRuns(t *testing.T, a, b Cavity2DRun) {
	t.Helper()
	for i := range a.Residuals {
		if a.Residuals[i] != b.Residuals[i] {
			t.Fatalf("SIMPLE residuals diverge at iter %d: %s %+v, %s %+v",
				i, a.Engine, a.Residuals[i], b.Engine, b.Residuals[i])
		}
	}
	if len(a.PressureResiduals) != len(b.PressureResiduals) {
		t.Fatalf("pressure solve counts differ: %d vs %d", len(a.PressureResiduals), len(b.PressureResiduals))
	}
	for s := range a.PressureResiduals {
		for k := range a.PressureResiduals[s] {
			if a.PressureResiduals[s][k] != b.PressureResiduals[s][k] {
				t.Fatalf("pressure solve %d residual %d diverges: %g vs %g",
					s, k, a.PressureResiduals[s][k], b.PressureResiduals[s][k])
			}
		}
	}
	if a.Cycles != b.Cycles {
		t.Fatalf("cycle breakdowns diverge: %s %+v, %s %+v", a.Engine, a.Cycles, b.Engine, b.Cycles)
	}
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("machine fingerprints diverge: %s %#x, %s %#x", a.Engine, a.Fingerprint, b.Engine, b.Fingerprint)
	}
}

// settledGoroutines forces garbage collection until the goroutine count
// stops changing, so pools left behind by earlier tests (reclaimed
// asynchronously by their runtime cleanups) cannot skew a baseline.
func settledGoroutines() int {
	prev := -1
	for i := 0; i < 100; i++ {
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
		n := runtime.NumGoroutine()
		if n == prev {
			return n
		}
		prev = n
	}
	return prev
}

// TestCavity2DWSEReleasesGoroutines pins the Close threading of the
// wse-backend cavity path (the one cmd/cavity, cmd/repro and
// examples/cavityflow drive): after Cavity2DWSE returns, the sharded
// engine's parked pool workers must be gone — the goroutine count
// returns to its pre-run baseline without waiting for the garbage
// collector.
func TestCavity2DWSEReleasesGoroutines(t *testing.T) {
	// Raise GOMAXPROCS so the sharded engine actually starts its pool on
	// single-CPU hosts (engines cache the value at construction).
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	base := settledGoroutines()
	if _, err := Cavity2DWSE(8, 2, 4, 2, 100); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	slack := base + 1
	for runtime.NumGoroutine() > slack && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > slack {
		t.Fatalf("goroutines did not return to baseline after the wse cavity run: %d, baseline %d — a machine was not Closed", g, base)
	}
}
