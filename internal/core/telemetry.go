package core

import (
	"repro/internal/kernels"
	"repro/internal/multiwafer"
)

// Phases breaks a simulated cycle account into the paper's kernel
// classes plus the multi-wafer coupling costs. The single-wafer backend
// leaves EdgeIO and Combine at zero; the host backends leave everything
// at zero (no cycle simulation runs there).
type Phases struct {
	SpMV      int64 `json:"spmv"`
	EdgeIO    int64 `json:"edge_io,omitempty"`
	Dot       int64 `json:"dot"`
	AllReduce int64 `json:"allreduce"`
	Combine   int64 `json:"combine,omitempty"`
	Axpy      int64 `json:"axpy"`
}

// Total returns the cycle sum across all phases.
func (p Phases) Total() int64 {
	return p.SpMV + p.EdgeIO + p.Dot + p.AllReduce + p.Combine + p.Axpy
}

// Communication returns the cycles spent off the local tile datapaths:
// the on-wafer reduction plus everything that crossed a wafer edge.
func (p Phases) Communication() int64 { return p.EdgeIO + p.AllReduce + p.Combine }

// Telemetry is the uniformly serializable instrumentation of a solve.
// Every backend populates it — clients switch on Simulated (or just
// serialize the whole thing) instead of probing backend-specific
// pointers for nil. It is the shape the wsesimd job API returns.
type Telemetry struct {
	// Backend is the substrate name ("local", "wafer", "cluster",
	// "multiwafer").
	Backend string `json:"backend"`
	// Precision names the Local backend's arithmetic; empty elsewhere
	// (the wafer substrates are always mixed fp16/fp32).
	Precision string `json:"precision,omitempty"`
	// Simulated reports whether cycle-level simulation ran; when false
	// the cycle fields are zero.
	Simulated bool `json:"simulated"`
	// Wafers is the number of simulated wafers (1 for the Wafer
	// backend); 0 for host substrates.
	Wafers int `json:"wafers,omitempty"`
	// Ranks is the Cluster backend's goroutine-rank count; 0 elsewhere.
	Ranks int `json:"ranks,omitempty"`
	// Cycles accumulates the per-phase account across all iterations;
	// PerIteration is the mean per iteration. The setup ‖b‖² dot is
	// excluded (see SetupCycles), matching the paper's steady-state
	// accounting.
	Cycles       Phases `json:"cycles"`
	PerIteration Phases `json:"per_iteration"`
	// SetupCycles is the one-time ‖b‖² dot + reduction before the first
	// iteration.
	SetupCycles int64 `json:"setup_cycles,omitempty"`
	// MaxARDrift is the single-wafer engine's largest observed
	// |fabric AllReduce − exact sum| as a fraction of the paper's
	// AllReduce error-model bound (see kernels.WSEStats.MaxARDrift).
	MaxARDrift float64 `json:"max_allreduce_drift,omitempty"`
}

func phasesFromWSE(c kernels.PhaseCycles) Phases {
	return Phases{SpMV: c.SpMV, Dot: c.Dot, AllReduce: c.AllReduce, Axpy: c.Axpy}
}

func phasesFromMultiWafer(c multiwafer.PhaseCycles) Phases {
	return Phases{SpMV: c.SpMV, EdgeIO: c.EdgeIO, Dot: c.Dot,
		AllReduce: c.AllReduce, Combine: c.Combine, Axpy: c.Axpy}
}

// TelemetryFromWSE converts a single-wafer solve's stats into the
// uniform Telemetry shape. Exported for the service layer, which runs
// warm-machine solves outside Solve but reports the same telemetry.
func TelemetryFromWSE(st kernels.WSEStats) Telemetry {
	return Telemetry{
		Backend:      Wafer.String(),
		Simulated:    true,
		Wafers:       1,
		Cycles:       phasesFromWSE(st.Cycles),
		PerIteration: phasesFromWSE(st.PerIteration),
		SetupCycles:  st.SetupCycles,
		MaxARDrift:   st.MaxARDrift,
	}
}

// TelemetryFromMultiWafer is TelemetryFromWSE for the multi-wafer
// cluster's stats.
func TelemetryFromMultiWafer(st multiwafer.Stats) Telemetry {
	return Telemetry{
		Backend:      MultiWafer.String(),
		Simulated:    true,
		Wafers:       st.Wafers,
		Cycles:       phasesFromMultiWafer(st.Cycles),
		PerIteration: phasesFromMultiWafer(st.PerIteration),
		SetupCycles:  st.SetupCycles,
	}
}
