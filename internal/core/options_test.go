package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/multiwafer"
	"repro/internal/solver"
	"repro/internal/stencil"
)

// TestOptionsValidate pins the one-place validation contract: every
// nonsense combination is rejected with a typed *OptionError naming the
// offending field, before any backend work happens.
func TestOptionsValidate(t *testing.T) {
	noop := func([]byte) error { return nil }
	cases := []struct {
		name  string
		opts  Options
		field string // "" means valid
	}{
		{"zero value", Options{}, ""},
		{"local full", Options{Backend: Local, Local: LocalOptions{Precision: Mixed}, MaxIter: 10, Tol: 1e-3}, ""},
		{"wafer workers", Options{Backend: Wafer, Wafer: WaferOptions{Workers: 4}}, ""},
		{"wafer checkpoint", Options{Backend: Wafer, Wafer: WaferOptions{CheckpointEvery: 5, Checkpoint: noop}}, ""},
		{"cluster ranks", Options{Backend: Cluster, Cluster: ClusterOptions{Ranks: 8}}, ""},
		{"multiwafer grid", Options{Backend: MultiWafer, MultiWafer: MultiWaferOptions{Grid: multiwafer.Topology{W: 2, H: 1}}}, ""},

		{"unknown backend", Options{Backend: Backend(42)}, "Backend"},
		{"negative MaxIter", Options{MaxIter: -1}, "MaxIter"},
		{"negative Tol", Options{Tol: -1e-3}, "Tol"},
		{"ranks with wafer", Options{Backend: Wafer, Cluster: ClusterOptions{Ranks: 8}}, "Cluster.Ranks"},
		{"grid with local", Options{Backend: Local, MultiWafer: MultiWaferOptions{Grid: multiwafer.Topology{W: 2, H: 2}}}, "MultiWafer"},
		{"precision with cluster", Options{Backend: Cluster, Local: LocalOptions{Precision: Mixed}}, "Local"},
		{"checkpoint with local", Options{Backend: Local, Wafer: WaferOptions{CheckpointEvery: 5, Checkpoint: noop}}, "Wafer"},
		{"resume with multiwafer", Options{Backend: MultiWafer, Wafer: WaferOptions{Resume: []byte{1}}}, "Wafer"},
		{"bad precision", Options{Backend: Local, Local: LocalOptions{Precision: Precision(9)}}, "Local.Precision"},
		{"negative ranks", Options{Backend: Cluster, Cluster: ClusterOptions{Ranks: -2}}, "Cluster.Ranks"},
		{"negative workers", Options{Backend: Wafer, Wafer: WaferOptions{Workers: -1}}, "Wafer.Workers"},
		{"every without callback", Options{Backend: Wafer, Wafer: WaferOptions{CheckpointEvery: 5}}, "Wafer.Checkpoint"},
		{"callback without every", Options{Backend: Wafer, Wafer: WaferOptions{Checkpoint: noop}}, "Wafer.CheckpointEvery"},
		{"half-set grid", Options{Backend: MultiWafer, MultiWafer: MultiWaferOptions{Grid: multiwafer.Topology{W: 2}}}, "MultiWafer.Grid"},
	}
	for _, tc := range cases {
		err := tc.opts.Validate()
		if tc.field == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Errorf("%s: want *OptionError, got %v", tc.name, err)
			continue
		}
		if oe.Field != tc.field {
			t.Errorf("%s: error names field %q, want %q (%v)", tc.name, oe.Field, tc.field, err)
		}
	}

	// Solve itself must refuse invalid options with the same typed error.
	p, _ := testProblem(3)
	var oe *OptionError
	if _, err := Solve(p, Options{Backend: Local, Cluster: ClusterOptions{Ranks: 4}}); !errors.As(err, &oe) {
		t.Errorf("Solve with misrouted section: want *OptionError, got %v", err)
	}
}

// TestCheckpointRejectionShared pins the hoisted checkpoint/resume
// rejection: every backend without a restorable substrate refuses via
// the one solver.Options helper, so the error text cannot drift between
// layers.
func TestCheckpointRejectionShared(t *testing.T) {
	p, _ := testProblem(3)
	norm, diag := p.Op.Normalize()
	sb := stencil.ScaleRHS(p.B, diag)
	zeros := make([]float64, len(sb))
	opts := solver.Options{MaxIter: 2, Resume: []byte{1, 2, 3}}

	check := func(name string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s: resume accepted by a backend with no restorable substrate", name)
		}
		if !strings.Contains(err.Error(), "does not support checkpoint/resume") {
			t.Fatalf("%s: rejection text drifted: %v", name, err)
		}
	}
	_, _, err := solver.HostBackend3D{}.Solve3D(norm, sb, zeros, opts)
	check("host3d", err)
	_, _, err = (&multiwafer.Backend{Grid: multiwafer.Topology{W: 1, H: 1}}).Solve3D(norm, sb, zeros, opts)
	check("multiwafer", err)
}
