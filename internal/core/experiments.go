package core

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/cluster"
	"repro/internal/fp16"
	"repro/internal/kernels"
	"repro/internal/mfix"
	"repro/internal/multiwafer"
	"repro/internal/perfmodel"
	"repro/internal/solver"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// Experiment runners: one per table/figure (see DESIGN.md §4). Each
// returns a printable report; cmd/repro and the root benches call these.

// Table1Report regenerates Table I by instrumenting one BiCGStab
// iteration in the mixed and single-precision contexts.
func Table1Report() string {
	m := stencil.Mesh{NX: 6, NY: 6, NZ: 8}
	op := stencil.RandomDiagDominant(m, 1.5, rand.New(rand.NewSource(1)))
	n := int64(m.N())

	row := func(ctx solver.Context) [solver.KindAxpy + 1]solver.OpCounts {
		runN := func(iters int) solver.Counters {
			norm, diag := op.Normalize()
			xe := make([]float64, m.N())
			for i := range xe {
				xe[i] = float64(i%5) - 2
			}
			b64 := make([]float64, m.N())
			op.Apply(b64, xe)
			sb := stencil.ScaleRHS(b64, diag)
			a := ctx.NewOperator(norm)
			bv := ctx.NewVector(m.N())
			for i, v := range sb {
				bv.Set(i, v)
			}
			xv := ctx.NewVector(m.N())
			ctx.Counters().Reset()
			if _, err := solver.BiCGStab(ctx, a, bv, xv, solver.Options{MaxIter: iters}); err != nil {
				panic(err)
			}
			return *ctx.Counters()
		}
		c1, c3 := runN(1), runN(3)
		var out [solver.KindAxpy + 1]solver.OpCounts
		for k := solver.KindMatvec; k <= solver.KindAxpy; k++ {
			out[k] = solver.OpCounts{
				HPAdd: (c3.ByKind[k].HPAdd - c1.ByKind[k].HPAdd) / 2 / n,
				HPMul: (c3.ByKind[k].HPMul - c1.ByKind[k].HPMul) / 2 / n,
				SPAdd: (c3.ByKind[k].SPAdd - c1.ByKind[k].SPAdd) / 2 / n,
				SPMul: (c3.ByKind[k].SPMul - c1.ByKind[k].SPMul) / 2 / n,
			}
		}
		return out
	}

	sp := row(solver.NewF32())
	mx := row(solver.NewMixed())
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — operations per meshpoint per iteration (measured)\n")
	fmt.Fprintf(&b, "%-12s %6s %6s | %6s %6s %6s\n", "Operation", "SP +", "SP ×", "HP +", "HP ×", "SP +")
	names := map[solver.Kind]string{solver.KindMatvec: "Matvec (x2)", solver.KindDot: "Dot (x4)", solver.KindAxpy: "AXPY (x6)"}
	var totSP, totMX solver.OpCounts
	for k := solver.KindMatvec; k <= solver.KindAxpy; k++ {
		fmt.Fprintf(&b, "%-12s %6d %6d | %6d %6d %6d\n", names[k],
			sp[k].SPAdd, sp[k].SPMul, mx[k].HPAdd, mx[k].HPMul, mx[k].SPAdd)
		totSP.Add(sp[k])
		totMX.Add(mx[k])
	}
	fmt.Fprintf(&b, "%-12s %6d %6d | %6d %6d %6d\n", "Total",
		totSP.SPAdd, totSP.SPMul, totMX.HPAdd, totMX.HPMul, totMX.SPAdd)
	fmt.Fprintf(&b, "paper:       22     22 |     18     22      4   (44 ops total: %d measured)\n",
		totMX.Total())
	return b.String()
}

// HeadlineReport reproduces §V: iteration time and PFLOPS at
// 600×595×1536, from both the simulator-extrapolated and
// paper-calibrated models, plus a live cycle-simulated solve at reduced
// scale for validation.
func HeadlineReport() string {
	var b strings.Builder
	simUs, simPF, simFrac := perfmodel.HeadlinePrediction(perfmodel.SimModel())
	papUs, papPF, papFrac := perfmodel.HeadlinePrediction(perfmodel.PaperModel())
	fmt.Fprintf(&b, "§V headline — BiCGStab on 600×595×1536, 602×595 fabric\n")
	fmt.Fprintf(&b, "  paper measured:        28.10 µs/iter   0.860 PFLOPS  (~1/3 peak)\n")
	fmt.Fprintf(&b, "  simulator model (η=1): %5.2f µs/iter   %.3f PFLOPS  (%.0f%% peak)\n", simUs, simPF, simFrac*100)
	fmt.Fprintf(&b, "  calibrated (η=%.3f):  %5.2f µs/iter   %.3f PFLOPS  (%.0f%% peak)\n",
		perfmodel.PaperEta, papUs, papPF, papFrac*100)

	// Live validation at small scale.
	m := stencil.Mesh{NX: 8, NY: 8, NZ: 64}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	p, _ := NewProblem(op, ramp(m.N()))
	res, err := Solve(p, Options{Backend: Wafer, MaxIter: 3})
	if err != nil {
		fmt.Fprintf(&b, "  (cycle-sim validation failed: %v)\n", err)
		return b.String()
	}
	pc := res.Telemetry.PerIteration
	pred := perfmodel.SimModel().IterationCycles(perfmodel.WSE{W: 8, H: 8, ClockHz: 1.1e9, SIMD: 4}, 64)
	fmt.Fprintf(&b, "  cycle-sim check (8×8×64): %d cycles/iter vs model %.0f (spmv %d, dot %d, allreduce %d, axpy %d)\n",
		pc.Total(), pred.Total(), pc.SpMV, pc.Dot, pc.AllReduce, pc.Axpy)
	return b.String()
}

func ramp(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.5 + 0.5*float64(i%7)/7
	}
	return out
}

// PaperAllReduceResult is one engine's cycle-simulated run of the
// Figure 6 AllReduce on the full 602×595 paper fabric.
type PaperAllReduceResult struct {
	W, H        int
	Engine      string  // fabric stepping engine name
	Cycles      int64   // simulated latency, start to last delivery
	Sum         float32 // broadcast sum (bit-exact comparable)
	Fingerprint uint64  // fabric architectural-state fingerprint at end
	Diameter    int
}

// Microseconds converts the simulated latency to wall-clock at the
// paper's 1.1 GHz clock.
func (r PaperAllReduceResult) Microseconds() float64 {
	return float64(r.Cycles) / 1.1e9 * 1e6
}

// PaperAllReduce cycle-simulates the wafer-wide AllReduce on the full
// 602×595 fabric of the paper — not a perfmodel extrapolation. The
// event-driven core/actor scheduling (idle tiles are free) is what
// makes this affordable: during the long serialization phases almost
// all of the ~358k tiles are parked. workers selects the fabric
// engine; results are bit-identical across engines (the paper-scale
// equivalence test compares Sum, Cycles and Fingerprint).
func PaperAllReduce(workers int) (PaperAllReduceResult, error) {
	const w, h = 602, 595
	cfg := wse.CS1(w, h)
	cfg.Workers = workers
	mach := wse.New(cfg)
	defer mach.Close()
	ar, err := kernels.NewAllReduce(mach, 0)
	if err != nil {
		return PaperAllReduceResult{}, err
	}
	vals := make([]float32, w*h)
	for i := range vals {
		vals[i] = float32(i%17) * 0.25
	}
	res, err := ar.Run(vals, 1<<22)
	if err != nil {
		return PaperAllReduceResult{}, err
	}
	return PaperAllReduceResult{
		W: w, H: h,
		Engine:      mach.Fab.StepperName(),
		Cycles:      res.Cycles,
		Sum:         res.Sum,
		Fingerprint: mach.Fab.Fingerprint(),
		Diameter:    w + h - 2,
	}, nil
}

// PaperAllReduceReport runs PaperAllReduce and formats the §IV-3
// headline comparison: simulated latency vs the paper's < 1.5 µs claim
// and the ~diameter+10% shape.
func PaperAllReduceReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AllReduce at paper scale — cycle-simulated 602×595 wafer\n")
	r, err := PaperAllReduce(1)
	if err != nil {
		return err.Error()
	}
	fmt.Fprintf(&b, "  %d×%d: %d cycles = %.2f µs (paper: < 1.5 µs)\n",
		r.W, r.H, r.Cycles, r.Microseconds())
	fmt.Fprintf(&b, "  diameter %d, ratio %.3f (paper: ~1.1; odd-height wafer serializes its single center row)\n",
		r.Diameter, float64(r.Cycles)/float64(r.Diameter))
	fmt.Fprintf(&b, "  parity-aware model: %.0f cycles (calibrated to this measurement)\n",
		perfmodel.CS1().AllReduceCycles())
	return b.String()
}

// AllReduceReport reproduces the §IV-3 latency claims.
func AllReduceReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AllReduce (Figure 6): cycle-simulated latency vs diameter\n")
	for _, dims := range [][2]int{{8, 8}, {16, 16}, {32, 32}, {64, 48}} {
		mach := wse.New(wse.CS1(dims[0], dims[1]))
		ar, err := kernels.NewAllReduce(mach, 0)
		if err != nil {
			mach.Close()
			return err.Error()
		}
		vals := make([]float32, dims[0]*dims[1])
		for i := range vals {
			vals[i] = float32(i % 3)
		}
		res, err := ar.Run(vals, 1<<20)
		mach.Close()
		if err != nil {
			return err.Error()
		}
		diam := dims[0] + dims[1] - 2
		fmt.Fprintf(&b, "  %3d×%-3d: %4d cycles (diameter %4d, ratio %.3f)\n",
			dims[0], dims[1], res.Cycles, diam, float64(res.Cycles)/float64(diam))
	}
	w := perfmodel.CS1()
	fmt.Fprintf(&b, "  modelled 602×595: %.0f cycles = %.2f µs (paper: < 1.5 µs; ~1.25× diameter — odd height serializes the single center row)\n",
		w.AllReduceCycles(), w.AllReduceSeconds()*1e6)
	return b.String()
}

// MultiWaferReport exercises the cluster-of-wafers backend: a live
// cycle-simulated strong-scaling sweep of one mesh across wafer grids
// (verifying the bit-identical-histories contract as it goes), then
// the calibrated model's projection to grids of full 602×595 wafers on
// the paper's headline mesh.
func MultiWaferReport() string {
	var b strings.Builder
	m := stencil.Mesh{NX: 16, NY: 16, NZ: 32}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	xe := ramp(m.N())
	p, _ := NewProblem(op, xe)

	fmt.Fprintf(&b, "Multi-wafer cluster backend — %v mesh, cycle-simulated\n", m)
	fmt.Fprintf(&b, "  %-6s %12s %10s %10s %10s %10s\n", "grid", "cyc/iter", "spmv", "allreduce", "edge-I/O", "combine")
	var refHist []float64
	identical := true
	for _, grid := range []multiwafer.Topology{{W: 1, H: 1}, {W: 2, H: 1}, {W: 2, H: 2}} {
		res, err := Solve(p, Options{Backend: MultiWafer, MaxIter: 4,
			MultiWafer: MultiWaferOptions{Grid: grid}})
		if err != nil {
			return err.Error()
		}
		pi := res.Telemetry.PerIteration
		fmt.Fprintf(&b, "  %-6s %12d %10d %10d %10d %10d\n",
			grid, pi.Total(), pi.SpMV, pi.AllReduce, pi.EdgeIO, pi.Combine)
		if refHist == nil {
			refHist = res.History
		} else {
			for i := range refHist {
				if res.History[i] != refHist[i] {
					identical = false
				}
			}
		}
	}
	fmt.Fprintf(&b, "  residual histories bit-identical across grids: %v\n", identical)

	model := perfmodel.PaperModel()
	io := perfmodel.DefaultEdgeIO()
	mesh, _, _ := perfmodel.Headline()
	fmt.Fprintf(&b, "Weak-scaling projection — %d×%d per-wafer extent, Z=%d, grids of\n", mesh.X, mesh.Y, mesh.Z)
	fmt.Fprintf(&b, "602×595-class wafers (η=%.3f): bigger meshes, near-constant iteration time\n", perfmodel.PaperEta)
	fmt.Fprintf(&b, "  %-6s %8s %14s %12s %12s %7s\n", "grid", "wafers", "mesh", "µs/iter", "throughput×", "comm%")
	for _, pt := range model.MultiWaferWeakScaling(mesh.X, mesh.Y, mesh.Z,
		[][2]int{{1, 1}, {2, 1}, {2, 2}, {4, 2}, {4, 4}}, 1.1e9, io) {
		fmt.Fprintf(&b, "  %dx%-4d %8d %7dx%-6d %12.2f %12.2f %6.0f%%\n",
			pt.GridW, pt.GridH, pt.Wafers, pt.GridW*mesh.X, pt.GridH*mesh.Y,
			pt.IterMicros, pt.Speedup, 100*pt.Breakdown.CommFraction())
	}
	fmt.Fprintf(&b, "  (the 3D mapping is X×Y-parallel, so scaling out buys capacity, not\n")
	fmt.Fprintf(&b, "   iteration speed: a 16-wafer cluster solves a 16× mesh for the cost of the\n")
	fmt.Fprintf(&b, "   edge-I/O halos and the exact two-level combine; examples/multiwafer also\n")
	fmt.Fprintf(&b, "   prints the strong-scaling sweep that quantifies those overheads)\n")
	return b.String()
}

// ScalingReport reproduces Figures 7 (370³) and 8 (600³).
func ScalingReport() string {
	var b strings.Builder
	cfg := cluster.Joule()
	for _, tc := range []struct {
		name string
		m    stencil.Mesh
	}{{"Figure 7 — 370³ mesh", cluster.Fig7Mesh}, {"Figure 8 — 600³ mesh", cluster.Fig8Mesh}} {
		fmt.Fprintf(&b, "%s (Joule model, ms/iteration)\n", tc.name)
		for _, p := range cluster.StrongScaling(cfg, tc.m, cluster.PublishedCores) {
			fmt.Fprintf(&b, "  %6d cores: %8.2f ms  (mem %.2f, halo %.2f, coll %.2f)\n",
				p.Cores, p.Seconds*1e3, p.Breakdown.Mem*1e3, p.Breakdown.Halo*1e3, p.Breakdown.Coll*1e3)
		}
	}
	t16k := cfg.IterationTime(cluster.Fig8Mesh, 16384).Total()
	fmt.Fprintf(&b, "CS-1 vs 16,384-core Joule on 600³-class problem: %.0f× (paper: ~214×)\n", t16k/28.1e-6)
	return b.String()
}

// Fig9Series is one precision's residual history.
type Fig9Series struct {
	Name    string
	History []float64
}

// Fig9Experiment runs the mixed- vs single-precision study on a
// momentum-like system. meshScale 1 is the paper's 100×400×100; smaller
// scales keep tests fast with the same behaviour.
func Fig9Experiment(nx, ny, nz, iters int) []Fig9Series {
	m := stencil.Mesh{NX: nx, NY: ny, NZ: nz}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1.0, 0.05)
	rng := rand.New(rand.NewSource(3))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.Float64()
	}
	norm, diag := op.Normalize()
	b64 := make([]float64, m.N())
	op.Apply(b64, xe)
	sb := stencil.ScaleRHS(b64, diag)
	bn := stencil.Norm2(sb)

	run := func(ctx solver.Context, name string) Fig9Series {
		a := ctx.NewOperator(norm)
		bv := ctx.NewVector(m.N())
		for i, v := range sb {
			bv.Set(i, v)
		}
		xv := ctx.NewVector(m.N())
		st, err := solver.BiCGStab(ctx, a, bv, xv, solver.Options{
			MaxIter: iters, Tol: 0,
			TrueResidual: func(v solver.Vector) float64 {
				return norm.ResidualNorm(v.Float64(), sb) / bn
			},
		})
		if err != nil {
			panic(err)
		}
		return Fig9Series{Name: name, History: st.TrueHistory}
	}
	return []Fig9Series{
		run(solver.NewF32(), "Single precision"),
		run(solver.NewMixed(), "Mixed sp/hp"),
	}
}

// Fig9Report formats the residual study.
func Fig9Report(nx, ny, nz, iters int) string {
	series := Fig9Experiment(nx, ny, nz, iters)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 — normwise relative residual, %d×%d×%d momentum system\n", nx, ny, nz)
	fmt.Fprintf(&b, "  %-5s %-18s %-18s\n", "iter", series[0].Name, series[1].Name)
	n := len(series[0].History)
	if len(series[1].History) < n {
		n = len(series[1].History)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  %-5d %-18.3e %-18.3e\n", i+1, series[0].History[i], series[1].History[i])
	}
	fmt.Fprintf(&b, "  paper: mixed tracks fp32, then plateaus near 1e-2..1e-3 (fp16 ε ~1e-3 + roundoff growth)\n")
	return b.String()
}

// Table2Report regenerates Table II and the §VI-A projection.
func Table2Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — cycles per meshpoint for SIMPLE, excluding the solver\n")
	fmt.Fprintf(&b, "  %-16s %-9s %-7s %-5s %-7s %-3s %s\n", "Step", "Merge", "FLOP", "sqrt", "divide", "xT", "Total")
	for _, r := range mfix.TableII() {
		fmt.Fprintf(&b, "  %-16s %3.0f-%-5.0f %2.0f-%-4.0f %2.0f-%-2.0f %2.0f-%-4.0f %2.0f  %3.0f-%.0f\n",
			r.Step, r.Merge.Min, r.Merge.Max, r.FLOP.Min, r.FLOP.Max,
			r.Sqrt.Min, r.Sqrt.Max, r.Div.Min, r.Div.Max, r.Trans.Min, r.Total.Min, r.Total.Max)
	}
	pr := mfix.ProjectCS1(perfmodel.PaperModel(), 600, 600, 600, mfix.PaperSimpleParams())
	fmt.Fprintf(&b, "Projection, 600³ / 15 SIMPLE iterations: %.0f–%.0f timesteps/s (paper: 80–125)\n",
		pr.StepsPerSecond.Min, pr.StepsPerSecond.Max)
	joule := mfix.JouleTimestepSeconds(cluster.Joule(), cluster.Fig8Mesh, 16384, mfix.PaperSimpleParams())
	mid := (pr.StepSeconds.Min + pr.StepSeconds.Max) / 2
	fmt.Fprintf(&b, "vs 16,384-core Joule MFIX step (%.2f s): %.0f× (paper: above 200×)\n", joule, joule/mid)
	return b.String()
}

// SpMV2DReport reproduces the §IV-2 capacity and overhead analysis, with
// a functional run of the block-halo kernel.
func SpMV2DReport() string {
	var b strings.Builder
	maxB := perfmodel.MaxBlock2D(48 * 1024)
	fmt.Fprintf(&b, "2D 9-point mapping (§IV-2)\n")
	fmt.Fprintf(&b, "  max block: %d×%d  => geometry %d×%d on a 600-wide fabric (paper: 38×38, 22800²)\n",
		maxB, maxB, maxB*600, maxB*600)
	for _, blk := range []int{4, 8, 16, 38} {
		fmt.Fprintf(&b, "  overhead(b=%2d) = %5.1f%%", blk, 100*perfmodel.Overhead2D(blk))
		if blk == 8 {
			fmt.Fprintf(&b, "   (paper: < 20%% at 8×8)")
		}
		fmt.Fprintln(&b)
	}
	// Functional check.
	m := stencil.Mesh2D{NX: 32, NY: 32}
	norm, _ := stencil.Poisson9(m, 1).Normalize9()
	p, err := kernels.NewSpMV2D(norm, 8)
	if err != nil {
		return err.Error()
	}
	src := make([]fp16.Float16, m.N())
	for i := range src {
		src[i] = fp16.FromFloat64(float64(i%9) / 9)
	}
	dst := make([]fp16.Float16, m.N())
	p.Apply(dst, src)
	fmt.Fprintf(&b, "  functional 32×32 run, 8×8 blocks: %d halo adds (model %d)\n",
		p.HaloAdds, 2*3*4*(8+2)+2*4*3*8)
	return b.String()
}

// Fig1Report prints the machine-balance table.
func Fig1Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — machine balance (flops per word)\n")
	fmt.Fprintf(&b, "  %-24s %6s %10s %10s\n", "system", "year", "memory", "network")
	for _, e := range perfmodel.MachineBalance() {
		tag := ""
		if e.WaferScale {
			tag = "  <= wafer scale"
		}
		fmt.Fprintf(&b, "  %-24s %6d %10.2f %10.1f%s\n", e.System, e.Year, e.FlopsPerWordMemory, e.FlopsPerWordNetwork, tag)
	}
	return b.String()
}

// MemoryReport reproduces the §IV memory-capacity accounting (E11).
func MemoryReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Memory capacity (§IV)\n")
	fmt.Fprintf(&b, "  paper layout, Z=1536: %d bytes of %d (paper: ~31KB of 48KB)\n",
		perfmodel.TileVectorBytes(1536), 48*1024)
	fmt.Fprintf(&b, "  max Z at 10Z words: %d\n", perfmodel.MaxZ(48*1024))
	// Simulator layout (adds SpMV staging and FIFOs).
	m := stencil.Mesh{NX: 1, NY: 1, NZ: 1536}
	norm, _ := stencil.Poisson(m, 1).Normalize()
	mach := wse.New(wse.CS1(1, 1))
	defer mach.Close()
	if _, err := kernels.NewBiCGStabWSE(mach, stencil.NewOp7Half(norm)); err != nil {
		fmt.Fprintf(&b, "  simulator layout: DOES NOT FIT: %v\n", err)
	} else {
		fmt.Fprintf(&b, "  simulator layout, Z=1536: %d bytes (explicit staging buffers)\n",
			mach.Tiles[0].Arena.Used())
	}
	return b.String()
}

// RoutingReport verifies the Figure 5 tessellation property across a
// wafer-sized extent.
func RoutingReport() string {
	bad := 0
	for y := 0; y < 595; y++ {
		for x := 0; x < 602; x++ {
			if !kernels.StencilColorsDistinct(x, y) {
				bad++
			}
		}
	}
	return fmt.Sprintf("Figure 5 — tessellation routing: %d color clashes across 602×595 tiles (5 colors)\n", bad)
}
