//go:build race

package core

// raceEnabled reports whether this test binary was built with the race
// detector; the paper-scale cycle simulation skips itself there (the
// ~50M-word-hop run is an order of magnitude slower under race, and the
// engine-equivalence contract is already race-exercised at small scale
// by the wse and fabric fuzz/equivalence suites).
const raceEnabled = true
