package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/fp16"
	"repro/internal/kernels"
	"repro/internal/multiwafer"
	"repro/internal/solver"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// TestAllBackendsBitIdentical is the cross-backend determinism golden:
// the host chunked-mixed context, the rank-parallel mixed SPMD solver
// (several rank counts), the single-wafer halo solver (sequential and
// sharded engines) and the multi-wafer backend (1×1 and 2×1) must
// produce bit-identical residual histories AND solutions on a shared
// problem. This is what the exact-combine fix buys: every backend
// performs the same fp16 element operations in the same order and sums
// the same per-tile-column float32 dot partials with one rounding.
func TestAllBackendsBitIdentical(t *testing.T) {
	m := stencil.Mesh{NX: 4, NY: 4, NZ: 8}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	norm, diag := op.Normalize()
	rng := rand.New(rand.NewSource(7))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.Float64()
	}
	b := make([]float64, m.N())
	op.Apply(b, xe)
	sb := stencil.ScaleRHS(b, diag)
	h := stencil.NewOp7Half(norm)
	b16 := fp16.FromFloat64Slice(sb)
	zeros := make([]float64, m.N())
	const iters = 6

	type run struct {
		name string
		hist []float64
		x    []float64
	}
	var runs []run

	// Host, chunked-mixed: per-NZ-column float32 partials, exact combine.
	hx, hst, err := solver.HostBackend3D{Context: solver.NewMixedChunked(m.NZ)}.
		Solve3D(norm, sb, zeros, solver.Options{MaxIter: iters, RecordHistory: true})
	if err != nil {
		t.Fatal(err)
	}
	if hst.Breakdown != "" {
		t.Fatalf("host solve broke down (%q); pick a problem that runs all %d iterations", hst.Breakdown, iters)
	}
	runs = append(runs, run{"host/" + solver.NewMixedChunked(m.NZ).Name(), hst.History, hx})

	// Rank-parallel mixed SPMD, several rank counts.
	for _, ranks := range []int{1, 2, 5} {
		x16, hist, err := cluster.ParallelBiCGStabMixed(h, b16, ranks, iters, 0)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{fmt.Sprintf("cluster/mixed/r%d", ranks), hist, fp16.ToFloat64Slice(x16)})
	}

	// Single-wafer halo solver, sequential and sharded engines.
	for _, workers := range []int{1, 4} {
		cfg := wse.CS1(m.NX, m.NY)
		cfg.Workers = workers
		mach := wse.New(cfg)
		w, err := kernels.NewBiCGStabWSEHalo(mach, h)
		if err != nil {
			mach.Close()
			t.Fatal(err)
		}
		x16, st, err := w.Solve(b16, kernels.WSEOptions{MaxIter: iters})
		mach.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Breakdown != "" {
			t.Fatalf("wafer solve broke down: %q", st.Breakdown)
		}
		runs = append(runs, run{fmt.Sprintf("wafer/halo/w%d", workers), st.History, fp16.ToFloat64Slice(x16)})
	}

	// Multi-wafer cluster, one and two wafers.
	for _, g := range []multiwafer.Topology{{W: 1, H: 1}, {W: 2, H: 1}} {
		be := &multiwafer.Backend{Grid: g}
		x, st, err := be.Solve3D(norm, sb, zeros, solver.Options{MaxIter: iters, RecordHistory: true})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run{be.Name(), st.History, x})
	}

	ref := runs[0]
	if len(ref.hist) != iters {
		t.Fatalf("%s: %d history entries, want %d", ref.name, len(ref.hist), iters)
	}
	for _, r := range runs[1:] {
		if len(r.hist) != len(ref.hist) {
			t.Errorf("%s: %d history entries, %s has %d", r.name, len(r.hist), ref.name, len(ref.hist))
			continue
		}
		for i := range ref.hist {
			if math.Float64bits(r.hist[i]) != math.Float64bits(ref.hist[i]) {
				t.Errorf("%s: history[%d] = %.17g (%#x), %s has %.17g (%#x)",
					r.name, i, r.hist[i], math.Float64bits(r.hist[i]),
					ref.name, ref.hist[i], math.Float64bits(ref.hist[i]))
			}
		}
		for i := range ref.x {
			if math.Float64bits(r.x[i]) != math.Float64bits(ref.x[i]) {
				t.Errorf("%s: x[%d] = %g, %s has %g", r.name, i, r.x[i], ref.name, ref.x[i])
				break
			}
		}
	}
}
