package core

import (
	"testing"
)

// TestCavity2DFabric128 is the acceptance run for the cavity-on-wafer
// milestone: the Table II lid-driven cavity (256² cells in 2×2 blocks)
// with every pressure-correction BiCGStab iteration cycle-simulated on
// a sharded 128×128 fabric, bit-identical — SIMPLE residuals, pressure
// residual histories, cycle counts and the machine's architectural
// fingerprint — to the sequential engine. Two SIMPLE sweeps keep the
// run at CI scale (each steps the 16 384-tile machine through ~22k
// simulated cycles of solver work).
//
// Skipped in -short mode and under the race detector (see raceEnabled);
// CI executes it in the dedicated non-race paper-scale step.
func TestCavity2DFabric128(t *testing.T) {
	if testing.Short() {
		t.Skip("128×128 cavity cycle simulation: skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("128×128 cavity cycle simulation: skipped under the race detector")
	}

	const n, b, iters = 256, 2, 2
	seq, err := Cavity2DWSE(n, b, 1, iters, 100)
	if err != nil {
		t.Fatal(err)
	}
	shd, err := Cavity2DWSE(n, b, 8, iters, 100)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("seq: residuals %+v, %d solver iters, %d cycles, fp %#x",
		seq.Residuals, seq.SolverIters, seq.Cycles.Total(), seq.Fingerprint)
	t.Logf("%s: residuals %+v, %d solver iters, %d cycles, fp %#x",
		shd.Engine, shd.Residuals, shd.SolverIters, shd.Cycles.Total(), shd.Fingerprint)
	t.Logf("measured %.4f cycles/meshpoint per solver iteration (allreduce %d of %d cycles)",
		seq.CyclesPerPoint(), seq.Cycles.AllReduce, seq.Cycles.Total())

	if seq.Engine != "seq" || shd.Engine == "seq" {
		t.Fatalf("engine selection wrong: %q vs %q", seq.Engine, shd.Engine)
	}
	compareCavityRuns(t, seq, shd)

	// Physics at scale: the SIMPLE iteration must reduce the mass
	// imbalance from the first sweep.
	first, last := seq.Residuals[0].Mass, seq.Residuals[iters-1].Mass
	if last >= first {
		t.Errorf("mass imbalance did not drop at 128×128: %g -> %g", first, last)
	}
	// The solver must have run wafer-side work every sweep: 20 pressure
	// iterations per SIMPLE iteration.
	if want := iters * 20; seq.SolverIters != want {
		t.Errorf("solver iterations = %d, want %d", seq.SolverIters, want)
	}
}
