// Package core is the public façade of the reproduction: it ties a
// stencil problem to one of four execution backends —
//
//   - Local: the sequential reference solver in a chosen precision
//     (float64, float32, or the CS-1's mixed fp16/fp32);
//   - Wafer: the cycle-level CS-1 simulator (fabric + cores + kernels),
//     returning per-phase cycle counts alongside the solution;
//   - Cluster: the rank-parallel (goroutines-as-MPI) Joule-style solve;
//   - MultiWafer: a grid of cycle-simulated wafers coupled by the
//     edge-I/O interconnect model.
//
// Options carries the backend selection plus per-backend config
// sections, validated in one place by Options.Validate; Result carries
// the solution plus a uniformly serializable Telemetry — the same
// request/response shapes the wsesimd service layer puts on the wire.
// The experiment runners in experiments.go regenerate every table and
// figure of the paper from these backends plus the calibrated models.
package core

import (
	"context"

	"repro/internal/cluster"
	"repro/internal/fp16"
	"repro/internal/kernels"
	"repro/internal/multiwafer"
	"repro/internal/solver"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// Problem is a linear system from a 7-point stencil discretization.
type Problem struct {
	Op *stencil.Op7 // need not be normalized; Solve normalizes
	B  []float64
}

// NewProblem builds a problem with b = A·xexact, returning the problem
// and xexact (handy for accuracy checks).
func NewProblem(op *stencil.Op7, xexact []float64) (Problem, []float64) {
	b := make([]float64, op.M.N())
	op.Apply(b, xexact)
	return Problem{Op: op, B: b}, xexact
}

// Result reports a solve.
type Result struct {
	X          []float64
	Iterations int
	Converged  bool
	Breakdown  string
	// History is the per-iteration iterative relative residual.
	History []float64
	// TrueResidual is ‖b − Ax‖/‖b‖ in float64 against the original
	// operator.
	TrueResidual float64
	// Telemetry is the backend's instrumentation in one serializable
	// shape, populated by every backend.
	Telemetry Telemetry
}

// Solve runs BiCGStab on the selected backend. It validates o first;
// invalid options fail with a *OptionError before any work happens.
func Solve(p Problem, o Options) (Result, error) {
	return SolveContext(nil, p, o)
}

// waferConfig builds the single-wafer machine configuration from
// validated options: the CS-1 hardware shape at the given fabric
// extent, plus the simulation-throughput knobs (sharding workers, or
// an explicit core-stepping engine).
func waferConfig(o Options, w, h int) wse.Config {
	cfg := wse.CS1(w, h)
	cfg.Workers = o.Wafer.Workers
	if o.Wafer.Engine != "" {
		e, err := wse.ParseEngine(o.Wafer.Engine)
		if err != nil {
			// Validate already rejected unknown names; this is a
			// programming error, not an input error.
			panic(err)
		}
		cfg.Engine = e
	}
	return cfg
}

// SolveContext is Solve with cooperative cancellation: every backend
// polls ctx at iteration boundaries (the only points where a simulated
// machine is guaranteed idle) and unwinds with an error wrapping
// ctx.Err(), so errors.Is against context.Canceled or
// context.DeadlineExceeded classifies the outcome. A nil ctx means no
// cancellation, identical to Solve.
func SolveContext(ctx context.Context, p Problem, o Options) (Result, error) {
	var res Result
	if err := o.Validate(); err != nil {
		return res, err
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	norm, diag := p.Op.Normalize()
	sb := stencil.ScaleRHS(p.B, diag)
	switch o.Backend {
	case Local:
		actx := o.Local.Precision.context()
		a := actx.NewOperator(norm)
		bv := actx.NewVector(len(sb))
		for i, v := range sb {
			bv.Set(i, v)
		}
		xv := actx.NewVector(len(sb))
		st, err := solver.BiCGStab(actx, a, bv, xv, solver.Options{
			Ctx:     ctx,
			MaxIter: o.MaxIter, Tol: o.Tol, RecordHistory: true,
		})
		if err != nil {
			return res, err
		}
		res.X = xv.Float64()
		res.Iterations = st.Iterations
		res.Converged = st.Converged
		res.Breakdown = st.Breakdown
		res.History = st.History
		res.Telemetry = Telemetry{Backend: Local.String(), Precision: o.Local.Precision.String()}

	case Wafer:
		m := norm.M
		mach := wse.New(waferConfig(o, m.NX, m.NY))
		defer mach.Close()
		w, err := kernels.NewBiCGStabWSE(mach, stencil.NewOp7Half(norm))
		if err != nil {
			return res, err
		}
		x16, st, err := w.Solve(fp16.FromFloat64Slice(sb), kernels.WSEOptions{
			Ctx:     ctx,
			MaxIter: o.MaxIter, Tol: o.Tol,
			CheckpointEvery: o.Wafer.CheckpointEvery,
			Checkpoint:      o.Wafer.Checkpoint,
			Resume:          o.Wafer.Resume,
		})
		if err != nil {
			return res, err
		}
		res.X = fp16.ToFloat64Slice(x16)
		res.Iterations = st.Iterations
		res.Converged = st.Converged
		res.Breakdown = st.Breakdown
		res.History = st.History
		res.Telemetry = TelemetryFromWSE(st)

	case MultiWafer:
		grid := o.MultiWafer.Grid
		if grid.W == 0 {
			grid = multiwafer.Topology{W: 1, H: 1}
		}
		be := &multiwafer.Backend{Grid: grid, Workers: o.MultiWafer.Workers}
		x, st, err := be.Solve3D(norm, sb, make([]float64, len(sb)), solver.Options{
			Ctx:     ctx,
			MaxIter: o.MaxIter, Tol: o.Tol, RecordHistory: true,
		})
		if err != nil {
			return res, err
		}
		res.X = x
		res.Iterations = st.Iterations
		res.Converged = st.Converged
		res.Breakdown = st.Breakdown
		res.History = st.History
		if mw, ok := be.Stats(); ok {
			res.Telemetry = TelemetryFromMultiWafer(mw)
		} else {
			res.Telemetry = Telemetry{Backend: MultiWafer.String(), Simulated: true}
		}

	case Cluster:
		ranks := o.Cluster.Ranks
		if ranks == 0 {
			ranks = 8
		}
		x, hist, err := cluster.ParallelBiCGStabContext(ctx, norm, sb, ranks, o.MaxIter, o.Tol)
		if err != nil {
			return res, err
		}
		res.X = x
		res.History = hist
		res.Iterations = len(hist)
		res.Converged = o.Tol > 0 && len(hist) > 0 && hist[len(hist)-1] <= o.Tol
		res.Telemetry = Telemetry{Backend: Cluster.String(), Ranks: ranks}
	}
	res.TrueResidual = norm.ResidualNorm(res.X, sb) / stencil.Norm2(sb)
	return res, nil
}
