// Package core is the public façade of the reproduction: it ties a
// stencil problem to one of three execution backends —
//
//   - Local: the sequential reference solver in a chosen precision
//     (float64, float32, or the CS-1's mixed fp16/fp32);
//   - Wafer: the cycle-level CS-1 simulator (fabric + cores + kernels),
//     returning per-phase cycle counts alongside the solution;
//   - Cluster: the rank-parallel (goroutines-as-MPI) Joule-style solve.
//
// The experiment runners in experiments.go regenerate every table and
// figure of the paper from these backends plus the calibrated models.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fp16"
	"repro/internal/kernels"
	"repro/internal/multiwafer"
	"repro/internal/solver"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// Precision selects the arithmetic of the Local backend.
type Precision int

// Precisions.
const (
	F64 Precision = iota
	F32
	Mixed // fp16 storage, fp32 dot accumulation — the CS-1 arithmetic
)

// String names the precision.
func (p Precision) String() string {
	switch p {
	case F64:
		return "fp64"
	case F32:
		return "fp32"
	default:
		return "mixed16/32"
	}
}

func (p Precision) context() solver.Context {
	switch p {
	case F64:
		return solver.NewF64()
	case F32:
		return solver.NewF32()
	default:
		return solver.NewMixed()
	}
}

// Backend selects the execution substrate.
type Backend int

// Backends.
const (
	Local Backend = iota
	Wafer
	Cluster
	// MultiWafer runs the mixed-precision solve across a grid of
	// cycle-simulated wafers coupled through the edge-I/O interconnect
	// model (internal/multiwafer), routed through the solver.Backend3D
	// seam. Residual histories are bit-identical across wafer grids.
	MultiWafer
)

// Problem is a linear system from a 7-point stencil discretization.
type Problem struct {
	Op *stencil.Op7 // need not be normalized; Solve normalizes
	B  []float64
}

// NewProblem builds a problem with b = A·xexact, returning the problem
// and xexact (handy for accuracy checks).
func NewProblem(op *stencil.Op7, xexact []float64) (Problem, []float64) {
	b := make([]float64, op.M.N())
	op.Apply(b, xexact)
	return Problem{Op: op, B: b}, xexact
}

// Options configures a solve.
type Options struct {
	Backend   Backend
	Precision Precision // Local backend only
	MaxIter   int
	Tol       float64
	Ranks     int // Cluster backend: number of goroutine-ranks
	// Workers selects the Wafer backend's simulation engine: <= 1 steps
	// the machine sequentially, > 1 shards the tile grid across that
	// many goroutines on a persistent worker pool (clamped to the tile
	// count; see fabric.Sharded). Simulated results are bit-identical
	// either way.
	Workers int
	// Wafers is the MultiWafer backend's wafer grid; the zero value
	// means a single wafer.
	Wafers multiwafer.Topology
	// CheckpointEvery and Checkpoint enable crash-recoverable solves on
	// the Wafer backend: every CheckpointEvery iterations the callback
	// receives an encoded kernels.WSECheckpoint (machine snapshot plus
	// recurrence scalars). Resume restarts a solve from such a blob; the
	// problem and RHS must match the checkpointed solve. Other backends
	// reject these options.
	CheckpointEvery int
	Checkpoint      func([]byte) error
	Resume          []byte
}

// Result reports a solve.
type Result struct {
	X          []float64
	Iterations int
	Converged  bool
	Breakdown  string
	// History is the per-iteration iterative relative residual.
	History []float64
	// TrueResidual is ‖b − Ax‖/‖b‖ in float64 against the original
	// operator.
	TrueResidual float64
	// Cycles is the wafer backend's per-iteration phase breakdown.
	Cycles *kernels.PhaseCycles
	// MultiWafer is the multiwafer backend's cycle account (per-phase,
	// including edge I/O and the two-level combine).
	MultiWafer *multiwafer.Stats
}

// Solve runs BiCGStab on the selected backend.
func Solve(p Problem, o Options) (Result, error) {
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	norm, diag := p.Op.Normalize()
	sb := stencil.ScaleRHS(p.B, diag)
	var res Result
	if (o.CheckpointEvery > 0 || o.Checkpoint != nil || o.Resume != nil) && o.Backend != Wafer {
		return res, fmt.Errorf("core: checkpoint/resume requires the Wafer backend")
	}
	switch o.Backend {
	case Local:
		ctx := o.Precision.context()
		a := ctx.NewOperator(norm)
		bv := ctx.NewVector(len(sb))
		for i, v := range sb {
			bv.Set(i, v)
		}
		xv := ctx.NewVector(len(sb))
		st, err := solver.BiCGStab(ctx, a, bv, xv, solver.Options{
			MaxIter: o.MaxIter, Tol: o.Tol, RecordHistory: true,
		})
		if err != nil {
			return res, err
		}
		res.X = xv.Float64()
		res.Iterations = st.Iterations
		res.Converged = st.Converged
		res.Breakdown = st.Breakdown
		res.History = st.History

	case Wafer:
		m := norm.M
		cfg := wse.CS1(m.NX, m.NY)
		cfg.Workers = o.Workers
		mach := wse.New(cfg)
		defer mach.Close()
		w, err := kernels.NewBiCGStabWSE(mach, stencil.NewOp7Half(norm))
		if err != nil {
			return res, err
		}
		x16, st, err := w.Solve(fp16.FromFloat64Slice(sb), kernels.WSEOptions{
			MaxIter: o.MaxIter, Tol: o.Tol,
			CheckpointEvery: o.CheckpointEvery, Checkpoint: o.Checkpoint, Resume: o.Resume,
		})
		if err != nil {
			return res, err
		}
		res.X = fp16.ToFloat64Slice(x16)
		res.Iterations = st.Iterations
		res.Converged = st.Converged
		res.Breakdown = st.Breakdown
		res.History = st.History
		pc := st.PerIteration
		res.Cycles = &pc

	case MultiWafer:
		grid := o.Wafers
		if grid.W == 0 {
			grid = multiwafer.Topology{W: 1, H: 1}
		}
		be := &multiwafer.Backend{Grid: grid, Workers: o.Workers}
		x, st, err := be.Solve3D(norm, sb, make([]float64, len(sb)), solver.Options{
			MaxIter: o.MaxIter, Tol: o.Tol, RecordHistory: true,
		})
		if err != nil {
			return res, err
		}
		res.X = x
		res.Iterations = st.Iterations
		res.Converged = st.Converged
		res.Breakdown = st.Breakdown
		res.History = st.History
		if mw, ok := be.Stats(); ok {
			res.MultiWafer = &mw
		}

	case Cluster:
		ranks := o.Ranks
		if ranks == 0 {
			ranks = 8
		}
		x, hist, err := cluster.ParallelBiCGStab(norm, sb, ranks, o.MaxIter, o.Tol)
		if err != nil {
			return res, err
		}
		res.X = x
		res.History = hist
		res.Iterations = len(hist)
		res.Converged = o.Tol > 0 && len(hist) > 0 && hist[len(hist)-1] <= o.Tol

	default:
		return res, fmt.Errorf("core: unknown backend %d", o.Backend)
	}
	res.TrueResidual = norm.ResidualNorm(res.X, sb) / stencil.Norm2(sb)
	return res, nil
}
