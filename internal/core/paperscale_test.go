package core

import (
	"math"
	"testing"

	"repro/internal/perfmodel"
)

// TestPaperScaleAllReduce cycle-simulates the Figure 6 AllReduce on the
// full 602×595 wafer of the paper — the "larger meshes" milestone —
// under both stepping engines, and requires them to be bit-identical:
// same broadcast sum, same latency, same architectural-state
// fingerprint. It also checks the paper's headline claims directly from
// simulation instead of perfmodel extrapolation: latency below 1.5 µs
// at 1.1 GHz and within ~1.3× of the fabric diameter.
//
// The run is skipped in -short mode and under the race detector (see
// raceEnabled); CI executes it in a dedicated non-race step.
func TestPaperScaleAllReduce(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale cycle simulation: skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("paper-scale cycle simulation: skipped under the race detector")
	}

	seq, err := PaperAllReduce(1)
	if err != nil {
		t.Fatal(err)
	}
	shd, err := PaperAllReduce(8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("seq: %d cycles (%.2f µs), sum %g, fp %#x", seq.Cycles, seq.Microseconds(), seq.Sum, seq.Fingerprint)
	t.Logf("%s: %d cycles (%.2f µs), sum %g, fp %#x", shd.Engine, shd.Cycles, shd.Microseconds(), shd.Sum, shd.Fingerprint)

	if seq.Engine != "seq" || shd.Engine == "seq" {
		t.Fatalf("engine selection wrong: %q vs %q", seq.Engine, shd.Engine)
	}
	if seq.Cycles != shd.Cycles {
		t.Errorf("latency diverges across engines: seq %d, %s %d", seq.Cycles, shd.Engine, shd.Cycles)
	}
	if seq.Sum != shd.Sum {
		t.Errorf("sum diverges across engines: seq %g, %s %g", seq.Sum, shd.Engine, shd.Sum)
	}
	if seq.Fingerprint != shd.Fingerprint {
		t.Errorf("state fingerprints diverge: seq %#x, %s %#x", seq.Fingerprint, shd.Engine, shd.Fingerprint)
	}

	// Paper claims, measured rather than extrapolated.
	diam := int64(seq.Diameter)
	if seq.Cycles < diam {
		t.Errorf("latency %d below the fabric diameter %d: impossible", seq.Cycles, diam)
	}
	if float64(seq.Cycles) > 1.35*float64(diam) {
		t.Errorf("latency %d cycles = %.2f× diameter; paper reports ~1.1×", seq.Cycles, float64(seq.Cycles)/float64(diam))
	}
	if us := seq.Microseconds(); us >= 1.5 {
		t.Errorf("simulated AllReduce %.2f µs; paper claims < 1.5 µs", us)
	}

	// The analytic model must agree with this live measurement within 1%
	// (the other half of the drift pin; perfmodel's own test pins the
	// constant). The old diameter+7 model failed exactly here: it was
	// calibrated on even×even fabrics and missed the odd-height wafer.
	model := perfmodel.CS1().AllReduceCycles()
	if rel := math.Abs(model-float64(seq.Cycles)) / float64(seq.Cycles); rel > 0.01 {
		t.Errorf("perfmodel.AllReduceCycles %g vs simulated %d cycles (off %.2f%%) — recalibrate the model",
			model, seq.Cycles, 100*rel)
	}

	// Exactness of the reduction tree against a float64 reference is a
	// different contract (see ROADMAP); here only require agreement to
	// float32 tree-order tolerance.
	var want float64
	for i := 0; i < seq.W*seq.H; i++ {
		want += float64(i%17) * 0.25
	}
	if rel := (float64(seq.Sum) - want) / want; rel > 1e-4 || rel < -1e-4 {
		t.Errorf("sum %g too far from reference %g (rel %.2e)", seq.Sum, want, rel)
	}
}
