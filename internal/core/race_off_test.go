//go:build !race

package core

// raceEnabled is false without -race; see race_on_test.go.
const raceEnabled = false
