package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/stencil"
	"repro/internal/stencilc"
)

func seismicProblem(t *testing.T, m stencil.Mesh, s float64, seed int64) (StarProblem, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.Float64()
	}
	return NewStarProblem(stencil.Seismic25(m, s), xe)
}

func TestSolveStarBackends(t *testing.T) {
	m := stencil.Mesh{NX: 4, NY: 4, NZ: 6}
	p, xe := seismicProblem(t, m, 0.08, 5)
	for _, o := range []Options{
		{Backend: Local, MaxIter: 60, Tol: 1e-6},
		{Backend: Wafer, MaxIter: 60, Tol: 1e-3},
	} {
		res, err := SolveStar(p, o)
		if err != nil {
			t.Fatalf("%s: %v", o.Backend, err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge: %+v", o.Backend, res)
		}
		if res.TrueResidual > 5e-3 {
			t.Fatalf("%s: true residual %g", o.Backend, res.TrueResidual)
		}
		tol := 1e-4
		if o.Backend == Wafer {
			tol = 5e-2
		}
		for i := range xe {
			if math.Abs(res.X[i]-xe[i]) > tol {
				t.Fatalf("%s: x[%d] = %g, want %g", o.Backend, i, res.X[i], xe[i])
			}
		}
		if o.Backend == Wafer && !res.Telemetry.Simulated {
			t.Fatal("wafer telemetry not marked simulated")
		}
	}
}

func TestSolveStarRejections(t *testing.T) {
	m := stencil.Mesh{NX: 2, NY: 2, NZ: 4}
	p, _ := seismicProblem(t, m, 0.05, 7)
	var oe *OptionError
	if _, err := SolveStar(p, Options{Backend: Cluster}); !errors.As(err, &oe) {
		t.Fatalf("cluster star solve: %v, want *OptionError", err)
	}
	if _, err := SolveStar(p, Options{Backend: Local, Local: LocalOptions{Precision: Mixed}}); !errors.As(err, &oe) {
		t.Fatalf("mixed-precision host star solve: %v, want *OptionError", err)
	}
	// A periodic operator runs on the host but is not wafer-lowerable:
	// the compiler's typed error must surface, not a reference panic.
	pp := p
	pp.Op = stencil.Heat3D(m, 0.2, stencil.Periodic)
	var ue *stencilc.UnsupportedError
	if _, err := SolveStar(pp, Options{Backend: Wafer, MaxIter: 5}); !errors.As(err, &ue) {
		t.Fatalf("periodic wafer star solve: %v, want *stencilc.UnsupportedError", err)
	}
	if _, err := SolveStar(pp, Options{Backend: Local, MaxIter: 40, Tol: 1e-6}); err != nil {
		t.Fatalf("periodic host star solve: %v", err)
	}
}

func TestRunHeat3D(t *testing.T) {
	m := stencil.Mesh{NX: 3, NY: 3, NZ: 4}
	rng := rand.New(rand.NewSource(11))
	u0 := make([]float64, m.N())
	for i := range u0 {
		u0[i] = rng.Float64()
	}
	for _, o := range []Options{
		{Backend: Local, MaxIter: 80, Tol: 1e-8},
		{Backend: Wafer, MaxIter: 80, Tol: 1e-4},
	} {
		steps, err := RunHeat3D(nil, m, 0.2, stencil.Dirichlet, u0, 3, o)
		if err != nil {
			t.Fatalf("%s: %v", o.Backend, err)
		}
		prev := sumSq(u0)
		for i, s := range steps {
			if s.Energy >= prev {
				t.Fatalf("%s: step %d energy %g did not decay from %g", o.Backend, i+1, s.Energy, prev)
			}
			prev = s.Energy
		}
	}
}

func TestRunHeat2D(t *testing.T) {
	m := stencil.Mesh2D{NX: 8, NY: 4}
	rng := rand.New(rand.NewSource(13))
	u0 := make([]float64, m.N())
	for i := range u0 {
		u0[i] = rng.Float64()
	}
	for _, o := range []Options{
		{Backend: Local, MaxIter: 80, Tol: 1e-8},
		{Backend: Wafer, MaxIter: 80, Tol: 1e-4},
	} {
		steps, err := RunHeat2D(nil, m, 0.15, u0, 3, 2, o)
		if err != nil {
			t.Fatalf("%s: %v", o.Backend, err)
		}
		prev := sumSq(u0)
		for i, s := range steps {
			if s.Energy >= prev {
				t.Fatalf("%s: step %d energy %g did not decay from %g", o.Backend, i+1, s.Energy, prev)
			}
			prev = s.Energy
		}
		if o.Backend == Wafer && !steps[len(steps)-1].Solve.Telemetry.Simulated {
			t.Fatal("wafer heat telemetry not marked simulated")
		}
	}
	// Bad shapes fail loudly.
	if _, err := RunHeat2D(nil, m, 0.15, u0, 3, 3, Options{Backend: Wafer}); err == nil {
		t.Fatal("odd block size accepted")
	}
	if _, err := RunHeat2D(nil, m, -1, u0, 3, 2, Options{Backend: Local}); err == nil {
		t.Fatal("negative lambda accepted")
	}
}
