package core

import (
	"context"
	"fmt"

	"repro/internal/kernels"
	"repro/internal/solver"
	"repro/internal/stencil"
	"repro/internal/stencilc"
	"repro/internal/wse"
)

// StarProblem is a linear system from a star-stencil discretization of
// arbitrary per-axis widths — the 25-point seismic stencil, the 7-point
// heat step, and everything the stencil compiler lowers.
type StarProblem struct {
	Op *stencil.OpStar // need not be normalized; SolveStar normalizes
	B  []float64
}

// NewStarProblem builds a problem with b = A·xexact, returning the
// problem and xexact (handy for accuracy checks).
func NewStarProblem(op *stencil.OpStar, xexact []float64) (StarProblem, []float64) {
	b := make([]float64, op.M.N())
	op.Apply(b, xexact)
	return StarProblem{Op: op, B: b}, xexact
}

// starSpec derives the stencil-compiler spec a star operator lowers
// under: a 3D star of the operator's widths and boundary.
func starSpec(op *stencil.OpStar) stencilc.Spec {
	return stencilc.Spec{Dim: 3, Points: stencilc.Star, Widths: op.W, Boundary: op.Boundary}
}

// SolveStar runs BiCGStab on a star-stencil system. Star solves run on
// the Local (float64 only) and Wafer backends; the wafer path compiles
// the operator's spec with internal/stencilc and rejects combinations
// the lowering does not support (e.g. periodic boundaries) with a
// *stencilc.UnsupportedError.
func SolveStar(p StarProblem, o Options) (Result, error) {
	return SolveStarContext(nil, p, o)
}

// SolveStarContext is SolveStar with cooperative cancellation, with the
// same contract as SolveContext.
func SolveStarContext(ctx context.Context, p StarProblem, o Options) (Result, error) {
	var res Result
	if err := o.Validate(); err != nil {
		return res, err
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	norm, diag := p.Op.Normalize()
	sb := stencil.ScaleRHS(p.B, diag)
	zero := make([]float64, len(sb))
	sopts := solver.Options{
		Ctx:     ctx,
		MaxIter: o.MaxIter, Tol: o.Tol, RecordHistory: true,
	}
	switch o.Backend {
	case Local:
		if o.Local.Precision != F64 {
			return res, &OptionError{"Local.Precision", fmt.Sprintf(
				"star solves run in fp64 on the host (got %s); use the wafer backend for the mixed-precision path", o.Local.Precision)}
		}
		x, st, err := solver.HostBackendStar{}.SolveStar(norm, sb, zero, sopts)
		if err != nil {
			return res, err
		}
		res.fromSolverStats(x, st)
		res.Telemetry = Telemetry{Backend: Local.String(), Precision: F64.String()}

	case Wafer:
		m := norm.M
		mach := wse.New(waferConfig(o, m.NX, m.NY))
		defer mach.Close()
		be := kernels.NewWaferStarBackend(mach, starSpec(norm))
		sopts.CheckpointEvery = o.Wafer.CheckpointEvery
		sopts.Checkpoint = o.Wafer.Checkpoint
		sopts.Resume = o.Wafer.Resume
		x, st, err := be.SolveStar(norm, sb, zero, sopts)
		if err != nil {
			return res, err
		}
		res.fromSolverStats(x, st)
		res.Telemetry = TelemetryFromWSE(be.LastStats)

	default:
		return res, &OptionError{"Backend", fmt.Sprintf(
			"star solves run on the local (fp64) and wafer backends, not %s", o.Backend)}
	}
	res.TrueResidual = norm.ResidualNorm(res.X, sb) / stencil.Norm2(sb)
	return res, nil
}

// fromSolverStats fills the solve outcome fields from a backend's
// solver.Stats.
func (r *Result) fromSolverStats(x []float64, st solver.Stats) {
	r.X = x
	r.Iterations = st.Iterations
	r.Converged = st.Converged
	r.Breakdown = st.Breakdown
	r.History = st.History
}

// ---------------------------------------------------------------------
// Heat stepping

// HeatStep reports one implicit heat step.
type HeatStep struct {
	// U is the temperature field after the step.
	U []float64
	// Energy is ‖U‖₂² after the step — backward Euler is
	// unconditionally dissipative, so this must decay monotonically.
	Energy float64
	// Solve is the step's linear-solve outcome.
	Solve Result
}

// RunHeat3D advances the 3D heat equation `steps` backward-Euler steps
// from u0: each step solves (I + λ·L)·u' = u through SolveStar on the
// selected backend, where λ = α·Δt/h² is the diffusion number. The
// wafer path rebuilds the machine per step at these demo scales; the
// solves themselves reuse nothing across steps, so every step's history
// is independently reproducible.
func RunHeat3D(ctx context.Context, m stencil.Mesh, lambda float64, boundary stencil.Boundary, u0 []float64, steps int, o Options) ([]HeatStep, error) {
	if len(u0) != m.N() {
		return nil, fmt.Errorf("core: initial field length %d, want %d", len(u0), m.N())
	}
	if steps <= 0 {
		return nil, fmt.Errorf("core: heat stepping needs steps > 0, got %d", steps)
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("core: heat stepping needs a positive diffusion number, got %g", lambda)
	}
	op := stencil.Heat3D(m, lambda, boundary)
	u := append([]float64(nil), u0...)
	out := make([]HeatStep, 0, steps)
	for s := 0; s < steps; s++ {
		res, err := SolveStarContext(ctx, StarProblem{Op: op, B: u}, o)
		if err != nil {
			return out, fmt.Errorf("core: heat step %d: %w", s+1, err)
		}
		u = res.X
		out = append(out, HeatStep{U: u, Energy: sumSq(u), Solve: res})
	}
	return out, nil
}

// RunHeat2D is RunHeat3D on a 2D mesh through the Backend2D seam: the
// host float64 solver, or — when o.Backend is Wafer — the 2D block-halo
// wafer program with block² meshpoints per tile (the mesh must tile
// into block×block; the machine is built once and kept warm across
// steps). The 9-point heat step has zero corner coefficients, so the
// wafer program is exactly the 5-point star spec's schedule.
func RunHeat2D(ctx context.Context, m stencil.Mesh2D, lambda float64, u0 []float64, steps, block int, o Options) ([]HeatStep, error) {
	if len(u0) != m.N() {
		return nil, fmt.Errorf("core: initial field length %d, want %d", len(u0), m.N())
	}
	if steps <= 0 {
		return nil, fmt.Errorf("core: heat stepping needs steps > 0, got %d", steps)
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("core: heat stepping needs a positive diffusion number, got %g", lambda)
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if o.MaxIter == 0 {
		o.MaxIter = 200
	}
	var be solver.Backend2D
	var wafer *kernels.Wafer2DBackend
	switch o.Backend {
	case Local:
		if o.Local.Precision != F64 {
			return nil, &OptionError{"Local.Precision", fmt.Sprintf(
				"2D heat steps run in fp64 on the host (got %s); use the wafer backend for the mixed-precision path", o.Local.Precision)}
		}
		be = solver.HostBackend2D{}
	case Wafer:
		if block <= 0 || block%2 != 0 {
			return nil, fmt.Errorf("core: wafer heat stepping needs an even positive block size, got %d", block)
		}
		if m.NX%block != 0 || m.NY%block != 0 {
			return nil, fmt.Errorf("core: mesh %d×%d does not tile into %d×%d blocks", m.NX, m.NY, block, block)
		}
		mach := wse.New(waferConfig(o, m.NX/block, m.NY/block))
		defer mach.Close()
		wafer = kernels.NewWafer2DBackend(mach, block)
		be = wafer
	default:
		return nil, &OptionError{"Backend", fmt.Sprintf(
			"2D heat steps run on the local (fp64) and wafer backends, not %s", o.Backend)}
	}
	norm, diag := stencil.Heat2D(m, lambda).Normalize9()
	u := append([]float64(nil), u0...)
	zero := make([]float64, len(u))
	out := make([]HeatStep, 0, steps)
	for s := 0; s < steps; s++ {
		sb := stencil.ScaleRHS(u, diag)
		x, st, err := be.Solve2D(norm, sb, zero, solver.Options{
			Ctx:     ctx,
			MaxIter: o.MaxIter, Tol: o.Tol, RecordHistory: true,
		})
		if err != nil {
			return out, fmt.Errorf("core: heat step %d: %w", s+1, err)
		}
		var res Result
		res.fromSolverStats(x, st)
		if wafer != nil {
			res.Telemetry = TelemetryFromWSE(wafer.LastStats)
		} else {
			res.Telemetry = Telemetry{Backend: Local.String(), Precision: F64.String()}
		}
		u = x
		out = append(out, HeatStep{U: u, Energy: sumSq(u), Solve: res})
	}
	return out, nil
}

func sumSq(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return s
}
