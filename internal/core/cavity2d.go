package core

import (
	"fmt"
	"strings"

	"repro/internal/kernels"
	"repro/internal/mfix"
	"repro/internal/perfmodel"
	"repro/internal/wse"
)

// Cavity2DRun is one cycle-simulated run of the Table II lid-driven
// cavity with the pressure-correction solve on the wafer: the SIMPLE
// outer loop on the host, momentum solves on the host backend, and
// every pressure BiCGStab executing on the simulated fabric through the
// §IV-2 2D block-halo mapping.
type Cavity2DRun struct {
	N, B        int // cells per side, block edge (fabric is N/B × N/B)
	Workers     int
	Engine      string // fabric stepping engine name
	Re          float64
	SimpleIters int

	Residuals         []mfix.Residuals
	PressureResiduals [][]float64 // per solve, per BiCGStab iteration
	Fingerprint       uint64      // machine architectural state at the end

	Solves      int                 // pressure solves (= SIMPLE iterations)
	SolverIters int                 // total wafer BiCGStab iterations
	Cycles      kernels.PhaseCycles // accumulated simulated cycles
}

// FabricDim returns the tile-grid edge.
func (r Cavity2DRun) FabricDim() int { return r.N / r.B }

// CyclesPerPoint returns simulated solver cycles per meshpoint per
// BiCGStab iteration — the wafer-side cost the §VI-A projection charges
// at the headline rate.
func (r Cavity2DRun) CyclesPerPoint() float64 {
	if r.SolverIters == 0 {
		return 0
	}
	return float64(r.Cycles.Total()) / float64(r.SolverIters) / float64(r.N*r.N)
}

// Cavity2DWSE runs the lid-driven cavity with the wafer pressure
// backend under cycle simulation. workers selects the fabric engine;
// the result — residuals, pressure histories, machine fingerprint — is
// bit-identical across engines (the equivalence tests compare them).
// The machine is closed before returning, so no pool goroutines outlive
// the call.
func Cavity2DWSE(n, b, workers, simpleIters int, re float64) (Cavity2DRun, error) {
	if b <= 0 || n%b != 0 {
		return Cavity2DRun{}, fmt.Errorf("core: mesh %d does not tile into %d×%d blocks", n, b, b)
	}
	cfg := wse.CS1(n/b, n/b)
	cfg.Workers = workers
	mach := wse.New(cfg)
	defer mach.Close()

	be := kernels.NewWafer2DBackend(mach, b)
	c := mfix.NewCavity2D(n, re)
	c.Pressure = be
	c.RecordPressureHistory = true
	res, err := c.Run(simpleIters)
	if err != nil {
		return Cavity2DRun{}, err
	}
	return Cavity2DRun{
		N: n, B: b, Workers: workers,
		Engine:            mach.Fab.StepperName(),
		Re:                re,
		SimpleIters:       simpleIters,
		Residuals:         res,
		PressureResiduals: c.PressureResiduals,
		Fingerprint:       mach.Fingerprint(),
		Solves:            be.Solves,
		SolverIters:       be.Iterations,
		Cycles:            be.Cycles,
	}, nil
}

// Cavity2DReport runs a small cavity-on-wafer configuration end to end
// and formats the §VI-A comparison: SIMPLE convergence with the
// cycle-simulated fp16 pressure solve against the float64 host
// baseline, plus measured cycles per meshpoint against the calibrated
// model's headline rate.
func Cavity2DReport() string {
	const n, b, iters = 16, 2, 8
	var sb strings.Builder
	fmt.Fprintf(&sb, "2D cavity on the wafer (Table II workload, pressure solve cycle-simulated)\n")

	run, err := Cavity2DWSE(n, b, 1, iters, 100)
	if err != nil {
		return err.Error()
	}
	host := mfix.NewCavity2D(n, 100)
	hres, err := host.Run(iters)
	if err != nil {
		return err.Error()
	}
	fmt.Fprintf(&sb, "  %d² cells, %d×%d blocks on a %d×%d fabric, Re=%g, %d SIMPLE iterations\n",
		n, b, b, run.FabricDim(), run.FabricDim(), run.Re, iters)
	for i, r := range run.Residuals {
		fmt.Fprintf(&sb, "  iter %2d: mass %.3e (host fp64: %.3e)  momentum-change %.3e\n",
			i+1, r.Mass, hres[i].Mass, r.Momentum)
	}
	fmt.Fprintf(&sb, "  pressure solver: %d BiCGStab iterations over %d solves, %d cycles total\n",
		run.SolverIters, run.Solves, run.Cycles.Total())
	fmt.Fprintf(&sb, "  breakdown: spmv %d, dot %d, allreduce %d, axpy %d\n",
		run.Cycles.SpMV, run.Cycles.Dot, run.Cycles.AllReduce, run.Cycles.Axpy)
	headline, _, _ := perfmodel.Headline()
	w := perfmodel.CS1()
	modelPerPoint := perfmodel.PaperModel().IterationCycles(w, headline.Z).Total() / float64(headline.Z)
	fmt.Fprintf(&sb, "  cycles/meshpoint/iteration: %.3f measured (small %d×%d blocks; AllReduce dominates)\n",
		run.CyclesPerPoint(), b, b)
	fmt.Fprintf(&sb, "  vs %.1f modelled at the 3D headline (Z=1536 amortizes the reduction)\n", modelPerPoint)
	return sb.String()
}
