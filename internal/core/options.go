package core

import (
	"fmt"
	"math"

	"repro/internal/multiwafer"
	"repro/internal/solver"
	"repro/internal/wse"
)

// Precision selects the arithmetic of the Local backend.
type Precision int

// Precisions.
const (
	F64 Precision = iota
	F32
	Mixed // fp16 storage, fp32 dot accumulation — the CS-1 arithmetic
)

// String names the precision.
func (p Precision) String() string {
	switch p {
	case F64:
		return "fp64"
	case F32:
		return "fp32"
	case Mixed:
		return "mixed16/32"
	default:
		return fmt.Sprintf("precision(%d)", int(p))
	}
}

// ParsePrecision maps the flag/wire names ("fp64", "fp32", "mixed") to a
// precision. It accepts the String() forms too.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "fp64", "f64", "float64":
		return F64, nil
	case "fp32", "f32", "float32":
		return F32, nil
	case "mixed", "mixed16/32":
		return Mixed, nil
	}
	return 0, fmt.Errorf("core: unknown precision %q (want fp64, fp32 or mixed)", s)
}

func (p Precision) context() solver.Context {
	switch p {
	case F64:
		return solver.NewF64()
	case F32:
		return solver.NewF32()
	default:
		return solver.NewMixed()
	}
}

// Backend selects the execution substrate.
type Backend int

// Backends.
const (
	Local Backend = iota
	Wafer
	Cluster
	// MultiWafer runs the mixed-precision solve across a grid of
	// cycle-simulated wafers coupled through the edge-I/O interconnect
	// model (internal/multiwafer), routed through the solver.Backend3D
	// seam. Residual histories are bit-identical across wafer grids.
	MultiWafer
)

// String names the backend; the names double as the wire format of the
// service layer's job specs (see ParseBackend).
func (b Backend) String() string {
	switch b {
	case Local:
		return "local"
	case Wafer:
		return "wafer"
	case Cluster:
		return "cluster"
	case MultiWafer:
		return "multiwafer"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// ParseBackend maps the flag/wire names to a backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "local":
		return Local, nil
	case "wafer":
		return Wafer, nil
	case "cluster":
		return Cluster, nil
	case "multiwafer":
		return MultiWafer, nil
	}
	return 0, fmt.Errorf("core: unknown backend %q (want local, wafer, cluster or multiwafer)", s)
}

// OptionError reports a single invalid or misplaced Options field.
// Field is the dotted path into Options (e.g. "Cluster.Ranks"), so
// callers — the CLIs mapping it back to a flag, the daemon mapping it
// to a request field — can point at exactly what to fix.
type OptionError struct {
	Field  string
	Reason string
}

// Error implements error.
func (e *OptionError) Error() string {
	return fmt.Sprintf("core: invalid Options.%s: %s", e.Field, e.Reason)
}

// LocalOptions configures the Local backend.
type LocalOptions struct {
	// Precision selects the arithmetic; the zero value is F64.
	Precision Precision
}

// WaferOptions configures the Wafer backend (the single-wafer
// cycle-level simulator).
type WaferOptions struct {
	// Workers selects the simulation engine: <= 1 steps the machine
	// sequentially, > 1 shards the tile grid across that many goroutines
	// on a persistent worker pool (clamped to the tile count; see
	// fabric.Sharded). Simulated results are bit-identical either way.
	Workers int
	// Engine names the core-stepping engine ("seq", "sharded",
	// "batched", "fastforward"; empty means automatic — see
	// wse.EngineAuto). Every engine is bit- and cycle-identical; the
	// batched and fast-forward engines are the host-throughput modes
	// that make paper-scale solves interactive. Mutually exclusive with
	// Workers > 1, which already selects the sharded engine.
	Engine string
	// CheckpointEvery and Checkpoint enable crash-recoverable solves:
	// every CheckpointEvery iterations the callback receives an encoded
	// kernels.WSECheckpoint (machine snapshot plus recurrence scalars).
	// Resume restarts a solve from such a blob; the problem and RHS must
	// match the checkpointed solve. Only the Wafer backend has a
	// restorable substrate, so Validate rejects these fields on every
	// other backend.
	CheckpointEvery int
	Checkpoint      func([]byte) error
	Resume          []byte
}

func (w WaferOptions) isZero() bool {
	return w.Workers == 0 && w.Engine == "" && w.CheckpointEvery == 0 && w.Checkpoint == nil && w.Resume == nil
}

// ClusterOptions configures the Cluster backend (the rank-parallel
// goroutines-as-MPI Joule-style solve).
type ClusterOptions struct {
	// Ranks is the number of goroutine-ranks; 0 means 8.
	Ranks int
}

// MultiWaferOptions configures the MultiWafer backend.
type MultiWaferOptions struct {
	// Grid is the wafer grid; the zero value means a single wafer.
	Grid multiwafer.Topology
	// Workers is the number of simulation workers per wafer machine,
	// with the same semantics as WaferOptions.Workers.
	Workers int
}

func (m MultiWaferOptions) isZero() bool {
	return m.Grid == (multiwafer.Topology{}) && m.Workers == 0
}

// Options configures a solve. The backend-specific knobs live in
// per-backend sections; only the section matching Backend may be set.
// Validate (called by Solve) rejects a section supplied for a backend
// that is not selected, so a misrouted request — Cluster ranks on a
// Wafer solve, a checkpoint on a Local solve — fails loudly instead of
// being silently ignored.
type Options struct {
	Backend Backend
	// MaxIter bounds the number of iterations; 0 means 200.
	MaxIter int
	// Tol is the convergence threshold on the relative residual; 0
	// disables early exit and runs MaxIter iterations.
	Tol float64

	Local      LocalOptions      // Local backend only
	Wafer      WaferOptions      // Wafer backend only
	Cluster    ClusterOptions    // Cluster backend only
	MultiWafer MultiWaferOptions // MultiWafer backend only
}

// Validate checks the options in one place, for every caller — the four
// CLIs and the wsesimd daemon all route through it rather than
// re-implementing flag checks. Failures are *OptionError values naming
// the offending field.
func (o Options) Validate() error {
	switch o.Backend {
	case Local, Wafer, Cluster, MultiWafer:
	default:
		return &OptionError{"Backend", fmt.Sprintf("unknown backend %d", int(o.Backend))}
	}
	if o.MaxIter < 0 {
		return &OptionError{"MaxIter", fmt.Sprintf("must be >= 0 (0 means 200), got %d", o.MaxIter)}
	}
	if o.Tol < 0 || math.IsNaN(o.Tol) {
		return &OptionError{"Tol", fmt.Sprintf("must be >= 0 (0 disables early exit), got %v", o.Tol)}
	}

	// Sections are exclusive to their backend.
	if o.Backend != Local && o.Local != (LocalOptions{}) {
		return &OptionError{"Local", fmt.Sprintf("%s backend does not take Local options (precision is host-only)", o.Backend)}
	}
	if o.Backend != Wafer && !o.Wafer.isZero() {
		return &OptionError{"Wafer", fmt.Sprintf("%s backend does not take Wafer options (simulation workers and checkpoint/resume are single-wafer only)", o.Backend)}
	}
	if o.Backend != Cluster && o.Cluster != (ClusterOptions{}) {
		return &OptionError{"Cluster.Ranks", fmt.Sprintf("%s backend does not take goroutine-ranks", o.Backend)}
	}
	if o.Backend != MultiWafer && !o.MultiWafer.isZero() {
		return &OptionError{"MultiWafer", fmt.Sprintf("%s backend does not take a wafer grid", o.Backend)}
	}

	switch o.Backend {
	case Local:
		switch o.Local.Precision {
		case F64, F32, Mixed:
		default:
			return &OptionError{"Local.Precision", fmt.Sprintf("unknown precision %d", int(o.Local.Precision))}
		}
	case Wafer:
		if o.Wafer.Workers < 0 {
			return &OptionError{"Wafer.Workers", fmt.Sprintf("must be >= 0, got %d", o.Wafer.Workers)}
		}
		if o.Wafer.Engine != "" {
			if _, err := wse.ParseEngine(o.Wafer.Engine); err != nil {
				return &OptionError{"Wafer.Engine", err.Error()}
			}
			if o.Wafer.Workers > 1 {
				return &OptionError{"Wafer.Engine", fmt.Sprintf(
					"Workers = %d already selects the sharded engine; drop one of the two", o.Wafer.Workers)}
			}
		}
		if o.Wafer.CheckpointEvery < 0 {
			return &OptionError{"Wafer.CheckpointEvery", fmt.Sprintf("must be >= 0, got %d", o.Wafer.CheckpointEvery)}
		}
		if o.Wafer.CheckpointEvery > 0 && o.Wafer.Checkpoint == nil {
			return &OptionError{"Wafer.Checkpoint", "CheckpointEvery is set but the Checkpoint callback is nil"}
		}
		if o.Wafer.Checkpoint != nil && o.Wafer.CheckpointEvery == 0 {
			return &OptionError{"Wafer.CheckpointEvery", "a Checkpoint callback without CheckpointEvery > 0 would never fire"}
		}
	case Cluster:
		if o.Cluster.Ranks < 0 {
			return &OptionError{"Cluster.Ranks", fmt.Sprintf("must be >= 0 (0 means 8), got %d", o.Cluster.Ranks)}
		}
	case MultiWafer:
		g := o.MultiWafer.Grid
		if g.W < 0 || g.H < 0 || (g.W == 0) != (g.H == 0) {
			return &OptionError{"MultiWafer.Grid", fmt.Sprintf("grid must be empty (one wafer) or positive in both dimensions, got %dx%d", g.W, g.H)}
		}
		if o.MultiWafer.Workers < 0 {
			return &OptionError{"MultiWafer.Workers", fmt.Sprintf("must be >= 0, got %d", o.MultiWafer.Workers)}
		}
	}
	return nil
}
