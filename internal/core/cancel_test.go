package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/multiwafer"
)

// TestSolveContextPreCanceled: a context canceled before the solve
// starts unwinds every backend at its first iteration boundary with an
// error that classifies as context.Canceled.
func TestSolveContextPreCanceled(t *testing.T) {
	p, _ := testProblem(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"local", Options{Backend: Local, MaxIter: 10}},
		{"wafer", Options{Backend: Wafer, MaxIter: 10}},
		{"cluster", Options{Backend: Cluster, Cluster: ClusterOptions{Ranks: 8}, MaxIter: 10}},
		{"multiwafer", Options{Backend: MultiWafer, MultiWafer: MultiWaferOptions{Grid: multiwafer.Topology{W: 2, H: 1}}, MaxIter: 10}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := SolveContext(ctx, p, tc.opts)
			if err == nil {
				t.Fatal("canceled solve returned nil error")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want errors.Is(context.Canceled)", err)
			}
		})
	}
}

// TestSolveContextDeadline: an expired deadline classifies as
// context.DeadlineExceeded — the service layer relies on this to give
// deadline-expired jobs a distinct terminal status.
func TestSolveContextDeadline(t *testing.T) {
	p, _ := testProblem(5)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := SolveContext(ctx, p, Options{Backend: Local, MaxIter: 10})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(context.DeadlineExceeded)", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("deadline expiry also classified as Canceled: %v", err)
	}
}

// TestSolveContextNoCancelBitIdentical: threading a live context must
// not perturb the solve — results stay bit-identical to Solve.
func TestSolveContextNoCancelBitIdentical(t *testing.T) {
	p, _ := testProblem(5)
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"local", Options{Backend: Local, MaxIter: 12}},
		{"cluster", Options{Backend: Cluster, Cluster: ClusterOptions{Ranks: 8}, MaxIter: 12}},
		{"wafer", Options{Backend: Wafer, MaxIter: 12}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref, err := Solve(p, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			got, err := SolveContext(ctx, p, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.X) != len(ref.X) {
				t.Fatalf("solution length %d, want %d", len(got.X), len(ref.X))
			}
			for i := range got.X {
				if got.X[i] != ref.X[i] {
					t.Fatalf("X[%d] = %v, ref %v: context thread perturbed the solve", i, got.X[i], ref.X[i])
				}
			}
		})
	}
}
