package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/stencil"
)

func testProblem(seed int64) (Problem, []float64) {
	m := stencil.Mesh{NX: 4, NY: 4, NZ: 8}
	op := stencil.MomentumLike(m, 0.05, [3]float64{1, 0.3, -0.2}, 0.1, 1, 0.1)
	rng := rand.New(rand.NewSource(seed))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.Float64()
	}
	return NewProblem(op, xe)
}

func TestSolveAllBackendsAgree(t *testing.T) {
	p, xe := testProblem(5)
	for _, tc := range []struct {
		name string
		opts Options
		tol  float64 // solution accuracy vs xe
	}{
		{"local/f64", Options{Backend: Local, MaxIter: 60, Tol: 1e-10}, 1e-7},
		{"local/f32", Options{Backend: Local, Local: LocalOptions{Precision: F32}, MaxIter: 60, Tol: 1e-6}, 1e-4},
		{"local/mixed", Options{Backend: Local, Local: LocalOptions{Precision: Mixed}, MaxIter: 30, Tol: 1e-3}, 0.05},
		{"wafer", Options{Backend: Wafer, MaxIter: 30, Tol: 1e-3}, 0.05},
		{"cluster", Options{Backend: Cluster, Cluster: ClusterOptions{Ranks: 8}, MaxIter: 60, Tol: 1e-10}, 1e-7},
	} {
		res, err := Solve(p, tc.opts)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		worst := 0.0
		for i := range xe {
			worst = math.Max(worst, math.Abs(res.X[i]-xe[i]))
		}
		if worst > tc.tol {
			t.Errorf("%s: worst-case error %g > %g", tc.name, worst, tc.tol)
		}
		if res.TrueResidual > 0.02 {
			t.Errorf("%s: true residual %g", tc.name, res.TrueResidual)
		}
	}
}

func TestWaferBackendReportsCycles(t *testing.T) {
	p, _ := testProblem(9)
	res, err := Solve(p, Options{Backend: Wafer, MaxIter: 2})
	if err != nil {
		t.Fatal(err)
	}
	tel := res.Telemetry
	if !tel.Simulated || tel.Backend != "wafer" || tel.Wafers != 1 {
		t.Fatalf("wafer telemetry header wrong: %+v", tel)
	}
	if tel.PerIteration.Total() == 0 || tel.Cycles.Total() == 0 {
		t.Fatal("wafer backend must report a cycle breakdown")
	}
}

func TestExperimentReports(t *testing.T) {
	for name, fn := range map[string]func() string{
		"table1":    Table1Report,
		"headline":  HeadlineReport,
		"allreduce": AllReduceReport,
		"scaling":   ScalingReport,
		"table2":    Table2Report,
		"spmv2d":    SpMV2DReport,
		"fig1":      Fig1Report,
		"memory":    MemoryReport,
		"routing":   RoutingReport,
	} {
		out := fn()
		if len(out) < 40 {
			t.Errorf("%s report suspiciously short:\n%s", name, out)
		}
		if strings.Contains(out, "DOES NOT FIT") || strings.Contains(out, "failed") {
			t.Errorf("%s report indicates failure:\n%s", name, out)
		}
	}
	if out := Fig9Report(6, 12, 6, 10); len(out) < 100 {
		t.Errorf("fig9 report too short:\n%s", out)
	}
}

func TestTable1ReportValues(t *testing.T) {
	// Compare rows with whitespace collapsed, so formatting changes do
	// not break the value check.
	squash := func(s string) string { return strings.Join(strings.Fields(s), " ") }
	out := squash(Table1Report())
	for _, want := range []string{
		"Matvec (x2) 12 12 | 12 12 0",
		"Dot (x4) 4 4 | 0 4 4",
		"AXPY (x6) 6 6 | 6 6 0",
		"Total 22 22 | 18 22 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I row missing %q in:\n%s", want, out)
		}
	}
}

func TestRoutingReportClean(t *testing.T) {
	if out := RoutingReport(); !strings.Contains(out, "0 color clashes") {
		t.Errorf("routing report: %s", out)
	}
}

func TestFig9ExperimentShape(t *testing.T) {
	series := Fig9Experiment(8, 16, 8, 15)
	f32h := series[0].History
	mxh := series[1].History
	if f32h[len(f32h)-1] > 1e-5 {
		t.Errorf("fp32 final residual %g", f32h[len(f32h)-1])
	}
	final := mxh[len(mxh)-1]
	if final < 1e-4 || final > 1e-1 {
		t.Errorf("mixed plateau %g outside [1e-4, 1e-1]", final)
	}
}
