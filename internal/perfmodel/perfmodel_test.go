package perfmodel_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fp16"
	"repro/internal/kernels"
	"repro/internal/perfmodel"
	"repro/internal/stencil"
	"repro/internal/wse"
)

func TestHeadlineCalibration(t *testing.T) {
	// The paper-calibrated model must reproduce §V: 28.1 µs/iteration and
	// 0.86 PFLOPS at ~1/3 of peak.
	us, pf, frac := perfmodel.HeadlinePrediction(perfmodel.PaperModel())
	if math.Abs(us-28.1) > 0.3 {
		t.Errorf("modelled iteration %.2f µs, paper 28.1", us)
	}
	if math.Abs(pf-0.86) > 0.02 {
		t.Errorf("modelled %.3f PFLOPS, paper 0.86", pf)
	}
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("fraction of peak %.2f, paper says about one third", frac)
	}
}

func TestSimModelPredictsSimulator(t *testing.T) {
	// The Eta=1 model must track the cycle simulator across fabric shapes
	// and Z within 20% — the validation step the paper performs for its
	// own performance model.
	if testing.Short() {
		t.Skip("cycle-sim validation in short mode")
	}
	model := perfmodel.SimModel()
	for _, tc := range []struct{ w, h, z int }{
		{4, 4, 32}, {4, 4, 64}, {6, 3, 48}, {8, 8, 32}, {3, 6, 96},
	} {
		rng := rand.New(rand.NewSource(int64(tc.w * tc.h * tc.z)))
		m := stencil.Mesh{NX: tc.w, NY: tc.h, NZ: tc.z}
		op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
		norm, diag := op.Normalize()
		xe := make([]float64, m.N())
		for i := range xe {
			xe[i] = rng.Float64()
		}
		b64 := make([]float64, m.N())
		op.Apply(b64, xe)
		sb := stencil.ScaleRHS(b64, diag)

		mach := wse.New(wse.CS1(tc.w, tc.h))
		solverW, err := kernels.NewBiCGStabWSE(mach, stencil.NewOp7Half(norm))
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := solverW.Solve(fp16.FromFloat64Slice(sb), kernels.WSEOptions{MaxIter: 3})
		if err != nil {
			t.Fatal(err)
		}
		measured := float64(st.PerIteration.Total())
		wcfg := perfmodel.WSE{W: tc.w, H: tc.h, ClockHz: 1.1e9, SIMD: 4}
		predicted := model.IterationCycles(wcfg, tc.z).Total()
		ratio := predicted / measured
		t.Logf("%dx%dx%d: simulator %v cycles/iter, model %.0f (ratio %.2f)",
			tc.w, tc.h, tc.z, measured, predicted, ratio)
		if ratio < 0.8 || ratio > 1.25 {
			t.Errorf("%dx%dx%d: model off by %.0f%%", tc.w, tc.h, tc.z, 100*(ratio-1))
		}
	}
}

func TestAllReduceModelMatchesSimulator(t *testing.T) {
	// The parity-aware model must reproduce the cycle simulator exactly —
	// including odd-dimension fabrics, where a single central row/column
	// serializes both halves of its reduction (the case the old
	// diameter+7 model missed, and the parity class the 602×595 paper
	// wafer falls into with h = 595).
	for _, dims := range [][2]int{
		{8, 8}, {16, 16}, {32, 24}, {48, 48}, {10, 30}, // even × even
		{17, 16}, {33, 24}, {9, 9}, {32, 25}, {47, 48}, {49, 49}, // odd shapes
		// Narrow fabrics (a dimension ≤ 2 is all central lines): the
		// degenerate wafers a fine multiwafer split produces.
		{1, 1}, {2, 2}, {1, 2}, {2, 6}, {6, 2}, {2, 5}, {1, 9}, {8, 1}, {4, 2},
	} {
		mach := wse.New(wse.CS1(dims[0], dims[1]))
		ar, err := kernels.NewAllReduce(mach, 0)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float32, dims[0]*dims[1])
		for i := range vals {
			vals[i] = 1
		}
		res, err := ar.Run(vals, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		w := perfmodel.WSE{W: dims[0], H: dims[1], ClockHz: 1.1e9, SIMD: 4}
		if got, want := w.AllReduceCycles(), float64(res.Cycles); got != want {
			t.Errorf("%dx%d: model %g cycles, simulator %g", dims[0], dims[1], got, want)
		}
	}
}

func TestAllReduceWaferLatency(t *testing.T) {
	// The full-wafer AllReduce must come in under the paper's 1.5 µs. The
	// measured shape is ~1.25× the diameter — above the paper's ~1.1×
	// because the 595-row fabric has a single central row serializing
	// both column halves (the paper's ~1.1× holds on even×even fabrics).
	w := perfmodel.CS1()
	sec := w.AllReduceSeconds()
	if sec >= 1.5e-6 {
		t.Errorf("wafer AllReduce %.3g s, paper bound 1.5 µs", sec)
	}
	diam := float64(w.W + w.H - 2)
	ratio := w.AllReduceCycles() / diam
	if ratio < 1.0 || ratio > 1.3 {
		t.Errorf("AllReduce/diameter = %.3f, want ~1.25 (sub-diameter is impossible)", ratio)
	}
}

func TestAllReducePaperScalePin(t *testing.T) {
	// Pin the model to the cycle-simulated 602×595 measurement (1497
	// cycles, TestPaperScaleAllReduce in internal/core) within 1%, so the
	// model and the simulator can never silently drift apart again. The
	// simulator side of the same contract lives in the paper-scale test,
	// which compares its live measurement against this model.
	const measured = 1497
	got := perfmodel.CS1().AllReduceCycles()
	if rel := math.Abs(got-measured) / measured; rel > 0.01 {
		t.Errorf("AllReduceCycles(602x595) = %g, simulator measures %d (off %.2f%%)",
			got, measured, 100*rel)
	}
}

func TestMemoryAccounting(t *testing.T) {
	// §IV: 10·Z words ≈ 31 KB of 48 KB at Z = 1536.
	if got := perfmodel.TileVectorBytes(1536); got != 30720 {
		t.Errorf("tile vector bytes = %d, want 30720 (~31KB)", got)
	}
	if maxZ := perfmodel.MaxZ(48 * 1024); maxZ < 2000 || maxZ > 2600 {
		t.Errorf("max Z = %d, expected ~2457", maxZ)
	}
}

func TestBlock2D(t *testing.T) {
	// §IV-2: blocks up to 38×38 fit; 8×8 blocks overhead < 20%.
	if b := perfmodel.MaxBlock2D(48 * 1024); b != 38 {
		t.Errorf("max 2D block = %d, paper says 38", b)
	}
	if ov := perfmodel.Overhead2D(8); ov >= 0.20 {
		t.Errorf("overhead(8) = %.3f, paper says < 20%%", ov)
	}
	if ov := perfmodel.Overhead2D(38); ov > perfmodel.Overhead2D(8) {
		t.Error("overhead should decrease with block size")
	}
	// Monotone decrease toward the 12.5% diagonal floor.
	f := func(b8 uint8) bool {
		b := int(b8%37) + 2
		return perfmodel.Overhead2D(b) >= perfmodel.Overhead2D(b+1) && perfmodel.Overhead2D(b) > 0.125
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMachineBalance(t *testing.T) {
	// Figure 1's story: every conventional system needs orders of
	// magnitude more flops per word than the wafer.
	entries := perfmodel.MachineBalance()
	var cs1 *perfmodel.BalanceEntry
	for i := range entries {
		if entries[i].WaferScale {
			cs1 = &entries[i]
		}
	}
	if cs1 == nil {
		t.Fatal("no wafer-scale entry")
	}
	for _, e := range entries {
		if e.WaferScale {
			continue
		}
		if e.FlopsPerWordMemory < 2*cs1.FlopsPerWordMemory {
			t.Errorf("%s: memory balance %.1f should dwarf CS-1's %.2f",
				e.System, e.FlopsPerWordMemory, cs1.FlopsPerWordMemory)
		}
		if e.FlopsPerWordNetwork < 5*cs1.FlopsPerWordNetwork {
			t.Errorf("%s: network balance should dwarf CS-1's", e.System)
		}
	}
}

func TestFlopAccounting(t *testing.T) {
	// Table I: 44 ops/meshpoint; §V: 0.86 PFLOPS implies 24.1 Gflop per
	// iteration over the headline mesh.
	mesh, us, pf := perfmodel.Headline()
	flops := perfmodel.FlopsPerIteration(mesh.X, mesh.Y, mesh.Z)
	if math.Abs(flops-2.41275e10) > 1e7 {
		t.Errorf("flops/iteration = %g", flops)
	}
	implied := flops / (us * 1e-6) / 1e15
	if math.Abs(implied-pf) > 0.01 {
		t.Errorf("paper numbers inconsistent? %g PFLOPS implied vs %g stated", implied, pf)
	}
}

func TestCalibrateEtaRoundTrip(t *testing.T) {
	m := perfmodel.SimModel()
	w := perfmodel.CS1()
	eta := m.CalibrateEta(w, 1536, 28.1e-6)
	if math.Abs(eta-perfmodel.PaperEta) > 0.01 {
		t.Errorf("calibrated eta %.4f, stored perfmodel.PaperEta %.4f", eta, perfmodel.PaperEta)
	}
}

func TestShapeSweepMonotone(t *testing.T) {
	pts := perfmodel.ShapeSweep(perfmodel.PaperModel(), []int{256, 512, 1024, 1536, 2048})
	for i := 1; i < len(pts); i++ {
		if pts[i].IterMicros <= pts[i-1].IterMicros {
			t.Error("iteration time must grow with Z")
		}
		if pts[i].PFLOPS <= pts[i-1].PFLOPS {
			t.Error("throughput must improve with Z (AllReduce latency amortizes)")
		}
	}
}
