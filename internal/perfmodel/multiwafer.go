package perfmodel

import "math"

// This file extends the analytic models past one wafer: the
// internal/multiwafer backend couples a grid of wafers through their
// edge I/O, and these functions reproduce its cycle accounting — they
// are calibrated against (and pinned to, see the multiwafer package's
// model test) the cycle simulator at small scale, then extrapolated to
// grids of full 602×595 wafers that would take hours to simulate.

// EdgeIO models the host-side interconnect between adjacent wafers: a
// fixed per-transfer latency plus bytes over the per-edge-face
// bandwidth. It mirrors multiwafer.Interconnect (kept separate so the
// model layer stays dependency-free).
type EdgeIO struct {
	LatencySec   float64
	BandwidthBps float64
}

// DefaultEdgeIO matches multiwafer.DefaultInterconnect: 1 µs latency
// and the CS-1's 1.2 Tb/s of edge I/O granted to each face.
func DefaultEdgeIO() EdgeIO { return EdgeIO{LatencySec: 1e-6, BandwidthBps: 1.2e12} }

// TransferSeconds returns the modelled time to move bytes across one
// wafer edge face.
func (io EdgeIO) TransferSeconds(bytes int) float64 {
	return io.LatencySec + 8*float64(bytes)/io.BandwidthBps
}

// HaloSpMVCycles models one application of the halo-resident 3D SpMV
// (kernels.SpMV3DHalo) on a w×h wafer holding part of a meshX×meshY
// (×z) mesh. The busiest tile pays its halo-column sends serialized
// through the one-word-per-cycle ramp — (sx+sy)·z/2 cycles for sx+sy
// on-fabric neighbour directions, two fp16 per word — then its compute
// task: 3 + tx + ty tensor instructions (zm, zp, diagonal, plus one
// per in-mesh lateral term) at four lanes per cycle, plus two cycles
// of thread start/drain when any exchange ran. Exact against the
// simulator on every measured shape (TestModelMatchesSimulator in the
// multiwafer package).
func HaloSpMVCycles(w, h, z, meshX, meshY int) float64 {
	min2 := func(n int) int {
		if n > 2 {
			return 2
		}
		if n < 0 {
			return 0
		}
		return n
	}
	sends := (min2(w-1) + min2(h-1)) * z / 2
	instrs := 3 + min2(meshX-1) + min2(meshY-1)
	compute := instrs * int(math.Ceil(float64(z)/4))
	if sends == 0 {
		return float64(compute)
	}
	return float64(sends + compute + 2)
}

// MWBreakdown is the per-iteration cycle budget of the multiwafer
// backend: the four simulated on-wafer phases (which the overhead
// factor Eta scales, as on one wafer) plus the two host-modelled
// inter-wafer terms (which it does not — they are already wall-clock
// calibrated).
type MWBreakdown struct {
	SpMV, EdgeIO, Dot, AllReduce, Combine, Axpy float64
	Eta                                         float64
}

// OnWafer returns the simulated on-wafer cycles per iteration.
func (b MWBreakdown) OnWafer() float64 { return b.SpMV + b.Dot + b.AllReduce + b.Axpy }

// Total returns the modelled iteration cycle count.
func (b MWBreakdown) Total() float64 { return b.OnWafer()*b.Eta + b.EdgeIO + b.Combine }

// CommFraction returns the share of the iteration spent off the tile
// datapaths: on-wafer reduction plus everything crossing a wafer edge.
func (b MWBreakdown) CommFraction() float64 {
	return (b.AllReduce*b.Eta + b.EdgeIO + b.Combine) / b.Total()
}

// splitSizes returns the two block sizes SplitExtent-style even
// partitioning produces: lo = n/p, and hi = lo+1 when p does not
// divide n (otherwise hi = lo).
func splitSizes(n, p int) (lo, hi int) {
	lo = n / p
	hi = lo
	if n%p != 0 {
		hi++
	}
	return
}

// MultiWaferIterationCycles models one BiCGStab iteration of an X×Y×Z
// mesh cut across a gw×gh grid of wafers, mirroring the backend's
// accounting: simulated phases charge the slowest wafer (the maximum
// over the sub-extents an even split produces — relevant because the
// AllReduce is parity-aware, so a smaller odd-sized wafer can out-cost
// a larger even one), halo transfers charge the largest edge face, and
// each of the four dots pays the two-level combine's scalar hops.
func (m IterModel) MultiWaferIterationCycles(x, y, z, gw, gh int, clockHz float64, io EdgeIO) MWBreakdown {
	wLo, wHi := splitSizes(x, gw)
	hLo, hHi := splitSizes(y, gh)
	ceilc := func(sec float64) float64 { return math.Ceil(sec * clockHz) }

	var spmv, ar float64
	for _, w := range []int{wLo, wHi} {
		for _, h := range []int{hLo, hHi} {
			spmv = math.Max(spmv, HaloSpMVCycles(w, h, z, x, y))
			sub := WSE{W: w, H: h, ClockHz: clockHz, SIMD: 4}
			ar = math.Max(ar, sub.AllReduceCycles())
		}
	}

	var edge float64
	if gw > 1 || gh > 1 {
		var face float64
		if gw > 1 {
			face = math.Max(face, io.TransferSeconds(hHi*z*2))
		}
		if gh > 1 {
			face = math.Max(face, io.TransferSeconds(wHi*z*2))
		}
		edge = 2 * ceilc(face)
	}
	var combine float64
	if gw*gh > 1 {
		hops := float64(gw + gh - 2)
		combine = 4 * ceilc(2*io.TransferSeconds(4)*hops)
	}
	return MWBreakdown{
		SpMV:      2 * spmv,
		EdgeIO:    edge,
		Dot:       4 * float64(z) / 2,
		AllReduce: 4 * ar,
		Combine:   combine,
		Axpy:      6 * math.Ceil(float64(z)/4),
		Eta:       m.Eta,
	}
}

// MultiWaferIterationSeconds is the modelled wall-clock per iteration.
func (m IterModel) MultiWaferIterationSeconds(x, y, z, gw, gh int, clockHz float64, io EdgeIO) float64 {
	return m.MultiWaferIterationCycles(x, y, z, gw, gh, clockHz, io).Total() / clockHz
}

// MultiWaferPoint is one row of a wafer-count scaling study. For a
// strong-scaling sweep (fixed mesh) Speedup is iteration-time speedup
// over the first grid and Efficiency normalizes it by wafer-count
// growth; for a weak-scaling sweep (mesh grows with the grid) Speedup
// is the throughput ratio in meshpoints per second and Efficiency is
// the iteration-time ratio T(first)/T(n), which is 1 for perfect weak
// scaling.
type MultiWaferPoint struct {
	GridW, GridH, Wafers int
	Breakdown            MWBreakdown
	IterMicros           float64
	Speedup              float64
	Efficiency           float64
}

// MultiWaferScaling sweeps wafer grids for a fixed X×Y×Z mesh — strong
// scaling. Because the 3D mapping is embarrassingly parallel in X×Y
// (per-iteration time depends on Z, not on how many columns a wafer
// holds), cutting a mesh that already fits one wafer cannot go faster:
// the sweep quantifies what the added edge I/O and combine latency
// cost, against the one saving of a smaller on-wafer AllReduce. The
// genuine scale-out win is capacity — see MultiWaferWeakScaling.
// Speedup and efficiency are relative to the first grid in the sweep.
func (m IterModel) MultiWaferScaling(x, y, z int, grids [][2]int, clockHz float64, io EdgeIO) []MultiWaferPoint {
	out := make([]MultiWaferPoint, 0, len(grids))
	var base float64
	var baseWafers int
	for i, g := range grids {
		b := m.MultiWaferIterationCycles(x, y, z, g[0], g[1], clockHz, io)
		sec := b.Total() / clockHz
		p := MultiWaferPoint{
			GridW: g[0], GridH: g[1], Wafers: g[0] * g[1],
			Breakdown: b, IterMicros: sec * 1e6,
		}
		if i == 0 {
			base = sec
			baseWafers = p.Wafers
		}
		p.Speedup = base / sec
		p.Efficiency = p.Speedup / (float64(p.Wafers) / float64(baseWafers))
		out = append(out, p)
	}
	return out
}

// MultiWaferWeakScaling grows the mesh with the grid: each wafer keeps
// a perX×perY×z sub-extent, so a gw×gh grid solves a
// (gw·perX)×(gh·perY)×z mesh — the paper-motivated direction, problems
// too big for one wafer at near-constant iteration time. Speedup is
// the throughput ratio (meshpoints per second vs the first grid) and
// Efficiency the iteration-time ratio T(first)/T(n).
func (m IterModel) MultiWaferWeakScaling(perX, perY, z int, grids [][2]int, clockHz float64, io EdgeIO) []MultiWaferPoint {
	out := make([]MultiWaferPoint, 0, len(grids))
	var baseSec, baseRate float64
	for i, g := range grids {
		x, y := g[0]*perX, g[1]*perY
		b := m.MultiWaferIterationCycles(x, y, z, g[0], g[1], clockHz, io)
		sec := b.Total() / clockHz
		rate := float64(x) * float64(y) * float64(z) / sec
		p := MultiWaferPoint{
			GridW: g[0], GridH: g[1], Wafers: g[0] * g[1],
			Breakdown: b, IterMicros: sec * 1e6,
		}
		if i == 0 {
			baseSec, baseRate = sec, rate
		}
		p.Speedup = rate / baseRate
		p.Efficiency = baseSec / sec
		out = append(out, p)
	}
	return out
}
