package perfmodel

import "fmt"

// This file generalizes the exact stencil-exchange replay of
// stencilapply.go from "a fresh fabric, clamped to the dependency
// horizon" to "the live fabric of a running solver". It is the same
// word-granular model — occupancy counters, no data — but parameterized
// by what the live machine actually looks like when a phase starts:
//
//   - each router's real route-entry layout, including entries other
//     subsystems configured (an AllReduce tree, a neighbouring
//     program). Those entries are quiescent for the whole phase, but
//     they still occupy arbitration rotation slots, so they shift which
//     entry the round-robin scan visits first;
//   - each router's current rotation counter, which a solver advances a
//     little more on every phase;
//   - the fabric's current hot set — a router left hot by the previous
//     phase takes one rotation charge on the first cycle before it
//     cools;
//   - the full fabric extent, unclamped, because the caller needs every
//     tile's exact counters rather than one representative per timing
//     class.
//
// Where StencilApply3D.Cycles answers "how long would one application
// take on a fresh machine", ExchangeReplay answers "exactly what does
// one application do to this machine's architectural counters": total
// cycles and word moves, every router's final rotation and the final
// hot set (fabric.ApplyReplay's inputs), and every core's busy-cycle
// and receive-lane tallies (the Machine.Fingerprint-visible datapath
// counters). stencilc.Program3D's fast-forward path is the consumer;
// the engine-equivalence tests pin the whole loop bit-for-bit against
// cycle simulation.

// ReplayEntryKind classifies one configured route entry of a router for
// the replay.
type ReplayEntryKind uint8

const (
	// ReplayDead is an entry of some other subsystem: empty for the
	// whole phase, never claiming, but still occupying a rotation slot
	// (the arbitration index is computed modulo the full entry count).
	ReplayDead ReplayEntryKind = iota
	// ReplayInject is a ramp entry of a directional exchange color:
	// words the core sends, forwarded one hop to the neighbour in the
	// color's direction of travel.
	ReplayInject
	// ReplayDeliver is a link entry of a directional exchange color:
	// words arriving from a neighbour, delivered to the core's receive
	// buffer for that color.
	ReplayDeliver
)

// ReplayEntry mirrors one route entry in arbitration order. Color is
// the directional exchange color (saEast..saNorth — the direction of
// travel, stencilc's assignment) and is ignored for ReplayDead.
type ReplayEntry struct {
	Kind  ReplayEntryKind
	Color uint8
}

// ReplayTx is one round's send leg: Words fabric words injected on a
// directional color, one per cycle across the ramp.
type ReplayTx struct {
	Color int
	Words int
}

// ReplayRx is one round's receive leg: Elems fp16 elements consumed
// from the color's stream buffer through the shared datapath lanes.
type ReplayRx struct {
	Color int
	Elems int
}

// ReplayStage is one step of a tile's program: Task >= 0 burns that
// many datapath cycles; Task < 0 is an exchange round whose Tx and Rx
// legs are given in thread slot order.
type ReplayStage struct {
	Task int
	Tx   []ReplayTx
	Rx   []ReplayRx
}

// ReplayTileSpec is the static description of one tile: its router's
// entry layout and its program's stage list. The spec is captured once
// by NewExchangeReplay; per-phase state (rotation seeds, the hot set)
// is passed to Run.
type ReplayTileSpec struct {
	Entries []ReplayEntry
	Stages  []ReplayStage
}

// ReplayResult is what one replayed application does to the machine.
// The slices are owned by the ExchangeReplay and valid until its next
// Run.
type ReplayResult struct {
	Cycles int64 // cycles the phase takes, first send to last retire
	Moves  int64 // fabric word moves
	Busy   []int64
	// RxLanes is each core's datapath lane issues from receive threads;
	// compute-task lanes are statically known to the caller and added
	// there.
	RxLanes []int64
	RR      []int64 // each router's final arbitration rotation
	Hot     []int   // tiles hot after the final cycle
}

// xrEntry is a resolved route entry: pointers into the replay's own
// tile array, stable once built.
type xrEntry struct {
	q, dst  *saQ
	port    uint8
	dstTile int32 // router tile to re-mark hot on push; -1 for rx delivery
}

// xrStage is the mutable per-run image of a ReplayStage.
type xrStage struct {
	task int
	tx   []saTx
	rx   []saRx
}

type xrTile struct {
	entries []xrEntry
	rr      int64
	hot     bool
	ramp    [4]saQ
	link    [4]saQ
	rx      [4]saQ
	subbed  [4]bool
	bufE    [4]int

	spec   []ReplayStage
	stages []xrStage
	cur    int
	start  int64
	done   bool
}

// ExchangeReplay replays one application of a compiled exchange-phase
// program against a live fabric context. Build it once per program
// (NewExchangeReplay walks every tile's spec); Run resets and replays,
// so repeated applications cost no allocation beyond the result's hot
// list.
type ExchangeReplay struct {
	w, h  int
	tiles []xrTile

	hotCur, hotSpare []int
	pops             []*saQ
	pushes           []xrPush
	still            []int

	busy, rxLanes, rrOut []int64
	deadQ                saQ
}

type xrPush struct {
	q    *saQ
	tile int32
}

// xrDelta and xrPort map a direction-of-travel color to the neighbour
// offset and output port a word takes, matching the fabric's geometry.
var (
	xrDelta = [4][2]int{saEast: {1, 0}, saWest: {-1, 0}, saSouth: {0, 1}, saNorth: {0, -1}}
	xrPort  = [4]uint8{saEast: saPortE, saWest: saPortW, saSouth: saPortS, saNorth: saPortN}
)

// NewExchangeReplay builds the replay for a w×h fabric from per-tile
// specs (row-major). It panics on an inject entry whose travel
// direction leaves the fabric — such a route cannot arise from the
// exchange lowering, so it signals a mis-mapped layout.
func NewExchangeReplay(w, h int, spec func(ti int) ReplayTileSpec) *ExchangeReplay {
	n := w * h
	r := &ExchangeReplay{
		w: w, h: h,
		tiles:   make([]xrTile, n),
		busy:    make([]int64, n),
		rxLanes: make([]int64, n),
		rrOut:   make([]int64, n),
	}
	for ti := 0; ti < n; ti++ {
		t := &r.tiles[ti]
		for c := 0; c < 4; c++ {
			t.ramp[c].cap = saQueueDepth
			t.link[c].cap = saQueueDepth
			t.rx[c].cap = saRxDepth
		}
	}
	for ti := 0; ti < n; ti++ {
		t := &r.tiles[ti]
		s := spec(ti)
		x, y := ti%w, ti/w
		t.entries = make([]xrEntry, len(s.Entries))
		for j, e := range s.Entries {
			switch e.Kind {
			case ReplayDead:
				t.entries[j] = xrEntry{q: &r.deadQ, dst: &r.deadQ, dstTile: -1}
			case ReplayInject:
				c := int(e.Color)
				nx, ny := x+xrDelta[c][0], y+xrDelta[c][1]
				if nx < 0 || nx >= w || ny < 0 || ny >= h {
					panic(fmt.Sprintf("perfmodel: inject entry at tile %d color %d leaves the fabric", ti, c))
				}
				nb := ny*w + nx
				t.entries[j] = xrEntry{q: &t.ramp[c], dst: &r.tiles[nb].link[c], port: xrPort[c], dstTile: int32(nb)}
			case ReplayDeliver:
				c := int(e.Color)
				t.entries[j] = xrEntry{q: &t.link[c], dst: &t.rx[c], port: saPortRamp, dstTile: -1}
				t.subbed[c] = true
			}
		}
		t.spec = s.Stages
		t.stages = make([]xrStage, len(s.Stages))
		for si, sp := range s.Stages {
			t.stages[si] = xrStage{
				tx: make([]saTx, len(sp.Tx)),
				rx: make([]saRx, len(sp.Rx)),
			}
			for k, tx := range sp.Tx {
				t.stages[si].tx[k].color = tx.Color
			}
			for k, rx := range sp.Rx {
				t.stages[si].rx[k].color = rx.Color
			}
		}
	}
	return r
}

// Run replays one application: rr0 seeds each router's rotation, hot0
// is the fabric's current hot set. The result slices alias the
// replay's buffers and are valid until the next Run.
func (r *ExchangeReplay) Run(rr0 func(ti int) int64, hot0 []int) ReplayResult {
	n := len(r.tiles)
	for ti := 0; ti < n; ti++ {
		t := &r.tiles[ti]
		t.rr = rr0(ti)
		t.hot = false
		t.done = false
		t.cur = -1
		t.start = 0
		for c := 0; c < 4; c++ {
			t.ramp[c].size = 0
			t.link[c].size = 0
			t.rx[c].size = 0
			t.bufE[c] = 0
		}
		for si := range t.stages {
			st := &t.stages[si]
			sp := &t.spec[si]
			st.task = sp.Task
			for k := range st.tx {
				st.tx[k].rem = sp.Tx[k].Words
			}
			for k := range st.rx {
				st.rx[k].rem = sp.Rx[k].Elems
			}
		}
		r.busy[ti] = 0
		r.rxLanes[ti] = 0
	}
	r.hotCur = r.hotCur[:0]
	for _, ti := range hot0 {
		r.markHot(ti)
	}
	for ti := 0; ti < n; ti++ {
		r.advance(&r.tiles[ti], 0)
	}
	var moves int64
	guard := int64(1) << 40
	for cycle := int64(1); cycle <= guard; cycle++ {
		alldone := true
		for ti := 0; ti < n; ti++ {
			t := &r.tiles[ti]
			r.stepTile(ti, t, cycle)
			if !t.done {
				alldone = false
			}
		}
		moves += r.fabricStep()
		if alldone {
			for ti := 0; ti < n; ti++ {
				r.rrOut[ti] = r.tiles[ti].rr
			}
			hot := append([]int(nil), r.hotCur...)
			return ReplayResult{
				Cycles: cycle, Moves: moves,
				Busy: r.busy, RxLanes: r.rxLanes, RR: r.rrOut, Hot: hot,
			}
		}
	}
	panic("perfmodel: exchange replay did not terminate")
}

// advance, stepTile and fabricStep mirror the saModel functions of
// stencilapply.go (which TestStencilApplyModelExact pins to the cycle
// simulator), plus the live-context extensions: dead rotation slots,
// seeded rotations, per-tile busy/lane tallies, and a move count.

func (r *ExchangeReplay) advance(t *xrTile, cycle int64) {
	for {
		t.cur++
		if t.cur >= len(t.stages) {
			t.done = true
			return
		}
		st := &t.stages[t.cur]
		if st.task < 0 && len(st.tx) == 0 && len(st.rx) == 0 {
			continue // empty relay round: skipped for free, as in launchRound
		}
		break
	}
	t.start = cycle + 1
}

func (r *ExchangeReplay) stepTile(ti int, t *xrTile, cycle int64) {
	for c := 0; c < 4; c++ {
		if t.subbed[c] && t.rx[c].size > 0 && t.bufE[c] <= saBufElems-2 {
			t.rx[c].size--
			t.bufE[c] += 2
		}
	}
	if t.done || cycle < t.start {
		return
	}
	st := &t.stages[t.cur]
	if st.task >= 0 {
		// Every compute-task cycle issues lanes (the instructions are
		// full-column vector ops), so each burned cycle is a busy one.
		r.busy[ti]++
		st.task--
		if st.task == 0 {
			r.advance(t, cycle)
		}
		return
	}
	sent := false
	for i := range st.tx {
		tx := &st.tx[i]
		if tx.rem > 0 && !sent && t.ramp[tx.color].size < t.ramp[tx.color].cap {
			t.ramp[tx.color].size++
			r.markHot(ti)
			tx.rem--
			sent = true
		}
	}
	lanes := saLanes
	taken := 0
	for i := range st.rx {
		rx := &st.rx[i]
		if rx.rem > 0 && lanes > 0 {
			take := rx.rem
			if t.bufE[rx.color] < take {
				take = t.bufE[rx.color]
			}
			if lanes < take {
				take = lanes
			}
			rx.rem -= take
			t.bufE[rx.color] -= take
			lanes -= take
			taken += take
		}
	}
	if taken > 0 {
		// A send consumes no datapath lanes; only a cycle that stores
		// received elements counts as busy, matching the core's
		// used-lanes accounting.
		r.busy[ti]++
		r.rxLanes[ti] += int64(taken)
	}
	for i := range st.tx {
		if st.tx[i].rem > 0 {
			return
		}
	}
	for i := range st.rx {
		if st.rx[i].rem > 0 {
			return
		}
	}
	r.advance(t, cycle)
}

func (r *ExchangeReplay) markHot(ti int) {
	t := &r.tiles[ti]
	if !t.hot {
		t.hot = true
		r.hotCur = append(r.hotCur, ti)
	}
}

func (r *ExchangeReplay) fabricStep() int64 {
	cur := r.hotCur
	r.hotCur = r.hotSpare[:0]
	r.pops = r.pops[:0]
	r.pushes = r.pushes[:0]
	r.still = r.still[:0]
	for _, ti := range cur {
		t := &r.tiles[ti]
		t.hot = false
		n := len(t.entries)
		if n == 0 {
			continue
		}
		var claimed uint8
		hasWords := false
		idx := int(t.rr % int64(n))
		for k := 0; k < n; k++ {
			en := &t.entries[idx]
			idx++
			if idx == n {
				idx = 0
			}
			if en.q.size == 0 {
				continue
			}
			hasWords = true
			if claimed&(1<<en.port) != 0 {
				continue
			}
			if en.dst.size == en.dst.cap {
				continue
			}
			claimed |= 1 << en.port
			r.pops = append(r.pops, en.q)
			r.pushes = append(r.pushes, xrPush{q: en.dst, tile: en.dstTile})
		}
		t.rr++
		if hasWords {
			r.still = append(r.still, ti)
		}
	}
	for _, q := range r.pops {
		q.size--
	}
	for _, p := range r.pushes {
		p.q.size++
		if p.tile >= 0 {
			r.markHot(int(p.tile))
		}
	}
	for _, ti := range r.still {
		r.markHot(ti)
	}
	r.hotSpare = cur
	return int64(len(r.pops))
}
