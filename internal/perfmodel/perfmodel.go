// Package perfmodel contains the analytic performance models of the
// reproduction. The paper validates a simple performance model against
// measurements and uses it to predict the effect of changing mesh size
// and shape; we clone that methodology: the models below are calibrated
// once against the cycle-level simulator (internal/wse + internal/kernels)
// at small fabric sizes, validated against it across shapes (see the
// package tests), and then extrapolated to the full 602×595 wafer that is
// too large to simulate cycle by cycle.
//
// Two calibrations are reported everywhere:
//
//   - the *simulator* model (Eta = 1), which extrapolates our idealized
//     executor — global phase sequencing with free scalar propagation and
//     zero instruction-issue overhead;
//   - the *paper-calibrated* model (Eta = PaperEta), a single scalar
//     fitted so the model reproduces the measured 28.1 µs/iteration at
//     600×595×1536; the same Eta is then used unchanged for every other
//     projection (PFLOPS, MFIX, cluster speedups).
package perfmodel

import "math"

// WSE describes a wafer for modelling purposes.
type WSE struct {
	W, H            int     // fabric extent
	ClockHz         float64 // core clock (see DESIGN.md §6 for the 1.1 GHz choice)
	SIMD            int     // fp16 datapath lanes
	MemPerTileBytes int
	PowerKW         float64
}

// CS1 returns the machine of the paper: a 602×595 compute fabric, 48 KB
// per tile, 20 kW.
func CS1() WSE {
	return WSE{W: 602, H: 595, ClockHz: 1.1e9, SIMD: 4, MemPerTileBytes: 48 * 1024, PowerKW: 20}
}

// Cores returns the core count.
func (w WSE) Cores() int { return w.W * w.H }

// PeakFlops is the peak fp16 rate: SIMD FMACs (2 flops) per core-cycle.
func (w WSE) PeakFlops() float64 {
	return float64(w.Cores()) * float64(2*w.SIMD) * w.ClockHz
}

// AllReduceCycles models the Figure 6 reduction+broadcast, calibrated
// against the cycle simulator across fabric shapes *including parity*:
//
//   - each even dimension has a pair of central rows/columns that split
//     the serialized reduction stream, so its drain is n/2 − 1 words at
//     one word per cycle per link — the configuration the paper's
//     "pair of central rows/columns" argument assumes;
//   - each odd dimension has a single central line which must absorb
//     both halves, n − 1 words, through its one-word-per-cycle ramp,
//     doubling that drain;
//   - the broadcast returns over ⌊w/2⌋ + ⌊h/2⌋ hops to the far corner;
//   - a small constant covers the phase hand-offs plus the 4:1 quad
//     reduction, which has one more serialized operand per even
//     dimension (3 + 2·evens);
//   - a dimension of extent ≤ 2 consists entirely of central lines, so
//     its reduction phase vanishes — and with it one phase hand-off
//     (−1 per such dimension). Degenerate fabrics this narrow appear
//     when the multiwafer backend cuts a small mesh finely; the paper
//     wafer never hits this branch.
//
// The formula reproduces the simulator exactly on every shape measured
// (see TestAllReduceModelMatchesSimulator). On even×even fabrics it
// reduces to the old diameter + 7 — which is why the earlier model,
// calibrated only on even shapes, silently under-predicted the 602×595
// wafer (h = 595 is odd): the simulator measures 1497 cycles = 1.36 µs,
// ~1.25× the diameter, still under the paper's 1.5 µs bound but above
// its ~1.1× diameter shape. TestAllReducePaperScalePin and the
// paper-scale simulation test in internal/core pin model and simulator
// to each other so they cannot drift apart again.
func (w WSE) AllReduceCycles() float64 {
	drain := func(n int) int {
		if n%2 == 0 {
			return n/2 - 1 // paired central lines split the stream
		}
		return n - 1 // single central line absorbs both halves
	}
	evens := 0
	if w.W%2 == 0 {
		evens++
	}
	if w.H%2 == 0 {
		evens++
	}
	narrow := 0
	if w.W <= 2 {
		narrow++
	}
	if w.H <= 2 {
		narrow++
	}
	return float64(drain(w.W) + drain(w.H) + w.W/2 + w.H/2 + 3 + 2*evens - narrow)
}

// AllReduceSeconds converts AllReduceCycles to wall clock.
func (w WSE) AllReduceSeconds() float64 { return w.AllReduceCycles() / w.ClockHz }

// IterModel holds the per-kernel cycle coefficients of one BiCGStab
// iteration, as functions of the local column length Z.
type IterModel struct {
	// SpMV: one application moves five Z-element streams through the ramp
	// (two fp16 per word) and ~11Z fp16 lane-operations through the
	// SIMD-4 datapath; the simulator measures ~3 cycles per z-element.
	SpMVPerZ, SpMVFixed float64
	// Dot: the mixed inner-product instruction retires two FMACs/cycle.
	DotPerZ, DotFixed float64
	// AXPY: SIMD-4, one FMAC per element, four elements per cycle.
	AxpyPerZ, AxpyFixed float64
	// Eta multiplies the composed total: task-start latency, barrier
	// trees, and issue overheads not present in the idealized executor.
	Eta float64
}

// PaperEta is the single calibration constant fitted to the paper's
// measured 28.1 µs/iteration at 600×595×1536 on the 602×595 fabric.
// See CalibrateEta and the package tests. (Recalibrated from 1.591 when
// AllReduceCycles became parity-aware: the 602×595 AllReduce costs 1497
// cycles, not 1202, so less of the measured time is unexplained
// overhead.)
const PaperEta = 1.4996

// SimModel returns the coefficients measured from the cycle simulator
// (Eta = 1): SpMV ≈ 3.0·Z + 6 per application, dots Z/2, AXPYs Z/4,
// AllReduce per the parity-aware AllReduceCycles formula.
func SimModel() IterModel {
	return IterModel{
		SpMVPerZ: 3.0, SpMVFixed: 6,
		DotPerZ: 0.5, DotFixed: 2,
		AxpyPerZ: 0.25, AxpyFixed: 2,
		Eta: 1,
	}
}

// PaperModel returns the simulator coefficients with Eta = PaperEta.
func PaperModel() IterModel {
	m := SimModel()
	m.Eta = PaperEta
	return m
}

// Breakdown is a per-iteration cycle budget.
type Breakdown struct {
	SpMV, Dot, AllReduce, Axpy float64
	Eta                        float64
}

// Total returns the iteration cycle count including the overhead factor.
func (b Breakdown) Total() float64 {
	return (b.SpMV + b.Dot + b.AllReduce + b.Axpy) * b.Eta
}

// IterationCycles models one BiCGStab iteration: 2 SpMVs, 4 dots,
// 4 blocking AllReduces, 6 AXPYs (Table I's kernel structure).
func (m IterModel) IterationCycles(w WSE, z int) Breakdown {
	zf := float64(z)
	return Breakdown{
		SpMV:      2 * (m.SpMVPerZ*zf + m.SpMVFixed),
		Dot:       4 * (m.DotPerZ*zf + m.DotFixed),
		AllReduce: 4 * w.AllReduceCycles(),
		Axpy:      6 * (m.AxpyPerZ*zf + m.AxpyFixed),
		Eta:       m.Eta,
	}
}

// IterationSeconds is the modelled wall-clock time per iteration.
func (m IterModel) IterationSeconds(w WSE, z int) float64 {
	return m.IterationCycles(w, z).Total() / w.ClockHz
}

// FlopsPerIteration follows Table I: 44 operations per meshpoint.
func FlopsPerIteration(x, y, z int) float64 {
	return 44 * float64(x) * float64(y) * float64(z)
}

// PFLOPS returns the modelled sustained rate for an X×Y×Z problem whose
// X×Y extent covers the fabric.
func (m IterModel) PFLOPS(w WSE, x, y, z int) float64 {
	return FlopsPerIteration(x, y, z) / m.IterationSeconds(w, z) / 1e15
}

// FractionOfPeak returns sustained/peak.
func (m IterModel) FractionOfPeak(w WSE, x, y, z int) float64 {
	return m.PFLOPS(w, x, y, z) * 1e15 / w.PeakFlops()
}

// CalibrateEta returns the Eta that makes the model reproduce a measured
// iteration time.
func (m IterModel) CalibrateEta(w WSE, z int, measuredSeconds float64) float64 {
	b := m.IterationCycles(w, z)
	raw := b.Total() / b.Eta // cycles at Eta=1
	return measuredSeconds * w.ClockHz / raw
}

// ---------------------------------------------------------------- memory

// WordBytes is the fp16 storage width.
const WordBytes = 2

// TileVectorWords is the paper's §IV accounting for the 3D mapping: six
// stored diagonals plus four solver vectors, 10·Z words per tile ("with
// Z = 1536 we are using about 31KB out of 48KB").
func TileVectorWords(z int) int { return 10 * z }

// TileVectorBytes converts TileVectorWords to bytes.
func TileVectorBytes(z int) int { return TileVectorWords(z) * WordBytes }

// MaxZ returns the largest Z whose 10Z-word footprint fits the budget.
func MaxZ(memBytes int) int { return memBytes / WordBytes / 10 }

// ------------------------------------------------------- 2D 9-point model

// Words2D is the per-tile footprint of the 2D mapping with a b×b block:
// seventeen block-sized arrays — nine coefficient diagonals, the iterate,
// the result with its folded output halo, and the BiCGStab work vectors
// ("a matrix, halo, and vector (as well as all terms needed for BiCG)") —
// plus a small fixed overhead. Solving 17·b² ≤ 24576 words gives b ≤ 38,
// the paper's maximum block ("a sub-block up-to 38x38 in size,
// corresponding to geometries of 22800x22800").
func Words2D(b int) int { return 17*b*b + 16 }

// MaxBlock2D returns the largest block edge that fits the byte budget.
func MaxBlock2D(memBytes int) int {
	words := memBytes / WordBytes
	b := 0
	for Words2D(b+1) <= words {
		b++
	}
	return b
}

// Overhead2D is the fraction of non-useful work in the 2D mapping at
// block size b: the uncredited main-diagonal multiply-accumulate (2b² of
// the 18b² ops — "we should not receive performance credit for this
// operation") plus the redundant halo summations (8b + 8 adds per tile),
// relative to the 16b² useful ops. Overhead2D(8) ≈ 19.5%, matching the
// paper's "the overhead remains less than 20%" for 8×8 blocks, and
// declines toward the 12.5% diagonal floor at 38×38.
func Overhead2D(b int) float64 {
	useful := 16 * float64(b) * float64(b)
	extra := 2*float64(b)*float64(b) + 8*float64(b) + 8
	return extra / useful
}

// ------------------------------------------------------ machine balance

// BalanceEntry is one point of Figure 1: the flops a machine can perform
// per word of memory traffic and per word of interconnect traffic.
type BalanceEntry struct {
	System              string
	Year                int
	FlopsPerWordMemory  float64
	FlopsPerWordNetwork float64
	WaferScale          bool
}

// MachineBalance returns representative machine-balance points in the
// spirit of Figure 1 (which plots McCalpin's survey): conventional
// CPU-based systems sit at hundreds of flops per memory word and
// thousands per network word and drift upward; the CS-1 sits near one.
// CPU entries are order-of-magnitude characterizations of the published
// trend line, not measurements; the CS-1 entry follows the paper (memory
// bandwidth of three bytes per flop; fabric injection bandwidth of one
// fourth the peak compute rate).
func MachineBalance() []BalanceEntry {
	return []BalanceEntry{
		{System: "Vector era (Cray-like)", Year: 1990, FlopsPerWordMemory: 4, FlopsPerWordNetwork: 16},
		{System: "Commodity cluster", Year: 2000, FlopsPerWordMemory: 40, FlopsPerWordNetwork: 400},
		{System: "Multicore node", Year: 2008, FlopsPerWordMemory: 100, FlopsPerWordNetwork: 1500},
		{System: "Xeon HPC node (2016)", Year: 2016, FlopsPerWordMemory: 200, FlopsPerWordNetwork: 5000},
		{System: "GPU node (HBM)", Year: 2019, FlopsPerWordMemory: 80, FlopsPerWordNetwork: 8000},
		{System: "Joule 2.0 (Xeon 6148)", Year: 2019, FlopsPerWordMemory: 220, FlopsPerWordNetwork: 6000},
		// CS-1: 3 bytes/flop memory => 4B word per 1.33 flops; network
		// injection 16B/cycle vs 8 flops/cycle => 2 flops per 4B word.
		{System: "Cerebras CS-1", Year: 2020, FlopsPerWordMemory: 1.33, FlopsPerWordNetwork: 2, WaferScale: true},
	}
}

// ---------------------------------------------------------- §V headline

// HeadlineMesh is the measured problem of Section V.
type HeadlineMesh struct{ X, Y, Z int }

// Headline returns the paper's measured configuration and numbers.
func Headline() (mesh HeadlineMesh, iterMicros float64, pflops float64) {
	return HeadlineMesh{X: 600, Y: 595, Z: 1536}, 28.1, 0.86
}

// HeadlinePrediction evaluates a model at the Section V configuration.
func HeadlinePrediction(m IterModel) (iterMicros, pflops, fracPeak float64) {
	w := CS1()
	mesh, _, _ := Headline()
	sec := m.IterationSeconds(w, mesh.Z)
	return sec * 1e6, m.PFLOPS(w, mesh.X, mesh.Y, mesh.Z), m.FractionOfPeak(w, mesh.X, mesh.Y, mesh.Z)
}

// ShapePoint is one entry of a mesh-shape sweep (the paper's "predict the
// effect of changing mesh size and shape").
type ShapePoint struct {
	X, Y, Z    int
	IterMicros float64
	PFLOPS     float64
}

// ShapeSweep evaluates the model across Z for the full fabric.
func ShapeSweep(m IterModel, zs []int) []ShapePoint {
	w := CS1()
	out := make([]ShapePoint, 0, len(zs))
	for _, z := range zs {
		out = append(out, ShapePoint{
			X: w.W - 2, Y: w.H, Z: z,
			IterMicros: m.IterationSeconds(w, z) * 1e6,
			PFLOPS:     m.PFLOPS(w, w.W-2, w.H, z),
		})
	}
	return out
}

// Abs is a tiny helper used by tests.
func Abs(x float64) float64 { return math.Abs(x) }
