package perfmodel

import (
	"math"
	"testing"
)

func TestTechNodeCapacity(t *testing.T) {
	nodes := TechNodes()
	if len(nodes) != 3 {
		t.Fatal("expected 16nm/7nm/5nm generations")
	}
	// §II: 18 GB on the CS-1 wafer; §VIII-B: 40 GB at 7nm, 50 GB at 5nm.
	if nodes[0].WaferSRAM != 18<<30 || nodes[1].WaferSRAM != 40<<30 || nodes[2].WaferSRAM != 50<<30 {
		t.Error("wafer SRAM sizes do not match the paper")
	}
	// Capacity must grow monotonically and the CS-1 must hold the
	// headline mesh (600×595×1536 ≈ 5.5e8 points at 10 words/point).
	headlinePts := int64(600) * 595 * 1536
	if MaxMeshpoints(nodes[0]) < headlinePts {
		t.Errorf("CS-1 capacity %d points cannot hold the headline %d", MaxMeshpoints(nodes[0]), headlinePts)
	}
	for i := 1; i < len(nodes); i++ {
		if MaxMeshpoints(nodes[i]) <= MaxMeshpoints(nodes[i-1]) {
			t.Error("capacity should grow with the node")
		}
	}
	// 600³ fits all generations; cube bound grows.
	if MaxCubeMesh(nodes[0]) < 600 {
		t.Errorf("CS-1 max cube %d should exceed 600", MaxCubeMesh(nodes[0]))
	}
}

func TestHelicopterRealTime(t *testing.T) {
	// §VIII-A: "modest meshes of in the neighborhood of one million cells
	// can provide adequate accuracy, but the necessary real-time
	// performance is hard to achieve on a cluster" — the wafer achieves it.
	rc := HelicopterShipAirwake(PaperModel())
	if rc.Meshpoints != 1_000_000 {
		t.Errorf("meshpoints = %d", rc.Meshpoints)
	}
	if !rc.RealTime {
		t.Errorf("1M-cell CFD should be real-time on the wafer: %.0f steps/s", rc.StepsPerSecond)
	}
	// Sanity: the rate must scale roughly with 1/Z vs the 600³ projection.
	if rc.StepsPerSecond < 300 || rc.StepsPerSecond > 3000 {
		t.Errorf("steps/s = %.0f outside the plausible band", rc.StepsPerSecond)
	}
}

func TestCampaigns(t *testing.T) {
	uq := CarbonCaptureUQ(250)
	if math.Abs(uq.ClusterHours-1505*600.0/3600) > 1e-9 {
		t.Errorf("UQ cluster hours = %g", uq.ClusterHours)
	}
	if uq.CS1Hours > 2 {
		t.Errorf("UQ campaign on CS-1 should take ~1 hour, got %.2f", uq.CS1Hours)
	}
	ship := ShipSelfPropulsion(250)
	if ship.ClusterHours != 83 {
		t.Errorf("ship case hours = %g, paper says up to 83", ship.ClusterHours)
	}
	if ship.CS1Hours > 1 {
		t.Errorf("ship case on CS-1 = %.2f h, should be well under an hour", ship.CS1Hours)
	}
	fits := WindTurbineOptimization()
	// 50M cells at 10 words/point = 1 GB: fits every generation.
	for name, ok := range fits {
		if !ok {
			t.Errorf("50M-cell turbine mesh should fit %s", name)
		}
	}
}

func TestFusedReductionSavings(t *testing.T) {
	// Fusing the ω reductions saves about one AllReduce of the four —
	// a few percent of the headline iteration.
	save := ReductionHidingSavings(PaperModel())
	if save <= 0 || save > 0.10 {
		t.Errorf("fused-reduction saving = %.3f, expected a few percent", save)
	}
	w := CS1()
	std := PaperModel().IterationCycles(w, 1536)
	fused := PaperModel().FusedReductionIterationCycles(w, 1536)
	if fused.AllReduce >= std.AllReduce {
		t.Error("fused variant must spend fewer AllReduce cycles")
	}
	if fused.SpMV != std.SpMV || fused.Axpy != std.Axpy || fused.Dot != std.Dot {
		t.Error("fusing reductions must not change compute phases")
	}
}
