package perfmodel

// This file models the cycle cost of one application of the programs the
// stencil compiler (internal/stencilc) emits: the 3D Z-column relay
// program (Program3D) and the 2D block-halo program (Program2D). Unlike
// the coarse per-iteration coefficients of SimModel, these entries are
// *exact*: the exchange phases of the compiled programs bottleneck on
// microarchitectural details — the one-word-per-cycle ramp in each
// direction, the router's per-output-link round-robin arbitration, the
// depth-4 hardware queues, the depth-8 stream buffers, the SIMD-4
// datapath shared by the receive threads — and no closed form survives
// all of them (the measured cost is not even symmetric in x and y,
// because the send threads drain in slot order). So the model replays
// the schedule at word granularity: a handful of occupancy counters per
// tile, no simulated memory, no arithmetic, no data. It is calibrated
// against nothing — it is pinned bit-exactly to the cycle simulator
// across shapes, widths and engines by TestStencilApplyModelExact, the
// same contract HaloSpMVCycles carries for the width-1 kernel.
//
// Cost: O(W·H·cycles) counter updates. Completion times depend on a
// tile's clamped distance to each fabric edge (timing influence travels
// at most one hop per relay round plus a few cycles of queue
// backpressure), so fabrics larger than a dependency horizon are
// reduced to it before replay — that is what makes the entries usable
// at paper scale, where the cycle simulator itself is the expensive
// thing being modelled. The reduction is pinned by the same test.

// StencilApply3D describes one application of a stencil-compiled 3D
// column-halo program on a W×H fabric holding the full W×H×Z mesh (the
// single-wafer configuration kernels.WaferStarBackend builds).
type StencilApply3D struct {
	W, H, Z int
	Widths  [3]int
	// SumSq adds the fused per-tile Σy² reduction of ReduceSumSq specs.
	SumSq bool
}

// StencilApply2D describes one application of a stencil-compiled 2D
// block-halo program on a W×H fabric with B×B blocks. Points is the
// spec's point count: 5 for a star, 9 for a box (the exchange schedule
// is shared; only the scatter instruction count differs).
type StencilApply2D struct {
	W, H, B int
	Points  int
	SumSq   bool
}

// Cycles returns the exact simulated cycle count of one application.
func (s StencilApply3D) Cycles() int64 {
	r := s.Widths[0]
	if s.Widths[1] > r {
		r = s.Widths[1]
	}
	w, h := saClamp(s.W, r), saClamp(s.H, r)
	return saRun(w, h, func(x, y int) []saStage {
		return saStages3D(x, y, w, h, s.Z, s.Widths, s.SumSq)
	})
}

// Cycles returns the exact simulated cycle count of one application.
func (s StencilApply2D) Cycles() int64 {
	w, h := saClamp(s.W, 1), saClamp(s.H, 1)
	return saRun(w, h, func(x, y int) []saStage {
		return saStages2D(x, y, w, h, s.B, s.Points, s.SumSq)
	})
}

// saClamp reduces a fabric extent to the dependency horizon for a
// program of the given relay-round count: a tile's completion time
// depends only on its distance to each edge, clamped where the extent
// exceeds twice the horizon (rounds of single-hop influence plus a
// margin for queue backpressure), so the reduced fabric contains a
// representative of every timing class of the full one.
func saClamp(n, rounds int) int {
	horizon := rounds + 8
	if n > 2*horizon+1 {
		return 2*horizon + 1
	}
	return n
}

// ------------------------------------------------------------- replay

// Directional exchange colors, matching stencilc's assignment: the name
// is the direction of travel.
const (
	saEast = iota
	saWest
	saSouth
	saNorth
)

// Router ports, matching the fabric package's order.
const (
	saPortN = iota
	saPortE
	saPortS
	saPortW
	saPortRamp
)

// Hardware depths, matching fabric.Config defaults and the programs'
// stream-buffer allocation.
const (
	saQueueDepth = 4 // router input queue, words
	saRxDepth    = 4 // core receive buffer, words
	saBufElems   = 8 // stream buffer, fp16 elements (4 words)
	saLanes      = 4 // SIMD datapath lanes
)

// saQ is a hardware queue: only occupancy matters for timing.
type saQ struct{ size, cap int }

// saEntry is one configured (input queue → output port) route of a
// router, in the arbitration scan order RouteExchange produces.
type saEntry struct {
	q, dst  *saQ
	port    int
	dstTile int // router tile to re-mark hot on push; -1 for a core rx delivery
}

// saTx and saRx are one round's send and receive legs, in thread slot
// order (the order that decides ramp priority and lane sharing).
type saTx struct{ color, rem int }
type saRx struct{ color, rem int }

// saStage is one step of a tile's program: a task of `task` datapath
// cycles, or (task < 0) an exchange round.
type saStage struct {
	task int
	tx   []saTx
	rx   []saRx
}

type saTile struct {
	// Router state.
	entries []saEntry
	rr      int
	hot     bool
	ramp    [4]saQ // ramp input queues, by injected color
	link    [4]saQ // link input queues, by arriving color
	rx      [4]saQ // core receive buffers, by color
	subbed  [4]bool
	bufE    [4]int // stream-buffer occupancy, elements, by color

	// Program state.
	stages []saStage
	cur    int
	start  int64 // first cycle the current stage may execute
	done   bool
}

type saModel struct {
	w, h    int
	tiles   []*saTile
	hotList []int
	pops    []*saQ
	pushes  []saPush
	still   []int
}

type saPush struct {
	q    *saQ
	tile int
}

func saRun(w, h int, build func(x, y int) []saStage) int64 {
	m := &saModel{w: w, h: h, tiles: make([]*saTile, w*h)}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			t := &saTile{}
			for c := 0; c < 4; c++ {
				t.ramp[c].cap = saQueueDepth
				t.link[c].cap = saQueueDepth
				t.rx[c].cap = saRxDepth
			}
			t.subbed[saEast] = x > 0
			t.subbed[saWest] = x < w-1
			t.subbed[saSouth] = y > 0
			t.subbed[saNorth] = y < h-1
			t.stages = build(x, y)
			t.cur = -1
			m.tiles[y*w+x] = t
		}
	}
	// Route entries in RouteExchange's configuration order: the tile
	// above and to the left are visited first (their neighbour-side
	// calls land before this tile's own ramp entries), the tile to the
	// right and below after.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			t := m.tiles[y*w+x]
			add := func(q, dst *saQ, port, dstTile int) {
				t.entries = append(t.entries, saEntry{q: q, dst: dst, port: port, dstTile: dstTile})
			}
			if y > 0 {
				add(&t.link[saSouth], &t.rx[saSouth], saPortRamp, -1)
			}
			if x > 0 {
				add(&t.link[saEast], &t.rx[saEast], saPortRamp, -1)
			}
			if x < w-1 {
				nb := m.tiles[y*w+x+1]
				add(&t.ramp[saEast], &nb.link[saEast], saPortE, y*w+x+1)
			}
			if x > 0 {
				nb := m.tiles[y*w+x-1]
				add(&t.ramp[saWest], &nb.link[saWest], saPortW, y*w+x-1)
			}
			if y < h-1 {
				nb := m.tiles[(y+1)*w+x]
				add(&t.ramp[saSouth], &nb.link[saSouth], saPortS, (y+1)*w+x)
			}
			if y > 0 {
				nb := m.tiles[(y-1)*w+x]
				add(&t.ramp[saNorth], &nb.link[saNorth], saPortN, (y-1)*w+x)
			}
			if x < w-1 {
				add(&t.link[saWest], &t.rx[saWest], saPortRamp, -1)
			}
			if y < h-1 {
				add(&t.link[saNorth], &t.rx[saNorth], saPortRamp, -1)
			}
		}
	}
	for _, t := range m.tiles {
		m.advance(t, 0)
	}
	// One application is bounded well under words·depth· diameter; the
	// guard only trips on a model bug.
	guard := int64(1) << 40
	for cycle := int64(1); cycle <= guard; cycle++ {
		for _, t := range m.tiles {
			m.stepTile(t, cycle)
		}
		m.fabricStep()
		alldone := true
		for _, t := range m.tiles {
			if !t.done {
				alldone = false
				break
			}
		}
		if alldone {
			return cycle
		}
	}
	panic("perfmodel: stencil apply replay did not terminate")
}

// advance moves a tile to its next non-empty stage (or completion); the
// stage first executes the cycle after the one that retired it, exactly
// the task-activation and thread-launch latency of the core scheduler.
func (m *saModel) advance(t *saTile, cycle int64) {
	for {
		t.cur++
		if t.cur >= len(t.stages) {
			t.done = true
			return
		}
		st := &t.stages[t.cur]
		if st.task < 0 && len(st.tx) == 0 && len(st.rx) == 0 {
			continue // empty relay round: skipped for free, as in launchRound
		}
		break
	}
	t.start = cycle + 1
}

// stepTile replays one core cycle: deliver arriving words to stream
// buffers (one word per color, only into a buffer with space), then run
// the current stage — a task burns one datapath cycle; a round offers
// the ramp to its send threads in slot order (one word per cycle
// crosses) and shares the four lanes among its receive threads.
func (m *saModel) stepTile(t *saTile, cycle int64) {
	for c := 0; c < 4; c++ {
		if t.subbed[c] && t.rx[c].size > 0 && t.bufE[c] <= saBufElems-2 {
			t.rx[c].size--
			t.bufE[c] += 2
		}
	}
	if t.done || cycle < t.start {
		return
	}
	st := &t.stages[t.cur]
	if st.task >= 0 {
		st.task--
		if st.task == 0 {
			m.advance(t, cycle)
		}
		return
	}
	sent := false
	for i := range st.tx {
		tx := &st.tx[i]
		if tx.rem > 0 && !sent && t.ramp[tx.color].size < t.ramp[tx.color].cap {
			t.ramp[tx.color].size++
			m.markHot(t)
			tx.rem--
			sent = true
		}
	}
	lanes := saLanes
	for i := range st.rx {
		rx := &st.rx[i]
		if rx.rem > 0 && lanes > 0 {
			take := rx.rem
			if t.bufE[rx.color] < take {
				take = t.bufE[rx.color]
			}
			if lanes < take {
				take = lanes
			}
			rx.rem -= take
			t.bufE[rx.color] -= take
			lanes -= take
		}
	}
	for i := range st.tx {
		if st.tx[i].rem > 0 {
			return
		}
	}
	for i := range st.rx {
		if st.rx[i].rem > 0 {
			return
		}
	}
	m.advance(t, cycle)
}

func (m *saModel) markHot(t *saTile) {
	if !t.hot {
		t.hot = true
		for i, tt := range m.tiles {
			if tt == t {
				m.hotList = append(m.hotList, i)
				return
			}
		}
	}
}

func (m *saModel) markHotIdx(ti int) {
	t := m.tiles[ti]
	if !t.hot {
		t.hot = true
		m.hotList = append(m.hotList, ti)
	}
}

// fabricStep replays one router cycle: every hot router walks its route
// entries from its arbitration rotation, claiming one word per output
// link against pre-cycle occupancies; claims commit together, so a word
// moves at most one hop per cycle.
func (m *saModel) fabricStep() {
	cur := m.hotList
	m.hotList = m.hotList[:0:0]
	m.pops = m.pops[:0]
	m.pushes = m.pushes[:0]
	m.still = m.still[:0]
	for _, ti := range cur {
		t := m.tiles[ti]
		t.hot = false
		n := len(t.entries)
		if n == 0 {
			continue
		}
		var claimed uint8
		hasWords := false
		idx := t.rr % n
		for k := 0; k < n; k++ {
			en := &t.entries[idx]
			idx++
			if idx == n {
				idx = 0
			}
			if en.q.size == 0 {
				continue
			}
			hasWords = true
			if claimed&(1<<en.port) != 0 {
				continue
			}
			if en.dst.size == en.dst.cap {
				continue
			}
			claimed |= 1 << en.port
			m.pops = append(m.pops, en.q)
			m.pushes = append(m.pushes, saPush{q: en.dst, tile: en.dstTile})
		}
		t.rr++
		if hasWords {
			m.still = append(m.still, ti)
		}
	}
	for _, q := range m.pops {
		q.size--
	}
	for _, p := range m.pushes {
		p.q.size++
		if p.tile >= 0 {
			m.markHotIdx(p.tile)
		}
	}
	for _, ti := range m.still {
		m.markHotIdx(ti)
	}
}

// ------------------------------------------------------------- stages

func saCeil4(n int) int { return (n + 3) / 4 }

// saAxis and the directional tables mirror stencilc's halo-direction
// order (XP, XM, YP, YM — also the thread slot order).
var (
	saHaloOut   = [4]int{saEast, saWest, saSouth, saNorth}
	saHaloIn    = [4]int{saWest, saEast, saNorth, saSouth}
	saHaloDelta = [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
)

func saAxis(d int) int {
	if d < 2 {
		return 0
	}
	return 1
}

// saStages3D builds the stage list of one Program3D tile: max(Wx,Wy)
// relay rounds (each active direction sends Z/2 words and stores Z
// elements), then the compute task in OpStarHalf.Apply's instruction
// order, then the optional fused Σy² dot.
func saStages3D(x, y, w, h, z int, widths [3]int, sumsq bool) []saStage {
	rounds := widths[0]
	if widths[1] > rounds {
		rounds = widths[1]
	}
	nb := [4]bool{x < w-1, x > 0, y < h-1, y > 0}
	var stages []saStage
	for r := 1; r <= rounds; r++ {
		var st saStage
		st.task = -1
		for d := 0; d < 4; d++ {
			if nb[d] && r <= widths[saAxis(d)] {
				st.tx = append(st.tx, saTx{color: saHaloOut[d], rem: z / 2})
				st.rx = append(st.rx, saRx{color: saHaloIn[d], rem: z})
			}
		}
		if len(st.tx) > 0 {
			stages = append(stages, st)
		}
	}
	compute := 0
	if z > 1 {
		compute += 2 * saCeil4(z-1)
	}
	for k := 2; k <= widths[2]; k++ {
		if z > k {
			compute += 2 * saCeil4(z-k)
		}
	}
	for d := 0; d < 4; d++ {
		for k := 1; k <= widths[saAxis(d)]; k++ {
			nx, ny := x+k*saHaloDelta[d][0], y+k*saHaloDelta[d][1]
			if nx >= 0 && nx < w && ny >= 0 && ny < h {
				compute += saCeil4(z)
			}
		}
	}
	compute += saCeil4(z) // the unit-diagonal add
	stages = append(stages, saStage{task: compute})
	if sumsq {
		stages = append(stages, saStage{task: (z + 1) / 2})
	}
	return stages
}

// saStages2D builds the stage list of one Program2D tile: the scatter
// task (one block FMAC per stencil point), the ±x halo-column round
// (B+2 elements per transfer), the ±y row round (B elements), and the
// optional fused Σy² dot.
func saStages2D(x, y, w, h, b, points int, sumsq bool) []saStage {
	stages := []saStage{{task: points * saCeil4(b*b)}}
	var xr saStage
	xr.task = -1
	if x > 0 {
		xr.tx = append(xr.tx, saTx{color: saWest, rem: (b + 2) / 2})
	}
	if x < w-1 {
		xr.tx = append(xr.tx, saTx{color: saEast, rem: (b + 2) / 2})
	}
	if x > 0 {
		xr.rx = append(xr.rx, saRx{color: saEast, rem: b + 2})
	}
	if x < w-1 {
		xr.rx = append(xr.rx, saRx{color: saWest, rem: b + 2})
	}
	if len(xr.tx)+len(xr.rx) > 0 {
		stages = append(stages, xr)
	}
	var yr saStage
	yr.task = -1
	if y > 0 {
		yr.tx = append(yr.tx, saTx{color: saNorth, rem: b / 2})
	}
	if y < h-1 {
		yr.tx = append(yr.tx, saTx{color: saSouth, rem: b / 2})
	}
	if y > 0 {
		yr.rx = append(yr.rx, saRx{color: saSouth, rem: b})
	}
	if y < h-1 {
		yr.rx = append(yr.rx, saRx{color: saNorth, rem: b})
	}
	if len(yr.tx)+len(yr.rx) > 0 {
		stages = append(stages, yr)
	}
	if sumsq {
		stages = append(stages, saStage{task: (b*b + 1) / 2})
	}
	return stages
}
