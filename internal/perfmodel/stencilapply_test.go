package perfmodel

import "testing"

// TestStencilApplyMatchesHaloClosedForm cross-checks the replay model
// against the independently derived width-1 closed form: for unit halo
// widths the compiled 3D program is the classic single-round exchange
// HaloSpMVCycles models, so the two perfmodel entries must agree
// everywhere. (Both are separately pinned to the simulator — this keeps
// them pinned to each other.)
func TestStencilApplyMatchesHaloClosedForm(t *testing.T) {
	for _, c := range []struct{ w, h, z int }{
		{1, 1, 4}, {2, 1, 4}, {1, 3, 8}, {2, 2, 4}, {3, 3, 4},
		{4, 3, 6}, {2, 2, 32}, {3, 3, 16}, {5, 2, 10}, {6, 6, 8},
		{25, 3, 4}, {40, 40, 6},
	} {
		got := StencilApply3D{W: c.w, H: c.h, Z: c.z, Widths: [3]int{1, 1, 1}}.Cycles()
		want := int64(HaloSpMVCycles(c.w, c.h, c.z, c.w, c.h))
		if got != want {
			t.Errorf("(%d,%d,%d): replay model %d, closed form %d", c.w, c.h, c.z, got, want)
		}
	}
}

// TestStencilApplyWidthMonotone sanity-checks shape behaviour: wider
// halos and deeper columns never get cheaper.
func TestStencilApplyWidthMonotone(t *testing.T) {
	prev := int64(0)
	for wdt := 1; wdt <= 4; wdt++ {
		c := StencilApply3D{W: 5, H: 5, Z: 8, Widths: [3]int{wdt, wdt, wdt}}.Cycles()
		if c <= prev {
			t.Fatalf("width %d: %d cycles, not above width %d's %d", wdt, c, wdt-1, prev)
		}
		prev = c
	}
	prev = 0
	for _, z := range []int{4, 8, 16, 32} {
		c := StencilApply3D{W: 4, H: 4, Z: z, Widths: [3]int{2, 2, 2}}.Cycles()
		if c <= prev {
			t.Fatalf("z=%d: %d cycles, did not grow from %d", z, c, prev)
		}
		prev = c
	}
	if b4 := (StencilApply2D{W: 3, H: 3, B: 4, Points: 9}).Cycles(); b4 <= (StencilApply2D{W: 3, H: 3, B: 2, Points: 9}).Cycles() {
		t.Fatalf("2D b=4 (%d) not above b=2", b4)
	}
}
