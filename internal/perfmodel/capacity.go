package perfmodel

import "math"

// §VIII of the paper: memory-capacity evolution and the compact
// real-time/UQ/design-space use cases that fit a single wafer.

// TechNode is a silicon process generation of the wafer-scale engine.
type TechNode struct {
	Name      string
	WaferSRAM int64 // bytes across the wafer
	Year      int
}

// TechNodes follows §VIII-B: "A technology shrink from the 16 nm to 7 nm
// technology node will provide about 40 GB of SRAM on the wafer and
// further increases (to 50 GB at 5 nm) will follow."
func TechNodes() []TechNode {
	return []TechNode{
		{Name: "16nm (CS-1)", WaferSRAM: 18 << 30, Year: 2019},
		{Name: "7nm", WaferSRAM: 40 << 30, Year: 2021},
		{Name: "5nm", WaferSRAM: 50 << 30, Year: 2023},
	}
}

// MaxMeshpoints returns how many meshpoints of the paper's 3D layout
// (10 words/point, fp16) a wafer generation can hold.
func MaxMeshpoints(n TechNode) int64 {
	return n.WaferSRAM / int64(TileVectorWords(1)*WordBytes)
}

// MaxCubeMesh returns the largest N such that an N³ mesh fits.
func MaxCubeMesh(n TechNode) int {
	return int(math.Cbrt(float64(MaxMeshpoints(n))))
}

// ---------------------------------------------------------------- §VIII-A

// RealTimeCheck evaluates the helicopter/ship-airwake use case: a mesh of
// about a million cells needs faster-than-real-time CFD. With the §VI-A
// projection the CS-1 runs smaller meshes proportionally faster (the
// solve is Z-bound per tile and the fabric is fixed).
type RealTimeCheck struct {
	Meshpoints     int
	StepsPerSecond float64
	// RealTime is true when the machine sustains more timesteps/s than
	// the physical timestep rate requires (taken as 100 steps/s of
	// simulated time for in-the-loop use).
	RealTime bool
}

// HelicopterShipAirwake models the Oruc use case (§VIII-A): ~1M cells.
// A 100×100×100 mesh occupies a 100×100 corner of the fabric with
// Z = 100; the timestep rate follows the MFIX projection scaled by Z.
func HelicopterShipAirwake(m IterModel) RealTimeCheck {
	w := CS1()
	z := 100
	// Per-timestep cycles per z-point at 15 SIMPLE iterations: formation
	// midpoint of Table II (~7600 cycles) + 525 solver iterations.
	mesh, _, _ := Headline()
	perPointIter := m.IterationCycles(w, mesh.Z).Total() / float64(mesh.Z)
	cycles := (7600 + 525*perPointIter) * float64(z)
	steps := w.ClockHz / cycles
	return RealTimeCheck{
		Meshpoints:     100 * 100 * 100,
		StepsPerSecond: steps,
		RealTime:       steps >= 100,
	}
}

// ---------------------------------------------------------------- §VIII-B

// Campaign describes a many-run study (UQ, design-space exploration).
type Campaign struct {
	Runs           int
	ClusterSeconds float64 // per run, published
	CS1Speedup     float64 // from the §VI-A projection
	ClusterHours   float64
	CS1Hours       float64
}

// CarbonCaptureUQ models the Xu et al. study (§VIII-B): 1,505 simulations
// of ~600 s each. speedup is the CS-1-vs-cluster factor (the paper
// projects >200× for MFIX-class solves).
func CarbonCaptureUQ(speedup float64) Campaign {
	c := Campaign{Runs: 1505, ClusterSeconds: 600, CS1Speedup: speedup}
	c.ClusterHours = float64(c.Runs) * c.ClusterSeconds / 3600
	c.CS1Hours = c.ClusterHours / speedup
	return c
}

// ShipSelfPropulsion models the Jasak et al. case (§VIII-B): one 11.7M
// cell run of up to 83 hours on an engineering cluster.
func ShipSelfPropulsion(speedup float64) Campaign {
	c := Campaign{Runs: 1, ClusterSeconds: 83 * 3600, CS1Speedup: speedup}
	c.ClusterHours = 83
	c.CS1Hours = c.ClusterHours / speedup
	return c
}

// WindTurbineOptimization models the Madsen et al. case (§VIII-B):
// sequential shape optimization needing hundreds of simulations of
// 14–50M cell meshes. Returns whether the mesh fits each node.
func WindTurbineOptimization() map[string]bool {
	fits := make(map[string]bool)
	for _, n := range TechNodes() {
		fits[n.Name] = MaxMeshpoints(n) >= 50_000_000
	}
	return fits
}

// ------------------------------------------------- communication hiding

// FusedReductionIterationCycles models the §IV-3 design alternative the
// paper declined ("we did not use a communication-hiding variant of
// BiCGStab, [so] this collective operation is blocking"): batching the
// (q,y) and (y,y) reductions into one wave and overlapping the β
// reduction with the p-update AXPYs. Three blocking waves (one carrying
// two scalars, +1 cycle pipelining) instead of four.
func (m IterModel) FusedReductionIterationCycles(w WSE, z int) Breakdown {
	b := m.IterationCycles(w, z)
	single := w.AllReduceCycles()
	b.AllReduce = 2*single + (single + 1) // α wave, fused ω wave, β wave
	return b
}

// ReductionHidingSavings returns the fractional iteration-time saving of
// the fused variant at the headline configuration.
func ReductionHidingSavings(m IterModel) float64 {
	w := CS1()
	mesh, _, _ := Headline()
	std := m.IterationCycles(w, mesh.Z).Total()
	fused := m.FusedReductionIterationCycles(w, mesh.Z).Total()
	return 1 - fused/std
}
