package fp16

import (
	"math"
	"testing"
)

// FuzzFloat16RoundTrip fuzzes the float32 → fp16 → float32 conversion
// pair against its algebraic contract:
//
//   - fp16 → float32 is exact, so converting any fp16 value up and back
//     down must reproduce its bits;
//   - for a float32 already exactly representable in fp16, the downward
//     conversion must be the identity (no value has a nearer neighbour
//     than itself);
//   - NaN maps to NaN, infinities and zeros keep their signs, and every
//     finite input lands within half an ULP (the round-to-nearest bound)
//     or overflows to infinity only beyond the fp16 overflow threshold.
func FuzzFloat16RoundTrip(f *testing.F) {
	seeds := []uint32{
		0x00000000,            // +0
		0x80000000,            // -0
		0x3F800000,            // 1.0
		0xBF800000,            // -1.0
		0x7F800000,            // +Inf
		0xFF800000,            // -Inf
		0x7FC00000,            // NaN
		0x477FE000,            // 65504, fp16 max
		0x477FF000,            // above the overflow threshold
		0x38800000,            // 2^-14, smallest normal
		0x33800000,            // 2^-24, smallest subnormal
		0x33000000,            // 2^-25, ties to even at zero
		0x387FC000,            // largest subnormal
		math.Float32bits(0.1), // inexact in both formats
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, bits uint32) {
		in := math.Float32frombits(bits)
		h := FromFloat32(in)
		out := h.Float32()

		// NaN: stays NaN in both directions.
		if math.IsNaN(float64(in)) {
			if !h.IsNaN() {
				t.Fatalf("NaN %#08x converted to non-NaN fp16 %#04x", bits, h.Bits())
			}
			if !math.IsNaN(float64(out)) {
				t.Fatalf("fp16 NaN %#04x converted to non-NaN float32 %g", h.Bits(), out)
			}
			return
		}

		// Sign is preserved exactly, including on zeros and infinities.
		if math.Signbit(float64(in)) != h.Signbit() {
			t.Fatalf("sign lost: %g (%#08x) -> %#04x", in, bits, h.Bits())
		}

		// fp16 -> float32 -> fp16 must be the identity on the fp16 side
		// (the upward conversion is exact).
		if back := FromFloat32(out); back != h {
			t.Fatalf("fp16 %#04x -> float32 %g -> fp16 %#04x is not the identity", h.Bits(), out, back.Bits())
		}

		// If the input was already exactly representable, the round trip
		// must reproduce its float32 bits exactly (covers all exact
		// normals, subnormals, zeros, infinities).
		if out == in && math.Float32bits(out) != bits {
			// Equal values with different bits can only be ±0.
			if in != 0 {
				t.Fatalf("round trip changed bits of exact value %g: %#08x -> %#08x", in, bits, math.Float32bits(out))
			}
		}

		abs := math.Abs(float64(in))
		switch {
		case h.IsInf(0):
			// Overflow is only legal at or beyond the rounding threshold
			// 65520 = (65504 + 2^16)/2; everything below rounds to a
			// finite fp16.
			if abs < 65520 {
				t.Fatalf("%g (%#08x) overflowed to %v prematurely", in, bits, h)
			}
		case h.IsZero():
			// Underflow to zero is only legal below half the smallest
			// subnormal.
			if abs > SmallestSubnormal/2 {
				t.Fatalf("%g (%#08x) underflowed to zero prematurely", in, bits)
			}
		default:
			// Finite nonzero result: round-to-nearest error bound of half
			// an ULP at the result's scale.
			if err := math.Abs(float64(out) - float64(in)); err > ULP(h)/2 {
				t.Fatalf("%g (%#08x) -> %v: error %g exceeds half ULP %g", in, bits, h, err, ULP(h)/2)
			}
		}

		// Double round trip is stable: float32 -> fp16 -> float32 ->
		// fp16 -> float32 changes nothing after the first pass.
		if again := FromFloat32(out).Float32(); math.Float32bits(again) != math.Float32bits(out) {
			t.Fatalf("round trip not idempotent: %g -> %g -> %g", in, out, again)
		}
	})
}
