// Package fp16 implements IEEE 754 binary16 ("half precision") arithmetic
// in software, with the rounding semantics of the CS-1 wafer-scale engine's
// floating point datapath:
//
//   - all basic operations (+, −, ×, ÷, √) round to nearest, ties to even;
//   - FMA does not round the product before the addition;
//   - the mixed-precision FMAC used by the hardware inner-product
//     instruction multiplies two fp16 operands exactly (the 22-bit product
//     fits a float32 significand) and accumulates in float32.
//
// The package is the numeric substrate for every mixed-precision experiment
// in the reproduction (Figure 9 in particular): identical rounding semantics
// give identical convergence and plateau behaviour.
package fp16

import (
	"math"
	"strconv"
)

// Float16 is an IEEE 754 binary16 value stored in its 16-bit interchange
// format: 1 sign bit, 5 exponent bits (bias 15), 10 fraction bits.
type Float16 uint16

// Format-level constants.
const (
	signMask uint16 = 0x8000
	expMask  uint16 = 0x7C00
	fracMask uint16 = 0x03FF

	expBias  = 15
	fracBits = 10
)

// Distinguished values.
var (
	// PositiveInf and NegativeInf are the fp16 infinities.
	PositiveInf = Float16(0x7C00)
	NegativeInf = Float16(0xFC00)
	// NaN is a quiet NaN.
	NaN = Float16(0x7E00)
	// Zero and NegZero are the signed zeros.
	Zero    = Float16(0x0000)
	NegZero = Float16(0x8000)
	// One is 1.0.
	One = Float16(0x3C00)
)

// Numeric limits, as float64 values.
const (
	// MaxValue is the largest finite fp16 value, 65504.
	MaxValue = 65504.0
	// SmallestNormal is 2^-14.
	SmallestNormal = 0x1p-14
	// SmallestSubnormal is 2^-24.
	SmallestSubnormal = 0x1p-24
	// Epsilon is the machine epsilon, 2^-10: the difference between 1 and
	// the next representable value. The paper's "machine precision is about
	// 10^-3" refers to this.
	Epsilon = 0x1p-10
)

// FromBits returns the Float16 with the given interchange encoding.
func FromBits(b uint16) Float16 { return Float16(b) }

// Bits returns the interchange encoding of x.
func (x Float16) Bits() uint16 { return uint16(x) }

// FromFloat64 converts a float64 to Float16, rounding to nearest with ties
// to even, with gradual underflow to subnormals and overflow to infinity.
func FromFloat64(f float64) Float16 {
	b := math.Float64bits(f)
	sign := uint16(b>>48) & signMask
	exp := int((b >> 52) & 0x7FF)
	frac := b & 0x000FFFFFFFFFFFFF

	if exp == 0x7FF { // Inf or NaN
		if frac != 0 {
			// Quiet NaN; preserve the top fraction bits where possible.
			nf := uint16(frac>>42) & fracMask
			return Float16(sign | expMask | 0x0200 | nf)
		}
		return Float16(sign | expMask)
	}
	if exp == 0 && frac == 0 {
		return Float16(sign)
	}

	// Normalize into a 53-bit significand sig with value sig * 2^(e-52).
	var sig uint64
	var e int
	if exp == 0 {
		sig = frac
		e = -1022
		for sig&0x0010000000000000 == 0 {
			sig <<= 1
			e--
		}
	} else {
		sig = frac | 0x0010000000000000
		e = exp - 1023
	}

	// A normal fp16 is h * 2^(e-10) with h in [2^10, 2^11). Dropping 42 bits
	// of sig keeps 11; rounding may carry into bit 11.
	if e > expBias {
		return Float16(sign | expMask) // overflow before rounding
	}
	if e >= -14 {
		h := roundShiftRNE(sig, 42)
		if h >= 1<<(fracBits+1) { // carry: 2^11 -> renormalize
			h >>= 1
			e++
		}
		if e > expBias {
			return Float16(sign | expMask)
		}
		return Float16(sign | uint16(e+expBias)<<fracBits | uint16(h)&fracMask)
	}

	// Subnormal range: value = h * 2^-24 for h in [1, 2^10). We must drop
	// 42 + (-14 - e) bits. Rounding can carry into the smallest normal.
	shift := uint(42 + (-14 - e))
	if shift >= 53+1 {
		return Float16(sign) // underflows to zero even after rounding
	}
	h := roundShiftRNE(sig, shift)
	// h may equal 2^10 here, which encodes exactly as the smallest normal
	// (exponent field 1, fraction 0), so plain bit-OR is correct.
	return Float16(sign | uint16(h))
}

// roundShiftRNE drops the low shift bits of sig, rounding to nearest with
// ties to even. shift must be in [1, 63].
func roundShiftRNE(sig uint64, shift uint) uint64 {
	lsb := (sig >> shift) & 1
	bias := (uint64(1) << (shift - 1)) - 1 + lsb
	return (sig + bias) >> shift
}

// FromFloat32 converts a float32 to Float16 with round-to-nearest-even.
func FromFloat32(f float32) Float16 {
	// float32 -> float64 is exact, so one rounding step remains.
	return FromFloat64(float64(f))
}

// Float32 returns x converted to float32. The conversion is exact.
func (x Float16) Float32() float32 {
	sign := uint32(uint16(x)&signMask) << 16
	exp := uint32(x>>fracBits) & 0x1F
	frac := uint32(x) & uint32(fracMask)
	switch {
	case exp == 0x1F:
		if frac != 0 {
			return math.Float32frombits(sign | 0x7FC00000 | frac<<13)
		}
		return math.Float32frombits(sign | 0x7F800000)
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal: value = frac * 2^-24. Normalize into a float32.
		e := int32(-14)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= 0x3FF
		return math.Float32frombits(sign | uint32(e+127)<<23 | frac<<13)
	default:
		return math.Float32frombits(sign | (exp+112)<<23 | frac<<13)
	}
}

// Float64 returns x converted to float64. The conversion is exact.
func (x Float16) Float64() float64 { return float64(x.Float32()) }

// IsNaN reports whether x is a NaN.
func (x Float16) IsNaN() bool {
	return uint16(x)&expMask == expMask && uint16(x)&fracMask != 0
}

// IsInf reports whether x is an infinity: positive if sign > 0, negative if
// sign < 0, either if sign == 0.
func (x Float16) IsInf(sign int) bool {
	if uint16(x)&expMask != expMask || uint16(x)&fracMask != 0 {
		return false
	}
	neg := uint16(x)&signMask != 0
	return sign == 0 || (sign > 0 && !neg) || (sign < 0 && neg)
}

// IsFinite reports whether x is neither infinite nor NaN.
func (x Float16) IsFinite() bool { return uint16(x)&expMask != expMask }

// IsZero reports whether x is +0 or -0.
func (x Float16) IsZero() bool { return uint16(x)&^signMask == 0 }

// IsSubnormal reports whether x is subnormal (nonzero with a zero exponent
// field).
func (x Float16) IsSubnormal() bool {
	return uint16(x)&expMask == 0 && uint16(x)&fracMask != 0
}

// Signbit reports whether x is negative or negative zero.
func (x Float16) Signbit() bool { return uint16(x)&signMask != 0 }

// Neg returns -x.
func (x Float16) Neg() Float16 { return x ^ Float16(signMask) }

// Abs returns |x|.
func (x Float16) Abs() Float16 { return x &^ Float16(signMask) }

// Add returns x+y rounded to nearest even. The float64 sum of two fp16
// values is exact (the aligned significands span at most 51 bits), so a
// single rounding occurs.
func Add(x, y Float16) Float16 { return FromFloat64(x.Float64() + y.Float64()) }

// Sub returns x-y rounded to nearest even.
func Sub(x, y Float16) Float16 { return FromFloat64(x.Float64() - y.Float64()) }

// Mul returns x*y rounded to nearest even. The float64 product of two fp16
// values is exact (22 significand bits), so a single rounding occurs.
func Mul(x, y Float16) Float16 { return FromFloat64(x.Float64() * y.Float64()) }

// Div returns x/y. The float64 quotient carries 53 bits, more than the
// 2p+2 = 24 bits required for double rounding to be innocuous for an
// 11-bit target, so the result is correctly rounded.
func Div(x, y Float16) Float16 { return FromFloat64(x.Float64() / y.Float64()) }

// Sqrt returns √x, correctly rounded (same 2p+2 argument as Div).
func Sqrt(x Float16) Float16 { return FromFloat64(math.Sqrt(x.Float64())) }

// FMA returns x*y + z with no rounding of the intermediate product, as the
// CS-1 fused multiply-accumulate does. math.FMA rounds once to float64
// (53 bits ≥ 2p+2), then we round once to fp16; the double rounding is
// innocuous at this precision gap.
func FMA(x, y, z Float16) Float16 {
	return FromFloat64(math.FMA(x.Float64(), y.Float64(), z.Float64()))
}

// MixedFMAC implements the hardware mixed-precision multiply-accumulate:
// the fp16 product x*y is computed exactly (22 bits fit a float32
// significand) and added to the float32 accumulator acc, rounding once in
// float32. This is the primitive behind the CS-1 inner-product instruction.
func MixedFMAC(acc float32, x, y Float16) float32 {
	return acc + x.Float32()*y.Float32()
}

// Less reports whether x < y under IEEE ordering (NaN compares false).
func Less(x, y Float16) bool { return x.Float32() < y.Float32() }

// Eq reports whether x == y under IEEE equality (+0 == -0, NaN != NaN).
func Eq(x, y Float16) bool { return x.Float32() == y.Float32() }

// Min returns the smaller of x and y; if either is NaN it returns NaN.
func Min(x, y Float16) Float16 {
	if x.IsNaN() || y.IsNaN() {
		return NaN
	}
	if Less(y, x) {
		return y
	}
	return x
}

// Max returns the larger of x and y; if either is NaN it returns NaN.
func Max(x, y Float16) Float16 {
	if x.IsNaN() || y.IsNaN() {
		return NaN
	}
	if Less(x, y) {
		return y
	}
	return x
}

// NextUp returns the least Float16 greater than x.
func NextUp(x Float16) Float16 {
	switch {
	case x.IsNaN() || x == PositiveInf:
		return x
	case x.IsZero():
		return Float16(1) // smallest positive subnormal
	case x.Signbit():
		return Float16(uint16(x) - 1)
	default:
		return Float16(uint16(x) + 1)
	}
}

// NextDown returns the greatest Float16 less than x.
func NextDown(x Float16) Float16 { return NextUp(x.Neg()).Neg() }

// ULP returns the unit in the last place of x (the spacing of fp16 values
// at |x|), as a float64. For zero and subnormals it returns 2^-24; for
// infinities and NaN it returns NaN.
func ULP(x Float16) float64 {
	if !x.IsFinite() {
		return math.NaN()
	}
	e := int(uint16(x)>>fracBits) & 0x1F
	if e == 0 {
		return SmallestSubnormal
	}
	return math.Ldexp(1, e-expBias-fracBits)
}

// String formats x using the shortest decimal representation that
// round-trips through float32.
func (x Float16) String() string {
	return strconv.FormatFloat(float64(x.Float32()), 'g', -1, 32)
}

// Parse parses a decimal string into a Float16, rounding to nearest even.
func Parse(s string) (Float16, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return Zero, err
	}
	return FromFloat64(f), nil
}
