package fp16

import (
	"math"
	"testing"
	"testing/quick"
)

// oracle rounds a float64 to fp16 with round-to-nearest-even using an
// independent method (scaling + math.RoundToEven), to cross-check
// FromFloat64's bit manipulation.
func oracle(f float64) Float16 {
	if math.IsNaN(f) {
		return NaN
	}
	sign := Zero
	if math.Signbit(f) {
		sign = NegZero
		f = -f
	}
	if f == 0 {
		return sign
	}
	if math.IsInf(f, 1) {
		return PositiveInf | sign
	}
	// Subnormal range: quantum 2^-24. f*2^24 is exact (power-of-two scale).
	if f < SmallestNormal {
		q := math.RoundToEven(f * 0x1p24)
		if q == 0 {
			return sign
		}
		if q < 1024 {
			return Float16(uint16(q)) | sign
		}
		// Rounds up into the smallest normal.
		return Float16(0x0400) | sign
	}
	// Normal range: find e with f in [2^e, 2^(e+1)).
	e := math.Ilogb(f)
	for {
		scale := math.Ldexp(1, e-10)
		m := math.RoundToEven(f / scale) // f/scale exact: scale is 2^k
		if m >= 2048 {                   // carried into next binade
			e++
			continue
		}
		if e > 15 {
			return PositiveInf | sign
		}
		if m < 1024 { // can happen if Ilogb overshot for values just below 2^e
			e--
			continue
		}
		return Float16(uint16(e+15)<<10|uint16(m)&0x3FF) | sign
	}
}

func TestExhaustiveRoundTrip(t *testing.T) {
	// Every fp16 bit pattern must survive a trip through float32/float64.
	for b := 0; b < 1<<16; b++ {
		x := FromBits(uint16(b))
		if x.IsNaN() {
			if !FromFloat32(x.Float32()).IsNaN() || !FromFloat64(x.Float64()).IsNaN() {
				t.Fatalf("NaN pattern %#04x did not round-trip to NaN", b)
			}
			continue
		}
		if got := FromFloat32(x.Float32()); got != x {
			t.Fatalf("bits %#04x: float32 round-trip gave %#04x", b, got.Bits())
		}
		if got := FromFloat64(x.Float64()); got != x {
			t.Fatalf("bits %#04x: float64 round-trip gave %#04x", b, got.Bits())
		}
	}
}

func TestConversionAgainstOracle(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 2, 65504, 65504.00001, 65519.999,
		65520, 65536, 1e10, -1e10, 0x1p-14, 0x1p-24, 0x1.8p-24, 0x1p-25,
		0x1.0000001p-25, 0x1.ffcp15, 0x1.ffdp15, 0x1.ffep15, 3.14159265,
		2.0 / 3.0, 1e-8, -1e-8, 0x1p-24 * 1.5, 0x1p-24 * 2.5, 0x1p-24 * 3.5,
		1.0009765625, 1.00048828125, // 1+2^-10, 1+2^-11 (tie)
		1.0014648437, 6.1035e-5, 6.0976e-5,
	}
	for _, f := range cases {
		if got, want := FromFloat64(f), oracle(f); got != want {
			t.Errorf("FromFloat64(%g) = %#04x (%v), oracle %#04x (%v)",
				f, got.Bits(), got, want.Bits(), want)
		}
	}
}

func TestConversionAgainstOracleQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 20000}
	// Across the full double range and concentrated near the fp16 range.
	f := func(f float64) bool {
		return FromFloat64(f) == oracle(f) || (math.IsNaN(f) && FromFloat64(f).IsNaN())
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	g := func(mant uint16, exp int8) bool {
		v := math.Ldexp(float64(mant)+0.5, int(exp%32)-20)
		return FromFloat64(v) == oracle(v)
	}
	if err := quick.Check(g, cfg); err != nil {
		t.Error(err)
	}
}

func TestSpecialValues(t *testing.T) {
	if !FromFloat64(math.Inf(1)).IsInf(1) || !FromFloat64(math.Inf(-1)).IsInf(-1) {
		t.Error("infinity conversion failed")
	}
	if !FromFloat64(math.NaN()).IsNaN() {
		t.Error("NaN conversion failed")
	}
	if FromFloat64(65520) != PositiveInf {
		t.Errorf("65520 should round to +Inf, got %v", FromFloat64(65520))
	}
	if FromFloat64(65519.999) != FromFloat64(65504) {
		t.Errorf("65519.999 should round to 65504")
	}
	if got := FromFloat64(0x1p-25); got != Zero {
		t.Errorf("2^-25 ties to even zero, got %#04x", got.Bits())
	}
	if got := FromFloat64(0x1.8p-25); got != Float16(1) {
		t.Errorf("1.5*2^-25 rounds to smallest subnormal, got %#04x", got.Bits())
	}
	if !FromFloat64(math.Copysign(0, -1)).Signbit() {
		t.Error("-0 lost its sign")
	}
	if Add(FromFloat64(1), FromFloat64(-1)) != Zero {
		t.Error("1 + -1 != +0")
	}
}

func TestArithmeticExactness(t *testing.T) {
	// Sums and products of fp16 values are exact in float64, so Add/Mul
	// must agree with a correctly rounded reference. Spot-check identities.
	vals := []Float16{
		FromFloat64(1), FromFloat64(0.5), FromFloat64(3), FromFloat64(-2.25),
		FromFloat64(1e-6), FromFloat64(1024), FromFloat64(0.333251953125),
		FromFloat64(65504), Float16(1), Float16(0x03FF),
	}
	for _, a := range vals {
		for _, b := range vals {
			if Add(a, b) != Add(b, a) {
				t.Fatalf("Add not commutative for %v, %v", a, b)
			}
			if Mul(a, b) != Mul(b, a) {
				t.Fatalf("Mul not commutative for %v, %v", a, b)
			}
			want := oracle(a.Float64() + b.Float64())
			if got := Add(a, b); got != want && !want.IsNaN() {
				t.Fatalf("Add(%v,%v) = %v, want %v", a, b, got, want)
			}
			want = oracle(a.Float64() * b.Float64())
			if got := Mul(a, b); got != want && !want.IsNaN() {
				t.Fatalf("Mul(%v,%v) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestArithmeticProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 5000}
	id := func(b uint16) bool {
		x := FromBits(b)
		if x.IsNaN() {
			return true
		}
		return Add(x, Zero) == x || x.IsZero() // x + 0 = x (except -0+0=+0)
	}
	if err := quick.Check(id, cfg); err != nil {
		t.Errorf("additive identity: %v", err)
	}
	mulID := func(b uint16) bool {
		x := FromBits(b)
		if x.IsNaN() {
			return true
		}
		return Mul(x, One) == x
	}
	if err := quick.Check(mulID, cfg); err != nil {
		t.Errorf("multiplicative identity: %v", err)
	}
	negInv := func(b uint16) bool {
		x := FromBits(b)
		if x.IsNaN() || !x.IsFinite() {
			return true
		}
		return Add(x, x.Neg()).IsZero()
	}
	if err := quick.Check(negInv, cfg); err != nil {
		t.Errorf("x + (-x) = 0: %v", err)
	}
	halfErr := func(b1, b2 uint16) bool {
		x, y := FromBits(b1), FromBits(b2)
		if x.IsNaN() || y.IsNaN() || !x.IsFinite() || !y.IsFinite() {
			return true
		}
		exact := x.Float64() + y.Float64()
		got := Add(x, y).Float64()
		if math.IsInf(got, 0) {
			return math.Abs(exact) > MaxValue
		}
		return math.Abs(got-exact) <= ULP(Add(x, y))/2*(1+1e-12)
	}
	if err := quick.Check(halfErr, cfg); err != nil {
		t.Errorf("Add error exceeds half ULP: %v", err)
	}
}

func TestMonotonicity(t *testing.T) {
	// Conversion must be monotone: f <= g implies fp16(f) <= fp16(g).
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		fa, fb := FromFloat64(a).Float64(), FromFloat64(b).Float64()
		return fa <= fb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestFMA(t *testing.T) {
	// FMA must not round the product: pick a case where rounding the
	// product first gives a different answer.
	// a = 1+2^-10, b = 1+2^-10: a*b = 1 + 2^-9 + 2^-20.
	// Rounded product = 1+2^-9 (tie to even). FMA with c = -1-2^-9 gives
	// 2^-20 if unfused; rounded-product version gives 0.
	a := FromFloat64(1 + 0x1p-10)
	c := FromFloat64(-(1 + 0x1p-9))
	got := FMA(a, a, c)
	want := FromFloat64(0x1p-20)
	if got != want {
		t.Errorf("FMA(1+ε,1+ε,-(1+2ε)) = %v, want %v (product must not round)", got, want)
	}
	if r := Add(Mul(a, a), c); !r.IsZero() {
		t.Errorf("sanity: rounded-product version should be zero, got %v", r)
	}
}

func TestMixedFMAC(t *testing.T) {
	// The fp16 product must enter the float32 accumulator exactly.
	x := FromFloat64(1 + 0x1p-10)
	acc := MixedFMAC(0, x, x)
	want := float32((1 + 0x1p-10) * (1 + 0x1p-10))
	if acc != want {
		t.Errorf("MixedFMAC product not exact: got %g want %g", acc, want)
	}
	// Accumulating many small terms: float32 accumulator retains terms a
	// pure fp16 accumulator would lose (the Figure 9 mechanism).
	xs := make([]Float16, 4096)
	for i := range xs {
		xs[i] = FromFloat64(1.0 / 64)
	}
	ones := make([]Float16, len(xs))
	Fill(ones, One)
	mixed := DotMixed(xs, ones)
	if math.Abs(float64(mixed)-64) > 1e-3 {
		t.Errorf("mixed dot of 4096 * 1/64 = %g, want 64", mixed)
	}
	half := DotHalf(xs, ones)
	if math.Abs(half.Float64()-64) < 1e-6 {
		t.Log("note: fp16 accumulation happened to be exact here")
	}
}

func TestDivSqrt(t *testing.T) {
	if got := Div(One, FromFloat64(3)); got != oracle(1.0/3.0) {
		t.Errorf("1/3 = %v, want %v", got, oracle(1.0/3.0))
	}
	if got := Sqrt(FromFloat64(2)); got != oracle(math.Sqrt2) {
		t.Errorf("sqrt(2) = %v, want %v", got, oracle(math.Sqrt2))
	}
	if !Div(One, Zero).IsInf(1) {
		t.Error("1/0 != +Inf")
	}
	if !Sqrt(FromFloat64(-1)).IsNaN() {
		t.Error("sqrt(-1) != NaN")
	}
}

func TestNextUpDown(t *testing.T) {
	if NextUp(Zero) != Float16(1) {
		t.Error("NextUp(0) is not the smallest subnormal")
	}
	if NextDown(Float16(1)) != Zero {
		t.Error("NextDown(minSub) != 0")
	}
	x := FromFloat64(1)
	if NextUp(x).Float64() != 1+Epsilon {
		t.Errorf("NextUp(1) = %v, want 1+2^-10", NextUp(x))
	}
	if NextUp(FromFloat64(MaxValue)) != PositiveInf {
		t.Error("NextUp(max) != +Inf")
	}
	if NextDown(FromFloat64(-MaxValue)) != NegativeInf {
		t.Error("NextDown(-max) != -Inf")
	}
}

func TestULP(t *testing.T) {
	if ULP(One) != Epsilon {
		t.Errorf("ULP(1) = %g, want %g", ULP(One), Epsilon)
	}
	if ULP(Zero) != SmallestSubnormal {
		t.Errorf("ULP(0) = %g", ULP(Zero))
	}
	if ULP(FromFloat64(2048)) != 2.0 {
		t.Errorf("ULP(2048) = %g, want 2", ULP(FromFloat64(2048)))
	}
}

func TestMinMax(t *testing.T) {
	a, b := FromFloat64(1), FromFloat64(2)
	if Min(a, b) != a || Max(a, b) != b {
		t.Error("Min/Max ordering wrong")
	}
	if !Min(a, NaN).IsNaN() || !Max(NaN, b).IsNaN() {
		t.Error("Min/Max must propagate NaN")
	}
}

func TestStringParse(t *testing.T) {
	for _, s := range []string{"1", "0.5", "-2.25", "65504", "0.0009765625"} {
		x, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		y, err := Parse(x.String())
		if err != nil || y != x {
			t.Errorf("Parse(String(%q)) = %v, %v", s, y, err)
		}
	}
}

func TestSliceConversions(t *testing.T) {
	src := []float64{0, 1, -2.5, 1e-6, 65504}
	h := FromFloat64Slice(src)
	back := ToFloat64Slice(h)
	for i, v := range src {
		if got, want := back[i], FromFloat64(v).Float64(); got != want {
			t.Errorf("slice round-trip [%d]: %g != %g", i, got, want)
		}
	}
	f32 := ToFloat32Slice(h)
	h2 := FromFloat32Slice(f32)
	for i := range h {
		if h[i] != h2[i] {
			t.Errorf("float32 slice round-trip [%d]", i)
		}
	}
}

func TestAxpySlice(t *testing.T) {
	x := FromFloat64Slice([]float64{1, 2, 3, 4})
	y := FromFloat64Slice([]float64{10, 20, 30, 40})
	Axpy(FromFloat64(2), x, y)
	want := []float64{12, 24, 36, 48}
	for i := range y {
		if y[i].Float64() != want[i] {
			t.Errorf("Axpy[%d] = %v, want %g", i, y[i], want[i])
		}
	}
}

func BenchmarkFromFloat64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = FromFloat64(3.14159 * float64(i&0xFF))
	}
}

func BenchmarkMixedDot(b *testing.B) {
	x := make([]Float16, 1536)
	for i := range x {
		x[i] = FromFloat64(float64(i%7) * 0.125)
	}
	b.SetBytes(int64(len(x) * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DotMixed(x, x)
	}
}
