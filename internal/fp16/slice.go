package fp16

// Slice helpers used throughout the kernels: bulk conversion between fp16
// storage and the float32/float64 staging formats, plus elementwise
// reductions with the accumulation semantics of the hardware.

// FromFloat64Slice converts src elementwise, rounding each value to fp16.
func FromFloat64Slice(src []float64) []Float16 {
	dst := make([]Float16, len(src))
	for i, v := range src {
		dst[i] = FromFloat64(v)
	}
	return dst
}

// FromFloat32Slice converts src elementwise, rounding each value to fp16.
func FromFloat32Slice(src []float32) []Float16 {
	dst := make([]Float16, len(src))
	for i, v := range src {
		dst[i] = FromFloat32(v)
	}
	return dst
}

// ToFloat64Slice converts src elementwise; the conversion is exact.
func ToFloat64Slice(src []Float16) []float64 {
	dst := make([]float64, len(src))
	for i, v := range src {
		dst[i] = v.Float64()
	}
	return dst
}

// ToFloat32Slice converts src elementwise; the conversion is exact.
func ToFloat32Slice(src []Float16) []float32 {
	dst := make([]float32, len(src))
	for i, v := range src {
		dst[i] = v.Float32()
	}
	return dst
}

// DotMixed computes the inner product of x and y with the CS-1 hardware
// semantics: exact fp16×fp16 products accumulated sequentially in float32.
func DotMixed(x, y []Float16) float32 {
	var acc float32
	for i := range x {
		acc = MixedFMAC(acc, x[i], y[i])
	}
	return acc
}

// DotHalf computes the inner product entirely in fp16: products and
// accumulation both round to fp16 at every step. It exists so the benches
// can quantify what the mixed accumulate buys (a Figure 9 ablation).
func DotHalf(x, y []Float16) Float16 {
	acc := Zero
	for i := range x {
		acc = FMA(x[i], y[i], acc)
	}
	return acc
}

// Axpy computes y[i] = y[i] + a*x[i] in fp16 with a single rounding per
// element (fused multiply-accumulate), the semantics of the CS-1 SIMD-4
// AXPY instruction.
func Axpy(a Float16, x, y []Float16) {
	for i := range x {
		y[i] = FMA(a, x[i], y[i])
	}
}

// MulEl computes dst[i] = a[i] * b[i] in fp16.
func MulEl(dst, a, b []Float16) {
	for i := range dst {
		dst[i] = Mul(a[i], b[i])
	}
}

// AddEl computes dst[i] = a[i] + b[i] in fp16.
func AddEl(dst, a, b []Float16) {
	for i := range dst {
		dst[i] = Add(a[i], b[i])
	}
}

// Fill sets every element of dst to v.
func Fill(dst []Float16, v Float16) {
	for i := range dst {
		dst[i] = v
	}
}
