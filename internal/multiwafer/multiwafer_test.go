package multiwafer

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/fp16"
	"repro/internal/kernels"
	"repro/internal/solver"
	"repro/internal/stencil"
)

// testProblem builds a normalized momentum-like system with a random
// exact solution, returning the half operator, the fp16 rhs, and the
// float64 scaled rhs (for true-residual checks).
func testProblem(t *testing.T, nx, ny, nz int, seed int64) (*stencil.Op7Half, *stencil.Op7, []fp16.Float16, []float64) {
	t.Helper()
	m := stencil.Mesh{NX: nx, NY: ny, NZ: nz}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	rng := rand.New(rand.NewSource(seed))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.Float64()
	}
	b := make([]float64, m.N())
	op.Apply(b, xe)
	norm, diag := op.Normalize()
	sb := stencil.ScaleRHS(b, diag)
	return stencil.NewOp7Half(norm), norm, fp16.FromFloat64Slice(sb), sb
}

func solveOn(t *testing.T, grid Topology, workers int, h *stencil.Op7Half, b []fp16.Float16, iters int) ([]fp16.Float16, Stats) {
	t.Helper()
	c, err := New(Config{Grid: grid, Workers: workers}, h)
	if err != nil {
		t.Fatalf("grid %v: %v", grid, err)
	}
	defer c.Close()
	x, st, err := c.Solve(b, kernels.WSEOptions{MaxIter: iters})
	if err != nil {
		t.Fatalf("grid %v: %v", grid, err)
	}
	return x, st
}

// TestSolveBitIdenticalAcrossWaferCounts is the package's determinism
// contract at small scale: 1, 2 and 4 wafers (including an uneven
// split) and both simulation engines produce bit-identical residual
// histories and solutions.
func TestSolveBitIdenticalAcrossWaferCounts(t *testing.T) {
	h, _, b, _ := testProblem(t, 6, 6, 8, 3)
	refX, refSt := solveOn(t, Topology{1, 1}, 1, h, b, 4)
	if len(refSt.History) == 0 {
		t.Fatal("no residual history recorded")
	}
	for _, tc := range []struct {
		grid    Topology
		workers int
	}{
		{Topology{2, 1}, 1},
		{Topology{1, 2}, 1},
		{Topology{2, 2}, 1},
		{Topology{3, 1}, 1}, // uneven: 6 columns over 3 wafers of width 2
		{Topology{2, 2}, 4}, // sharded engine
		{Topology{1, 1}, 4},
	} {
		x, st := solveOn(t, tc.grid, tc.workers, h, b, 4)
		if len(st.History) != len(refSt.History) {
			t.Fatalf("grid %v workers %d: %d iterations, want %d", tc.grid, tc.workers, len(st.History), len(refSt.History))
		}
		for i := range st.History {
			if st.History[i] != refSt.History[i] {
				t.Fatalf("grid %v workers %d: history[%d] = %.17g, want %.17g",
					tc.grid, tc.workers, i, st.History[i], refSt.History[i])
			}
		}
		for i := range x {
			if x[i] != refX[i] {
				t.Fatalf("grid %v workers %d: x[%d] = %04x, want %04x", tc.grid, tc.workers, i, x[i].Bits(), refX[i].Bits())
			}
		}
	}
}

// TestSolveConverges checks the physics: the fp16 iterate actually
// solves the system to fp16-plateau accuracy on a 2×2 wafer grid.
func TestSolveConverges(t *testing.T) {
	h, norm, b, sb := testProblem(t, 6, 6, 8, 7)
	c, err := New(Config{Grid: Topology{2, 2}}, h)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	x, st, err := c.Solve(b, kernels.WSEOptions{MaxIter: 25, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	tr := kernels.SolutionResidual(norm, x, sb)
	if tr > 2e-2 {
		t.Errorf("true residual %.3e, want fp16-plateau accuracy", tr)
	}
	if len(st.History) < 2 || st.History[len(st.History)-1] >= st.History[0] {
		t.Errorf("residual did not decrease: %v", st.History)
	}
}

// TestCycleAccounting pins the shape of the cycle account: the
// inter-wafer costs are zero on one wafer and positive on several; the
// on-wafer phases are positive everywhere; and a larger grid pays less
// AllReduce per wafer (smaller fabrics) but positive edge I/O.
func TestCycleAccounting(t *testing.T) {
	h, _, b, _ := testProblem(t, 8, 8, 8, 5)
	_, one := solveOn(t, Topology{1, 1}, 1, h, b, 3)
	_, four := solveOn(t, Topology{2, 2}, 1, h, b, 3)

	if one.Cycles.EdgeIO != 0 || one.Cycles.Combine != 0 {
		t.Errorf("single wafer charged inter-wafer cycles: %+v", one.Cycles)
	}
	if four.Cycles.EdgeIO == 0 || four.Cycles.Combine == 0 {
		t.Errorf("2x2 grid charged no inter-wafer cycles: %+v", four.Cycles)
	}
	for _, st := range []Stats{one, four} {
		if st.Cycles.SpMV == 0 || st.Cycles.Dot == 0 || st.Cycles.AllReduce == 0 || st.Cycles.Axpy == 0 {
			t.Errorf("missing simulated phase cycles: %+v", st.Cycles)
		}
	}
	if four.Cycles.AllReduce >= one.Cycles.AllReduce {
		t.Errorf("4×4-tile wafers should reduce faster than the 8×8 wafer: %d vs %d",
			four.Cycles.AllReduce, one.Cycles.AllReduce)
	}
	if one.PerIteration.Total() <= 0 {
		t.Errorf("per-iteration account empty: %+v", one.PerIteration)
	}
}

// TestBackendSeam runs the same problem through solver.Backend3D on the
// host and the wafer cluster: both must converge, and the multiwafer
// backend must expose the solve's cycle account via Stats.
func TestBackendSeam(t *testing.T) {
	_, norm, _, sb := testProblem(t, 4, 4, 8, 11)
	x0 := make([]float64, len(sb))
	opts := solver.Options{MaxIter: 20, Tol: 1e-3, RecordHistory: true}

	hx, hst, err := solver.HostBackend3D{}.Solve3D(norm, sb, x0, opts)
	if err != nil {
		t.Fatal(err)
	}
	be := &Backend{Grid: Topology{2, 1}}
	if _, ok := be.Stats(); ok {
		t.Error("Stats reported a solve before any ran")
	}
	wx, wst, err := be.Solve3D(norm, sb, x0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hst.Converged {
		t.Errorf("host backend did not converge: %+v", hst)
	}
	mwStats, ok := be.Stats()
	if !ok || len(wst.History) == 0 || mwStats.Cycles.Total() == 0 {
		t.Errorf("multiwafer stats not populated: %+v / %+v", wst, mwStats)
	}
	hr := norm.ResidualNorm(hx, sb) / stencil.Norm2(sb)
	wr := norm.ResidualNorm(wx, sb) / stencil.Norm2(sb)
	if hr > 1e-3 || wr > 2e-2 {
		t.Errorf("residuals: host %.3e (want <1e-3), wafer %.3e (want fp16 plateau)", hr, wr)
	}
	if be.Name() != "multiwafer/2x1" {
		t.Errorf("backend name = %q", be.Name())
	}

	// Guard rails.
	if _, _, err := be.Solve3D(norm, sb, []float64{1}, opts); err == nil {
		t.Error("nonzero x0 accepted")
	}
	raw := stencil.Poisson(stencil.Mesh{NX: 4, NY: 4, NZ: 8}, 1)
	if _, _, err := be.Solve3D(raw, sb, x0, opts); err == nil {
		t.Error("non-normalized operator accepted")
	}
	if _, _, err := be.Solve3D(norm, sb, x0, solver.Options{MaxIter: 2, Resume: []byte{1}}); err == nil {
		t.Error("checkpoint/resume options accepted (single-wafer only)")
	}
}

// TestBackendStatsConcurrent hammers Stats while two Solve3D calls run
// on the same Backend: the mutex-guarded accessor must stay race-free
// (the old exported LastStats pointer field was not) — this test exists
// to fail under -race if that regresses.
func TestBackendStatsConcurrent(t *testing.T) {
	_, norm, _, sb := testProblem(t, 4, 4, 8, 11)
	x0 := make([]float64, len(sb))
	opts := solver.Options{MaxIter: 4, RecordHistory: true}
	be := &Backend{Grid: Topology{2, 1}}

	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				if st, ok := be.Stats(); ok && st.Iterations == 0 {
					t.Error("Stats returned a populated-but-empty account")
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := be.Solve3D(norm, sb, x0, opts); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	close(done)
	if st, ok := be.Stats(); !ok || st.Iterations == 0 {
		t.Errorf("Stats not populated after concurrent solves: %+v (ok=%v)", st, ok)
	}
}

// TestExactCombineMatchesExactSum cross-checks the two-level dot
// against cluster.ExactSum32 directly: the solve's bnorm² must equal
// the exactly rounded sum of per-tile DotMixed partials computed on the
// host.
func TestExactCombineMatchesExactSum(t *testing.T) {
	h, _, b, _ := testProblem(t, 4, 4, 8, 13)
	m := h.M
	// Host image of the per-tile partials, in global order.
	var parts []float32
	for gy := 0; gy < m.NY; gy++ {
		for gx := 0; gx < m.NX; gx++ {
			var acc float32
			for z := 0; z < m.NZ; z++ {
				v := b[m.Index(gx, gy, z)]
				acc = fp16.MixedFMAC(acc, v, v)
			}
			parts = append(parts, acc)
		}
	}
	want := cluster.ExactSum32(parts)

	c, err := New(Config{Grid: Topology{2, 2}}, h)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Solve(b, kernels.WSEOptions{MaxIter: 1}); err != nil {
		t.Fatal(err)
	}
	// Recompute through the cluster's own reduction path.
	var cycles PhaseCycles
	// Reload r0 = b (Solve left r0 in place; dot it directly).
	got, err := c.dot(&cycles, func(wf *wafer) ([]int, []int) { return wf.offR0, wf.offR0 })
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("two-level dot = %.17g, host exact sum = %.17g", got, want)
	}
}

// TestParseTopology covers the cmd/wsesim flag syntax.
func TestParseTopology(t *testing.T) {
	if g, err := ParseTopology("2x3"); err != nil || g != (Topology{2, 3}) {
		t.Errorf("ParseTopology(2x3) = %v, %v", g, err)
	}
	for _, bad := range []string{"", "2", "0x1", "2x0", "-1x2", "axb", "2x2x4", "2x1junk", " 2x1", "2x1 "} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q) accepted", bad)
		}
	}
}

// TestNewRejects covers constructor error branches.
func TestNewRejects(t *testing.T) {
	m := stencil.Mesh{NX: 2, NY: 2, NZ: 8}
	norm, _ := stencil.Poisson(m, 1).Normalize()
	h := stencil.NewOp7Half(norm)
	if _, err := New(Config{Grid: Topology{3, 1}}, h); err == nil {
		t.Error("grid wider than mesh accepted")
	}
	modd := stencil.Mesh{NX: 4, NY: 4, NZ: 5}
	nodd, _ := stencil.Poisson(modd, 1).Normalize()
	if _, err := New(Config{Grid: Topology{2, 1}}, stencil.NewOp7Half(nodd)); err == nil {
		t.Error("odd Z accepted")
	}
}

// TestCloseReleasesGoroutines pins pool hygiene across a multi-machine
// cluster with sharded engines.
func TestCloseReleasesGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	h, _, b, _ := testProblem(t, 4, 4, 8, 17)
	c, err := New(Config{Grid: Topology{2, 2}, Workers: 4}, h)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Solve(b, kernels.WSEOptions{MaxIter: 2}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Errorf("goroutines: %d before, %d after Close", before, g)
	}
}

// TestInterconnectModel pins the transfer-time arithmetic the cycle
// account and perfmodel projections share.
func TestInterconnectModel(t *testing.T) {
	ic := DefaultInterconnect()
	if got := ic.TransferSeconds(0); got != ic.LatencySec {
		t.Errorf("zero-byte transfer = %g, want latency %g", got, ic.LatencySec)
	}
	// 1.2 Tb/s moves 150 GB/s: 1.5e11 bytes in one second plus latency.
	sec := ic.TransferSeconds(150e9)
	if math.Abs(sec-(1+ic.LatencySec)) > 1e-9 {
		t.Errorf("150 GB transfer = %g s, want ~1 s", sec)
	}
}
