package multiwafer

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/fp16"
	"repro/internal/kernels"
	"repro/internal/tensor"
	"repro/internal/wse"
)

// PhaseCycles breaks one iteration's cycle account into the kernel
// classes of the single-wafer solver plus the two inter-wafer costs.
// Simulated phases (SpMV, Dot, AllReduce, Axpy) charge the maximum over
// wafers — the wafers run in lockstep and the slowest gates the phase;
// EdgeIO and Combine convert the interconnect model's seconds to cycles
// at the wafer clock.
type PhaseCycles struct {
	SpMV      int64 // two halo-resident SpMV applications
	EdgeIO    int64 // inter-wafer halo transfers feeding those SpMVs
	Dot       int64 // four local mixed-precision dots
	AllReduce int64 // four on-wafer (level one) reductions
	Combine   int64 // four host-side exact combines + scalar re-broadcast
	Axpy      int64 // six AXPY-class vector updates
}

// Total returns the cycle sum.
func (p PhaseCycles) Total() int64 {
	return p.SpMV + p.EdgeIO + p.Dot + p.AllReduce + p.Combine + p.Axpy
}

// Communication returns the cycles spent off the local tile datapaths:
// on-wafer reduction plus everything that crossed a wafer edge.
func (p PhaseCycles) Communication() int64 { return p.EdgeIO + p.AllReduce + p.Combine }

// Stats reports a multiwafer solve.
type Stats struct {
	Wafers     int
	Iterations int
	Converged  bool
	Breakdown  string
	// History is the per-iteration relative residual ‖r‖₂/‖b‖₂, diagnosed
	// in float64 in canonical global mesh order — bit-identical across
	// wafer counts and engines.
	History []float64
	// Cycles accumulates the per-phase account across all iterations;
	// PerIteration is the mean per iteration. The setup ‖b‖² dot is
	// excluded (see SetupCycles), as in the single-wafer engine.
	Cycles       PhaseCycles
	PerIteration PhaseCycles
	// SetupCycles is the one-time ‖b‖² dot + reduction before the first
	// iteration, kept out of Cycles/PerIteration so per-iteration
	// numbers match the paper's steady-state model.
	SetupCycles int64
}

// Seconds converts a cycle count to wall clock at the wafer clock rate.
func (c *Cluster) Seconds(cycles int64) float64 {
	return float64(cycles) / c.wafers[0].mach.Cfg.ClockHz
}

// clockHz returns the (shared) wafer clock.
func (c *Cluster) clockHz() float64 { return c.wafers[0].mach.Cfg.ClockHz }

// secondsToCycles converts interconnect seconds to wafer cycles,
// rounding up (a partial cycle still blocks the next phase).
func (c *Cluster) secondsToCycles(sec float64) int64 {
	return int64(math.Ceil(sec * c.clockHz()))
}

// Solve runs BiCGStab for the mesh-indexed right-hand side bvec with a
// zero initial guess, returning the solution, statistics, and the
// residual history the determinism contract covers.
func (c *Cluster) Solve(bvec []fp16.Float16, opts kernels.WSEOptions) ([]fp16.Float16, Stats, error) {
	m := c.Mesh
	if len(bvec) != m.N() {
		return nil, Stats{}, fmt.Errorf("multiwafer: rhs length %d, want %d", len(bvec), m.N())
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 100
	}
	z := m.NZ
	st := Stats{Wafers: c.Wafers()}

	// Initialize: x = 0, r = r0 = p = b.
	for _, wf := range c.wafers {
		for i, t := range wf.mach.Tiles {
			a := t.Arena
			gx, gy := wf.spmv.GlobalCoord(i)
			for e := 0; e < z; e++ {
				v := bvec[m.Index(gx, gy, e)]
				a.Set(wf.offX[i]+e, fp16.Zero)
				a.Set(wf.offR0[i]+e, v)
				a.Set(wf.offR[i]+e, v)
				a.Set(wf.offP[i]+e, v)
			}
		}
	}

	// ‖b‖² is setup: accounted separately, outside the per-iteration
	// cycle model (as in the single-wafer engine).
	var setup PhaseCycles
	bb, err := c.dot(&setup, func(wf *wafer) ([]int, []int) { return wf.offR0, wf.offR0 })
	if err != nil {
		return nil, st, err
	}
	st.SetupCycles = setup.Total()
	bnorm := math.Sqrt(bb)
	if bnorm == 0 {
		return nil, st, fmt.Errorf("multiwafer: zero right-hand side")
	}
	rho := bb // (r0, r0)

	finish := func() ([]fp16.Float16, Stats, error) {
		if st.Iterations > 0 {
			it := int64(st.Iterations)
			st.PerIteration = PhaseCycles{
				SpMV: st.Cycles.SpMV / it, EdgeIO: st.Cycles.EdgeIO / it,
				Dot: st.Cycles.Dot / it, AllReduce: st.Cycles.AllReduce / it,
				Combine: st.Cycles.Combine / it, Axpy: st.Cycles.Axpy / it,
			}
		}
		out := make([]fp16.Float16, len(bvec))
		for _, wf := range c.wafers {
			for i, t := range wf.mach.Tiles {
				gx, gy := wf.spmv.GlobalCoord(i)
				for e := 0; e < z; e++ {
					out[m.Index(gx, gy, e)] = t.Arena.At(wf.offX[i] + e)
				}
			}
		}
		return out, st, nil
	}

	for it := 0; it < opts.MaxIter; it++ {
		// Cancellation unwinds here, between iterations, while every
		// wafer is idle — the cluster stays reusable (Solve re-inits all
		// solver vectors on entry).
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, st, fmt.Errorf("multiwafer: solve canceled: %w", err)
			}
		}
		st.Iterations = it + 1

		// s := A p
		if err := c.spmv(&st.Cycles, func(wf *wafer) ([]int, []int) { return wf.offP, wf.offS }); err != nil {
			return nil, st, err
		}
		// α := (r0, r) / (r0, s)
		r0s, err := c.dot(&st.Cycles, func(wf *wafer) ([]int, []int) { return wf.offR0, wf.offS })
		if err != nil {
			return nil, st, err
		}
		if r0s == 0 {
			st.Breakdown = "r0·Ap = 0"
			return finish()
		}
		alpha := rho / r0s

		// q := r − α s
		c.runAxpy(&st.Cycles, func(wf *wafer, i int) wse.Instr {
			return &wse.MemOp{Kind: wse.OpFMA, Arena: wf.mach.Tiles[i].Arena, S: fp16.FromFloat64(-alpha),
				Dst: tensor.Vec1D(wf.offQ[i], z), A: tensor.Vec1D(wf.offS[i], z), B: tensor.Vec1D(wf.offR[i], z)}
		})

		// y := A q
		if err := c.spmv(&st.Cycles, func(wf *wafer) ([]int, []int) { return wf.offQ, wf.offY }); err != nil {
			return nil, st, err
		}
		// ω := (q, y) / (y, y)
		qy, err := c.dot(&st.Cycles, func(wf *wafer) ([]int, []int) { return wf.offQ, wf.offY })
		if err != nil {
			return nil, st, err
		}
		yy, err := c.dot(&st.Cycles, func(wf *wafer) ([]int, []int) { return wf.offY, wf.offY })
		if err != nil {
			return nil, st, err
		}
		if yy == 0 {
			c.runAxpy(&st.Cycles, func(wf *wafer, i int) wse.Instr {
				return &wse.MemOp{Kind: wse.OpAxpy, Arena: wf.mach.Tiles[i].Arena, S: fp16.FromFloat64(alpha),
					Dst: tensor.Vec1D(wf.offX[i], z), A: tensor.Vec1D(wf.offP[i], z)}
			})
			st.Breakdown = "y·y = 0"
			return finish()
		}
		omega := qy / yy

		// x := x + α p + ω q
		c.runAxpy(&st.Cycles, func(wf *wafer, i int) wse.Instr {
			return &wse.MemOp{Kind: wse.OpAxpy, Arena: wf.mach.Tiles[i].Arena, S: fp16.FromFloat64(alpha),
				Dst: tensor.Vec1D(wf.offX[i], z), A: tensor.Vec1D(wf.offP[i], z)}
		})
		c.runAxpy(&st.Cycles, func(wf *wafer, i int) wse.Instr {
			return &wse.MemOp{Kind: wse.OpAxpy, Arena: wf.mach.Tiles[i].Arena, S: fp16.FromFloat64(omega),
				Dst: tensor.Vec1D(wf.offX[i], z), A: tensor.Vec1D(wf.offQ[i], z)}
		})
		// r := q − ω y
		c.runAxpy(&st.Cycles, func(wf *wafer, i int) wse.Instr {
			return &wse.MemOp{Kind: wse.OpFMA, Arena: wf.mach.Tiles[i].Arena, S: fp16.FromFloat64(-omega),
				Dst: tensor.Vec1D(wf.offR[i], z), A: tensor.Vec1D(wf.offY[i], z), B: tensor.Vec1D(wf.offQ[i], z)}
		})

		rel := c.residualNorm() / bnorm
		st.History = append(st.History, rel)
		if opts.Progress != nil {
			opts.Progress(len(st.History), rel)
		}
		if opts.Tol > 0 && rel <= opts.Tol {
			st.Converged = true
			return finish()
		}

		// β := (α/ω) (r0, r_new)/(r0, r_old)
		rr, err := c.dot(&st.Cycles, func(wf *wafer) ([]int, []int) { return wf.offR0, wf.offR })
		if err != nil {
			return nil, st, err
		}
		if rho == 0 || omega == 0 {
			st.Breakdown = "rho or omega = 0"
			return finish()
		}
		beta := (alpha / omega) * (rr / rho)
		rho = rr

		// p := r + β (p − ω s)
		c.runAxpy(&st.Cycles, func(wf *wafer, i int) wse.Instr {
			return &wse.MemOp{Kind: wse.OpAxpy, Arena: wf.mach.Tiles[i].Arena, S: fp16.FromFloat64(-omega),
				Dst: tensor.Vec1D(wf.offP[i], z), A: tensor.Vec1D(wf.offS[i], z)}
		})
		c.runAxpy(&st.Cycles, func(wf *wafer, i int) wse.Instr {
			return &wse.MemOp{Kind: wse.OpXPAY, Arena: wf.mach.Tiles[i].Arena, S: fp16.FromFloat64(beta),
				Dst: tensor.Vec1D(wf.offP[i], z), A: tensor.Vec1D(wf.offR[i], z)}
		})
	}
	st.Converged = opts.Tol > 0 && len(st.History) > 0 && st.History[len(st.History)-1] <= opts.Tol
	return finish()
}

// runPhase runs one instruction per tile on wafer wf and returns the
// simulated cycles until all complete.
func (c *Cluster) runPhase(wf *wafer, build func(i int) wse.Instr) int64 {
	for i, t := range wf.mach.Tiles {
		wf.phaseDone[i] = false
		wf.phaseTask[i].Instrs = []wse.Instr{build(i)}
		t.Core.Activate(wf.phaseTask[i])
	}
	cycles, err := wf.mach.RunUntil(func() bool {
		for _, d := range wf.phaseDone {
			if !d {
				return false
			}
		}
		return true
	}, 1<<24)
	if err != nil {
		panic(err) // local instructions cannot wedge; a failure is a simulator bug
	}
	return cycles
}

// runAxpy runs one AXPY-class phase on every wafer, charging the
// slowest wafer's cycles.
func (c *Cluster) runAxpy(acc *PhaseCycles, build func(wf *wafer, i int) wse.Instr) {
	var maxCyc int64
	for _, wf := range c.wafers {
		wf := wf
		cyc := c.runPhase(wf, func(i int) wse.Instr { return build(wf, i) })
		if cyc > maxCyc {
			maxCyc = cyc
		}
	}
	acc.Axpy += maxCyc
}

// spmv applies the operator: per wafer, the source vector is re-aliased
// into the SpMV iterate (free, as in the single-wafer solver), the host
// ships inter-wafer halo columns bit-verbatim and charges the edge-I/O
// model, and each wafer cycle-simulates its halo-resident application.
func (c *Cluster) spmv(acc *PhaseCycles, sel func(wf *wafer) (src, dst []int)) error {
	z := c.Mesh.NZ
	for _, wf := range c.wafers {
		src, _ := sel(wf)
		for i := range wf.mach.Tiles {
			copy(wf.spmv.Iterate(i), wf.mach.Tiles[i].Arena.Slice(src[i], z))
		}
	}
	acc.EdgeIO += c.exchangeHalos()
	var maxCyc int64
	for _, wf := range c.wafers {
		cyc, err := wf.spmv.Run(int64(z)*1000 + 1<<20)
		if err != nil {
			return err
		}
		if cyc > maxCyc {
			maxCyc = cyc
		}
	}
	acc.SpMV += maxCyc
	for _, wf := range c.wafers {
		_, dst := sel(wf)
		for i := range wf.mach.Tiles {
			copy(wf.mach.Tiles[i].Arena.Slice(dst[i], z), wf.spmv.Result(i))
		}
	}
	return nil
}

// exchangeHalos copies boundary iterate columns between adjacent
// wafers and returns the modelled edge-I/O cycles: per wafer the four
// faces transfer concurrently (each face is its own I/O complex), so a
// wafer waits for its largest face, and the cluster waits for the
// slowest wafer.
func (c *Cluster) exchangeHalos() int64 {
	z := c.Mesh.NZ
	var worst float64
	for _, wf := range c.wafers {
		var waferSec float64
		for d := kernels.HaloDir(0); d < kernels.NumHaloDirs; d++ {
			nb := wf.neighbor[d]
			if nb == nil {
				continue
			}
			n := c.copyFace(wf, nb, d)
			sec := c.Cfg.Interconnect.TransferSeconds(n * z * 2) // fp16 = 2 bytes
			if sec > waferSec {
				waferSec = sec
			}
		}
		if waferSec > worst {
			worst = waferSec
		}
	}
	if worst == 0 {
		return 0
	}
	return c.secondsToCycles(worst)
}

// copyFace fills wf's halo columns along direction d from neighbour
// wafer nb's boundary iterate columns, returning the column count.
func (c *Cluster) copyFace(wf, nb *wafer, d kernels.HaloDir) int {
	count := 0
	for i := range wf.mach.Tiles {
		gx, gy := wf.spmv.GlobalCoord(i)
		switch d {
		case kernels.HaloXP:
			gx++
		case kernels.HaloXM:
			gx--
		case kernels.HaloYP:
			gy++
		case kernels.HaloYM:
			gy--
		}
		if gx < nb.x0 || gx >= nb.x0+nb.w || gy < nb.y0 || gy >= nb.y0+nb.h {
			continue // not a boundary tile for this face
		}
		ti := (gy-nb.y0)*nb.w + (gx - nb.x0)
		copy(wf.spmv.Halo(i, d), nb.spmv.Iterate(ti))
		count++
	}
	return count
}

// dot runs the two-level reduction: per-tile mixed-precision dots
// (level zero, simulated), the on-wafer Figure 6 AllReduce over each
// wafer's partials (level one, simulated), then the host's exactly
// rounded combine of every tile's partial in canonical global order
// (level two, charged as scalar edge-I/O hops). The returned value is
// the level-two result — independent of the decomposition, which is
// what keeps residual histories bit-identical across wafer counts.
func (c *Cluster) dot(acc *PhaseCycles, sel func(wf *wafer) (a, b []int)) (float64, error) {
	z := c.Mesh.NZ
	var maxDot int64
	for _, wf := range c.wafers {
		wf := wf
		a, b := sel(wf)
		cyc := c.runPhase(wf, func(i int) wse.Instr {
			wf.partial[i] = 0
			return &wse.DotMixed{
				A: tensor.Vec1D(a[i], z), B: tensor.Vec1D(b[i], z),
				Arena: wf.mach.Tiles[i].Arena, Out: &wf.partial[i],
			}
		})
		if cyc > maxDot {
			maxDot = cyc
		}
	}
	acc.Dot += maxDot

	var maxAR int64
	for _, wf := range c.wafers {
		res, err := wf.ar.Run(wf.partial, 1<<20)
		if err != nil {
			return 0, err
		}
		// res.Sum — the level-one on-wafer float32 value — is diagnostic
		// only; the solve consumes the exact level-two combine below.
		if res.Cycles > maxAR {
			maxAR = res.Cycles
		}
	}
	acc.AllReduce += maxAR

	vals := make([]float32, len(c.order))
	for k, wt := range c.order {
		vals[k] = c.wafers[wt[0]].partial[wt[1]]
	}
	if c.Wafers() > 1 {
		hops := c.Cfg.Grid.W + c.Cfg.Grid.H - 2
		sec := 2 * c.Cfg.Interconnect.TransferSeconds(4) * float64(hops)
		acc.Combine += c.secondsToCycles(sec)
	}
	return cluster.ExactSum32(vals), nil
}

// residualNorm computes ‖r‖₂ in float64, accumulating in canonical
// global mesh order (diagnostic; decomposition-invariant).
func (c *Cluster) residualNorm() float64 {
	z := c.Mesh.NZ
	var s float64
	for _, wt := range c.order {
		wf := c.wafers[wt[0]]
		i := int(wt[1])
		a := wf.mach.Tiles[i].Arena
		off := wf.offR[i]
		for e := 0; e < z; e++ {
			v := a.At(off + e).Float64()
			s += v * v
		}
	}
	return math.Sqrt(s)
}
