package multiwafer

import (
	"math"
	"testing"

	"repro/internal/kernels"
)

// TestClusterWarmReuseBitIdentical pins the machine-cache contract for
// the multiwafer backend: a cluster that already ran one solve, handed
// a new operator via LoadCoeff, produces exactly the bits a freshly
// built cluster produces. The halo SpMV's fixed program order and the
// exact two-level combine make this hold with no machine reset.
func TestClusterWarmReuseBitIdentical(t *testing.T) {
	opA, _, b, _ := testProblem(t, 6, 6, 8, 3)
	opB, _, _, _ := testProblem(t, 6, 6, 8, 17)
	grid := Topology{W: 2, H: 1}
	const iters = 4

	refX, refSt := solveOn(t, grid, 1, opB, b, iters)

	warm, err := New(Config{Grid: grid, Workers: 1}, opA)
	if err != nil {
		t.Fatal(err)
	}
	defer warm.Close()
	if _, _, err := warm.Solve(b, kernels.WSEOptions{MaxIter: 2}); err != nil {
		t.Fatal(err)
	}
	if err := warm.LoadCoeff(opB); err != nil {
		t.Fatal(err)
	}
	gotX, gotSt, err := warm.Solve(b, kernels.WSEOptions{MaxIter: iters})
	if err != nil {
		t.Fatal(err)
	}

	if len(gotSt.History) != len(refSt.History) {
		t.Fatalf("warm solve: %d history entries, cold has %d", len(gotSt.History), len(refSt.History))
	}
	for i := range refSt.History {
		if math.Float64bits(gotSt.History[i]) != math.Float64bits(refSt.History[i]) {
			t.Fatalf("history[%d] = %.17g after reuse, cold cluster has %.17g",
				i, gotSt.History[i], refSt.History[i])
		}
	}
	for i := range refX {
		if gotX[i] != refX[i] {
			t.Fatalf("x[%d] = %v after reuse, cold cluster has %v", i, gotX[i], refX[i])
		}
	}

	opWrong, _, _, _ := testProblem(t, 6, 6, 10, 3)
	if err := warm.LoadCoeff(opWrong); err == nil {
		t.Fatal("LoadCoeff accepted an operator for a different mesh")
	}
}
