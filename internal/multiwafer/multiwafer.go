// Package multiwafer composes several cycle-simulated wafers
// (wse.Machine instances) into a cluster that solves one 3D stencil
// system — the scale-out direction the paper closes with: if one CS-1
// replaces a cluster of CPU nodes, a cluster of CS-1s coupled through
// their 1.2 Tb/s edge I/O is the next rung.
//
// A W×H wafer grid block-partitions the mesh's X×Y extent (the Z
// columns stay tile-local, as in the paper's 3D mapping); each wafer
// simulates its sub-extent with the halo-resident SpMV
// (kernels.SpMV3DHalo). Three kinds of coupling cross wafer edges, all
// through a host-side interconnect model that charges latency plus
// bytes over the per-edge bandwidth and converts to cycles at the wafer
// clock:
//
//   - halo exchange: before each SpMV, boundary iterate columns are
//     copied bit-verbatim into the neighbouring wafer's halo storage;
//   - dot reduction, level two: each wafer reduces its per-tile
//     mixed-precision dot partials with the on-wafer Figure 6 AllReduce
//     (cycle-simulated), and the host then combines the partials of all
//     wafers into one exactly rounded float64 (cluster.ExactSum32 — the
//     same wide-accumulator machinery as the goroutine-rank backend);
//   - the scalar result is re-broadcast, charged as two scalar hops per
//     grid axis.
//
// # Determinism contract
//
// Residual histories and solutions are bit-identical across wafer
// counts and simulation engines. Per-tile arithmetic is a fixed
// instruction sequence (the SpMV3DHalo contract), halos move
// bit-verbatim whether by fabric stream or host edge copy, dots are
// exactly rounded sums of per-tile partials (order-invariant), and all
// host-side diagnostics accumulate in canonical global mesh order. The
// package tests pin 1/2/4-wafer runs and both engines to the same
// histories. The single-wafer solver now consumes the same exactly
// rounded combine (its on-fabric AllReduce is cycle-accounted and
// cross-checked, but not consumed), so a 1×1 multiwafer solve is
// bit-identical to kernels.NewBiCGStabWSEHalo — and to the host
// chunked-mixed and rank-parallel backends; internal/core's
// TestAllBackendsBitIdentical pins all four.
package multiwafer

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/kernels"
	"repro/internal/stencil"
	"repro/internal/wse"
)

// Topology is the wafer grid: W×H wafers side by side over the mesh's
// X×Y extent.
type Topology struct{ W, H int }

// Wafers returns the wafer count.
func (t Topology) Wafers() int { return t.W * t.H }

// String formats the grid as "WxH".
func (t Topology) String() string { return fmt.Sprintf("%dx%d", t.W, t.H) }

// ParseTopology parses a "WxH" grid spec (as in cmd/wsesim -wafers).
// The whole string must be the spec — trailing input is rejected, so a
// typo like "2x2x4" fails instead of silently running a 2×2 grid.
func ParseTopology(s string) (Topology, error) {
	bad := func() (Topology, error) {
		return Topology{}, fmt.Errorf("multiwafer: bad wafer grid %q (want WxH, e.g. 2x1)", s)
	}
	ws, hs, found := strings.Cut(s, "x")
	if !found {
		return bad()
	}
	w, err := strconv.Atoi(ws)
	if err != nil || w < 1 {
		return bad()
	}
	h, err := strconv.Atoi(hs)
	if err != nil || h < 1 {
		return bad()
	}
	return Topology{W: w, H: h}, nil
}

// Interconnect models the host-side coupling between adjacent wafers:
// a fixed per-transfer latency plus a bandwidth term per wafer edge.
// The CS-1 exposes 1.2 Tb/s of edge I/O; the default charges that full
// rate to each edge face, the most favourable reading (a face-to-face
// cable consuming the whole I/O complex), so the model's scaling limits
// are lower bounds on communication cost.
type Interconnect struct {
	// LatencySec is the fixed cost of one transfer (host turnaround plus
	// link latency).
	LatencySec float64
	// EdgeBandwidthBps is the usable bandwidth of one wafer edge face in
	// bits per second.
	EdgeBandwidthBps float64
}

// DefaultInterconnect returns the calibration used by the reports: 1 µs
// latency, the CS-1's 1.2 Tb/s edge I/O per face.
func DefaultInterconnect() Interconnect {
	return Interconnect{LatencySec: 1e-6, EdgeBandwidthBps: 1.2e12}
}

// TransferSeconds returns the modelled time to move bytes across one
// wafer edge face.
func (ic Interconnect) TransferSeconds(bytes int) float64 {
	return ic.LatencySec + 8*float64(bytes)/ic.EdgeBandwidthBps
}

// Config assembles a cluster.
type Config struct {
	Grid Topology
	// Interconnect defaults to DefaultInterconnect when zero.
	Interconnect Interconnect
	// Workers selects each machine's simulation engine (wse.Config.Workers).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Grid.W == 0 {
		c.Grid.W = 1
	}
	if c.Grid.H == 0 {
		c.Grid.H = 1
	}
	if c.Interconnect == (Interconnect{}) {
		c.Interconnect = DefaultInterconnect()
	}
	return c
}

// Colors: the four directional halo-exchange colors, then the six
// AllReduce colors, on every wafer's fabric.
const arBase = fabric.Color(kernels.NumStencil2DColors)

// wafer is one machine plus its programs and per-tile solver storage.
type wafer struct {
	wx, wy   int // grid position
	x0, y0   int // global tile coordinate of fabric (0,0)
	w, h     int // fabric extent
	mach     *wse.Machine
	spmv     *kernels.SpMV3DHalo
	ar       *kernels.AllReduce
	neighbor [kernels.NumHaloDirs]*wafer // adjacent wafers, nil at the grid edge
	// Per-tile arena offsets of the seven solver vectors.
	offX, offR0, offR, offP, offS, offQ, offY []int
	partial                                   []float32 // per-tile dot partials
	phaseTask                                 []*wse.Task
	phaseDone                                 []bool
}

// tiles returns the wafer's tile count.
func (w *wafer) tiles() int { return w.w * w.h }

// Cluster is a grid of cycle-simulated wafers solving one system.
type Cluster struct {
	Cfg  Config
	Mesh stencil.Mesh

	wafers []*wafer
	// order lists (wafer, tile) pairs in canonical global mesh order —
	// the summation order of every host-side reduction, so diagnostics
	// cannot depend on the decomposition.
	order [][2]int32
}

// New builds a cluster for the normalized operator op. The mesh's X and
// Y extents are cut as evenly as possible across the grid
// (cluster.SplitExtent); Z must be even and the per-tile footprint —
// twelve SpMV columns plus seven solver vectors, 19·Z words — must fit
// the 48 KB tile memory.
func New(cfg Config, op *stencil.Op7Half) (*Cluster, error) {
	cfg = cfg.withDefaults()
	m := op.M
	if cfg.Grid.W > m.NX || cfg.Grid.H > m.NY {
		return nil, fmt.Errorf("multiwafer: grid %v needs at least %d×%d mesh columns, have %d×%d",
			cfg.Grid, cfg.Grid.W, cfg.Grid.H, m.NX, m.NY)
	}
	xs := cluster.SplitExtent(m.NX, cfg.Grid.W)
	ys := cluster.SplitExtent(m.NY, cfg.Grid.H)

	c := &Cluster{Cfg: cfg, Mesh: m}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()

	y0 := 0
	for wy := 0; wy < cfg.Grid.H; wy++ {
		x0 := 0
		for wx := 0; wx < cfg.Grid.W; wx++ {
			wf := &wafer{wx: wx, wy: wy, x0: x0, y0: y0, w: xs[wx], h: ys[wy]}
			mcfg := wse.CS1(wf.w, wf.h)
			mcfg.Workers = cfg.Workers
			wf.mach = wse.New(mcfg)
			var err error
			wf.spmv, err = kernels.NewSpMV3DHalo(wf.mach, op, x0, y0, 0)
			if err != nil {
				return nil, fmt.Errorf("multiwafer: wafer (%d,%d): %v", wx, wy, err)
			}
			wf.ar, err = kernels.NewAllReduce(wf.mach, arBase)
			if err != nil {
				return nil, fmt.Errorf("multiwafer: wafer (%d,%d): %v", wx, wy, err)
			}
			if err := c.allocSolver(wf, m.NZ); err != nil {
				return nil, err
			}
			c.wafers = append(c.wafers, wf)
			x0 += xs[wx]
		}
		y0 += ys[wy]
	}

	// Wire wafer adjacency (HaloXP = the wafer to the east, …).
	at := func(wx, wy int) *wafer {
		if wx < 0 || wx >= cfg.Grid.W || wy < 0 || wy >= cfg.Grid.H {
			return nil
		}
		return c.wafers[wy*cfg.Grid.W+wx]
	}
	for _, wf := range c.wafers {
		wf.neighbor[kernels.HaloXP] = at(wf.wx+1, wf.wy)
		wf.neighbor[kernels.HaloXM] = at(wf.wx-1, wf.wy)
		wf.neighbor[kernels.HaloYP] = at(wf.wx, wf.wy+1)
		wf.neighbor[kernels.HaloYM] = at(wf.wx, wf.wy-1)
	}

	// Canonical reduction order: global (y, x) row-major.
	c.order = make([][2]int32, 0, m.NX*m.NY)
	for gy := 0; gy < m.NY; gy++ {
		for gx := 0; gx < m.NX; gx++ {
			wi, ti := c.locate(gx, gy)
			c.order = append(c.order, [2]int32{int32(wi), int32(ti)})
		}
	}
	ok = true
	return c, nil
}

// LoadCoeff swaps the cluster's stencil operator without rebuilding the
// wafer machines: each wafer's halo SpMV rewrites its coefficient
// sub-extent in place, everything else (routing, tasks, solver vectors,
// adjacency, reduction order) is reused. Solve re-initializes the
// vectors on every call, so a warm cluster serves an arbitrary sequence
// of solves on the same mesh and grid — the service layer's
// machine-cache contract. The operator's mesh must match the cluster's.
func (c *Cluster) LoadCoeff(op *stencil.Op7Half) error {
	if op.M != c.Mesh {
		return fmt.Errorf("multiwafer: operator mesh %v does not match cluster mesh %v", op.M, c.Mesh)
	}
	for _, wf := range c.wafers {
		wf.spmv.LoadCoeff(op)
	}
	return nil
}

// locate returns the wafer index and local tile index owning global
// mesh column (gx, gy).
func (c *Cluster) locate(gx, gy int) (wi, ti int) {
	for i, wf := range c.wafers {
		if gx >= wf.x0 && gx < wf.x0+wf.w && gy >= wf.y0 && gy < wf.y0+wf.h {
			return i, (gy-wf.y0)*wf.w + (gx - wf.x0)
		}
	}
	panic(fmt.Sprintf("multiwafer: no wafer owns column (%d,%d)", gx, gy))
}

// allocSolver allocates the seven per-tile solver vectors and the
// reusable phase task on every tile of wf.
func (c *Cluster) allocSolver(wf *wafer, z int) error {
	n := wf.tiles()
	wf.offX = make([]int, n)
	wf.offR0 = make([]int, n)
	wf.offR = make([]int, n)
	wf.offP = make([]int, n)
	wf.offS = make([]int, n)
	wf.offQ = make([]int, n)
	wf.offY = make([]int, n)
	wf.partial = make([]float32, n)
	wf.phaseTask = make([]*wse.Task, n)
	wf.phaseDone = make([]bool, n)
	for i, t := range wf.mach.Tiles {
		var err error
		alloc := func(name string, off *[]int) {
			if err != nil {
				return
			}
			(*off)[i], err = t.Arena.Alloc(name, z)
		}
		alloc("x", &wf.offX)
		alloc("r0", &wf.offR0)
		alloc("r", &wf.offR)
		alloc("p", &wf.offP)
		alloc("s", &wf.offS)
		alloc("q", &wf.offQ)
		alloc("y", &wf.offY)
		if err != nil {
			return fmt.Errorf("multiwafer: wafer (%d,%d) tile %v: %v", wf.wx, wf.wy, t.Coord, err)
		}
		i := i
		task := &wse.Task{Name: "phase"}
		task.OnComplete = func(cc *wse.Core) { wf.phaseDone[i] = true }
		t.Core.AddTask(task)
		wf.phaseTask[i] = task
	}
	return nil
}

// Wafers returns the wafer count.
func (c *Cluster) Wafers() int { return len(c.wafers) }

// Close releases every machine's simulation worker pool. Idempotent.
func (c *Cluster) Close() {
	for _, wf := range c.wafers {
		if wf.mach != nil {
			wf.mach.Close()
		}
	}
}
