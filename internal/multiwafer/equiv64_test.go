package multiwafer

import (
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/kernels"
	"repro/internal/stencil"
)

// TestMultiWafer64CubedEquivalence is the acceptance golden for the
// cluster backend: the 64³ BiCGStab solve that cmd/wsesim runs with
// `-wafers 2x1` produces residual histories (and solutions) bit
// identical to the 1-wafer run. Both clusters use the sharded engine,
// so the test also crosses the engine axis, and it runs under -race in
// CI — the full-suite race step does not skip it.
func TestMultiWafer64CubedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("64³ cycle simulation in short mode")
	}
	const n = 64
	m := stencil.Mesh{NX: n, NY: n, NZ: n}
	op := stencil.MomentumLike(m, 0.02, [3]float64{1, 0.2, -0.1}, 0.1, 1, 0.1)
	rng := rand.New(rand.NewSource(64))
	xe := make([]float64, m.N())
	for i := range xe {
		xe[i] = rng.Float64()
	}
	b := make([]float64, m.N())
	op.Apply(b, xe)
	norm, diag := op.Normalize()
	h := stencil.NewOp7Half(norm)
	sb := fp16.FromFloat64Slice(stencil.ScaleRHS(b, diag))

	run := func(grid Topology) ([]fp16.Float16, Stats) {
		c, err := New(Config{Grid: grid, Workers: 4}, h)
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		defer c.Close()
		x, st, err := c.Solve(sb, kernels.WSEOptions{MaxIter: 3})
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		return x, st
	}

	oneX, oneSt := run(Topology{1, 1})
	twoX, twoSt := run(Topology{2, 1})

	if len(oneSt.History) != len(twoSt.History) || len(oneSt.History) == 0 {
		t.Fatalf("history lengths: 1-wafer %d, 2-wafer %d", len(oneSt.History), len(twoSt.History))
	}
	for i := range oneSt.History {
		if oneSt.History[i] != twoSt.History[i] {
			t.Fatalf("history[%d]: 1-wafer %.17g, 2-wafer %.17g", i, oneSt.History[i], twoSt.History[i])
		}
	}
	for i := range oneX {
		if oneX[i] != twoX[i] {
			t.Fatalf("x[%d]: 1-wafer %04x, 2-wafer %04x", i, oneX[i].Bits(), twoX[i].Bits())
		}
	}
	// The split must actually have cost something over the edge.
	if twoSt.Cycles.EdgeIO == 0 || twoSt.Cycles.Combine == 0 {
		t.Errorf("2-wafer run charged no inter-wafer cycles: %+v", twoSt.Cycles)
	}
	t.Logf("64³ histories (%d iters) bit-identical; 1-wafer %d cyc/iter, 2-wafer %d cyc/iter (edge I/O %d, combine %d)",
		oneSt.Iterations, oneSt.PerIteration.Total(), twoSt.PerIteration.Total(),
		twoSt.PerIteration.EdgeIO, twoSt.PerIteration.Combine)
}
