package multiwafer

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/perfmodel"
)

// TestModelMatchesSimulator pins perfmodel's multi-wafer extension to
// the cycle simulator exactly, phase by phase, across mesh shapes,
// grids (even and uneven splits, odd and even sub-extents) and Z — the
// same both-ways pinning discipline as the AllReduce model, so the
// projection to grids of full wafers cannot silently drift from what
// the simulator would measure.
func TestModelMatchesSimulator(t *testing.T) {
	model := perfmodel.SimModel()
	io := perfmodel.DefaultEdgeIO()
	for _, tc := range []struct {
		nx, ny, nz int
		grid       Topology
	}{
		{8, 8, 8, Topology{1, 1}},
		{8, 8, 8, Topology{2, 1}},
		{8, 8, 8, Topology{2, 2}},
		{8, 8, 32, Topology{2, 2}},
		{16, 8, 16, Topology{2, 1}},
		{6, 6, 8, Topology{3, 1}},  // 2-wide wafers
		{10, 6, 8, Topology{3, 2}}, // uneven split: widths 4, 3, 3
		{9, 9, 8, Topology{2, 2}},  // odd sub-extents (parity-aware AllReduce)
		{8, 8, 6, Topology{2, 1}},  // Z ≡ 2 (mod 4): per-instruction lane ceiling
		{12, 12, 24, Topology{4, 1}},
	} {
		const iters = 2
		h, _, b, _ := testProblem(t, tc.nx, tc.ny, tc.nz, 3)
		c, err := New(Config{Grid: tc.grid}, h)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := c.Solve(b, kernels.WSEOptions{MaxIter: iters})
		c.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Iterations != iters || st.Breakdown != "" {
			t.Fatalf("%v grid %v: expected %d clean iterations, got %+v", tc, tc.grid, iters, st)
		}
		m := model.MultiWaferIterationCycles(tc.nx, tc.ny, tc.nz, tc.grid.W, tc.grid.H, 1.1e9, io)
		want := PhaseCycles{
			SpMV:      iters * int64(m.SpMV),
			EdgeIO:    iters * int64(m.EdgeIO),
			Dot:       iters * int64(m.Dot),
			AllReduce: iters * int64(m.AllReduce),
			Combine:   iters * int64(m.Combine),
			Axpy:      iters * int64(m.Axpy),
		}
		if st.Cycles != want {
			t.Errorf("%d×%d×%d grid %v:\n  simulator %+v\n  model     %+v",
				tc.nx, tc.ny, tc.nz, tc.grid, st.Cycles, want)
		}
	}
}

// TestScalingSweepShape sanity-checks the projection sweep the
// examples print: on-wafer cycles shrink with more wafers (smaller
// AllReduce), inter-wafer costs appear, and speedup/efficiency are
// relative to the first grid.
func TestScalingSweepShape(t *testing.T) {
	model := perfmodel.PaperModel()
	pts := model.MultiWaferScaling(600, 595, 1536,
		[][2]int{{1, 1}, {2, 1}, {2, 2}, {4, 2}}, 1.1e9, perfmodel.DefaultEdgeIO())
	if len(pts) != 4 {
		t.Fatalf("want 4 points, got %d", len(pts))
	}
	if pts[0].Speedup != 1 || pts[0].Efficiency != 1 {
		t.Errorf("first point not normalized: %+v", pts[0])
	}
	if pts[0].Breakdown.EdgeIO != 0 || pts[0].Breakdown.Combine != 0 {
		t.Errorf("single wafer charged inter-wafer terms: %+v", pts[0].Breakdown)
	}
	for _, p := range pts[1:] {
		if p.Breakdown.EdgeIO == 0 || p.Breakdown.Combine == 0 {
			t.Errorf("grid %dx%d missing inter-wafer terms", p.GridW, p.GridH)
		}
		if p.Breakdown.AllReduce >= pts[0].Breakdown.AllReduce {
			t.Errorf("grid %dx%d: AllReduce %v not below single wafer %v",
				p.GridW, p.GridH, p.Breakdown.AllReduce, pts[0].Breakdown.AllReduce)
		}
		if p.Efficiency <= 0 || p.Efficiency > 1.2 {
			t.Errorf("grid %dx%d: implausible efficiency %.2f", p.GridW, p.GridH, p.Efficiency)
		}
	}
}
