package multiwafer

import (
	"fmt"
	"sync"

	"repro/internal/fp16"
	"repro/internal/kernels"
	"repro/internal/solver"
	"repro/internal/stencil"
)

// Backend adapts the wafer cluster to the solver.Backend3D seam, so
// host code that is generic over execution substrates (core.Solve, the
// examples) can run the multiwafer engine without caring where the
// arithmetic happens. Each Solve3D call builds a fresh cluster, runs
// the mixed-precision solve, and releases the simulation pools. A
// Backend is safe for concurrent Solve3D calls; use Stats to read the
// most recent solve's cycle account.
type Backend struct {
	Grid         Topology
	Interconnect Interconnect // zero value = DefaultInterconnect
	Workers      int

	mu   sync.Mutex
	last *Stats
}

// Name implements solver.Backend3D.
func (b *Backend) Name() string { return fmt.Sprintf("multiwafer/%s", b.Grid) }

// Stats returns a copy of the most recent completed solve's cycle
// account (the solver.Stats seam has no slot for simulated cycles) and
// whether any solve has completed. It is safe to call concurrently
// with Solve3D.
func (b *Backend) Stats() (Stats, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.last == nil {
		return Stats{}, false
	}
	return *b.last, true
}

// Solve3D implements solver.Backend3D. The operator must be
// unit-diagonal (call Normalize first) and x0 must be zero — the wafer
// solve starts from a zero guess, like the paper's.
func (b *Backend) Solve3D(op *stencil.Op7, bvec, x0 []float64, opts solver.Options) ([]float64, solver.Stats, error) {
	if err := opts.RejectCheckpoint(b.Name()); err != nil {
		return nil, solver.Stats{}, err
	}
	if !op.IsUnitDiagonal() {
		return nil, solver.Stats{}, fmt.Errorf("multiwafer: operator must be unit-diagonal")
	}
	for _, v := range x0 {
		if v != 0 {
			return nil, solver.Stats{}, fmt.Errorf("multiwafer: backend requires a zero initial guess")
		}
	}
	c, err := New(Config{Grid: b.Grid, Interconnect: b.Interconnect, Workers: b.Workers}, stencil.NewOp7Half(op))
	if err != nil {
		return nil, solver.Stats{}, err
	}
	defer c.Close()
	x16, st, err := c.Solve(fp16.FromFloat64Slice(bvec), kernels.WSEOptions{Ctx: opts.Ctx, MaxIter: opts.MaxIter, Tol: opts.Tol})
	if err != nil {
		return nil, solver.Stats{}, err
	}
	b.mu.Lock()
	b.last = &st
	b.mu.Unlock()
	out := solver.Stats{
		Iterations: st.Iterations,
		Converged:  st.Converged,
		Breakdown:  st.Breakdown,
	}
	if len(st.History) > 0 {
		out.FinalResidual = st.History[len(st.History)-1]
	}
	if opts.RecordHistory {
		out.History = st.History
	}
	return fp16.ToFloat64Slice(x16), out, nil
}
