package multiwafer

import (
	"fmt"

	"repro/internal/fp16"
	"repro/internal/kernels"
	"repro/internal/solver"
	"repro/internal/stencil"
)

// Backend adapts the wafer cluster to the solver.Backend3D seam, so
// host code that is generic over execution substrates (core.Solve, the
// examples) can run the multiwafer engine without caring where the
// arithmetic happens. Each Solve3D call builds a fresh cluster, runs
// the mixed-precision solve, and releases the simulation pools.
type Backend struct {
	Grid         Topology
	Interconnect Interconnect // zero value = DefaultInterconnect
	Workers      int

	// LastStats, if non-nil, receives each solve's cycle account (the
	// solver.Stats seam has no slot for simulated cycles).
	LastStats *Stats
}

// Name implements solver.Backend3D.
func (b Backend) Name() string { return fmt.Sprintf("multiwafer/%s", b.Grid) }

// Solve3D implements solver.Backend3D. The operator must be
// unit-diagonal (call Normalize first) and x0 must be zero — the wafer
// solve starts from a zero guess, like the paper's.
func (b Backend) Solve3D(op *stencil.Op7, bvec, x0 []float64, opts solver.Options) ([]float64, solver.Stats, error) {
	if !op.IsUnitDiagonal() {
		return nil, solver.Stats{}, fmt.Errorf("multiwafer: operator must be unit-diagonal")
	}
	for _, v := range x0 {
		if v != 0 {
			return nil, solver.Stats{}, fmt.Errorf("multiwafer: backend requires a zero initial guess")
		}
	}
	c, err := New(Config{Grid: b.Grid, Interconnect: b.Interconnect, Workers: b.Workers}, stencil.NewOp7Half(op))
	if err != nil {
		return nil, solver.Stats{}, err
	}
	defer c.Close()
	x16, st, err := c.Solve(fp16.FromFloat64Slice(bvec), kernels.WSEOptions{MaxIter: opts.MaxIter, Tol: opts.Tol})
	if err != nil {
		return nil, solver.Stats{}, err
	}
	if b.LastStats != nil {
		*b.LastStats = st
	}
	out := solver.Stats{
		Iterations: st.Iterations,
		Converged:  st.Converged,
		Breakdown:  st.Breakdown,
	}
	if len(st.History) > 0 {
		out.FinalResidual = st.History[len(st.History)-1]
	}
	if opts.RecordHistory {
		out.History = st.History
	}
	return fp16.ToFloat64Slice(x16), out, nil
}
