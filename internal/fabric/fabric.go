// Package fabric is a cycle-level simulator of the CS-1's on-wafer
// interconnect: a 2D mesh of routers, one per tile, each with five
// bidirectional links — to its four neighbours and to its own core (the
// "ramp"). Communication follows the paper's model:
//
//   - routing is static, configured offline per (input port, color);
//   - a router can move one word per output link per cycle, on all five
//     links in parallel;
//   - the fanout of data to multiple destinations is done in the router
//     (an input word may forward to any subset of the five output ports);
//   - per-hop latency is one cycle; hardware queues provide backpressure;
//   - colors are virtual channels; the program (not the hardware) is
//     responsible for choosing deadlock-free color assignments.
//
// Words are 32-bit, carrying either one float32 or two fp16 elements, which
// matches the injection/extraction granularity the paper's AllReduce
// analysis uses ("a core … can receive only one [word] from the fabric").
//
// # Stepping engines and determinism
//
// A Fabric is advanced by a Stepper (see stepper.go): Sequential steps
// every router on one goroutine, Sharded(workers) partitions the tile
// grid into contiguous shards stepped concurrently with a two-phase
// claim/commit barrier per cycle, on a persistent worker pool (pool.go)
// that parks between cycles. The two engines are bit-identical — same
// queue contents, same occupancies, same Moves counter, cycle for cycle
// — because a cycle's routing decisions depend only on pre-cycle state
// and each queue is touched by exactly one shard during commit. Host
// code may therefore select an engine purely on fabric size without
// changing any simulated result. Queue storage lives in per-shard
// arenas (arena.go), and the claim phase takes a specialized fast path
// for single-output, non-multicast routes — the overwhelmingly common
// case in the paper's communication patterns.
package fabric

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/fp16"
)

// Port identifies one of a router's five links.
type Port uint8

// The five router ports. Ramp is the link to the tile's own core.
const (
	North Port = iota
	East
	South
	West
	Ramp
	NumPorts
)

// String returns a one-letter port name.
func (p Port) String() string { return [...]string{"N", "E", "S", "W", "R"}[p] }

// Opposite returns the port a word sent out of p arrives on at the
// neighbouring router.
func (p Port) Opposite() Port {
	switch p {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	}
	return Ramp
}

// Delta returns the coordinate offset of the neighbour reached through p.
func (p Port) Delta() (dx, dy int) {
	switch p {
	case North:
		return 0, -1
	case South:
		return 0, 1
	case East:
		return 1, 0
	case West:
		return -1, 0
	}
	return 0, 0
}

// PortMask is a set of output ports, one bit per Port.
type PortMask uint8

// Mask builds a PortMask from ports.
func Mask(ports ...Port) PortMask {
	var m PortMask
	for _, p := range ports {
		m |= 1 << p
	}
	return m
}

// Has reports whether the mask contains p.
func (m PortMask) Has(p Port) bool { return m&(1<<p) != 0 }

// Color is a virtual channel identifier. The hardware provides 24.
type Color uint8

// MaxColors is the number of virtual channels per link.
const MaxColors = 24

// Coord addresses a tile on the fabric.
type Coord struct{ X, Y int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Word is one 32-bit fabric word tagged with its virtual channel.
type Word struct {
	Color Color
	Bits  uint32
}

// F32 returns the payload as a float32.
func (w Word) F32() float32 { return math.Float32frombits(w.Bits) }

// WordF32 builds a word carrying one float32.
func WordF32(c Color, v float32) Word { return Word{Color: c, Bits: math.Float32bits(v)} }

// PackF16 builds a word carrying two fp16 elements (lo is element 0).
func PackF16(c Color, lo, hi fp16.Float16) Word {
	return Word{Color: c, Bits: uint32(lo.Bits()) | uint32(hi.Bits())<<16}
}

// UnpackF16 splits a word into its two fp16 elements.
func (w Word) UnpackF16() (lo, hi fp16.Float16) {
	return fp16.FromBits(uint16(w.Bits)), fp16.FromBits(uint16(w.Bits >> 16))
}

// queue is a bounded ring of words (a hardware input queue). Queues are
// allocated from per-shard arenas (arena.go) so the hot claim/commit
// loops of one shard walk contiguous memory. The ring arithmetic uses
// conditional wrap instead of modulo: push/pop are the two hottest
// operations of the whole simulator.
//
// A queue that backs a router's active route entry additionally
// maintains one bit of its router's occupancy mask (router.occ): occ is
// the back-pointer and occBit the entry's bit, assigned by SetRoute.
// push sets the bit on the empty→non-empty edge and pop clears it on
// the non-empty→empty edge, so the claim phase can skip a router's
// empty entries without touching them. Core receive queues (and queues
// of routers with more than 64 entries) keep occ == nil. The occupancy
// writes inherit the queues' shard-ownership discipline — a queue is
// popped only by the shard owning its router and pushed only by the
// shard owning its destination tile — so they are race-free under the
// sharded engine.
type queue struct {
	buf        []uint32
	head, size int32
	occ        *uint64
	occBit     uint64
}

func (q *queue) full() bool  { return q.size == int32(len(q.buf)) }
func (q *queue) empty() bool { return q.size == 0 }
func (q *queue) len() int    { return int(q.size) }

func (q *queue) push(w uint32) bool {
	if q.size == int32(len(q.buf)) {
		return false
	}
	i := q.head + q.size
	if n := int32(len(q.buf)); i >= n {
		i -= n
	}
	q.buf[i] = w
	if q.size == 0 && q.occ != nil {
		*q.occ |= q.occBit
	}
	q.size++
	return true
}

func (q *queue) peek() uint32 { return q.buf[q.head] }

// at returns the k-th queued word without popping (0 is the head).
func (q *queue) at(k int) uint32 { return q.buf[(int(q.head)+k)%len(q.buf)] }

func (q *queue) pop() uint32 {
	w := q.buf[q.head]
	q.head++
	if q.head == int32(len(q.buf)) {
		q.head = 0
	}
	q.size--
	if q.size == 0 && q.occ != nil {
		*q.occ &^= q.occBit
	}
	return w
}

// routeEntry is one configured (input port, color) of a router. Entries
// are kept in first-configured order: the arbitration rotation walks
// this list, so the order is part of the simulated state. Each entry
// caches its input queue pointer and — for the single-output,
// non-multicast common case — the resolved destination, so the claim
// phase's fast path touches no coordinate math and no (port,color)
// table lookups. Resolution is lazy (first cycle the entry is claimed)
// because the destination queue may not exist yet while routes are
// still being configured; routes are static once stepping begins.
type routeEntry struct {
	q   *queue // input queue for (in, c) at this tile
	dst *queue // resolved destination queue (single-output only)
	// dstTile is the destination tile for hot re-marking when >= 0; a
	// negative value marks a core rx delivery at tile -(dstTile+1), which
	// fires the fabric's rx-delivery wake callbacks instead.
	dstTile  int32
	dstShard uint16 // engine shard owning dstTile
	outs     PortMask
	in       Port
	c        Color
	sport    Port // the single output port; valid when single
	single   bool // exactly one output port: the fast-path case
}

func (en *routeEntry) setOuts(outs PortMask) {
	en.outs = outs
	en.single = bits.OnesCount8(uint8(outs)) == 1
	en.sport = Port(bits.TrailingZeros8(uint8(outs)))
	en.dst = nil // force re-resolution
}

// router holds the claim-phase-hot state of one tile's router. The
// claim walk touches every hot router every cycle, so this struct is
// kept small (one cache line) and dense; the cold (port, color) lookup
// tables live in the parallel routerTables array (Fabric.tables),
// touched only on configuration, injection, extraction and snapshots.
type router struct {
	// active lists the configured (in, color) pairs with their cached
	// routing, to bound scanning in the claim phase.
	active []routeEntry
	// occ has bit i set while active[i].q is non-empty (maintained by
	// queue.push/pop through back-pointers), so the claim phase scans
	// only occupied entries. Valid only while !wide.
	occ uint64
	// rr is the output arbitration rotation counter. Only one rotation
	// slot exists in practice — every output of a router arbitrates off
	// the same walk — and the raw count is architectural state (hashed
	// by Fingerprint, captured by snapshots).
	rr int64
	// rrIdx caches rr % len(active) so the per-visit claim scan avoids
	// an integer divide; it is kept in step with rr by the claim phase
	// and recomputed whenever len(active) or rr changes elsewhere.
	rrIdx int32
	// wide marks a router with more than 64 active entries, for which
	// occ cannot cover every entry; claim falls back to the full scan.
	wide bool
}

// routerTables holds one tile's static routing tables and input queue
// pointers — the configuration-time and edge-of-fabric state split out
// of the hot router struct.
type routerTables struct {
	// routes[in][color] is the output port set; zero means "no route",
	// which the simulator reports as a configuration error on arrival.
	routes [NumPorts][MaxColors]PortMask
	// queues[in][color] holds words that arrived on (in, color).
	queues [NumPorts][MaxColors]*queue
}

// Config sizes a fabric.
type Config struct {
	W, H int
	// QueueDepth is the per-(port,color) router queue capacity. The
	// hardware queues are shallow; 4 reproduces wormhole-like backpressure.
	QueueDepth int
	// RxDepth is the per-color core receive buffer capacity.
	RxDepth int
	// Stepper selects the stepping engine; nil means Sequential(). The
	// instance is bound to this fabric and must not be reused.
	Stepper Stepper
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4
	}
	if c.RxDepth <= 0 {
		c.RxDepth = 4
	}
	return c
}

// Fabric is the whole mesh.
type Fabric struct {
	cfg     Config
	W, H    int
	routers []router
	tables  []routerTables
	// core receive buffers, per tile per color
	rx [][MaxColors]*queue

	cycle int64
	moves int64
	// activity tracking: tiles whose router might have movable words,
	// listed per shard so each engine shard owns its list exclusively.
	hot      []bool
	hotLists [][]int
	shardOf  []uint16
	// rxWake holds the registered rx-delivery callbacks; see OnRxDelivery.
	rxWake []func(tile int, c Color)
	// arenas[s] backs the queue storage of every tile in shard s; only
	// shard s allocates from it during stepping.
	arenas []shardArena

	stepper Stepper
}

// stagedPush is one claimed transfer awaiting commit. The destination
// queue is resolved at claim time, so commit is a straight pointer walk.
type stagedPush struct {
	q *queue
	// tile >= 0 is a router destination to re-mark hot; tile < 0 is a
	// core rx delivery at tile -(tile+1), which fires the rx-delivery
	// wake callbacks (the event edge event-driven per-tile actors — the
	// wse core worklist, the AllReduce state machines — are parked on).
	tile int32
	bits uint32
}

// New builds a fabric of w×h routers.
func New(cfg Config) *Fabric {
	cfg = cfg.withDefaults()
	f := &Fabric{
		cfg: cfg, W: cfg.W, H: cfg.H,
		routers: make([]router, cfg.W*cfg.H),
		tables:  make([]routerTables, cfg.W*cfg.H),
		rx:      make([][MaxColors]*queue, cfg.W*cfg.H),
		hot:     make([]bool, cfg.W*cfg.H),
	}
	if cfg.Stepper == nil {
		cfg.Stepper = Sequential()
	}
	f.stepper = cfg.Stepper
	f.stepper.bind(f)
	return f
}

// StepperName reports the name of the bound stepping engine.
func (f *Fabric) StepperName() string { return f.stepper.Name() }

// Close releases the stepping engine's persistent worker pool, if one
// was started. It is idempotent and safe on any engine (Sequential's is
// a no-op); it must not be called concurrently with Step. The fabric
// remains fully usable afterwards — cycles simply step inline. A fabric
// that is never Closed does not leak: a runtime cleanup stops the pool
// when the fabric becomes unreachable (the parked workers hold no
// reference to the fabric, so they do not pin it).
func (f *Fabric) Close() { f.stepper.Close() }

// RunSharded runs fn over every engine shard's [lo, hi) tile range, on
// the engine's worker pool when it is profitable (sharded engine on a
// multi-core host) and inline otherwise. Callers that step per-tile
// actors each cycle (wse.Machine) use this so core stepping rides the
// same persistent pool — and the same tile partition — as the fabric,
// keeping all tile-local fabric access shard-owned.
func (f *Fabric) RunSharded(fn func(lo, hi int)) { f.stepper.runShards(fn) }

// ShardRanges returns the engine's tile partition as [lo, hi) index
// ranges. Callers that step per-tile actors concurrently (wse.Machine)
// use the same partition so all tile-local fabric access stays
// shard-owned.
func (f *Fabric) ShardRanges() [][2]int { return f.stepper.shards() }

// rxTile encodes a core rx delivery destination for stagedPush.tile and
// routeEntry.dstTile: negative, carrying both the tile index and the
// delivered color (so the rx-delivery wake can report which virtual
// channel the word landed on), recoverable with rxTileIndex/rxColor.
func rxTile(ti int, c Color) int32 { return -int32(ti*MaxColors+int(c)) - 1 }

// rxTileIndex recovers the tile index from an rxTile encoding.
func rxTileIndex(enc int32) int { return int(-enc-1) / MaxColors }

// rxColor recovers the delivered color from an rxTile encoding.
func rxColor(enc int32) Color { return Color(int(-enc-1) % MaxColors) }

// OnRxDelivery registers fn to be called every time a word is committed
// into a core receive buffer, with the destination tile index and the
// color it arrived on. This is the event edge that lets per-tile actors
// (the wse core scheduler, the kernels' host-side state machines) park
// while idle instead of polling their receive buffers every cycle; the
// color lets an actor ignore deliveries on channels it does not
// consume, so independent subsystems sharing the fabric do not pollute
// each other's worklists.
//
// Concurrency contract: with a sharded engine the callback runs on the
// worker goroutine of the shard that owns the tile, during the commit
// phase. It must therefore touch only state owned by that tile's shard
// (e.g. append to a per-shard worklist selected via ShardOf) and must
// not call back into the fabric. Callbacks cannot be unregistered; a
// long-lived fabric should multiplex one callback rather than stacking
// registrations.
func (f *Fabric) OnRxDelivery(fn func(tile int, c Color)) { f.rxWake = append(f.rxWake, fn) }

// ShardOf returns the index of the engine shard that owns the tile.
// Per-tile actors stepped concurrently (wse.Machine's core worklists)
// key their per-shard state by this, so rx-delivery callbacks stay
// shard-local.
func (f *Fabric) ShardOf(tile int) int { return int(f.shardOf[tile]) }

// Index returns the tile index of c.
func (f *Fabric) Index(c Coord) int { return c.Y*f.W + c.X }

// CoordOf inverts Index.
func (f *Fabric) CoordOf(i int) Coord { return Coord{X: i % f.W, Y: i / f.W} }

// In reports whether c is on the fabric.
func (f *Fabric) In(c Coord) bool { return c.X >= 0 && c.X < f.W && c.Y >= 0 && c.Y < f.H }

// Cycle returns the number of Steps taken.
func (f *Fabric) Cycle() int64 { return f.cycle }

// Moves returns the total words moved across all links.
func (f *Fabric) Moves() int64 { return f.moves }

// SetRoute configures tile at's route for words arriving on (in, color):
// they fan out to every port in outs. Configuring Ramp in outs delivers to
// the tile's core. Routes are fixed before simulation, as in the hardware
// ("routing is configured offline, as part of compilation").
func (f *Fabric) SetRoute(at Coord, in Port, c Color, outs PortMask) {
	ti := f.Index(at)
	r := &f.routers[ti]
	tb := &f.tables[ti]
	tb.routes[in][c] = outs
	if tb.queues[in][c] == nil {
		tb.queues[in][c] = f.arenas[f.shardOf[ti]].newQueue(f.cfg.QueueDepth)
	}
	for i := range r.active {
		if r.active[i].in == in && r.active[i].c == c {
			r.active[i].setOuts(outs)
			return
		}
	}
	if outs == 0 {
		return
	}
	en := routeEntry{q: tb.queues[in][c], in: in, c: c}
	en.setOuts(outs)
	r.active = append(r.active, en)
	if i := len(r.active) - 1; i < 64 && !r.wide {
		en.q.occ, en.q.occBit = &r.occ, 1<<uint(i)
		if !en.q.empty() {
			r.occ |= en.q.occBit
		}
	} else {
		// Too many entries for one occupancy word: disable the mask for
		// this router and let claim fall back to scanning every entry.
		r.wide = true
		for j := range r.active {
			r.active[j].q.occ = nil
		}
		r.occ = 0
	}
	r.rrIdx = int32(r.rr % int64(len(r.active)))
}

// resolveSingle fills en's cached destination for the single-output
// fast path: the core rx queue for a ramp delivery, or the neighbouring
// router's input queue for a link hop. Called once per entry, from the
// claim phase of the shard that owns the tile.
func (f *Fabric) resolveSingle(ti int, en *routeEntry) *queue {
	if en.sport == Ramp {
		en.dst, en.dstTile, en.dstShard = f.rxQueue(ti, en.c), rxTile(ti, en.c), f.shardOf[ti]
		return en.dst
	}
	at := f.CoordOf(ti)
	dx, dy := en.sport.Delta()
	nb := Coord{at.X + dx, at.Y + dy}
	if !f.In(nb) {
		// Configured route off the fabric edge: drop target. The paper's
		// patterns never do this; flag loudly.
		panic(fmt.Sprintf("fabric: route off edge at %v port %v", at, en.sport))
	}
	nbi := f.Index(nb)
	nq := f.tables[nbi].queues[en.sport.Opposite()][en.c]
	if nq == nil {
		panic(fmt.Sprintf("fabric: no route configured at %v for arrivals on (%v,%d)", nb, en.sport.Opposite(), en.c))
	}
	en.dst, en.dstTile, en.dstShard = nq, int32(nbi), f.shardOf[nbi]
	return nq
}

// Route returns the configured output mask for (in, color) at tile at.
func (f *Fabric) Route(at Coord, in Port, c Color) PortMask {
	return f.tables[f.Index(at)].routes[in][c]
}

// Send injects one word from the core of tile at into its router's ramp
// input. It returns false (and injects nothing) if the ramp queue is full;
// the caller models a stalled send thread. At most one word per cycle can
// traverse the ramp link in each direction, which callers respect by
// calling Send at most once per cycle per tile.
func (f *Fabric) Send(at Coord, w Word) bool {
	i := f.Index(at)
	tb := &f.tables[i]
	if tb.routes[Ramp][w.Color] == 0 {
		panic(fmt.Sprintf("fabric: tile %v has no route for injected color %d", at, w.Color))
	}
	q := tb.queues[Ramp][w.Color]
	if q == nil || !q.push(w.Bits) {
		return false
	}
	f.markHot(i)
	return true
}

// Recv pops one word of the given color from tile at's core receive
// buffer. ok is false when none is available.
func (f *Fabric) Recv(at Coord, c Color) (Word, bool) {
	i := f.Index(at)
	q := f.rx[i][c]
	if q == nil || q.empty() {
		return Word{}, false
	}
	return Word{Color: c, Bits: q.pop()}, true
}

// RxLen returns the occupancy of tile at's receive buffer for color c.
func (f *Fabric) RxLen(at Coord, c Color) int {
	q := f.rx[f.Index(at)][c]
	if q == nil {
		return 0
	}
	return q.len()
}

func (f *Fabric) rxQueue(tile int, c Color) *queue {
	if f.rx[tile][c] == nil {
		// Lazily created during stepping, always by the shard that owns
		// the tile, so the per-shard arena needs no locking.
		f.rx[tile][c] = f.arenas[f.shardOf[tile]].newQueue(f.cfg.RxDepth)
	}
	return f.rx[tile][c]
}

func (f *Fabric) markHot(tile int) {
	if !f.hot[tile] {
		f.hot[tile] = true
		s := f.shardOf[tile]
		f.hotLists[s] = append(f.hotLists[s], tile)
	}
}

// Step advances the fabric by one cycle: every router moves the head word
// of its input queues toward its configured outputs, subject to one word
// per output link per cycle and space in the destination queue. Transfers
// are claimed against the pre-cycle state and committed together, so a
// word moves at most one hop per cycle. The work runs on the configured
// Stepper; see the package comment for the determinism contract.
func (f *Fabric) Step() {
	f.cycle++
	f.stepper.step(f)
}

// RouterQueueLen returns the occupancy of the (in, color) input queue of
// tile at's router, for tests asserting engine equivalence.
func (f *Fabric) RouterQueueLen(at Coord, in Port, c Color) int {
	q := f.tables[f.Index(at)].queues[in][c]
	if q == nil {
		return 0
	}
	return q.len()
}

// Fingerprint hashes the complete architectural state — cycle and move
// counters, every router input queue's contents and arbitration
// rotation, and every core receive buffer — with FNV-1a. Two fabrics
// that evolved identically have equal fingerprints each cycle; the
// equivalence tests compare engines through this.
func (f *Fabric) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mixQueue := func(tag uint64, q *queue) {
		if q == nil || q.empty() {
			return
		}
		mix(tag)
		mix(uint64(q.len()))
		for k := 0; k < q.len(); k++ {
			mix(uint64(q.at(k)))
		}
	}
	mix(uint64(f.cycle))
	mix(uint64(f.moves))
	for i := range f.routers {
		mix(uint64(f.routers[i].rr))
		tb := &f.tables[i]
		for in := Port(0); in < NumPorts; in++ {
			for c := 0; c < MaxColors; c++ {
				mixQueue(uint64(i)<<16|uint64(in)<<8|uint64(c), tb.queues[in][c])
			}
		}
		for c := 0; c < MaxColors; c++ {
			mixQueue(uint64(i)<<16|uint64(NumPorts)<<8|uint64(c), f.rx[i][c])
		}
	}
	return h
}

// Quiescent reports whether no words remain anywhere in the fabric
// (router queues only; core receive buffers may still hold words).
func (f *Fabric) Quiescent() bool {
	for i := range f.routers {
		r := &f.routers[i]
		for j := range r.active {
			if !r.active[j].q.empty() {
				return false
			}
		}
	}
	return true
}

// Drain steps until quiescent or maxCycles is exceeded, returning the
// number of cycles stepped and whether the fabric drained. It detects
// deadlock/livelock as "no words moved for width+height cycles".
func (f *Fabric) Drain(maxCycles int) (int, bool) {
	stall := 0
	stallLimit := f.W + f.H + 8
	for n := 0; n < maxCycles; n++ {
		if f.Quiescent() {
			return n, true
		}
		before := f.moves
		f.Step()
		if f.moves == before {
			stall++
			if stall > stallLimit {
				return n + 1, false
			}
		} else {
			stall = 0
		}
	}
	return maxCycles, f.Quiescent()
}
