package fabric

import "fmt"

// This file is the fabric's fast-forward support surface: the
// introspection the analytic phase replays need (entry layouts,
// arbitration counters, the hot set) and the two ways a replayed phase
// is applied back — dead-cycle advancement (AdvanceIdle) and full
// replay application (ApplyReplay). All of it is host-tooling around
// the same architectural state the steppers maintain; none of it can
// express a state a cycle-by-cycle run could not reach, and the
// preconditions panic rather than silently diverge.

// RouteKey identifies one configured route entry of a router: the
// input port and color it matches.
type RouteKey struct {
	In Port
	C  Color
}

// EntryLayout returns tile's configured route entries in arbitration
// order — the first-configured order the claim rotation walks, which
// is part of the simulated state. Analytic phase replays
// (perfmodel's exact stencil-exchange model) mirror this layout so
// their rotation decisions match the engine's entry for entry.
func (f *Fabric) EntryLayout(tile int) []RouteKey {
	r := &f.routers[tile]
	out := make([]RouteKey, len(r.active))
	for i := range r.active {
		out[i] = RouteKey{In: r.active[i].in, C: r.active[i].c}
	}
	return out
}

// RR returns tile's arbitration rotation counter.
func (f *Fabric) RR(tile int) int64 { return f.routers[tile].rr }

// HotCount returns the number of tiles currently marked hot — tiles
// the next Step's claim phase will visit (and charge one arbitration
// rotation each).
func (f *Fabric) HotCount() int {
	n := 0
	for _, l := range f.hotLists {
		n += len(l)
	}
	return n
}

// HotTiles returns the currently hot tiles in shard-list order.
func (f *Fabric) HotTiles() []int {
	out := make([]int, 0, f.HotCount())
	for _, l := range f.hotLists {
		out = append(out, l...)
	}
	return out
}

// AdvanceIdle advances the cycle counter by n dead cycles. It is the
// fast-forward image of n Step calls on a fabric that provably cannot
// change: no words anywhere and no hot tiles (a hot tile would charge
// an arbitration rotation on the first cycle). Panics if either holds
// work, since skipping it would diverge from a stepped run.
func (f *Fabric) AdvanceIdle(n int64) {
	if n == 0 {
		return
	}
	if n < 0 {
		panic("fabric: AdvanceIdle of negative cycles")
	}
	if !f.Quiescent() || f.HotCount() > 0 {
		panic("fabric: AdvanceIdle on a non-idle fabric")
	}
	f.cycle += n
}

// ApplyReplay applies the outcome of an analytically replayed
// communication phase: the cycle and move counters advance by the
// replay's totals, every router's arbitration counter is set to its
// replayed final value (rr[tile], len = tile count), and the hot set
// is replaced by the replay's final hot set. The fabric must be
// quiescent before and is quiescent after — replays model phases whose
// traffic fully drains — so queue state needs no touching. Callers are
// responsible for the replay being exact; the equivalence tests pin
// that end to end.
func (f *Fabric) ApplyReplay(cycles, moves int64, rr []int64, hot []int) {
	if !f.Quiescent() {
		panic("fabric: ApplyReplay on a non-quiescent fabric")
	}
	if len(rr) != len(f.routers) {
		panic(fmt.Sprintf("fabric: ApplyReplay rr length %d, want %d", len(rr), len(f.routers)))
	}
	f.cycle += cycles
	f.moves += moves
	for i := range f.routers {
		r := &f.routers[i]
		r.rr = rr[i]
		if n := len(r.active); n > 0 {
			r.rrIdx = int32(r.rr % int64(n))
		}
	}
	for s := range f.hotLists {
		for _, ti := range f.hotLists[s] {
			f.hot[ti] = false
		}
		f.hotLists[s] = f.hotLists[s][:0]
	}
	for _, ti := range hot {
		f.markHot(ti)
	}
}
