package fabric

// This file provides a canonical saturating traffic pattern shared by
// the stepping-engine benchmarks (bench_test.go at the repo root), the
// examples/scaling study and the engine equivalence tests, so all three
// measure and check the same workload.

// BuildPath routes color c from src for hops links in direction out,
// delivering to the final tile's core ramp.
func BuildPath(f *Fabric, src Coord, out Port, hops int, c Color) {
	f.SetRoute(src, Ramp, c, Mask(out))
	dx, dy := out.Delta()
	at := src
	for k := 1; k < hops; k++ {
		at = Coord{X: at.X + dx, Y: at.Y + dy}
		f.SetRoute(at, out.Opposite(), c, Mask(out))
	}
	at = Coord{X: at.X + dx, Y: at.Y + dy}
	f.SetRoute(at, out.Opposite(), c, Mask(Ramp))
}

// BuildFlows configures four directional flows spanning the fabric —
// color 0 east along every row, color 1 west, color 2 south along
// every column, color 3 north — so that at steady state every router
// moves words on all four mesh links each cycle.
func BuildFlows(f *Fabric) {
	for y := 0; y < f.H; y++ {
		BuildPath(f, Coord{X: 0, Y: y}, East, f.W-1, 0)
		BuildPath(f, Coord{X: f.W - 1, Y: y}, West, f.W-1, 1)
	}
	for x := 0; x < f.W; x++ {
		BuildPath(f, Coord{X: x, Y: 0}, South, f.H-1, 2)
		BuildPath(f, Coord{X: x, Y: f.H - 1}, North, f.H-1, 3)
	}
}

// DriveFlows injects one word at every BuildFlows source, drains every
// sink, and steps one cycle, keeping the fabric saturated at an
// injection/drain cost of O(W+H) per cycle.
func DriveFlows(f *Fabric) {
	for y := 0; y < f.H; y++ {
		f.Send(Coord{X: 0, Y: y}, Word{Color: 0, Bits: uint32(y)})
		f.Send(Coord{X: f.W - 1, Y: y}, Word{Color: 1, Bits: uint32(y)})
		f.Recv(Coord{X: f.W - 1, Y: y}, 0)
		f.Recv(Coord{X: 0, Y: y}, 1)
	}
	for x := 0; x < f.W; x++ {
		f.Send(Coord{X: x, Y: 0}, Word{Color: 2, Bits: uint32(x)})
		f.Send(Coord{X: x, Y: f.H - 1}, Word{Color: 3, Bits: uint32(x)})
		f.Recv(Coord{X: x, Y: f.H - 1}, 2)
		f.Recv(Coord{X: x, Y: 0}, 3)
	}
	f.Step()
}
