package fabric

import (
	"math/rand"
	"testing"
)

// FuzzRouterDelivery fuzzes the engine-equivalence contract over
// randomized route configurations: a set of single-target flows (each
// on its own color, from a random source straight to the fabric edge,
// delivered to the edge tile's core) driven with random injection, on a
// Sequential fabric and a force-parallel Sharded one in lockstep. Every
// cycle both fabrics must agree on Send admission, delivered words, and
// the complete architectural-state fingerprint. The seed corpus lives
// in testdata/fuzz/FuzzRouterDelivery; CI runs this target in the
// fuzz-smoke job.
func FuzzRouterDelivery(f *testing.F) {
	f.Add(int64(1), uint64(0x0808), uint64(24))
	f.Add(int64(42), uint64(0x0c05), uint64(64))
	f.Add(int64(-7), uint64(0x0310), uint64(40))
	f.Add(int64(1<<40), uint64(0x0202), uint64(8))
	f.Fuzz(func(t *testing.T, seed int64, dims, cycles uint64) {
		w := int(dims&0xff)%12 + 2
		h := int((dims>>8)&0xff)%12 + 2
		nCycles := int(cycles%96) + 8
		rng := rand.New(rand.NewSource(seed))

		type flow struct {
			src, dst Coord
			c        Color
		}
		nFlows := rng.Intn(6) + 2
		flows := make([]flow, 0, nFlows)
		build := func(fb *Fabric) {
			// Same rng stream rebuilt per fabric so both get identical
			// routes; flows recorded only on the first pass.
			r := rand.New(rand.NewSource(seed + 1))
			record := len(flows) == 0
			for i := 0; i < nFlows; i++ {
				dir := []Port{North, East, South, West}[r.Intn(4)]
				src := Coord{X: r.Intn(w), Y: r.Intn(h)}
				// Run the flow from src straight to the fabric edge.
				var hops int
				switch dir {
				case East:
					hops = w - 1 - src.X
				case West:
					hops = src.X
				case South:
					hops = h - 1 - src.Y
				case North:
					hops = src.Y
				}
				if hops == 0 {
					// Already on the edge: deliver straight to own core.
					fb.SetRoute(src, Ramp, Color(i), Mask(Ramp))
					if record {
						flows = append(flows, flow{src: src, dst: src, c: Color(i)})
					}
					continue
				}
				BuildPath(fb, src, dir, hops, Color(i))
				dx, dy := dir.Delta()
				dst := Coord{X: src.X + hops*dx, Y: src.Y + hops*dy}
				if record {
					flows = append(flows, flow{src: src, dst: dst, c: Color(i)})
				}
			}
		}

		seq := New(Config{W: w, H: h})
		build(seq)
		st := Sharded(rng.Intn(6) + 2)
		st.(*engine).forceParallel = true
		par := New(Config{W: w, H: h, Stepper: st})
		defer par.Close()
		build(par)

		for cyc := 0; cyc < nCycles; cyc++ {
			for _, fl := range flows {
				if rng.Intn(2) == 0 {
					wd := Word{Color: fl.c, Bits: rng.Uint32()}
					a := seq.Send(fl.src, wd)
					b := par.Send(fl.src, wd)
					if a != b {
						t.Fatalf("cycle %d: Send admission diverges on flow %v: seq %v sharded %v", cyc, fl, a, b)
					}
				}
			}
			seq.Step()
			par.Step()
			for _, fl := range flows {
				wa, oka := seq.Recv(fl.dst, fl.c)
				wb, okb := par.Recv(fl.dst, fl.c)
				if oka != okb || wa != wb {
					t.Fatalf("cycle %d: delivery diverges on flow %v: seq (%v,%v) sharded (%v,%v)",
						cyc, fl, wa, oka, wb, okb)
				}
			}
			if fa, fb := seq.Fingerprint(), par.Fingerprint(); fa != fb {
				t.Fatalf("cycle %d: state fingerprints diverge: seq %#x sharded %#x", cyc, fa, fb)
			}
		}
	})
}
