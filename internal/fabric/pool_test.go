package fabric

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestPoolCloseIdempotentAndInlineAfter checks the Close contract:
// Close is idempotent (any number of calls, via the Fabric or the
// Stepper), and a closed engine keeps stepping with bit-identical
// results — it just runs inline.
func TestPoolCloseIdempotentAndInlineAfter(t *testing.T) {
	seq := trafficFabric(12, 12, Sequential())
	st := Sharded(4)
	st.(*engine).forceParallel = true
	par := trafficFabric(12, 12, st)
	rngA := rand.New(rand.NewSource(11))
	rngB := rand.New(rand.NewSource(11))
	for cyc := 0; cyc < 60; cyc++ {
		driveCycle(seq, rngA)
		driveCycle(par, rngB)
	}
	if st.(*engine).pool == nil {
		t.Fatal("forced parallel stepping did not start a worker pool")
	}
	par.Close()
	par.Close() // idempotent via the fabric
	st.Close()  // and via the stepper
	par.Close() // and again
	if st.(*engine).pool != nil {
		t.Fatal("Close left the pool attached")
	}
	for cyc := 0; cyc < 60; cyc++ {
		driveCycle(seq, rngA)
		driveCycle(par, rngB)
		if fa, fb := seq.Fingerprint(), par.Fingerprint(); fa != fb {
			t.Fatalf("post-Close cycle %d: fingerprints diverge: %#x vs %#x", cyc, fa, fb)
		}
	}
	// Closing an engine that never went parallel (or the Sequential
	// engine) is a no-op.
	seq.Close()
	seq.Close()
}

// settledGoroutines forces garbage collection until the goroutine count
// stops changing, so pools left behind by earlier tests (reclaimed
// asynchronously by their runtime cleanups) cannot skew a baseline.
func settledGoroutines() int {
	prev := -1
	for i := 0; i < 100; i++ {
		runtime.GC()
		time.Sleep(5 * time.Millisecond)
		if n := runtime.NumGoroutine(); n == prev {
			return n
		} else {
			prev = n
		}
	}
	return prev
}

// TestPoolGoroutinesReleasedOnClose pins the lifecycle guarantee that
// motivated the Close/finalizer design: after Close, the worker
// goroutines exit and the count returns to its pre-pool baseline.
func TestPoolGoroutinesReleasedOnClose(t *testing.T) {
	const workers = 6
	base := settledGoroutines()
	st := Sharded(workers)
	st.(*engine).forceParallel = true
	f := trafficFabric(10, 10, st)
	rng := rand.New(rand.NewSource(5))
	for cyc := 0; cyc < 30; cyc++ {
		driveCycle(f, rng)
	}
	if g := runtime.NumGoroutine(); g < base+workers {
		t.Fatalf("pool not running: %d goroutines, baseline %d, want >= %d", g, base, base+workers)
	}
	f.Close()
	// Workers exit as soon as they observe the closed wake channel; give
	// the scheduler a generous window, with slack for unrelated runtime
	// goroutines.
	deadline := time.Now().Add(5 * time.Second)
	slack := base + 1
	for runtime.NumGoroutine() > slack && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > slack {
		t.Fatalf("goroutines did not return to baseline after Close: %d, baseline %d", g, base)
	}
}

// buildAbandonedPool starts a pool and drops every reference to the
// fabric and stepper. Kept noinline so no stack slot in the caller can
// keep the fabric reachable.
//
//go:noinline
func buildAbandonedPool(workers int) {
	st := Sharded(workers)
	st.(*engine).forceParallel = true
	f := trafficFabric(10, 10, st)
	rng := rand.New(rand.NewSource(6))
	for cyc := 0; cyc < 10; cyc++ {
		driveCycle(f, rng)
	}
}

// TestPoolReclaimedWithoutClose pins the "pool must not pin the Fabric"
// half of the design: a fabric that is dropped without Close becomes
// unreachable (parked workers hold no reference to it), its runtime
// cleanup fires, and the worker goroutines exit on their own.
func TestPoolReclaimedWithoutClose(t *testing.T) {
	base := settledGoroutines()
	buildAbandonedPool(6)
	deadline := time.Now().Add(5 * time.Second)
	got := runtime.NumGoroutine()
	for got > base+1 && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
		got = runtime.NumGoroutine()
	}
	if got > base+1 {
		t.Fatalf("abandoned pool was not reclaimed: %d goroutines, baseline %d — the pool is pinning the fabric", got, base)
	}
}

// TestPoolServesCoreStepping checks RunSharded: the same pool (same
// tile partition) that steps the routers serves per-tile callbacks, and
// every shard range is visited exactly once per call.
func TestPoolServesCoreStepping(t *testing.T) {
	st := Sharded(4)
	f := New(Config{W: 8, H: 8, Stepper: st})
	defer f.Close()
	counts := make([]int, 64)
	var mu sync.Mutex
	for round := 0; round < 3; round++ {
		f.RunSharded(func(lo, hi int) {
			mu.Lock()
			for ti := lo; ti < hi; ti++ {
				counts[ti]++
			}
			mu.Unlock()
		})
	}
	for ti, c := range counts {
		if c != 3 {
			t.Fatalf("tile %d visited %d times over 3 RunSharded calls, want 3", ti, c)
		}
	}
}

// TestShardedWorkerClamp pins the documented clamp rule: workers <= 0
// means one per available CPU, and at bind time the shard count is
// capped at the tile count.
func TestShardedWorkerClamp(t *testing.T) {
	gmp := runtime.GOMAXPROCS(0)
	cases := []struct {
		name       string
		req        int
		w, h       int
		wantShards int
	}{
		{"negative-means-gomaxprocs", -3, 32, 32, gmp},
		{"zero-means-gomaxprocs", 0, 32, 32, gmp},
		{"one-is-sequential", 1, 8, 8, 1},
		{"plain", 5, 32, 32, 5},
		{"more-workers-than-tiles", 99, 2, 2, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := Sharded(tc.req)
			f := New(Config{W: tc.w, H: tc.h, Stepper: st})
			defer f.Close()
			if got := len(f.ShardRanges()); got != tc.wantShards {
				t.Errorf("Sharded(%d) on %dx%d: %d shards, want %d",
					tc.req, tc.w, tc.h, got, tc.wantShards)
			}
			// Shards must tile [0, W*H) contiguously with no gaps.
			next := 0
			for _, sr := range f.ShardRanges() {
				if sr[0] != next || sr[1] < sr[0] {
					t.Fatalf("shard ranges not contiguous: %v", f.ShardRanges())
				}
				next = sr[1]
			}
			if next != tc.w*tc.h {
				t.Fatalf("shard ranges do not cover the fabric: %v", f.ShardRanges())
			}
		})
	}
	if name := Sharded(7).Name(); name != "sharded-7" {
		t.Errorf("Sharded(7).Name() = %q", name)
	}
	wantAuto := "seq"
	if gmp > 1 {
		wantAuto = fmt.Sprintf("sharded-%d", gmp)
	}
	if name := Sharded(0).Name(); name != wantAuto {
		t.Errorf("Sharded(0).Name() = %q, want %q (GOMAXPROCS=%d)", name, wantAuto, gmp)
	}
}

// TestStepperRebindPanicMessage pins that the double-bind panic carries
// an actionable message.
func TestStepperRebindPanicMessage(t *testing.T) {
	st := Sharded(2)
	New(Config{W: 4, H: 4, Stepper: st})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic on rebinding a Stepper")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "already bound") {
			t.Fatalf("rebind panic message %q does not mention the double bind", msg)
		}
	}()
	New(Config{W: 4, H: 4, Stepper: st})
}
