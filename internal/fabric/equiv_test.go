package fabric

import (
	"fmt"
	"math/rand"
	"testing"
)

// trafficFabric builds a fabric saturated with the canonical
// BuildFlows pattern (four directional flows on colors 0–3), plus
// multicast on color 4: row 0 forwards east while also delivering to
// each core's ramp.
func trafficFabric(w, h int, st Stepper) *Fabric {
	f := New(Config{W: w, H: h, Stepper: st})
	BuildFlows(f)
	// Multicast row: forward east and deliver locally at every hop.
	f.SetRoute(Coord{0, 0}, Ramp, 4, Mask(East, Ramp))
	for x := 1; x < w-1; x++ {
		f.SetRoute(Coord{x, 0}, West, 4, Mask(East, Ramp))
	}
	f.SetRoute(Coord{w - 1, 0}, West, 4, Mask(Ramp))
	return f
}

// driveCycle injects pseudo-random traffic at the flow sources and
// drains the sinks, returning the drained words in deterministic order.
// Both fabrics of an equivalence pair run this with identically seeded
// generators; because Send/Recv outcomes depend only on fabric state,
// the generators stay in lockstep as long as the fabrics agree.
func driveCycle(f *Fabric, rng *rand.Rand) []Word {
	w, h := f.W, f.H
	for y := 0; y < h; y++ {
		if rng.Intn(3) > 0 {
			f.Send(Coord{0, y}, Word{Color: 0, Bits: rng.Uint32()})
		}
		if rng.Intn(3) > 0 {
			f.Send(Coord{w - 1, y}, Word{Color: 1, Bits: rng.Uint32()})
		}
	}
	for x := 0; x < w; x++ {
		if rng.Intn(3) > 0 {
			f.Send(Coord{x, 0}, Word{Color: 2, Bits: rng.Uint32()})
		}
		if rng.Intn(3) > 0 {
			f.Send(Coord{x, h - 1}, Word{Color: 3, Bits: rng.Uint32()})
		}
	}
	if rng.Intn(2) == 0 {
		f.Send(Coord{0, 0}, Word{Color: 4, Bits: rng.Uint32()})
	}
	f.Step()
	var got []Word
	for y := 0; y < h; y++ {
		if wd, ok := f.Recv(Coord{w - 1, y}, 0); ok {
			got = append(got, wd)
		}
		if wd, ok := f.Recv(Coord{0, y}, 1); ok {
			got = append(got, wd)
		}
	}
	for x := 0; x < w; x++ {
		if wd, ok := f.Recv(Coord{x, h - 1}, 2); ok {
			got = append(got, wd)
		}
		if wd, ok := f.Recv(Coord{x, 0}, 3); ok {
			got = append(got, wd)
		}
		if wd, ok := f.Recv(Coord{x, 0}, 4); ok {
			got = append(got, wd)
		}
	}
	return got
}

// TestShardedMatchesSequential is the golden equivalence test of the
// determinism contract: a randomized routed fabric stepped by Sequential
// and by Sharded(workers) must agree on the complete architectural state
// — every router queue and receive buffer, word for word — and on the
// words delivered to cores, every single cycle.
func TestShardedMatchesSequential(t *testing.T) {
	cases := []struct {
		w, h, workers int
	}{
		{8, 8, 2},
		{8, 8, 8},
		{16, 16, 4},
		{16, 16, 7}, // uneven shard sizes
		{5, 9, 3},   // non-square, workers not dividing rows
		{12, 4, 16}, // more workers than rows
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%dx%d-w%d", tc.w, tc.h, tc.workers), func(t *testing.T) {
			t.Parallel()
			seq := trafficFabric(tc.w, tc.h, Sequential())
			st := Sharded(tc.workers)
			// Small fabrics would otherwise always take the quiet-cycle
			// inline fallback; force the concurrent path under test.
			st.(*engine).forceParallel = true
			par := trafficFabric(tc.w, tc.h, st)
			rngA := rand.New(rand.NewSource(42))
			rngB := rand.New(rand.NewSource(42))
			cycles := 400
			for cyc := 0; cyc < cycles; cyc++ {
				a := driveCycle(seq, rngA)
				b := driveCycle(par, rngB)
				if len(a) != len(b) {
					t.Fatalf("cycle %d: delivered %d words sequentially, %d sharded", cyc, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("cycle %d: delivery %d differs: seq %+v sharded %+v", cyc, i, a[i], b[i])
					}
				}
				if fa, fb := seq.Fingerprint(), par.Fingerprint(); fa != fb {
					t.Fatalf("cycle %d: state fingerprints diverge: seq %#x sharded %#x", cyc, fa, fb)
				}
				if seq.Moves() != par.Moves() {
					t.Fatalf("cycle %d: moves diverge: seq %d sharded %d", cyc, seq.Moves(), par.Moves())
				}
			}
			// Spot-check a few explicit queue occupancies beyond the hash.
			for y := 0; y < tc.h; y++ {
				at := Coord{tc.w / 2, y}
				if a, b := seq.RouterQueueLen(at, West, 0), par.RouterQueueLen(at, West, 0); a != b {
					t.Fatalf("queue occupancy at %v differs: seq %d sharded %d", at, a, b)
				}
			}
		})
	}
}

// TestShardedDrain checks the engines agree through a full drain to
// quiescence, not just under continuous injection.
func TestShardedDrain(t *testing.T) {
	seq := trafficFabric(16, 16, Sequential())
	st := Sharded(8)
	st.(*engine).forceParallel = true
	par := trafficFabric(16, 16, st)
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	for cyc := 0; cyc < 64; cyc++ {
		driveCycle(seq, rngA)
		driveCycle(par, rngB)
	}
	// Stop injecting; drain both, popping sinks so backpressure clears.
	for cyc := 0; cyc < 4096 && !(seq.Quiescent() && par.Quiescent()); cyc++ {
		seq.Step()
		par.Step()
		for y := 0; y < 16; y++ {
			seq.Recv(Coord{15, y}, 0)
			par.Recv(Coord{15, y}, 0)
			seq.Recv(Coord{0, y}, 1)
			par.Recv(Coord{0, y}, 1)
		}
		for x := 0; x < 16; x++ {
			seq.Recv(Coord{x, 15}, 2)
			par.Recv(Coord{x, 15}, 2)
			seq.Recv(Coord{x, 0}, 3)
			par.Recv(Coord{x, 0}, 3)
			seq.Recv(Coord{x, 0}, 4)
			par.Recv(Coord{x, 0}, 4)
		}
		if fa, fb := seq.Fingerprint(), par.Fingerprint(); fa != fb {
			t.Fatalf("drain cycle %d: fingerprints diverge", cyc)
		}
	}
	if !seq.Quiescent() || !par.Quiescent() {
		t.Fatalf("fabrics did not drain: seq=%v sharded=%v", seq.Quiescent(), par.Quiescent())
	}
}

// TestStepperRebindPanics pins the single-binding contract.
func TestStepperRebindPanics(t *testing.T) {
	st := Sharded(4)
	New(Config{W: 4, H: 4, Stepper: st})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on rebinding a Stepper")
		}
	}()
	New(Config{W: 4, H: 4, Stepper: st})
}

// TestStepperNames pins the engine names used in benchmark sub-tests.
func TestStepperNames(t *testing.T) {
	if got := Sequential().Name(); got != "seq" {
		t.Errorf("Sequential().Name() = %q", got)
	}
	if got := Sharded(8).Name(); got != "sharded-8" {
		t.Errorf("Sharded(8).Name() = %q", got)
	}
	f := New(Config{W: 2, H: 2})
	if f.StepperName() != "seq" {
		t.Errorf("default stepper = %q, want seq", f.StepperName())
	}
	if n := len(f.ShardRanges()); n != 1 {
		t.Errorf("default shard count = %d, want 1", n)
	}
}
