package fabric

import "fmt"

// This file captures and restores the fabric's complete architectural
// state — everything Fingerprint hashes plus the hot-tile marks the
// arbitration walk depends on. The wse machine snapshot (wse/snapshot.go)
// embeds a State; the versioned binary encoding lives there, keeping
// this package free of serialization concerns.

// QueueSnap is the contents of one non-empty word queue. In < NumPorts
// addresses a router input queue for (In, Color); In == NumPorts
// addresses the tile's core receive buffer for Color.
type QueueSnap struct {
	Tile  int32
	In    uint8
	Color uint8
	Words []uint32
}

// State is a restorable capture of a Fabric. Two fabrics with the same
// routing program and equal States evolve bit-identically from that
// point on, for any stepping engine.
type State struct {
	W, H         int
	Cycle, Moves int64
	// RR is each router's output arbitration rotation (only rotation
	// slot 0 is ever advanced by the stepping engines; see router.rr).
	RR []int64
	// Queues lists every non-empty router input queue and core receive
	// buffer, in tile/port/color order.
	Queues []QueueSnap
	// Hot lists the tiles currently marked hot (ascending). Hot marks
	// are architectural: the claim walk advances a hot tile's
	// arbitration rotation every cycle until the tile cools, so a
	// restore that dropped them would let rr drift from the original.
	Hot []int32
}

// CaptureState snapshots the fabric. It must not run concurrently with
// Step.
func (f *Fabric) CaptureState() *State {
	s := &State{W: f.W, H: f.H, Cycle: f.cycle, Moves: f.moves, RR: make([]int64, len(f.routers))}
	snapQueue := func(tile int, in uint8, c uint8, q *queue) {
		if q == nil || q.empty() {
			return
		}
		qs := QueueSnap{Tile: int32(tile), In: in, Color: c, Words: make([]uint32, q.len())}
		for k := range qs.Words {
			qs.Words[k] = q.at(k)
		}
		s.Queues = append(s.Queues, qs)
	}
	for i := range f.routers {
		s.RR[i] = f.routers[i].rr
		tb := &f.tables[i]
		for in := Port(0); in < NumPorts; in++ {
			for c := 0; c < MaxColors; c++ {
				snapQueue(i, uint8(in), uint8(c), tb.queues[in][c])
			}
		}
		for c := 0; c < MaxColors; c++ {
			snapQueue(i, uint8(NumPorts), uint8(c), f.rx[i][c])
		}
	}
	for i, h := range f.hot {
		if h {
			s.Hot = append(s.Hot, int32(i))
		}
	}
	return s
}

// RestoreState loads s into the fabric, which must have the same
// dimensions and the same routing program as the captured one (every
// captured router queue must exist here). Queue contents, counters,
// arbitration rotations and hot marks are replaced wholesale; the
// engine shard partition may differ (hot marks re-shard on restore), so
// a capture restores across worker counts.
func (f *Fabric) RestoreState(s *State) error {
	if s.W != f.W || s.H != f.H {
		return fmt.Errorf("fabric: snapshot is %dx%d, fabric is %dx%d", s.W, s.H, f.W, f.H)
	}
	if len(s.RR) != len(f.routers) {
		return fmt.Errorf("fabric: snapshot has %d routers, fabric has %d", len(s.RR), len(f.routers))
	}
	// Reset live state.
	for i := range f.routers {
		r := &f.routers[i]
		r.rr = s.RR[i]
		if n := len(r.active); n > 0 {
			r.rrIdx = int32(r.rr % int64(n))
		}
		r.occ = 0 // queue refill below re-sets bits via push
		tb := &f.tables[i]
		for in := Port(0); in < NumPorts; in++ {
			for c := 0; c < MaxColors; c++ {
				if q := tb.queues[in][c]; q != nil {
					q.head, q.size = 0, 0
				}
			}
		}
		for c := 0; c < MaxColors; c++ {
			if q := f.rx[i][c]; q != nil {
				q.head, q.size = 0, 0
			}
		}
	}
	f.cycle, f.moves = s.Cycle, s.Moves
	for i := range f.hot {
		f.hot[i] = false
	}
	for sh := range f.hotLists {
		f.hotLists[sh] = f.hotLists[sh][:0]
	}
	// Refill queues.
	for _, qs := range s.Queues {
		ti := int(qs.Tile)
		if ti < 0 || ti >= len(f.routers) {
			return fmt.Errorf("fabric: snapshot queue at tile %d out of range", ti)
		}
		if qs.Color >= MaxColors || qs.In > uint8(NumPorts) {
			return fmt.Errorf("fabric: snapshot queue at tile %d has bad port/color %d/%d", ti, qs.In, qs.Color)
		}
		var q *queue
		if qs.In == uint8(NumPorts) {
			q = f.rxQueue(ti, Color(qs.Color))
		} else {
			q = f.tables[ti].queues[qs.In][qs.Color]
			if q == nil {
				return fmt.Errorf("fabric: snapshot has words on (%v,%d) at tile %d but no such route is configured",
					Port(qs.In), qs.Color, ti)
			}
		}
		for _, w := range qs.Words {
			if !q.push(w) {
				return fmt.Errorf("fabric: snapshot queue at tile %d (%d words) exceeds configured depth %d",
					ti, len(qs.Words), len(q.buf))
			}
		}
	}
	for _, t := range s.Hot {
		if t < 0 || int(t) >= len(f.hot) {
			return fmt.Errorf("fabric: snapshot hot tile %d out of range", t)
		}
		f.markHot(int(t))
	}
	return nil
}
