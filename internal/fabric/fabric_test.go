package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/fp16"
)

func TestPortOpposite(t *testing.T) {
	for _, p := range []Port{North, East, South, West} {
		if p.Opposite().Opposite() != p {
			t.Errorf("Opposite not involutive for %v", p)
		}
		dx, dy := p.Delta()
		ox, oy := p.Opposite().Delta()
		if dx != -ox || dy != -oy {
			t.Errorf("Delta of %v and its opposite do not cancel", p)
		}
	}
}

func TestWordPacking(t *testing.T) {
	f := func(a, b uint16) bool {
		lo, hi := fp16.FromBits(a), fp16.FromBits(b)
		w := PackF16(3, lo, hi)
		gl, gh := w.UnpackF16()
		return gl == lo && gh == hi && w.Color == 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	w := WordF32(1, 3.25)
	if w.F32() != 3.25 {
		t.Errorf("WordF32 round-trip = %g", w.F32())
	}
}

// buildEastPath routes color c from tile (0,y) eastward to (last,y)'s core.
func buildEastPath(f *Fabric, y int, c Color) {
	last := f.W - 1
	f.SetRoute(Coord{0, y}, Ramp, c, Mask(East))
	for x := 1; x < last; x++ {
		f.SetRoute(Coord{x, y}, West, c, Mask(East))
	}
	f.SetRoute(Coord{last, y}, West, c, Mask(Ramp))
}

func TestSingleWordLatency(t *testing.T) {
	// One hop per cycle: a word crossing d links plus the final ramp
	// delivery arrives after d+1 cycles.
	f := New(Config{W: 8, H: 1})
	buildEastPath(f, 0, 0)
	if !f.Send(Coord{0, 0}, WordF32(0, 42)) {
		t.Fatal("send failed")
	}
	dst := Coord{7, 0}
	cycles := 0
	for {
		if _, ok := f.Recv(dst, 0); ok {
			break
		}
		f.Step()
		cycles++
		if cycles > 100 {
			t.Fatal("word never arrived")
		}
	}
	// 7 link hops + 1 ramp hop = 8 cycles.
	if cycles != 8 {
		t.Errorf("latency = %d cycles, want 8 (one per hop)", cycles)
	}
}

func TestStreamThroughput(t *testing.T) {
	// After pipeline fill, a stream delivers one word per cycle.
	f := New(Config{W: 5, H: 1})
	buildEastPath(f, 0, 0)
	src, dst := Coord{0, 0}, Coord{4, 0}
	const n = 32
	sent, recvd := 0, 0
	var firstArrival, lastArrival int64
	for cycles := 0; cycles < 500 && recvd < n; cycles++ {
		if sent < n && f.Send(src, WordF32(0, float32(sent))) {
			sent++
		}
		f.Step()
		if w, ok := f.Recv(dst, 0); ok {
			if w.F32() != float32(recvd) {
				t.Fatalf("out-of-order delivery: got %g, want %d", w.F32(), recvd)
			}
			if recvd == 0 {
				firstArrival = f.Cycle()
			}
			lastArrival = f.Cycle()
			recvd++
		}
	}
	if recvd != n {
		t.Fatalf("only %d/%d words arrived", recvd, n)
	}
	span := lastArrival - firstArrival
	if span != n-1 {
		t.Errorf("delivery span = %d cycles for %d words, want %d (1/cycle)", span, n, n-1)
	}
}

func TestMulticastFanout(t *testing.T) {
	// A single injected word fans out to all four neighbours' cores.
	f := New(Config{W: 3, H: 3})
	c := Color(2)
	ctr := Coord{1, 1}
	f.SetRoute(ctr, Ramp, c, Mask(North, East, South, West))
	for _, p := range []Port{North, East, South, West} {
		dx, dy := p.Delta()
		nb := Coord{ctr.X + dx, ctr.Y + dy}
		f.SetRoute(nb, p.Opposite(), c, Mask(Ramp))
	}
	if !f.Send(ctr, WordF32(c, 7)) {
		t.Fatal("send failed")
	}
	for i := 0; i < 5; i++ {
		f.Step()
	}
	for _, p := range []Port{North, East, South, West} {
		dx, dy := p.Delta()
		nb := Coord{ctr.X + dx, ctr.Y + dy}
		w, ok := f.Recv(nb, c)
		if !ok || w.F32() != 7 {
			t.Errorf("neighbour %v did not receive multicast copy", nb)
		}
	}
	if !f.Quiescent() {
		t.Error("fabric should be quiescent after delivery")
	}
}

func TestParallelLinks(t *testing.T) {
	// Two crossing streams on different colors share a router: both move
	// every cycle because the router serves all five links in parallel.
	f := New(Config{W: 3, H: 3})
	// East-bound stream through (1,1) on color 0 (row y=1).
	f.SetRoute(Coord{0, 1}, Ramp, 0, Mask(East))
	f.SetRoute(Coord{1, 1}, West, 0, Mask(East))
	f.SetRoute(Coord{2, 1}, West, 0, Mask(Ramp))
	// South-bound stream through (1,1) on color 1 (column x=1).
	f.SetRoute(Coord{1, 0}, Ramp, 1, Mask(South))
	f.SetRoute(Coord{1, 1}, North, 1, Mask(South))
	f.SetRoute(Coord{1, 2}, North, 1, Mask(Ramp))

	const n = 16
	se, ss, re, rs := 0, 0, 0, 0
	for cycles := 0; cycles < 200 && (re < n || rs < n); cycles++ {
		if se < n && f.Send(Coord{0, 1}, WordF32(0, float32(se))) {
			se++
		}
		if ss < n && f.Send(Coord{1, 0}, WordF32(1, float32(ss))) {
			ss++
		}
		f.Step()
		if _, ok := f.Recv(Coord{2, 1}, 0); ok {
			re++
		}
		if _, ok := f.Recv(Coord{1, 2}, 1); ok {
			rs++
		}
	}
	if re != n || rs != n {
		t.Fatalf("crossing streams lost words: %d, %d of %d", re, rs, n)
	}
	// Total cycle count must be close to n + pipeline depth, not 2n: the
	// streams really ran concurrently.
	if f.Cycle() > int64(n+12) {
		t.Errorf("crossing streams serialized: %d cycles for %d words", f.Cycle(), n)
	}
}

func TestBackpressureLossless(t *testing.T) {
	// A fast sender into a slow receiver must not lose or reorder words.
	f := New(Config{W: 4, H: 1, QueueDepth: 2, RxDepth: 1})
	buildEastPath(f, 0, 0)
	src, dst := Coord{0, 0}, Coord{3, 0}
	const n = 24
	sent, got := 0, 0
	for cycles := 0; cycles < 1000 && got < n; cycles++ {
		if sent < n && f.Send(src, WordF32(0, float32(sent))) {
			sent++
		}
		f.Step()
		// Receiver drains only every third cycle.
		if cycles%3 == 0 {
			if w, ok := f.Recv(dst, 0); ok {
				if w.F32() != float32(got) {
					t.Fatalf("reorder/loss: got %g want %d", w.F32(), got)
				}
				got++
			}
		}
	}
	if got != n {
		t.Fatalf("received %d/%d", got, n)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// A cyclic route with depth-1 queues and no exit deadlocks; Drain
	// must detect it rather than spin forever.
	f := New(Config{W: 2, H: 2, QueueDepth: 1})
	c := Color(0)
	// Ring: (0,0) -> E -> (1,0) -> S -> (1,1) -> W -> (0,1) -> N -> (0,0).
	f.SetRoute(Coord{0, 0}, Ramp, c, Mask(East))
	f.SetRoute(Coord{1, 0}, Ramp, c, Mask(South))
	f.SetRoute(Coord{1, 1}, Ramp, c, Mask(West))
	f.SetRoute(Coord{0, 1}, Ramp, c, Mask(North))
	f.SetRoute(Coord{1, 0}, West, c, Mask(South))
	f.SetRoute(Coord{1, 1}, North, c, Mask(West))
	f.SetRoute(Coord{0, 1}, East, c, Mask(North))
	f.SetRoute(Coord{0, 0}, South, c, Mask(East))
	// Fill the ring: inject from all four ramps for several cycles.
	for i := 0; i < 4; i++ {
		f.Send(Coord{0, 0}, WordF32(c, 1))
		f.Send(Coord{1, 0}, WordF32(c, 1))
		f.Send(Coord{1, 1}, WordF32(c, 1))
		f.Send(Coord{0, 1}, WordF32(c, 1))
		f.Step()
	}
	_, drained := f.Drain(10000)
	if drained {
		t.Error("cyclic full ring should deadlock, but Drain reported success")
	}
}

func TestUnroutedColorPanics(t *testing.T) {
	f := New(Config{W: 2, H: 1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for send on unrouted color")
		}
	}()
	f.Send(Coord{0, 0}, WordF32(5, 1))
}

func TestQuiescentDrain(t *testing.T) {
	f := New(Config{W: 6, H: 1})
	buildEastPath(f, 0, 3)
	if !f.Quiescent() {
		t.Error("empty fabric should be quiescent")
	}
	f.Send(Coord{0, 0}, WordF32(3, 1))
	n, ok := f.Drain(100)
	if !ok {
		t.Fatal("drain failed")
	}
	if n == 0 || n > 10 {
		t.Errorf("drain took %d cycles, want ~6", n)
	}
	if _, got := f.Recv(Coord{5, 0}, 3); !got {
		t.Error("word missing after drain")
	}
}

// TestRxDeliveryCallback pins the rx-wake event edge: registered
// callbacks fire exactly when a word is committed into a core receive
// buffer — once per delivered word, with the destination tile index,
// on both the single-output fast path and the multicast path.
func TestRxDeliveryCallback(t *testing.T) {
	f := New(Config{W: 4, H: 1})
	buildEastPath(f, 0, 3) // color 3: (0,0) → (3,0), single-output hops
	// Multicast: color 5 fans out from (1,0) to its own ramp and east
	// to (2,0)'s ramp.
	f.SetRoute(Coord{1, 0}, Ramp, 5, Mask(Ramp, East))
	f.SetRoute(Coord{2, 0}, West, 5, Mask(Ramp))

	var got []int
	colors := map[int]Color{}
	f.OnRxDelivery(func(tile int, c Color) {
		got = append(got, tile)
		colors[tile] = c
	})
	if s := f.ShardOf(3); s != 0 {
		t.Fatalf("ShardOf(3) = %d on a sequential fabric, want 0", s)
	}

	f.Send(Coord{0, 0}, WordF32(3, 1))
	f.Send(Coord{1, 0}, WordF32(5, 2))
	for i := 0; i < 8; i++ {
		f.Step()
	}
	want := map[int]int{3: 1, 1: 1, 2: 1} // tile index → delivery count
	counts := map[int]int{}
	for _, ti := range got {
		counts[ti]++
	}
	if len(got) != 3 || counts[3] != want[3] || counts[1] != want[1] || counts[2] != want[2] {
		t.Errorf("rx callbacks = %v, want one delivery each at tiles 1, 2, 3", got)
	}
	if colors[3] != 3 || colors[1] != 5 || colors[2] != 5 {
		t.Errorf("rx callback colors = %v, want color 3 at tile 3 and color 5 at tiles 1, 2", colors)
	}
}
