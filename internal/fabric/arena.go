package fabric

// shardArena is a bump allocator for the router and core-rx queues of
// one engine shard. Queue headers and ring buffers come from large
// contiguous chunks, so the claim/commit loops of a shard walk memory
// that was allocated together instead of chasing individually
// heap-allocated queues spread across the whole fabric. Pointers handed
// out remain stable: a full chunk is simply abandoned (it stays alive
// through the queues that reference it) and a fresh one started.
//
// Arenas are single-owner by construction: configuration-time
// allocation (SetRoute) happens before stepping, and stepping-time
// allocation (lazy rx queues) is only ever performed by the shard that
// owns the tile, so no locking is needed.
type shardArena struct {
	qfree []queue  // spare queue headers in the current chunk
	wfree []uint32 // spare ring-buffer words in the current chunk
}

const (
	arenaQueueChunk = 512
	arenaWordChunk  = 8192
)

// newQueue allocates a queue of the given depth from the arena.
func (a *shardArena) newQueue(depth int) *queue {
	if len(a.qfree) == 0 {
		a.qfree = make([]queue, arenaQueueChunk)
	}
	q := &a.qfree[0]
	a.qfree = a.qfree[1:]
	if len(a.wfree) < depth {
		n := arenaWordChunk
		if depth > n {
			n = depth
		}
		a.wfree = make([]uint32, n)
	}
	q.buf = a.wfree[:depth:depth]
	a.wfree = a.wfree[depth:]
	return q
}
