package fabric

import (
	"fmt"
	"math/bits"
	"runtime"
)

// Stepper is the engine that advances a Fabric by one cycle. Two
// implementations exist: Sequential steps every router on the calling
// goroutine; Sharded partitions the tile grid into contiguous shards and
// steps them on a persistent worker pool with a two-phase
// (claim-then-commit) barrier per cycle.
//
// Determinism contract: both engines produce bit-identical architectural
// state, cycle for cycle — the same router queue contents and
// occupancies, the same core receive buffers, the same Moves counter.
// This holds because the claim phase reads only pre-cycle queue state
// (it mutates nothing another shard can observe), each queue receives at
// most one push and one pop per cycle, and every queue is committed by
// the shard that owns its tile, pops before pushes — exactly the order
// of the sequential engine. The equivalence golden test in equiv_test.go
// enforces the contract against state fingerprints every cycle, and
// FuzzRouterDelivery extends it to randomized flow configurations.
//
// A Stepper instance is bound to the first Fabric it is given and must
// not be shared between fabrics.
type Stepper interface {
	// Name identifies the engine, e.g. for benchmark sub-names.
	Name() string
	// Close releases the engine's worker pool, if one is running. It is
	// idempotent, a no-op for Sequential, and must not be called
	// concurrently with stepping. The engine stays usable afterwards:
	// subsequent cycles step inline.
	Close()

	bind(f *Fabric)
	step(f *Fabric)
	shards() [][2]int
	runShards(fn func(lo, hi int))
}

// Sequential returns the single-goroutine stepping engine. It is the
// default when Config.Stepper is nil.
func Sequential() Stepper { return &engine{workers: 1} }

// Sharded returns a stepping engine that partitions the tile grid into
// contiguous shards and steps them concurrently on a persistent worker
// pool. The requested worker count is clamped by a documented rule:
// workers <= 0 means "one per available CPU" (runtime.GOMAXPROCS(0) at
// construction), and at bind time the count is capped at the fabric's
// tile count (a shard must own at least one tile). Cycles with little
// in-flight traffic fall back to inline stepping, so the sharded engine
// is never pathologically slower than Sequential on a quiet fabric.
func Sharded(workers int) Stepper {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &engine{workers: workers}
}

// parallelHotPerShard is the minimum average hot-tile count per shard
// below which a cycle is stepped inline instead of on the worker pool
// (the state evolution is identical either way; only wall-clock
// differs).
const parallelHotPerShard = 24

// engine implements both steppers: Sequential is the one-shard special
// case, which also makes the sequential path the trivially-correct
// reference for the parallel one.
type engine struct {
	workers int
	f       *Fabric
	n       int   // shard count after binding
	bounds  []int // len n+1; shard s owns tiles [bounds[s], bounds[s+1])
	sh      []shardState

	// pool is the persistent worker set, started lazily on the first
	// parallel cycle and stopped by Close or by the fabric's runtime
	// cleanup. closed latches Close: later cycles step inline.
	pool   *workerPool
	closed bool

	// procs caches GOMAXPROCS at bind time; on a single-P runtime the
	// worker pool cannot win, so every cycle steps inline.
	procs int

	// forceParallel disables the quiet-cycle and single-P inline
	// fallbacks so tests can drive the concurrent path anywhere.
	forceParallel bool
}

// shardState is the per-shard staging area reused across cycles.
type shardState struct {
	pops     []*queue
	pushes   [][]stagedPush // indexed by destination shard
	stillHot []int
	moves    int64
}

func (e *engine) Name() string {
	if e.workers <= 1 {
		return "seq"
	}
	return fmt.Sprintf("sharded-%d", e.workers)
}

func (e *engine) shards() [][2]int {
	out := make([][2]int, e.n)
	for s := 0; s < e.n; s++ {
		out[s] = [2]int{e.bounds[s], e.bounds[s+1]}
	}
	return out
}

func (e *engine) bind(f *Fabric) {
	if e.f != nil {
		if e.f == f {
			return
		}
		panic("fabric: Stepper already bound to another Fabric")
	}
	e.f = f
	e.procs = runtime.GOMAXPROCS(0)
	tiles := f.W * f.H
	n := e.workers
	if n < 1 {
		n = 1
	}
	if n > tiles {
		n = tiles
	}
	// shardOf is uint16; more shards than that is never useful anyway.
	if n > 1<<16-1 {
		n = 1<<16 - 1
	}
	e.n = n
	e.bounds = make([]int, n+1)
	for s := 0; s <= n; s++ {
		e.bounds[s] = s * tiles / n
	}
	e.sh = make([]shardState, n)
	f.shardOf = make([]uint16, tiles)
	f.arenas = make([]shardArena, n)
	for s := 0; s < n; s++ {
		e.sh[s].pushes = make([][]stagedPush, n)
		for ti := e.bounds[s]; ti < e.bounds[s+1]; ti++ {
			f.shardOf[ti] = uint16(s)
		}
	}
	f.hotLists = make([][]int, n)
}

// Close stops the persistent worker pool. Idempotent; the engine keeps
// stepping correctly (inline) afterwards.
func (e *engine) Close() {
	e.closed = true
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
}

// ensurePool starts the worker pool on first use and arranges for it to
// be closed when the fabric is garbage-collected without an explicit
// Close. The cleanup closure captures only the pool — never the engine
// or fabric — so registering it does not keep the fabric alive.
func (e *engine) ensurePool() *workerPool {
	if e.pool == nil {
		e.pool = newWorkerPool(e.n)
		runtime.AddCleanup(e.f, func(p *workerPool) { p.close() }, e.pool)
	}
	return e.pool
}

func (e *engine) step(f *Fabric) {
	if e.n == 1 {
		e.claim(0)
		e.commit(0)
	} else {
		hot := 0
		for s := range f.hotLists {
			hot += len(f.hotLists[s])
		}
		inline := hot < parallelHotPerShard*e.n || e.procs == 1
		if e.closed || (inline && !e.forceParallel) {
			for s := 0; s < e.n; s++ {
				e.claim(s)
			}
			for s := 0; s < e.n; s++ {
				e.commit(s)
			}
		} else {
			e.stepParallel()
		}
	}
	for s := range e.sh {
		f.moves += e.sh[s].moves
		e.sh[s].moves = 0
	}
}

// stepParallel runs one cycle on the worker pool: all shards claim, the
// pool's reusable barrier establishes that every staged transfer is
// visible, then all shards commit their own queues.
func (e *engine) stepParallel() {
	p := e.ensurePool()
	p.run(func(s int) {
		e.claim(s)
		p.barrier()
		e.commit(s)
	})
}

// runShards implements Fabric.RunSharded: fn over every shard range, on
// the pool when the engine is sharded and the host can exploit it.
func (e *engine) runShards(fn func(lo, hi int)) {
	if e.n == 1 || e.procs == 1 || e.closed {
		for s := 0; s < e.n; s++ {
			fn(e.bounds[s], e.bounds[s+1])
		}
		return
	}
	p := e.ensurePool()
	p.run(func(s int) { fn(e.bounds[s], e.bounds[s+1]) })
}

// claim runs the claim phase for shard s: for every hot tile, try to
// move the head word of each input queue toward its configured outputs,
// subject to one word per output link per cycle and space in each
// destination queue, all judged against pre-cycle state. Successful
// claims are staged; nothing observable by other shards is mutated.
//
// The common case — a route with exactly one output port — takes a fast
// path with no coordinate math and no port scanning: the route entry
// caches the destination queue, so a claim is an occupancy compare plus
// two appends. Multicast routes fall back to the generic path.
func (e *engine) claim(s int) {
	f := e.f
	st := &e.sh[s]
	st.pops = st.pops[:0]
	for d := range st.pushes {
		st.pushes[d] = st.pushes[d][:0]
	}
	st.stillHot = st.stillHot[:0]

	cur := f.hotLists[s]
	// The commit phase re-marks hot tiles into the same backing array;
	// cur is fully consumed before any commit runs.
	f.hotLists[s] = cur[:0]

	for _, ti := range cur {
		f.hot[ti] = false
		r := &f.routers[ti]
		n := len(r.active)
		if n == 0 {
			continue
		}
		idx := int(r.rrIdx)
		r.rr++
		r.rrIdx++
		if int(r.rrIdx) == n {
			r.rrIdx = 0
		}
		if !r.wide {
			// Occupancy-mask path: the claim scan visits only entries whose
			// input queue is non-empty (r.occ bit set), in exactly the
			// rotation order of the full scan — indices idx..n-1 then
			// 0..idx-1. The mask is pre-cycle state (claim pops nothing), so
			// claim decisions are unchanged; only the skipping of empty
			// entries is faster. hasWords of the full scan is occ != 0.
			occ := r.occ
			if occ == 0 {
				continue
			}
			var outClaimed PortMask
			for m := occ >> uint(idx); m != 0; m &= m - 1 {
				e.claimEntry(s, ti, &r.active[idx+bits.TrailingZeros64(m)], &outClaimed)
			}
			for m := occ & (1<<uint(idx) - 1); m != 0; m &= m - 1 {
				e.claimEntry(s, ti, &r.active[bits.TrailingZeros64(m)], &outClaimed)
			}
			st.stillHot = append(st.stillHot, ti)
			continue
		}
		var outClaimed PortMask
		hasWords := false
		for k := 0; k < n; k++ {
			en := &r.active[idx]
			idx++
			if idx == n {
				idx = 0
			}
			if en.q.size == 0 {
				continue
			}
			hasWords = true
			e.claimEntry(s, ti, en, &outClaimed)
		}
		if hasWords {
			st.stillHot = append(st.stillHot, ti)
		}
	}
}

// claimEntry claims the head word of one non-empty route entry: the
// cached single-output fast path, or the generic multicast path.
func (e *engine) claimEntry(s, ti int, en *routeEntry, outClaimed *PortMask) {
	if en.single {
		p := en.sport
		if outClaimed.Has(p) {
			return
		}
		dst := en.dst
		if dst == nil {
			dst = e.f.resolveSingle(ti, en)
		}
		if dst.size == int32(len(dst.buf)) {
			return // destination full; word waits
		}
		*outClaimed |= 1 << p
		st := &e.sh[s]
		q := en.q
		st.pops = append(st.pops, q)
		st.pushes[en.dstShard] = append(st.pushes[en.dstShard],
			stagedPush{q: dst, tile: en.dstTile, bits: q.buf[q.head]})
		return
	}
	e.claimMulticast(s, ti, en, outClaimed)
}

// claimMulticast is the generic claim path: all-or-nothing fanout of
// the head word to every configured output port — every target link
// must be free and every destination queue must have space.
func (e *engine) claimMulticast(s, ti int, en *routeEntry, outClaimed *PortMask) {
	f := e.f
	st := &e.sh[s]
	at := f.CoordOf(ti)
	outs := en.outs
	if outs == 0 {
		panic(fmt.Sprintf("fabric: word on unrouted (%v,%d) at %v", en.in, en.c, at))
	}
	var dst [NumPorts]*queue
	var dtile [NumPorts]int32
	ok := true
	for p := Port(0); p < NumPorts && ok; p++ {
		if !outs.Has(p) {
			continue
		}
		if outClaimed.Has(p) {
			ok = false
			break
		}
		if p == Ramp {
			rq := f.rxQueue(ti, en.c)
			if rq.full() {
				ok = false
				continue
			}
			dst[p], dtile[p] = rq, rxTile(ti, en.c)
			continue
		}
		dx, dy := p.Delta()
		nb := Coord{at.X + dx, at.Y + dy}
		if !f.In(nb) {
			// Configured route off the fabric edge: drop target. The
			// paper's patterns never do this; flag loudly.
			panic(fmt.Sprintf("fabric: route off edge at %v port %v", at, p))
		}
		nbi := f.Index(nb)
		nq := f.tables[nbi].queues[p.Opposite()][en.c]
		if nq == nil {
			panic(fmt.Sprintf("fabric: no route configured at %v for arrivals on (%v,%d)", nb, p.Opposite(), en.c))
		}
		if nq.full() {
			ok = false
			continue
		}
		dst[p], dtile[p] = nq, int32(nbi)
	}
	if !ok {
		return
	}
	bits := en.q.peek()
	st.pops = append(st.pops, en.q)
	for p := Port(0); p < NumPorts; p++ {
		if !outs.Has(p) {
			continue
		}
		*outClaimed |= 1 << p
		if p == Ramp {
			st.pushes[s] = append(st.pushes[s], stagedPush{q: dst[p], tile: dtile[p], bits: bits})
		} else {
			sh := f.shardOf[dtile[p]]
			st.pushes[sh] = append(st.pushes[sh], stagedPush{q: dst[p], tile: dtile[p], bits: bits})
		}
	}
}

// commit applies shard s's staged transfers: first every pop of a queue
// this shard owns (freeing slots exactly as the sequential engine does),
// then every push destined for this shard, gathered from all source
// shards in shard order. Core rx deliveries fire the fabric's
// rx-delivery wake callbacks from here, on the goroutine of the shard
// that owns the destination tile — the contract OnRxDelivery documents.
func (e *engine) commit(s int) {
	f := e.f
	st := &e.sh[s]
	for _, q := range st.pops {
		q.pop()
	}
	st.moves += int64(len(st.pops))
	for src := 0; src < e.n; src++ {
		for _, ps := range e.sh[src].pushes[s] {
			if ps.tile < 0 {
				ps.q.push(ps.bits)
				for _, fn := range f.rxWake {
					fn(rxTileIndex(ps.tile), rxColor(ps.tile))
				}
				continue
			}
			if !ps.q.push(ps.bits) {
				panic("fabric: committed push overflowed (claim phase bug)")
			}
			f.markHot(int(ps.tile))
		}
	}
	for _, ti := range st.stillHot {
		f.markHot(ti)
	}
}
