package fabric

import (
	"fmt"
	"runtime"
	"sync"
)

// Stepper is the engine that advances a Fabric by one cycle. Two
// implementations exist: Sequential steps every router on the calling
// goroutine; Sharded partitions the tile grid into contiguous shards and
// steps them on a worker pool with a two-phase (claim-then-commit)
// barrier per cycle.
//
// Determinism contract: both engines produce bit-identical architectural
// state, cycle for cycle — the same router queue contents and
// occupancies, the same core receive buffers, the same Moves counter.
// This holds because the claim phase reads only pre-cycle queue state
// (it mutates nothing another shard can observe), each queue receives at
// most one push and one pop per cycle, and every queue is committed by
// the shard that owns its tile, pops before pushes — exactly the order
// of the sequential engine. The equivalence golden test in equiv_test.go
// enforces the contract against state fingerprints every cycle.
//
// A Stepper instance is bound to the first Fabric it is given and must
// not be shared between fabrics.
type Stepper interface {
	// Name identifies the engine, e.g. for benchmark sub-names.
	Name() string

	bind(f *Fabric)
	step(f *Fabric)
	shards() [][2]int
}

// Sequential returns the single-goroutine stepping engine. It is the
// default when Config.Stepper is nil.
func Sequential() Stepper { return &engine{workers: 1} }

// Sharded returns a stepping engine that partitions the tile grid into
// up to `workers` contiguous shards and steps them concurrently. Cycles
// with little in-flight traffic fall back to inline stepping, so the
// sharded engine is never pathologically slower than Sequential on a
// quiet fabric. workers < 1 is treated as 1.
func Sharded(workers int) Stepper { return &engine{workers: workers} }

// parallelHotPerShard is the minimum average hot-tile count per shard
// below which a cycle is stepped inline instead of on the worker pool
// (the state evolution is identical either way; only wall-clock
// differs).
const parallelHotPerShard = 24

// engine implements both steppers: Sequential is the one-shard special
// case, which also makes the sequential path the trivially-correct
// reference for the parallel one.
type engine struct {
	workers int
	f       *Fabric
	n       int   // shard count after binding
	bounds  []int // len n+1; shard s owns tiles [bounds[s], bounds[s+1])
	sh      []shardState

	// procs caches GOMAXPROCS at bind time; on a single-P runtime the
	// worker pool cannot win, so every cycle steps inline.
	procs int

	// forceParallel disables the quiet-cycle and single-P inline
	// fallbacks so tests can drive the concurrent path anywhere.
	forceParallel bool
}

// shardState is the per-shard staging area reused across cycles.
type shardState struct {
	pops     []stagedPop
	pushes   [][]stagedPush // indexed by destination shard
	stillHot []int
	moves    int64
}

func (e *engine) Name() string {
	if e.workers <= 1 {
		return "seq"
	}
	return fmt.Sprintf("sharded-%d", e.workers)
}

func (e *engine) shards() [][2]int {
	out := make([][2]int, e.n)
	for s := 0; s < e.n; s++ {
		out[s] = [2]int{e.bounds[s], e.bounds[s+1]}
	}
	return out
}

func (e *engine) bind(f *Fabric) {
	if e.f != nil {
		if e.f == f {
			return
		}
		panic("fabric: Stepper already bound to another Fabric")
	}
	e.f = f
	e.procs = runtime.GOMAXPROCS(0)
	tiles := f.W * f.H
	n := e.workers
	if n < 1 {
		n = 1
	}
	if n > tiles {
		n = tiles
	}
	// shardOf is uint16; more shards than that is never useful anyway.
	if n > 1<<16-1 {
		n = 1<<16 - 1
	}
	e.n = n
	e.bounds = make([]int, n+1)
	for s := 0; s <= n; s++ {
		e.bounds[s] = s * tiles / n
	}
	e.sh = make([]shardState, n)
	f.shardOf = make([]uint16, tiles)
	for s := 0; s < n; s++ {
		e.sh[s].pushes = make([][]stagedPush, n)
		for ti := e.bounds[s]; ti < e.bounds[s+1]; ti++ {
			f.shardOf[ti] = uint16(s)
		}
	}
	f.hotLists = make([][]int, n)
}

func (e *engine) step(f *Fabric) {
	if e.n == 1 {
		e.claim(0)
		e.commit(0)
	} else {
		hot := 0
		for s := range f.hotLists {
			hot += len(f.hotLists[s])
		}
		if (hot < parallelHotPerShard*e.n || e.procs == 1) && !e.forceParallel {
			for s := 0; s < e.n; s++ {
				e.claim(s)
			}
			for s := 0; s < e.n; s++ {
				e.commit(s)
			}
		} else {
			e.stepParallel()
		}
	}
	for s := range e.sh {
		f.moves += e.sh[s].moves
		e.sh[s].moves = 0
	}
}

// stepParallel runs one cycle on the worker pool: all shards claim, a
// barrier establishes that every staged transfer is visible, then all
// shards commit their own queues.
func (e *engine) stepParallel() {
	var claimed, committed sync.WaitGroup
	claimed.Add(e.n)
	committed.Add(e.n)
	gate := make(chan struct{})
	for s := 0; s < e.n; s++ {
		go func(s int) {
			e.claim(s)
			claimed.Done()
			<-gate
			e.commit(s)
			committed.Done()
		}(s)
	}
	claimed.Wait()
	close(gate)
	committed.Wait()
}

// claim runs the claim phase for shard s: for every hot tile, try to
// move the head word of each input queue toward its configured outputs,
// subject to one word per output link per cycle and space in each
// destination queue, all judged against pre-cycle state. Successful
// claims are staged; nothing observable by other shards is mutated.
func (e *engine) claim(s int) {
	f := e.f
	st := &e.sh[s]
	st.pops = st.pops[:0]
	for d := range st.pushes {
		st.pushes[d] = st.pushes[d][:0]
	}
	st.stillHot = st.stillHot[:0]

	cur := f.hotLists[s]
	// The commit phase re-marks hot tiles into the same backing array;
	// cur is fully consumed before any commit runs.
	f.hotLists[s] = cur[:0]

	for _, ti := range cur {
		f.hot[ti] = false
		r := &f.routers[ti]
		at := f.CoordOf(ti)
		var outClaimed PortMask
		hasWords := false

		n := len(r.active)
		if n == 0 {
			continue
		}
		start := r.rr[0] % n
		for k := 0; k < n; k++ {
			ic := r.active[(start+k)%n]
			in, c := Port(ic[0]), Color(ic[1])
			q := r.queues[in][c]
			if q == nil || q.empty() {
				continue
			}
			hasWords = true
			outs := r.routes[in][c]
			if outs == 0 {
				panic(fmt.Sprintf("fabric: word on unrouted (%v,%d) at %v", in, c, at))
			}
			// All-or-nothing multicast: every target link must be free and
			// every destination queue must have space.
			ok := true
			for p := Port(0); p < NumPorts && ok; p++ {
				if !outs.Has(p) {
					continue
				}
				if outClaimed.Has(p) {
					ok = false
					break
				}
				if p == Ramp {
					if f.rxQueue(ti, c).full() {
						ok = false
					}
					continue
				}
				dx, dy := p.Delta()
				nb := Coord{at.X + dx, at.Y + dy}
				if !f.In(nb) {
					// Configured route off the fabric edge: drop target.
					// The paper's patterns never do this; flag loudly.
					panic(fmt.Sprintf("fabric: route off edge at %v port %v", at, p))
				}
				nq := f.routers[f.Index(nb)].queues[p.Opposite()][c]
				if nq == nil {
					panic(fmt.Sprintf("fabric: no route configured at %v for arrivals on (%v,%d)", nb, p.Opposite(), c))
				}
				if nq.full() {
					ok = false
				}
			}
			if !ok {
				continue
			}
			bits := q.peek()
			st.pops = append(st.pops, stagedPop{ti, in, c})
			for p := Port(0); p < NumPorts; p++ {
				if !outs.Has(p) {
					continue
				}
				outClaimed |= 1 << p
				if p == Ramp {
					st.pushes[s] = append(st.pushes[s], stagedPush{tile: -1, c: c, bits: bits, rxOf: ti})
				} else {
					dx, dy := p.Delta()
					nb := f.Index(Coord{at.X + dx, at.Y + dy})
					st.pushes[f.shardOf[nb]] = append(st.pushes[f.shardOf[nb]],
						stagedPush{tile: nb, in: p.Opposite(), c: c, bits: bits})
				}
			}
		}
		r.rr[0]++
		if hasWords {
			st.stillHot = append(st.stillHot, ti)
		}
	}
}

// commit applies shard s's staged transfers: first every pop of a queue
// this shard owns (freeing slots exactly as the sequential engine does),
// then every push destined for this shard, gathered from all source
// shards in shard order.
func (e *engine) commit(s int) {
	f := e.f
	st := &e.sh[s]
	for _, sp := range st.pops {
		f.routers[sp.tile].queues[sp.in][sp.c].pop()
		st.moves++
	}
	for src := 0; src < e.n; src++ {
		for _, sh := range e.sh[src].pushes[s] {
			if sh.tile < 0 {
				f.rxQueue(sh.rxOf, sh.c).push(sh.bits)
				continue
			}
			if !f.routers[sh.tile].queues[sh.in][sh.c].push(sh.bits) {
				panic("fabric: committed push overflowed (claim phase bug)")
			}
			f.markHot(sh.tile)
		}
	}
	for _, ti := range st.stillHot {
		f.markHot(ti)
	}
}
