package fabric

import "sync"

// workerPool is a fixed set of persistent goroutines, one per engine
// shard, parked between parallel cycles. It replaces the
// goroutine-per-shard-per-cycle spawn of the original sharded engine:
// waking a parked worker is one channel send, versus a full goroutine
// start (stack allocation, scheduler handoff) every cycle.
//
// Lifecycle contract — the pool must not pin the Fabric. Workers hold a
// reference only to the pool itself: the per-cycle work function is
// installed in p.job immediately before the workers are woken and
// cleared as soon as they all finish, so between cycles nothing
// reachable from a parked worker references the engine or the fabric.
// The engine closes the pool explicitly via Close, and a
// runtime.AddCleanup registered at pool creation closes it when the
// fabric becomes unreachable without one.
type workerPool struct {
	n    int
	wake chan int // carries shard indices to run; closed on close
	job  func(shard int)
	mid  phaseBarrier // claim → commit barrier inside two-phase jobs
	done sync.WaitGroup
	once sync.Once
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{n: n, wake: make(chan int, n)}
	p.mid.init(n)
	for i := 0; i < n; i++ {
		go p.work()
	}
	return p
}

func (p *workerPool) work() {
	// Parked on the receive between cycles; exits when wake is closed.
	// The shard index travels in the channel rather than being bound to
	// the worker, so each shard runs exactly once per cycle no matter
	// which worker dequeues it (a worker that finishes early may pick up
	// a second shard in barrier-free jobs).
	for s := range p.wake {
		p.job(s)
		p.done.Done()
	}
}

// run executes job(shard) exactly once for every shard 0..n-1 and
// returns when all have finished. The job pointer is visible to workers
// via the channel receive that wakes them and cleared under the
// WaitGroup's happens-before edge, so the pool never retains it while
// parked.
func (p *workerPool) run(job func(shard int)) {
	p.job = job
	p.done.Add(p.n)
	for s := 0; s < p.n; s++ {
		p.wake <- s
	}
	p.done.Wait()
	p.job = nil
}

// close terminates the workers. Idempotent; must not race run.
func (p *workerPool) close() { p.once.Do(func() { close(p.wake) }) }

// barrier blocks the calling worker until all n workers of the current
// cycle have arrived, then releases them together — the claim→commit
// phase boundary.
func (p *workerPool) barrier() { p.mid.await() }

// phaseBarrier is a reusable n-party barrier. A generation counter
// makes it safe to reuse every cycle without reallocation; the mutex
// gives the race detector (and the memory model) the pairwise
// happens-before edges between every claim and every commit.
type phaseBarrier struct {
	mu      sync.Mutex
	cond    sync.Cond
	n       int
	arrived int
	gen     uint64
}

func (b *phaseBarrier) init(n int) {
	b.n = n
	b.cond.L = &b.mu
}

func (b *phaseBarrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
