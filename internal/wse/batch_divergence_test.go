package wse

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/tensor"
)

// The batched engine's correctness story is its divergence check:
// classification happens against live core state every cycle, and any
// core the one-decode/many-lanes path cannot express falls back to the
// scalar interpreter for that cycle. These property tests force a lane
// out of its batch through each divergence mechanism — an rx delivery
// landing mid-batch, a wedging instruction, live threads that later
// exhaust, and boundary-shaped instruction streams (plus a class-table
// overflow) — at every instruction index of a tile program, and require
// the batched machine to match a never-batched sequential run
// bit-for-bit on every cycle's fingerprint. The table is small enough
// to run under -race (CI's race leg runs this package).

// divergenceProgram arms every tile with a K-instruction task of
// 4-element OpAdd MemOps (one datapath cycle each at SIMD 4) over its
// own arena, then lets mutate hook one tile's build. Returns the
// machine.
const divK = 10

func divergenceMachine(t *testing.T, e Engine, simd int, mutate func(m *Machine)) *Machine {
	t.Helper()
	cfg := CS1(4, 3)
	cfg.Engine = e
	cfg.SIMDWidth = simd
	m := New(cfg)
	for ti := range m.Tiles {
		tl := m.Tiles[ti]
		a := tl.Arena.MustAlloc("a", 4)
		b := tl.Arena.MustAlloc("b", 4)
		for i := 0; i < 4; i++ {
			tl.Arena.Set(a+i, fp16.FromFloat64(float64((ti+i)%9)/4))
			tl.Arena.Set(b+i, fp16.FromFloat64(float64((ti+2*i)%7)/8))
		}
		in := make([]Instr, divK)
		for j := range in {
			in[j] = &MemOp{Kind: OpAdd, Arena: tl.Arena,
				Dst: tensor.Vec1D(b, 4), A: tensor.Vec1D(a, 4), B: tensor.Vec1D(b, 4)}
		}
		tk := tl.Core.AddTask(&Task{Name: "div", Instrs: in})
		tl.Core.Activate(tk)
	}
	if mutate != nil {
		mutate(m)
	}
	return m
}

// lockstepDivergence steps a sequential and a batched build of the same
// program in per-cycle fingerprint lockstep.
func lockstepDivergence(t *testing.T, cycles int, simd int, mutate func(m *Machine)) {
	t.Helper()
	seq := divergenceMachine(t, EngineSequential, simd, mutate)
	defer seq.Close()
	bat := divergenceMachine(t, EngineBatched, simd, mutate)
	defer bat.Close()
	for cyc := 0; cyc < cycles; cyc++ {
		seq.Step()
		bat.Step()
		if fa, fb := seq.Fingerprint(), bat.Fingerprint(); fa != fb {
			t.Fatalf("cycle %d: fingerprints diverge: seq %#x, batched %#x", cyc, fa, fb)
		}
	}
	if a, b := seq.AllIdle(), bat.AllIdle(); a != b {
		t.Fatalf("AllIdle diverges: seq %v, batched %v", a, b)
	}
}

// TestBatchDivergenceRxMidBatch lands a fabric word at a batching
// core's ramp on every cycle offset of its instruction stream: a
// neighbour delays d cycles (a pad MemOp), then streams one word east
// into tile (3,1), which subscribes the color. The delivery flips
// rxArmed and the core must take the scalar path for exactly the
// cycles the sequential engine does.
func TestBatchDivergenceRxMidBatch(t *testing.T) {
	for d := 0; d <= divK+6; d++ {
		t.Run(fmt.Sprintf("delay%d", d), func(t *testing.T) {
			d := d
			lockstepDivergence(t, divK+40, 4, func(m *Machine) {
				src := fabric.Coord{X: 0, Y: 1}
				fabric.BuildPath(m.Fab, src, fabric.East, 3, 0)
				st := m.TileAt(src)
				pad := st.Arena.MustAlloc("pad", 4*(d+1))
				word := st.Arena.MustAlloc("word", 1)
				st.Arena.Set(word, fp16.FromFloat64(0.5))
				send := &SendMem{Color: 0, Src: tensor.Vec1D(word, 1), Arena: st.Arena, Total: 1}
				tk := st.Core.AddTask(&Task{Name: "delay", Instrs: []Instr{
					&MemOp{Kind: OpCopy, Arena: st.Arena,
						Dst: tensor.Vec1D(pad, 4*(d+1)), A: tensor.Vec1D(pad, 4*(d+1))},
				}})
				tk.OnComplete = func(c *Core) { c.LaunchThread(0, "tx", send, nil) }
				st.Core.Activate(tk)
				m.TileAt(fabric.Coord{X: 3, Y: 1}).Core.Subscribe(0, NewStreamBuf(2))
			})
		})
	}
}

// TestBatchDivergenceWedge places a DotMixed at every instruction index
// on one tile of a SIMD-1 machine. The scalar datapath cannot issue the
// 2-lane mixed FMAC at width 1 and wedges; classify refuses to batch it
// for the same reason, and the wedged state — core forever runnable,
// machine never idle — must be identical under both engines.
func TestBatchDivergenceWedge(t *testing.T) {
	for k := 0; k < divK; k++ {
		t.Run(fmt.Sprintf("index%d", k), func(t *testing.T) {
			k := k
			lockstepDivergence(t, 4*divK+20, 1, func(m *Machine) {
				tl := m.TileAt(fabric.Coord{X: 2, Y: 1})
				va := tl.Arena.MustAlloc("da", 4)
				vb := tl.Arena.MustAlloc("db", 4)
				var out float32
				// Rebuild the tile's task with a dot wedged at index k.
				in := make([]Instr, divK)
				a := tl.Arena.MustAlloc("a2", 4)
				b := tl.Arena.MustAlloc("b2", 4)
				for j := range in {
					if j == k {
						in[j] = &DotMixed{A: tensor.Vec1D(va, 4), B: tensor.Vec1D(vb, 4),
							Arena: tl.Arena, Out: &out}
						continue
					}
					in[j] = &MemOp{Kind: OpAdd, Arena: tl.Arena,
						Dst: tensor.Vec1D(b, 4), A: tensor.Vec1D(a, 4), B: tensor.Vec1D(b, 4)}
				}
				tk := tl.Core.AddTask(&Task{Name: "wedge", Instrs: in})
				tl.Core.Activate(tk)
			})
		})
	}
}

// TestBatchDivergenceThreadExhaustion keeps a background thread alive
// on one tile for a varying number of cycles: while nthreads > 0 the
// core must step scalar, and the cycle the last thread exhausts it
// rejoins its batch class — at every possible index of the program.
func TestBatchDivergenceThreadExhaustion(t *testing.T) {
	for d := 0; d <= divK+4; d++ {
		t.Run(fmt.Sprintf("words%d", d+1), func(t *testing.T) {
			d := d
			lockstepDivergence(t, divK+40, 4, func(m *Machine) {
				src := fabric.Coord{X: 2, Y: 1}
				fabric.BuildPath(m.Fab, src, fabric.East, 1, 1)
				st := m.TileAt(src)
				n := d + 1
				buf := st.Arena.MustAlloc("tx", n)
				for i := 0; i < n; i++ {
					st.Arena.Set(buf+i, fp16.FromFloat64(float64(i)/8))
				}
				st.Core.LaunchThread(0, "tx",
					&SendMem{Color: 1, Src: tensor.Vec1D(buf, n), Arena: st.Arena, Total: n}, nil)

				dst := m.TileAt(fabric.Coord{X: 3, Y: 1})
				sb := NewStreamBuf(2)
				dst.Core.Subscribe(1, sb)
				acc := dst.Arena.MustAlloc("rx", n)
				dst.Core.LaunchThread(0, "rx",
					&StreamAdd{Src: StreamSource{B: sb}, Acc: tensor.Vec1D(acc, n),
						Arena: dst.Arena, Total: n}, nil)
			})
		})
	}
}

// TestBatchDivergenceBoundaryShape gives one tile a boundary-shaped
// stream — instruction k has 8 elements where the interior has 4, so
// its remaining-element count never matches the interior class — plus
// an idle color subscription (the boundary-tile configuration), and
// spreads seven MemOp kinds across the other tiles so the per-cycle
// class table overflows maxBatchClasses and the table-full scalar
// fallback executes too.
func TestBatchDivergenceBoundaryShape(t *testing.T) {
	kinds := []MemOpKind{OpMul, OpAdd, OpAxpy, OpCopy, OpFMA, OpXPAY, OpMulAcc}
	for k := 0; k < divK; k++ {
		t.Run(fmt.Sprintf("index%d", k), func(t *testing.T) {
			k := k
			lockstepDivergence(t, 4*divK+20, 4, func(m *Machine) {
				for ti := range m.Tiles {
					tl := m.Tiles[ti]
					wide := 4
					if ti == 6 { // tile (2,1): the boundary lane
						wide = 8
						tl.Core.Subscribe(5, NewStreamBuf(2))
					}
					a := tl.Arena.MustAlloc("ba", wide)
					b := tl.Arena.MustAlloc("bb", wide)
					for i := 0; i < wide; i++ {
						tl.Arena.Set(a+i, fp16.FromFloat64(float64((ti+i)%11)/8))
						tl.Arena.Set(b+i, fp16.FromFloat64(float64((ti+3*i)%5)/4))
					}
					in := make([]Instr, divK)
					for j := range in {
						n := 4
						if ti == 6 && j == k {
							n = wide
						}
						in[j] = &MemOp{Kind: kinds[(ti+j)%len(kinds)], S: fp16.FromFloat64(0.75),
							Arena: tl.Arena,
							Dst:   tensor.Vec1D(b, n), A: tensor.Vec1D(a, n), B: tensor.Vec1D(b, n)}
					}
					tk := tl.Core.AddTask(&Task{Name: "bnd", Instrs: in})
					tl.Core.Activate(tk)
				}
			})
		})
	}
}
