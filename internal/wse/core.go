package wse

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fp16"
)

// MaxThreads is the number of concurrent execution threads a core
// supports ("The core supports nine concurrent threads of execution").
const MaxThreads = 9

// Task is a schedulable unit of code that reacts to events. Tasks are
// triggered (activated) by other tasks, by FIFO pushes, or by thread
// completions, and may be blocked/unblocked independently. The hardware
// scheduler runs one task at a time per core; Priority tasks are selected
// first ("It is marked as higher priority to avoid a race condition").
type Task struct {
	Name     string
	Priority bool
	// Instrs is the task's body: a sequence of vector instructions
	// executed on the shared datapath.
	Instrs []Instr
	// OnComplete runs control actions (block/unblock/activate) when the
	// body finishes. Control actions are free, as in the hardware.
	//
	// Scheduling contract: OnComplete (and thread onDone) handlers run
	// while their own core is being stepped and must direct scheduling
	// calls (Activate/Block/Unblock/LaunchThread) only at that core —
	// exactly the hardware's reach. Waking a *different* core from a
	// handler would race with the other shard's worklist under the
	// sharded engine; cross-core signalling goes through the fabric.
	OnComplete func(c *Core)

	blocked   bool
	activated bool
	running   bool
	pc        int
	// core is the owning core, set by AddTask; the fast-forward path
	// (ff.go) uses it to reach a task's scheduler state.
	core *Core
}

// Thread is a background thread slot running one asynchronous vector
// instruction.
type thread struct {
	instr  Instr
	onDone func(c *Core)
	name   string
}

// Core is the execution engine of one tile.
//
// Scheduling is event-driven: a core sits on its shard's runnable
// worklist only while it has (or may have) runnable work — a task
// activated or unblocked, a thread launched, a current task mid-flight,
// or words pending at the ramp for a subscribed color. It leaves the
// list the first stepped cycle none of those hold and returns via the
// event edges (Activate, Unblock, LaunchThread, Subscribe, rx-delivery
// wake from the fabric). Idle tiles therefore cost nothing per cycle,
// which is what makes the paper's bursty programs — and the full
// 602×595 wafer — cheap to cycle-simulate between communication phases.
type Core struct {
	m     *Machine
	tile  *Tile
	shard int // fabric engine shard owning this tile

	tasks   []*Task
	current *Task

	threads  [MaxThreads]*thread
	nthreads int

	// rx stream fanout: a fabric color's arriving words are distributed to
	// every subscribed stream buffer; a word is consumed from the fabric
	// receive queue only when all subscribers can accept it (hardware
	// delivers arriving data directly to the functional units consuming
	// the stream). The table is a dense color-indexed array — allocated
	// lazily so the 358k mostly-unsubscribed cores of a wafer stay small —
	// walked via subColors, the active-color list in registration order.
	// (The pre-worklist engine ranged over a map here, which was only
	// deterministic because no buffer subscribes to two colors; the dense
	// array is deterministic by construction, and branch-lean.)
	subs      *[fabric.MaxColors][]*StreamBuf
	subColors []fabric.Color
	// subMask is the bitmask form of subColors, used by the machine's
	// rx-delivery wake to drop deliveries on colors this core does not
	// consume (other subsystems' traffic to the same ramp).
	subMask uint32

	// scratch is the persistent datapath-unit list reused by step, so
	// the hot path allocates nothing per cycle.
	scratch []Instr

	// queued marks membership in the shard worklist (set by wake,
	// cleared by the machine when the core steps without runnable work).
	queued bool

	// ffMark is FastForwardTasks' transient "this core owns one of the
	// phase's tasks" marker, always false outside that call; a field
	// rather than a set so eligibility checks allocate nothing at
	// wafer scale.
	ffMark bool

	sentThisCycle bool

	// rxArmed marks that words may be pending at the ramp for a
	// subscribed color: set on every rx delivery (and conservatively at
	// construction, subscription and snapshot restore), cleared by the
	// batched engine once a full scan finds every subscribed receive
	// queue empty. It lets the classifier skip the per-color RxLen scan
	// in steady-state compute phases; purely a host-side cache, never
	// part of architectural state.
	rxArmed bool

	// Stats. Idle cycles are skipped entirely, so the denominators in
	// Utilization come from the machine cycle counter, not a per-core
	// count — the reported fractions are unchanged from the polling
	// engine, which stepped (and counted) every core every cycle.
	busyCycles int64
	lanesUsed  int64
}

func newCore(m *Machine, t *Tile) *Core {
	return &Core{m: m, tile: t, rxArmed: true}
}

// wake puts the core on its shard's runnable worklist. Idempotent and
// cheap; callers wake eagerly on any event that might create runnable
// work and let the next step decide whether the core stays listed.
func (c *Core) wake() {
	if !c.queued {
		c.queued = true
		c.m.runnable[c.shard] = append(c.m.runnable[c.shard], c)
	}
}

// AddTask registers a task with the scheduler. Tasks start deactivated;
// use Activate (or Task.activated via TaskState) to make them runnable.
func (c *Core) AddTask(t *Task) *Task {
	t.core = c
	c.tasks = append(c.tasks, t)
	if t.activated && !t.blocked {
		c.wake()
	}
	return t
}

// Activate marks t runnable. An activation received while t runs is
// remembered, so data pushed during execution re-triggers it — the FIFO
// semantics sumtask relies on.
func (c *Core) Activate(t *Task) {
	t.activated = true
	if !t.blocked {
		c.wake()
	}
}

// Block prevents t from being scheduled until unblocked.
func (c *Core) Block(t *Task) { t.blocked = true }

// Unblock clears t's blocked state.
func (c *Core) Unblock(t *Task) {
	t.blocked = false
	if t.activated {
		c.wake()
	}
}

// LaunchThread starts instr in the given thread slot. It panics if the
// slot is occupied — the programmer owns slot assignment, as in the
// hardware ("a thread resource assigned (.thr = 5)").
func (c *Core) LaunchThread(slot int, name string, instr Instr, onDone func(*Core)) {
	if slot < 0 || slot >= MaxThreads {
		panic(fmt.Sprintf("wse: thread slot %d out of range", slot))
	}
	if c.threads[slot] != nil {
		panic(fmt.Sprintf("wse: thread slot %d (%s) already running %s", slot, name, c.threads[slot].name))
	}
	c.threads[slot] = &thread{instr: instr, onDone: onDone, name: name}
	c.nthreads++
	c.wake()
}

// Subscribe attaches a stream buffer to a fabric color. All subscribers
// of a color receive every arriving word.
func (c *Core) Subscribe(col fabric.Color, b *StreamBuf) {
	if c.subs == nil {
		c.subs = new([fabric.MaxColors][]*StreamBuf)
	}
	if len(c.subs[col]) == 0 {
		c.subColors = append(c.subColors, col)
		c.subMask |= 1 << col
	}
	c.subs[col] = append(c.subs[col], b)
	// Words may already be waiting at the ramp for this color.
	c.rxArmed = true
	c.wake()
}

// Send injects one word into the fabric; at most one send per cycle
// crosses the ramp. Returns false if the ramp is busy or backpressured.
func (c *Core) Send(w fabric.Word) bool {
	if c.sentThisCycle {
		return false
	}
	if !c.m.Fab.Send(c.tile.Coord, w) {
		return false
	}
	c.sentThisCycle = true
	return true
}

// runnable reports whether the core has work next cycle: a task
// mid-flight, an activated unblocked task, a live thread, or a
// *deliverable* word pending at the ramp for a subscribed color. The
// machine calls this after stepping to decide worklist membership. An
// rx word all of whose subscribers are full does not count — the only
// thing that frees subscriber space is an instruction on this same
// core consuming the stream, so the core parks (and RunUntil's wedge
// detector can see a stuck program) instead of spinning; the next
// Launch/Activate/Unblock or rx delivery re-lists it.
func (c *Core) runnable() bool {
	return c.current != nil || c.nthreads > 0 || c.runnableSlow()
}

// runnableSlow is the task/rx half of the runnable check; the cheap
// half above inlines into the stepping hot path.
func (c *Core) runnableSlow() bool {
	for _, t := range c.tasks {
		if t.activated && !t.blocked {
			return true
		}
	}
	for _, col := range c.subColors {
		if c.m.Fab.RxLen(c.tile.Coord, col) == 0 {
			continue
		}
		deliverable := true
		for _, b := range c.subs[col] {
			if b.full() {
				deliverable = false
				break
			}
		}
		if deliverable {
			return true
		}
	}
	return false
}

// Utilization returns the fraction of cycles with any datapath issue
// and the mean lanes used per cycle, over the machine's stepped
// lifetime. The denominator is the count of Machine.Step calls — not
// the fabric cycle counter, which host kernels that drive the fabric
// directly advance without giving cores a cycle.
func (c *Core) Utilization() (busyFrac, lanesPerCycle float64) {
	cycles := c.m.steps
	if cycles == 0 {
		return 0, 0
	}
	return float64(c.busyCycles) / float64(cycles),
		float64(c.lanesUsed) / float64(cycles)
}

// step runs one cycle of the core. Only runnable cores are stepped; an
// un-stepped cycle is architecturally identical to stepping an idle
// core (nothing to deliver, no task to pick, no unit to issue).
func (c *Core) step() {
	c.sentThisCycle = false

	// 1. Distribute arriving fabric words to stream subscribers: one word
	// per color per cycle, only if every subscriber has space.
	for _, col := range c.subColors {
		bufs := c.subs[col]
		ok := true
		for _, b := range bufs {
			if b.full() {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if w, got := c.m.Fab.Recv(c.tile.Coord, col); got {
			lo, hi := w.UnpackF16()
			for _, b := range bufs {
				b.push(lo, hi)
			}
		}
	}

	// 2. Pick a task if none is running.
	if c.current == nil {
		c.current = c.pick()
		if c.current != nil {
			c.current.running = true
			c.current.activated = false
			c.current.pc = 0
		}
	}

	// 3. Share datapath lanes round-robin among the running task's current
	// instruction and all threads.
	lanes := c.m.Cfg.SIMDWidth
	if c.scratch == nil {
		c.scratch = make([]Instr, 0, MaxThreads+1)
	}
	units := c.scratch[:0]
	if c.current != nil && c.current.pc < len(c.current.Instrs) {
		units = append(units, c.current.Instrs[c.current.pc])
	}
	if c.nthreads > 0 {
		// &c.threads: ranging the array by value would copy all nine
		// slots every cycle.
		for _, th := range &c.threads {
			if th != nil {
				units = append(units, th.instr)
			}
		}
	}
	used := 0
	for pass := 0; pass < 2 && len(units) > 0; pass++ {
		// Zero-lane instructions (sends) still progress when the datapath
		// is saturated; a second pass lets units take leftover lanes.
		for _, u := range units {
			give := lanes
			if give < 0 {
				give = 0
			}
			n := u.Step(c, give)
			lanes -= n
			used += n
		}
		if lanes <= 0 {
			break
		}
	}
	if used > 0 {
		c.busyCycles++
		c.lanesUsed += int64(used)
	}

	// 4. Retire completed work.
	if c.current != nil {
		t := c.current
		for t.pc < len(t.Instrs) && t.Instrs[t.pc].Done() {
			t.pc++
		}
		if t.pc >= len(t.Instrs) {
			t.running = false
			c.current = nil
			if t.OnComplete != nil {
				t.OnComplete(c)
			}
		}
	}
	if c.nthreads > 0 {
		for i, th := range &c.threads {
			if th != nil && th.instr.Done() {
				c.threads[i] = nil
				c.nthreads--
				if th.onDone != nil {
					th.onDone(c)
				}
			}
		}
	}
}

// pick selects the next task: priority tasks first, then registration
// order.
func (c *Core) pick() *Task {
	var fallback *Task
	for _, t := range c.tasks {
		if !t.activated || t.blocked {
			continue
		}
		if t.Priority {
			return t
		}
		if fallback == nil {
			fallback = t
		}
	}
	return fallback
}

// StreamBuf is a small elementwise buffer between the ramp and a consuming
// instruction: arriving words are unpacked into fp16 elements here. Its
// depth (in elements) bounds how far the fabric can run ahead of the
// datapath.
type StreamBuf struct {
	buf        []fp16.Float16
	head, size int
}

// NewStreamBuf returns a buffer with capacity for depth words (2·depth
// elements).
func NewStreamBuf(depthWords int) *StreamBuf {
	return &StreamBuf{buf: make([]fp16.Float16, 2*depthWords)}
}

func (b *StreamBuf) full() bool { return len(b.buf)-b.size < 2 }

// Len returns the buffered element count.
func (b *StreamBuf) Len() int { return b.size }

func (b *StreamBuf) push(lo, hi fp16.Float16) {
	b.buf[(b.head+b.size)%len(b.buf)] = lo
	b.size++
	b.buf[(b.head+b.size)%len(b.buf)] = hi
	b.size++
}

func (b *StreamBuf) pop() fp16.Float16 {
	v := b.buf[b.head]
	b.head = (b.head + 1) % len(b.buf)
	b.size--
	return v
}
