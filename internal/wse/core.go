package wse

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fp16"
)

// MaxThreads is the number of concurrent execution threads a core
// supports ("The core supports nine concurrent threads of execution").
const MaxThreads = 9

// Task is a schedulable unit of code that reacts to events. Tasks are
// triggered (activated) by other tasks, by FIFO pushes, or by thread
// completions, and may be blocked/unblocked independently. The hardware
// scheduler runs one task at a time per core; Priority tasks are selected
// first ("It is marked as higher priority to avoid a race condition").
type Task struct {
	Name     string
	Priority bool
	// Instrs is the task's body: a sequence of vector instructions
	// executed on the shared datapath.
	Instrs []Instr
	// OnComplete runs control actions (block/unblock/activate) when the
	// body finishes. Control actions are free, as in the hardware.
	OnComplete func(c *Core)

	blocked   bool
	activated bool
	running   bool
	pc        int
}

// Thread is a background thread slot running one asynchronous vector
// instruction.
type thread struct {
	instr  Instr
	onDone func(c *Core)
	name   string
}

// Core is the execution engine of one tile.
type Core struct {
	m    *Machine
	tile *Tile

	tasks   []*Task
	current *Task

	threads [MaxThreads]*thread

	// rx stream fanout: a fabric color's arriving words are distributed to
	// every subscribed stream buffer; a word is consumed from the fabric
	// receive queue only when all subscribers can accept it (hardware
	// delivers arriving data directly to the functional units consuming
	// the stream).
	subs map[fabric.Color][]*StreamBuf

	sentThisCycle bool

	// Stats
	busyCycles  int64
	lanesUsed   int64
	totalCycles int64
}

func newCore(m *Machine, t *Tile) *Core {
	return &Core{m: m, tile: t, subs: make(map[fabric.Color][]*StreamBuf)}
}

// AddTask registers a task with the scheduler. Tasks start deactivated;
// use Activate (or Task.activated via TaskState) to make them runnable.
func (c *Core) AddTask(t *Task) *Task {
	c.tasks = append(c.tasks, t)
	return t
}

// Activate marks t runnable. An activation received while t runs is
// remembered, so data pushed during execution re-triggers it — the FIFO
// semantics sumtask relies on.
func (c *Core) Activate(t *Task) { t.activated = true }

// Block prevents t from being scheduled until unblocked.
func (c *Core) Block(t *Task) { t.blocked = true }

// Unblock clears t's blocked state.
func (c *Core) Unblock(t *Task) { t.blocked = false }

// LaunchThread starts instr in the given thread slot. It panics if the
// slot is occupied — the programmer owns slot assignment, as in the
// hardware ("a thread resource assigned (.thr = 5)").
func (c *Core) LaunchThread(slot int, name string, instr Instr, onDone func(*Core)) {
	if slot < 0 || slot >= MaxThreads {
		panic(fmt.Sprintf("wse: thread slot %d out of range", slot))
	}
	if c.threads[slot] != nil {
		panic(fmt.Sprintf("wse: thread slot %d (%s) already running %s", slot, name, c.threads[slot].name))
	}
	c.threads[slot] = &thread{instr: instr, onDone: onDone, name: name}
}

// Subscribe attaches a stream buffer to a fabric color. All subscribers
// of a color receive every arriving word.
func (c *Core) Subscribe(col fabric.Color, b *StreamBuf) {
	c.subs[col] = append(c.subs[col], b)
}

// Send injects one word into the fabric; at most one send per cycle
// crosses the ramp. Returns false if the ramp is busy or backpressured.
func (c *Core) Send(w fabric.Word) bool {
	if c.sentThisCycle {
		return false
	}
	if !c.m.Fab.Send(c.tile.Coord, w) {
		return false
	}
	c.sentThisCycle = true
	return true
}

// busy reports whether the core has runnable work.
func (c *Core) busy() bool {
	if c.current != nil {
		return true
	}
	for _, t := range c.tasks {
		if t.activated && !t.blocked {
			return true
		}
	}
	for _, th := range c.threads {
		if th != nil {
			return true
		}
	}
	return false
}

// Utilization returns the fraction of cycles with any datapath issue and
// the mean lanes used per cycle.
func (c *Core) Utilization() (busyFrac, lanesPerCycle float64) {
	if c.totalCycles == 0 {
		return 0, 0
	}
	return float64(c.busyCycles) / float64(c.totalCycles),
		float64(c.lanesUsed) / float64(c.totalCycles)
}

// step runs one cycle of the core.
func (c *Core) step() {
	c.totalCycles++
	c.sentThisCycle = false

	// 1. Distribute arriving fabric words to stream subscribers: one word
	// per color per cycle, only if every subscriber has space.
	for col, bufs := range c.subs {
		if len(bufs) == 0 {
			continue
		}
		ok := true
		for _, b := range bufs {
			if b.full() {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if w, got := c.m.Fab.Recv(c.tile.Coord, col); got {
			lo, hi := w.UnpackF16()
			for _, b := range bufs {
				b.push(lo, hi)
			}
		}
	}

	// 2. Pick a task if none is running.
	if c.current == nil {
		c.current = c.pick()
		if c.current != nil {
			c.current.running = true
			c.current.activated = false
			c.current.pc = 0
		}
	}

	// 3. Share datapath lanes round-robin among the running task's current
	// instruction and all threads.
	lanes := c.m.Cfg.SIMDWidth
	units := make([]Instr, 0, MaxThreads+1)
	if c.current != nil && c.current.pc < len(c.current.Instrs) {
		units = append(units, c.current.Instrs[c.current.pc])
	}
	for _, th := range c.threads {
		if th != nil {
			units = append(units, th.instr)
		}
	}
	used := 0
	for pass := 0; pass < 2 && len(units) > 0; pass++ {
		// Zero-lane instructions (sends) still progress when the datapath
		// is saturated; a second pass lets units take leftover lanes.
		for _, u := range units {
			give := lanes
			if give < 0 {
				give = 0
			}
			n := u.Step(c, give)
			lanes -= n
			used += n
		}
		if lanes <= 0 {
			break
		}
	}
	if used > 0 {
		c.busyCycles++
		c.lanesUsed += int64(used)
	}

	// 4. Retire completed work.
	if c.current != nil {
		t := c.current
		for t.pc < len(t.Instrs) && t.Instrs[t.pc].Done() {
			t.pc++
		}
		if t.pc >= len(t.Instrs) {
			t.running = false
			c.current = nil
			if t.OnComplete != nil {
				t.OnComplete(c)
			}
		}
	}
	for i, th := range c.threads {
		if th != nil && th.instr.Done() {
			c.threads[i] = nil
			if th.onDone != nil {
				th.onDone(c)
			}
		}
	}
}

// pick selects the next task: priority tasks first, then registration
// order.
func (c *Core) pick() *Task {
	var fallback *Task
	for _, t := range c.tasks {
		if !t.activated || t.blocked {
			continue
		}
		if t.Priority {
			return t
		}
		if fallback == nil {
			fallback = t
		}
	}
	return fallback
}

// StreamBuf is a small elementwise buffer between the ramp and a consuming
// instruction: arriving words are unpacked into fp16 elements here. Its
// depth (in elements) bounds how far the fabric can run ahead of the
// datapath.
type StreamBuf struct {
	buf        []fp16.Float16
	head, size int
}

// NewStreamBuf returns a buffer with capacity for depth words (2·depth
// elements).
func NewStreamBuf(depthWords int) *StreamBuf {
	return &StreamBuf{buf: make([]fp16.Float16, 2*depthWords)}
}

func (b *StreamBuf) full() bool { return len(b.buf)-b.size < 2 }

// Len returns the buffered element count.
func (b *StreamBuf) Len() int { return b.size }

func (b *StreamBuf) push(lo, hi fp16.Float16) {
	b.buf[(b.head+b.size)%len(b.buf)] = lo
	b.size++
	b.buf[(b.head+b.size)%len(b.buf)] = hi
	b.size++
}

func (b *StreamBuf) pop() fp16.Float16 {
	v := b.buf[b.head]
	b.head = (b.head + 1) % len(b.buf)
	b.size--
	return v
}
