package wse

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/tensor"
)

func TestConfigDefaults(t *testing.T) {
	m := New(Config{FabricW: 2, FabricH: 2})
	if m.Cfg.ClockHz != 1.1e9 || m.Cfg.MemPerTile != 48*1024 || m.Cfg.SIMDWidth != 4 {
		t.Errorf("defaults not applied: %+v", m.Cfg)
	}
	if got := CS1(602, 595).PeakFlops(); got < 3.0e15 || got > 3.3e15 {
		t.Errorf("CS-1 peak = %g, expected ~3.15 PFLOPS", got)
	}
}

func TestTaskSchedulingStates(t *testing.T) {
	m := New(CS1(1, 1))
	c := m.Tiles[0].Core
	var order []string

	low := c.AddTask(&Task{Name: "low"})
	low.OnComplete = func(cc *Core) { order = append(order, "low") }
	hi := c.AddTask(&Task{Name: "hi", Priority: true})
	hi.OnComplete = func(cc *Core) { order = append(order, "hi") }
	blocked := c.AddTask(&Task{Name: "blocked"})
	blocked.OnComplete = func(cc *Core) { order = append(order, "blocked") }

	c.Activate(low)
	c.Activate(hi)
	c.Activate(blocked)
	c.Block(blocked)

	for i := 0; i < 5; i++ {
		m.Step()
	}
	if len(order) != 2 || order[0] != "hi" || order[1] != "low" {
		t.Fatalf("scheduling order = %v, want [hi low]", order)
	}
	// Unblocking releases the pending activation.
	c.Unblock(blocked)
	for i := 0; i < 3; i++ {
		m.Step()
	}
	if len(order) != 3 || order[2] != "blocked" {
		t.Fatalf("blocked task did not run after unblock: %v", order)
	}
}

func TestMemOpKinds(t *testing.T) {
	m := New(CS1(1, 1))
	tl := m.Tiles[0]
	a := tl.Arena
	n := 8
	xb := a.MustAlloc("x", n)
	yb := a.MustAlloc("y", n)
	db := a.MustAlloc("d", n)
	for i := 0; i < n; i++ {
		a.Set(xb+i, fp16.FromFloat64(float64(i+1)))
		a.Set(yb+i, fp16.FromFloat64(2))
	}
	runOp := func(op *MemOp) {
		task := &Task{Name: "t", Instrs: []Instr{op}}
		done := false
		task.OnComplete = func(c *Core) { done = true }
		tl.Core.AddTask(task)
		tl.Core.Activate(task)
		if _, err := m.RunUntil(func() bool { return done }, 1000); err != nil {
			t.Fatal(err)
		}
	}
	runOp(&MemOp{Kind: OpFMA, Arena: a, S: fp16.FromFloat64(3),
		Dst: tensor.Vec1D(db, n), A: tensor.Vec1D(xb, n), B: tensor.Vec1D(yb, n)})
	for i := 0; i < n; i++ {
		if got, want := a.At(db+i).Float64(), 3*float64(i+1)+2; got != want {
			t.Fatalf("OpFMA[%d] = %g, want %g", i, got, want)
		}
	}
	runOp(&MemOp{Kind: OpXPAY, Arena: a, S: fp16.FromFloat64(0.5),
		Dst: tensor.Vec1D(db, n), A: tensor.Vec1D(xb, n)})
	for i := 0; i < n; i++ {
		want := float64(i+1) + 0.5*(3*float64(i+1)+2)
		if got := a.At(db + i).Float64(); got != want {
			t.Fatalf("OpXPAY[%d] = %g, want %g", i, got, want)
		}
	}
}

func TestDotMixedInstr(t *testing.T) {
	m := New(CS1(1, 1))
	tl := m.Tiles[0]
	a := tl.Arena
	n := 64
	xb := a.MustAlloc("x", n)
	for i := 0; i < n; i++ {
		a.Set(xb+i, fp16.FromFloat64(0.25))
	}
	var out float32
	d := &DotMixed{A: tensor.Vec1D(xb, n), B: tensor.Vec1D(xb, n), Arena: a, Out: &out}
	task := &Task{Name: "dot", Instrs: []Instr{d}}
	done := false
	task.OnComplete = func(c *Core) { done = true }
	tl.Core.AddTask(task)
	tl.Core.Activate(task)
	cycles, err := m.RunUntil(func() bool { return done }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if out != 4 { // 64 * 0.0625
		t.Errorf("dot = %g, want 4", out)
	}
	// Two FMACs per cycle: 64 elements should take ~32 cycles + task start.
	if cycles < 32 || cycles > 40 {
		t.Errorf("dot took %d cycles, expected ~32 (2 FMAC/cycle)", cycles)
	}
}

func TestDatapathSharing(t *testing.T) {
	// Two concurrent threads each running a 64-element SIMD op share the
	// 4-lane datapath: together they need ~2× the cycles of one.
	m := New(CS1(1, 1))
	tl := m.Tiles[0]
	a := tl.Arena
	n := 64
	xb := a.MustAlloc("x", n)
	d1 := a.MustAlloc("d1", n)
	d2 := a.MustAlloc("d2", n)
	for i := 0; i < n; i++ {
		a.Set(xb+i, fp16.One)
	}
	mk := func(dst int) *MemOp {
		return &MemOp{Kind: OpCopy, Arena: a, Dst: tensor.Vec1D(dst, n), A: tensor.Vec1D(xb, n)}
	}
	single := func() int64 {
		mm := New(CS1(1, 1))
		aa := mm.Tiles[0].Arena
		x := aa.MustAlloc("x", n)
		d := aa.MustAlloc("d", n)
		op := &MemOp{Kind: OpCopy, Arena: aa, Dst: tensor.Vec1D(d, n), A: tensor.Vec1D(x, n)}
		mm.Tiles[0].Core.LaunchThread(0, "t", op, nil)
		c, err := mm.RunUntil(op.Done, 1000)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}()
	op1, op2 := mk(d1), mk(d2)
	tl.Core.LaunchThread(0, "t1", op1, nil)
	tl.Core.LaunchThread(1, "t2", op2, nil)
	both, err := m.RunUntil(func() bool { return op1.Done() && op2.Done() }, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if both < 2*single-4 || both > 2*single+8 {
		t.Errorf("two threads took %d cycles, one takes %d: expected ~2×", both, single)
	}
}

// TestPickSemantics pins the scheduler selection rule the worklist
// engine must preserve: priority tasks first (first-registered priority
// wins), then registration order; blocked or deactivated tasks are
// never picked.
func TestPickSemantics(t *testing.T) {
	type taskSpec struct {
		name               string
		priority           bool
		activated, blocked bool
	}
	cases := []struct {
		name  string
		tasks []taskSpec
		want  string // "" = nil pick
	}{
		{"no tasks", nil, ""},
		{"single activated", []taskSpec{{"a", false, true, false}}, "a"},
		{"registration order", []taskSpec{{"a", false, true, false}, {"b", false, true, false}}, "a"},
		{"priority beats earlier normal", []taskSpec{{"a", false, true, false}, {"p", true, true, false}}, "p"},
		{"first priority wins", []taskSpec{{"p1", true, true, false}, {"p2", true, true, false}}, "p1"},
		{"blocked priority falls back", []taskSpec{{"a", false, true, false}, {"p", true, true, true}}, "a"},
		{"deactivated priority ignored", []taskSpec{{"a", false, true, false}, {"p", true, false, false}}, "a"},
		{"all blocked", []taskSpec{{"a", false, true, true}, {"b", false, true, true}}, ""},
		{"none activated", []taskSpec{{"a", false, false, false}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New(CS1(1, 1))
			defer m.Close()
			c := m.Tiles[0].Core
			for _, ts := range tc.tasks {
				task := c.AddTask(&Task{Name: ts.name, Priority: ts.priority})
				if ts.activated {
					c.Activate(task)
				}
				if ts.blocked {
					c.Block(task)
				}
			}
			got := ""
			if p := c.pick(); p != nil {
				got = p.Name
			}
			if got != tc.want {
				t.Errorf("pick = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestLaunchThreadSlotBounds pins the panic contract on out-of-range
// slots, and that both boundary slots are usable.
func TestLaunchThreadSlotBounds(t *testing.T) {
	mk := func(m *Machine) *MemOp {
		a := m.Tiles[0].Arena
		base := a.MustAlloc("x", 4)
		return &MemOp{Kind: OpCopy, Arena: a, Dst: tensor.Vec1D(base, 4), A: tensor.Vec1D(base, 4)}
	}
	for _, slot := range []int{-1, MaxThreads, MaxThreads + 5} {
		t.Run(fmt.Sprintf("slot%d", slot), func(t *testing.T) {
			m := New(CS1(1, 1))
			defer m.Close()
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for slot %d", slot)
				}
			}()
			m.Tiles[0].Core.LaunchThread(slot, "bad", mk(m), nil)
		})
	}
	m := New(CS1(1, 1))
	defer m.Close()
	m.Tiles[0].Core.LaunchThread(0, "lo", mk(m), nil)
	m.Tiles[0].Core.LaunchThread(MaxThreads-1, "hi", mk(m), nil)
	if m.Tiles[0].Core.nthreads != 2 {
		t.Errorf("nthreads = %d, want 2", m.Tiles[0].Core.nthreads)
	}
}

// spinForever never completes: it pins a core on the worklist.
type spinForever struct{}

func (spinForever) Step(c *Core, lanes int) int {
	if lanes > 0 {
		return 1
	}
	return 0
}
func (spinForever) Done() bool { return false }

// TestRunUntilWedgeDetection exercises both RunUntil failure modes
// under both engines: a machine with no runnable work and a done() that
// never fires wedges after the idle window; a machine kept busy by a
// never-finishing thread runs to the cycle budget instead.
func TestRunUntilWedgeDetection(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers%d", workers), func(t *testing.T) {
			cfg := CS1(4, 4)
			cfg.Workers = workers
			m := New(cfg)
			defer m.Close()
			_, err := m.RunUntil(func() bool { return false }, 1<<20)
			if err == nil || !strings.Contains(err.Error(), "wedged") {
				t.Errorf("idle machine: want wedge error, got %v", err)
			}

			m2 := New(cfg)
			defer m2.Close()
			m2.Tiles[0].Core.LaunchThread(0, "spin", spinForever{}, nil)
			cyc, err := m2.RunUntil(func() bool { return false }, 50)
			if err == nil || !strings.Contains(err.Error(), "exceeded") {
				t.Errorf("busy machine: want exceeded error, got %v", err)
			}
			if cyc < 50 {
				t.Errorf("busy machine stopped after %d cycles, want 50", cyc)
			}

			// A stuck stream — rx words whose subscriber is full and has
			// no consumer — must park the core and wedge fast, not spin
			// to the cycle budget as "exceeded".
			m3 := New(cfg)
			defer m3.Close()
			src, dst := m3.Tiles[0], m3.Tiles[1]
			m3.Fab.SetRoute(src.Coord, fabric.Ramp, 2, fabric.Mask(fabric.East))
			m3.Fab.SetRoute(dst.Coord, fabric.West, 2, fabric.Mask(fabric.Ramp))
			dst.Core.Subscribe(2, NewStreamBuf(1)) // one word of space, never drained
			n := 8
			base := src.Arena.MustAlloc("v", n)
			src.Core.LaunchThread(0, "tx", &SendMem{Color: 2, Src: tensor.Vec1D(base, n), Arena: src.Arena, Total: n}, nil)
			_, err = m3.RunUntil(func() bool { return false }, 1<<20)
			if err == nil || !strings.Contains(err.Error(), "wedged") {
				t.Errorf("stuck stream: want wedge error, got %v", err)
			}
		})
	}
}

// TestAllIdleBothEngines drives a machine through idle → busy → idle
// and checks AllIdle tracks it identically under both engines, with
// matching state fingerprints throughout.
func TestAllIdleBothEngines(t *testing.T) {
	run := func(workers int) (trace []bool, fp uint64) {
		cfg := CS1(3, 3)
		cfg.Workers = workers
		m := New(cfg)
		defer m.Close()
		trace = append(trace, m.AllIdle())
		tl := m.Tiles[4]
		base := tl.Arena.MustAlloc("x", 8)
		op := &MemOp{Kind: OpCopy, Arena: tl.Arena, Dst: tensor.Vec1D(base, 8), A: tensor.Vec1D(base, 8)}
		task := tl.Core.AddTask(&Task{Name: "t", Instrs: []Instr{op}})
		tl.Core.Activate(task)
		trace = append(trace, m.AllIdle())
		for i := 0; i < 20; i++ {
			m.Step()
		}
		trace = append(trace, m.AllIdle())
		return trace, m.Fingerprint()
	}
	seqTrace, seqFP := run(1)
	parTrace, parFP := run(4)
	want := []bool{true, false, true}
	for i := range want {
		if seqTrace[i] != want[i] || parTrace[i] != want[i] {
			t.Fatalf("AllIdle trace seq %v par %v, want %v", seqTrace, parTrace, want)
		}
	}
	if seqFP != parFP {
		t.Errorf("fingerprints diverge: seq %#x par %#x", seqFP, parFP)
	}
}

// TestRxDeliveryWakesParkedCore pins the fabric→core wake edge: a core
// whose only job is a stream subscription parks once quiescent, is
// re-listed when a word lands at its ramp, delivers it to the buffer,
// and parks again when its rx drains.
func TestRxDeliveryWakesParkedCore(t *testing.T) {
	m := New(CS1(2, 1))
	defer m.Close()
	src, dst := m.Tiles[0], m.Tiles[1]
	m.Fab.SetRoute(src.Coord, fabric.Ramp, 5, fabric.Mask(fabric.East))
	m.Fab.SetRoute(dst.Coord, fabric.West, 5, fabric.Mask(fabric.Ramp))
	buf := NewStreamBuf(8)
	dst.Core.Subscribe(5, buf)

	// Drain the Subscribe wake: with no words anywhere the core parks.
	for i := 0; i < 3; i++ {
		m.Step()
	}
	if dst.Core.queued {
		t.Fatal("subscribed-but-wordless core did not park")
	}

	n := 4
	base := src.Arena.MustAlloc("v", n)
	for i := 0; i < n; i++ {
		src.Arena.Set(base+i, fp16.FromFloat64(float64(i+1)))
	}
	src.Core.LaunchThread(0, "tx", &SendMem{Color: 5, Src: tensor.Vec1D(base, n), Arena: src.Arena, Total: n}, nil)
	for i := 0; i < 20; i++ {
		m.Step()
	}
	if buf.Len() != n {
		t.Fatalf("parked core missed deliveries: buffered %d elements, want %d", buf.Len(), n)
	}
	if dst.Core.queued {
		t.Error("core did not re-park after draining its rx")
	}
	if !m.AllIdle() {
		t.Error("machine not AllIdle after the stream drained")
	}
}

func TestThreadSlotConflictPanics(t *testing.T) {
	m := New(CS1(1, 1))
	c := m.Tiles[0].Core
	a := m.Tiles[0].Arena
	base := a.MustAlloc("x", 4)
	mk := func() *MemOp {
		return &MemOp{Kind: OpCopy, Arena: a, Dst: tensor.Vec1D(base, 4), A: tensor.Vec1D(base, 4)}
	}
	c.LaunchThread(3, "a", mk(), nil)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on occupied thread slot")
		}
	}()
	c.LaunchThread(3, "b", mk(), nil)
}

func TestSendMemAcrossFabric(t *testing.T) {
	// One tile streams a vector to its neighbour via SendMem; a StreamBuf
	// subscriber collects it: the building block of the SpMV broadcast.
	m := New(CS1(2, 1))
	src, dst := m.Tiles[0], m.Tiles[1]
	n := 16
	base := src.Arena.MustAlloc("v", n)
	for i := 0; i < n; i++ {
		src.Arena.Set(base+i, fp16.FromFloat64(float64(i)))
	}
	m.Fab.SetRoute(src.Coord, 4, 7, 1<<1) // Ramp in, East out, color 7
	m.Fab.SetRoute(dst.Coord, 3, 7, 1<<4) // arrives West, to Ramp
	buf := NewStreamBuf(8)
	dst.Core.Subscribe(7, buf)

	send := &SendMem{Color: 7, Src: tensor.Vec1D(base, n), Arena: src.Arena, Total: n}
	src.Core.LaunchThread(0, "tx", send, nil)

	acc := dst.Arena.MustAlloc("acc", n)
	add := &StreamAdd{Src: StreamSource{B: buf}, Acc: tensor.Vec1D(acc, n), Arena: dst.Arena, Total: n}
	dst.Core.LaunchThread(0, "rx", add, nil)

	if _, err := m.RunUntil(func() bool { return send.Done() && add.Done() }, 10000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := dst.Arena.At(acc + i).Float64(); got != float64(i) {
			t.Fatalf("received[%d] = %g, want %d", i, got, i)
		}
	}
}

func TestUtilizationTracking(t *testing.T) {
	m := New(CS1(1, 1))
	c := m.Tiles[0].Core
	a := m.Tiles[0].Arena
	base := a.MustAlloc("x", 32)
	op := &MemOp{Kind: OpCopy, Arena: a, Dst: tensor.Vec1D(base, 32), A: tensor.Vec1D(base, 32)}
	c.LaunchThread(0, "t", op, nil)
	if _, err := m.RunUntil(op.Done, 100); err != nil {
		t.Fatal(err)
	}
	busy, lanes := c.Utilization()
	if busy <= 0 || busy > 1 || lanes <= 0 || lanes > 4 {
		t.Errorf("utilization out of range: busy %g lanes %g", busy, lanes)
	}
}
