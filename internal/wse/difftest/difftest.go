// Package difftest is the differential test layer over the wse
// stepping engines. Every engine — sequential (the reference),
// sharded, batched, and fast-forward — promises bit- and
// cycle-identical architectural state, and this package checks the
// promise the strongest way the simulator allows: one machine per
// engine runs the same workload and the complete architectural
// fingerprint (Machine.Fingerprint: scheduler flags, pcs, thread
// slots, stream buffers, tile memories, fabric queues and rotations)
// is compared after every single cycle, so a divergence is caught at
// the exact cycle it first appears rather than smeared into a final
// wrong answer.
//
// The fast-forward engine steps through the batched path here — its
// analytic phase jumps only fire inside Program3D.Run, which the
// lockstep harness deliberately bypasses by arming programs and
// stepping cycle by cycle. The jump itself is differentially tested at
// its only observable boundary (RunEndState): same results, same total
// cycles, same fingerprint as a sequential Run.
package difftest

import (
	"testing"

	"repro/internal/wse"
)

// Instance is one engine's machine under the harness plus the
// host-side driver of its workload.
type Instance struct {
	M *wse.Machine
	// Tick runs the workload's host actors for the current cycle
	// (arming retries, ramp injection and drains) and reports whether
	// the workload has completed. The harness calls it once per cycle
	// and steps the machine after every non-final Tick, the same
	// Tick/Step cadence the kernels' own run loops use.
	Tick func() bool
}

// Engines is the full engine matrix the lockstep tables run.
var Engines = []wse.Engine{
	wse.EngineSequential,
	wse.EngineSharded,
	wse.EngineBatched,
	wse.EngineFastForward,
}

// Lockstep builds one Instance per engine and drives them all in
// per-cycle fingerprint lockstep until every workload reports
// completion on the same cycle. Any divergence — fingerprint,
// completion cycle, or final idleness — fails the test at the first
// cycle it shows.
func Lockstep(t *testing.T, maxCycles int64, build func(e wse.Engine) *Instance) {
	t.Helper()
	insts := make([]*Instance, len(Engines))
	for i, e := range Engines {
		insts[i] = build(e)
		defer insts[i].M.Close()
	}
	compare := func(when string) {
		ref := insts[0].M.Fingerprint()
		for i := 1; i < len(insts); i++ {
			if fp := insts[i].M.Fingerprint(); fp != ref {
				t.Fatalf("cycle %d (%s): %v fingerprint %#x, %v fingerprint %#x",
					insts[0].M.Cycle(), when, Engines[0], ref, Engines[i], fp)
			}
		}
	}
	compare("before first cycle")
	for {
		done := insts[0].Tick()
		for i := 1; i < len(insts); i++ {
			if d := insts[i].Tick(); d != done {
				t.Fatalf("cycle %d: completion diverges: %v done=%v, %v done=%v",
					insts[0].M.Cycle(), Engines[0], done, Engines[i], d)
			}
		}
		if done {
			break
		}
		if insts[0].M.Cycle() >= maxCycles {
			t.Fatalf("workload did not complete in %d cycles", maxCycles)
		}
		for _, in := range insts {
			in.M.Step()
		}
		compare("after step")
	}
	compare("at completion")
	if insts[0].M.Cycle() == 0 {
		t.Fatal("workload completed without stepping a single cycle — the builder armed nothing")
	}
	for i, in := range insts {
		if !in.M.AllIdle() {
			t.Errorf("%v machine not idle at completion", Engines[i])
		}
	}
}
