package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/fp16"
	"repro/internal/kernels"
	"repro/internal/stencil"
	"repro/internal/stencilc"
	"repro/internal/wse"
)

// config builds the standard CS1-derived configuration for engine e.
// The sharded engine gets a fixed worker count so the shard partition —
// and therefore the schedule it must prove equivalent under — is the
// same on every run.
func config(w, h int, e wse.Engine) wse.Config {
	cfg := wse.CS1(w, h)
	cfg.Engine = e
	if e == wse.EngineSharded {
		cfg.Workers = 3
	}
	return cfg
}

// halfVec returns a deterministic pseudo-random fp16 vector in (-1, 1).
func halfVec(n int, seed int64) []fp16.Float16 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]fp16.Float16, n)
	for i := range v {
		v[i] = fp16.FromFloat64(rng.Float64()*2 - 1)
	}
	return v
}

// program3D compiles spec for op on a wafer exactly covering the mesh
// (so no host halo fill is needed: every off-fabric direction is also
// off-mesh and its term is skipped), loads src, and arms one
// application. Driving the armed program cycle by cycle instead of
// calling Run keeps the fast-forward engine on its stepping path — the
// analytic jump is covered by TestRunEndState at its phase boundary.
func program3D(t *testing.T, spec stencilc.Spec, op *stencil.OpStarHalf, src []fp16.Float16) func(e wse.Engine) *Instance {
	return func(e wse.Engine) *Instance {
		m := wse.New(config(op.M.NX, op.M.NY, e))
		p, err := stencilc.Compile3D(m, spec, op, 0, 0, 0)
		if err != nil {
			m.Close()
			t.Fatal(err)
		}
		loadIterate(p, src)
		p.Arm()
		return &Instance{M: m, Tick: p.Done}
	}
}

func loadIterate(p *stencilc.Program3D, src []fp16.Float16) {
	m := p.Mesh
	for i := 0; i < p.Tiles(); i++ {
		gx, gy := p.GlobalCoord(i)
		copy(p.Iterate(i), src[m.Index(gx, gy, 0):m.Index(gx, gy, 0)+m.NZ])
	}
}

// TestLockstepAllReduce locksteps the Figure 6 scalar AllReduce: host
// ramp actors over six colors of routed fabric, no core instructions —
// the engine-sensitive part is the fabric stepper and the rx-delivery
// wake plumbing.
func TestLockstepAllReduce(t *testing.T) {
	const w, h = 7, 5
	values := make([]float32, w*h)
	for i := range values {
		values[i] = float32(i%13)*0.25 - 1
	}
	var ars []*kernels.AllReduce
	Lockstep(t, 1<<16, func(e wse.Engine) *Instance {
		m := wse.New(config(w, h, e))
		ar, err := kernels.NewAllReduce(m, 0)
		if err != nil {
			m.Close()
			t.Fatal(err)
		}
		if err := ar.Begin(values); err != nil {
			m.Close()
			t.Fatal(err)
		}
		ars = append(ars, ar)
		return &Instance{M: m, Tick: ar.Tick}
	})
	want := ars[0].Result()
	for _, ar := range ars[1:] {
		got := ar.Result()
		if got.Sum != want.Sum || got.Cycles != want.Cycles {
			t.Errorf("allreduce result diverges: %+v vs %+v", got, want)
		}
	}
}

// TestLockstepSpec9Point locksteps the 2-D 9-point box program — the
// block-interior MemOp streams are exactly the shape the batched
// engine's equivalence classes target, and the column/row exchanges
// provide mid-batch rx divergence.
func TestLockstepSpec9Point(t *testing.T) {
	m2 := stencil.Mesh2D{NX: 12, NY: 8}
	op, _ := stencil.Random9(m2, 1.4, rand.New(rand.NewSource(29))).Normalize9()
	src := halfVec(m2.N(), 31)
	const b = 4
	Lockstep(t, 1<<18, func(e wse.Engine) *Instance {
		m := wse.New(config(m2.NX/b, m2.NY/b, e))
		p, err := stencilc.Compile2D(m, stencilc.Spec9Point(), op, b, 0)
		if err != nil {
			m.Close()
			t.Fatal(err)
		}
		p.LoadVector(src)
		p.Arm()
		return &Instance{M: m, Tick: p.Done}
	})
}

func TestLockstepSpec7Point(t *testing.T) {
	m3 := stencil.Mesh{NX: 6, NY: 5, NZ: 6}
	norm, _ := stencil.Heat3D(m3, 0.1, stencil.Dirichlet).Normalize()
	Lockstep(t, 1<<18, program3D(t, stencilc.Spec7Point(), stencil.NewOpStarHalf(norm), halfVec(m3.N(), 37)))
}

// TestLockstepSeismic25 locksteps the 25-point seismic star: four
// relay rounds per direction on a fabric narrower than the relay
// width, the heaviest exchange schedule the compiler emits.
func TestLockstepSeismic25(t *testing.T) {
	m3 := stencil.Mesh{NX: 6, NY: 4, NZ: 8}
	norm, _ := stencil.Seismic25(m3, 0.08).Normalize()
	Lockstep(t, 1<<18, program3D(t, stencilc.SpecSeismic25(), stencil.NewOpStarHalf(norm), halfVec(m3.N(), 41)))
}

// TestLockstepHeat locksteps the heat program with the fused residual
// reduction (ReduceSumSq), covering the DotMixed instruction — the
// second batchable instruction class — alongside the MemOp streams.
func TestLockstepHeat(t *testing.T) {
	m3 := stencil.Mesh{NX: 5, NY: 4, NZ: 6}
	norm, _ := stencil.Heat3D(m3, 0.12, stencil.Dirichlet).Normalize()
	Lockstep(t, 1<<18, program3D(t, stencilc.SpecHeat3D(), stencil.NewOpStarHalf(norm), halfVec(m3.N(), 43)))
}

// TestRunEndState pins the fast-forward engine at the only boundary
// where it is observable: a Program3D.Run that takes the analytic jump
// must land on exactly the state the sequential engine reaches by
// cycle simulation — same cycle count, same result bits, same
// partials, same machine fingerprint.
func TestRunEndState(t *testing.T) {
	cases := []struct {
		name string
		spec stencilc.Spec
		mesh stencil.Mesh
	}{
		{"spec7", stencilc.Spec7Point(), stencil.Mesh{NX: 6, NY: 5, NZ: 6}},
		{"seismic25", stencilc.SpecSeismic25(), stencil.Mesh{NX: 6, NY: 4, NZ: 8}},
		{"heat", stencilc.SpecHeat3D(), stencil.Mesh{NX: 5, NY: 4, NZ: 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			norm, _ := stencil.Seismic25(tc.mesh, 0.08).Normalize()
			if tc.spec.Widths[0] == 1 {
				norm, _ = stencil.Heat3D(tc.mesh, 0.1, stencil.Dirichlet).Normalize()
			}
			op := stencil.NewOpStarHalf(norm)
			src := halfVec(tc.mesh.N(), 47)
			run := func(e wse.Engine) (int64, []fp16.Float16, []float32, uint64) {
				m := wse.New(config(tc.mesh.NX, tc.mesh.NY, e))
				defer m.Close()
				p, err := stencilc.Compile3D(m, tc.spec, op, 0, 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				loadIterate(p, src)
				cycles, err := p.Run(1 << 20)
				if err != nil {
					t.Fatal(err)
				}
				res := make([]fp16.Float16, 0, tc.mesh.N())
				for i := 0; i < p.Tiles(); i++ {
					res = append(res, p.Result(i)...)
				}
				return cycles, res, append([]float32(nil), p.Partials()...), m.Fingerprint()
			}
			seqCyc, seqRes, seqPart, seqFP := run(wse.EngineSequential)
			ffCyc, ffRes, ffPart, ffFP := run(wse.EngineFastForward)
			if seqCyc != ffCyc {
				t.Errorf("cycles diverge: seq %d, ff %d", seqCyc, ffCyc)
			}
			for i := range seqRes {
				if seqRes[i] != ffRes[i] {
					t.Fatalf("result[%d] bits diverge: seq %#04x, ff %#04x", i, uint16(seqRes[i]), uint16(ffRes[i]))
				}
			}
			for i := range seqPart {
				if seqPart[i] != ffPart[i] {
					t.Errorf("partial[%d] diverges: seq %v, ff %v", i, seqPart[i], ffPart[i])
				}
			}
			if seqFP != ffFP {
				t.Errorf("fingerprints diverge: seq %#x, ff %#x", seqFP, ffFP)
			}
		})
	}
}
