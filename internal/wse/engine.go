package wse

import (
	"flag"
	"fmt"
)

// Engine selects how a Machine steps its cores each cycle. All engines
// are bit- and cycle-identical — same Fingerprint every cycle, same
// counters, same results — so the choice is purely a host-side
// throughput knob; the difftest package and FuzzMachineEquivalence pin
// the contract.
type Engine int

// The stepping engines.
const (
	// EngineAuto resolves to EngineSharded when Config.Workers > 1,
	// otherwise to the -wse.engine flag override if one is set, and
	// EngineSequential failing that.
	EngineAuto Engine = iota
	// EngineSequential steps every runnable core scalar-style on one
	// goroutine: the reference engine.
	EngineSequential
	// EngineSharded partitions the tile grid across Config.Workers
	// goroutines (the fabric's sharded stepper); cores step scalar-style
	// within their shard.
	EngineSharded
	// EngineBatched detects equivalence classes of cores that are about
	// to execute the same instruction shape and runs one decoded
	// operation across all of them per cycle, falling back to scalar
	// stepping the moment a core diverges (pending rx words, threads,
	// non-contiguous operands). See batch.go.
	EngineBatched
	// EngineFastForward is EngineBatched plus analytic fast-forward of
	// statically-timed phases: compute phases whose cycle count is
	// exactly predictable advance memory through the same element
	// loops and jump the cycle counter, cycle-simulating only phase
	// boundaries. See ff.go and stencilc.Program3D.
	EngineFastForward
)

// String returns the engine's short name, matching ParseEngine.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineSequential:
		return "seq"
	case EngineSharded:
		return "sharded"
	case EngineBatched:
		return "batched"
	case EngineFastForward:
		return "fastforward"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// ParseEngine parses a short engine name as accepted by the -wse.engine
// flag and cmd/wsesim's -engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "seq", "sequential":
		return EngineSequential, nil
	case "sharded":
		return EngineSharded, nil
	case "batched":
		return EngineBatched, nil
	case "fastforward", "ff":
		return EngineFastForward, nil
	}
	return EngineAuto, fmt.Errorf("wse: unknown engine %q (want seq, sharded, batched or fastforward)", s)
}

// engineFlag lets the whole test suite run under a different stepping
// engine (`go test ./... -args -wse.engine=batched`), turning every
// kernel test into an engine-equivalence test. The override applies
// only to machines built with EngineAuto and Workers <= 1, so tests
// that explicitly construct a particular engine (engine-vs-engine
// equivalence tests, sharded paper-scale runs) keep what they asked
// for.
var engineFlag = flag.String("wse.engine", "",
	"override the wse core-stepping engine for EngineAuto machines (seq, batched, fastforward)")

// resolveEngine applies the EngineAuto resolution rule.
func resolveEngine(cfg Config) Engine {
	e := cfg.Engine
	if e != EngineAuto {
		return e
	}
	if cfg.Workers > 1 {
		return EngineSharded
	}
	if *engineFlag != "" {
		o, err := ParseEngine(*engineFlag)
		if err != nil {
			panic(err)
		}
		if o != EngineAuto {
			return o
		}
	}
	return EngineSequential
}

// EngineName reports the resolved stepping engine of this machine:
// "seq", "sharded-N", "batched" or "fastforward".
func (m *Machine) EngineName() string {
	switch m.engine {
	case EngineSharded:
		return m.Fab.StepperName()
	default:
		return m.engine.String()
	}
}

// FastForwardEnabled reports whether this machine runs under
// EngineFastForward, i.e. whether statically-timed phases may be
// advanced analytically (FastForwardTasks, stencilc.Program3D's
// fast-forward path).
func (m *Machine) FastForwardEnabled() bool { return m.engine == EngineFastForward }
