package wse

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/tensor"
)

// FuzzMachineEquivalence fuzzes the worklist scheduler's equivalence
// contract at machine level, mirroring the fabric's FuzzRouterDelivery:
// a randomized program of task graphs (activate/block/unblock chains on
// completion), background threads, fabric sends and stream consumers is
// built identically on two machines running a randomly drawn pair of
// distinct stepping engines (sequential, sharded, batched,
// fast-forward), stepped in lockstep, and the complete per-cycle
// core-state fingerprint (Machine.Fingerprint: scheduler flags, pcs,
// thread slots, stream buffers, plus the fabric state) must match every
// cycle. This is what keeps the event-driven worklist engine — and the
// batched engine's equivalence-class execution with its scalar
// fallback — from silently diverging from the step-every-core-every-
// cycle semantics. Seed corpus in testdata/fuzz/FuzzMachineEquivalence;
// CI runs this in fuzz-smoke.
func FuzzMachineEquivalence(f *testing.F) {
	f.Add(int64(1), uint64(0x0303), uint64(40))
	f.Add(int64(7), uint64(0x0204), uint64(24))
	f.Add(int64(-3), uint64(0x0602), uint64(64))
	f.Add(int64(99), uint64(0x0505), uint64(96))
	f.Add(int64(11), uint64(0x0404), uint64(48))
	f.Add(int64(-57), uint64(0x0306), uint64(80))
	f.Add(int64(2025), uint64(0x0503), uint64(56))
	f.Add(int64(-1048576), uint64(0x0205), uint64(112))
	f.Fuzz(func(t *testing.T, seed int64, dims, cycles uint64) {
		w := int(dims&0xff)%5 + 2
		h := int((dims>>8)&0xff)%5 + 2
		n := int(cycles%120) + 8
		workers := rand.New(rand.NewSource(seed)).Intn(6) + 2

		// The engine pair under test: two distinct engines drawn from
		// the full matrix, the sharded one keeping the fuzzed worker
		// count so shard-boundary schedules stay covered.
		engines := []Engine{EngineSequential, EngineSharded, EngineBatched, EngineFastForward}
		er := rand.New(rand.NewSource(seed ^ int64(dims)<<17 ^ int64(cycles)))
		ei := er.Intn(len(engines))
		ej := (ei + 1 + er.Intn(len(engines)-1)) % len(engines)

		// build constructs the same randomized program on any machine:
		// a fresh rng with the same seed makes every draw identical.
		build := func(e Engine) *Machine {
			cfg := CS1(w, h)
			cfg.Engine = e
			if e == EngineSharded {
				cfg.Workers = workers
			}
			m := New(cfg)
			r := rand.New(rand.NewSource(seed + 1))
			nextSlot := make([]int, w*h) // per-tile thread slot allocator

			launch := func(ti int, name string, in Instr, onDone func(*Core)) {
				if nextSlot[ti] >= MaxThreads {
					return // tile out of slots; skip identically on both builds
				}
				m.Tiles[ti].Core.LaunchThread(nextSlot[ti], name, in, onDone)
				nextSlot[ti]++
			}

			// Fabric flows: straight lines to the edge, one color each,
			// a SendMem producer at the source and — sometimes — a
			// StreamAdd consumer at the destination. A flow without a
			// consumer exercises rx backpressure and the stay-runnable
			// clause for pending subscribed words.
			nFlows := r.Intn(4) + 1
			for fi := 0; fi < nFlows; fi++ {
				col := fabric.Color(fi)
				dir := []fabric.Port{fabric.North, fabric.East, fabric.South, fabric.West}[r.Intn(4)]
				src := fabric.Coord{X: r.Intn(w), Y: r.Intn(h)}
				var hops int
				switch dir {
				case fabric.East:
					hops = w - 1 - src.X
				case fabric.West:
					hops = src.X
				case fabric.South:
					hops = h - 1 - src.Y
				case fabric.North:
					hops = src.Y
				}
				dst := src
				if hops == 0 {
					m.Fab.SetRoute(src, fabric.Ramp, col, fabric.Mask(fabric.Ramp))
				} else {
					fabric.BuildPath(m.Fab, src, dir, hops, col)
					dx, dy := dir.Delta()
					dst = fabric.Coord{X: src.X + hops*dx, Y: src.Y + hops*dy}
				}

				total := r.Intn(24) + 1
				srcTile := m.TileAt(src)
				base := srcTile.Arena.MustAlloc(fmt.Sprintf("tx%d", fi), total)
				for i := 0; i < total; i++ {
					srcTile.Arena.Set(base+i, fp16.FromFloat64(float64(r.Intn(64))/8))
				}
				send := &SendMem{Color: col, Src: tensor.Vec1D(base, total), Arena: srcTile.Arena, Total: total}
				launch(m.Fab.Index(src), fmt.Sprintf("tx%d", fi), send, nil)

				dstTile := m.TileAt(dst)
				buf := NewStreamBuf(r.Intn(4) + 1)
				dstTile.Core.Subscribe(col, buf)
				if r.Intn(3) > 0 {
					acc := dstTile.Arena.MustAlloc(fmt.Sprintf("rx%d", fi), total)
					add := &StreamAdd{Src: StreamSource{B: buf}, Acc: tensor.Vec1D(acc, total),
						Arena: dstTile.Arena, Total: total}
					launch(m.Fab.Index(dst), fmt.Sprintf("rx%d", fi), add, nil)
				}
			}

			// Task graphs: on a third of the tiles, a two-task chain of
			// MemOps whose completions drive the scheduler edges —
			// activation, self-blocking, unblocking — so cores bounce on
			// and off the worklist.
			for ti := 0; ti < w*h; ti++ {
				if r.Intn(3) != 0 {
					continue
				}
				tl := m.Tiles[ti]
				vn := r.Intn(12) + 2
				a := tl.Arena.MustAlloc("a", vn)
				b := tl.Arena.MustAlloc("b", vn)
				for i := 0; i < vn; i++ {
					tl.Arena.Set(a+i, fp16.FromFloat64(float64(r.Intn(16))/4))
					tl.Arena.Set(b+i, fp16.FromFloat64(1))
				}
				kind := []MemOpKind{OpMul, OpAdd, OpCopy}[r.Intn(3)]
				t0 := tl.Core.AddTask(&Task{Name: "t0", Priority: r.Intn(2) == 0,
					Instrs: []Instr{&MemOp{Kind: kind, Arena: tl.Arena,
						Dst: tensor.Vec1D(b, vn), A: tensor.Vec1D(a, vn), B: tensor.Vec1D(b, vn)}}})
				t1 := tl.Core.AddTask(&Task{Name: "t1",
					Instrs: []Instr{&MemOp{Kind: OpCopy, Arena: tl.Arena,
						Dst: tensor.Vec1D(a, vn), A: tensor.Vec1D(b, vn)}}})
				mode := r.Intn(3)
				t0.OnComplete = func(c *Core) {
					c.Block(t0)
					c.Activate(t1)
				}
				t1.OnComplete = func(c *Core) {
					if mode == 0 {
						c.Unblock(t0)
						c.Activate(t0) // ping-pong forever
					}
				}
				if r.Intn(4) == 0 {
					tl.Core.Block(t0)
				} else {
					tl.Core.Activate(t0)
				}
				// Instrs reset between runs is the kernels' job; the fuzz
				// machines only live for one run, so reuse is fine here.
			}
			return m
		}

		ma := build(engines[ei])
		defer ma.Close()
		mb := build(engines[ej])
		defer mb.Close()
		if ma.EngineName() == mb.EngineName() {
			t.Fatalf("engine selection broken: both %q", ma.EngineName())
		}
		t.Logf("engine pair: %s vs %s", ma.EngineName(), mb.EngineName())

		for cyc := 0; cyc < n; cyc++ {
			ma.Step()
			mb.Step()
			if fa, fb := ma.Fingerprint(), mb.Fingerprint(); fa != fb {
				t.Fatalf("cycle %d: machine fingerprints diverge: %s %#x %s %#x",
					cyc, ma.EngineName(), fa, mb.EngineName(), fb)
			}
		}
		if a, b := ma.AllIdle(), mb.AllIdle(); a != b {
			t.Fatalf("AllIdle diverges after %d cycles: %s %v %s %v",
				n, ma.EngineName(), a, mb.EngineName(), b)
		}
	})
}
