package wse

import "repro/internal/fp16"

// This file is the batched core-stepping engine (EngineBatched): one
// decoded instruction executed across every core that is about to do
// the same thing this cycle.
//
// The wafer interior of the compiled stencil kernels is thousands of
// tiles at the same pc of the same task running the same MemOp/DotMixed
// over same-length contiguous operands. The scalar interpreter pays the
// full dispatch — worklist, rx scan, task pick, interface call, tensor
// odometer — per core per cycle. The batched engine instead classifies
// each runnable core by the instruction shape it will execute this
// cycle (classify), groups equal shapes into classes, and runs each
// class with the operation decoded once and a tight elementwise loop
// per core (execClass).
//
// Exactness contract: classification happens every cycle against the
// core's live state, and classification IS the divergence check — a
// core with pending rx words, live threads, a non-contiguous or
// length-mismatched operand, or any instruction outside the batchable
// set simply fails eligibility and takes the scalar step() for that
// cycle. The batched execution itself performs the same element
// operations in the same order with the same roundings as MemOp.Step /
// DotMixed.Step, updates the same descriptors, counters and scheduler
// state, and retires tasks through the same logic — so the machine
// state after every cycle is bit-identical to the sequential engine's,
// which the difftest package and FuzzMachineEquivalence enforce.
//
// Determinism note: within one cycle cores only touch their own tile
// (batchable instructions never reach the fabric), so executing class
// members out of worklist order cannot change any core's state.

// maxBatchClasses bounds the per-shard class table; cores whose shape
// does not fit an existing class when the table is full fall back to
// scalar stepping for the cycle (correct either way).
const maxBatchClasses = 8

// classKey identifies one equivalence class of per-cycle work: the
// decoded operation and the identical remaining element count.
type classKey struct {
	kind MemOpKind
	rem  int
	dot  bool
}

// batchClass is one equivalence class: the key plus the lane block of
// member cores gathered this cycle.
type batchClass struct {
	key   classKey
	cores []*Core
}

// batchState is the per-shard scratch of the batched engine, reused
// across cycles so stepping allocates nothing in steady state.
type batchState struct {
	classes []batchClass
	n       int
}

// class returns the class for k, creating it if the table has room;
// nil means "table full, step scalar".
func (bs *batchState) class(k classKey) *batchClass {
	for i := 0; i < bs.n; i++ {
		if bs.classes[i].key == k {
			return &bs.classes[i]
		}
	}
	if bs.n == maxBatchClasses {
		return nil
	}
	if bs.n == len(bs.classes) {
		bs.classes = append(bs.classes, batchClass{})
	}
	cl := &bs.classes[bs.n]
	bs.n++
	cl.key = k
	cl.cores = cl.cores[:0]
	return cl
}

// memOpUsesB reports whether the kind reads the B operand (see
// MemOp.Step).
func memOpUsesB(k MemOpKind) bool {
	switch k {
	case OpMul, OpAdd, OpFMA, OpMulAcc:
		return true
	}
	return false
}

// stepShardBatched is the batched counterpart of stepShard: classify
// every runnable core, step the divergent ones scalar in worklist
// order, execute each class, then compact the worklist exactly as the
// scalar engine does.
func (m *Machine) stepShardBatched(s int) {
	bs := &m.batch[s]
	bs.n = 0
	list := m.runnable[s]
	for _, c := range list {
		if key, ok := m.classify(c); ok {
			if cl := bs.class(key); cl != nil {
				cl.cores = append(cl.cores, c)
				continue
			}
		}
		c.step()
	}
	for i := 0; i < bs.n; i++ {
		m.execClass(&bs.classes[i])
	}
	w := 0
	for i := 0; i < len(list); i++ {
		c := list[i]
		if c.runnable() {
			if w != i {
				list[w] = c
			}
			w++
		} else {
			c.queued = false
		}
	}
	m.runnable[s] = list[:w]
}

// classify decides whether c's whole cycle is expressible as one
// batchable operation, and performs the scalar step's cheap prefix
// (send-gate reset, task pick) along the way — every mutation here is
// exactly what step() would do first and is idempotent under a scalar
// fallback, so a "false" return loses nothing.
func (m *Machine) classify(c *Core) (classKey, bool) {
	var k classKey
	// Pending rx words mean deliveries (or full-subscriber stalls) that
	// only the scalar path models; rxArmed caches "all subscribed
	// receive queues proven empty" so steady-state compute phases skip
	// the scan.
	if len(c.subColors) > 0 && c.rxArmed {
		for _, col := range c.subColors {
			if m.Fab.RxLen(c.tile.Coord, col) > 0 {
				return k, false
			}
		}
		c.rxArmed = false
	}
	if c.nthreads > 0 {
		return k, false
	}
	c.sentThisCycle = false
	if c.current == nil {
		t := c.pick()
		if t == nil {
			return k, false
		}
		c.current = t
		t.running = true
		t.activated = false
		t.pc = 0
	}
	t := c.current
	if t.pc >= len(t.Instrs) {
		return k, false
	}
	switch op := t.Instrs[t.pc].(type) {
	case *MemOp:
		rem := op.Dst.Len() - op.Dst.Advanced()
		if rem <= 0 || !op.Dst.Contig() || !op.A.Contig() || op.A.Len()-op.A.Advanced() != rem {
			return k, false
		}
		if memOpUsesB(op.Kind) && (!op.B.Contig() || op.B.Len()-op.B.Advanced() != rem) {
			return k, false
		}
		return classKey{kind: op.Kind, rem: rem}, true
	case *DotMixed:
		if m.Cfg.SIMDWidth < 2 {
			// The scalar datapath cannot issue a 2-lane FMAC at all at
			// SIMDWidth 1; preserve its (wedging) behavior.
			return k, false
		}
		rem := op.A.Len() - op.A.Advanced()
		if rem <= 0 || !op.A.Contig() || !op.B.Contig() || op.B.Len()-op.B.Advanced() != rem {
			return k, false
		}
		return classKey{rem: rem, dot: true}, true
	}
	return k, false
}

// execClass runs one cycle of every core in the class: the per-cycle
// element count is decided once from the key, and each member executes
// the same tight loop — same element order, same roundings, same
// counter updates as the scalar interpreter.
func (m *Machine) execClass(cl *batchClass) {
	if cl.key.dot {
		e := m.Cfg.SIMDWidth / 2
		if e > cl.key.rem {
			e = cl.key.rem
		}
		for _, c := range cl.cores {
			t := c.current
			op := t.Instrs[t.pc].(*DotMixed)
			a := op.Arena.Slice(op.A.Pos(), e)
			b := op.Arena.Slice(op.B.Pos(), e)
			acc := op.acc
			for j := 0; j < e; j++ {
				acc = fp16.MixedFMAC(acc, a[j], b[j])
			}
			op.acc = acc
			op.began = true
			op.A.SkipContig(e)
			op.B.SkipContig(e)
			c.busyCycles++
			c.lanesUsed += int64(2 * e)
			if e == cl.key.rem {
				if op.Out != nil {
					*op.Out = op.acc
				}
				m.retireCurrent(c)
			}
		}
		return
	}
	n := m.Cfg.SIMDWidth
	if n > cl.key.rem {
		n = cl.key.rem
	}
	usesB := memOpUsesB(cl.key.kind)
	for _, c := range cl.cores {
		t := c.current
		op := t.Instrs[t.pc].(*MemOp)
		// Slices view live arena memory, so overlapping operands (the
		// FIFO-draining accumulate-in-place patterns) behave exactly as
		// the scalar element loop: element j is fully read and written
		// before element j+1.
		d := op.Arena.Slice(op.Dst.Pos(), n)
		a := op.Arena.Slice(op.A.Pos(), n)
		var b []fp16.Float16
		if usesB {
			b = op.Arena.Slice(op.B.Pos(), n)
		}
		switch cl.key.kind {
		case OpMul:
			for j := 0; j < n; j++ {
				d[j] = fp16.Mul(a[j], b[j])
			}
		case OpAdd:
			for j := 0; j < n; j++ {
				d[j] = fp16.Add(a[j], b[j])
			}
		case OpAxpy:
			for j := 0; j < n; j++ {
				d[j] = fp16.FMA(op.S, a[j], d[j])
			}
		case OpCopy:
			copy(d, a)
		case OpFMA:
			for j := 0; j < n; j++ {
				d[j] = fp16.FMA(op.S, a[j], b[j])
			}
		case OpXPAY:
			for j := 0; j < n; j++ {
				d[j] = fp16.FMA(op.S, d[j], a[j])
			}
		case OpMulAcc:
			for j := 0; j < n; j++ {
				d[j] = fp16.Add(d[j], fp16.Mul(a[j], b[j]))
			}
		}
		op.started = true
		op.Dst.SkipContig(n)
		op.A.SkipContig(n)
		if usesB {
			op.B.SkipContig(n)
		}
		c.busyCycles++
		c.lanesUsed += int64(n)
		if n == cl.key.rem {
			m.retireCurrent(c)
		}
	}
}

// retireCurrent applies the scalar step's retire phase to a core whose
// current instruction just completed: advance past done instructions,
// and finish the task (running flag, OnComplete) when the body is
// exhausted.
func (m *Machine) retireCurrent(c *Core) {
	t := c.current
	for t.pc < len(t.Instrs) && t.Instrs[t.pc].Done() {
		t.pc++
	}
	if t.pc >= len(t.Instrs) {
		t.running = false
		c.current = nil
		if t.OnComplete != nil {
			t.OnComplete(c)
		}
	}
}
