package wse

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fp16"
	"repro/internal/tensor"
)

// snapProg is the deterministic two-tile program behind the snapshot
// tests: tile 0 streams a vector east on color 7, tile 1 accumulates it
// with a StreamAdd and then runs a copy task, so a completed run leaves
// non-default state in every snapshotted dimension — arena contents on
// both tiles, a task with a retired program counter, datapath counters,
// and fabric arbitration history. The static half (routes, arenas,
// subscriptions, tasks) is program construction and must be rebuilt
// before Restore; the threads are runtime state and only exist while a
// phase is in flight.
type snapProg struct {
	src, dst  *Tile
	v, acc, w int
	buf       *StreamBuf
	fin       *Task
	idle      *Task
	n         int
}

func buildSnapProg(m *Machine) *snapProg {
	p := &snapProg{src: m.Tiles[0], dst: m.Tiles[1], n: 16}
	p.v = p.src.Arena.MustAlloc("v", p.n)
	p.acc = p.dst.Arena.MustAlloc("acc", p.n)
	p.w = p.dst.Arena.MustAlloc("w", p.n)
	m.Fab.SetRoute(p.src.Coord, 4, 7, 1<<1) // Ramp in, East out
	m.Fab.SetRoute(p.dst.Coord, 3, 7, 1<<4) // arrives West, to Ramp
	p.buf = NewStreamBuf(8)
	p.dst.Core.Subscribe(7, p.buf)
	p.fin = p.dst.Core.AddTask(&Task{Name: "fin", Instrs: []Instr{
		&MemOp{Kind: OpCopy, Arena: p.dst.Arena, Dst: tensor.Vec1D(p.w, p.n), A: tensor.Vec1D(p.acc, p.n)},
	}})
	// A registered-but-never-activated task, so Restore must reproduce
	// quiet scheduler entries too, not just retired ones.
	p.idle = p.dst.Core.AddTask(&Task{Name: "idle", Instrs: []Instr{
		&MemOp{Kind: OpCopy, Arena: p.dst.Arena, Dst: tensor.Vec1D(p.w, p.n), A: tensor.Vec1D(p.w, p.n)},
	}})
	p.dst.Core.Block(p.idle)
	return p
}

// launch starts one stream round: src sends v, dst accumulates into acc
// and (on the first round) activates the fin task when the stream
// retires. Returns the round's done predicate.
func (p *snapProg) launch(slot int, activateFin bool) func() bool {
	send := &SendMem{Color: 7, Src: tensor.Vec1D(p.v, p.n), Arena: p.src.Arena, Total: p.n}
	p.src.Core.LaunchThread(slot, "tx", send, nil)
	add := &StreamAdd{Src: StreamSource{B: p.buf}, Acc: tensor.Vec1D(p.acc, p.n), Arena: p.dst.Arena, Total: p.n}
	var onDone func(*Core)
	if activateFin {
		fin := p.fin
		onDone = func(c *Core) { c.Activate(fin) }
	}
	p.dst.Core.LaunchThread(slot, "rx", add, onDone)
	return func() bool { return send.Done() && add.Done() }
}

// runToIdle drives the machine until done reports true and the machine
// is fully quiescent (threads retired, tasks drained, fabric empty).
func runToIdle(t *testing.T, m *Machine, done func() bool) {
	t.Helper()
	if _, err := m.RunUntil(done, 20000); err != nil {
		t.Fatal(err)
	}
	for i := 0; !m.AllIdle(); i++ {
		if i > 1000 {
			t.Fatal("machine did not reach AllIdle after the phase completed")
		}
		m.Step()
	}
}

// capturedMachine builds the program on a fresh machine, seeds the
// source vector and runs the first stream round to quiescence.
func capturedMachine(t *testing.T, workers int) (*Machine, *snapProg) {
	t.Helper()
	cfg := CS1(2, 1)
	cfg.Workers = workers
	m := New(cfg)
	p := buildSnapProg(m)
	for i := 0; i < p.n; i++ {
		p.src.Arena.Set(p.v+i, fp16.FromFloat64(float64(i)*0.5))
	}
	runToIdle(t, m, p.launch(0, true))
	return m, p
}

// TestSnapshotRoundTrip is the resume golden: capture a quiescent
// machine, push it through the binary format, restore onto a freshly
// constructed machine — possibly under a different stepping engine —
// and require bit-identical evolution: equal Fingerprint at restore and
// on every subsequent lockstep cycle of a second stream round.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, wk := range []struct{ a, b int }{{1, 1}, {1, 4}, {4, 1}} {
		t.Run(fmt.Sprintf("w%d_to_w%d", wk.a, wk.b), func(t *testing.T) {
			ma, pa := capturedMachine(t, wk.a)
			defer ma.Close()
			snap, err := ma.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			blob, err := snap.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			blob2, err := snap.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatal("MarshalBinary is not deterministic")
			}
			dec, err := UnmarshalSnapshot(blob)
			if err != nil {
				t.Fatal(err)
			}
			reblob, err := dec.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, reblob) {
				t.Fatal("marshal/unmarshal/marshal is not byte-stable")
			}

			cfg := CS1(2, 1)
			cfg.Workers = wk.b
			mb := New(cfg)
			defer mb.Close()
			pb := buildSnapProg(mb) // same program, untouched arena
			if err := mb.Restore(dec); err != nil {
				t.Fatal(err)
			}
			if fa, fb := ma.Fingerprint(), mb.Fingerprint(); fa != fb {
				t.Fatalf("fingerprint after restore: %#x, captured machine has %#x", fb, fa)
			}
			for i := 0; i < pa.n; i++ {
				if ga, gb := pa.dst.Arena.At(pa.acc+i).Bits(), pb.dst.Arena.At(pb.acc+i).Bits(); ga != gb {
					t.Fatalf("restored acc[%d] = %#x, captured machine has %#x", i, gb, ga)
				}
			}

			// Second round on both machines, in lockstep: the restored
			// machine must shadow the original cycle for cycle.
			da, db := pa.launch(1, false), pb.launch(1, false)
			for cycle := 0; ; cycle++ {
				if cycle > 20000 {
					t.Fatal("second stream round did not finish")
				}
				if fa, fb := ma.Fingerprint(), mb.Fingerprint(); fa != fb {
					t.Fatalf("fingerprints diverge at lockstep cycle %d: %#x vs %#x", cycle, fa, fb)
				}
				if da() && db() && ma.AllIdle() && mb.AllIdle() {
					break
				}
				ma.Step()
				mb.Step()
			}
			// Two accumulation rounds over v[i] = i/2, plus the copy task.
			for i := 0; i < pa.n; i++ {
				want := fp16.FromFloat64(float64(i) * 0.5)
				want = fp16.Add(want, fp16.FromFloat64(float64(i)*0.5))
				if got := pb.dst.Arena.At(pb.acc + i); got.Bits() != want.Bits() {
					t.Fatalf("acc[%d] = %g after resume, want %g", i, got.Float64(), want.Float64())
				}
				if got := pb.dst.Arena.At(pb.w + i).Float64(); got != float64(i)*0.5 {
					t.Fatalf("w[%d] = %g, want %g (fin task output lost in restore)", i, got, float64(i)*0.5)
				}
			}
		})
	}
}

// TestSnapshotErrors pins the refusal paths: busy machines cannot be
// captured or restored, mismatched shapes are rejected before any
// mutation, and corrupt encodings never decode.
func TestSnapshotErrors(t *testing.T) {
	m, p := capturedMachine(t, 1)
	defer m.Close()
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Busy machine: a live thread blocks both capture and restore.
	busyCfg := CS1(2, 1)
	busy := New(busyCfg)
	defer busy.Close()
	bp := buildSnapProg(busy)
	bp.launch(0, false)
	if _, err := busy.Snapshot(); err == nil {
		t.Error("Snapshot on a busy machine succeeded")
	}
	if err := busy.Restore(snap); err == nil {
		t.Error("Restore onto a busy machine succeeded")
	}

	// Dimension mismatch.
	other := New(CS1(3, 1))
	defer other.Close()
	if err := other.Restore(snap); err == nil {
		t.Error("Restore onto a 3x1 machine from a 2x1 snapshot succeeded")
	}

	// Program mismatch: same fabric, but no program built.
	blank := New(CS1(2, 1))
	defer blank.Close()
	if err := blank.Restore(snap); err == nil {
		t.Error("Restore onto an unprogrammed machine succeeded")
	}
	// The failed restore must not have mutated anything.
	if fp := blank.Fingerprint(); fp != New(CS1(2, 1)).Fingerprint() {
		t.Error("failed Restore mutated the machine")
	}

	// Decoder refusals.
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", blob[:4]},
		{"bad magic", append([]byte("NOTASNAP"), blob[8:]...)},
		{"bad version", append(append([]byte{}, blob[:7]...), append([]byte{99}, blob[8:]...)...)},
		{"flipped byte", flipByte(blob, len(blob)/2)},
		{"truncated", blob[:len(blob)-5]},
		{"trailing", append(append([]byte{}, blob...), 0)},
	}
	for _, c := range cases {
		if _, err := UnmarshalSnapshot(c.data); err == nil {
			t.Errorf("%s: UnmarshalSnapshot succeeded on corrupt input", c.name)
		}
	}
	_ = p
}

func flipByte(b []byte, i int) []byte {
	c := append([]byte{}, b...)
	c[i] ^= 0xff
	return c
}

// TestSnapshotGoldenFormat pins the on-disk encoding: the committed
// golden blob must decode under every future revision of the package,
// and re-encoding today's capture must reproduce it byte for byte. If
// the format ever needs to change, bump SnapshotVersion, regenerate
// the golden (delete it and re-run), and keep a decoder for v1.
func TestSnapshotGoldenFormat(t *testing.T) {
	m, _ := capturedMachine(t, 1)
	defer m.Close()
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := snap.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "snapshot_golden_v1.bin")
	if _, err := os.Stat(path); os.IsNotExist(err) {
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("bootstrapped %s (%d bytes); commit it", path, len(blob))
	}
	golden, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, blob) {
		t.Fatalf("snapshot encoding drifted from %s (%d bytes vs %d): bump SnapshotVersion instead of silently changing v%d",
			path, len(blob), len(golden), SnapshotVersion)
	}
	dec, err := UnmarshalSnapshot(golden)
	if err != nil {
		t.Fatalf("committed golden no longer decodes: %v", err)
	}
	fresh := New(CS1(2, 1))
	defer fresh.Close()
	buildSnapProg(fresh)
	if err := fresh.Restore(dec); err != nil {
		t.Fatalf("committed golden no longer restores: %v", err)
	}
	if fa, fb := m.Fingerprint(), fresh.Fingerprint(); fa != fb {
		t.Fatalf("golden restore fingerprint %#x, live machine %#x", fb, fa)
	}
}

// FuzzSnapshotRoundTrip: UnmarshalSnapshot must never panic on
// arbitrary input, and any input it accepts must re-encode stably
// (marshal ∘ unmarshal is idempotent from the first re-encoding on).
func FuzzSnapshotRoundTrip(f *testing.F) {
	m := New(CS1(2, 1))
	defer m.Close()
	p := buildSnapProg(m)
	for i := 0; i < p.n; i++ {
		p.src.Arena.Set(p.v+i, fp16.FromFloat64(float64(i)*0.5))
	}
	done := p.launch(0, true)
	if _, err := m.RunUntil(done, 20000); err != nil {
		f.Fatal(err)
	}
	for i := 0; !m.AllIdle() && i < 1000; i++ {
		m.Step()
	}
	snap, err := m.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	blob, err := snap.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{})
	f.Add(blob[:len(blob)-3])
	f.Add(flipByte(blob, len(blob)/3))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSnapshot(data)
		if err != nil {
			return
		}
		b1, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted input failed to re-encode: %v", err)
		}
		s2, err := UnmarshalSnapshot(b1)
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		b2, err := s2.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatal("marshal/unmarshal/marshal is not byte-stable")
		}

		// Batched-engine leg: any decodable snapshot that fits the 2×1
		// reference shape must behave identically under the sequential
		// and batched engines — Restore accepts or rejects it on both,
		// and an accepted restore leaves equal fingerprints that stay
		// equal under lockstep stepping.
		if s.FabricW == 2 && s.FabricH == 1 {
			mkRestored := func(e Engine) (*Machine, error) {
				cfg := CS1(2, 1)
				cfg.Engine = e
				rm := New(cfg)
				buildSnapProg(rm)
				return rm, rm.Restore(s)
			}
			mseq, errSeq := mkRestored(EngineSequential)
			defer mseq.Close()
			mbat, errBat := mkRestored(EngineBatched)
			defer mbat.Close()
			if (errSeq == nil) != (errBat == nil) {
				t.Fatalf("Restore verdict diverges across engines: seq %v, batched %v", errSeq, errBat)
			}
			if errSeq != nil {
				return
			}
			for cyc := 0; cyc < 32; cyc++ {
				if fa, fb := mseq.Fingerprint(), mbat.Fingerprint(); fa != fb {
					t.Fatalf("restored fingerprints diverge at cycle %d: seq %#x, batched %#x", cyc, fa, fb)
				}
				mseq.Step()
				mbat.Step()
			}
		}
	})
}
