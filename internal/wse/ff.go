package wse

import "fmt"

// This file is the task half of the hybrid fast-forward engine
// (EngineFastForward): when a phase consists purely of per-core
// statically-timed compute tasks — no fabric traffic, no threads, no
// inter-core dependence — its duration is exactly predictable
// (Σ ceil(nᵢ/SIMD) per task, max over tasks), so the machine can run
// every instruction's element loop to completion in one call, account
// the counters analytically, and jump the cycle counter, instead of
// cycle-stepping hundreds of thousands of cores through thousands of
// cycles. The memory result is bit-identical because the elements pass
// through the very same Instr.Step loops in the same order with the
// same roundings; the cycle/fingerprint result is identical because
// the eligibility checks reject any machine state whose evolution a
// cycle simulation could distinguish. The stencil-exchange half of the
// hybrid lives in stencilc.Program3D's fast-forward path, which replays
// the perfmodel's exactly-pinned phase model against the live fabric.

// StaticCycles reports whether in, not yet started, has a statically
// predictable execution time on a core running it alone with the given
// SIMD width, and if so how many cycles it occupies the datapath and
// how many lane-issues it accumulates. Only arena-local vector
// instructions qualify: anything touching the fabric or a FIFO has
// data-dependent timing.
func StaticCycles(in Instr, simd int) (cycles, lanes int64, ok bool) {
	switch op := in.(type) {
	case *MemOp:
		if op.started || op.Dst.Advanced() != 0 {
			return 0, 0, false
		}
		n := op.Dst.Len()
		if n == 0 || simd < 1 {
			return 0, 0, false
		}
		return int64((n + simd - 1) / simd), int64(n), true
	case *DotMixed:
		e := simd / 2 // two lanes per mixed-precision FMAC element
		if op.began || op.A.Advanced() != 0 || e < 1 {
			return 0, 0, false
		}
		n := op.A.Len()
		if n == 0 {
			return 0, 0, false
		}
		return int64((n + e - 1) / e), int64(2 * n), true
	}
	return 0, 0, false
}

// FastForwardTasks advances the machine past a phase consisting of the
// given activated tasks, one per core, returning the cycles skipped.
// It returns (0, false) — and the caller must fall back to ordinary
// stepping — unless it can prove the phase cycle-exact in fast-forward:
//
//   - the machine runs under EngineFastForward and the fabric is
//     quiescent (no words in router queues);
//   - every task is activated and unblocked on an otherwise idle core
//     (no current task, no threads, no pending rx words) and is the
//     core's pick;
//   - every instruction of every task is statically timed
//     (StaticCycles);
//   - every other core on a runnable worklist has no runnable work —
//     it is there only for a pending dequeue, which fast-forward
//     performs just as a real step would.
//
// Under those conditions the phase's machine evolution is exactly:
// each task core busy for its own d_t = Σ ceil(nᵢ/SIMD) cycles, the
// phase over after d = max d_t, any leftover hot router taking a
// single arbitration visit on the first cycle, and nothing else. Task
// OnComplete handlers run as usual but must leave their core idle
// (record-only handlers — the kernels' phase-done flags); a handler
// that schedules more work panics, because fast-forward has already
// committed to the phase ending.
func (m *Machine) FastForwardTasks(tasks []*Task) (int64, bool) {
	if m.engine != EngineFastForward || len(tasks) == 0 || !m.Fab.Quiescent() {
		return 0, false
	}
	var dmax int64
	ok := true
	marked := 0
	for _, t := range tasks {
		c := t.core
		if c == nil || c.ffMark || c.current != nil || c.nthreads > 0 ||
			!t.activated || t.blocked || c.pick() != t {
			ok = false
			break
		}
		if !c.RxQuiet() {
			ok = false
			break
		}
		var d int64
		for _, in := range t.Instrs {
			cy, _, o := StaticCycles(in, m.Cfg.SIMDWidth)
			if !o {
				ok = false
				break
			}
			d += cy
		}
		if !ok || d == 0 {
			ok = false
			break
		}
		c.ffMark = true
		marked++
		if d > dmax {
			dmax = d
		}
	}
	if ok {
	sweep:
		for _, list := range m.runnable {
			for _, c := range list {
				if c.ffMark {
					continue
				}
				// A queued core with nothing runnable is waiting for the
				// dequeue its next step would perform; clearing the send
				// gate first is exactly what that step would do, so this
				// mutation is safe even if we end up falling back.
				c.sentThisCycle = false
				if c.runnable() {
					ok = false
					break sweep
				}
			}
		}
	}
	if !ok {
		for _, t := range tasks {
			if marked == 0 {
				break
			}
			if c := t.core; c != nil && c.ffMark {
				c.ffMark = false
				marked--
			}
		}
		return 0, false
	}

	for _, t := range tasks {
		c := t.core
		c.ffMark = false
		c.sentThisCycle = false
		// Emulate pick, run each instruction's element loop to
		// completion, and retire — the compressed image of d_t scalar
		// cycles, every one of which issues lanes (instruction i+1
		// starts the cycle after i retires, with no idle gap).
		c.current = t
		t.running = true
		t.activated = false
		var cycles, lanes int64
		for pc, in := range t.Instrs {
			t.pc = pc
			cy, ln, _ := StaticCycles(in, m.Cfg.SIMDWidth)
			in.Step(c, 1<<30)
			if !in.Done() {
				panic(fmt.Sprintf("wse: fast-forwarded instruction %d of task %q did not complete", pc, t.Name))
			}
			cycles += cy
			lanes += ln
		}
		t.pc = len(t.Instrs)
		t.running = false
		c.current = nil
		c.busyCycles += cycles
		c.lanesUsed += lanes
		if t.OnComplete != nil {
			t.OnComplete(c)
		}
		if c.runnable() {
			panic(fmt.Sprintf("wse: fast-forwarded task %q left its core runnable (OnComplete must be record-only)", t.Name))
		}
	}

	// Every listed core is now provably idle; perform the dequeues the
	// phase's first simulated cycle would have.
	for s, list := range m.runnable {
		for _, c := range list {
			c.queued = false
		}
		m.runnable[s] = list[:0]
	}

	// Jump the clock. A router left hot by the preceding phase takes
	// exactly one arbitration visit (one rr increment) on the first
	// cycle and then cools — its queues are empty — so one real fabric
	// step reproduces it; the rest of the phase is dead cycles.
	d := dmax
	if m.Fab.HotCount() > 0 {
		m.Fab.Step()
		m.Fab.AdvanceIdle(d - 1)
	} else {
		m.Fab.AdvanceIdle(d)
	}
	m.steps += d
	return d, true
}

// The methods below are the fast-forward application surface: the
// narrow set of state transitions an exact phase replay (the perfmodel
// exchange replay driven by stencilc.Program3D) needs to write its
// outcome back into the machine. Each one expresses only states a
// cycle simulation reaches; the engine-equivalence tests pin the
// callers bit-for-bit against real stepping. Nothing else should call
// them.

// RxQuiet reports whether none of the core's subscribed colors has
// undelivered words waiting in its fabric receive buffer — a core with
// pending deliveries still has architecturally visible work to do, so
// no fast-forward path may skip it.
func (c *Core) RxQuiet() bool {
	for _, col := range c.subColors {
		if c.m.Fab.RxLen(c.tile.Coord, col) > 0 {
			return false
		}
	}
	return true
}

// FastForwardComplete marks t as a finished cycle simulation would
// leave it: deactivated, not running, program counter at pc — the
// instruction count of the program the phase would have armed.
// (Fast-forward paths skip the arming, so t.Instrs may be stale or
// nil; the pc is what the scheduler state, and thus the machine
// fingerprint, carries.)
func (t *Task) FastForwardComplete(pc int) {
	t.activated = false
	t.running = false
	t.pc = pc
}

// FastForwardAccount adds a replayed phase's datapath tallies to the
// core and clears its send gate (a completed phase's final cycle never
// leaves a send pending).
func (c *Core) FastForwardAccount(busy, lanes int64) {
	c.busyCycles += busy
	c.lanesUsed += lanes
	c.sentThisCycle = false
}

// FastForwardSteps advances the machine's step counter by a replayed
// phase's cycle count. The fabric side advances separately
// (fabric.ApplyReplay or AdvanceIdle); this is the core-scheduler
// side, valid only once every core is idle — a replayed phase ends
// with nothing runnable, and stepping an idle machine only counts
// cycles.
func (m *Machine) FastForwardSteps(n int64) {
	if n < 0 {
		panic("wse: FastForwardSteps of negative cycles")
	}
	if m.anyRunnable() {
		panic("wse: FastForwardSteps with runnable cores")
	}
	m.steps += n
}
