package wse

import (
	"math"

	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/tensor"
)

// Instr is a vector instruction executing over multiple cycles on the
// core datapath. Step performs up to `lanes` element-operations and
// returns how many datapath lanes it consumed; Done reports completion.
// Instructions keep their progress in tensor descriptors, which is what
// lets five FIFO-draining adds alias one output vector safely.
//
// Scheduling contract (the event-driven worklist engine relies on it):
// an instruction runs only while its core is stepped, and a not-yet-Done
// instruction keeps the core on the runnable worklist — a stalled Step
// (used = 0, e.g. a backpressured send or a dry stream) is retried every
// cycle, exactly as the polling engine did. Step must touch only its own
// core and tile (Send/Recv on c, the tile arena, FIFOs and stream
// buffers of that tile); scheduling calls into other cores would race
// with their shard's worklist under the sharded engine.
type Instr interface {
	Step(c *Core, lanes int) (used int)
	Done() bool
}

// ElemSource supplies fp16 elements to a consuming instruction: either a
// fabric stream buffer or a memory operand. Implementations live in this
// package (StreamSource, MemSource).
type ElemSource interface {
	avail() int
	take() fp16.Float16
}

// StreamSource adapts a StreamBuf (fabric input) as an element source.
type StreamSource struct{ B *StreamBuf }

func (s StreamSource) avail() int         { return s.B.Len() }
func (s StreamSource) take() fp16.Float16 { return s.B.pop() }

// MemSource reads elements through a descriptor from the tile arena.
type MemSource struct {
	A *tensor.Arena
	D *tensor.Descriptor
}

func (s MemSource) avail() int {
	return s.D.Len() - s.D.Advanced()
}
func (s MemSource) take() fp16.Float16 { return s.A.At(s.D.Next()) }

// --------------------------------------------------------------- MemOp

// MemOpKind selects the elementwise operation of a MemOp.
type MemOpKind int

// MemOp kinds.
const (
	OpMul    MemOpKind = iota // dst = a * b
	OpAdd                     // dst = a + b
	OpAxpy                    // dst = dst + s*a   (FMAC)
	OpCopy                    // dst = a
	OpFMA                     // dst = s*a + b     (FMAC, three operands)
	OpXPAY                    // dst = a + s*dst   (FMAC)
	OpMulAcc                  // dst = dst + a*b, rounded as separate multiply and add
)

// MemOp is a memory-to-memory vector instruction (one of the SIMD tensor
// instructions of the ISA). Cost: one lane per element for fp16 ops.
type MemOp struct {
	Kind    MemOpKind
	Arena   *tensor.Arena
	Dst     tensor.Descriptor
	A, B    tensor.Descriptor
	S       fp16.Float16 // scalar for OpAxpy
	started bool
}

// Reset rewinds the instruction for reuse.
func (m *MemOp) Reset() {
	m.Dst.Reset()
	m.A.Reset()
	m.B.Reset()
	m.started = false
}

// Done implements Instr.
func (m *MemOp) Done() bool { return m.started && m.Dst.Done() }

// Step implements Instr.
func (m *MemOp) Step(c *Core, lanes int) int {
	m.started = true
	used := 0
	for used < lanes && !m.Dst.Done() {
		di := m.Dst.Next()
		switch m.Kind {
		case OpMul:
			m.Arena.Set(di, fp16.Mul(m.Arena.At(m.A.Next()), m.Arena.At(m.B.Next())))
		case OpAdd:
			m.Arena.Set(di, fp16.Add(m.Arena.At(m.A.Next()), m.Arena.At(m.B.Next())))
		case OpAxpy:
			m.Arena.Set(di, fp16.FMA(m.S, m.Arena.At(m.A.Next()), m.Arena.At(di)))
		case OpCopy:
			m.Arena.Set(di, m.Arena.At(m.A.Next()))
		case OpFMA:
			m.Arena.Set(di, fp16.FMA(m.S, m.Arena.At(m.A.Next()), m.Arena.At(m.B.Next())))
		case OpXPAY:
			m.Arena.Set(di, fp16.FMA(m.S, m.Arena.At(di), m.Arena.At(m.A.Next())))
		case OpMulAcc:
			// Two roundings (multiply, then accumulate), matching the
			// 2D block-halo kernel's functional reference
			// (kernels.SpMV2D), whose scatter is Mul followed by Add —
			// the bit-identity contract between the wafer program and
			// the host kernel depends on this order.
			m.Arena.Set(di, fp16.Add(m.Arena.At(di), fp16.Mul(m.Arena.At(m.A.Next()), m.Arena.At(m.B.Next()))))
		}
		used++
	}
	return used
}

// --------------------------------------------------------------- MulToFIFO

// MulToFIFO multiplies a streaming source by a memory coefficient vector
// and pushes products into a hardware FIFO — the body of the five SpMV
// multiplier threads. It stalls when the FIFO is full or the stream is
// dry. Total is the element count (Z).
type MulToFIFO struct {
	Src   ElemSource
	Coeff tensor.Descriptor
	FIFO  *tensor.FIFO
	Arena *tensor.Arena
	Total int
	done  int
}

// Done implements Instr.
func (m *MulToFIFO) Done() bool { return m.done >= m.Total }

// Step implements Instr.
func (m *MulToFIFO) Step(c *Core, lanes int) int {
	used := 0
	for used < lanes && m.done < m.Total && m.Src.avail() > 0 && !m.FIFO.Full() {
		v := m.Src.take()
		p := fp16.Mul(m.Arena.At(m.Coeff.Next()), v)
		if !m.FIFO.Push(m.Arena, p) {
			panic("wse: FIFO push failed after Full check")
		}
		m.done++
		used++
	}
	return used
}

// --------------------------------------------------------------- StreamAdd

// StreamAdd accumulates a streaming source into a memory accumulator:
// acc[] = acc[] + rx[], the main-diagonal thread of the SpMV (thread 5 in
// the listing — no multiply, because the diagonal is all ones).
type StreamAdd struct {
	Src   ElemSource
	Acc   tensor.Descriptor
	Arena *tensor.Arena
	Total int
	done  int
}

// Done implements Instr.
func (s *StreamAdd) Done() bool { return s.done >= s.Total }

// Step implements Instr.
func (s *StreamAdd) Step(c *Core, lanes int) int {
	used := 0
	for used < lanes && s.done < s.Total && s.Src.avail() > 0 {
		p := s.Acc.Next()
		s.Arena.Set(p, fp16.Add(s.Arena.At(p), s.Src.take()))
		s.done++
		used++
	}
	return used
}

// --------------------------------------------------------------- StreamStore

// StreamStore copies a streaming source into memory verbatim: dst[] =
// rx[], with no arithmetic and therefore no rounding — the receive half
// of a halo transfer whose values must land bit-exactly (the
// decomposition-invariance contract of the halo-resident SpMV depends
// on a stream hop preserving bits the way a host-side edge-I/O copy
// does). Costs one lane per element, like the other elementwise moves.
type StreamStore struct {
	Src   ElemSource
	Dst   tensor.Descriptor
	Arena *tensor.Arena
	Total int
	done  int
}

// Done implements Instr.
func (s *StreamStore) Done() bool { return s.done >= s.Total }

// Step implements Instr.
func (s *StreamStore) Step(c *Core, lanes int) int {
	used := 0
	for used < lanes && s.done < s.Total && s.Src.avail() > 0 {
		s.Arena.Set(s.Dst.Next(), s.Src.take())
		s.done++
		used++
	}
	return used
}

// --------------------------------------------------------------- FIFOAdd

// FIFOAdd drains whatever a FIFO currently holds into an accumulator,
// finishing when the FIFO is empty; its destination descriptor tracks
// progress across invocations, so repeated activations of the summation
// task accumulate exactly Total elements. This is one of sumtask's five
// adds.
type FIFOAdd struct {
	FIFO  *tensor.FIFO
	Acc   tensor.Descriptor
	Arena *tensor.Arena
	Total int
	added int
}

// Done implements Instr: done when the FIFO has nothing more right now.
// (The task re-activates on the next push.)
func (f *FIFOAdd) Done() bool { return f.FIFO.Len() == 0 || f.added >= f.Total }

// Complete reports whether all Total elements have been accumulated.
func (f *FIFOAdd) Complete() bool { return f.added >= f.Total }

// Step implements Instr.
func (f *FIFOAdd) Step(c *Core, lanes int) int {
	used := 0
	for used < lanes && f.added < f.Total && f.FIFO.Len() > 0 {
		v, _ := f.FIFO.Pop(f.Arena)
		p := f.Acc.Next()
		f.Arena.Set(p, fp16.Add(f.Arena.At(p), v))
		f.added++
		used++
	}
	return used
}

// --------------------------------------------------------------- SendMem

// SendMem streams a memory vector out on a fabric color, two fp16
// elements per 32-bit word, one word per cycle across the ramp — the
// c_tx[] = v1[] send thread. It consumes no datapath lanes.
type SendMem struct {
	Color fabric.Color
	Src   tensor.Descriptor
	Arena *tensor.Arena
	Total int // elements; if odd, the final word is zero-padded

	sent     int
	pending  bool
	pendingN int
	word     fabric.Word
}

// Done implements Instr.
func (s *SendMem) Done() bool { return s.sent >= s.Total && !s.pending }

// Step implements Instr.
func (s *SendMem) Step(c *Core, lanes int) int {
	if !s.pending {
		if s.sent >= s.Total {
			return 0
		}
		lo := s.Arena.At(s.Src.Next())
		hi := fp16.Zero
		s.pendingN = 1
		if s.sent+1 < s.Total {
			hi = s.Arena.At(s.Src.Next())
			s.pendingN = 2
		}
		s.word = fabric.PackF16(s.Color, lo, hi)
		s.pending = true
	}
	if c.Send(s.word) {
		s.sent += s.pendingN
		s.pending = false
	}
	return 0
}

// --------------------------------------------------------------- DotMixed

// DotMixed computes the mixed-precision inner product of two memory
// vectors with the hardware inner-product instruction: exact fp16
// products, float32 accumulation, two FMACs per cycle — so each element
// costs two lanes.
type DotMixed struct {
	A, B  tensor.Descriptor
	Arena *tensor.Arena
	Out   *float32
	acc   float32
	began bool
}

// Reset rewinds the instruction for reuse.
func (d *DotMixed) Reset() {
	d.A.Reset()
	d.B.Reset()
	d.acc = 0
	d.began = false
}

// Done implements Instr.
func (d *DotMixed) Done() bool { return d.began && d.A.Done() }

// Step implements Instr.
func (d *DotMixed) Step(c *Core, lanes int) int {
	d.began = true
	used := 0
	for used+2 <= lanes && !d.A.Done() {
		d.acc = fp16.MixedFMAC(d.acc, d.Arena.At(d.A.Next()), d.Arena.At(d.B.Next()))
		used += 2
	}
	if d.A.Done() && d.Out != nil {
		*d.Out = d.acc
	}
	return used
}

// --------------------------------------------------------------- ScalarSend

// ScalarSend emits one float32 word on a color (used by the AllReduce
// reduction paths).
type ScalarSend struct {
	Color fabric.Color
	Value func() float32 // evaluated at send time
	sent  bool
}

// Done implements Instr.
func (s *ScalarSend) Done() bool { return s.sent }

// Step implements Instr.
func (s *ScalarSend) Step(c *Core, lanes int) int {
	if s.sent {
		return 0
	}
	if c.Send(fabric.WordF32(s.Color, s.Value())) {
		s.sent = true
	}
	return 0
}

// --------------------------------------------------------------- helpers

// Float32FromBits mirrors math.Float32frombits for kernel code that
// manipulates raw words.
func Float32FromBits(b uint32) float32 { return math.Float32frombits(b) }
