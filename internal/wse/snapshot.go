package wse

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/fabric"
	"repro/internal/fp16"
	"repro/internal/tensor"
)

// Machine snapshots: a Snapshot captures the complete architectural
// state of a quiescent machine — everything Fingerprint hashes (fabric
// counters, queue contents, arbitration rotations, task scheduler
// flags and program counters, stream buffers, send gates, datapath
// counters) plus the tile arena contents, which Fingerprint leaves to
// the program but a resumed solve plainly needs. Restoring a Snapshot
// onto a freshly constructed machine running the same program makes it
// evolve bit-identically to the captured one — same Fingerprint every
// cycle — for either stepping engine and any worker count.
//
// What a Snapshot does NOT capture is the program itself: tasks,
// routes, subscriptions and instruction objects are host closures and
// must be rebuilt by re-running the same program construction before
// Restore. Restore validates the shape (task counts, arena sizes,
// stream-buffer capacities) and rejects mismatches.

// SnapshotVersion is the current binary format version. Decoders accept
// only this version; the magic and version lead the encoding so future
// formats can evolve behind them.
const SnapshotVersion = 1

// snapshotMagic leads every encoded snapshot ("WSESNAP" + version byte).
var snapshotMagic = [8]byte{'W', 'S', 'E', 'S', 'N', 'A', 'P', SnapshotVersion}

// TaskSnap is one task's scheduler state.
type TaskSnap struct {
	Flags byte // bit 0 activated, bit 1 blocked, bit 2 running
	PC    int32
}

// CoreSnap is one core's architectural state. Streams holds each
// subscribed stream buffer's queued elements, in subscription order —
// the same order Fingerprint walks.
type CoreSnap struct {
	Arena   []uint16 // allocated arena contents, fp16 bits
	Tasks   []TaskSnap
	Sent    bool // sentThisCycle
	Busy    int64
	Lanes   int64
	Streams [][]uint16 // fp16 bits
}

// Snapshot is a restorable capture of a Machine. Fields are exported
// for white-box tests; use MarshalBinary/UnmarshalSnapshot for the
// stable on-disk form.
type Snapshot struct {
	FabricW, FabricH int
	Steps            int64
	Fab              *fabric.State
	Cores            []CoreSnap
}

// Snapshot captures the machine's state. The machine must be idle
// (AllIdle: no runnable core, fabric router queues empty): a core with
// an in-flight task or live threads holds instruction progress in host
// objects that cannot be serialized, and a checkpointing solver always
// reaches idle between phases anyway.
func (m *Machine) Snapshot() (*Snapshot, error) {
	if !m.AllIdle() {
		return nil, fmt.Errorf("wse: cannot snapshot a busy machine (cores runnable or fabric words in flight)")
	}
	s := &Snapshot{
		FabricW: m.Cfg.FabricW, FabricH: m.Cfg.FabricH,
		Steps: m.steps,
		Fab:   m.Fab.CaptureState(),
		Cores: make([]CoreSnap, len(m.Tiles)),
	}
	for i, tl := range m.Tiles {
		c := tl.Core
		if c.current != nil || c.nthreads > 0 {
			return nil, fmt.Errorf("wse: tile %v has in-flight work; snapshot requires quiescence", tl.Coord)
		}
		cs := &s.Cores[i]
		words := tl.Arena.Used() / tensor.BytesPerWord
		cs.Arena = make([]uint16, words)
		for k, v := range tl.Arena.Slice(0, words) {
			cs.Arena[k] = v.Bits()
		}
		cs.Tasks = make([]TaskSnap, len(c.tasks))
		for k, t := range c.tasks {
			var fl byte
			if t.activated {
				fl |= 1
			}
			if t.blocked {
				fl |= 2
			}
			if t.running {
				fl |= 4
			}
			cs.Tasks[k] = TaskSnap{Flags: fl, PC: int32(t.pc)}
		}
		cs.Sent = c.sentThisCycle
		cs.Busy, cs.Lanes = c.busyCycles, c.lanesUsed
		for _, col := range c.subColors {
			for _, b := range c.subs[col] {
				el := make([]uint16, b.size)
				for k := 0; k < b.size; k++ {
					el[k] = b.buf[(b.head+k)%len(b.buf)].Bits()
				}
				cs.Streams = append(cs.Streams, el)
			}
		}
	}
	return s, nil
}

// Restore loads s into the machine, which must have the same fabric
// dimensions and the same program (tasks, routes, subscriptions and
// arena layout built identically). The engine/worker count may differ
// from the captured machine's. After Restore the machine's Fingerprint
// equals the captured machine's, and it evolves bit-identically.
func (m *Machine) Restore(s *Snapshot) error {
	if s.FabricW != m.Cfg.FabricW || s.FabricH != m.Cfg.FabricH {
		return fmt.Errorf("wse: snapshot is %dx%d, machine is %dx%d",
			s.FabricW, s.FabricH, m.Cfg.FabricW, m.Cfg.FabricH)
	}
	if len(s.Cores) != len(m.Tiles) {
		return fmt.Errorf("wse: snapshot has %d cores, machine has %d", len(s.Cores), len(m.Tiles))
	}
	// Validate shape before mutating anything.
	for i, tl := range m.Tiles {
		c, cs := tl.Core, &s.Cores[i]
		if c.current != nil || c.nthreads > 0 {
			return fmt.Errorf("wse: tile %v has in-flight work; restore requires a quiescent machine", tl.Coord)
		}
		if words := tl.Arena.Used() / tensor.BytesPerWord; words != len(cs.Arena) {
			return fmt.Errorf("wse: tile %v arena has %d words, snapshot has %d (program mismatch)",
				tl.Coord, words, len(cs.Arena))
		}
		if len(c.tasks) != len(cs.Tasks) {
			return fmt.Errorf("wse: tile %v has %d tasks, snapshot has %d (program mismatch)",
				tl.Coord, len(c.tasks), len(cs.Tasks))
		}
		nb := 0
		for _, col := range c.subColors {
			for _, b := range c.subs[col] {
				if nb >= len(cs.Streams) {
					return fmt.Errorf("wse: tile %v has more stream buffers than the snapshot (program mismatch)", tl.Coord)
				}
				if len(cs.Streams[nb]) > len(b.buf) {
					return fmt.Errorf("wse: tile %v stream buffer %d: snapshot holds %d elements, capacity %d",
						tl.Coord, nb, len(cs.Streams[nb]), len(b.buf))
				}
				nb++
			}
		}
		if nb != len(cs.Streams) {
			return fmt.Errorf("wse: tile %v has %d stream buffers, snapshot has %d (program mismatch)",
				tl.Coord, nb, len(cs.Streams))
		}
	}
	if err := m.Fab.RestoreState(s.Fab); err != nil {
		return err
	}
	m.steps = s.Steps
	for i, tl := range m.Tiles {
		c, cs := tl.Core, &s.Cores[i]
		mem := tl.Arena.Slice(0, len(cs.Arena))
		for k, bits := range cs.Arena {
			mem[k] = fp16.FromBits(bits)
		}
		for k, t := range c.tasks {
			ts := cs.Tasks[k]
			t.activated = ts.Flags&1 != 0
			t.blocked = ts.Flags&2 != 0
			t.running = ts.Flags&4 != 0
			t.pc = int(ts.PC)
		}
		c.sentThisCycle = cs.Sent
		c.busyCycles, c.lanesUsed = cs.Busy, cs.Lanes
		// The restored fabric may hold rx words the captured machine had
		// not delivered yet; re-arm conservatively (rxArmed is a
		// host-side cache, not architectural state).
		c.rxArmed = true
		nb := 0
		for _, col := range c.subColors {
			for _, b := range c.subs[col] {
				el := cs.Streams[nb]
				nb++
				b.head, b.size = 0, len(el)
				for k, bits := range el {
					b.buf[k] = fp16.FromBits(bits)
				}
			}
		}
	}
	// Rebuild the runnable worklists from the restored scheduler state:
	// program construction may have pre-queued cores (Subscribe wakes),
	// and the captured machine — being AllIdle — had empty lists.
	for sh := range m.runnable {
		for _, c := range m.runnable[sh] {
			c.queued = false
		}
		m.runnable[sh] = m.runnable[sh][:0]
	}
	for _, tl := range m.Tiles {
		if tl.Core.runnable() {
			tl.Core.wake()
		}
	}
	return nil
}

// ------------------------------------------------------------ encoding

// MarshalBinary encodes the snapshot in the versioned little-endian
// binary format: magic+version header, fabric section, core section,
// and a trailing FNV-1a checksum of everything before it.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	e := &enc{}
	e.bytes(snapshotMagic[:])
	e.u32(uint32(s.FabricW))
	e.u32(uint32(s.FabricH))
	e.i64(s.Steps)

	e.i64(s.Fab.Cycle)
	e.i64(s.Fab.Moves)
	e.u32(uint32(len(s.Fab.RR)))
	for _, v := range s.Fab.RR {
		e.i64(v)
	}
	e.u32(uint32(len(s.Fab.Queues)))
	for _, q := range s.Fab.Queues {
		e.u32(uint32(q.Tile))
		e.byte(q.In)
		e.byte(q.Color)
		e.u32(uint32(len(q.Words)))
		for _, w := range q.Words {
			e.u32(w)
		}
	}
	e.u32(uint32(len(s.Fab.Hot)))
	for _, t := range s.Fab.Hot {
		e.u32(uint32(t))
	}

	e.u32(uint32(len(s.Cores)))
	for i := range s.Cores {
		c := &s.Cores[i]
		e.u32(uint32(len(c.Arena)))
		for _, w := range c.Arena {
			e.u16(w)
		}
		e.u32(uint32(len(c.Tasks)))
		for _, t := range c.Tasks {
			e.byte(t.Flags)
			e.u32(uint32(t.PC))
		}
		e.bool(c.Sent)
		e.i64(c.Busy)
		e.i64(c.Lanes)
		e.u32(uint32(len(c.Streams)))
		for _, el := range c.Streams {
			e.u32(uint32(len(el)))
			for _, w := range el {
				e.u16(w)
			}
		}
	}
	h := fnv.New64a()
	h.Write(e.b)
	e.u64(h.Sum64())
	return e.b, nil
}

// UnmarshalSnapshot decodes data produced by MarshalBinary, verifying
// magic, version and checksum. It never panics on corrupt input (the
// FuzzSnapshotRoundTrip target pins this).
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapshotMagic)+8 {
		return nil, fmt.Errorf("wse: snapshot truncated (%d bytes)", len(data))
	}
	for i := 0; i < 7; i++ {
		if data[i] != snapshotMagic[i] {
			return nil, fmt.Errorf("wse: not a machine snapshot (bad magic)")
		}
	}
	if v := data[7]; v != SnapshotVersion {
		return nil, fmt.Errorf("wse: unsupported snapshot version %d (have %d)", v, SnapshotVersion)
	}
	body, sumBytes := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != binary.LittleEndian.Uint64(sumBytes) {
		return nil, fmt.Errorf("wse: snapshot checksum mismatch")
	}
	d := &dec{b: body[len(snapshotMagic):]}
	s := &Snapshot{Fab: &fabric.State{}}
	s.FabricW = int(d.u32())
	s.FabricH = int(d.u32())
	s.Steps = d.i64()
	s.Fab.W, s.Fab.H = s.FabricW, s.FabricH
	s.Fab.Cycle = d.i64()
	s.Fab.Moves = d.i64()
	s.Fab.RR = make([]int64, d.count(8))
	for i := range s.Fab.RR {
		s.Fab.RR[i] = d.i64()
	}
	s.Fab.Queues = make([]fabric.QueueSnap, d.count(10))
	for i := range s.Fab.Queues {
		q := &s.Fab.Queues[i]
		q.Tile = int32(d.u32())
		q.In = d.byte()
		q.Color = d.byte()
		q.Words = make([]uint32, d.count(4))
		for k := range q.Words {
			q.Words[k] = d.u32()
		}
	}
	s.Fab.Hot = make([]int32, d.count(4))
	for i := range s.Fab.Hot {
		s.Fab.Hot[i] = int32(d.u32())
	}
	s.Cores = make([]CoreSnap, d.count(22))
	for i := range s.Cores {
		c := &s.Cores[i]
		c.Arena = make([]uint16, d.count(2))
		for k := range c.Arena {
			c.Arena[k] = d.u16()
		}
		c.Tasks = make([]TaskSnap, d.count(5))
		for k := range c.Tasks {
			c.Tasks[k] = TaskSnap{Flags: d.byte(), PC: int32(d.u32())}
		}
		c.Sent = d.bool()
		c.Busy = d.i64()
		c.Lanes = d.i64()
		c.Streams = make([][]uint16, d.count(4))
		for k := range c.Streams {
			el := make([]uint16, d.count(2))
			for j := range el {
				el[j] = d.u16()
			}
			c.Streams[k] = el
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != d.off {
		return nil, fmt.Errorf("wse: snapshot has %d trailing bytes", len(d.b)-d.off)
	}
	return s, nil
}

// enc is a little-endian append-only encoder.
type enc struct{ b []byte }

func (e *enc) bytes(p []byte) { e.b = append(e.b, p...) }
func (e *enc) byte(v byte)    { e.b = append(e.b, v) }
func (e *enc) bool(v bool) {
	if v {
		e.byte(1)
	} else {
		e.byte(0)
	}
}
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }

// dec is the matching bounds-checked decoder; the first short read
// latches err and zeroes every subsequent read.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = fmt.Errorf("wse: snapshot truncated at byte %d", d.off)
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

func (d *dec) byte() byte {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}
func (d *dec) bool() bool { return d.byte() != 0 }
func (d *dec) u16() uint16 {
	p := d.take(2)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(p)
}
func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}
func (d *dec) i64() int64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(p))
}

// count reads a u32 element count and bounds it by the bytes remaining
// (each element needs at least minBytes), so corrupt input cannot force
// huge allocations.
func (d *dec) count(minBytes int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if n < 0 || n*minBytes > len(d.b)-d.off {
		d.err = fmt.Errorf("wse: snapshot count %d at byte %d exceeds remaining input", n, d.off)
		return 0
	}
	return n
}
