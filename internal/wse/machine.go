// Package wse models the CS-1 wafer-scale engine at the level the paper
// programs it: a fabric of tiles, each holding one core with 48 KB of
// private SRAM, a router, and a hardware task scheduler. The core model
// implements the paper's execution primitives:
//
//   - tasks that react to events, with block/unblock/activate scheduling
//     state manipulated by other tasks and by thread completions;
//   - up to nine background threads, each running a single vector
//     instruction asynchronously, sharing the SIMD-4 fp16 datapath;
//   - hardware-managed in-memory FIFOs that activate tasks on push;
//   - tensor descriptors (package tensor) tracking instruction progress;
//   - fabric streams as instruction operands (packages fabric).
//
// Timing model: each core issues datapath work every cycle — up to
// SIMDWidth fp16 lanes, shared round-robin among the running task's
// current instruction and all runnable threads; mixed-precision FMAC ops
// cost two lanes per element ("the throughput is two FMACs per core per
// cycle"); one word per cycle crosses the ramp in each direction.
package wse

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/tensor"
)

// Config describes a simulated wafer.
type Config struct {
	// FabricW, FabricH size the tile array. The CS-1 in the paper exposes
	// a 602×595 compute fabric.
	FabricW, FabricH int
	// ClockHz is the core clock. The paper does not state it; 1.1 GHz
	// makes the measured 0.86 PFLOPS "about one third" of peak
	// (DESIGN.md §6). All wall-clock conversions use this value.
	ClockHz float64
	// MemPerTile is the per-core SRAM budget in bytes (48 KB on CS-1).
	MemPerTile int
	// SIMDWidth is the number of fp16 datapath lanes (4 on CS-1).
	SIMDWidth int
	// QueueDepth / RxDepth size the fabric queues.
	QueueDepth, RxDepth int
	// PowerKW is the system power (20 kW), used for perf/W reporting.
	PowerKW float64
	// Workers selects the simulation engine: <= 1 steps routers and
	// cores sequentially; > 1 shards the tile grid across that many
	// goroutines (fabric.Sharded). The simulated machine is bit-identical
	// either way — see the fabric package's determinism contract — so
	// this is purely a host-side throughput knob.
	Workers int
	// Engine selects the core-stepping engine (see Engine). EngineAuto
	// resolves from Workers and the -wse.engine flag override. The
	// batched and fast-forward engines imply a sequential fabric
	// stepper; Workers is ignored for them.
	Engine Engine
}

// CS1 returns the configuration of the machine in the paper, with the
// fabric dimensions overridden to w×h. The full 602×595 wafer is
// steppable under cycle simulation since core scheduling went
// event-driven (idle tiles are free); pass CS1(602, 595) for
// paper-scale runs, or smaller fabrics for quick experiments.
func CS1(w, h int) Config {
	return Config{
		FabricW: w, FabricH: h,
		ClockHz:    1.1e9,
		MemPerTile: 48 * 1024,
		SIMDWidth:  4,
		PowerKW:    20,
	}
}

func (c Config) withDefaults() Config {
	if c.ClockHz == 0 {
		c.ClockHz = 1.1e9
	}
	if c.MemPerTile == 0 {
		c.MemPerTile = 48 * 1024
	}
	if c.SIMDWidth == 0 {
		c.SIMDWidth = 4
	}
	return c
}

// Cores returns the number of cores on the fabric.
func (c Config) Cores() int { return c.FabricW * c.FabricH }

// PeakFlops returns the machine's peak fp16 rate: SIMDWidth fused
// multiply-accumulates (2 flops each) per core per cycle.
func (c Config) PeakFlops() float64 {
	return float64(c.Cores()) * float64(2*c.SIMDWidth) * c.ClockHz
}

// Tile is one repeated element of the wafer: a core plus its memory. The
// router lives in the shared Fabric.
type Tile struct {
	Coord fabric.Coord
	Arena *tensor.Arena
	Core  *Core
}

// Machine is a simulated wafer.
//
// Core scheduling is event-driven: each fabric engine shard owns a
// runnable-core worklist, and Step walks only those lists — an idle
// tile costs nothing per cycle. Cores enter a list through the event
// edges (Activate, Unblock, LaunchThread, Subscribe, FIFO push via its
// task activation, and rx-delivery wakes from the fabric) and leave it
// the first stepped cycle they have no runnable work. The simulated
// machine state is identical to stepping every core every cycle,
// because stepping an idle core is a no-op; the machine-level
// equivalence fuzz target (FuzzMachineEquivalence) pins this against
// the sequential engine cycle for cycle.
type Machine struct {
	Cfg   Config
	Fab   *fabric.Fabric
	Tiles []*Tile

	// runnable[s] is shard s's worklist. Only the shard that owns a
	// core's tile appends to or compacts its list (host code counts as
	// the owner while the machine is not mid-Step).
	runnable [][]*Core
	// loShard maps a shard's first tile index to its shard index, so the
	// RunSharded closure can recover which worklist to walk.
	loShard map[int]int

	// coreStep is the per-shard core stepping closure, built once so
	// Step stays allocation-free on the hot path.
	coreStep func(lo, hi int)

	// steps counts Machine.Step invocations — the denominator for core
	// utilization. It can lag Fab.Cycle() when host kernels advance the
	// fabric directly (kernels.AllReduce), which must not dilute
	// utilization the cores never had a cycle to use.
	steps int64

	// engine is the resolved stepping engine (see resolveEngine).
	engine Engine
	// batch is the per-shard class-grouping scratch of the batched
	// engine, allocated once; see batch.go.
	batch []batchState
}

// New builds a machine.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	engine := resolveEngine(cfg)
	stepper := fabric.Sequential()
	if engine == EngineSharded {
		stepper = fabric.Sharded(cfg.Workers)
	}
	m := &Machine{
		Cfg:    cfg,
		engine: engine,
		Fab: fabric.New(fabric.Config{
			W: cfg.FabricW, H: cfg.FabricH,
			QueueDepth: cfg.QueueDepth, RxDepth: cfg.RxDepth,
			Stepper: stepper,
		}),
	}
	ranges := m.Fab.ShardRanges()
	m.runnable = make([][]*Core, len(ranges))
	m.loShard = make(map[int]int, len(ranges))
	for s, r := range ranges {
		m.loShard[r[0]] = s
	}
	m.Tiles = make([]*Tile, cfg.Cores())
	for i := range m.Tiles {
		at := m.Fab.CoordOf(i)
		t := &Tile{
			Coord: at,
			Arena: tensor.NewArena(cfg.MemPerTile),
		}
		t.Core = newCore(m, t)
		t.Core.shard = m.Fab.ShardOf(i)
		m.Tiles[i] = t
	}
	if m.engine == EngineBatched || m.engine == EngineFastForward {
		m.batch = make([]batchState, len(ranges))
		m.coreStep = func(lo, hi int) { m.stepShardBatched(m.loShard[lo]) }
	} else {
		m.coreStep = func(lo, hi int) { m.stepShard(m.loShard[lo]) }
	}
	// Words arriving at a tile's ramp wake its core; the callback runs
	// on the owning shard (see fabric.Fabric.OnRxDelivery), so the
	// worklist append is shard-local. Only deliveries on colors the
	// core subscribes to wake it: its step would not touch any other
	// receive queue, and host-side kernels that drive the fabric
	// directly (kernels.AllReduce) deliver to the same ramps on their
	// own colors — those wakes must not pollute the worklists of a
	// machine whose cores are all idle, or AllIdle would misreport an
	// idle machine and fast-forward eligibility would be lost.
	m.Fab.OnRxDelivery(func(tile int, col fabric.Color) {
		if c := m.Tiles[tile].Core; c.subMask&(1<<col) != 0 {
			c.rxArmed = true
			c.wake()
		}
	})
	return m
}

// stepShard steps every runnable core of shard s, compacting the
// worklist in place: cores with no further runnable work drop off and
// will be re-listed by the next event that concerns them. Waking a core
// during the walk is safe only for the core being stepped (a self-wake
// is a no-op while it is queued) — the contract Task.OnComplete
// documents.
func (m *Machine) stepShard(s int) {
	list := m.runnable[s]
	w := 0
	for i := 0; i < len(list); i++ {
		c := list[i]
		c.step()
		// runnable's fast half inlines; a fully-stable list takes no
		// writes at all.
		if c.runnable() {
			if w != i {
				list[w] = c
			}
			w++
		} else {
			c.queued = false
		}
	}
	m.runnable[s] = list[:w]
}

// anyRunnable reports whether any core is on a worklist — O(shards),
// the busy probe RunUntil and AllIdle lean on.
func (m *Machine) anyRunnable() bool {
	for _, l := range m.runnable {
		if len(l) > 0 {
			return true
		}
	}
	return false
}

// TileAt returns the tile at coordinate c.
func (m *Machine) TileAt(c fabric.Coord) *Tile { return m.Tiles[m.Fab.Index(c)] }

// Close releases the simulation worker pool (see fabric.Fabric.Close).
// Idempotent; the machine stays usable, stepping inline. Machines that
// are never Closed do not leak — the pool is reclaimed with the fabric
// — but long-lived hosts that churn through machines should Close
// promptly rather than waiting on the garbage collector.
func (m *Machine) Close() { m.Fab.Close() }

// Step advances the whole machine one cycle: runnable cores issue work,
// then the fabric moves words one hop. With a sharded engine the cores
// step on the fabric's own tile partition and its persistent worker
// pool, so every core's fabric access (Send/Recv on its own tile) stays
// within the shard that owns it; core state is tile-local, so the
// result is identical to sequential stepping. A fully quiescent machine
// skips core dispatch entirely.
func (m *Machine) Step() {
	m.steps++
	if m.anyRunnable() {
		m.Fab.RunSharded(m.coreStep)
	}
	m.Fab.Step()
}

// Cycle returns the current cycle count.
func (m *Machine) Cycle() int64 { return m.Fab.Cycle() }

// Seconds converts a cycle count to wall-clock seconds at the configured
// clock rate.
func (m *Machine) Seconds(cycles int64) float64 { return float64(cycles) / m.Cfg.ClockHz }

// RunUntil steps until done() is true, returning the cycles elapsed. It
// fails if maxCycles elapse first or if the machine wedges (no runnable
// core and no fabric movement for an extended window). The busy probe
// is the O(shards) worklist check, not a scan of every core.
func (m *Machine) RunUntil(done func() bool, maxCycles int64) (int64, error) {
	start := m.Cycle()
	idle := 0
	idleLimit := m.Cfg.FabricW + m.Cfg.FabricH + 64
	for !done() {
		if m.Cycle()-start >= maxCycles {
			return m.Cycle() - start, fmt.Errorf("wse: exceeded %d cycles", maxCycles)
		}
		movesBefore := m.Fab.Moves()
		busy := m.anyRunnable()
		m.Step()
		if m.Fab.Moves() == movesBefore && !busy {
			idle++
			if idle > idleLimit {
				return m.Cycle() - start, fmt.Errorf("wse: machine wedged (no progress for %d cycles)", idle)
			}
		} else {
			idle = 0
		}
	}
	return m.Cycle() - start, nil
}

// Fingerprint hashes the complete architectural state of the machine:
// the fabric fingerprint folded with every core's scheduler state —
// task activation/block/run flags and program counters, thread-slot
// occupancy, stream-buffer contents, send-gate state, and the datapath
// counters. Two machines that evolved identically have equal
// fingerprints every cycle regardless of stepping engine or worklist
// order; FuzzMachineEquivalence and the engine-equivalence tests pin
// the contract. FNV-1a, matching fabric.Fingerprint.
func (m *Machine) Fingerprint() uint64 {
	const prime64 = 1099511628211
	h := m.Fab.Fingerprint()
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for i, tl := range m.Tiles {
		c := tl.Core
		if c.current == nil && c.nthreads == 0 && len(c.tasks) == 0 &&
			len(c.subColors) == 0 && c.busyCycles == 0 {
			continue // never-programmed core: all-default state
		}
		mix(uint64(i))
		for _, t := range c.tasks {
			b := uint64(0)
			if t.activated {
				b |= 1
			}
			if t.blocked {
				b |= 2
			}
			if t.running {
				b |= 4
			}
			mix(b | uint64(t.pc)<<4)
		}
		thmask := uint64(0)
		for s, th := range &c.threads {
			if th != nil {
				thmask |= 1 << s
			}
		}
		if c.sentThisCycle {
			thmask |= 1 << MaxThreads
		}
		mix(thmask)
		for _, col := range c.subColors {
			for _, b := range c.subs[col] {
				mix(uint64(b.size))
				for k := 0; k < b.size; k++ {
					mix(uint64(b.buf[(b.head+k)%len(b.buf)].Bits()))
				}
			}
		}
		mix(uint64(c.busyCycles))
		mix(uint64(c.lanesUsed))
	}
	return h
}

// AllIdle reports whether no core has runnable work and the fabric is
// quiescent — O(shards) plus the fabric's router-queue scan. A core
// holding deliverable words for a subscribed color counts as busy (it
// still has deliveries to perform), which the polling engine's
// per-core busy scan ignored; programs that complete drain those
// within a few cycles, so the steady-state answer is unchanged.
func (m *Machine) AllIdle() bool {
	return !m.anyRunnable() && m.Fab.Quiescent()
}
