// Package wse models the CS-1 wafer-scale engine at the level the paper
// programs it: a fabric of tiles, each holding one core with 48 KB of
// private SRAM, a router, and a hardware task scheduler. The core model
// implements the paper's execution primitives:
//
//   - tasks that react to events, with block/unblock/activate scheduling
//     state manipulated by other tasks and by thread completions;
//   - up to nine background threads, each running a single vector
//     instruction asynchronously, sharing the SIMD-4 fp16 datapath;
//   - hardware-managed in-memory FIFOs that activate tasks on push;
//   - tensor descriptors (package tensor) tracking instruction progress;
//   - fabric streams as instruction operands (packages fabric).
//
// Timing model: each core issues datapath work every cycle — up to
// SIMDWidth fp16 lanes, shared round-robin among the running task's
// current instruction and all runnable threads; mixed-precision FMAC ops
// cost two lanes per element ("the throughput is two FMACs per core per
// cycle"); one word per cycle crosses the ramp in each direction.
package wse

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/tensor"
)

// Config describes a simulated wafer.
type Config struct {
	// FabricW, FabricH size the tile array. The CS-1 in the paper exposes
	// a 602×595 compute fabric.
	FabricW, FabricH int
	// ClockHz is the core clock. The paper does not state it; 1.1 GHz
	// makes the measured 0.86 PFLOPS "about one third" of peak
	// (DESIGN.md §6). All wall-clock conversions use this value.
	ClockHz float64
	// MemPerTile is the per-core SRAM budget in bytes (48 KB on CS-1).
	MemPerTile int
	// SIMDWidth is the number of fp16 datapath lanes (4 on CS-1).
	SIMDWidth int
	// QueueDepth / RxDepth size the fabric queues.
	QueueDepth, RxDepth int
	// PowerKW is the system power (20 kW), used for perf/W reporting.
	PowerKW float64
	// Workers selects the simulation engine: <= 1 steps routers and
	// cores sequentially; > 1 shards the tile grid across that many
	// goroutines (fabric.Sharded). The simulated machine is bit-identical
	// either way — see the fabric package's determinism contract — so
	// this is purely a host-side throughput knob.
	Workers int
}

// CS1 returns the configuration of the machine in the paper, with the
// fabric dimensions overridden to w×h (the full 602×595 wafer is too large
// to cycle-simulate; perfmodel extrapolates from smaller fabrics).
func CS1(w, h int) Config {
	return Config{
		FabricW: w, FabricH: h,
		ClockHz:    1.1e9,
		MemPerTile: 48 * 1024,
		SIMDWidth:  4,
		PowerKW:    20,
	}
}

func (c Config) withDefaults() Config {
	if c.ClockHz == 0 {
		c.ClockHz = 1.1e9
	}
	if c.MemPerTile == 0 {
		c.MemPerTile = 48 * 1024
	}
	if c.SIMDWidth == 0 {
		c.SIMDWidth = 4
	}
	return c
}

// Cores returns the number of cores on the fabric.
func (c Config) Cores() int { return c.FabricW * c.FabricH }

// PeakFlops returns the machine's peak fp16 rate: SIMDWidth fused
// multiply-accumulates (2 flops each) per core per cycle.
func (c Config) PeakFlops() float64 {
	return float64(c.Cores()) * float64(2*c.SIMDWidth) * c.ClockHz
}

// Tile is one repeated element of the wafer: a core plus its memory. The
// router lives in the shared Fabric.
type Tile struct {
	Coord fabric.Coord
	Arena *tensor.Arena
	Core  *Core
}

// Machine is a simulated wafer.
type Machine struct {
	Cfg   Config
	Fab   *fabric.Fabric
	Tiles []*Tile

	// coreStep is the per-shard core stepping closure, built once so
	// Step stays allocation-free on the hot path.
	coreStep func(lo, hi int)
}

// New builds a machine.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	stepper := fabric.Sequential()
	if cfg.Workers > 1 {
		stepper = fabric.Sharded(cfg.Workers)
	}
	m := &Machine{
		Cfg: cfg,
		Fab: fabric.New(fabric.Config{
			W: cfg.FabricW, H: cfg.FabricH,
			QueueDepth: cfg.QueueDepth, RxDepth: cfg.RxDepth,
			Stepper: stepper,
		}),
	}
	m.Tiles = make([]*Tile, cfg.Cores())
	for i := range m.Tiles {
		at := m.Fab.CoordOf(i)
		t := &Tile{
			Coord: at,
			Arena: tensor.NewArena(cfg.MemPerTile),
		}
		t.Core = newCore(m, t)
		m.Tiles[i] = t
	}
	m.coreStep = func(lo, hi int) {
		for _, t := range m.Tiles[lo:hi] {
			t.Core.step()
		}
	}
	return m
}

// TileAt returns the tile at coordinate c.
func (m *Machine) TileAt(c fabric.Coord) *Tile { return m.Tiles[m.Fab.Index(c)] }

// Close releases the simulation worker pool (see fabric.Fabric.Close).
// Idempotent; the machine stays usable, stepping inline. Machines that
// are never Closed do not leak — the pool is reclaimed with the fabric
// — but long-lived hosts that churn through machines should Close
// promptly rather than waiting on the garbage collector.
func (m *Machine) Close() { m.Fab.Close() }

// Step advances the whole machine one cycle: cores issue work, then the
// fabric moves words one hop. With a sharded engine the cores step on
// the fabric's own tile partition and its persistent worker pool, so
// every core's fabric access (Send/Recv on its own tile) stays within
// the shard that owns it; core state is tile-local, so the result is
// identical to sequential stepping.
func (m *Machine) Step() {
	m.Fab.RunSharded(m.coreStep)
	m.Fab.Step()
}

// Cycle returns the current cycle count.
func (m *Machine) Cycle() int64 { return m.Fab.Cycle() }

// Seconds converts a cycle count to wall-clock seconds at the configured
// clock rate.
func (m *Machine) Seconds(cycles int64) float64 { return float64(cycles) / m.Cfg.ClockHz }

// RunUntil steps until done() is true, returning the cycles elapsed. It
// fails if maxCycles elapse first or if the machine wedges (no core
// progress and no fabric movement for an extended window).
func (m *Machine) RunUntil(done func() bool, maxCycles int64) (int64, error) {
	start := m.Cycle()
	idle := 0
	idleLimit := m.Cfg.FabricW + m.Cfg.FabricH + 64
	for !done() {
		if m.Cycle()-start >= maxCycles {
			return m.Cycle() - start, fmt.Errorf("wse: exceeded %d cycles", maxCycles)
		}
		movesBefore := m.Fab.Moves()
		busy := false
		for _, t := range m.Tiles {
			if t.Core.busy() {
				busy = true
				break
			}
		}
		m.Step()
		if m.Fab.Moves() == movesBefore && !busy {
			idle++
			if idle > idleLimit {
				return m.Cycle() - start, fmt.Errorf("wse: machine wedged (no progress for %d cycles)", idle)
			}
		} else {
			idle = 0
		}
	}
	return m.Cycle() - start, nil
}

// AllIdle reports whether every core has no runnable work and the fabric
// is quiescent.
func (m *Machine) AllIdle() bool {
	for _, t := range m.Tiles {
		if t.Core.busy() {
			return false
		}
	}
	return m.Fab.Quiescent()
}
