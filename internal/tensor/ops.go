package tensor

import "repro/internal/fp16"

// Descriptor-driven vector operations. These are the functional semantics
// of the CS-1 vector instructions the SpMV listing launches: each processes
// elements in order, one rounding per element, and leaves the destination
// descriptor advanced — exactly the property the paper relies on when five
// FIFO-draining adds all alias the same output vector u.

// MulInto computes dst[i] = a[i] * b[i] elementwise over the descriptors,
// which must have equal lengths.
func MulInto(ar *Arena, dst, a, b Descriptor) {
	dst.Reset()
	a.Reset()
	b.Reset()
	for !dst.Done() {
		ar.Set(dst.Next(), fp16.Mul(ar.At(a.Next()), ar.At(b.Next())))
	}
}

// AddInto computes dst[i] = a[i] + b[i] elementwise.
func AddInto(ar *Arena, dst, a, b Descriptor) {
	dst.Reset()
	a.Reset()
	b.Reset()
	for !dst.Done() {
		ar.Set(dst.Next(), fp16.Add(ar.At(a.Next()), ar.At(b.Next())))
	}
}

// AccumulateInto computes dst[i] += src[i] elementwise.
func AccumulateInto(ar *Arena, dst, src Descriptor) {
	dst.Reset()
	src.Reset()
	for !dst.Done() {
		p := dst.Next()
		ar.Set(p, fp16.Add(ar.At(p), ar.At(src.Next())))
	}
}

// AxpyInto computes dst[i] = dst[i] + s*src[i] with one rounding per
// element (the SIMD-4 FMAC semantics).
func AxpyInto(ar *Arena, s fp16.Float16, dst, src Descriptor) {
	dst.Reset()
	src.Reset()
	for !dst.Done() {
		p := dst.Next()
		ar.Set(p, fp16.FMA(s, ar.At(src.Next()), ar.At(p)))
	}
}

// CopyInto copies src to dst elementwise.
func CopyInto(ar *Arena, dst, src Descriptor) {
	dst.Reset()
	src.Reset()
	for !dst.Done() {
		ar.Set(dst.Next(), ar.At(src.Next()))
	}
}

// DotMixedDesc computes the mixed-precision inner product of two
// descriptor operands: exact fp16 products, float32 accumulation.
func DotMixedDesc(ar *Arena, a, b Descriptor) float32 {
	a.Reset()
	b.Reset()
	var acc float32
	for !a.Done() {
		acc = fp16.MixedFMAC(acc, ar.At(a.Next()), ar.At(b.Next()))
	}
	return acc
}

// FIFO is the software model of a CS-1 hardware-managed in-memory FIFO: a
// circular buffer over an arena region with head/tail registers maintained
// by the hardware, able to activate a task whenever data is pushed. The
// SpMV kernel allocates five of these ("term[5][20]") to forward streaming
// elementwise products from multiplier threads to the summation task.
type FIFO struct {
	baseOff    int
	capWords   int
	head, tail int
	count      int
	OnPush     func() // task activation hook, set by the kernel
}

// NewFIFO creates a FIFO over words elements of the arena starting at base.
func NewFIFO(base, words int) *FIFO {
	return &FIFO{baseOff: base, capWords: words}
}

// Cap returns the FIFO capacity in elements.
func (f *FIFO) Cap() int { return f.capWords }

// Len returns the number of buffered elements.
func (f *FIFO) Len() int { return f.count }

// Full reports whether a push would block.
func (f *FIFO) Full() bool { return f.count == f.capWords }

// Push appends v, returning false if the FIFO is full (the pushing thread
// stalls). A successful push fires the OnPush activation.
func (f *FIFO) Push(ar *Arena, v fp16.Float16) bool {
	if f.Full() {
		return false
	}
	ar.Set(f.baseOff+f.tail, v)
	f.tail = (f.tail + 1) % f.capWords
	f.count++
	if f.OnPush != nil {
		f.OnPush()
	}
	return true
}

// Pop removes and returns the oldest element; ok is false when empty.
func (f *FIFO) Pop(ar *Arena) (v fp16.Float16, ok bool) {
	if f.count == 0 {
		return 0, false
	}
	v = ar.At(f.baseOff + f.head)
	f.head = (f.head + 1) % f.capWords
	f.count--
	return v, true
}
