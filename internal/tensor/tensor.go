// Package tensor models the CS-1 Data Structure Registers (DSRs): hardware
// descriptors that generate tensor access addresses so that vector
// instructions iterate over (possibly strided, possibly multi-dimensional)
// memory operands with no loop overhead.
//
// A Descriptor is the software analogue of the paper's
//
//	tensor xp_a = {.base=xp, .shape={1,Z}, .stride={0,1}};
//
// declarations: a base offset into a tile-local arena, a shape of up to four
// dimensions, and a stride per dimension. Descriptors advance element by
// element; kernels use them both for memory operands and as the progress
// trackers of asynchronously executing vector instructions ("their
// destination tensor descriptors track their progress").
package tensor

import (
	"fmt"

	"repro/internal/fp16"
)

// MaxDims is the number of dimensions a descriptor supports, matching the
// four-dimensional subtensor support of the CS-1 instruction set.
const MaxDims = 4

// Descriptor generates the address sequence for a tensor operand.
// Dimension 0 is outermost, as in the paper's {.shape={1,Z}} examples.
type Descriptor struct {
	Base   int          // starting element offset in the arena
	Shape  [MaxDims]int // extent per dimension; unused dims have extent 1
	Stride [MaxDims]int // element stride per dimension

	// iteration state
	idx [MaxDims]int
	off int
	n   int // elements emitted
}

// Vec1D returns a descriptor for a contiguous run of n elements at base,
// the common case in the SpMV listing.
func Vec1D(base, n int) Descriptor {
	return Descriptor{
		Base:   base,
		Shape:  [MaxDims]int{1, 1, 1, n},
		Stride: [MaxDims]int{0, 0, 0, 1},
	}
}

// Strided returns a descriptor over n elements with a fixed stride.
func Strided(base, n, stride int) Descriptor {
	return Descriptor{
		Base:   base,
		Shape:  [MaxDims]int{1, 1, 1, n},
		Stride: [MaxDims]int{0, 0, 0, stride},
	}
}

// Mat2D returns a descriptor over a rows×cols subtensor embedded in a
// row-major region with the given row stride: rows outermost, columns
// contiguous — the .shape={b,b} block operands of the 2D mapping.
func Mat2D(base, rows, cols, rowStride int) Descriptor {
	return Descriptor{
		Base:   base,
		Shape:  [MaxDims]int{1, 1, rows, cols},
		Stride: [MaxDims]int{0, 0, rowStride, 1},
	}
}

// Len returns the total number of elements the descriptor traverses.
func (d *Descriptor) Len() int {
	n := 1
	for _, s := range d.Shape {
		if s > 1 {
			n *= s
		}
	}
	return n
}

// Reset rewinds the descriptor to its initial position.
func (d *Descriptor) Reset() {
	d.idx = [MaxDims]int{}
	d.off = 0
	d.n = 0
}

// Done reports whether the descriptor has traversed all elements.
func (d *Descriptor) Done() bool { return d.n >= d.Len() }

// Pos returns the current element offset (Base + accumulated strides).
// It is only meaningful while !Done().
func (d *Descriptor) Pos() int { return d.Base + d.off }

// Advanced returns how many elements have been emitted so far.
func (d *Descriptor) Advanced() int { return d.n }

// Next returns the current element offset and advances by one element,
// odometer-style from the innermost dimension outward. It panics if the
// descriptor is exhausted: kernels are required to size their operands
// consistently, as the hardware does.
func (d *Descriptor) Next() int {
	if d.Done() {
		panic("tensor: descriptor advanced past its extent")
	}
	pos := d.Base + d.off
	d.n++
	for dim := MaxDims - 1; dim >= 0; dim-- {
		d.idx[dim]++
		d.off += d.Stride[dim]
		if d.idx[dim] < d.Shape[dim] {
			return pos
		}
		d.off -= d.idx[dim] * d.Stride[dim]
		d.idx[dim] = 0
	}
	return pos
}

// Contig reports whether the descriptor walks a contiguous ascending
// run of elements — all outer extents 1 and unit inner stride — so a
// consumer may address its remaining elements as one slice
// [Pos(), Pos()+Len()-Advanced()) and advance with SkipContig. This is
// the Vec1D shape, the overwhelmingly common operand layout of the
// compiled kernels, and what the batched stepping engine requires to
// execute one decoded instruction across many tiles.
func (d *Descriptor) Contig() bool {
	return d.Shape[0] == 1 && d.Shape[1] == 1 && d.Shape[2] == 1 && d.Stride[3] == 1
}

// SkipContig advances a contiguous descriptor by k elements without
// emitting addresses, leaving exactly the state k Next() calls would:
// the partial position while elements remain, or the fully-wrapped rest
// state (all indices zero) once the extent is exhausted. It panics on a
// non-contiguous descriptor or an advance past the extent, mirroring
// Next's misuse contract.
func (d *Descriptor) SkipContig(k int) {
	if !d.Contig() || d.n+k > d.Len() {
		panic("tensor: SkipContig past extent or on non-contiguous descriptor")
	}
	d.n += k
	if d.n >= d.Len() {
		d.idx[3] = 0
		d.off = 0
	} else {
		d.idx[3] += k
		d.off += k
	}
}

// Offsets materializes the full address sequence; used by tests and by
// functional-mode kernels that do not need cycle-accurate stepping.
func (d *Descriptor) Offsets() []int {
	c := *d
	c.Reset()
	out := make([]int, 0, c.Len())
	for !c.Done() {
		out = append(out, c.Next())
	}
	return out
}

// Arena is a tile-local fp16 memory region with byte-budget accounting.
// Every tile of the simulated wafer owns one Arena limited to the CS-1's
// 48 KB; allocations beyond the budget fail, which is how the reproduction
// enforces the paper's memory-capacity arguments (10·Z words ≈ 31 KB at
// Z = 1536, maximum 2D block 38×38, …).
type Arena struct {
	mem    []fp16.Float16
	budget int // bytes
	used   int // bytes
	names  []allocation
}

type allocation struct {
	name  string
	base  int
	words int
}

// BytesPerWord is the storage size of one fp16 element.
const BytesPerWord = 2

// NewArena creates an arena with the given byte budget.
func NewArena(budgetBytes int) *Arena {
	return &Arena{budget: budgetBytes}
}

// Alloc reserves words fp16 elements under the given name and returns the
// base offset. It returns an error if the budget would be exceeded.
func (a *Arena) Alloc(name string, words int) (int, error) {
	bytes := words * BytesPerWord
	if a.used+bytes > a.budget {
		return 0, fmt.Errorf("tensor: arena over budget allocating %q: %d + %d > %d bytes",
			name, a.used, bytes, a.budget)
	}
	base := len(a.mem)
	a.mem = append(a.mem, make([]fp16.Float16, words)...)
	a.used += bytes
	a.names = append(a.names, allocation{name, base, words})
	return base, nil
}

// MustAlloc is Alloc for program-construction paths where exceeding the
// budget is a programming error in the kernel itself.
func (a *Arena) MustAlloc(name string, words int) int {
	base, err := a.Alloc(name, words)
	if err != nil {
		panic(err)
	}
	return base
}

// Used returns the bytes currently allocated.
func (a *Arena) Used() int { return a.used }

// Budget returns the arena's byte budget.
func (a *Arena) Budget() int { return a.budget }

// At returns the element at offset i.
func (a *Arena) At(i int) fp16.Float16 { return a.mem[i] }

// Set stores v at offset i.
func (a *Arena) Set(i int, v fp16.Float16) { a.mem[i] = v }

// Slice returns the live storage for [base, base+n); writes are visible to
// the arena. Kernels use this for bulk initialization.
func (a *Arena) Slice(base, n int) []fp16.Float16 { return a.mem[base : base+n] }

// Allocations returns a snapshot of (name, words) pairs for reporting.
func (a *Arena) Allocations() []string {
	out := make([]string, len(a.names))
	for i, al := range a.names {
		out[i] = fmt.Sprintf("%s[%d]", al.name, al.words)
	}
	return out
}
